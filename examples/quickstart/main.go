// Quickstart: build the lab, measure one censored domain two ways — openly
// (the OONI-style baseline) and cloaked as spam (the paper's Method #2) —
// and compare what the surveillance system learned about the measurer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
)

func main() {
	run := func(tech core.Technique) (*core.Result, core.RiskReport) {
		// A fresh lab per run: same censorship ground truth, same cover
		// population, fully deterministic.
		l, err := lab.New(lab.Config{PopulationSize: 20, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		l.StartPopulation(5 * time.Second) // innocuous cover traffic

		var res *core.Result
		tech.Run(l, core.Target{Domain: "twitter.com"}, func(r *core.Result) { res = r })
		l.Run() // drain virtual time
		return res, core.EvaluateRisk(l, lab.ClientAddr)
	}

	fmt.Println("measuring twitter.com (DNS-poisoned by the lab's GFC-style censor)")
	fmt.Println()
	for _, tech := range []core.Technique{&core.OvertDNS{}, &core.Spam{}} {
		res, risk := run(tech)
		fmt.Printf("%-11s verdict=%v", res.Technique, res.Verdict)
		if res.Mechanism != "" {
			fmt.Printf(" (%s)", res.Mechanism)
		}
		fmt.Printf("\n%-11s risk: score=%.2f flagged=%v alerts=%d\n\n",
			"", risk.Score, risk.Flagged, risk.AnalystAlerts)
	}
	fmt.Println("both detect the poisoning; only the overt probe gets the user flagged.")
}
