// GFW keyword study: the §3.2.1 validation scenario. The lab censor injects
// RST pairs whenever a TCP stream contains a censored keyword (the Great
// Firewall behaviour from Clayton et al.). This example measures a set of
// URL paths with every technique that can see keyword censorship and prints
// the resulting verdict table, including a keyword split across TCP
// segments to show the censor's stream reassembly at work.
//
//	go run ./examples/gfwkeyword
package main

import (
	"fmt"
	"log"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/spoof"
	"safemeasure/internal/stats"
)

func main() {
	paths := []struct {
		path string
		note string
	}{
		{"/news", "innocuous"},
		{"/falun", "censored keyword"},
		{"/FALUN-gong", "censored keyword, different case"},
		{"/ultrasurf-download", "second censored keyword"},
		{"/sports", "innocuous"},
	}
	techniques := []core.Technique{
		&core.OvertHTTP{},
		&core.DDoS{Requests: 25},
		&core.Stateful{Covers: 4},
	}

	table := stats.NewTable("path", "note", "technique", "verdict", "mechanism", "measurer-flagged")
	for _, p := range paths {
		for _, tech := range techniques {
			l, err := lab.New(lab.Config{PopulationSize: 16, SpoofPolicy: spoof.PolicySlash24, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			var res *core.Result
			tech.Run(l, core.Target{Domain: "site01.test", Path: p.path}, func(r *core.Result) { res = r })
			l.Run()
			risk := core.EvaluateRisk(l, lab.ClientAddr)
			table.AddRow(p.path, p.note, res.Technique, res.Verdict.String(), res.Mechanism,
				fmt.Sprintf("%v", risk.Flagged))
		}
	}
	fmt.Println("GFW-style keyword censorship study (RST injection, stream reassembly)")
	fmt.Println()
	fmt.Print(table.String())
}
