// Spoofed-cover study (paper §4): how many spoofed cover queries does a
// measurement need before the surveillance analyst can no longer single out
// the measurer, and how does the client network's source-address-validation
// policy bound what is possible?
//
//	go run ./examples/spoofcover
package main

import (
	"fmt"
	"log"

	"safemeasure/internal/experiments"
	"safemeasure/internal/spoof"
)

func main() {
	fmt.Println("spoofed-cover DNS measurements of a poisoned domain (Fig 3a)")
	fmt.Println()

	for _, policy := range []spoof.Policy{spoof.PolicyStrict, spoof.PolicySlash24, spoof.PolicySlash16} {
		r, err := experiments.E6StatelessSpoof(3, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Render())
		fmt.Println()
	}

	f, err := experiments.E8SpoofFeasibility(3, 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f.Render())
}
