// Spam figure: regenerate the paper's Figure 2 — the CDF of spam-filter
// scores for n=100 spam-cloaked measurement messages — as an ASCII plot,
// alongside an ordinary-mail contrast series.
//
//	go run ./examples/spamfigure
package main

import (
	"fmt"
	"log"
	"strings"

	"safemeasure/internal/experiments"
)

func main() {
	r, err := experiments.E3SpamCDF(1, 100)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 2: CDF of spam scores for n=100 measurements (0=not spam, 100=spam)")
	fmt.Println()
	// ASCII plot: x = score 0..100 in steps of 5, bar length = F(x).
	for x := 0.0; x <= 100; x += 5 {
		f := r.CDF.At(x)
		bar := strings.Repeat("#", int(f*50))
		fmt.Printf("%5.0f |%-50s| %.2f\n", x, bar, f)
	}
	fmt.Println()
	fmt.Printf("fraction classified as spam (score >= %.0f): %.2f\n", r.Threshold, r.FractionSpam)
	fmt.Printf("median measurement score: %.1f; median ordinary mail score: %.1f\n",
		r.CDF.Quantile(0.5), r.HamCDF.Quantile(0.5))
	fmt.Println()
	fmt.Printf("GFC DNS validation (paper §3.2.3): twitter.com poisoned=%v, youtube.com poisoned=%v\n",
		r.TwitterPoisoned, r.YoutubePoisoned)
}
