// Forensics: the surveillance system's side of the story. Run population
// traffic plus one overt and one stealth measurement, then act as the
// analyst: retrospective metadata queries ("who contacted the censored
// host?"), per-user dossier reports, and a pcap export of the border tap
// for offline inspection in Wireshark.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/netsim"
	"safemeasure/internal/trace"
)

func main() {
	l, err := lab.New(lab.Config{PopulationSize: 12, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	// A raw capture at the border, alongside the two middlebox taps.
	capture := netsim.NewCapture("border")
	l.Border.AddTap(capture)

	l.StartPopulation(8 * time.Second)

	// One overt probe and one spam-cloaked probe of the same domain.
	overt := &core.OvertHTTP{}
	overt.Run(l, core.Target{Domain: "banned.test"}, func(*core.Result) {})
	spam := &core.Spam{}
	spam.Run(l, core.Target{Domain: "twitter.com"}, func(*core.Result) {})
	l.Run()

	now := int64(l.Sim.Now())

	fmt.Println("=== retrospective metadata query (30-day store) ===")
	fmt.Printf("home-net users with flows touching %v (sensitive web host):\n", lab.SensitiveAddr)
	for _, u := range l.Surveil.UsersContacting(lab.SensitiveAddr, 0, now) {
		marker := ""
		if u == lab.ClientAddr {
			marker = "   <-- the measurement client"
		}
		fmt.Printf("  %v%s\n", u, marker)
	}

	fmt.Println()
	fmt.Println("=== analyst dossier: the measurement client ===")
	fmt.Print(l.Surveil.Analyst().Report(lab.ClientAddr))

	fmt.Println()
	fmt.Printf("=== flagged users ===\n")
	flagged := l.Surveil.Analyst().Flagged()
	if len(flagged) == 0 {
		fmt.Println("  none")
	}
	for _, u := range flagged {
		fmt.Printf("  %v (score %.2f)\n", u, l.Surveil.Analyst().Score(u))
	}

	// Export the border capture for Wireshark.
	f, err := os.CreateTemp("", "safemeasure-border-*.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := trace.WritePcap(f, capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("wrote %d border packets (%d bytes) to %s\n", capture.Count(), n, f.Name())
	fmt.Println("(open with: wireshark", f.Name(), ")")
}
