// Command safemeasure runs a single censorship measurement technique inside
// the simulated lab and reports both the censorship verdict and the risk
// report (what the surveillance system learned about the measurer).
//
// Usage:
//
//	safemeasure -technique spam -domain twitter.com
//	safemeasure -technique overt-http -domain site01.test -path /falun
//	safemeasure -technique syn-scan -domain banned.test -blackhole
//	safemeasure -technique spoofed-dns -domain youtube.com -sav /24
//	safemeasure -technique overt-dns -domain site02.test -impair lossy20
//	safemeasure -technique overt-dns -impair lossy20 -retries 1  # legacy scoring
//	safemeasure -technique overt-http -censor-behavior intermittent -corroborate 5
//	safemeasure -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/netsim"
	"safemeasure/internal/spoof"
	"safemeasure/internal/trace"
)

func main() {
	techName := flag.String("technique", "overt-http", "technique to run (see -list)")
	domain := flag.String("domain", "twitter.com", "target domain")
	path := flag.String("path", "/", "URL path for HTTP-level techniques")
	port := flag.Uint("port", 80, "target port for TCP-level techniques")
	sav := flag.String("sav", "/24", "client network SAV policy: strict, /24, /16")
	blackhole := flag.Bool("blackhole", false, "blackhole the sensitive web server")
	blockPort := flag.Uint("block-port", 0, "additionally port-block this TCP port")
	seed := flag.Int64("seed", 1, "deterministic seed")
	pop := flag.Int("population", 20, "cover population size")
	impair := flag.String("impair", "none", "link-impairment preset on the WAN uplink (see -list)")
	behavior := flag.String("censor-behavior", "none", "adversarial censor-behavior preset (see -list)")
	retries := flag.Int("retries", core.DefaultMaxAttempts, "max probe attempts (1 = single-shot legacy scoring)")
	corroborate := flag.Int("corroborate", 0, "cross-trial corroboration: N backoff-spaced runs with k-of-n verdict agreement (0 disables; >= 2 enables)")
	list := flag.Bool("list", false, "list techniques and impairments, then exit")
	jsonOut := flag.Bool("json", false, "emit the result and risk report as JSON")
	pcapPath := flag.String("pcap", "", "write the border-tap capture to this pcap file")
	flag.Parse()

	if *list {
		fmt.Println("techniques:")
		for _, t := range core.All() {
			kind := "overt baseline"
			if core.Stealth(t) {
				kind = "stealth"
			}
			fmt.Printf("  %-14s %s\n", t.Name(), kind)
		}
		fmt.Println("impairments:")
		for _, p := range lab.Impairments() {
			fmt.Printf("  %-12s %s\n", p.Name, p.Summary)
		}
		fmt.Println("censor behaviors:")
		for _, p := range lab.Behaviors() {
			fmt.Printf("  %-17s %s\n", p.Name, p.Summary)
		}
		return
	}

	tech, ok := core.ByName(*techName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown technique %q (try -list)\n", *techName)
		os.Exit(2)
	}
	preset, ok := lab.ImpairmentByName(*impair)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown impairment %q (try -list)\n", *impair)
		os.Exit(2)
	}
	bhvPreset, ok := lab.BehaviorByName(*behavior)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown censor behavior %q (try -list)\n", *behavior)
		os.Exit(2)
	}
	if *retries < 1 {
		fmt.Fprintf(os.Stderr, "-retries must be >= 1 (got %d)\n", *retries)
		os.Exit(2)
	}
	if *corroborate == 1 || *corroborate < 0 {
		fmt.Fprintf(os.Stderr, "-corroborate must be 0 (off) or >= 2 (got %d)\n", *corroborate)
		os.Exit(2)
	}

	var policy spoof.Policy
	switch *sav {
	case "strict":
		policy = spoof.PolicyStrict
	case "/24":
		policy = spoof.PolicySlash24
	case "/16":
		policy = spoof.PolicySlash16
	default:
		fmt.Fprintf(os.Stderr, "bad -sav %q\n", *sav)
		os.Exit(2)
	}

	censorCfg := lab.DefaultCensorConfig()
	if *blackhole {
		censorCfg.Blackholed = append(censorCfg.Blackholed, netip.PrefixFrom(lab.SensitiveAddr, 32))
	}
	if *blockPort != 0 {
		censorCfg.BlockedPorts = append(censorCfg.BlockedPorts, uint16(*blockPort))
	}

	l, err := lab.New(lab.Config{
		PopulationSize: *pop,
		Censor:         censorCfg,
		SpoofPolicy:    policy,
		Impair:         preset.Impair,
		Behavior:       bhvPreset.Behavior,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var capture *netsim.Capture
	if *pcapPath != "" {
		capture = netsim.NewCapture("border")
		l.Border.AddTap(capture)
	}

	tgt := core.Target{Domain: *domain, Path: *path, Port: uint16(*port)}
	retry := core.DefaultRetryPolicy()
	retry.MaxAttempts = *retries
	retry.Corroborate = *corroborate
	var res *core.Result
	core.RunWithRetry(l, tech, tgt, retry, func(r *core.Result) { res = r })
	l.Run()

	if capture != nil {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := trace.WritePcap(f, capture); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d border packets to %s\n", capture.Count(), *pcapPath)
	}
	if res == nil {
		fmt.Fprintln(os.Stderr, "measurement never completed")
		os.Exit(1)
	}

	risk := core.EvaluateRisk(l, lab.ClientAddr)
	if *jsonOut {
		// The same record shape the campaign JSONL sink writes, so ad-hoc
		// runs and campaign post-processing share tooling. elapsed_ms is
		// virtual (simulated) time — identical across re-runs of a seed.
		rec := core.NewRecord(res, risk, *seed, l.Sim.Now())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if risk.Flagged {
			os.Exit(3)
		}
		return
	}

	fmt.Printf("technique : %s\n", res.Technique)
	fmt.Printf("target    : %s\n", res.Target)
	fmt.Printf("verdict   : %v\n", res.Verdict)
	if res.Mechanism != "" {
		fmt.Printf("mechanism : %s\n", res.Mechanism)
	}
	fmt.Printf("probes    : %d (+%d cover)\n", res.ProbesSent, res.CoverSent)
	if res.Attempts > 1 {
		fmt.Printf("attempts  : %d\n", res.Attempts)
	}
	if res.Confidence > 0 {
		fmt.Printf("confidence: %.2f\n", res.Confidence)
	}
	for _, e := range res.Evidence {
		fmt.Printf("evidence  : %s\n", e)
	}

	fmt.Println()
	fmt.Printf("risk report (surveillance system's view of the measurer):\n")
	fmt.Printf("  traffic retained by MVR : %v\n", risk.TrafficRetained)
	fmt.Printf("  alerts in dossier       : %d\n", risk.AnalystAlerts)
	fmt.Printf("  suspicion score         : %.2f\n", risk.Score)
	fmt.Printf("  implicated users        : %d\n", risk.ImplicatedUsers)
	fmt.Printf("  FLAGGED                 : %v\n", risk.Flagged)
	if risk.Flagged {
		os.Exit(3) // caller scripts can detect risky configurations
	}
}
