// Command labbench regenerates every table and figure from the paper's
// evaluation (DESIGN.md §4: experiments E1-E11) and prints them as text.
//
// Usage:
//
//	labbench               # run everything
//	labbench -only E3,E5   # run a subset
//	labbench -seed 7       # change the deterministic seed
//	labbench -quick        # smaller workloads (CI-friendly)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"safemeasure/internal/experiments"
	"safemeasure/internal/spoof"
	"safemeasure/internal/telemetry"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for all experiments")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E3); empty runs all")
	quick := flag.Bool("quick", false, "smaller workloads")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (each is still internally deterministic)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent experiments with -parallel")
	flag.Parse()

	selected := map[string]bool{}
	for _, id := range strings.Split(strings.ToUpper(*only), ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	scanPorts, spamN, syriaUsers, feasN := 1000, 100, 21000, 100000
	mvrHorizon := 30 * time.Second
	if *quick {
		scanPorts, spamN, syriaUsers, feasN = 100, 50, 2000, 10000
		mvrHorizon = 10 * time.Second
	}

	type job struct {
		id  string
		run func() (renderer, error)
	}
	jobs := []job{
		{"E1", func() (renderer, error) { return experiments.E1ReferenceSystems(*seed) }},
		{"E2", func() (renderer, error) { return experiments.E2Scanning(*seed, scanPorts) }},
		{"E3", func() (renderer, error) { return experiments.E3SpamCDF(*seed, spamN) }},
		{"E4", func() (renderer, error) { return experiments.E4DDoS(*seed, 40) }},
		{"E5", func() (renderer, error) { return experiments.E5SyriaLogs(*seed, syriaUsers) }},
		{"E6", func() (renderer, error) { return experiments.E6StatelessSpoof(*seed, spoof.PolicySlash24) }},
		{"E7", func() (renderer, error) { return experiments.E7StatefulSpoof(*seed) }},
		{"E8", func() (renderer, error) { return experiments.E8SpoofFeasibility(*seed, feasN) }},
		{"E9", func() (renderer, error) { return experiments.E9MVR(*seed, mvrHorizon) }},
		{"E10", func() (renderer, error) { return experiments.E10EthicsLoad(*seed) }},
		{"E11", func() (renderer, error) { return experiments.E11TechniqueMatrix(*seed) }},
		{"E12", func() (renderer, error) { return experiments.E12Ablations(*seed) }},
	}

	type outcome struct {
		id      string
		text    string
		elapsed time.Duration
		err     error
		skipped bool
	}
	var selectedJobs []job
	for _, j := range jobs {
		if want(j.id) {
			selectedJobs = append(selectedJobs, j)
		}
	}
	if len(selectedJobs) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q\n", *only)
		os.Exit(2)
	}

	// Experiment wall-clock latency lands in a telemetry histogram so the
	// footer can report tail latency (p50/p90/p99), not just a mean that a
	// single slow experiment would hide behind.
	latency := telemetry.NewRegistry().HistogramBuckets("labbench_experiment_seconds", 1e-3, 2, 24)

	// The first SIGINT/SIGTERM stops launching experiments — the ones
	// already running finish and their tables still print. Restoring the
	// default disposition right after means a second signal kills the
	// process the ordinary way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "labbench: interrupt: finishing running experiments; signal again to exit now")
		signal.Stop(sigc)
		cancel()
	}()

	results := make([]outcome, len(selectedJobs))
	runOne := func(i int) {
		if ctx.Err() != nil {
			results[i] = outcome{id: selectedJobs[i].id, skipped: true}
			return
		}
		start := time.Now()
		res, err := selectedJobs[i].run()
		elapsed := time.Since(start)
		latency.Observe(elapsed.Seconds())
		results[i] = outcome{id: selectedJobs[i].id, elapsed: elapsed, err: err}
		if err == nil {
			results[i].text = res.Render()
		}
	}
	if *parallel {
		// Every experiment builds its own lab and RNGs, so they are
		// independent; output order stays deterministic because rendering
		// happens after the join. A semaphore bounds concurrency at
		// -workers so a wide -only selection cannot oversubscribe the host.
		n := *workers
		if n < 1 {
			n = 1
		}
		sem := make(chan struct{}, n)
		var wg sync.WaitGroup
		for i := range selectedJobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range selectedJobs {
			runOne(i)
		}
	}

	var skipped []string
	for _, r := range results {
		if r.skipped {
			skipped = append(skipped, r.id)
			continue
		}
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.id, r.err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(r.text)
		fmt.Printf("[%s completed in %v]\n\n", r.id, r.elapsed.Round(time.Millisecond))
	}
	fmt.Println(strings.Repeat("=", 78))
	fmt.Printf("experiment latency: n=%d mean=%.3fs p50=%.3fs p90=%.3fs p99=%.3fs\n",
		latency.Count(), latency.Mean(),
		latency.Quantile(0.50), latency.Quantile(0.90), latency.Quantile(0.99))
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "labbench: interrupted; skipped %s (rerun with -only %s)\n",
			strings.Join(skipped, ","), strings.Join(skipped, ","))
		os.Exit(130)
	}
}
