// Command safemeasured serves measurements as a long-running service: a
// persistent campaign worker pool shared by every client, fronted by a
// bounded admission queue with per-client token-bucket rate limits and
// round-robin fairness, and a result cache keyed by the deterministic
// (technique, scenario, impairment, trial, seed) cell identity — a cache
// hit returns bytes identical to a fresh run.
//
// Usage:
//
//	safemeasured -addr 127.0.0.1:8080 -workers 8
//	safemeasured -addr 127.0.0.1:0 -addr-file /tmp/addr   # ephemeral port
//	safemeasured -rate 100 -burst 200 -queue 4096 -cache-max 100000
//	safemeasured -breaker 5 -fail-budget 0.5              # supervision
//	safemeasured -journal /var/lib/sm/wal -archive /var/lib/sm/obs.jsonl
//
// Endpoints:
//
//	POST/GET /measure — submit a request, stream NDJSON records + aggregate
//	GET /metrics      — Prometheus text (measured_* and campaign_* series)
//	GET /healthz      — liveness (200 while the process serves)
//	GET /readyz       — readiness (503 while draining or degraded)
//
// Durability: -journal write-aheads every admitted run before it may
// execute and -archive appends every executed run's observation rows; on
// restart the archive warm-starts the result cache (previously answered
// cells are byte-identical cache hits again) and the journal replays
// whatever a crash left admitted but unfinished — kill -9 mid-campaign
// resumes where it left off without executing any completed run twice. A
// failing disk degrades instead of crashing: /readyz goes 503, new
// admissions are rejected with reason "storage" (retryable), and the
// service heals when writes succeed again.
//
// Shutdown: the first SIGINT/SIGTERM starts a graceful drain — /readyz
// goes 503 first and keeps answering for -lb-grace so load balancers
// observe not-ready before the listener closes, then new requests are
// rejected, admitted runs and open streams complete within -drain-grace,
// the pool stops, and the process exits 0. A drain that cannot finish in
// time abandons the stragglers through the campaign claim gate and exits
// 1; a second signal exits 1 immediately.
//
// Exit codes: 0 clean drain, 1 unclean shutdown or serve error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/core"
	"safemeasure/internal/measured"
	"safemeasure/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "persistent pool size")
	timeout := flag.Duration("timeout", 60*time.Second, "wall-clock budget per run")
	retries := flag.Int("retries", core.DefaultMaxAttempts, "max probe attempts per run")
	queueMax := flag.Int("queue", measured.DefaultQueueMax, "max admitted-but-unscheduled runs across all clients")
	rate := flag.Float64("rate", measured.DefaultRatePerSec, "per-client request rate limit (requests/s; negative disables)")
	burst := flag.Int("burst", measured.DefaultBurst, "per-client rate-limit burst")
	cacheMax := flag.Int("cache-max", measured.DefaultCacheMax, "result cache capacity (records); negative disables caching")
	maxRuns := flag.Int("max-runs", measured.DefaultMaxRunsPerRequest, "max runs one request may expand into")
	breakerN := flag.Int("breaker", 0, "per-cell circuit breaker: open after N consecutive failed runs (0 disables)")
	failBudget := flag.Float64("fail-budget", -1, "degrade the service when more than this fraction of completed runs are errors (negative disables)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a shutdown lets admitted runs and open streams finish")
	lbGrace := flag.Duration("lb-grace", 0, "after /readyz flips 503 on shutdown, keep serving this long so load balancers observe not-ready before the listener closes")
	archivePath := flag.String("archive", "", "append every executed run as flat observation rows to this file (.bin/.smoa for binary); warm-starts the result cache on restart; cache hits are not re-archived")
	journalPath := flag.String("journal", "", "write-ahead request journal: admitted runs are journaled (fsynced) before execution and replayed after a crash")
	journalFsync := flag.Bool("journal-fsync", true, "fsync the journal after every admission (power-loss durability; process-crash safety holds either way)")
	writeTimeout := flag.Duration("write-timeout", measured.DefaultWriteTimeout, "per-write deadline on response streams; a stalled reader is dropped once a write blocks past it (negative disables)")
	streamBuf := flag.Int("stream-buf", measured.DefaultStreamBuf, "per-stream record buffer between run completion and the client write loop")
	profContention := flag.Bool("pprof-contention", false, "record mutex and block profiles (served on /debug/pprof; costs a little on every contended lock)")
	flag.Parse()

	if *workers < 1 {
		*workers = 1
	}
	if *profContention {
		telemetry.EnableContentionProfiling(5, 100_000)
	}
	if *retries < 1 {
		fmt.Fprintf(os.Stderr, "safemeasured: -retries must be >= 1 (got %d)\n", *retries)
		os.Exit(2)
	}
	retry := core.DefaultRetryPolicy()
	retry.MaxAttempts = *retries

	reg := telemetry.NewRegistry()
	cfg := measured.Config{
		Workers:           *workers,
		Timeout:           *timeout,
		Retry:             retry,
		QueueMax:          *queueMax,
		RatePerSec:        *rate,
		Burst:             *burst,
		CacheMax:          *cacheMax,
		MaxRunsPerRequest: *maxRuns,
		WriteTimeout:      *writeTimeout,
		StreamBuf:         *streamBuf,
		Metrics:           reg,
	}
	if *breakerN > 0 {
		cfg.Breaker = campaign.BreakerConfig{Consecutive: *breakerN}
	}
	if *failBudget >= 0 {
		cfg.Budget = &campaign.FailureBudget{Fraction: *failBudget}
	}
	var store *measured.Store
	if *archivePath != "" || *journalPath != "" {
		// The store owns both files end to end: it repairs torn tails from
		// the last crash, compacts the journal to its pending admits, and
		// truncates any archive tail group the journal never acknowledged.
		st, err := measured.OpenStore(measured.StoreConfig{
			Journal:     *journalPath,
			Archive:     *archivePath,
			FsyncAdmits: *journalFsync,
			Metrics:     reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured:", err)
			os.Exit(1)
		}
		store = st
		cfg.Store = st
	}
	svc := measured.New(cfg)
	if store != nil {
		warmed, err := svc.WarmStart()
		if err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured: warm start:", err)
			os.Exit(1)
		}
		replayed := svc.Replay()
		if warmed > 0 || replayed > 0 {
			fmt.Fprintf(os.Stderr, "safemeasured: recovered %d archived results into the cache, replaying %d unfinished runs\n",
				warmed, replayed)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/measure", svc.Handler())
	mux.Handle("/", telemetry.Handler(reg, nil, svc.Ready))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safemeasured:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured:", err)
			os.Exit(1)
		}
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "safemeasured: serving /measure, /metrics, /healthz, /readyz on %s (%d workers)\n",
		ln.Addr(), *workers)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "safemeasured:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "safemeasured: %v: draining (up to %v); signal again to exit immediately\n",
			sig, *drainGrace)
	}
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "safemeasured: second signal: exiting now")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	var storeClose func() error
	if store != nil {
		storeClose = store.Close
	}
	clean := drain(ctx, drainHooks{
		beginDrain:   svc.BeginDrain,
		lbGrace:      *lbGrace,
		sleep:        time.Sleep,
		httpShutdown: srv.Shutdown,
		httpClose:    func() { srv.Close() },
		svcShutdown:  svc.Shutdown,
		storeClose:   storeClose,
		logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "safemeasured: "+format+"\n", args...)
		},
	})
	if !clean {
		fmt.Fprintln(os.Stderr, "safemeasured: unclean shutdown: in-flight work was abandoned")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "safemeasured: drained cleanly")
}

// drainHooks is the graceful-shutdown sequence with its effects injected, so
// the ordering contract is testable without a process: readiness flips first
// (so /readyz answers 503 and load balancers stop routing while the listener
// is still serving), then — after lbGrace — the listener shuts down and waits
// for open streams, then queued and in-flight runs drain, then the store
// flushes and closes.
type drainHooks struct {
	beginDrain   func()                      // flip /readyz to 503; keep serving
	lbGrace      time.Duration               // how long to serve not-ready first
	sleep        func(time.Duration)         // time.Sleep, injectable
	httpShutdown func(context.Context) error // stop the listener, wait for streams
	httpClose    func()                      // hard-stop fallback after a failed shutdown
	svcShutdown  func(context.Context) error // drain queued and in-flight runs
	storeClose   func() error                // flush and close the store; nil when none
	logf         func(format string, args ...any)
}

// drain runs the shutdown sequence in its load-balancer-safe order and
// reports whether everything finished cleanly. BeginDrain strictly precedes
// the HTTP shutdown: a listener that closes before readiness flips sends
// traffic to a refused port instead of a 503 the balancer understands.
func drain(ctx context.Context, h drainHooks) bool {
	clean := true
	h.beginDrain()
	if h.lbGrace > 0 {
		h.sleep(h.lbGrace)
	}
	if err := h.httpShutdown(ctx); err != nil {
		h.logf("http shutdown: %v", err)
		h.httpClose()
		clean = false
	}
	if err := h.svcShutdown(ctx); err != nil {
		h.logf("%v", err)
		clean = false
	}
	if h.storeClose != nil {
		if err := h.storeClose(); err != nil {
			h.logf("store: %v", err)
			clean = false
		}
	}
	return clean
}
