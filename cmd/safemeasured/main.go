// Command safemeasured serves measurements as a long-running service: a
// persistent campaign worker pool shared by every client, fronted by a
// bounded admission queue with per-client token-bucket rate limits and
// round-robin fairness, and a result cache keyed by the deterministic
// (technique, scenario, impairment, trial, seed) cell identity — a cache
// hit returns bytes identical to a fresh run.
//
// Usage:
//
//	safemeasured -addr 127.0.0.1:8080 -workers 8
//	safemeasured -addr 127.0.0.1:0 -addr-file /tmp/addr   # ephemeral port
//	safemeasured -rate 100 -burst 200 -queue 4096 -cache-max 100000
//	safemeasured -breaker 5 -fail-budget 0.5              # supervision
//
// Endpoints:
//
//	POST/GET /measure — submit a request, stream NDJSON records + aggregate
//	GET /metrics      — Prometheus text (measured_* and campaign_* series)
//	GET /healthz      — liveness (200 while the process serves)
//	GET /readyz       — readiness (503 while draining or degraded)
//
// Shutdown: the first SIGINT/SIGTERM starts a graceful drain — /readyz
// goes 503, new requests are rejected, admitted runs and open streams
// complete within -drain-grace, then the pool stops and the process exits
// 0. A drain that cannot finish in time abandons the stragglers through
// the campaign claim gate and exits 1; a second signal exits 1 immediately.
//
// Exit codes: 0 clean drain, 1 unclean shutdown or serve error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/core"
	"safemeasure/internal/measured"
	"safemeasure/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "persistent pool size")
	timeout := flag.Duration("timeout", 60*time.Second, "wall-clock budget per run")
	retries := flag.Int("retries", core.DefaultMaxAttempts, "max probe attempts per run")
	queueMax := flag.Int("queue", measured.DefaultQueueMax, "max admitted-but-unscheduled runs across all clients")
	rate := flag.Float64("rate", measured.DefaultRatePerSec, "per-client request rate limit (requests/s; negative disables)")
	burst := flag.Int("burst", measured.DefaultBurst, "per-client rate-limit burst")
	cacheMax := flag.Int("cache-max", measured.DefaultCacheMax, "result cache capacity (records); negative disables caching")
	maxRuns := flag.Int("max-runs", measured.DefaultMaxRunsPerRequest, "max runs one request may expand into")
	breakerN := flag.Int("breaker", 0, "per-cell circuit breaker: open after N consecutive failed runs (0 disables)")
	failBudget := flag.Float64("fail-budget", -1, "degrade the service when more than this fraction of completed runs are errors (negative disables)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a shutdown lets admitted runs and open streams finish")
	archivePath := flag.String("archive", "", "append every executed run as flat observation rows to this file (.bin/.smoa for binary); cache hits are not re-archived")
	profContention := flag.Bool("pprof-contention", false, "record mutex and block profiles (served on /debug/pprof; costs a little on every contended lock)")
	flag.Parse()

	if *workers < 1 {
		*workers = 1
	}
	if *profContention {
		telemetry.EnableContentionProfiling(5, 100_000)
	}
	if *retries < 1 {
		fmt.Fprintf(os.Stderr, "safemeasured: -retries must be >= 1 (got %d)\n", *retries)
		os.Exit(2)
	}
	retry := core.DefaultRetryPolicy()
	retry.MaxAttempts = *retries

	reg := telemetry.NewRegistry()
	cfg := measured.Config{
		Workers:           *workers,
		Timeout:           *timeout,
		Retry:             retry,
		QueueMax:          *queueMax,
		RatePerSec:        *rate,
		Burst:             *burst,
		CacheMax:          *cacheMax,
		MaxRunsPerRequest: *maxRuns,
		Metrics:           reg,
	}
	if *breakerN > 0 {
		cfg.Breaker = campaign.BreakerConfig{Consecutive: *breakerN}
	}
	if *failBudget >= 0 {
		cfg.Budget = &campaign.FailureBudget{Fraction: *failBudget}
	}
	var obsSink *campaign.ObservationSink
	if *archivePath != "" {
		// The service always appends: it is restarted, not re-run, and each
		// executed flight is one more batch of rows. Repair first cuts any
		// torn record a crash left behind.
		if truncated, err := archival.Repair(*archivePath); err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured: -archive:", err)
			os.Exit(1)
		} else if truncated {
			fmt.Fprintf(os.Stderr, "safemeasured: -archive: cut a torn trailing record off %s\n", *archivePath)
		}
		f, err := os.OpenFile(*archivePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured: -archive:", err)
			os.Exit(1)
		}
		var w archival.Writer
		if archival.FormatForPath(*archivePath) == archival.FormatBinary {
			if st, err := f.Stat(); err == nil && st.Size() > 0 {
				w = archival.NewBinaryAppender(f)
			} else {
				w = archival.NewBinaryWriter(f)
			}
		} else {
			w = archival.NewJSONLWriter(f)
		}
		obsSink = campaign.NewObservationSink(w)
		obsSink.SyncEvery(64)
		obsSink.Instrument(reg, "archive")
		cfg.OnRecord = obsSink.Record
	}
	svc := measured.New(cfg)

	mux := http.NewServeMux()
	mux.Handle("/measure", svc.Handler())
	mux.Handle("/", telemetry.Handler(reg, nil, svc.Ready))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safemeasured:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured:", err)
			os.Exit(1)
		}
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "safemeasured: serving /measure, /metrics, /healthz, /readyz on %s (%d workers)\n",
		ln.Addr(), *workers)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "safemeasured:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "safemeasured: %v: draining (up to %v); signal again to exit immediately\n",
			sig, *drainGrace)
	}
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "safemeasured: second signal: exiting now")
		os.Exit(1)
	}()

	// Drain order matters: mark not-ready first so load balancers stop
	// sending, let open request streams finish (srv.Shutdown waits for
	// handlers, which wait for their runs), then drain whatever is still
	// queued (disconnected clients' flights) and stop the pool.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	clean := true
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "safemeasured: http shutdown:", err)
		srv.Close()
		clean = false
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "safemeasured:", err)
		clean = false
	}
	if obsSink != nil {
		if err := obsSink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "safemeasured: archive sink:", err)
			clean = false
		} else {
			fmt.Fprintf(os.Stderr, "safemeasured: %d observation rows archived to %s\n",
				obsSink.Count(), *archivePath)
		}
	}
	if !clean {
		fmt.Fprintln(os.Stderr, "safemeasured: unclean shutdown: in-flight work was abandoned")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "safemeasured: drained cleanly")
}
