package main

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordedHooks builds drainHooks that append each step to calls.
func recordedHooks(calls *[]string, httpErr, svcErr, storeErr error) drainHooks {
	return drainHooks{
		beginDrain: func() { *calls = append(*calls, "begin-drain") },
		lbGrace:    250 * time.Millisecond,
		sleep: func(d time.Duration) {
			*calls = append(*calls, fmt.Sprintf("lb-grace=%v", d))
		},
		httpShutdown: func(context.Context) error {
			*calls = append(*calls, "http-shutdown")
			return httpErr
		},
		httpClose: func() { *calls = append(*calls, "http-close") },
		svcShutdown: func(context.Context) error {
			*calls = append(*calls, "svc-shutdown")
			return svcErr
		},
		storeClose: func() error {
			*calls = append(*calls, "store-close")
			return storeErr
		},
		logf: func(string, ...any) {},
	}
}

// TestDrainOrderReadinessBeforeListener is the drain-ordering regression
// test: /readyz must flip to 503 (BeginDrain) and the lb-grace window must
// elapse strictly before the HTTP listener stops serving — otherwise load
// balancers see refused connections instead of a not-ready signal.
func TestDrainOrderReadinessBeforeListener(t *testing.T) {
	var calls []string
	if !drain(context.Background(), recordedHooks(&calls, nil, nil, nil)) {
		t.Fatal("clean drain reported unclean")
	}
	want := []string{"begin-drain", "lb-grace=250ms", "http-shutdown", "svc-shutdown", "store-close"}
	if len(calls) != len(want) {
		t.Fatalf("drain steps = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("drain step %d = %q, want %q (full order %v)", i, calls[i], want[i], calls)
		}
	}
}

func TestDrainSkipsGraceAndStoreWhenUnset(t *testing.T) {
	var calls []string
	h := recordedHooks(&calls, nil, nil, nil)
	h.lbGrace = 0
	h.storeClose = nil
	if !drain(context.Background(), h) {
		t.Fatal("clean drain reported unclean")
	}
	want := []string{"begin-drain", "http-shutdown", "svc-shutdown"}
	if len(calls) != len(want) {
		t.Fatalf("drain steps = %v, want %v", calls, want)
	}
}

func TestDrainUncleanPaths(t *testing.T) {
	boom := errors.New("boom")

	var calls []string
	if drain(context.Background(), recordedHooks(&calls, boom, nil, nil)) {
		t.Fatal("failed http shutdown reported clean")
	}
	sawClose := false
	for _, c := range calls {
		if c == "http-close" {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatalf("failed http shutdown did not hard-close the listener: %v", calls)
	}
	if calls[len(calls)-1] != "store-close" {
		t.Fatalf("store must still close after a failed http shutdown: %v", calls)
	}

	calls = nil
	if drain(context.Background(), recordedHooks(&calls, nil, boom, nil)) {
		t.Fatal("failed service shutdown reported clean")
	}
	calls = nil
	if drain(context.Background(), recordedHooks(&calls, nil, nil, boom)) {
		t.Fatal("failed store close reported clean")
	}
}
