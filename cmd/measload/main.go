// Command measload drives a safemeasured service with N concurrent
// simulated clients and reports throughput, latency quantiles, and the
// service's cache hit rate — the harness worker-scaling work is measured
// against.
//
// Each client issues -requests sequential requests drawn from a built-in
// mix of applicable (technique, scenario) cells; -dup-every k makes every
// k-th request repeat the client's first cell, guaranteeing duplicate
// requests that must be served from the result cache. Because responses
// are deterministic for a given cell identity, measload also byte-compares
// every repeated request against the first response for that identity —
// any divergence (a cache returning different bytes than a fresh run) is a
// hard failure.
//
// Usage:
//
//	measload -addr http://127.0.0.1:8080 -clients 50 -requests 4
//	measload -clients 200 -requests 10 -trials 3 -dup-every 2
//	measload -addr http://$(cat /tmp/addr) -min-cache-hits 1
//	measload -max-retries 5                               # ride out 429/503
//
// Requests the service rejects with HTTP 429 (rate limited) or 503
// (draining, degraded, storage fault) are retried up to -max-retries times
// with seeded, jittered exponential backoff; retry counts appear in the
// final report.
//
// Exit codes: 0 all requests succeeded (and -min-cache-hits was met, and
// all duplicate responses were byte-identical), 1 otherwise, 2 usage.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// mixCells is the request mix: applicable (technique, scenario) pairs from
// the E11 matrix, spanning overt, mimicry, and spoofed families.
var mixCells = []struct{ technique, scenario string }{
	{"overt-dns", "dns-poison"},
	{"overt-http", "keyword-rst"},
	{"overt-tcp", "blackhole"},
	{"spam", "dns-poison"},
	{"syn-scan", "port-block"},
	{"spoofed-dns", "dns-poison"},
	{"ddos", "keyword-rst"},
	{"stateful-spoof", "keyword-rst"},
}

// result is one request's outcome.
type result struct {
	latency time.Duration
	runs    int
	retries int
	err     error
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "safemeasured base URL")
	clients := flag.Int("clients", 50, "concurrent simulated clients")
	requests := flag.Int("requests", 4, "sequential requests per client")
	trials := flag.Int("trials", 2, "trials per request")
	seed := flag.Int64("seed", 1, "master seed sent with every request")
	dupEvery := flag.Int("dup-every", 2, "every k-th request per client repeats its first cell (0 disables)")
	minCacheHits := flag.Int("min-cache-hits", 0, "fail unless the service's measured_cache_hits_total grew by at least this much")
	reqTimeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	maxRetries := flag.Int("max-retries", 3, "retry a request rejected with HTTP 429/503 up to this many times, with seeded jittered exponential backoff (0 disables)")
	flag.Parse()
	if *clients < 1 || *requests < 1 || *trials < 1 {
		fmt.Fprintln(os.Stderr, "measload: -clients, -requests, and -trials must be >= 1")
		os.Exit(2)
	}

	httpc := &http.Client{Timeout: *reqTimeout}
	before, err := scrapeMetrics(httpc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measload: initial /metrics scrape:", err)
		os.Exit(1)
	}

	// bodies maps a request identity to the sha256 of its first response;
	// every later response for the same identity must match byte for byte.
	var bodiesMu sync.Mutex
	bodies := map[string][32]byte{}
	mismatches := 0

	results := make([]result, *clients**requests)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clientID := fmt.Sprintf("loadclient-%03d", c)
			// Per-client seeded RNG: backoff jitter is reproducible for a
			// given (-seed, client index), never shared across goroutines.
			rng := rand.New(rand.NewSource(*seed + int64(c)*1_000_003))
			for r := 0; r < *requests; r++ {
				// Cell choice: stride through the mix so clients overlap
				// (cross-client cache hits); every k-th request repeats the
				// client's first cell (guaranteed same-client duplicate).
				idx := (c*7 + r) % len(mixCells)
				if *dupEvery > 0 && r > 0 && r%*dupEvery == 0 {
					idx = (c * 7) % len(mixCells)
				}
				cell := mixCells[idx]
				url := fmt.Sprintf("%s/measure?technique=%s&scenario=%s&trials=%d&seed=%d&client=%s",
					*addr, cell.technique, cell.scenario, *trials, *seed, clientID)
				identity := fmt.Sprintf("%s|%s|%d|%d", cell.technique, cell.scenario, *trials, *seed)

				t0 := time.Now()
				body, runs, retried, err := fetch(httpc, url, *maxRetries, rng)
				res := result{latency: time.Since(t0), runs: runs, retries: retried, err: err}
				if err == nil {
					sum := sha256.Sum256(body)
					bodiesMu.Lock()
					if prev, ok := bodies[identity]; ok && prev != sum {
						mismatches++
					} else if !ok {
						bodies[identity] = sum
					}
					bodiesMu.Unlock()
				}
				results[c**requests+r] = res
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeMetrics(httpc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measload: final /metrics scrape:", err)
		os.Exit(1)
	}

	var latencies []float64
	var errs, totalRuns, totalRetries, retriedReqs int
	for _, res := range results {
		totalRetries += res.retries
		if res.retries > 0 {
			retriedReqs++
		}
		if res.err != nil {
			errs++
			fmt.Fprintln(os.Stderr, "measload:", res.err)
			continue
		}
		totalRuns += res.runs
		latencies = append(latencies, res.latency.Seconds()*1000)
	}
	sort.Float64s(latencies)

	hits := after["measured_cache_hits_total"] - before["measured_cache_hits_total"]
	misses := after["measured_cache_misses_total"] - before["measured_cache_misses_total"]
	joins := after["measured_dedup_joins_total"] - before["measured_dedup_joins_total"]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses)
	}

	n := len(results)
	fmt.Printf("measload: %d clients x %d requests (%d trials each) in %v\n",
		*clients, *requests, *trials, elapsed.Round(time.Millisecond))
	fmt.Printf("  requests: %d ok, %d errors (%.1f req/s)\n",
		n-errs, errs, float64(n-errs)/elapsed.Seconds())
	fmt.Printf("  runs:     %d streamed (%.1f runs/s)\n",
		totalRuns, float64(totalRuns)/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("  latency:  p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			quantile(latencies, 0.99), latencies[len(latencies)-1])
	}
	fmt.Printf("  cache:    %.0f hits, %.0f misses, %.0f dedup joins (%.0f%% hit rate)\n",
		hits, misses, joins, hitRate*100)
	fmt.Printf("  retries:  %d total across %d requests (429/503 backoff, max %d per request)\n",
		totalRetries, retriedReqs, *maxRetries)
	fmt.Printf("  identity: %d distinct request identities, %d byte mismatches\n",
		len(bodies), mismatches)

	fail := false
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "measload: %d requests failed\n", errs)
		fail = true
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "measload: %d duplicate responses were NOT byte-identical\n", mismatches)
		fail = true
	}
	if hits < float64(*minCacheHits) {
		fmt.Fprintf(os.Stderr, "measload: measured_cache_hits_total grew by %.0f, want >= %d\n",
			hits, *minCacheHits)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// retryBackoff is the wait before retry attempt (1-based): exponential from
// 50ms, capped at 2s, jittered to [50%, 150%) by the caller's seeded RNG so
// clients rejected together do not retry together.
func retryBackoff(attempt int, rng *rand.Rand) time.Duration {
	base := 50 * time.Millisecond << (attempt - 1)
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	return base/2 + time.Duration(rng.Int63n(int64(base)))
}

// fetch performs one /measure request, retrying transient rejections —
// HTTP 429 (rate limited) and 503 (draining, degraded, storage) are the
// service's explicitly retryable statuses — up to maxRetries times with
// jittered exponential backoff. It returns the final response body, how
// many run records it carried, and how many retries were spent.
func fetch(httpc *http.Client, url string, maxRetries int, rng *rand.Rand) (body []byte, runs, retried int, err error) {
	for attempt := 0; ; attempt++ {
		var status int
		body, runs, status, err = fetchOnce(httpc, url)
		retryable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if err == nil || !retryable || attempt >= maxRetries {
			return body, runs, attempt, err
		}
		time.Sleep(retryBackoff(attempt+1, rng))
	}
}

// fetchOnce performs one /measure request and returns the full response
// body, how many run records it carried, and the HTTP status. It validates
// the NDJSON shape: at least one record line plus the terminal aggregate
// frame.
func fetchOnce(httpc *http.Client, url string) (body []byte, runs, status int, err error) {
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, resp.StatusCode, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		return nil, 0, resp.StatusCode, fmt.Errorf("%s: want >= 2 NDJSON lines, got %d", url, len(lines))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"aggregate"`) {
		return nil, 0, resp.StatusCode, fmt.Errorf("%s: response not terminated by an aggregate frame", url)
	}
	return body, len(lines) - 1, resp.StatusCode, nil
}

// scrapeMetrics fetches /metrics and parses `name value` lines into a map
// (labeled series keep their label string in the name).
func scrapeMetrics(httpc *http.Client, addr string) (map[string]float64, error) {
	resp, err := httpc.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// quantile returns the q-th quantile of sorted samples (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.999999)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
