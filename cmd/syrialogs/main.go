// Command syrialogs generates and analyzes censorship-device logs in the
// Syrian-leak style (§2.2 of the paper).
//
// Usage:
//
//	syrialogs -generate logs.tsv -users 21000   # write a synthetic 2-day log
//	syrialogs -analyze logs.tsv                  # the Chaabane-style analysis
//	syrialogs -users 5000                        # generate + analyze in memory
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"safemeasure/internal/censorlogs"
)

func main() {
	genPath := flag.String("generate", "", "write a synthetic log to this file")
	anaPath := flag.String("analyze", "", "analyze an existing log file")
	users := flag.Int("users", 21000, "population size for generation")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	var entries []censorlogs.Entry
	switch {
	case *anaPath != "":
		f, err := os.Open(*anaPath)
		if err != nil {
			fatal(err)
		}
		entries, err = censorlogs.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		cfg := censorlogs.DefaultConfig()
		cfg.Users = *users
		cfg.Seed = *seed
		entries = censorlogs.Generate(cfg)
		if *genPath != "" {
			f, err := os.Create(*genPath)
			if err != nil {
				fatal(err)
			}
			n, err := censorlogs.WriteTo(f, entries)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d entries (%d bytes) to %s\n", len(entries), n, *genPath)
			return
		}
	}

	rep := censorlogs.Analyze(entries)
	fmt.Printf("requests        : %d\n", rep.TotalRequests)
	fmt.Printf("denied          : %d\n", rep.TotalDenied)
	fmt.Printf("users           : %d\n", rep.Users)
	fmt.Printf("users w/ denial : %d (%.2f%%)  [paper: 1.57%%]\n",
		rep.UsersWithDenial, 100*rep.UserDenialFraction)
	var cats []string
	for c := range rep.DeniedByCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Println("denials by category:")
	for _, c := range cats {
		fmt.Printf("  %-18s %d\n", c, rep.DeniedByCategory[c])
	}
	fmt.Println("top denied sites:")
	for _, sc := range rep.TopDeniedSites {
		fmt.Printf("  %-22s %d\n", sc.Site, sc.Count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
