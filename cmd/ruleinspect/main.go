// Command ruleinspect works with the lab's Snort-like rule language: it
// parses a ruleset (a file, or the lab's default surveillance ruleset),
// lists the compiled rules, and optionally tests a payload against them.
//
// Usage:
//
//	ruleinspect                         # show the default surveillance ruleset
//	ruleinspect -rules my.rules         # parse and list a ruleset file
//	ruleinspect -match "GET /falun"     # which rules fire on this TCP payload?
//	ruleinspect -match-port 25 -match "lottery winner"
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"safemeasure/internal/ids"
	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
)

func main() {
	rulesFile := flag.String("rules", "", "ruleset file; empty uses the lab's default surveillance rules")
	match := flag.String("match", "", "test payload: report rules that fire on it")
	matchPort := flag.Uint("match-port", 80, "destination port for the test payload")
	flag.Parse()

	text := ""
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		text = string(data)
	} else {
		text = lab.DefaultSurveilRules(lab.DefaultCensorConfig())
	}

	vars := map[string]netip.Prefix{"HOME_NET": lab.ClientASPrefix}
	rules, err := ids.ParseRules(text, vars)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse error: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("parsed %d rules\n\n", len(rules))
	for _, r := range rules {
		contents := ""
		for _, c := range r.Contents {
			neg := ""
			if c.Negate {
				neg = "!"
			}
			contents += fmt.Sprintf(" content:%s%q", neg, c.Pattern)
		}
		fmt.Printf("  sid=%-5d %-10s [%s] %s%s\n", r.SID, r.Proto, r.Classtype, r.Msg, contents)
	}

	if *match == "" {
		return
	}

	engine := ids.NewEngine(rules)
	src := lab.ClientAddr
	dst := lab.WebAddr
	raw, err := packet.BuildTCP(src, dst, packet.DefaultTTL, &packet.TCP{
		SrcPort: 40000, DstPort: uint16(*matchPort),
		Flags: packet.TCPPsh | packet.TCPAck, Payload: []byte(*match),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pkt, err := packet.Parse(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	alerts := engine.Feed(0, pkt)
	fmt.Printf("\npayload %q to port %d fires %d rule(s):\n", *match, *matchPort, len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %v\n", a)
	}
}
