// Command measanalyze analyzes campaign output at archive scale: it streams
// record files, flat observation files (JSONL or binary), and live files a
// campaign is still appending to, in bounded memory regardless of input
// size.
//
// Usage:
//
//	measanalyze summarize results.jsonl           # per-axis marginals
//	measanalyze compare baseline.jsonl candidate.jsonl
//	measanalyze filter -type verdict -technique spam archive.bin
//	measanalyze export -o rows.csv archive.bin    # CSV for spreadsheet tools
//	measanalyze convert -o archive.bin results.jsonl
//
// Every subcommand accepts any of the three input shapes and sniffs which
// one it got: the binary magic, observation JSONL (rows with "run" and
// "type" keys), or campaign record JSONL (flattened on the fly). A torn
// trailing record — the normal state of a file a live campaign is appending
// to, or of a writer killed mid-record — is skipped and counted on stderr
// rather than treated as an error; -strict makes it fatal.
//
// compare reads two campaign files, folds each into per-cell (scenario,
// impairment, behavior, technique) verdict-accuracy counts, and calls each
// cell better/worse/inconclusive by the Wilson confidence intervals: a
// verdict is only issued when the intervals are disjoint, so small cells say
// "inconclusive", not "regression". The two files must carry the same set of
// censor-behavior values — comparing a behavior-swept file against a
// faithful-censor one is refused as a column mismatch. Output is
// deterministically sorted; -fail-worse exits 3 when any cell regressed,
// for CI gates.
//
// Exit codes: 0 success, 1 I/O or parse failure, 2 usage, 3 regression
// found (compare -fail-worse only).
package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/stats"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: measanalyze <command> [flags] <file>...

commands:
  summarize  per-axis marginals (scenario / technique / impairment / cell)
  compare    per-cell Wilson-CI accuracy deltas between two campaign files
  filter     select observations by axis and write them back out
  export     dump observations as CSV
  convert    transcode between JSONL and binary observation encodings

run "measanalyze <command> -h" for that command's flags
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "filter":
		err = cmdFilter(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "measanalyze: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "measanalyze:", err)
		os.Exit(1)
	}
}

// inputKind is what a sniffed file turned out to hold.
type inputKind int

const (
	kindObservations inputKind = iota // flat rows, JSONL or binary
	kindRecords                       // campaign RunRecord JSONL
)

// classify sniffs the input shape from its first bytes: the binary magic,
// or — for JSONL — whether the first line is a flat observation row (always
// carries "run" and "type" keys) or a campaign record (carries neither).
func classify(head []byte) inputKind {
	if bytes.HasPrefix(head, []byte(archival.Magic)) {
		return kindObservations
	}
	line := head
	if i := bytes.IndexByte(head, '\n'); i >= 0 {
		line = head[:i]
	}
	if bytes.Contains(line, []byte(`"run":`)) && bytes.Contains(line, []byte(`"type":`)) {
		return kindObservations
	}
	return kindRecords
}

// input is one opened, sniffed file.
type input struct {
	path string
	f    *os.File
	br   *bufio.Reader
	kind inputKind
}

func openInput(path string) (*input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	head, err := br.Peek(4096)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &input{path: path, f: f, br: br, kind: classify(head)}, nil
}

func (in *input) Close() error { return in.f.Close() }

// tailFlag converts the -strict flag to a tail policy.
func tailFlag(strict bool) archival.TailPolicy {
	if strict {
		return archival.TailStrict
	}
	return archival.TailTolerate
}

// warnTorn reports a tolerated torn record as it is skipped.
func warnTorn(path string) func(line int, err error) {
	return func(line int, err error) {
		if line > 0 {
			fmt.Fprintf(os.Stderr, "measanalyze: %s: skipping torn trailing line %d: %v\n", path, line, err)
			return
		}
		fmt.Fprintf(os.Stderr, "measanalyze: %s: skipping torn trailing binary record\n", path)
	}
}

// forEachObservation streams every observation in the input: flat files
// yield their rows directly, record files are flattened on the fly. Memory
// is bounded by one row (or one record's rows) at a time.
func forEachObservation(in *input, tail archival.TailPolicy, fn func(archival.Observation) error) error {
	if in.kind == kindRecords {
		_, err := archival.DecodeJSONL(in.br, tail, warnTorn(in.path), func(rec campaign.RunRecord) error {
			for _, o := range campaign.FlattenRecord(rec) {
				if err := fn(o); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		return nil
	}
	r, err := archival.NewReader(in.br, tail, warnTorn(in.path))
	if err != nil {
		return fmt.Errorf("%s: %w", in.path, err)
	}
	for {
		o, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		if err := fn(o); err != nil {
			return err
		}
	}
}

// isRecordRow reports whether an observation type carries record state (as
// opposed to trace/packet rows, which ride alongside and reconstruct through
// their own paths).
func isRecordRow(typ string) bool {
	return typ != archival.TypeTrace && typ != archival.TypePacket
}

// forEachRecord streams every run record in the input: record files decode
// directly; observation files are regrouped by run contiguity (archives
// write each run's rows as one contiguous batch) and unflattened. Groups
// holding only trace or packet rows are not records and are skipped.
func forEachRecord(in *input, tail archival.TailPolicy, fn func(campaign.RunRecord) error) error {
	if in.kind == kindRecords {
		_, err := archival.DecodeJSONL(in.br, tail, warnTorn(in.path), fn)
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		return nil
	}
	var batch []archival.Observation
	hasRecordRows := false
	flush := func() error {
		defer func() { batch, hasRecordRows = batch[:0], false }()
		if !hasRecordRows {
			return nil
		}
		rec, err := campaign.UnflattenRecord(batch)
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		return fn(rec)
	}
	err := forEachObservation(in, tail, func(o archival.Observation) error {
		if len(batch) > 0 && o.Run != batch[0].Run {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, o)
		if isRecordRow(o.Type) {
			hasRecordRows = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// cellKey orders cells the same way campaign summaries do.
type cellKey struct {
	Scenario, Impairment, Behavior, Technique string
}

func (k cellKey) less(o cellKey) bool {
	if k.Scenario != o.Scenario {
		return k.Scenario < o.Scenario
	}
	if k.Impairment != o.Impairment {
		return k.Impairment < o.Impairment
	}
	if k.Behavior != o.Behavior {
		return k.Behavior < o.Behavior
	}
	return k.Technique < o.Technique
}

// impairLabel renders the pristine link's empty name readably.
func impairLabel(name string) string {
	if name == "" {
		return "-"
	}
	return name
}

// behaviorLabel renders the faithful censor's empty name readably.
func behaviorLabel(name string) string {
	if name == "" {
		return "-"
	}
	return name
}

// axisCounts is the streaming accumulator behind every summarize marginal.
type axisCounts struct {
	Runs, Errors, Correct, Inconclusive, Flagged int
}

func (c *axisCounts) add(rec campaign.RunRecord) {
	if rec.Error != "" {
		c.Errors++
		return
	}
	c.Runs++
	if rec.Correct {
		c.Correct++
	}
	if rec.Verdict == "inconclusive" {
		c.Inconclusive++
	}
	if rec.Flagged {
		c.Flagged++
	}
}

// marginTable renders one axis's marginal as an accuracy table with Wilson
// intervals.
func marginTable(title, col string, m map[string]*axisCounts, label func(string) string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := stats.NewTable(col, "runs", "errors", "accuracy", "acc-95ci", "inconcl", "flag-rate")
	for _, k := range keys {
		c := m[k]
		lo, hi := stats.Wilson95(c.Correct, c.Runs)
		t.AddRow(label(k), c.Runs, c.Errors, frac(c.Correct, c.Runs),
			fmt.Sprintf("%.2f-%.2f", lo, hi), frac(c.Inconclusive, c.Runs), frac(c.Flagged, c.Runs))
	}
	return title + ":\n" + t.String()
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func cmdSummarize(argv []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat a torn trailing record as an error instead of skipping it")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: measanalyze summarize [-strict] <file>")
		os.Exit(2)
	}
	in, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()

	byCell := map[cellKey]*axisCounts{}
	byScenario := map[string]*axisCounts{}
	byTechnique := map[string]*axisCounts{}
	byImpair := map[string]*axisCounts{}
	byBehavior := map[string]*axisCounts{}
	var total axisCounts
	get := func(m map[string]*axisCounts, k string) *axisCounts {
		c := m[k]
		if c == nil {
			c = &axisCounts{}
			m[k] = c
		}
		return c
	}
	err = forEachRecord(in, tailFlag(*strict), func(rec campaign.RunRecord) error {
		key := cellKey{rec.Scenario, rec.Impairment, rec.Behavior, rec.Technique}
		c := byCell[key]
		if c == nil {
			c = &axisCounts{}
			byCell[key] = c
		}
		c.add(rec)
		get(byScenario, rec.Scenario).add(rec)
		get(byTechnique, rec.Technique).add(rec)
		get(byImpair, rec.Impairment).add(rec)
		get(byBehavior, rec.Behavior).add(rec)
		total.add(rec)
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s — %d completed runs, %d errors, %d cells\n\n",
		in.path, total.Runs, total.Errors, len(byCell))
	ident := func(s string) string { return s }
	fmt.Println(marginTable("per-scenario", "scenario", byScenario, ident))
	fmt.Println(marginTable("per-technique", "technique", byTechnique, ident))
	fmt.Println(marginTable("per-impairment", "impairment", byImpair, impairLabel))
	fmt.Println(marginTable("per-behavior", "behavior", byBehavior, behaviorLabel))

	keys := make([]cellKey, 0, len(byCell))
	for k := range byCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	t := stats.NewTable("scenario", "impair", "behav", "technique", "runs", "errors", "accuracy", "acc-95ci", "inconcl", "flag-rate")
	for _, k := range keys {
		c := byCell[k]
		lo, hi := stats.Wilson95(c.Correct, c.Runs)
		t.AddRow(k.Scenario, impairLabel(k.Impairment), behaviorLabel(k.Behavior), k.Technique, c.Runs, c.Errors,
			frac(c.Correct, c.Runs), fmt.Sprintf("%.2f-%.2f", lo, hi),
			frac(c.Inconclusive, c.Runs), frac(c.Flagged, c.Runs))
	}
	fmt.Println("per-cell:\n" + t.String())
	return nil
}

// foldCells streams one campaign file into per-cell accuracy counts plus the
// set of distinct censor-behavior values its records carry.
func foldCells(path string, tail archival.TailPolicy) (map[cellKey]*axisCounts, map[string]bool, error) {
	in, err := openInput(path)
	if err != nil {
		return nil, nil, err
	}
	defer in.Close()
	cells := map[cellKey]*axisCounts{}
	behaviors := map[string]bool{}
	err = forEachRecord(in, tail, func(rec campaign.RunRecord) error {
		key := cellKey{rec.Scenario, rec.Impairment, rec.Behavior, rec.Technique}
		c := cells[key]
		if c == nil {
			c = &axisCounts{}
			cells[key] = c
		}
		c.add(rec)
		behaviors[rec.Behavior] = true
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return cells, behaviors, nil
}

// behaviorSetsMatch reports whether two files swept the same censor-behavior
// values. Comparing a behavior-swept candidate against a faithful-censor
// baseline silently pairs cells that never ran in the other file, so compare
// refuses the mismatch instead of issuing misleading verdicts.
func behaviorSetsMatch(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// behaviorSetString renders a behavior set sorted, for error messages.
func behaviorSetString(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, behaviorLabel(k))
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return "(no records)"
	}
	out := keys[0]
	for _, k := range keys[1:] {
		out += "," + k
	}
	return out
}

func cmdCompare(argv []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat a torn trailing record as an error instead of skipping it")
	failWorse := fs.Bool("fail-worse", false, "exit 3 when any cell's accuracy credibly regressed")
	z := fs.Float64("z", stats.Z95, "critical value for the Wilson intervals")
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: measanalyze compare [-strict] [-fail-worse] [-z v] <baseline> <candidate>")
		os.Exit(2)
	}
	cellsA, behaviorsA, err := foldCells(fs.Arg(0), tailFlag(*strict))
	if err != nil {
		return err
	}
	cellsB, behaviorsB, err := foldCells(fs.Arg(1), tailFlag(*strict))
	if err != nil {
		return err
	}
	if !behaviorSetsMatch(behaviorsA, behaviorsB) {
		return fmt.Errorf("censor-behavior mismatch: %s carries behaviors {%s} but %s carries {%s}; filter both files to a common behavior set before comparing",
			fs.Arg(0), behaviorSetString(behaviorsA), fs.Arg(1), behaviorSetString(behaviorsB))
	}

	union := map[cellKey]bool{}
	for k := range cellsA {
		union[k] = true
	}
	for k := range cellsB {
		union[k] = true
	}
	keys := make([]cellKey, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	var better, worse, inconclusive int
	t := stats.NewTable("scenario", "impair", "behav", "technique",
		"a-runs", "a-acc", "a-95ci", "b-runs", "b-acc", "b-95ci", "delta", "verdict")
	for _, k := range keys {
		var a, b axisCounts
		if c := cellsA[k]; c != nil {
			a = *c
		}
		if c := cellsB[k]; c != nil {
			b = *c
		}
		d := stats.CompareProportions(a.Correct, a.Runs, b.Correct, b.Runs, *z)
		switch d.Verdict {
		case stats.VerdictBetter:
			better++
		case stats.VerdictWorse:
			worse++
		default:
			inconclusive++
		}
		t.AddRow(k.Scenario, impairLabel(k.Impairment), behaviorLabel(k.Behavior), k.Technique,
			d.NA, d.PA, fmt.Sprintf("%.2f-%.2f", d.LoA, d.HiA),
			d.NB, d.PB, fmt.Sprintf("%.2f-%.2f", d.LoB, d.HiB),
			fmt.Sprintf("%+.3f", d.Delta), d.Verdict)
	}
	fmt.Printf("verdict-accuracy: %s (baseline) vs %s (candidate), z=%.3f\n\n",
		fs.Arg(0), fs.Arg(1), *z)
	fmt.Println(t.String())
	fmt.Printf("cells: %d better, %d worse, %d inconclusive\n", better, worse, inconclusive)
	if *failWorse && worse > 0 {
		fmt.Fprintf(os.Stderr, "measanalyze: %d cell(s) credibly regressed\n", worse)
		os.Exit(3)
	}
	return nil
}

// outputWriter opens the observation writer a subcommand writes to: the
// format follows the -o extension (FormatForPath) unless -format forces one.
func outputWriter(out, format string) (archival.Writer, io.Closer, error) {
	var f archival.Format
	switch format {
	case "":
		f = archival.FormatForPath(out)
	case "jsonl":
		f = archival.FormatJSONL
	case "binary", "bin":
		f = archival.FormatBinary
	default:
		return nil, nil, fmt.Errorf("unknown -format %q (want jsonl or binary)", format)
	}
	if out == "" || out == "-" {
		return archival.NewWriter(os.Stdout, f), io.NopCloser(nil), nil
	}
	file, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return archival.NewWriter(file, f), file, nil
}

func cmdFilter(argv []string) error {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat a torn trailing record as an error instead of skipping it")
	typ := fs.String("type", "", "keep only rows of this observation type")
	technique := fs.String("technique", "", "keep only rows of this technique")
	scenario := fs.String("scenario", "", "keep only rows of this scenario")
	impairment := fs.String("impairment", "", "keep only rows of this impairment ('-' for the pristine link)")
	behavior := fs.String("behavior", "", "keep only rows of this censor behavior ('-' for the faithful censor)")
	trial := fs.Int("trial", -1, "keep only rows of this trial (-1 keeps all)")
	run := fs.String("run", "", "keep only rows of this run id")
	limit := fs.Int("limit", 0, "stop after this many rows (0 = unlimited)")
	out := fs.String("o", "", "output path (extension picks the encoding; empty/- is JSONL on stdout)")
	format := fs.String("format", "", "force output encoding: jsonl or binary")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: measanalyze filter [flags] <file>")
		os.Exit(2)
	}
	var runID uint64
	if *run != "" {
		var err error
		runID, err = strconv.ParseUint(*run, 10, 64)
		if err != nil {
			return fmt.Errorf("-run %q: %w", *run, err)
		}
	}
	wantImpair := *impairment
	if wantImpair == "-" {
		wantImpair = ""
	}
	wantBehavior := *behavior
	if wantBehavior == "-" {
		wantBehavior = ""
	}
	keep := func(o archival.Observation) bool {
		switch {
		case *typ != "" && o.Type != *typ,
			*technique != "" && o.Technique != *technique,
			*scenario != "" && o.Scenario != *scenario,
			*impairment != "" && o.Impairment != wantImpair,
			*behavior != "" && o.Behavior != wantBehavior,
			*trial >= 0 && o.Trial != *trial,
			*run != "" && o.Run != runID:
			return false
		}
		return true
	}

	in, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	w, closer, err := outputWriter(*out, *format)
	if err != nil {
		return err
	}
	defer closer.Close()
	kept := 0
	errStop := fmt.Errorf("limit reached")
	err = forEachObservation(in, tailFlag(*strict), func(o archival.Observation) error {
		if !keep(o) {
			return nil
		}
		w.WriteObservations([]archival.Observation{o})
		kept++
		if *limit > 0 && kept >= *limit {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "measanalyze: %d row(s) written\n", kept)
	return nil
}

func cmdExport(argv []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat a torn trailing record as an error instead of skipping it")
	out := fs.String("o", "", "CSV output path (empty/- is stdout)")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: measanalyze export [-strict] [-o rows.csv] <file>")
		os.Exit(2)
	}
	in, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	var dst io.Writer = os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	cw := csv.NewWriter(dst)
	header := []string{"id", "run", "type", "technique", "scenario", "impairment", "behavior",
		"trial", "seed", "seq", "t", "name", "src", "dst", "detail", "value", "count", "flag",
		"confidence"}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	err = forEachObservation(in, tailFlag(*strict), func(o archival.Observation) error {
		n++
		return cw.Write([]string{
			strconv.FormatUint(o.ID, 10), strconv.FormatUint(o.Run, 10), o.Type,
			o.Technique, o.Scenario, o.Impairment, o.Behavior,
			strconv.Itoa(o.Trial), strconv.FormatInt(o.Seed, 10), strconv.Itoa(o.Seq),
			strconv.FormatInt(o.T, 10), o.Name, o.Src, o.Dst, o.Detail,
			strconv.FormatFloat(o.Value, 'g', -1, 64), strconv.FormatInt(o.Count, 10),
			strconv.FormatBool(o.Flag),
			strconv.FormatFloat(o.Confidence, 'g', -1, 64),
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "measanalyze: %d row(s) exported\n", n)
	return nil
}

func cmdConvert(argv []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	strict := fs.Bool("strict", false, "treat a torn trailing record as an error instead of skipping it")
	out := fs.String("o", "", "output path (extension picks the encoding; empty/- is stdout)")
	format := fs.String("format", "", "force output encoding: jsonl or binary")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: measanalyze convert [-strict] [-format jsonl|binary] -o <out> <file>")
		os.Exit(2)
	}
	in, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	w, closer, err := outputWriter(*out, *format)
	if err != nil {
		return err
	}
	defer closer.Close()
	err = forEachObservation(in, tailFlag(*strict), func(o archival.Observation) error {
		w.WriteObservations([]archival.Observation{o})
		return nil
	})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "measanalyze: %d row(s) converted\n", w.Count())
	return nil
}
