// Command campaign runs measurement campaigns: a technique × scenario ×
// trial matrix sharded across a worker pool, streamed to a JSONL file as
// runs complete, and aggregated into per-technique/per-scenario accuracy,
// MVR-evasion, and analyst-flag tables.
//
// Usage:
//
//	campaign -techniques all -scenarios keyword-rst,dns-poison,blackhole \
//	         -trials 20 -workers 8 -seed 1 -out results.jsonl
//	campaign -techniques spam,spoofed-dns -scenarios dns-poison -trials 50
//	campaign -resume -out results.jsonl     # finish an interrupted campaign
//	campaign -list
//
// Every run seed derives from -seed and the run's coordinates, so repeating
// a campaign with a different -workers value yields identical records (the
// JSONL line order is completion order; sort to compare).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/core"
	"safemeasure/internal/lab"
)

func main() {
	techniques := flag.String("techniques", "all", "comma-separated technique names, or all")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or all")
	trials := flag.Int("trials", 1, "trials per technique x scenario cell")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	seed := flag.Int64("seed", 1, "campaign master seed")
	out := flag.String("out", "", "JSONL output path (- for stdout; empty writes no file)")
	timeout := flag.Duration("timeout", 60*time.Second, "wall-clock budget per run")
	resume := flag.Bool("resume", false, "skip runs already recorded in -out and append")
	list := flag.Bool("list", false, "list scenarios and techniques, then exit")
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range lab.Scenarios() {
			truth := "accessible"
			if sc.Censored {
				truth = "censored"
			}
			fmt.Printf("  %-12s %-10s %s\n", sc.Name, truth, sc.Summary)
		}
		fmt.Println("techniques:")
		for _, name := range core.Names() {
			kind := "overt baseline"
			if t, _ := core.ByName(name); core.Stealth(t) {
				kind = "stealth"
			}
			fmt.Printf("  %-14s %s\n", name, kind)
		}
		return
	}

	if *workers < 1 {
		*workers = 1
	}
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "campaign: -trials must be >= 1 (got %d)\n", *trials)
		os.Exit(2)
	}
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Techniques: splitCSV(*techniques),
		Scenarios:  splitCSV(*scenarios),
		Trials:     *trials,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	planned := len(plan.Specs)

	opts := campaign.Options{Workers: *workers, Timeout: *timeout}
	var sink *campaign.JSONLSink
	switch {
	case *out == "-":
		sink = campaign.NewJSONLSink(os.Stdout)
	case *out != "" && *resume:
		done, err := readDone(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		plan = plan.Filter(func(s campaign.RunSpec) bool {
			return !done[[3]any{s.Technique, s.Scenario, s.Trial}]
		})
		if len(plan.Specs) == 0 {
			fmt.Fprintf(os.Stderr, "campaign: all %d planned runs already in %s\n", planned, *out)
			return
		}
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = campaign.NewJSONLSink(f)
	case *out != "":
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = campaign.NewJSONLSink(f)
	}
	if sink != nil {
		opts.OnRecord = sink.Write
	}

	start := time.Now()
	recs, err := campaign.Run(plan, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: sink:", err)
			os.Exit(1)
		}
	}

	sum := campaign.Aggregate(recs)
	fmt.Println(sum.Render())
	fmt.Printf("executed %d/%d runs with %d workers in %v (%.1f runs/s)\n",
		len(recs), planned, *workers, elapsed.Round(time.Millisecond),
		float64(len(recs))/elapsed.Seconds())
	if *out != "" && *out != "-" {
		fmt.Printf("records appended to %s\n", *out)
	}
	if sum.Errors > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d runs failed\n", sum.Errors)
		os.Exit(1)
	}
}

// splitCSV turns "a,b , c" into {"a","b","c"}.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// readDone loads the coordinates of error-free runs already in a JSONL file.
func readDone(path string) (map[[3]any]bool, error) {
	done := map[[3]any]bool{}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := campaign.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("campaign: -resume: %w", err)
	}
	for _, r := range recs {
		if r.Error == "" {
			done[[3]any{r.Technique, r.Scenario, r.Trial}] = true
		}
	}
	return done, nil
}
