// Command campaign runs measurement campaigns: a technique × scenario ×
// impairment × trial matrix sharded across a worker pool, streamed to a
// JSONL file as runs complete, and aggregated into per-technique,
// per-scenario, and per-impairment accuracy, MVR-evasion, and analyst-flag
// tables.
//
// Usage:
//
//	campaign -techniques all -scenarios keyword-rst,dns-poison,blackhole \
//	         -trials 20 -workers 8 -seed 1 -out results.jsonl
//	campaign -techniques spam,spoofed-dns -scenarios dns-poison -trials 50
//	campaign -impairments all -trials 10    # sweep every link impairment
//	campaign -impairments lossy20 -retries 1  # single-shot scoring ablation
//	campaign -censor-behavior all -trials 10  # sweep every adversarial censor
//	campaign -censor-behavior intermittent -corroborate 5  # k-of-n hardening
//	campaign -resume -out results.jsonl     # finish an interrupted campaign
//	campaign -trials 5 -metrics-addr :9090 -trace trace.jsonl
//	campaign -list
//
// -metrics-addr serves live Prometheus-style counters on /metrics and a JSON
// view of per-cell campaign completion on /progress. -trace streams every
// run's packet-path events (probe sent, censor alert, MVR log/discard, TTL
// expiry, RST injection) as JSONL with virtual-time timestamps; sorting the
// file's lines yields a byte-identical stream for any -workers value.
// -archive streams the same runs as flat archival observations — one
// self-describing row per sub-measurement, analyzable with measanalyze —
// in JSONL, or in the compact binary encoding when the path ends in .bin
// or .smoa.
//
// Every run seed derives from -seed and the run's coordinates, so repeating
// a campaign with a different -workers value yields identical records (the
// JSONL line order is completion order; sort to compare).
//
// Interruption is a first-class outcome, not a crash: the first SIGINT or
// SIGTERM stops dispatching, drains in-flight runs within -grace, flushes
// both sinks, prints the partial summary, and exits 130 with a -resume
// hint; a second signal flushes best-effort and exits immediately.
// -sync-every N bounds what a hard kill can lose to N records per sink.
//
// Supervision: -breaker N trips a per-cell circuit breaker after N
// consecutive failed runs (skipped runs are explicit records a later
// -resume re-runs); -fail-budget F aborts the whole campaign once more than
// fraction F of completed runs are errors, flushing the sinks and exiting 3
// with a -resume hint; -hedge launches a second attempt for straggling runs
// (a duration, or pNN to derive the delay from live run latency). A stall
// watchdog dumps goroutines to stderr if no run completes for 3x -timeout.
//
// Exit codes: 0 success, 1 run errors or internal failure, 2 usage,
// 3 failure-budget abort (resumable), 130 interrupted (resumable).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/telemetry"
)

// exitInterrupted is the exit code of a drained, resumable interrupt — the
// conventional 128+SIGINT, kept fixed for both signals so scripts can test
// for "partial but valid output" with one code.
const exitInterrupted = 130

// exitBudgetAbort is the exit code of a failure-budget abort: like 130 the
// output file is a valid, resumable partial — but the cause is the campaign
// itself being too sick to continue, not an operator signal, so scripts can
// tell the two apart.
const exitBudgetAbort = 3

// poolRunning backs /readyz when -metrics-addr is set: true exactly while
// the campaign pool is dispatching runs.
var poolRunning atomic.Bool

func main() {
	techniques := flag.String("techniques", "all", "comma-separated technique names, or all")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or all")
	impairments := flag.String("impairments", "none", "comma-separated link-impairment presets, or all")
	behaviors := flag.String("censor-behavior", "none", "comma-separated adversarial censor-behavior presets, or all")
	retries := flag.Int("retries", core.DefaultMaxAttempts, "max probe attempts per run (1 = single-shot legacy scoring)")
	corroborate := flag.Int("corroborate", 0, "cross-trial corroboration: run each probe N times and require k-of-n verdict agreement (0 disables; >= 2 enables)")
	trials := flag.Int("trials", 1, "trials per technique x scenario x impairment cell")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	seed := flag.Int64("seed", 1, "campaign master seed")
	out := flag.String("out", "", "JSONL output path (- for stdout; empty writes no file)")
	timeout := flag.Duration("timeout", 60*time.Second, "wall-clock budget per run")
	grace := flag.Duration("grace", 10*time.Second, "drain budget for in-flight runs after an interrupt (negative waits forever)")
	syncEvery := flag.Int("sync-every", 64, "flush+fsync sinks every N lines so a hard crash loses at most N (0 buffers until exit)")
	breakerN := flag.Int("breaker", 0, "per-cell circuit breaker: open after N consecutive failed runs, skip during cooldown, half-open probe (0 disables)")
	failBudget := flag.Float64("fail-budget", -1, "abort the campaign when more than this fraction of completed runs are errors (negative disables)")
	hedgeSpec := flag.String("hedge", "", "hedge straggling runs: a duration (e.g. 500ms) or pNN (e.g. p95) derived from live run latency (empty disables)")
	resume := flag.Bool("resume", false, "skip runs already recorded in -out and append")
	list := flag.Bool("list", false, "list scenarios and techniques, then exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /progress, and /debug/pprof on this address (e.g. :9090)")
	profContention := flag.Bool("pprof-contention", false, "record mutex and block profiles (served under -metrics-addr's /debug/pprof; costs a little on every contended lock)")
	tracePath := flag.String("trace", "", "stream packet-path trace events to this JSONL file (- for stdout)")
	archivePath := flag.String("archive", "", "stream flat observation rows (records and traces) to this file; a .bin/.smoa extension selects the compact binary encoding")
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range lab.Scenarios() {
			truth := "accessible"
			if sc.Censored {
				truth = "censored"
			}
			fmt.Printf("  %-12s %-10s %s\n", sc.Name, truth, sc.Summary)
		}
		fmt.Println("techniques:")
		for _, name := range core.Names() {
			kind := "overt baseline"
			if t, _ := core.ByName(name); core.Stealth(t) {
				kind = "stealth"
			}
			fmt.Printf("  %-14s %s\n", name, kind)
		}
		fmt.Println("impairments:")
		for _, p := range lab.Impairments() {
			fmt.Printf("  %-12s %s\n", p.Name, p.Summary)
		}
		fmt.Println("censor behaviors:")
		for _, p := range lab.Behaviors() {
			fmt.Printf("  %-17s %s\n", p.Name, p.Summary)
		}
		return
	}

	if *workers < 1 {
		*workers = 1
	}
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "campaign: -trials must be >= 1 (got %d)\n", *trials)
		os.Exit(2)
	}
	if *retries < 1 {
		fmt.Fprintf(os.Stderr, "campaign: -retries must be >= 1 (got %d)\n", *retries)
		os.Exit(2)
	}
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Techniques:  splitCSV(*techniques),
		Scenarios:   splitCSV(*scenarios),
		Impairments: splitCSV(*impairments),
		Behaviors:   splitCSV(*behaviors),
		Trials:      *trials,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	planned := len(plan.Specs)

	if *corroborate == 1 || *corroborate < 0 {
		fmt.Fprintf(os.Stderr, "campaign: -corroborate must be 0 (off) or >= 2 (got %d)\n", *corroborate)
		os.Exit(2)
	}
	retry := core.DefaultRetryPolicy()
	retry.MaxAttempts = *retries
	retry.Corroborate = *corroborate
	opts := campaign.Options{Workers: *workers, Timeout: *timeout, Grace: *grace, Retry: retry,
		StallDump: os.Stderr}
	var breakers *campaign.BreakerSet
	if *breakerN > 0 {
		breakers = campaign.NewBreakerSet(campaign.BreakerConfig{Consecutive: *breakerN})
		opts.Breakers = breakers
	}
	if *failBudget >= 0 {
		opts.Budget = &campaign.FailureBudget{Fraction: *failBudget}
	}
	if *hedgeSpec != "" {
		hedge, err := parseHedge(*hedgeSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Hedge = hedge
	}
	var sink *campaign.JSONLSink
	switch {
	case *out == "-":
		sink = campaign.NewJSONLSink(os.Stdout)
	case *out != "" && *resume:
		done, truncateAt, err := readDone(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if truncateAt >= 0 {
			// Cut the partial trailing line off before appending, so the
			// first new record starts on its own line.
			if err := os.Truncate(*out, truncateAt); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: -resume:", err)
				os.Exit(1)
			}
		}
		plan = plan.Remaining(done)
		if len(plan.Specs) == 0 {
			fmt.Fprintf(os.Stderr, "campaign: all %d planned runs already in %s\n", planned, *out)
			return
		}
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = campaign.NewJSONLSink(f)
	case *out != "":
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = campaign.NewJSONLSink(f)
	}
	// Telemetry: a registry when either endpoint consumer wants it, a
	// progress tracker for /progress, and a trace sink for -trace. The
	// progress tracker is built after -resume filtering so its planned
	// totals reflect what this invocation will actually run.
	var reg *telemetry.Registry
	var prog *campaign.Progress
	shutdownMetrics := func() {}
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		prog = campaign.NewProgress(plan)
		prog.Breakers(breakers)
		if *profContention {
			// 1-in-5 mutex events, blocking >= 100µs: cheap enough to leave
			// on for a whole campaign, detailed enough to rank hot locks.
			telemetry.EnableContentionProfiling(5, 100_000)
		}
		// /readyz mirrors the pool lifecycle: ready while the campaign is
		// dispatching runs, not before the pool starts nor once it drains —
		// the same contract safemeasured serves, so probes work on both.
		srv, addr, err := telemetry.Serve(*metricsAddr, reg, func() any { return prog.Snapshot() },
			func() error {
				if !poolRunning.Load() {
					return errors.New("campaign pool not running")
				}
				return nil
			},
			func(err error) { fmt.Fprintln(os.Stderr, "campaign: metrics server:", err) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign: metrics server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "campaign: serving /metrics and /progress on %s\n", addr)
		// Shut the server down when the campaign ends (or is interrupted):
		// the port releases deterministically and in-flight scrapes finish
		// instead of dying mid-body with the process.
		shutdownMetrics = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: metrics server shutdown:", err)
			}
		}
	}
	opts.Metrics = reg
	if sink != nil {
		sink.SyncEvery(*syncEvery)
		sink.Instrument(reg, "records")
	}

	var traceSink *campaign.TraceSink
	if *tracePath != "" {
		var tw io.Writer = os.Stdout
		if *tracePath != "-" {
			// Under -resume the trace file is appended like the records
			// file; truncating it would throw away the interrupted run's
			// events, which are still valid (the resumed runs were never
			// traced — their coordinates are absent, not duplicated).
			mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
			if *resume {
				mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
			}
			f, err := os.OpenFile(*tracePath, mode, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			tw = f
		}
		traceSink = campaign.NewTraceSink(tw)
		traceSink.SyncEvery(*syncEvery)
		traceSink.Instrument(reg, "traces")
		opts.OnTrace = traceSink.Write
	}

	var obsSink *campaign.ObservationSink
	if *archivePath != "" {
		w, err := openArchive(*archivePath, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign: -archive:", err)
			os.Exit(1)
		}
		obsSink = campaign.NewObservationSink(w)
		obsSink.SyncEvery(*syncEvery)
		obsSink.Instrument(reg, "archive")
	}

	var onRecord []func(campaign.RunRecord)
	if sink != nil {
		onRecord = append(onRecord, sink.Write)
	}
	if prog != nil {
		onRecord = append(onRecord, prog.Record)
	}
	if obsSink != nil {
		onRecord = append(onRecord, obsSink.Record)
		if traceSink != nil {
			// Both trace consumers: the JSONL trace file and the archive.
			// Without -trace, tracing stays off and the archive holds record
			// rows only.
			opts.OnTrace = func(rt campaign.RunTrace) {
				traceSink.Write(rt)
				obsSink.Trace(rt)
			}
		}
	}
	if len(onRecord) > 0 {
		opts.OnRecord = func(rec campaign.RunRecord) {
			for _, f := range onRecord {
				f(rec)
			}
		}
	}

	// Signal lifecycle: the first SIGINT/SIGTERM cancels the campaign
	// context — dispatch stops, in-flight runs drain within -grace, sinks
	// flush, and main prints the partial summary with a -resume hint. A
	// second signal flushes best-effort and exits immediately; the JSONL
	// file then relies on whole-line writes (plus -sync-every durability)
	// and the tolerant trailing-line repair on resume.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr,
			"\ncampaign: %v: draining in-flight runs (up to %v); signal again to exit immediately\n",
			sig, *grace)
		if *out != "" && *out != "-" {
			fmt.Fprintf(os.Stderr, "campaign: finish later with: campaign -resume -out %s [same matrix flags]\n", *out)
		}
		cancel()
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "campaign: second signal: flushing and exiting now")
		if sink != nil {
			_ = sink.Flush()
		}
		if traceSink != nil {
			_ = traceSink.Flush()
		}
		if obsSink != nil {
			_ = obsSink.Flush()
		}
		os.Exit(exitInterrupted)
	}()

	start := time.Now()
	poolRunning.Store(true)
	recs, err := campaign.RunContext(ctx, plan, opts)
	poolRunning.Store(false)
	signal.Stop(sigc)
	close(sigc)
	interrupted := errors.Is(err, context.Canceled)
	budgetAbort := errors.Is(err, campaign.ErrBudgetExceeded)
	if err != nil && !interrupted && !budgetAbort {
		// A callback panic (sink bug) or an empty plan: the campaign state
		// is suspect, but flush whatever the sinks still hold first.
		if sink != nil {
			_ = sink.Flush()
		}
		if traceSink != nil {
			_ = traceSink.Flush()
		}
		if obsSink != nil {
			_ = obsSink.Flush()
		}
		shutdownMetrics()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: sink:", err)
			os.Exit(1)
		}
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: trace sink:", err)
			os.Exit(1)
		}
		if *tracePath != "-" {
			fmt.Printf("%d trace events written to %s\n", traceSink.Count(), *tracePath)
		}
	}
	if obsSink != nil {
		if err := obsSink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: archive sink:", err)
			os.Exit(1)
		}
		fmt.Printf("%d observation rows written to %s\n", obsSink.Count(), *archivePath)
	}
	shutdownMetrics()

	sum := campaign.Aggregate(recs)
	fmt.Println(sum.Render())
	fmt.Printf("executed %d/%d runs with %d workers in %v (%.1f runs/s)\n",
		len(recs), planned, *workers, elapsed.Round(time.Millisecond),
		float64(len(recs))/elapsed.Seconds())
	if *out != "" && *out != "-" {
		fmt.Printf("records appended to %s\n", *out)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "campaign: interrupted after %d/%d runs; sinks flushed", len(recs), len(plan.Specs))
		if *out != "" && *out != "-" {
			fmt.Fprintf(os.Stderr, "; resume with: campaign -resume -out %s [same matrix flags]", *out)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(exitInterrupted)
	}
	if budgetAbort {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintf(os.Stderr, "campaign: failure budget exceeded after %d/%d runs; sinks flushed", len(recs), len(plan.Specs))
		if *out != "" && *out != "-" {
			fmt.Fprintf(os.Stderr, "; resume with: campaign -resume -out %s [same matrix flags]", *out)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(exitBudgetAbort)
	}
	if sum.Errors > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d runs failed\n", sum.Errors)
		os.Exit(1)
	}
}

// parseHedge turns the -hedge flag into a HedgeConfig: "p95"-style values
// derive the delay from the live run-latency histogram; anything else must
// be a fixed duration.
func parseHedge(spec string) (campaign.HedgeConfig, error) {
	if strings.HasPrefix(spec, "p") {
		pct, err := strconv.Atoi(spec[1:])
		if err != nil || pct < 1 || pct > 99 {
			return campaign.HedgeConfig{}, fmt.Errorf("campaign: -hedge %q: want p1..p99 or a duration", spec)
		}
		return campaign.HedgeConfig{Quantile: float64(pct) / 100}, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil || d <= 0 {
		return campaign.HedgeConfig{}, fmt.Errorf("campaign: -hedge %q: want p1..p99 or a positive duration", spec)
	}
	return campaign.HedgeConfig{Delay: d}, nil
}

// splitCSV turns "a,b , c" into {"a","b","c"}.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// openArchive opens the -archive observation writer: the path's extension
// picks the encoding, and under -resume the file is repaired (a torn
// trailing record from the interrupt is cut) and appended rather than
// truncated.
func openArchive(path string, resume bool) (archival.Writer, error) {
	format := archival.FormatForPath(path)
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return archival.NewWriter(f, format), nil
	}
	if truncated, err := archival.Repair(path); err != nil {
		return nil, err
	} else if truncated {
		fmt.Fprintf(os.Stderr, "campaign: -archive: cut a torn trailing record off %s before appending\n", path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if format != archival.FormatBinary {
		return archival.NewJSONLWriter(f), nil
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		return archival.NewBinaryWriter(f), nil // fresh file still needs the magic
	}
	return archival.NewBinaryAppender(f), nil
}

// readDone loads the coordinates of error-free runs already in a JSONL
// file via the shared campaign.ReadDoneFile identity helper. truncateAt,
// when >= 0, is the offset of a corrupt trailing line the caller must
// truncate away before appending.
func readDone(path string) (map[campaign.DoneKey]bool, int64, error) {
	return campaign.ReadDoneFile(path, func(line int, err error) {
		fmt.Fprintf(os.Stderr, "campaign: -resume: skipping corrupt trailing line %d of %s: %v\n",
			line, path, err)
	})
}
