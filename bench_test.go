// Package safemeasure's root benchmark harness: one benchmark per paper
// artifact (table/figure), each regenerating the experiment from
// internal/experiments and reporting its headline numbers as custom bench
// metrics. Run with:
//
//	go test -bench=. -benchmem
//
// The rendered tables themselves are printed by cmd/labbench.
package safemeasure

import (
	"fmt"
	"testing"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/experiments"
	"safemeasure/internal/spoof"
	"safemeasure/internal/telemetry"
)

func BenchmarkE1_ReferenceSystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E1ReferenceSystems(int64(1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllCorrect {
			b.Fatalf("validation failed:\n%s", r.Render())
		}
	}
}

func BenchmarkE2_Scanning(b *testing.B) {
	var last *experiments.E2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E2Scanning(int64(1), 1000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(boolMetric(last.ScanCorrect), "scan-correct")
	b.ReportMetric(boolMetric(last.ScanRisk.Flagged), "scan-flagged")
	b.ReportMetric(boolMetric(last.OvertRisk.Flagged), "overt-flagged")
	b.ReportMetric(float64(last.ScanDiscarded), "scan-pkts-discarded")
}

func BenchmarkE3_SpamCDF(b *testing.B) {
	var last *experiments.E3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E3SpamCDF(int64(1), 100)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.FractionSpam, "fraction-spam")
	b.ReportMetric(last.CDF.Quantile(0.5), "median-score")
	b.ReportMetric(boolMetric(last.TwitterPoisoned && last.YoutubePoisoned), "gfc-validated")
}

func BenchmarkE4_DDoS(b *testing.B) {
	var last *experiments.E4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E4DDoS(int64(1), 40)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(boolMetric(last.CensoredOK && last.OpenOK), "verdicts-correct")
	b.ReportMetric(boolMetric(last.CensoredRisk.Flagged), "flagged")
	b.ReportMetric(float64(last.DDoSDiscarded), "flood-pkts-discarded")
}

func BenchmarkE5_SyriaLogs(b *testing.B) {
	var last *experiments.E5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E5SyriaLogs(int64(1), 21000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Report.UserDenialFraction, "user-denial-fraction")
	b.ReportMetric(float64(last.Report.UsersWithDenial), "implicated-users")
}

func BenchmarkE6_StatelessSpoof(b *testing.B) {
	var last *experiments.E6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E6StatelessSpoof(int64(1), spoof.PolicySlash24)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.CrossoverCovers), "covers-to-evade")
	b.ReportMetric(float64(last.Rows[len(last.Rows)-1].ImplicatedUsers), "implicated-at-16-covers")
}

func BenchmarkE7_StatefulSpoof(b *testing.B) {
	var last *experiments.E7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E7StatefulSpoof(int64(1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	ok := last.Rows[0].Correct && last.Rows[1].Correct && !last.Rows[2].Correct
	b.ReportMetric(boolMetric(ok), "shape-holds")
	b.ReportMetric(float64(last.Rows[2].CoverReceived), "ablation-leaked-pkts")
}

func BenchmarkE8_SpoofFeasibility(b *testing.B) {
	var last *experiments.E8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8SpoofFeasibility(int64(1), 100000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.FracSpoof24, "frac-spoof-slash24")
	b.ReportMetric(last.FracSpoof16, "frac-spoof-slash16")
}

func BenchmarkE9_MVR(b *testing.B) {
	var last *experiments.E9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E9MVR(int64(1), 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.RetentionFrac, "retention-fraction")
	b.ReportMetric(last.DiscardFraction, "discard-fraction")
}

func BenchmarkE10_EthicsLoad(b *testing.B) {
	var last *experiments.E10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E10EthicsLoad(int64(1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.QueriesPerSlash16), "queries-per-slash16")
	b.ReportMetric(float64(last.MeasurementAlerts-last.BaselineAlerts), "extra-alerts")
}

func BenchmarkE11_TechniqueMatrix(b *testing.B) {
	var last *experiments.E11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E11TechniqueMatrix(int64(1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.OvertAccuracy, "overt-accuracy")
	b.ReportMetric(last.StealthAccuracy, "stealth-accuracy")
	b.ReportMetric(last.OvertFlagRate, "overt-flag-rate")
	b.ReportMetric(last.StealthFlagRate, "stealth-flag-rate")
}

func BenchmarkE12_Ablations(b *testing.B) {
	var last *experiments.E12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.E12Ablations(int64(1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	shape := last.FragCaughtWithReassembly && last.FragMissedWithoutReassembly &&
		last.ResidualContaminates && last.NoResidualClean
	b.ReportMetric(boolMetric(shape), "frag-and-residual-shape")
	flaggedOff := 0
	for _, row := range last.DiscardOff {
		if row.Flagged {
			flaggedOff++
		}
	}
	b.ReportMetric(float64(flaggedOff), "flagged-without-discard")
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// BenchmarkCampaign measures campaign throughput (runs/sec) at several
// worker-pool sizes over a fixed 21-run matrix. Throughput should scale
// with workers until the host's cores saturate; results stay identical at
// every width (see TestCampaignDeterministicAcrossWorkerCounts).
func BenchmarkCampaign(b *testing.B) {
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Scenarios: []string{"keyword-rst", "dns-poison", "blackhole"},
		Trials:    2,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchCampaignWorkers(b, plan)
}

// BenchmarkCampaignScaling is the wide variant: every scenario, every
// impairment-free technique, more trials — a matrix large enough that the
// per-worker fixed costs (artifact lookup, sink batch) amortize and the
// workers=8/workers=1 ratio approximates the pool's real parallel speedup
// on multi-core hosts. scripts/verify.sh reads that ratio for its scaling
// gate.
func BenchmarkCampaignScaling(b *testing.B) {
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Scenarios: []string{"open", "keyword-rst", "dns-poison", "blackhole", "port-block"},
		Trials:    4,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchCampaignWorkers(b, plan)
}

// benchCampaignWorkers runs plan at several pool widths, reporting runs/s
// from the benchmark's own timer so it agrees with ns/op. (An earlier
// version timed with time.Now inside the loop body, so runs/s silently
// included timer-stopped setup and disagreed with ns/op.)
func benchCampaignWorkers(b *testing.B, plan *campaign.Plan) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := campaign.Run(plan, campaign.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, rec := range recs {
					if rec.Error != "" {
						b.Fatalf("%s/%s: %s", rec.Technique, rec.Scenario, rec.Error)
					}
				}
				runs += len(recs)
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkTelemetryOverhead is the overhead guard for the telemetry
// subsystem: the same single-run campaign executed with telemetry disabled
// (nil registry — every hot-path handle is nil and costs one comparison)
// versus fully enabled (shared registry + per-run trace ring). Compare the
// two ns/op figures to bound the cost of leaving telemetry on.
func BenchmarkTelemetryOverhead(b *testing.B) {
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Techniques: []string{"spam"},
		Scenarios:  []string{"dns-poison"},
		Trials:     1,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := plan.Specs[0]

	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, _ := campaign.ExecuteInstrumented(spec, campaign.ExecConfig{})
			if rec.Error != "" {
				b.Fatal(rec.Error)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		for i := 0; i < b.N; i++ {
			rec, events := campaign.ExecuteInstrumented(spec, campaign.ExecConfig{
				Metrics: reg, Trace: true,
			})
			if rec.Error != "" {
				b.Fatal(rec.Error)
			}
			if len(events) == 0 {
				b.Fatal("enabled run emitted no trace events")
			}
		}
	})
}
