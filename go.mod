module safemeasure

go 1.22
