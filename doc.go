// Package safemeasure reproduces "Can Censorship Measurements Be Safe(r)?"
// (Jones & Feamster, HotNets 2015) as a runnable Go laboratory.
//
// The public surface is:
//
//   - internal/core — the paper's measurement techniques and risk evaluation
//   - internal/lab — the Figure 1 reference environment
//   - internal/experiments — E1-E12, one runner per evaluation artifact
//   - cmd/safemeasure, cmd/labbench, cmd/ruleinspect — CLIs
//   - examples/ — five runnable walkthroughs
//
// The root package holds only this documentation and the benchmark harness
// (bench_test.go), which regenerates every table and figure under
// `go test -bench=.`. See README.md, DESIGN.md and EXPERIMENTS.md.
package safemeasure
