#!/bin/sh
# Benchmark harness: runs the repo-root campaign benchmarks (worker-pool
# scaling plus telemetry overhead) once each and emits machine-readable
# results to BENCH_campaign.json so perf regressions show up as a diff,
# not a memory. Pass extra `go test` args through, e.g.:
#
#   scripts/bench.sh              # one iteration per benchmark (smoke)
#   scripts/bench.sh -benchtime 5x
set -eu

cd "$(dirname "$0")/.."

out=BENCH_campaign.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkCampaign|BenchmarkTelemetryOverhead' \
  -benchtime "${1:-1x}" . | tee "$raw"

# Parse `BenchmarkName-8  N  123456 ns/op  42 runs/s` lines into JSON.
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; nsop = ""; extra = ""
  for (i = 3; i < NF; i++) {
    if ($(i + 1) == "ns/op") nsop = $i
    else if ($(i + 1) ~ /runs\/s/) extra = sprintf(", \"runs_per_s\": %s", $i)
  }
  if (nsop == "") next
  if (!first) printf ",\n"
  first = 0
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s%s}", name, iters, nsop, extra
}
END { printf "\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
