#!/bin/sh
# Benchmark harness: runs the repo-root campaign benchmarks (worker-pool
# scaling plus telemetry overhead) and emits machine-readable results to
# BENCH_campaign.json so perf regressions show up as a diff, not a memory.
# Each benchmark runs -count=3 times for -benchtime=2s by default and the
# best (lowest ns/op) run is recorded — the old single 1x iteration was too
# noisy to diff, flagging scheduler jitter as regressions. Pass `go test`
# args to override, e.g.:
#
#   scripts/bench.sh                          # -benchtime 2s -count 3
#   scripts/bench.sh -benchtime 5x -count 1   # fast smoke
#
# BENCH_PROFILE=1 additionally captures CPU, allocation, mutex, and block
# profiles (plus the test binary for `go tool pprof`) under profiles/ —
# the starting point for any hot-path optimization work; see DESIGN.md §9.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_campaign.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

if [ "$#" -eq 0 ]; then
  set -- -benchtime 2s -count 3
fi

if [ "${BENCH_PROFILE:-0}" = "1" ]; then
  # -mutexprofile and -blockprofile switch the runtime samplers on by
  # themselves; no flag beyond the output path is needed.
  mkdir -p profiles
  set -- "$@" \
    -cpuprofile profiles/campaign.cpu.pprof \
    -memprofile profiles/campaign.mem.pprof \
    -mutexprofile profiles/campaign.mutex.pprof \
    -blockprofile profiles/campaign.block.pprof \
    -o profiles/campaign.test
  echo "profiles will land in profiles/ (inspect: go tool pprof profiles/campaign.test profiles/campaign.cpu.pprof)"
fi

go test -run '^$' -bench 'BenchmarkCampaign|BenchmarkTelemetryOverhead' \
  "$@" . | tee "$raw"

# Parse `BenchmarkName-8  N  123456 ns/op  42 runs/s` lines into JSON,
# keeping the best (lowest ns/op) of each benchmark's repeated runs.
awk '
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; nsop = ""; extra = ""
  for (i = 3; i < NF; i++) {
    if ($(i + 1) == "ns/op") nsop = $i
    else if ($(i + 1) ~ /runs\/s/) extra = sprintf(", \"runs_per_s\": %s", $i)
  }
  if (nsop == "") next
  if (!(name in best)) { order[++n] = name }
  if (!(name in best) || nsop + 0 < best[name] + 0) {
    best[name] = nsop
    line[name] = sprintf("\"%s\": {\"iterations\": %s, \"ns_per_op\": %s%s}", \
      name, iters, nsop, extra)
  }
}
END {
  print "{"
  for (i = 1; i <= n; i++) printf "  %s%s\n", line[order[i]], (i < n ? "," : "")
  print "}"
}
' "$raw" > "$out"

echo "wrote $out"

if [ "${BENCH_PROFILE:-0}" = "1" ]; then
  echo "captured profile artifacts:"
  ls -l profiles/
fi
