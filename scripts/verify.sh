#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy packages (campaign pool with its abandoned-run claim
# gate and drain path, the measured service with its shared cache and
# admission queue, the chaos fault-injection harness, telemetry
# registry/tracer, the simulator whose counters every worker's lab
# increments, the retry layer, and the population generator).
# The examples are built and vetted explicitly: they have no tests, so only
# an explicit pass catches bit-rot there.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go build ./examples/...
go vet ./examples/...
go test ./...
go test -race ./internal/campaign ./internal/measured ./internal/telemetry ./internal/netsim ./internal/core ./internal/population
go test -race ./internal/chaos

# Fuzz smoke pass over every wire decoder. The seed corpora always run as
# plain tests (they are part of `go test ./...` above); the bounded
# coverage-guided pass is opt-in because it costs ~5s per target.
if [ "${VERIFY_FUZZ:-0}" = "1" ]; then
  for target in FuzzParseMessage FuzzNameRoundTrip; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/dnswire
  done
  for target in FuzzParse FuzzReassembler; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/packet
  done
  for target in FuzzParseRequest FuzzParseResponse; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/httpwire
  done
  for target in FuzzParseCommand FuzzParseReply FuzzParseMessage; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/smtpwire
  done
fi

# Interrupt-then-resume smoke test: a real SIGINT against the built binary
# must exit 130 with a valid partial file, and -resume must finish the
# campaign to exactly the planned record count. This exercises the signal
# handler and CLI resume path that the in-process chaos tests cannot.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/campaign" ./cmd/campaign
"$tmp/campaign" -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl" -sync-every 1 &
pid=$!
sleep 1
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
test "$rc" -eq 130
test -s "$tmp/smoke.jsonl"
"$tmp/campaign" -resume -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl"
# 1 scenario x 3 techniques x 500 trials = 1500 records, every line valid JSON
test "$(wc -l < "$tmp/smoke.jsonl")" -eq 1500

# Service smoke test: start safemeasured on an ephemeral port, drive it with
# measload (50 concurrent clients; every client's third request repeats its
# first, so measload's -min-cache-hits and byte-identity checks prove the
# result cache serves duplicates byte-for-byte), then SIGTERM and assert a
# clean drain (exit 0 means nothing was abandoned).
go build -o "$tmp/safemeasured" ./cmd/safemeasured
go build -o "$tmp/measload" ./cmd/measload
"$tmp/safemeasured" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 4 &
svcpid=$!
trap 'kill "$svcpid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
i=0
while [ ! -s "$tmp/addr" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$tmp/addr"
"$tmp/measload" -addr "http://$(cat "$tmp/addr")" -clients 50 -requests 3 \
  -trials 2 -dup-every 2 -min-cache-hits 1
kill -TERM "$svcpid"
rc=0
wait "$svcpid" || rc=$?
test "$rc" -eq 0
