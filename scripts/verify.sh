#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy packages (campaign pool with its abandoned-run claim
# gate and drain path, the chaos fault-injection harness, telemetry
# registry/tracer, the simulator whose counters every worker's lab
# increments, the retry layer, and the population generator).
# The examples are built and vetted explicitly: they have no tests, so only
# an explicit pass catches bit-rot there.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go build ./examples/...
go vet ./examples/...
go test ./...
go test -race ./internal/campaign ./internal/telemetry ./internal/netsim ./internal/core ./internal/population
go test -race ./internal/chaos

# Fuzz smoke pass over every wire decoder. The seed corpora always run as
# plain tests (they are part of `go test ./...` above); the bounded
# coverage-guided pass is opt-in because it costs ~5s per target.
if [ "${VERIFY_FUZZ:-0}" = "1" ]; then
  for target in FuzzParseMessage FuzzNameRoundTrip; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/dnswire
  done
  for target in FuzzParse FuzzReassembler; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/packet
  done
  for target in FuzzParseRequest FuzzParseResponse; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/httpwire
  done
  for target in FuzzParseCommand FuzzParseReply FuzzParseMessage; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/smtpwire
  done
fi

# Interrupt-then-resume smoke test: a real SIGINT against the built binary
# must exit 130 with a valid partial file, and -resume must finish the
# campaign to exactly the planned record count. This exercises the signal
# handler and CLI resume path that the in-process chaos tests cannot.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/campaign" ./cmd/campaign
"$tmp/campaign" -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl" -sync-every 1 &
pid=$!
sleep 1
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
test "$rc" -eq 130
test -s "$tmp/smoke.jsonl"
"$tmp/campaign" -resume -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl"
# 1 scenario x 3 techniques x 500 trials = 1500 records, every line valid JSON
test "$(wc -l < "$tmp/smoke.jsonl")" -eq 1500
