#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy packages (campaign pool with its abandoned-run claim
# gate, telemetry registry/tracer, the simulator whose counters every
# worker's lab increments, the retry layer, and the population generator).
# The examples are built and vetted explicitly: they have no tests, so only
# an explicit pass catches bit-rot there.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go build ./examples/...
go vet ./examples/...
go test ./...
go test -race ./internal/campaign ./internal/telemetry ./internal/netsim ./internal/core ./internal/population
