#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy packages (campaign pool, telemetry registry/tracer,
# and the simulator whose counters every worker's lab increments).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/campaign ./internal/telemetry ./internal/netsim
