#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy packages (campaign pool with its abandoned-run claim
# gate and drain path, the measured service with its shared cache and
# admission queue, the chaos fault-injection harness, telemetry
# registry/tracer, the simulator whose counters every worker's lab
# increments, the retry layer, and the population generator).
# The examples are built and vetted explicitly: they have no tests, so only
# an explicit pass catches bit-rot there.
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: gofmt is not a style suggestion here, it is what keeps
# diffs reviewable; any unformatted file fails the run by name.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

go build ./...
go vet ./...
go build ./examples/...
go vet ./examples/...
go test ./...
go test -race ./internal/campaign ./internal/measured ./internal/telemetry ./internal/netsim ./internal/core ./internal/population ./internal/censor ./internal/ids
go test -race ./internal/chaos

# Fuzz smoke pass over every wire decoder. The seed corpora always run as
# plain tests (they are part of `go test ./...` above); the bounded
# coverage-guided pass is opt-in because it costs ~5s per target.
if [ "${VERIFY_FUZZ:-0}" = "1" ]; then
  for target in FuzzParseMessage FuzzNameRoundTrip; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/dnswire
  done
  for target in FuzzParse FuzzReassembler; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/packet
  done
  for target in FuzzParseRequest FuzzParseResponse; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/httpwire
  done
  for target in FuzzParseCommand FuzzParseReply FuzzParseMessage; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/smtpwire
  done
  for target in FuzzDecodeObservation FuzzReaderBinary FuzzReaderJSONL; do
    go test -fuzz="^${target}\$" -fuzztime=5s ./internal/archival
  done
fi

# Bench-regression gate: rerun the campaign throughput benchmark and compare
# best-of-3 against the committed BENCH_campaign.json baseline. A fresh
# ns/op more than 25% above baseline (>20% throughput loss) fails the run.
# Opt out with VERIFY_BENCH=0 on noisy or shared machines.
if [ "${VERIFY_BENCH:-1}" = "1" ] && [ -f BENCH_campaign.json ]; then
  benchraw=$(mktemp)
  go test -run '^$' -bench '^BenchmarkCampaign$' -benchtime 1s -count 3 . | tee "$benchraw"
  awk '
    NR == FNR {
      # Parse baseline JSON lines: "Name": {..., "ns_per_op": N, ...}
      if (match($0, /"Benchmark[^"]+"/)) {
        name = substr($0, RSTART + 1, RLENGTH - 2)
        if (match($0, /"ns_per_op": [0-9.]+/)) {
          split(substr($0, RSTART, RLENGTH), kv, ": ")
          base[name] = kv[2]
        }
      }
      next
    }
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      for (i = 3; i < NF; i++) if ($(i + 1) == "ns/op") nsop = $i
      if (!(name in fresh) || nsop + 0 < fresh[name] + 0) fresh[name] = nsop
    }
    END {
      bad = 0
      for (name in fresh) {
        if (!(name in base)) continue
        ratio = fresh[name] / base[name]
        printf "%s: %.0f ns/op vs baseline %.0f (x%.2f)\n", name, fresh[name], base[name], ratio
        if (ratio > 1.25) {
          printf "REGRESSION: %s is %.0f%% slower than baseline\n", name, (ratio - 1) * 100
          bad = 1
        }
      }
      exit bad
    }
  ' BENCH_campaign.json "$benchraw"
  rm -f "$benchraw"
fi

# Worker-scaling gate: on a host with at least 4 CPUs, the 8-worker pool
# must clear at least 2x single-worker throughput on the wide benchmark
# matrix — the shared artifact cache plus per-run hot-path work is what the
# ratio measures. Hosts with fewer cores (1-CPU CI containers) cannot scale
# by pooling workers, so there the ratio is printed but not asserted.
# Opt out entirely with VERIFY_SCALING=0.
if [ "${VERIFY_SCALING:-1}" = "1" ]; then
  ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
  scaleraw=$(mktemp)
  go test -run '^$' -bench '^BenchmarkCampaignScaling$/^workers=(1|8)$' \
    -benchtime 1s -count 2 . | tee "$scaleraw"
  awk -v ncpu="$ncpu" '
    # GOMAXPROCS=1 hosts print the bare name; others append "-N".
    /^BenchmarkCampaignScaling\/workers=1(-[0-9]+)?[ \t]/ {
      for (i = 3; i < NF; i++) if ($(i + 1) ~ /runs\/s/ && $i + 0 > w1) w1 = $i
    }
    /^BenchmarkCampaignScaling\/workers=8(-[0-9]+)?[ \t]/ {
      for (i = 3; i < NF; i++) if ($(i + 1) ~ /runs\/s/ && $i + 0 > w8) w8 = $i
    }
    END {
      if (w1 + 0 == 0 || w8 + 0 == 0) { print "scaling gate: missing benchmark output"; exit 1 }
      ratio = w8 / w1
      printf "scaling: workers=8 %.0f runs/s vs workers=1 %.0f runs/s (x%.2f) on %d CPU(s)\n", w8, w1, ratio, ncpu
      if (ncpu + 0 >= 4 && ratio < 2) {
        printf "SCALING REGRESSION: 8-worker speedup x%.2f < x2 on a %d-CPU host\n", ratio, ncpu
        exit 1
      }
      if (ncpu + 0 < 4) print "scaling: fewer than 4 CPUs, ratio is informational only"
    }
  ' "$scaleraw"
  rm -f "$scaleraw"
fi

# Interrupt-then-resume smoke test: a real SIGINT against the built binary
# must exit 130 with a valid partial file, and -resume must finish the
# campaign to exactly the planned record count. This exercises the signal
# handler and CLI resume path that the in-process chaos tests cannot.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/campaign" ./cmd/campaign
"$tmp/campaign" -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl" -sync-every 1 &
pid=$!
sleep 1
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
test "$rc" -eq 130
test -s "$tmp/smoke.jsonl"
"$tmp/campaign" -resume -scenarios dns-poison -trials 500 -workers 2 \
  -out "$tmp/smoke.jsonl"
# 1 scenario x 3 techniques x 500 trials = 1500 records, every line valid JSON
test "$(wc -l < "$tmp/smoke.jsonl")" -eq 1500

# Censor-behavior determinism smoke: a campaign sweeping every adversarial
# behavior preset must produce byte-identical sorted records at workers 1
# and 8 — the end-to-end form of the behavior-state-is-seed-derived claim.
"$tmp/campaign" -scenarios keyword-rst -censor-behavior all -trials 2 \
  -workers 1 -seed 5 -out "$tmp/bhv.w1.jsonl" > /dev/null
"$tmp/campaign" -scenarios keyword-rst -censor-behavior all -trials 2 \
  -workers 8 -seed 5 -out "$tmp/bhv.w8.jsonl" > /dev/null
LC_ALL=C sort "$tmp/bhv.w1.jsonl" > "$tmp/bhv.w1.sorted"
LC_ALL=C sort "$tmp/bhv.w8.jsonl" > "$tmp/bhv.w8.sorted"
cmp "$tmp/bhv.w1.sorted" "$tmp/bhv.w8.sorted"
grep -q '"behavior":"throttle"' "$tmp/bhv.w1.jsonl"

# Analysis-pipeline smoke: a second seeded campaign gives compare two real
# 1500-run inputs; its per-cell Wilson-CI delta table must be deterministic
# (two invocations, byte-identical output), and convert must round-trip
# observations JSONL -> binary -> JSONL byte-identically.
go build -o "$tmp/measanalyze" ./cmd/measanalyze
"$tmp/campaign" -scenarios dns-poison -trials 500 -workers 2 -seed 2 \
  -out "$tmp/smoke2.jsonl" > /dev/null
"$tmp/measanalyze" compare "$tmp/smoke.jsonl" "$tmp/smoke2.jsonl" > "$tmp/cmp1.txt"
"$tmp/measanalyze" compare "$tmp/smoke.jsonl" "$tmp/smoke2.jsonl" > "$tmp/cmp2.txt"
diff "$tmp/cmp1.txt" "$tmp/cmp2.txt"
grep -q "verdict" "$tmp/cmp1.txt"
"$tmp/measanalyze" convert -o "$tmp/smoke.obs.jsonl" "$tmp/smoke.jsonl"
"$tmp/measanalyze" convert -o "$tmp/smoke.obs.bin" "$tmp/smoke.obs.jsonl"
"$tmp/measanalyze" convert -o "$tmp/smoke.obs2.jsonl" "$tmp/smoke.obs.bin"
cmp "$tmp/smoke.obs.jsonl" "$tmp/smoke.obs2.jsonl"
ls -l "$tmp/smoke.obs.jsonl" "$tmp/smoke.obs.bin"
# Torn-tail tolerance: summarize must stream a live-append-shaped file
# (valid prefix + half a record) without erroring.
head -c "$(( $(wc -c < "$tmp/smoke.jsonl") - 40 ))" "$tmp/smoke.jsonl" > "$tmp/torn.jsonl"
"$tmp/measanalyze" summarize "$tmp/torn.jsonl" > /dev/null
# Behavior guard rails: summarize shows per-behavior marginals on a swept
# file, and compare refuses to diff files whose behavior sets differ.
"$tmp/measanalyze" summarize "$tmp/bhv.w1.jsonl" | grep -q "per-behavior"
if "$tmp/measanalyze" compare "$tmp/bhv.w1.jsonl" "$tmp/smoke.jsonl" 2> "$tmp/bhv.err"; then
  echo "compare accepted mismatched behavior sets" >&2
  exit 1
fi
grep -q "behavior mismatch" "$tmp/bhv.err"

# Service smoke test: start safemeasured on an ephemeral port, drive it with
# measload (50 concurrent clients; every client's third request repeats its
# first, so measload's -min-cache-hits and byte-identity checks prove the
# result cache serves duplicates byte-for-byte), then SIGTERM and assert a
# clean drain (exit 0 means nothing was abandoned).
go build -o "$tmp/safemeasured" ./cmd/safemeasured
go build -o "$tmp/measload" ./cmd/measload
"$tmp/safemeasured" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 4 &
svcpid=$!
trap 'for p in "$svcpid" "${basepid:-}" "${crashpid:-}" "${recpid:-}"; do if [ -n "$p" ]; then kill "$p" 2>/dev/null || true; fi; done; rm -rf "$tmp"' EXIT
i=0
while [ ! -s "$tmp/addr" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
test -s "$tmp/addr"
"$tmp/measload" -addr "http://$(cat "$tmp/addr")" -clients 50 -requests 3 \
  -trials 2 -dup-every 2 -min-cache-hits 1
kill -TERM "$svcpid"
rc=0
wait "$svcpid" || rc=$?
test "$rc" -eq 0

# Crash-recovery smoke test: a journaled service killed with SIGKILL
# mid-campaign must, after a restart on the same files and a re-run of the
# same workload, end with an archive byte-identical to an uninterrupted
# baseline — every admitted run recovered, no run archived twice. This is
# the end-to-end (real process, real kill -9) counterpart of the in-process
# crash matrix in internal/measured.
wait_addr() {
  i=0
  while [ ! -s "$1" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  test -s "$1"
}

# Baseline: the same workload, uninterrupted.
"$tmp/safemeasured" -addr 127.0.0.1:0 -addr-file "$tmp/addr.base" -workers 4 \
  -journal "$tmp/base.wal" -archive "$tmp/base.obs.jsonl" &
basepid=$!
wait_addr "$tmp/addr.base"
"$tmp/measload" -addr "http://$(cat "$tmp/addr.base")" -clients 20 -requests 3 \
  -trials 120 -seed 9 -dup-every 2 -min-cache-hits 1
kill -TERM "$basepid"
rc=0
wait "$basepid" || rc=$?
test "$rc" -eq 0

# Crashed run: kill -9 as soon as results start landing in the archive.
"$tmp/safemeasured" -addr 127.0.0.1:0 -addr-file "$tmp/addr.crash" -workers 4 \
  -journal "$tmp/crash.wal" -archive "$tmp/crash.obs.jsonl" &
crashpid=$!
wait_addr "$tmp/addr.crash"
"$tmp/measload" -addr "http://$(cat "$tmp/addr.crash")" -clients 20 -requests 3 \
  -trials 120 -seed 9 -dup-every 2 &
loadpid=$!
i=0
while [ ! -s "$tmp/crash.obs.jsonl" ] && [ "$i" -lt 200 ]; do
  sleep 0.05
  i=$((i + 1))
done
test -s "$tmp/crash.obs.jsonl"
kill -9 "$crashpid"
wait "$loadpid" || true # the killed service fails measload's in-flight requests

# Restart on the wreckage and re-drive the identical workload: warm-started
# cells are cache hits, journaled-but-unfinished runs replay, the remainder
# re-admits — with 429/503 retries riding out any storage-recovery window.
"$tmp/safemeasured" -addr 127.0.0.1:0 -addr-file "$tmp/addr.rec" -workers 4 \
  -journal "$tmp/crash.wal" -archive "$tmp/crash.obs.jsonl" &
recpid=$!
wait_addr "$tmp/addr.rec"
"$tmp/measload" -addr "http://$(cat "$tmp/addr.rec")" -clients 20 -requests 3 \
  -trials 120 -seed 9 -dup-every 2 -min-cache-hits 1 -max-retries 5
kill -TERM "$recpid"
rc=0
wait "$recpid" || rc=$?
test "$rc" -eq 0 # a clean drain: every replayed run finished

# Byte-identical recovery: the archives hold the same rows (completion order
# differs across runs, so compare sorted) ...
LC_ALL=C sort "$tmp/base.obs.jsonl" > "$tmp/base.sorted"
LC_ALL=C sort "$tmp/crash.obs.jsonl" > "$tmp/crash.sorted"
cmp "$tmp/base.sorted" "$tmp/crash.sorted"
# ... and zero duplicate execution: no run's verdict row appears twice.
dups=$(grep '"type":"verdict"' "$tmp/crash.obs.jsonl" | grep -o '"run":"[0-9]*"' | LC_ALL=C sort | uniq -d)
test -z "$dups"
