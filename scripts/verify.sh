#!/bin/sh
# Repo verification: tier-1 (build + tests) plus vet and a race pass over
# the concurrency-heavy campaign package.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/campaign
