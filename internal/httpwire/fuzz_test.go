package httpwire

import (
	"bytes"
	"testing"
)

// FuzzParseRequest exercises the request decoder with arbitrary bytes: it
// must never panic, consumed must stay within the input, and anything it
// accepts must re-marshal and re-parse to the same request.
func FuzzParseRequest(f *testing.F) {
	f.Add(NewRequest("GET", "blocked.test", "/index.html").Marshal())
	post := &Request{Method: "POST", Path: "/submit",
		Headers: map[string]string{"Host": "h.test"}, Body: []byte("a=1&b=2")}
	f.Add(post.Marshal())
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\nContent-Length: 99\r\n\r\nshort"))
	f.Add([]byte("GET / HTTP/1.1\r\nbroken header\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, consumed, err := ParseRequest(data)
		if err != nil {
			return
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Round trip: marshaling a parsed request and parsing it again must
		// agree on everything the wire form preserves.
		again, _, err := ParseRequest(req.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled request failed: %v", err)
		}
		if again.Method != req.Method || again.Path != req.Path || !bytes.Equal(again.Body, req.Body) {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
		}
	})
}

// FuzzParseResponse is the response-side twin of FuzzParseRequest.
func FuzzParseResponse(f *testing.F) {
	ok := &Response{Status: 200, Body: []byte("<html>hi</html>")}
	f.Add(ok.Marshal())
	blocked := &Response{Status: 451, Headers: map[string]string{"Server": "mvr"}}
	f.Add(blocked.Marshal())
	f.Add([]byte("HTTP/1.1 abc Bad\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200\r\nContent-Length: -1\r\n\r\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, consumed, err := ParseResponse(data)
		if err != nil {
			return
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		again, _, err := ParseResponse(resp.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled response failed: %v", err)
		}
		if again.Status != resp.Status || !bytes.Equal(again.Body, resp.Body) {
			t.Fatalf("round trip changed the response: %+v vs %+v", resp, again)
		}
	})
}
