package httpwire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	in := NewRequest("GET", "bbc.com", "/news")
	in.Headers["User-Agent"] = "safemeasure/1.0"
	wire := in.Marshal()
	out, n, err := ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if out.Method != "GET" || out.Path != "/news" || out.Host() != "bbc.com" {
		t.Fatalf("parsed: %+v", out)
	}
	if out.Headers["User-Agent"] != "safemeasure/1.0" {
		t.Fatalf("headers: %+v", out.Headers)
	}
}

func TestRequestWithBody(t *testing.T) {
	in := &Request{Method: "POST", Path: "/submit", Headers: map[string]string{"Host": "x.test"}, Body: []byte("a=1&b=2")}
	out, _, err := ParseRequest(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("body: %q", out.Body)
	}
	if out.Headers["Content-Length"] != "7" {
		t.Fatalf("content-length: %q", out.Headers["Content-Length"])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &Response{Status: 200, Body: []byte("<html>hello</html>")}
	out, _, err := ParseResponse(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != 200 || out.StatusText != "OK" || !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("parsed: %+v", out)
	}
}

func TestBlockPageStatus(t *testing.T) {
	in := &Response{Status: 451, Body: []byte("blocked")}
	out, _, err := ParseResponse(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != 451 || out.StatusText != "Unavailable For Legal Reasons" {
		t.Fatalf("parsed: %+v", out)
	}
}

func TestIncompleteHeader(t *testing.T) {
	if _, _, err := ParseRequest([]byte("GET / HTTP/1.1\r\nHost: x")); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestIncompleteBody(t *testing.T) {
	wire := []byte("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
	if _, _, err := ParseRequest(wire); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelinedRequests(t *testing.T) {
	a := NewRequest("GET", "a.test", "/1").Marshal()
	b := NewRequest("GET", "b.test", "/2").Marshal()
	wire := append(append([]byte{}, a...), b...)
	r1, n1, err := ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	r2, n2, err := ParseRequest(wire[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Path != "/1" || r2.Path != "/2" || n1+n2 != len(wire) {
		t.Fatalf("pipeline: %v %v", r1, r2)
	}
}

func TestMalformed(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n",
	}
	for _, c := range cases {
		if _, _, err := ParseRequest([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	if _, _, err := ParseResponse([]byte("HTTP/1.1 abc OK\r\n\r\n")); err == nil {
		t.Error("bad status code accepted")
	}
	if _, _, err := ParseResponse([]byte("NOTHTTP 200 OK\r\n\r\n")); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	wire := []byte("GET / HTTP/1.1\r\nhOsT: example.com\r\nx-custom-header: v\r\n\r\n")
	out, _, err := ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.Host() != "example.com" {
		t.Fatalf("host: %+v", out.Headers)
	}
	if out.Headers["X-Custom-Header"] != "v" {
		t.Fatalf("custom: %+v", out.Headers)
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(pathSeed, body []byte) bool {
		path := "/" + strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return r
			}
			return 'x'
		}, string(pathSeed))
		in := &Request{Method: "POST", Path: path, Headers: map[string]string{"Host": "q.test"}, Body: body}
		out, n, err := ParseRequest(in.Marshal())
		if err != nil {
			return false
		}
		return out.Path == path && bytes.Equal(out.Body, body) && n == len(in.Marshal())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = ParseRequest(data)
		_, _, _ = ParseResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
