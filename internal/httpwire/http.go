// Package httpwire implements a minimal HTTP/1.1 request/response codec for
// the simulated web servers and clients. It covers exactly what the lab
// needs: request line + headers + optional body with Content-Length, and the
// same for responses. (net/http cannot be used: the lab's TCP runs in
// virtual time inside internal/tcpsim.)
package httpwire

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors returned by the codec.
var (
	ErrIncomplete = errors.New("httpwire: incomplete message")
	ErrMalformed  = errors.New("httpwire: malformed message")
)

// Request is an HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Headers map[string]string // canonical-cased keys
	Body    []byte
}

// Response is an HTTP/1.1 response.
type Response struct {
	Status     int
	StatusText string
	Headers    map[string]string
	Body       []byte
}

// canonical normalizes a header key: "content-length" -> "Content-Length".
func canonical(k string) string {
	parts := strings.Split(strings.ToLower(k), "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "-")
}

// NewRequest builds a GET-style request with a Host header.
func NewRequest(method, host, path string) *Request {
	return &Request{Method: method, Path: path, Headers: map[string]string{"Host": host}}
}

// Host returns the Host header.
func (r *Request) Host() string { return r.Headers["Host"] }

// Marshal serializes the request, setting Content-Length when a body is
// present.
func (r *Request) Marshal() []byte {
	return marshal(fmt.Sprintf("%s %s HTTP/1.1", r.Method, r.Path), r.Headers, r.Body)
}

// Marshal serializes the response, always setting Content-Length.
func (r *Response) Marshal() []byte {
	text := r.StatusText
	if text == "" {
		text = statusText(r.Status)
	}
	if r.Headers == nil {
		r.Headers = map[string]string{}
	}
	r.Headers["Content-Length"] = strconv.Itoa(len(r.Body))
	return marshal(fmt.Sprintf("HTTP/1.1 %d %s", r.Status, text), r.Headers, r.Body)
}

func marshal(startLine string, headers map[string]string, body []byte) []byte {
	var b strings.Builder
	b.WriteString(startLine)
	b.WriteString("\r\n")
	if len(body) > 0 {
		if headers == nil {
			headers = map[string]string{}
		}
		headers["Content-Length"] = strconv.Itoa(len(body))
	}
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(canonical(k))
		b.WriteString(": ")
		b.WriteString(headers[k])
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
	return append([]byte(b.String()), body...)
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 451:
		return "Unavailable For Legal Reasons"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// splitMessage finds the header/body boundary and parses headers. Returns
// (startLine, headers, body, consumed) or ErrIncomplete if the full message
// has not arrived yet.
func splitMessage(data []byte) (string, map[string]string, []byte, int, error) {
	// Work on the byte slice directly: this runs on every TCP data arrival
	// while a message accumulates, and converting the whole (growing)
	// buffer to a string each attempt dominated the codec's allocations.
	end := bytes.Index(data, []byte("\r\n\r\n"))
	if end < 0 {
		return "", nil, nil, 0, ErrIncomplete
	}
	head := data[:end]
	var startLine string
	var headers map[string]string
	for first := true; first || len(head) > 0; first = false {
		line := head
		if j := bytes.Index(head, []byte("\r\n")); j >= 0 {
			line, head = head[:j], head[j+2:]
		} else {
			head = nil
		}
		if first {
			startLine = string(line)
			headers = make(map[string]string)
			continue
		}
		k, v, ok := bytes.Cut(line, []byte(":"))
		if !ok {
			return "", nil, nil, 0, ErrMalformed
		}
		headers[canonical(string(bytes.TrimSpace(k)))] = string(bytes.TrimSpace(v))
	}
	bodyStart := end + 4
	n := 0
	if cl, ok := headers["Content-Length"]; ok {
		var err error
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return "", nil, nil, 0, ErrMalformed
		}
	}
	if len(data) < bodyStart+n {
		return "", nil, nil, 0, ErrIncomplete
	}
	body := data[bodyStart : bodyStart+n]
	return startLine, headers, body, bodyStart + n, nil
}

// ParseRequest decodes one request from data; consumed reports how many
// bytes it used (pipelined requests may follow).
func ParseRequest(data []byte) (*Request, int, error) {
	start, headers, body, consumed, err := splitMessage(data)
	if err != nil {
		return nil, 0, err
	}
	parts := strings.SplitN(start, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, 0, ErrMalformed
	}
	return &Request{Method: parts[0], Path: parts[1], Headers: headers, Body: body}, consumed, nil
}

// ParseResponse decodes one response from data.
func ParseResponse(data []byte) (*Response, int, error) {
	start, headers, body, consumed, err := splitMessage(data)
	if err != nil {
		return nil, 0, err
	}
	parts := strings.SplitN(start, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, ErrMalformed
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, ErrMalformed
	}
	text := ""
	if len(parts) == 3 {
		text = parts[2]
	}
	return &Response{Status: code, StatusText: text, Headers: headers, Body: body}, consumed, nil
}
