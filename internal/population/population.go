// Package population generates the innocuous "population" traffic the
// paper's techniques hide in: web browsing over a Zipf-ish site catalog
// (occasionally touching censored sites, as the Syrian logs show real
// populations do), DNS lookups, mail, and P2P chatter.
//
// The generator drives real protocol stacks in virtual time, so population
// flows exercise the same codecs, middleboxes, and taps as measurement
// traffic — an IDS cannot tell them apart by implementation artifacts.
package population

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"safemeasure/internal/dnssim"
	"safemeasure/internal/dnswire"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/mailsim"
	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/smtpwire"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/websim"
)

// Rates are mean events per simulated second, per user.
type Rates struct {
	Web  float64
	DNS  float64
	Mail float64
	P2P  float64
}

// DefaultRates model light browsing with background chatter.
func DefaultRates() Rates {
	return Rates{Web: 0.5, DNS: 0.8, Mail: 0.02, P2P: 0.3}
}

// Config wires the generator to the lab's servers.
type Config struct {
	Sites             []string // innocuous site catalog
	CensoredSites     []string // sites the censor blocks
	CensoredVisitProb float64  // per-web-event probability of a censored visit
	WebServer         netip.Addr
	// CensoredWebServer hosts the censored sites; zero falls back to
	// WebServer. Visits there leave the same metadata trail real users
	// leave (the Syrian-log 1.57 % effect).
	CensoredWebServer netip.Addr
	DNSServer         netip.Addr
	MailServer        netip.Addr
	P2PPeer           netip.Addr
	Rates             Rates
	Seed              int64
}

// User is one population member with its protocol endpoints.
type User struct {
	Host  *netsim.Host
	Stack *tcpsim.Stack
	DNS   *dnssim.Client
}

// Site popularity follows a Zipf-Mandelbrot law: rank r is visited with
// probability proportional to 1/(zipfV+r)^zipfS. Web request popularity is
// famously Zipf-like (Breslau et al., INFOCOM '99, measured exponents of
// 0.64–0.83); Go's rand.Zipf requires s > 1, so the catalog uses the
// smallest head-heavy exponent above that bound rather than an ad-hoc skew.
const (
	zipfS = 1.2
	zipfV = 1.0
)

// Generator schedules population activity.
type Generator struct {
	sim      *netsim.Sim
	cfg      Config
	rng      *rand.Rand
	siteZipf *rand.Zipf
	users    []User

	// Stats.
	WebVisits      int
	CensoredVisits int
	DNSQueries     int
	MailsSent      int
	P2PPackets     int
	ScanProbes     int
}

// New creates a generator.
func New(sim *netsim.Sim, cfg Config) *Generator {
	g := &Generator{sim: sim, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(cfg.Sites) > 0 {
		g.siteZipf = rand.NewZipf(g.rng, zipfS, zipfV, uint64(len(cfg.Sites)-1))
	}
	return g
}

// AddUser registers a population member.
func (g *Generator) AddUser(u User) { g.users = append(g.users, u) }

// Users returns the registered members.
func (g *Generator) Users() []User { return g.users }

// Run schedules event streams for every user over the horizon. Call before
// driving the simulator.
func (g *Generator) Run(horizon time.Duration) {
	for i := range g.users {
		u := g.users[i]
		g.schedule(u, g.cfg.Rates.Web, horizon, func() { g.browse(u) })
		g.schedule(u, g.cfg.Rates.DNS, horizon, func() { g.lookup(u) })
		g.schedule(u, g.cfg.Rates.Mail, horizon, func() { g.mail(u) })
		g.schedule(u, g.cfg.Rates.P2P, horizon, func() { g.p2p(u) })
	}
}

// schedule lays out a Poisson event stream of the given rate.
func (g *Generator) schedule(u User, rate float64, horizon time.Duration, fire func()) {
	if rate <= 0 {
		return
	}
	at := time.Duration(0)
	for {
		gap := time.Duration(g.rng.ExpFloat64() / rate * float64(time.Second))
		at += gap
		if at >= horizon {
			return
		}
		g.sim.Schedule(at, fire)
	}
}

// pickSite selects a site, occasionally a censored one.
func (g *Generator) pickSite() (string, bool) {
	if len(g.cfg.CensoredSites) > 0 && g.rng.Float64() < g.cfg.CensoredVisitProb {
		return g.cfg.CensoredSites[g.rng.Intn(len(g.cfg.CensoredSites))], true
	}
	if g.siteZipf == nil {
		return "default.test", false
	}
	// Catalog order is popularity rank: rank 0 is the most-visited site.
	return g.cfg.Sites[g.siteZipf.Uint64()], false
}

func (g *Generator) browse(u User) {
	if u.Stack == nil || !g.cfg.WebServer.IsValid() {
		return
	}
	site, censored := g.pickSite()
	g.WebVisits++
	server := g.cfg.WebServer
	if censored {
		g.CensoredVisits++
		if g.cfg.CensoredWebServer.IsValid() {
			server = g.cfg.CensoredWebServer
		}
	}
	path := fmt.Sprintf("/page%d", g.rng.Intn(50))
	websim.Get(u.Stack, server, site, path, func(*httpwire.Response, error) {})
}

func (g *Generator) lookup(u User) {
	if u.DNS == nil || !g.cfg.DNSServer.IsValid() {
		return
	}
	site, _ := g.pickSite()
	g.DNSQueries++
	u.DNS.Query(g.cfg.DNSServer, site, dnswire.TypeA, func(*dnswire.Message, error) {})
}

func (g *Generator) mail(u User) {
	if u.Stack == nil || !g.cfg.MailServer.IsValid() {
		return
	}
	g.MailsSent++
	msg := &smtpwire.Message{
		From:    fmt.Sprintf("user%d@%s", g.rng.Intn(1000), "campus.test"),
		To:      fmt.Sprintf("friend%d@example.test", g.rng.Intn(1000)),
		Subject: "meeting notes",
		Body:    "see you tomorrow, thanks",
	}
	mailsim.SendMail(u.Stack, g.cfg.MailServer, "campus.test", msg, func(error) {})
}

// ScheduleBackgroundScanner emits SYN probes from an external host toward
// random targets — the Internet's constant scanning background (Durumeric
// et al.: 10.8M scans hit one darknet in a month). Measurement scans hide
// in exactly this noise.
func (g *Generator) ScheduleBackgroundScanner(scanner *netsim.Host, targets []netip.Addr, rate float64, horizon time.Duration) {
	if scanner == nil || len(targets) == 0 || rate <= 0 {
		return
	}
	ports := []uint16{22, 23, 80, 443, 445, 3389, 8080, 5900}
	at := time.Duration(0)
	for {
		gap := time.Duration(g.rng.ExpFloat64() / rate * float64(time.Second))
		at += gap
		if at >= horizon {
			return
		}
		dst := targets[g.rng.Intn(len(targets))]
		port := ports[g.rng.Intn(len(ports))]
		seq := uint32(g.rng.Int31())
		g.sim.Schedule(at, func() {
			g.ScanProbes++
			syn := &packet.TCP{SrcPort: uint16(30000 + g.rng.Intn(20000)), DstPort: port, Seq: seq, Flags: packet.TCPSyn, Window: 1024}
			if raw, err := packet.BuildTCP(scanner.Addr, dst, packet.DefaultTTL, syn); err == nil {
				scanner.SendIP(raw)
			}
		})
	}
}

func (g *Generator) p2p(u User) {
	if u.Host == nil || !g.cfg.P2PPeer.IsValid() {
		return
	}
	g.P2PPackets++
	junk := make([]byte, 64+g.rng.Intn(512))
	g.rng.Read(junk)
	u.Host.SendUDP(6881, g.cfg.P2PPeer, 6881, junk)
}
