package population

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/dnssim"
	"safemeasure/internal/mailsim"
	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/websim"
)

var (
	webAddr  = netip.MustParseAddr("203.0.113.80")
	dnsAddr  = netip.MustParseAddr("203.0.113.53")
	mtaAddr  = netip.MustParseAddr("203.0.113.25")
	peerAddr = netip.MustParseAddr("203.0.113.99")
	rtrAddr  = netip.MustParseAddr("10.1.0.1")
)

type env struct {
	sim     *netsim.Sim
	gen     *Generator
	web     *websim.Server
	dns     *dnssim.Server
	mta     *mailsim.Server
	router  *netsim.Router
	p2pSeen int
}

func newEnv(t *testing.T, users int, rates Rates) *env {
	t.Helper()
	sim := netsim.NewSim(17)
	e := &env{sim: sim}
	e.router = netsim.NewRouter(sim, "r", rtrAddr, users+4)

	mkServer := func(name string, addr netip.Addr, port int) *netsim.Host {
		h := netsim.NewHost(sim, name, addr)
		netsim.AttachHost(sim, h, e.router, port, time.Millisecond)
		e.router.AddRoute(netip.PrefixFrom(addr, 32), port)
		return h
	}
	webHost := mkServer("web", webAddr, users)
	dnsHost := mkServer("dns", dnsAddr, users+1)
	mtaHost := mkServer("mta", mtaAddr, users+2)
	peerHost := mkServer("peer", peerAddr, users+3)
	peerHost.BindUDP(6881, func(h *netsim.Host, src netip.Addr, sp uint16, payload []byte) { e.p2pSeen++ })

	var err error
	e.web, err = websim.NewServer(tcpsim.NewStack(webHost))
	if err != nil {
		t.Fatal(err)
	}
	zone := dnssim.NewZone()
	for i := 0; i < 20; i++ {
		zone.AddA(fmt.Sprintf("site%d.test", i), webAddr)
	}
	zone.AddA("blocked.test", webAddr)
	e.dns, err = dnssim.NewServer(dnsHost, zone)
	if err != nil {
		t.Fatal(err)
	}
	e.mta, err = mailsim.NewServer(tcpsim.NewStack(mtaHost))
	if err != nil {
		t.Fatal(err)
	}

	var sites []string
	for i := 0; i < 20; i++ {
		sites = append(sites, fmt.Sprintf("site%d.test", i))
	}
	cfg := Config{
		Sites: sites, CensoredSites: []string{"blocked.test"}, CensoredVisitProb: 0.3,
		WebServer: webAddr, DNSServer: dnsAddr, MailServer: mtaAddr, P2PPeer: peerAddr,
		Rates: rates, Seed: 99,
	}
	e.gen = New(sim, cfg)
	for i := 0; i < users; i++ {
		addr := netip.AddrFrom4([4]byte{10, 1, 0, byte(10 + i)})
		h := netsim.NewHost(sim, fmt.Sprintf("user%d", i), addr)
		netsim.AttachHost(sim, h, e.router, i, time.Millisecond)
		e.router.AddRoute(netip.PrefixFrom(addr, 32), i)
		stack := tcpsim.NewStack(h)
		dnsc, err := dnssim.NewClient(h, 5353)
		if err != nil {
			t.Fatal(err)
		}
		e.gen.AddUser(User{Host: h, Stack: stack, DNS: dnsc})
	}
	return e
}

func TestGeneratorDrivesAllProtocols(t *testing.T) {
	e := newEnv(t, 3, Rates{Web: 2, DNS: 2, Mail: 0.5, P2P: 2})
	e.gen.Run(20 * time.Second)
	e.sim.Run()
	if e.web.Hits == 0 {
		t.Fatal("no web hits")
	}
	if e.dns.Queries == 0 {
		t.Fatal("no dns queries")
	}
	if len(e.mta.Received) == 0 {
		t.Fatal("no mail delivered")
	}
	if e.p2pSeen == 0 {
		t.Fatal("no p2p packets")
	}
	if e.gen.WebVisits == 0 || e.gen.DNSQueries == 0 || e.gen.MailsSent == 0 || e.gen.P2PPackets == 0 {
		t.Fatalf("stats: %+v", e.gen)
	}
}

func TestCensoredVisitsHappen(t *testing.T) {
	e := newEnv(t, 3, Rates{Web: 5})
	e.gen.Run(30 * time.Second)
	e.sim.Run()
	if e.gen.CensoredVisits == 0 {
		t.Fatal("population never visited a censored site (prob 0.3)")
	}
	if e.web.HitsByHost["blocked.test"] == 0 {
		t.Fatalf("hits by host: %v", e.web.HitsByHost)
	}
	if e.gen.CensoredVisits >= e.gen.WebVisits {
		t.Fatal("all visits censored")
	}
}

func TestEventCountsScaleWithRate(t *testing.T) {
	low := newEnv(t, 2, Rates{Web: 0.5})
	low.gen.Run(40 * time.Second)
	low.sim.Run()
	high := newEnv(t, 2, Rates{Web: 5})
	high.gen.Run(40 * time.Second)
	high.sim.Run()
	if high.gen.WebVisits <= 2*low.gen.WebVisits {
		t.Fatalf("rate scaling: low=%d high=%d", low.gen.WebVisits, high.gen.WebVisits)
	}
}

func TestZeroRatesNoTraffic(t *testing.T) {
	e := newEnv(t, 2, Rates{})
	e.gen.Run(10 * time.Second)
	n := e.sim.Run()
	if e.gen.WebVisits+e.gen.DNSQueries+e.gen.MailsSent+e.gen.P2PPackets != 0 {
		t.Fatalf("events generated at zero rates (%d sim events)", n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	counts := func() [4]int {
		e := newEnv(t, 2, Rates{Web: 1, DNS: 1, Mail: 0.2, P2P: 1})
		e.gen.Run(15 * time.Second)
		e.sim.Run()
		return [4]int{e.gen.WebVisits, e.gen.DNSQueries, e.gen.MailsSent, e.gen.P2PPackets}
	}
	if counts() != counts() {
		t.Fatal("generator not deterministic")
	}
}

func TestP2PPacketsLookLikeP2P(t *testing.T) {
	e := newEnv(t, 1, Rates{P2P: 3})
	sawP2PPort := false
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.UDP != nil && tp.Pkt.UDP.DstPort == 6881 {
			sawP2PPort = true
		}
		return netsim.Pass
	}))
	e.gen.Run(10 * time.Second)
	e.sim.Run()
	if !sawP2PPort {
		t.Fatal("no p2p-port traffic observed")
	}
	_ = packet.ProtoUDP
}

// TestSiteSamplingZipfShape pins the catalog sampler to its documented
// Zipf-Mandelbrot law: p(rank k) ∝ 1/(zipfV+k)^zipfS. The old ad-hoc
// float64·float64 skew both overweighted the head and could never select
// the last catalog entry with its nominal probability; these assertions
// hold for the declared distribution and fail for that hack.
func TestSiteSamplingZipfShape(t *testing.T) {
	var sites []string
	for i := 0; i < 20; i++ {
		sites = append(sites, fmt.Sprintf("site%d.test", i))
	}
	g := New(netsim.NewSim(1), Config{Sites: sites, Seed: 42})
	const n = 20000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		site, censored := g.pickSite()
		if censored {
			t.Fatal("censored pick without censored catalog")
		}
		counts[site]++
	}
	frac := func(rank int) float64 {
		return float64(counts[fmt.Sprintf("site%d.test", rank)]) / n
	}
	// With s=1.2, v=1, 20 sites: p(0)≈0.35, top-4≈0.66, ranks 10–19≈0.14.
	if frac(0) < 0.25 {
		t.Fatalf("head rank frequency %.3f, want > 0.25", frac(0))
	}
	if frac(0) < 3*frac(4) {
		t.Fatalf("head not dominant: rank0 %.3f vs rank4 %.3f", frac(0), frac(4))
	}
	if top4 := frac(0) + frac(1) + frac(2) + frac(3); top4 < 0.55 {
		t.Fatalf("top-4 mass %.3f, want > 0.55", top4)
	}
	var tail float64
	for r := 10; r < 20; r++ {
		tail += frac(r)
	}
	if tail > 0.25 {
		t.Fatalf("tail mass %.3f, want < 0.25", tail)
	}
	// Every rank — including the last — is reachable with its nominal
	// probability (~1%% of 20000 draws for rank 19).
	for r := 0; r < 20; r++ {
		if counts[fmt.Sprintf("site%d.test", r)] == 0 {
			t.Fatalf("rank %d never sampled in %d draws", r, n)
		}
	}
	// Same seed, same sequence.
	seq := func() []string {
		g := New(netsim.NewSim(1), Config{Sites: sites, Seed: 7})
		var out []string
		for i := 0; i < 100; i++ {
			s, _ := g.pickSite()
			out = append(out, s)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBackgroundScannerEmitsSYNs(t *testing.T) {
	e := newEnv(t, 2, Rates{})
	scanner := netsim.NewHost(e.sim, "scanner", netip.MustParseAddr("198.51.100.66"))
	// Reuse a spare router port by attaching past the user ports.
	syns := 0
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.TCP != nil && tp.Pkt.TCP.Flags == packet.TCPSyn && tp.Pkt.IP.Src == scanner.Addr {
			syns++
		}
		return netsim.Pass
	}))
	// Attach the scanner where the p2p peer's port is free? Simpler: its
	// own link to port 0 is taken; use a dedicated mini-topology instead.
	sim2 := netsim.NewSim(3)
	r2 := netsim.NewRouter(sim2, "r2", netip.MustParseAddr("10.9.0.1"), 2)
	sc2 := netsim.NewHost(sim2, "scanner", netip.MustParseAddr("198.51.100.66"))
	victim := netsim.NewHost(sim2, "victim", netip.MustParseAddr("10.9.0.10"))
	netsim.AttachHost(sim2, sc2, r2, 0, 0)
	netsim.AttachHost(sim2, victim, r2, 1, 0)
	r2.AddRoute(netip.PrefixFrom(victim.Addr, 32), 1)
	r2.SetDefaultRoute(0)
	g := New(sim2, Config{Seed: 4})
	g.ScheduleBackgroundScanner(sc2, []netip.Addr{victim.Addr}, 100, 2*time.Second)
	sim2.Run()
	if g.ScanProbes == 0 {
		t.Fatal("no probes scheduled")
	}
	// Disabled cases are no-ops.
	g2 := New(sim2, Config{Seed: 5})
	g2.ScheduleBackgroundScanner(nil, []netip.Addr{victim.Addr}, 100, time.Second)
	g2.ScheduleBackgroundScanner(sc2, nil, 100, time.Second)
	g2.ScheduleBackgroundScanner(sc2, []netip.Addr{victim.Addr}, 0, time.Second)
	if g2.ScanProbes != 0 {
		t.Fatal("disabled scanner ran")
	}
}
