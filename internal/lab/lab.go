// Package lab assembles the paper's reference environment (Figure 1): a
// client AS holding the measurement client and a population of cover users,
// an AS edge router enforcing source-address validation, a border router
// carrying the two middlebox taps (censor + surveillance — the paper's two
// Snort instances), and a server zone with web, DNS, and mail servers plus
// a measurer-controlled target.
//
// Topology (latencies per link):
//
//	client, population... — EdgeRouter — Border — {web, sensitive-web,
//	                                               dns, mail, measure, p2p}
//
// The surveillance tap observes everything crossing the border (including
// traffic the censor subsequently drops); the censor tap is inline and may
// drop or inject. TTL-limited replies from the measurement server cross the
// border (and its taps) and then expire at the edge router, before reaching
// any client — the Figure 3b geometry.
package lab

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/censor"
	"safemeasure/internal/dnssim"
	"safemeasure/internal/mailsim"
	"safemeasure/internal/netsim"
	"safemeasure/internal/population"
	"safemeasure/internal/spoof"
	"safemeasure/internal/surveil"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/telemetry"
	"safemeasure/internal/websim"
)

// Well-known lab addresses.
var (
	ClientASPrefix = netip.MustParsePrefix("10.1.0.0/16")
	ClientAddr     = netip.MustParseAddr("10.1.0.10")
	EdgeAddr       = netip.MustParseAddr("10.1.0.1")
	BorderAddr     = netip.MustParseAddr("198.51.100.1")
	WebAddr        = netip.MustParseAddr("203.0.113.80")
	SensitiveAddr  = netip.MustParseAddr("203.0.113.81") // hosts censored sites
	DNSAddr        = netip.MustParseAddr("203.0.113.53")
	MailAddr       = netip.MustParseAddr("203.0.113.25")
	MeasureAddr    = netip.MustParseAddr("198.51.100.10") // measurer-controlled (cloud)
	P2PPeerAddr    = netip.MustParseAddr("203.0.113.99")
	ScannerAddr    = netip.MustParseAddr("198.51.100.66") // background Internet scanner

	// PoisonPrefix is the bogon space forged DNS answers land in; probes
	// recognize answers inside it as poisoning.
	PoisonPrefix = netip.MustParsePrefix("198.18.0.0/15")
	PoisonAddr   = netip.MustParseAddr("198.18.0.1")
)

// Config parameterizes the lab.
type Config struct {
	// PopulationSize is the number of cover users in the client AS.
	PopulationSize int
	// LinkLatency applies to every link.
	LinkLatency time.Duration
	// LinkJitter adds uniformly distributed per-packet delay in
	// [0, LinkJitter) to every link — deterministic timing noise that
	// exercises retransmission and reordering paths.
	LinkJitter time.Duration
	// Impair degrades the WAN uplink (the edge↔border link every probe
	// crosses) with the given loss/reorder/duplicate/corrupt profile. All
	// impairment randomness comes from the lab's seeded RNG. See
	// Impairments() for the named presets campaigns sweep.
	Impair netsim.Impairment
	// Behavior makes the censor itself adversarial (intermittent
	// enforcement, throttling, truncated blockpages, lazy or exhausted
	// injectors). The zero value is the faithful censor. Behavior is
	// runtime-only state on the censor instance — it does not affect the
	// compiled artifacts, so behaviored and faithful runs share Artifacts.
	// See Behaviors() for the named presets campaigns sweep.
	Behavior censor.Behavior
	// Censor configures the censorship middlebox. Zero value gives the
	// default GFC-style setup (keywords + poisoned domains).
	Censor censor.Config
	// SpoofPolicy is the SAV regime of the client's network.
	SpoofPolicy spoof.Policy
	// SurveilRules overrides the surveillance ruleset (Snort-like text);
	// empty uses the default subscribed ruleset derived from the censor
	// config.
	SurveilRules string
	// Population traffic rates; zero value uses DefaultRates.
	PopRates population.Rates
	// DisableMVRDiscard turns off the surveillance system's wholesale
	// class discard (E12 ablation: the §3 techniques lose their cover).
	DisableMVRDiscard bool
	// BackgroundScanRate, when nonzero, drives an external Internet
	// scanner probing the client AS at this rate (SYNs/second) during
	// StartPopulation — the Durumeric et al. background the paper's
	// Method #1 hides in.
	BackgroundScanRate float64
	// SiteCount is how many innocuous sites the lab hosts and serves DNS
	// for (0 means 30). Campaign runs build thousands of labs; a smaller
	// catalog makes per-run construction cheaper without changing any
	// technique's behaviour.
	SiteCount int
	Seed      int64

	// Artifacts, when set, supplies pre-compiled rulesets, the DNS zone,
	// and the site catalog so New skips recompiling them. The artifacts
	// must have been built (via NewArtifacts) from a config whose
	// compile-relevant fields (Censor, SurveilRules, SiteCount) equal this
	// one's — New fails with a descriptive error otherwise. Nil compiles
	// everything fresh.
	Artifacts *Artifacts

	// Telemetry, when set, receives hot-path metrics from the simulator,
	// routers, middleboxes, and techniques. Nil keeps the zero-overhead
	// disabled path.
	Telemetry *telemetry.Registry
	// Trace, when set, receives packet-path events stamped with the lab's
	// virtual clock. Nil disables tracing.
	Trace *telemetry.Tracer
}

// DefaultCensorConfig is the GFC-style ground truth used across the
// experiments: keyword RST injection, DNS poisoning of the paper's two
// validated domains plus a lab domain, port blocking and a blackhole.
func DefaultCensorConfig() censor.Config {
	return censor.Config{
		Keywords:       []string{"falun", "ultrasurf"},
		BlockedDomains: []string{"twitter.com", "youtube.com", "banned.test"},
		PoisonAddr:     PoisonAddr,
		BlockedPorts:   nil,
		Blackholed:     nil,
	}
}

// Lab is the assembled environment.
type Lab struct {
	Cfg Config
	Sim *netsim.Sim

	// Measurement client and its protocol endpoints.
	Client      *netsim.Host
	ClientStack *tcpsim.Stack
	ClientDNS   *dnssim.Client

	// Population cover users.
	Population []population.User
	Pop        *population.Generator

	// Routers.
	Edge   *netsim.Router
	Border *netsim.Router

	// Server zone.
	Web       *websim.Server
	Sensitive *websim.Server
	DNS       *dnssim.Server
	Mail      *mailsim.Server

	// Measurement server (controlled by the measurer).
	MeasureHost  *netsim.Host
	MeasureStack *tcpsim.Stack
	MeasureWeb   *websim.Server

	// ScannerHost is the external background scanner (Durumeric noise).
	ScannerHost *netsim.Host

	// Middleboxes.
	Censor  *censor.Censor
	Surveil *surveil.System
	SAV     *spoof.Filter

	// Uplink is the edge↔border WAN link — the only link Config.Impair
	// applies to. lanLinks are the client-AS host↔edge links, kept so
	// tests can assert the impairment scope contract (see LANLinks).
	Uplink   *netsim.Link
	lanLinks []*netsim.Link

	hostPorts map[int]netip.Addr // edge router port -> true host address

	// Sites served by the lab.
	InnocuousSites []string
	CensoredSites  []string
}

// normalize applies Config defaults. New and NewArtifacts share it so
// artifacts built from a bare scenario preset match the defaulted config
// every lab actually runs with.
func normalize(cfg Config) Config {
	if cfg.PopulationSize <= 0 {
		cfg.PopulationSize = 20
	}
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = time.Millisecond
	}
	if len(cfg.Censor.Keywords) == 0 && len(cfg.Censor.BlockedDomains) == 0 &&
		len(cfg.Censor.Blackholed) == 0 && len(cfg.Censor.BlockedPorts) == 0 {
		cfg.Censor = DefaultCensorConfig()
	}
	if cfg.PopRates == (population.Rates{}) {
		cfg.PopRates = population.DefaultRates()
	}
	if cfg.SiteCount <= 0 {
		cfg.SiteCount = 30
	}
	return cfg
}

// popHostsPerSubnet is how many population hosts one /24 holds: final
// octets 20..255 (below 20 is reserved for routers and the client).
const popHostsPerSubnet = 236

// popAddr returns population host i's address. Hosts split into two address
// scopes so both spoofing regimes are exercised — the first half lives in
// even third-octet /24s starting with the client's own 10.1.0.0/24, the
// second half in odd /24s starting at 10.1.1.0/24 — and each scope spills
// into further /24s once a subnet's 236-host range fills, instead of
// silently wrapping the final octet onto already-assigned addresses.
func popAddr(i, populationSize int) (netip.Addr, error) {
	j, base := i, 0
	if half := populationSize / 2; i >= half {
		j, base = i-half, 1
	}
	subnet := base + 2*(j/popHostsPerSubnet)
	if subnet > 255 {
		return netip.Addr{}, fmt.Errorf("lab: population size %d does not fit the client AS %s (host %d would need subnet 10.1.%d.0/24)",
			populationSize, ClientASPrefix, i, subnet)
	}
	return netip.AddrFrom4([4]byte{10, 1, byte(subnet), byte(20 + j%popHostsPerSubnet)}), nil
}

// New assembles a lab. Population hosts are split across the client's /24
// and sibling /24s so both spoofing scopes are exercised.
func New(cfg Config) (*Lab, error) {
	cfg = normalize(cfg)
	art := cfg.Artifacts
	if art == nil {
		var err error
		if art, err = NewArtifacts(cfg); err != nil {
			return nil, err
		}
	} else if err := art.matches(cfg); err != nil {
		return nil, err
	}

	l := &Lab{Cfg: cfg, Sim: netsim.NewSim(cfg.Seed), hostPorts: make(map[int]netip.Addr)}
	// Telemetry must be installed before any router is constructed: routers
	// resolve their counter handles from Sim.Tel at creation time.
	l.Sim.Tel = cfg.Telemetry
	l.Sim.Trace = cfg.Trace
	lat := cfg.LinkLatency

	nHosts := cfg.PopulationSize + 1
	l.Edge = netsim.NewRouter(l.Sim, "edge", EdgeAddr, nHosts+1)
	l.Border = netsim.NewRouter(l.Sim, "border", BorderAddr, 8)

	// Measurement client on edge port 0.
	l.Client = netsim.NewHost(l.Sim, "client", ClientAddr)
	l.attachClientHost(l.Client, 0, lat)
	l.ClientStack = tcpsim.NewStack(l.Client)
	var err error
	if l.ClientDNS, err = dnssim.NewClient(l.Client, 5353); err != nil {
		return nil, err
	}

	// Population hosts on edge ports 1..n: first half shares the client's
	// /24 scope, second half the sibling-/24 scope (see popAddr).
	for i := 0; i < cfg.PopulationSize; i++ {
		addr, err := popAddr(i, cfg.PopulationSize)
		if err != nil {
			return nil, err
		}
		h := netsim.NewHost(l.Sim, fmt.Sprintf("pop%d", i), addr)
		l.attachClientHost(h, i+1, lat)
		stack := tcpsim.NewStack(h)
		dnsc, err := dnssim.NewClient(h, 5353)
		if err != nil {
			return nil, err
		}
		l.Population = append(l.Population, population.User{Host: h, Stack: stack, DNS: dnsc})
	}

	// Edge uplink to border. Client-AS destinations without a host route
	// are null-routed at the edge (port -1) so replies to spoofed,
	// unassigned cover addresses die there instead of looping.
	// The uplink carries every probe and reply, so it is where the WAN
	// impairment profile lives; per-link jitter still applies when larger.
	uplink := netsim.ConnectRouters(l.Sim, l.Edge, nHosts, l.Border, 0, lat)
	uplink.ApplyImpairment(cfg.Impair)
	if cfg.LinkJitter > uplink.Jitter {
		uplink.Jitter = cfg.LinkJitter
	}
	l.Uplink = uplink
	l.Edge.AddRoute(ClientASPrefix, -1)
	l.Edge.SetDefaultRoute(nHosts)
	l.Border.AddRoute(ClientASPrefix, 0)

	// SAV filter at the edge: drops spoofed sources outside the sender's
	// allowed scope. The true sender is known from the ingress port.
	l.SAV = spoof.NewFilter()
	l.SAV.SetPolicy(ClientAddr, cfg.SpoofPolicy)
	l.Edge.AddTap(netsim.TapFunc(l.savTap))

	// Server zone on border ports 1..6.
	mkServer := func(name string, addr netip.Addr, port int) *netsim.Host {
		h := netsim.NewHost(l.Sim, name, addr)
		link := netsim.AttachHost(l.Sim, h, l.Border, port, lat)
		link.Jitter = l.Cfg.LinkJitter
		l.Border.AddRoute(netip.PrefixFrom(addr, 32), port)
		return h
	}
	webHost := mkServer("web", WebAddr, 1)
	sensHost := mkServer("sensitive-web", SensitiveAddr, 2)
	dnsHost := mkServer("dns", DNSAddr, 3)
	mailHost := mkServer("mail", MailAddr, 4)
	l.MeasureHost = mkServer("measure", MeasureAddr, 5)
	p2pHost := mkServer("p2p-peer", P2PPeerAddr, 6)
	p2pHost.BindUDP(6881, func(*netsim.Host, netip.Addr, uint16, []byte) {})
	l.ScannerHost = mkServer("bg-scanner", ScannerAddr, 7)

	if l.Web, err = websim.NewServer(tcpsim.NewStack(webHost)); err != nil {
		return nil, err
	}
	if l.Sensitive, err = websim.NewServer(tcpsim.NewStack(sensHost)); err != nil {
		return nil, err
	}
	if l.Mail, err = mailsim.NewServer(tcpsim.NewStack(mailHost)); err != nil {
		return nil, err
	}
	l.MeasureStack = tcpsim.NewStack(l.MeasureHost)
	if l.MeasureWeb, err = websim.NewServer(l.MeasureStack); err != nil {
		return nil, err
	}

	// Site catalog and DNS zone come from the compiled artifacts (the zone
	// is read-only at serve time, the slices are never mutated).
	l.InnocuousSites = art.innocuous
	l.CensoredSites = art.censored
	if l.DNS, err = dnssim.NewServer(dnsHost, art.zone); err != nil {
		return nil, err
	}

	// Middleboxes on the border: surveillance observes first (a passive
	// optical tap sees traffic whether or not the censor later drops it),
	// then the inline censor. Both engines are instantiated over the
	// artifacts' compiled rulesets; all per-run state stays private.
	mvrCfg := surveil.DefaultMVRConfig(ClientASPrefix)
	if cfg.DisableMVRDiscard {
		mvrCfg.DiscardClasses = nil
	}
	l.Surveil = surveil.NewFromCompiled(mvrCfg, art.surveil)
	l.Surveil.Analyst().Population = cfg.PopulationSize + 1
	l.Border.AddTap(l.Surveil)

	l.Censor = art.censor.New()
	// The behavior seed is its own derivation (seed + 2, beside the
	// population's seed + 1) so adding a behavior never perturbs any other
	// seeded stream.
	l.Censor.SetBehavior(cfg.Behavior, cfg.Seed+2, l.Sim)
	l.Border.AddTap(l.Censor)

	if cfg.Telemetry != nil || cfg.Trace != nil {
		l.Surveil.SetTelemetry(cfg.Telemetry, cfg.Trace)
		l.Censor.SetTelemetry(cfg.Telemetry, cfg.Trace)
	}

	// Population generator.
	l.Pop = population.New(l.Sim, population.Config{
		Sites:             l.InnocuousSites,
		CensoredSites:     l.CensoredSites,
		CensoredVisitProb: 0.02,
		WebServer:         WebAddr,
		CensoredWebServer: SensitiveAddr,
		DNSServer:         DNSAddr,
		MailServer:        MailAddr,
		P2PPeer:           P2PPeerAddr,
		Rates:             cfg.PopRates,
		Seed:              cfg.Seed + 1,
	})
	for _, u := range l.Population {
		l.Pop.AddUser(u)
	}
	return l, nil
}

// attachClientHost wires a host into the edge router and records the
// port->address mapping the SAV tap uses.
func (l *Lab) attachClientHost(h *netsim.Host, port int, lat time.Duration) {
	link := netsim.AttachHost(l.Sim, h, l.Edge, port, lat)
	link.Jitter = l.Cfg.LinkJitter
	l.Edge.AddRoute(netip.PrefixFrom(h.Addr, 32), port)
	l.hostPorts[port] = h.Addr
	l.lanLinks = append(l.lanLinks, link)
}

// LANLinks returns the client-AS host↔edge links. Config.Impair never
// touches these — the impairment scope contract tests assert they stay
// clean.
func (l *Lab) LANLinks() []*netsim.Link { return l.lanLinks }

// savTap enforces source-address validation at the AS edge.
func (l *Lab) savTap(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
	truth, fromHost := l.hostPorts[tp.InPort]
	if !fromHost || tp.Pkt == nil {
		return netsim.Pass // downstream traffic or unparsable
	}
	if tp.Pkt.IP.Src == truth {
		return netsim.Pass
	}
	if l.SAV.Allow(truth, tp.Pkt.IP.Src) {
		return netsim.Pass
	}
	return netsim.Drop
}

// DefaultSurveilRules derives the surveillance system's "subscribed
// ruleset" from the censorship ground truth: signatures for overt
// censorship measurement (high analyst weight) and for malware-looking
// behaviour (scan/spam/ddos — low weight, and the MVR discards those
// classes wholesale anyway).
func DefaultSurveilRules(c censor.Config) string {
	var b strings.Builder
	sid := 5000
	for _, dom := range c.BlockedDomains {
		// DNS A question for the censored domain, wire format (length-
		// prefixed labels, root byte, qtype A, qclass IN):
		// |07|twitter|03|com|00 00 01 00 01|. Pinning the qtype to A is
		// deliberate — an analyst hunts browsing-style lookups; MX
		// lookups are indistinguishable from zone-enumerating spam bots
		// (the gap Method #2 hides in).
		fmt.Fprintf(&b, "alert udp $HOME_NET any -> any 53 (msg:\"censored-domain DNS lookup %s\"; content:\"%s|00 00 01 00 01|\"; nocase; sid:%d; classtype:censorship-measurement;)\n",
			dom, wireName(dom), sid)
		sid++
		fmt.Fprintf(&b, "alert tcp $HOME_NET any -> any 80 (msg:\"censored-domain HTTP host %s\"; content:\"Host: %s\"; nocase; sid:%d; classtype:censorship-measurement;)\n",
			dom, dom, sid)
		sid++
	}
	for _, kw := range c.Keywords {
		fmt.Fprintf(&b, "alert tcp $HOME_NET any -> any any (msg:\"censored keyword %s\"; content:\"%s\"; nocase; sid:%d; classtype:censorship-measurement;)\n",
			kw, kw, sid)
		sid++
	}
	for _, p := range c.Blackholed {
		fmt.Fprintf(&b, "alert tcp $HOME_NET any -> %s any (msg:\"connection attempt to blackholed prefix %s\"; flags:S; sid:%d; classtype:censorship-measurement;)\n",
			p, p, sid)
		sid++
	}
	for _, port := range c.BlockedPorts {
		fmt.Fprintf(&b, "alert tcp $HOME_NET any -> any %d (msg:\"connection attempt to blocked port %d\"; flags:S; sid:%d; classtype:censorship-measurement;)\n",
			port, port, sid)
		sid++
	}
	b.WriteString(`
# malware-class signatures (weight ~0 for the analyst; classes discarded by MVR)
alert tcp $HOME_NET any -> any any (msg:"nmap syn scan"; flags:S; threshold:type both, track by_src, count 15, seconds 10; sid:5900; classtype:attempted-recon;)
alert tcp $HOME_NET any -> any 25 (msg:"bulk spam delivery"; content:"lottery"; nocase; sid:5901; classtype:spam;)
alert tcp $HOME_NET any -> any 80 (msg:"http flood"; flags:S; threshold:type both, track by_src, count 30, seconds 10; sid:5902; classtype:ddos;)
`)
	return b.String()
}

// wireName renders a domain in DNS wire format with |xx| hex length bytes,
// suitable for a content: pattern.
func wireName(dom string) string {
	var b strings.Builder
	for _, label := range strings.Split(dom, ".") {
		fmt.Fprintf(&b, "|%02x|%s", len(label), label)
	}
	return b.String()
}

// StartPopulation schedules cover-traffic generation over the horizon,
// including the background Internet scanner when configured.
func (l *Lab) StartPopulation(horizon time.Duration) {
	l.Pop.Run(horizon)
	if l.Cfg.BackgroundScanRate > 0 {
		targets := append(l.PopulationAddrs(), ClientAddr)
		l.Pop.ScheduleBackgroundScanner(l.ScannerHost, targets, l.Cfg.BackgroundScanRate, horizon)
	}
}

// Run drains the simulator.
func (l *Lab) Run() int { return l.Sim.Run() }

// RunFor advances virtual time by d.
func (l *Lab) RunFor(d time.Duration) int { return l.Sim.RunFor(d) }

// PopulationAddrs lists the cover users' addresses.
func (l *Lab) PopulationAddrs() []netip.Addr {
	out := make([]netip.Addr, len(l.Population))
	for i, u := range l.Population {
		out[i] = u.Host.Addr
	}
	return out
}

// SiteAddr returns the address a site is truly hosted at.
func (l *Lab) SiteAddr(site string) netip.Addr {
	for _, s := range l.CensoredSites {
		if s == site {
			return SensitiveAddr
		}
	}
	return WebAddr
}
