package lab

import (
	"fmt"
	"net/netip"
	"reflect"

	"safemeasure/internal/censor"
	"safemeasure/internal/dnssim"
	"safemeasure/internal/ids"
)

// Artifacts holds the immutable, compile-once parts of a lab: the censor's
// compiled ruleset, the surveillance system's compiled ruleset, the DNS
// zone, and the site catalog. None of these depend on the seed, only on the
// (scenario, impairment)-level config fields — so one Artifacts value can
// back any number of concurrent lab.New calls, which is how campaign
// workers stop recompiling two Aho-Corasick automata and rebuilding the
// zone for every one of a campaign's thousands of runs.
//
// Everything reachable from an Artifacts value is treated as read-only by
// the lab and every subsystem it hands the values to; callers must not
// mutate the returned site slices or zone.
type Artifacts struct {
	// Inputs the artifacts were derived from, kept for validation: a lab
	// refuses artifacts built for a different config rather than silently
	// simulating the wrong censor.
	censorCfg  censor.Config
	surveilSrc string // Config.SurveilRules override ("" = derived default)
	siteCount  int

	censor    *censor.Compiled
	surveil   *ids.CompiledRules
	zone      *dnssim.Zone
	innocuous []string
	censored  []string
}

// NewArtifacts compiles the shareable parts of a lab for cfg. Only the
// compile-relevant fields matter (Censor, SurveilRules, SiteCount); cfg is
// normalized exactly as lab.New normalizes it, so artifacts built from a
// scenario preset match every per-seed Config the preset later produces.
func NewArtifacts(cfg Config) (*Artifacts, error) {
	cfg = normalize(cfg)
	a := &Artifacts{
		censorCfg:  cfg.Censor,
		surveilSrc: cfg.SurveilRules,
		siteCount:  cfg.SiteCount,
	}

	var err error
	if a.censor, err = censor.Compile(cfg.Censor); err != nil {
		return nil, err
	}

	ruleText := cfg.SurveilRules
	if ruleText == "" {
		ruleText = DefaultSurveilRules(cfg.Censor)
	}
	rules, err := ids.ParseRules(ruleText, map[string]netip.Prefix{"HOME_NET": ClientASPrefix})
	if err != nil {
		return nil, fmt.Errorf("lab: surveillance rules: %w", err)
	}
	a.surveil = ids.Compile(rules)

	// Site catalog and DNS zone: innocuous sites on the main web server,
	// censored sites on the sensitive one; every domain gets an MX at the
	// mail server.
	zone := dnssim.NewZone()
	for i := 0; i < cfg.SiteCount; i++ {
		site := fmt.Sprintf("site%02d.test", i)
		a.innocuous = append(a.innocuous, site)
		zone.AddA(site, WebAddr)
		zone.AddMX(site, 10, "mx."+site)
		zone.AddA("mx."+site, MailAddr)
	}
	a.censored = append([]string(nil), cfg.Censor.BlockedDomains...)
	for _, site := range a.censored {
		zone.AddA(site, SensitiveAddr)
		zone.AddA("www."+site, SensitiveAddr)
		zone.AddMX(site, 10, "mx."+site)
		zone.AddA("mx."+site, MailAddr)
	}
	zone.AddA("measure.test", MeasureAddr)
	a.zone = zone
	return a, nil
}

// matches reports whether these artifacts were compiled from the same
// compile-relevant fields as cfg (which must already be normalized).
func (a *Artifacts) matches(cfg Config) error {
	switch {
	case !reflect.DeepEqual(a.censorCfg, cfg.Censor):
		return fmt.Errorf("lab: Artifacts were compiled for a different censor config (%+v vs %+v); build artifacts from this exact config with NewArtifacts", a.censorCfg, cfg.Censor)
	case a.surveilSrc != cfg.SurveilRules:
		return fmt.Errorf("lab: Artifacts were compiled for different surveillance rules; build artifacts from this exact config with NewArtifacts")
	case a.siteCount != cfg.SiteCount:
		return fmt.Errorf("lab: Artifacts were compiled for SiteCount=%d, config wants %d; build artifacts from this exact config with NewArtifacts", a.siteCount, cfg.SiteCount)
	}
	return nil
}
