package lab

import (
	"time"

	"safemeasure/internal/censor"
)

// BehaviorPreset is a named adversarial-censor profile: a way the censor
// itself misbehaves while its policy stays the ground truth. Presets are
// the campaign planner's censor-behavior sweep axis — the fourth dimension
// of the E11 matrix, beside technique, scenario, and impairment. Unlike
// impairments (which degrade the WAN uplink in both directions; see
// ImpairmentPreset), behaviors live inside the censor tap at the border,
// so mechanisms like throttling shape both directions of a flow by
// construction. All behavior state is seed-deterministic: flow decisions
// hash the behavior seed (lab seed + 2), and all rate state advances on
// virtual time.
type BehaviorPreset struct {
	Name     string
	Summary  string
	Behavior censor.Behavior
}

// BehaviorNone is the name of the faithful (deterministic) censor preset.
const BehaviorNone = "none"

// Behaviors returns every preset, in stable order. "none" is first, so
// default campaigns stay identical to a behavior-unaware sweep.
func Behaviors() []BehaviorPreset {
	return []BehaviorPreset{
		{
			Name:    BehaviorNone,
			Summary: "faithful censor: every matching flow enforced (control)",
		},
		{
			Name:    "intermittent",
			Summary: "enforces on only ~50% of matching flows, sticky per flow",
			Behavior: censor.Behavior{
				EnforceProb: 0.5,
			},
		},
		{
			Name:    "throttle",
			Summary: "token-bucket shaping (1 KiB/s, 128 B burst) instead of RSTs",
			Behavior: censor.Behavior{
				ThrottleRate:  1024,
				ThrottleBurst: 128,
			},
		},
		{
			Name:    "partial-blockpage",
			Summary: "injected 403 blockpage truncated after 96 bytes, then FIN",
			Behavior: censor.Behavior{
				BlockpageBytes: 96,
			},
		},
		{
			Name:    "lazy-rst",
			Summary: "RST injection delayed 2ms past the trigger",
			Behavior: censor.Behavior{
				InjectDelay: 2 * time.Millisecond,
			},
		},
		{
			Name:    "exhausted",
			Summary: "injector budget 3 actions, one refill per 700ms — stops enforcing under load",
			Behavior: censor.Behavior{
				InjectorBudget: 3,
				InjectorRefill: 700 * time.Millisecond,
			},
		},
	}
}

// BehaviorByName looks a preset up by name. The empty string is the
// faithful censor, like ImpairmentByName.
func BehaviorByName(name string) (BehaviorPreset, bool) {
	if name == "" {
		name = BehaviorNone
	}
	for _, p := range Behaviors() {
		if p.Name == name {
			return p, true
		}
	}
	return BehaviorPreset{}, false
}

// BehaviorNames lists every preset name in Behaviors() order.
func BehaviorNames() []string {
	all := Behaviors()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
