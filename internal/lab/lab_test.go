package lab

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/packet"
	"safemeasure/internal/spoof"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/websim"
)

func TestLabAssembles(t *testing.T) {
	l, err := New(Config{PopulationSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Population) != 10 {
		t.Fatalf("population = %d", len(l.Population))
	}
	if len(l.CensoredSites) == 0 || len(l.InnocuousSites) == 0 {
		t.Fatal("site catalogs empty")
	}
	// Population is split across two /24s.
	var in24, in24b int
	for _, a := range l.PopulationAddrs() {
		if a.As4()[2] == 0 {
			in24++
		} else {
			in24b++
		}
	}
	if in24 == 0 || in24b == 0 {
		t.Fatalf("population split: %d/%d", in24, in24b)
	}
}

func TestInnocuousBrowsingWorks(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var resp *httpwire.Response
	websim.Get(l.ClientStack, WebAddr, "site01.test", "/", func(r *httpwire.Response, err error) {
		if err == nil {
			resp = r
		}
	})
	l.Run()
	if resp == nil || resp.Status != 200 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCensoredKeywordKillsConnection(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	websim.Get(l.ClientStack, WebAddr, "site01.test", "/falun", func(r *httpwire.Response, err error) {
		gotErr = err
	})
	l.Run()
	if !errors.Is(gotErr, websim.ErrConnection) {
		t.Fatalf("err = %v, want connection failure (RST injection)", gotErr)
	}
}

func TestCensoredDomainPoisoned(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var answer netip.Addr
	l.ClientDNS.Query(DNSAddr, "twitter.com", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err == nil && len(m.Answers) > 0 {
			answer = m.Answers[0].A
		}
	})
	l.Run()
	if !PoisonPrefix.Contains(answer) {
		t.Fatalf("answer %v not in poison space", answer)
	}
}

func TestInnocuousDomainResolves(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var answer netip.Addr
	l.ClientDNS.Query(DNSAddr, "site05.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err == nil && len(m.Answers) > 0 {
			answer = m.Answers[0].A
		}
	})
	l.Run()
	if answer != WebAddr {
		t.Fatalf("answer = %v", answer)
	}
}

func TestSAVBlocksSpoofingUnderStrictPolicy(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, SpoofPolicy: spoof.PolicyStrict, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cover := l.Population[0].Host.Addr
	raw, _ := packet.BuildUDP(cover, DNSAddr, packet.DefaultTTL, &packet.UDP{SrcPort: 9999, DstPort: 53, Payload: []byte("x")})
	l.Client.SendIP(raw)
	l.Run()
	if l.SAV.Dropped == 0 {
		t.Fatal("spoofed packet not dropped under strict SAV")
	}
}

func TestSAVAllowsSlash24Spoofing(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, SpoofPolicy: spoof.PolicySlash24, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Cover user in the client's own /24.
	var cover netip.Addr
	for _, a := range l.PopulationAddrs() {
		if a.As4()[2] == 0 {
			cover = a
			break
		}
	}
	q := dnswire.NewQuery(77, "site01.test", dnswire.TypeA)
	wire, _ := q.Marshal()
	raw, _ := packet.BuildUDP(cover, DNSAddr, packet.DefaultTTL, &packet.UDP{SrcPort: 9999, DstPort: 53, Payload: wire})
	l.Client.SendIP(raw)
	l.Run()
	if l.SAV.Passed == 0 {
		t.Fatal("in-/24 spoof not passed")
	}
	// The DNS server answered toward the cover host, not the client.
	if l.DNS.Queries != 1 {
		t.Fatalf("dns queries = %d", l.DNS.Queries)
	}
}

func TestSurveillanceSeesOvertProbe(t *testing.T) {
	l, err := New(Config{PopulationSize: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	websim.Get(l.ClientStack, SensitiveAddr, "banned.test", "/", func(*httpwire.Response, error) {})
	l.Run()
	if !l.Surveil.Analyst().IsFlagged(ClientAddr) {
		t.Fatalf("overt prober not flagged; score=%.2f alerts=%d",
			l.Surveil.Analyst().Score(ClientAddr), l.Surveil.Analyst().AlertCount())
	}
}

func TestPopulationTrafficRuns(t *testing.T) {
	l, err := New(Config{PopulationSize: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	l.StartPopulation(10 * time.Second)
	l.Run()
	if l.Pop.WebVisits == 0 || l.Pop.DNSQueries == 0 {
		t.Fatalf("population idle: %+v", l.Pop)
	}
	if l.Surveil.PacketsSeen == 0 {
		t.Fatal("surveillance saw nothing")
	}
}

func TestMeasureServerReachable(t *testing.T) {
	l, err := New(Config{PopulationSize: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	websim.Get(l.ClientStack, MeasureAddr, "measure.test", "/echo", func(r *httpwire.Response, err error) {
		ok = err == nil && r.Status == 200
	})
	l.Run()
	if !ok {
		t.Fatal("measurement server unreachable")
	}
}

func TestDefaultSurveilRulesParse(t *testing.T) {
	text := DefaultSurveilRules(DefaultCensorConfig())
	if !strings.Contains(text, "censorship-measurement") || !strings.Contains(text, "attempted-recon") {
		t.Fatalf("ruleset:\n%s", text)
	}
}

func TestWireName(t *testing.T) {
	if got := wireName("twitter.com"); got != "|07|twitter|03|com" {
		t.Fatalf("wireName = %q", got)
	}
}

func TestSiteAddr(t *testing.T) {
	l, err := New(Config{PopulationSize: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if l.SiteAddr("twitter.com") != SensitiveAddr {
		t.Fatal("censored site addr")
	}
	if l.SiteAddr("site01.test") != WebAddr {
		t.Fatal("innocuous site addr")
	}
}

func TestBlackholeConfig(t *testing.T) {
	cfg := DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(SensitiveAddr, 32)}
	l, err := New(Config{PopulationSize: 2, Censor: cfg, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	websim.Get(l.ClientStack, SensitiveAddr, "banned.test", "/", func(r *httpwire.Response, err error) { gotErr = err })
	l.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), tcpsim.ErrTimeout.Error()) {
		t.Fatalf("err = %v, want timeout", gotErr)
	}
}

func TestBackgroundScannerNoise(t *testing.T) {
	l, err := New(Config{PopulationSize: 6, BackgroundScanRate: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	l.StartPopulation(5 * time.Second)
	l.Run()
	if l.Pop.ScanProbes == 0 {
		t.Fatal("background scanner idle")
	}
	// The scanner is outside the home network: it gets no dossier, and its
	// probes must not produce alerts against anyone else. Population members
	// may still be flagged for their own censored-domain visits (the
	// Syrian-log effect), so assert attribution, not absence of flags.
	if l.Surveil.Analyst().IsFlagged(ScannerAddr) {
		t.Fatal("external scanner got a dossier flag")
	}
	for _, u := range l.Population {
		d := l.Surveil.Analyst().Dossier(u.Host.Addr)
		if d == nil {
			continue
		}
		for _, alert := range d.Alerts {
			if alert.Flow.Src == ScannerAddr || alert.Flow.Dst == ScannerAddr {
				t.Fatalf("population member %v alerted on scan noise: %s", u.Host.Addr, alert)
			}
		}
	}
}

// TestPopulationAddressingSpillsAcrossSubnets is the regression test for the
// silent final-octet wrap: once a /24's 236-host range filled, host i and
// host i+236 used to collide on the same address. Addresses must now spill
// into further /24s — every host distinct, inside the client AS, and clear
// of the reserved low octets (routers, the client).
func TestPopulationAddressingSpillsAcrossSubnets(t *testing.T) {
	const size = 600 // > 2*236, so both halves spill into a second /24
	seen := make(map[netip.Addr]int, size)
	for i := 0; i < size; i++ {
		addr, err := popAddr(i, size)
		if err != nil {
			t.Fatalf("popAddr(%d, %d): %v", i, size, err)
		}
		if prev, dup := seen[addr]; dup {
			t.Fatalf("hosts %d and %d share address %s", prev, i, addr)
		}
		seen[addr] = i
		if !ClientASPrefix.Contains(addr) {
			t.Fatalf("host %d address %s outside client AS %s", i, addr, ClientASPrefix)
		}
		if addr.As4()[3] < 20 {
			t.Fatalf("host %d address %s inside the reserved low range", i, addr)
		}
		if addr == ClientAddr || addr == EdgeAddr {
			t.Fatalf("host %d collides with infrastructure address %s", i, addr)
		}
	}
}

// TestPopulationAddressingOverflowErrors: a population too large for the
// client /16 is a descriptive error, not an address collision.
func TestPopulationAddressingOverflowErrors(t *testing.T) {
	// Each half owns 128 /24s of 236 hosts; one host past that overflows.
	const size = 2 * 128 * 236 // 60416: last valid index per half is 30207
	if _, err := popAddr(128*236, size+2); err == nil {
		t.Fatal("overflowing population produced no error")
	} else if !strings.Contains(err.Error(), "does not fit the client AS") {
		t.Fatalf("unexpected overflow error: %v", err)
	}
}

// TestPopulationLabBuildBeyondOneSubnet: the lab actually wires a spilled
// population — hosts past the first /24 get routes and distinct addresses
// end to end, not just in the allocator.
func TestPopulationLabBuildBeyondOneSubnet(t *testing.T) {
	l, err := New(Config{PopulationSize: 480, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	addrs := l.PopulationAddrs()
	if len(addrs) != 480 {
		t.Fatalf("population = %d, want 480", len(addrs))
	}
	seen := make(map[netip.Addr]bool, len(addrs))
	subnets := make(map[byte]bool)
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate population address %s", a)
		}
		seen[a] = true
		subnets[a.As4()[2]] = true
	}
	if len(subnets) < 3 {
		t.Fatalf("480 hosts landed in only %d /24s; spill not exercised", len(subnets))
	}
}
