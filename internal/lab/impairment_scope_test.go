package lab

import (
	"testing"

	"safemeasure/internal/netsim"
)

// TestImpairmentScopeLANLinksClean pins the impairment scope contract: a
// Config.Impair preset applies to the WAN uplink and ONLY the WAN uplink.
// The client-AS host↔edge links stay pristine, so an impairment sweep models
// a bad transit path, not a broken client LAN — and techniques that compare
// cover-population behaviour against the measurer's are comparing like with
// like.
func TestImpairmentScopeLANLinksClean(t *testing.T) {
	for _, preset := range Impairments() {
		l, err := New(Config{Seed: 1, PopulationSize: 6, Impair: preset.Impair})
		if err != nil {
			t.Fatalf("%s: lab.New: %v", preset.Name, err)
		}
		if l.Uplink == nil {
			t.Fatalf("%s: lab has no uplink", preset.Name)
		}
		got := netsim.Impairment{
			Loss:         l.Uplink.Loss,
			Jitter:       l.Uplink.Jitter,
			Reorder:      l.Uplink.Reorder,
			ReorderDelay: l.Uplink.ReorderDelay,
			Duplicate:    l.Uplink.Duplicate,
			Corrupt:      l.Uplink.Corrupt,
		}
		if got != preset.Impair {
			t.Errorf("%s: uplink carries %+v, want the preset %+v", preset.Name, got, preset.Impair)
		}
		lan := l.LANLinks()
		if len(lan) == 0 {
			t.Fatalf("%s: lab exposes no LAN links", preset.Name)
		}
		for i, link := range lan {
			if link.Loss != 0 || link.Reorder != 0 || link.Duplicate != 0 ||
				link.Corrupt != 0 || link.Jitter != 0 {
				t.Errorf("%s: LAN link %d impaired (loss=%v jitter=%v reorder=%v dup=%v corrupt=%v); Config.Impair must stay on the uplink",
					preset.Name, i, link.Loss, link.Jitter, link.Reorder, link.Duplicate, link.Corrupt)
			}
		}
	}
}

// TestImpairmentScopeLinkJitterIsSeparate: Config.LinkJitter is the knob
// that DOES touch LAN links (global timing noise); it must not be conflated
// with the impairment presets' scope.
func TestImpairmentScopeLinkJitterIsSeparate(t *testing.T) {
	l, err := New(Config{Seed: 1, PopulationSize: 4, LinkJitter: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for i, link := range l.LANLinks() {
		if link.Jitter == 0 {
			t.Errorf("LAN link %d ignored Config.LinkJitter", i)
		}
	}
}
