package lab

import (
	"time"

	"safemeasure/internal/netsim"
)

// ImpairmentPreset is a named link-degradation profile applied to the lab's
// WAN uplink (the edge↔border link every probe and every reply crosses).
// Presets are the campaign planner's impairment sweep axis: the same
// technique × scenario cell is re-run under each profile, which is how the
// E11 matrix grows its impairment dimension. All impairment randomness is
// drawn from the lab's seeded simulator RNG, so impaired runs stay
// byte-reproducible for a fixed seed.
//
// Scope contract: an impairment preset applies to the WAN uplink ONLY.
// The client-AS LAN links (client↔edge, population↔edge) and the server-
// zone links stay pristine — lab.New never calls ApplyImpairment on them
// (TestImpairmentScopeLANLinksClean asserts this). Since links degrade
// both directions symmetrically (Port.Send shares the Link's knobs), an
// uplink impairment already hits probes and replies alike. Censor-behavior
// presets (see BehaviorPreset) deliberately do NOT ride on links at all:
// shaping that must follow a flow, like throttle, lives inside the censor
// tap at the border, where both directions of every flow are observed —
// a behavior applied to one link would silently have the wrong scope.
type ImpairmentPreset struct {
	Name    string
	Summary string
	Impair  netsim.Impairment
}

// ImpairmentNone is the name of the unimpaired preset.
const ImpairmentNone = "none"

// Impairments returns every preset, in stable order. "none" is first, so
// default campaigns stay identical to an impairment-unaware sweep.
func Impairments() []ImpairmentPreset {
	return []ImpairmentPreset{
		{
			Name:    ImpairmentNone,
			Summary: "pristine WAN link (control)",
		},
		{
			Name:    "lossy5",
			Summary: "5% uplink packet loss — a mediocre residential path",
			Impair:  netsim.Impairment{Loss: 0.05},
		},
		{
			Name:    "lossy20",
			Summary: "20% uplink packet loss — a badly congested or throttled path",
			Impair:  netsim.Impairment{Loss: 0.20},
		},
		{
			Name:    "reorder",
			Summary: "25% reordering with 4ms displacement plus 1ms jitter",
			Impair: netsim.Impairment{Reorder: 0.25, ReorderDelay: 4 * time.Millisecond,
				Jitter: time.Millisecond},
		},
		{
			Name:    "dup",
			Summary: "15% packet duplication — aggressive link-layer retransmit",
			Impair:  netsim.Impairment{Duplicate: 0.15},
		},
		{
			Name:    "corrupt",
			Summary: "10% single-byte corruption — failing hardware or hostile noise",
			Impair:  netsim.Impairment{Corrupt: 0.10},
		},
	}
}

// ImpairmentByName looks a preset up by name.
func ImpairmentByName(name string) (ImpairmentPreset, bool) {
	if name == "" {
		name = ImpairmentNone
	}
	for _, p := range Impairments() {
		if p.Name == name {
			return p, true
		}
	}
	return ImpairmentPreset{}, false
}

// ImpairmentNames lists every preset name in Impairments() order.
func ImpairmentNames() []string {
	all := Impairments()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
