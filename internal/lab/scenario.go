package lab

import (
	"net/netip"

	"safemeasure/internal/censor"
	"safemeasure/internal/spoof"
)

// Scenario is a named censorship preset with ground truth: a censor
// configuration, the canonical target it censors (or leaves alone), and
// whether a correct measurement must conclude "censored". Scenarios are what
// campaigns sweep — the censorship mechanisms of the paper's E11 matrix plus
// an uncensored control.
type Scenario struct {
	Name    string
	Summary string
	// NewCensor builds a fresh censor config implementing the scenario.
	NewCensor func() censor.Config
	// Canonical target, in core-free primitives (core.Target is assembled
	// by the caller; lab cannot import core).
	Domain string
	Path   string
	Port   uint16
	Addr   netip.Addr
	// Censored is the ground truth: true means a correct verdict is
	// "censored", false means "accessible".
	Censored bool
}

// Scenarios returns every preset, in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:      "keyword-rst",
			Summary:   "GFC-style keyword match on an HTTP request, RST injected both ways",
			NewCensor: DefaultCensorConfig,
			Domain:    "site01.test", Path: "/falun",
			Censored: true,
		},
		{
			Name:      "dns-poison",
			Summary:   "forged DNS answers for a blocked domain (twitter.com ground truth)",
			NewCensor: DefaultCensorConfig,
			Domain:    "twitter.com",
			Censored:  true,
		},
		{
			Name:    "blackhole",
			Summary: "null-routing of the sensitive web server's address",
			NewCensor: func() censor.Config {
				c := DefaultCensorConfig()
				c.Blackholed = []netip.Prefix{netip.PrefixFrom(SensitiveAddr, 32)}
				return c
			},
			Domain:   "banned.test",
			Censored: true,
		},
		{
			Name:    "port-block",
			Summary: "TCP port 443 blocked at the border",
			NewCensor: func() censor.Config {
				c := DefaultCensorConfig()
				c.BlockedPorts = []uint16{443}
				return c
			},
			Addr: WebAddr, Port: 443,
			Censored: true,
		},
		{
			Name:      "open",
			Summary:   "control: an innocuous site the censor ignores",
			NewCensor: DefaultCensorConfig,
			Domain:    "site02.test",
			Censored:  false,
		},
	}
}

// ScenarioByName looks a preset up by name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists every preset name in Scenarios() order.
func ScenarioNames() []string {
	all := Scenarios()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// Config returns a campaign-ready lab config for the scenario: the E11
// evaluation parameters (population of 20, /24 SAV so spoofed cover works)
// with a trimmed site catalog for cheaper per-run construction.
func (s Scenario) Config(seed int64) Config {
	return Config{
		PopulationSize: 20,
		Censor:         s.NewCensor(),
		SpoofPolicy:    spoof.PolicySlash24,
		SiteCount:      16,
		Seed:           seed,
	}
}
