package lab

import (
	"testing"
)

func TestScenarioPresets(t *testing.T) {
	all := Scenarios()
	if len(all) < 5 {
		t.Fatalf("scenarios = %d, want >= 5", len(all))
	}
	seen := map[string]bool{}
	for _, sc := range all {
		if sc.Name == "" || seen[sc.Name] {
			t.Fatalf("bad or duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Domain == "" && !sc.Addr.IsValid() {
			t.Errorf("%s: no target", sc.Name)
		}
		// Every preset must yield a buildable lab.
		l, err := New(sc.Config(1))
		if err != nil {
			t.Fatalf("%s: lab.New: %v", sc.Name, err)
		}
		if sc.Domain != "" && !l.SiteAddr(sc.Domain).IsValid() {
			t.Errorf("%s: target domain %s not hosted", sc.Name, sc.Domain)
		}
	}
	for _, name := range []string{"keyword-rst", "dns-poison", "blackhole", "port-block", "open"} {
		if _, ok := ScenarioByName(name); !ok {
			t.Errorf("missing scenario %q", name)
		}
	}
	if _, ok := ScenarioByName("nonexistent"); ok {
		t.Error("ScenarioByName invented a scenario")
	}
	if got := len(ScenarioNames()); got != len(all) {
		t.Errorf("ScenarioNames = %d names, want %d", got, len(all))
	}
}

func TestSiteCountTrimsCatalog(t *testing.T) {
	small, err := New(Config{SiteCount: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.InnocuousSites) != 5 {
		t.Fatalf("SiteCount=5 hosted %d sites", len(small.InnocuousSites))
	}
	dflt, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dflt.InnocuousSites) != 30 {
		t.Fatalf("default hosted %d sites, want 30", len(dflt.InnocuousSites))
	}
}
