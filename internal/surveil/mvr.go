package surveil

import (
	"net/netip"
	"sort"
	"time"

	"safemeasure/internal/ids"
	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/telemetry"
)

// MVRConfig parameterizes stage 1 from the paper's §2.1 numbers.
type MVRConfig struct {
	// StorageFraction is the hard cap on content bytes retained relative
	// to bytes seen (TEMPORA: 7.5 %).
	StorageFraction float64
	// DiscardClasses are dropped wholesale before storage or analysis
	// (TEMPORA's ~30 % volume reduction starts with all P2P).
	DiscardClasses []TrafficClass
	// ContentRetention and MetadataRetention bound how long stored data
	// lives (3 days content, 30 days connection metadata).
	ContentRetention  time.Duration
	MetadataRetention time.Duration
	// HomeNet identifies the monitored population; only sources inside it
	// get dossiers.
	HomeNet netip.Prefix
}

// DefaultMVRConfig returns the paper-calibrated configuration.
func DefaultMVRConfig(homeNet netip.Prefix) MVRConfig {
	return MVRConfig{
		StorageFraction:   0.075,
		DiscardClasses:    []TrafficClass{ClassP2P, ClassScan, ClassDDoS, ClassSpam},
		ContentRetention:  72 * time.Hour,
		MetadataRetention: 720 * time.Hour,
		HomeNet:           homeNet,
	}
}

// StoredContent is one retained packet (stage-1 content store).
type StoredContent struct {
	Time  int64
	Flow  packet.Flow
	Bytes int
	Class TrafficClass
}

// FlowRecord is connection metadata (stage-1 metadata store) — the
// simulator's equivalent of the campus network's 36-hour flow records.
type FlowRecord struct {
	Flow      packet.Flow
	FirstSeen int64
	LastSeen  int64
	Packets   int
	Bytes     int
	Class     TrafficClass
}

// System is the full surveillance pipeline: classifier, MVR store, alert
// engine, and analyst. It attaches to a router as a passive tap.
type System struct {
	cfg        MVRConfig
	classifier *Classifier
	engine     *ids.Engine
	analyst    *Analyst
	reasm      *packet.Reassembler

	discard map[TrafficClass]bool

	// Content is the live content store, oldest first. It is a view into
	// contentBuf maintained by pushContent/evictContent; treat it as
	// read-only outside those helpers.
	Content  []StoredContent
	Metadata map[packet.Flow]*FlowRecord

	// contentBuf backs Content: Content == contentBuf[contentOff:]. The
	// offset lets budget eviction drop the oldest record without orphaning
	// the buffer's head — pushContent reclaims the evicted front in place
	// instead of growing, so the steady-state store allocates nothing.
	contentBuf []StoredContent
	contentOff int

	// Last-flow memo for the metadata map (see ids.Engine's equivalent);
	// Expire invalidates it.
	lastFlow packet.Flow
	lastRec  *FlowRecord

	// Stats.
	PacketsSeen      int
	BytesSeen        int
	BytesRetained    int
	PacketsDiscarded int
	DiscardedByClass map[TrafficClass]int
	// BudgetRejected counts content records evicted to respect the budget.
	BudgetRejected int

	// Telemetry (optional; see SetTelemetry).
	trace                      *telemetry.Tracer
	mSeen, mDiscarded, mLogged *telemetry.Counter
	mBudgetEvicted             *telemetry.Counter
}

// SetTelemetry wires the MVR pipeline into a metrics registry and packet-path
// tracer. Either argument may be nil; the lab calls this for every run that
// has telemetry enabled.
func (s *System) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	s.trace = tr
	s.mSeen = reg.Counter("surveil_packets_seen_total")
	s.mDiscarded = reg.Counter("surveil_discarded_total")
	s.mLogged = reg.Counter("surveil_content_logged_total")
	s.mBudgetEvicted = reg.Counter("surveil_budget_evicted_total")
	s.engine.SetMetrics(reg.Counter("surveil_ids_packets_total"),
		reg.Counter("surveil_ids_alerts_total"))
}

// New builds a surveillance system with the given alert rules. Callers
// constructing many systems over one ruleset should ids.Compile once and
// use NewFromCompiled.
func New(cfg MVRConfig, rules []*ids.Rule) *System {
	return NewFromCompiled(cfg, ids.Compile(rules))
}

// NewFromCompiled builds a surveillance system over an already-compiled
// ruleset. All mutable state (IDS engine, classifier, analyst, stores,
// stats) is per-system; rules is only read, so concurrent calls sharing one
// CompiledRules are safe.
func NewFromCompiled(cfg MVRConfig, rules *ids.CompiledRules) *System {
	s := &System{
		cfg:              cfg,
		classifier:       NewClassifier(),
		engine:           rules.NewEngine(),
		analyst:          NewAnalyst(cfg.HomeNet),
		discard:          make(map[TrafficClass]bool),
		Metadata:         make(map[packet.Flow]*FlowRecord),
		DiscardedByClass: make(map[TrafficClass]int),
	}
	for _, c := range cfg.DiscardClasses {
		s.discard[c] = true
	}
	return s
}

// Classifier exposes the stage-1 classifier for threshold tuning.
func (s *System) Classifier() *Classifier { return s.classifier }

// Analyst exposes stage 2.
func (s *System) Analyst() *Analyst { return s.analyst }

// Engine exposes the alert engine.
func (s *System) Engine() *ids.Engine { return s.engine }

// Observe implements netsim.Tap. The surveillance system is passive: it
// always returns Pass.
func (s *System) Observe(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
	s.PacketsSeen++
	s.BytesSeen += len(tp.Raw)
	s.mSeen.Inc()
	pkt := tp.Pkt
	if pkt == nil {
		// Fragments are reassembled before classification — the paper
		// assumes the surveillance system is at least as capable as the
		// censor (§2.2).
		if packet.IsFragment(tp.Raw) {
			if s.reasm == nil {
				s.reasm = packet.NewReassembler()
			}
			if whole := s.reasm.Add(tp.Time, tp.Raw); whole != nil {
				if full, err := packet.Parse(whole); err == nil {
					pkt = full
				}
			}
		}
		if pkt == nil {
			return netsim.Pass
		}
	}

	class := s.classifier.Classify(tp.Time, pkt)

	// Stage 1a: wholesale discard. Discarded traffic never reaches the
	// alert engine or the analyst — this is the gap the paper's malware-
	// mimicry techniques hide in.
	if s.discard[class] {
		s.PacketsDiscarded++
		s.DiscardedByClass[class]++
		s.mDiscarded.Inc()
		if tr := s.trace; tr != nil {
			tr.Emit(tp.Time, telemetry.EvMVRDiscard,
				pkt.IP.Src.String(), pkt.IP.Dst.String(), class.String())
		}
		// The classification itself is cheap context the analyst keeps:
		// this user behaves like a bot toward this destination.
		if class == ClassScan || class == ClassDDoS || class == ClassSpam {
			s.analyst.NoteMalwareContext(pkt.IP.Src, pkt.IP.Dst)
		}
		return netsim.Pass
	}

	// Stage 1b: metadata always (cheap), content under budget.
	flow := packet.FlowOf(pkt).Canonical()
	rec := s.lastRec
	if rec == nil || s.lastFlow != flow {
		var ok bool
		rec, ok = s.Metadata[flow]
		if !ok {
			rec = &FlowRecord{Flow: flow, FirstSeen: tp.Time, Class: class}
			s.Metadata[flow] = rec
		}
		s.lastFlow, s.lastRec = flow, rec
	}
	rec.LastSeen = tp.Time
	rec.Packets++
	rec.Bytes += len(tp.Raw)

	// Content store works like a fixed-fraction ring buffer: new traffic is
	// always captured, and the oldest content is evicted once the store
	// exceeds the budget (TEMPORA's rolling 3-day buffer behaves the same
	// way: everything is written, little survives).
	s.pushContent(StoredContent{Time: tp.Time, Flow: flow, Bytes: len(tp.Raw), Class: class})
	s.BytesRetained += len(tp.Raw)
	s.mLogged.Inc()
	if tr := s.trace; tr != nil {
		tr.Emit(tp.Time, telemetry.EvMVRLog,
			pkt.IP.Src.String(), pkt.IP.Dst.String(), class.String())
	}
	for len(s.Content) > 1 && float64(s.BytesRetained) > s.cfg.StorageFraction*float64(s.BytesSeen) {
		s.BytesRetained -= s.Content[0].Bytes
		s.evictContent()
		s.BudgetRejected++
		s.mBudgetEvicted.Inc()
	}

	// Stage 1c: alerting on retained (non-discarded) traffic feeds the
	// analyst's dossiers.
	for _, alert := range s.engine.Feed(tp.Time, pkt) {
		s.analyst.Ingest(alert)
	}
	return netsim.Pass
}

// pushContent appends one record to the content store. When the backing
// buffer is full and at least a quarter of it is evicted front space, the
// live records are copied down to reclaim it — amortized O(1) per record
// and allocation-free once the store reaches its budget-bounded size.
func (s *System) pushContent(rec StoredContent) {
	if len(s.contentBuf) == cap(s.contentBuf) && s.contentOff > cap(s.contentBuf)/4 {
		n := copy(s.contentBuf, s.contentBuf[s.contentOff:])
		s.contentBuf = s.contentBuf[:n]
		s.contentOff = 0
	}
	s.contentBuf = append(s.contentBuf, rec)
	s.Content = s.contentBuf[s.contentOff:]
}

// evictContent drops the oldest record (budget eviction).
func (s *System) evictContent() {
	s.contentOff++
	s.Content = s.contentBuf[s.contentOff:]
}

// Expire drops content and metadata past their retention windows.
func (s *System) Expire(now int64) (contentDropped, metadataDropped int) {
	keep := s.contentBuf[:0]
	for _, c := range s.Content {
		if now-c.Time <= int64(s.cfg.ContentRetention) {
			keep = append(keep, c)
		} else {
			s.BytesRetained -= c.Bytes
			contentDropped++
		}
	}
	s.contentBuf = keep
	s.contentOff = 0
	s.Content = keep
	for f, rec := range s.Metadata {
		if now-rec.LastSeen > int64(s.cfg.MetadataRetention) {
			delete(s.Metadata, f)
			metadataDropped++
		}
	}
	s.lastRec = nil // the memoized record may have been dropped
	return contentDropped, metadataDropped
}

// RetentionFraction is retained content bytes / bytes seen.
func (s *System) RetentionFraction() float64 {
	if s.BytesSeen == 0 {
		return 0
	}
	return float64(s.BytesRetained) / float64(s.BytesSeen)
}

// DiscardFraction is packets discarded wholesale / packets seen.
func (s *System) DiscardFraction() float64 {
	if s.PacketsSeen == 0 {
		return 0
	}
	return float64(s.PacketsDiscarded) / float64(s.PacketsSeen)
}

// UsersContacting answers the retrospective analyst query the 30-day
// metadata store exists for (XKeyscore-style): which home-network users
// had flows touching dst in [since, until]? Sorted for determinism.
func (s *System) UsersContacting(dst netip.Addr, since, until int64) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, rec := range s.Metadata {
		if rec.LastSeen < since || rec.FirstSeen > until {
			continue
		}
		if rec.Flow.Src == dst && s.cfg.HomeNet.Contains(rec.Flow.Dst) {
			seen[rec.Flow.Dst] = true
		}
		if rec.Flow.Dst == dst && s.cfg.HomeNet.Contains(rec.Flow.Src) {
			seen[rec.Flow.Src] = true
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// FlowHistory returns a user's flow records, oldest first — the dossier's
// raw-metadata view.
func (s *System) FlowHistory(user netip.Addr) []*FlowRecord {
	var out []*FlowRecord
	for _, rec := range s.Metadata {
		if rec.Flow.Src == user || rec.Flow.Dst == user {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstSeen < out[j].FirstSeen })
	return out
}

// SawTrafficFrom reports whether any retained content or metadata involves
// addr — "did the measurement traffic survive the MVR?".
func (s *System) SawTrafficFrom(addr netip.Addr) bool {
	for _, rec := range s.Metadata {
		if rec.Flow.Src == addr || rec.Flow.Dst == addr {
			return true
		}
	}
	return false
}
