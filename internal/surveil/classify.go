// Package surveil implements the surveillance system of the paper's model
// (§2.1): a user-focused, two-stage pipeline.
//
// Stage 1 — Massive Volume Reduction (MVR) — classifies traffic and discards
// whole classes (P2P, scanning, DDoS floods, spam), exactly the behaviour
// the paper's stealth techniques exploit: traffic that looks like malware
// has "little intelligence value" and is thrown away before any analyst sees
// it. What remains is stored under a hard budget (the NSA's 7.5 % figure)
// with bounded retention (3 days content, 30 days metadata).
//
// Stage 2 — the analyst — builds per-user dossiers from alerts raised on
// retained traffic, weights them by how rare the alert is across the
// population (an alert 1.57 % of all users trigger is useless for targeting,
// per the Syrian log analysis), and flags users whose suspicion crosses a
// threshold, subject to an investigation budget.
package surveil

import (
	"net/netip"
	"time"

	"safemeasure/internal/packet"
)

// TrafficClass is the MVR's coarse classification of a packet.
type TrafficClass int

// Traffic classes.
const (
	ClassOther TrafficClass = iota
	ClassWeb
	ClassDNS
	ClassMail
	ClassP2P
	ClassScan
	ClassDDoS
	ClassSpam
	ClassICMP
)

var classNames = [...]string{"other", "web", "dns", "mail", "p2p", "scan", "ddos", "spam", "icmp"}

// String returns the lowercase class name.
func (c TrafficClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Classifier assigns traffic classes using ports plus per-source behavioral
// state (SYN fan-out for scans, request rate for DDoS, spam content
// heuristics for SMTP).
type Classifier struct {
	// ScanFanout: distinct (dst,port) SYN targets within ScanWindow that
	// make a source a scanner.
	ScanFanout int
	ScanWindow time.Duration
	// DDoSRate: requests from one source to one destination within
	// DDoSWindow that make the flow a flood.
	DDoSRate   int
	DDoSWindow time.Duration
	// SpamMarkers are byte patterns whose presence in SMTP payloads marks
	// the message as spam (the MVR's cheap content heuristic).
	SpamMarkers []string

	scanTargets map[netip.Addr]*fanoutWindow
	ddosCounts  map[srcDst]*rateWindow
}

type srcDst struct {
	src, dst netip.Addr
}

// scanTarget is what a scanner enumerates: destination host and port.
// (Source ports vary per probe and must not count as distinct targets —
// otherwise any busy client looks like a scanner.)
type scanTarget struct {
	dst  netip.Addr
	port uint16
}

type fanoutWindow struct {
	start   int64
	targets map[scanTarget]bool
}

type rateWindow struct {
	start int64
	count int
}

// NewClassifier creates a classifier with the defaults used in the lab.
func NewClassifier() *Classifier {
	return &Classifier{
		ScanFanout: 15,
		ScanWindow: 10 * time.Second,
		DDoSRate:   20,
		DDoSWindow: 10 * time.Second,
		SpamMarkers: []string{
			"viagra", "VIAGRA", "winner", "WINNER", "lottery",
			"click here", "CLICK HERE", "100% free", "act now",
		},
		scanTargets: make(map[netip.Addr]*fanoutWindow),
		ddosCounts:  make(map[srcDst]*rateWindow),
	}
}

// Classify assigns the packet's class and updates behavioral state.
func (c *Classifier) Classify(now int64, pkt *packet.Packet) TrafficClass {
	switch {
	case pkt.ICMP != nil:
		return ClassICMP
	case pkt.UDP != nil:
		if pkt.UDP.DstPort == 53 || pkt.UDP.SrcPort == 53 {
			return ClassDNS
		}
		if isP2PPort(pkt.UDP.DstPort) || isP2PPort(pkt.UDP.SrcPort) {
			return ClassP2P
		}
		return ClassOther
	case pkt.TCP == nil:
		return ClassOther
	}

	t := pkt.TCP

	// Scan detection: bare SYNs fanning out to many distinct targets.
	if t.Flags == packet.TCPSyn {
		fw := c.scanTargets[pkt.IP.Src]
		if fw == nil || now-fw.start > int64(c.ScanWindow) {
			fw = &fanoutWindow{start: now, targets: make(map[scanTarget]bool)}
			c.scanTargets[pkt.IP.Src] = fw
		}
		fw.targets[scanTarget{pkt.IP.Dst, t.DstPort}] = true
		if len(fw.targets) >= c.ScanFanout {
			return ClassScan
		}
	} else if fw, ok := c.scanTargets[pkt.IP.Src]; ok && len(fw.targets) >= c.ScanFanout &&
		now-fw.start <= int64(c.ScanWindow) {
		// Follow-up packets from an identified scanner (RST probes etc.)
		// stay in the scan class.
		if t.Flags&packet.TCPRst != 0 || t.Flags == packet.TCPSyn {
			return ClassScan
		}
	}

	// DDoS detection: sustained request rate from one source to one
	// destination.
	if t.DstPort == 80 || t.DstPort == 443 {
		key := srcDst{pkt.IP.Src, pkt.IP.Dst}
		rw := c.ddosCounts[key]
		if rw == nil || now-rw.start > int64(c.DDoSWindow) {
			rw = &rateWindow{start: now}
			c.ddosCounts[key] = rw
		}
		if t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck == 0 {
			rw.count++
		}
		if rw.count >= c.DDoSRate {
			return ClassDDoS
		}
	}

	// SMTP: mail, or spam when the cheap content heuristic fires.
	if t.DstPort == 25 || t.SrcPort == 25 {
		if c.looksSpammy(t.Payload) {
			return ClassSpam
		}
		return ClassMail
	}

	if isP2PPort(t.DstPort) || isP2PPort(t.SrcPort) {
		return ClassP2P
	}
	if t.DstPort == 80 || t.SrcPort == 80 || t.DstPort == 443 || t.SrcPort == 443 {
		return ClassWeb
	}
	return ClassOther
}

func (c *Classifier) looksSpammy(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	s := string(payload)
	hits := 0
	for _, m := range c.SpamMarkers {
		if containsFold(s, m) {
			hits++
			if hits >= 2 {
				return true
			}
		}
	}
	return false
}

// containsFold is a case-insensitive substring check without allocation for
// the common miss case.
func containsFold(s, sub string) bool {
	n := len(sub)
	if n == 0 {
		return true
	}
	for i := 0; i+n <= len(s); i++ {
		if equalFold(s[i:i+n], sub) {
			return true
		}
	}
	return false
}

func equalFold(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'A' && ca <= 'Z' {
			ca += 32
		}
		if cb >= 'A' && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// isP2PPort matches the BitTorrent range plus common overlay ports: the MVR
// throws all peer-to-peer traffic away (paper §2.1).
func isP2PPort(p uint16) bool {
	return (p >= 6881 && p <= 6999) || p == 4662 || p == 4672 || p == 51413
}
