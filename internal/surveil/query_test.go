package surveil

import (
	"strings"
	"testing"

	"safemeasure/internal/packet"
)

func TestUsersContactingRetrospective(t *testing.T) {
	s := newSystem(t, "")
	// user1 and user2 contact the outside host at different times.
	s.Observe(tcpTap(t, 100, user1, 4000, outside, 80, packet.TCPSyn, ""), nil)
	s.Observe(tcpTap(t, 200, user2, 4001, outside, 80, packet.TCPSyn, ""), nil)
	// A reply flow (outside -> user1) must attribute to user1 as well.
	s.Observe(tcpTap(t, 300, outside, 80, user1, 4000, packet.TCPSyn|packet.TCPAck, ""), nil)

	users := s.UsersContacting(outside, 0, 1000)
	if len(users) != 2 || users[0] != user1 || users[1] != user2 {
		t.Fatalf("users = %v", users)
	}
	// Time-bounded query excludes user2.
	users = s.UsersContacting(outside, 0, 150)
	if len(users) != 1 || users[0] != user1 {
		t.Fatalf("bounded users = %v", users)
	}
	// Unknown destination: nobody.
	if got := s.UsersContacting(user2, 500, 1000); len(got) != 0 {
		t.Fatalf("phantom users = %v", got)
	}
}

func TestFlowHistoryOrdered(t *testing.T) {
	s := newSystem(t, "")
	s.Observe(tcpTap(t, 500, user1, 4002, outside, 443, packet.TCPSyn, ""), nil)
	s.Observe(tcpTap(t, 100, user1, 4000, outside, 80, packet.TCPSyn, ""), nil)
	hist := s.FlowHistory(user1)
	if len(hist) != 2 {
		t.Fatalf("history = %d records", len(hist))
	}
	if hist[0].FirstSeen != 100 || hist[1].FirstSeen != 500 {
		t.Fatalf("not ordered: %v, %v", hist[0].FirstSeen, hist[1].FirstSeen)
	}
	if s.FlowHistory(user2) != nil {
		t.Fatal("phantom history")
	}
}

func TestMetadataExpiryLimitsRetrospection(t *testing.T) {
	// The paper's point about bounded retention: after 30 days the
	// retrospective query comes back empty.
	s := newSystem(t, "")
	s.Observe(tcpTap(t, 0, user1, 4000, outside, 80, packet.TCPSyn, ""), nil)
	if len(s.UsersContacting(outside, 0, 1)) != 1 {
		t.Fatal("query before expiry failed")
	}
	s.Expire(int64(s.cfg.MetadataRetention) + 10)
	if len(s.UsersContacting(outside, 0, 1)) != 0 {
		t.Fatal("metadata survived past retention")
	}
}

func TestAnalystReport(t *testing.T) {
	s := newSystem(t, `alert tcp $HOME_NET any -> any 80 (msg:"overt probe"; content:"banned.test"; sid:5001; classtype:censorship-measurement;)`)
	s.Analyst().Population = 1000
	s.Observe(tcpTap(t, 0, user1, 4000, outside, 80, packet.TCPAck, "GET / HTTP/1.1\r\nHost: banned.test\r\n\r\n"), nil)
	rep := s.Analyst().Report(user1)
	for _, want := range []string{"dossier: 10.1.0.10", "flagged: true", "sid 5001", "overt probe"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	empty := s.Analyst().Report(user2)
	if !strings.Contains(empty, "no alerts") {
		t.Fatalf("empty report:\n%s", empty)
	}
}
