package surveil

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"safemeasure/internal/ids"
)

// Alert-class weights: how much one alert of a given classtype contributes
// to a user's suspicion score. Malware-class alerts contribute almost
// nothing — "being infected with malware is not cause for suspicion per se"
// (paper §3.1) — while measurement-class alerts are what the analyst hunts.
var classWeights = map[string]float64{
	"censorship-measurement": 1.0,
	"policy-violation":       0.5,
	"attempted-recon":        0.05, // scans: background noise
	"malware":                0.05,
	"spam":                   0.05,
	"ddos":                   0.05,
	"":                       0.2, // unclassified
}

// Dossier is the analyst's per-user state.
type Dossier struct {
	User   netip.Addr
	Alerts []ids.Alert
}

// malwareKey marks (user, destination) pairs whose traffic the MVR
// classified as malware behaviour (scan/flood/spam).
type malwareKey struct {
	user, dst netip.Addr
}

// Analyst is stage 2: dossiers, prevalence weighting, and a flagging
// decision with an investigation budget.
type Analyst struct {
	homeNet    netip.Prefix
	dossiers   map[netip.Addr]*Dossier
	sidUsers   map[int]map[netip.Addr]bool // which users triggered each SID
	malwareCtx map[malwareKey]bool

	// SuspicionThreshold is the minimum weighted score to flag a user.
	SuspicionThreshold float64
	// MaxImplicatedFraction: if more than this fraction of the observed
	// population triggers a SID, the SID is useless for targeting (the
	// Syrian logs: 1.57 % of users touched censored sites — far too many
	// to pursue, §2.2).
	MaxImplicatedFraction float64
	// MinImplicated is an absolute floor on the actionable-user limit: an
	// analyst can always chase a handful of suspects even in a small
	// population.
	MinImplicated int
	// Population is the analyst's estimate of monitored users; when zero,
	// the number of dossiers is used.
	Population int
}

// NewAnalyst creates stage 2 for the given home network.
func NewAnalyst(homeNet netip.Prefix) *Analyst {
	return &Analyst{
		homeNet:               homeNet,
		dossiers:              make(map[netip.Addr]*Dossier),
		sidUsers:              make(map[int]map[netip.Addr]bool),
		malwareCtx:            make(map[malwareKey]bool),
		SuspicionThreshold:    0.9,
		MaxImplicatedFraction: 0.01,
		MinImplicated:         3,
	}
}

// Ingest records an alert against the responsible in-population user.
// Traffic sourced outside the home network is attributed to the destination
// when that is inside (replies), otherwise ignored.
func (a *Analyst) Ingest(alert ids.Alert) {
	user := alert.Flow.Src
	if !a.homeNet.Contains(user) {
		if a.homeNet.Contains(alert.Flow.Dst) {
			user = alert.Flow.Dst
		} else {
			return
		}
	}
	d, ok := a.dossiers[user]
	if !ok {
		d = &Dossier{User: user}
		a.dossiers[user] = d
	}
	d.Alerts = append(d.Alerts, alert)
	set := a.sidUsers[alert.Rule.SID]
	if set == nil {
		set = make(map[netip.Addr]bool)
		a.sidUsers[alert.Rule.SID] = set
	}
	set[user] = true
}

// NoteMalwareContext records that the MVR classified user's traffic toward
// dst as malware behaviour (scanning, flooding, spamming). Subsequent
// measurement-class alerts for the same (user, dst) are explained by the
// apparent infection and barely count — the paper's §3.1 observation that
// being infected with malware is not cause for suspicion per se.
func (a *Analyst) NoteMalwareContext(user, dst netip.Addr) {
	if a.homeNet.Contains(user) {
		a.malwareCtx[malwareKey{user, dst}] = true
	}
}

// population returns the analyst's denominator for prevalence.
func (a *Analyst) population() int {
	if a.Population > 0 {
		return a.Population
	}
	if n := len(a.dossiers); n > 0 {
		return n
	}
	return 1
}

// prevalence returns the fraction of the population that triggered sid.
func (a *Analyst) prevalence(sid int) float64 {
	return float64(len(a.sidUsers[sid])) / float64(a.population())
}

// actionable reports whether a SID implicates few enough users for the
// analyst to act on it.
func (a *Analyst) actionable(sid int) bool {
	limit := int(a.MaxImplicatedFraction * float64(a.population()))
	if limit < a.MinImplicated {
		limit = a.MinImplicated
	}
	return len(a.sidUsers[sid]) <= limit
}

// Score computes a user's suspicion: class-weighted alerts, each discounted
// by prevalence (a signature most of the population trips identifies no
// one). Repeats of the same SID add diminishing value.
func (a *Analyst) Score(user netip.Addr) float64 {
	d, ok := a.dossiers[user]
	if !ok {
		return 0
	}
	bySID := make(map[int]int)
	var score float64
	for _, alert := range d.Alerts {
		sid := alert.Rule.SID
		bySID[sid]++
		w := classWeights[alert.Rule.Classtype]
		if w == 0 {
			w = classWeights[""]
		}
		if a.malwareCtx[malwareKey{user, alert.Flow.Dst}] {
			// The user looks like a bot toward this destination; the
			// alert is attributed to the infection, not the person.
			w = classWeights["malware"]
		}
		if !a.actionable(sid) {
			// Too many users implicated: the analyst cannot act on this
			// signature at all.
			continue
		}
		// Diminishing returns per repeat: 1, 1/2, 1/3, ...
		score += w / float64(bySID[sid])
	}
	return score
}

// Flagged returns the users whose suspicion crosses the threshold, sorted
// by descending score — the surveillance system's output, i.e. who gets a
// knock on the door.
func (a *Analyst) Flagged() []netip.Addr {
	type scored struct {
		user  netip.Addr
		score float64
	}
	var out []scored
	for user := range a.dossiers {
		if s := a.Score(user); s >= a.SuspicionThreshold {
			out = append(out, scored{user, s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].user.Less(out[j].user)
	})
	users := make([]netip.Addr, len(out))
	for i, s := range out {
		users[i] = s.user
	}
	return users
}

// IsFlagged reports whether a specific user would be flagged.
func (a *Analyst) IsFlagged(user netip.Addr) bool {
	return a.Score(user) >= a.SuspicionThreshold
}

// Dossier returns a user's dossier, or nil.
func (a *Analyst) Dossier(user netip.Addr) *Dossier {
	return a.dossiers[user]
}

// Users returns how many distinct users have dossiers.
func (a *Analyst) Users() int { return len(a.dossiers) }

// AlertCountsByUser returns each dossier's alert count — the distribution
// whose entropy quantifies attribution confusion (§4).
func (a *Analyst) AlertCountsByUser() map[netip.Addr]int {
	out := make(map[netip.Addr]int, len(a.dossiers))
	for user, d := range a.dossiers {
		out[user] = len(d.Alerts)
	}
	return out
}

// AlertCount returns the total alerts ingested (operator load, §6).
func (a *Analyst) AlertCount() int {
	n := 0
	for _, d := range a.dossiers {
		n += len(d.Alerts)
	}
	return n
}

// UsersTriggering returns how many users triggered the given SID.
func (a *Analyst) UsersTriggering(sid int) int { return len(a.sidUsers[sid]) }

// Report renders a human-readable intelligence report for one user: the
// analyst's working document (score, flag decision, alert breakdown with
// the prevalence and malware-context discounts made explicit).
func (a *Analyst) Report(user netip.Addr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dossier: %v\n", user)
	d := a.dossiers[user]
	if d == nil {
		b.WriteString("  no alerts on record\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  suspicion score: %.2f (threshold %.2f)  flagged: %v\n",
		a.Score(user), a.SuspicionThreshold, a.IsFlagged(user))
	bySID := make(map[int]int)
	for _, alert := range d.Alerts {
		bySID[alert.Rule.SID]++
	}
	sids := make([]int, 0, len(bySID))
	for sid := range bySID {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	for _, sid := range sids {
		var msg, classtype string
		var sample ids.Alert
		for _, alert := range d.Alerts {
			if alert.Rule.SID == sid {
				msg, classtype, sample = alert.Rule.Msg, alert.Rule.Classtype, alert
				break
			}
		}
		note := ""
		if !a.actionable(sid) {
			note = " [NOT ACTIONABLE: too many users implicated]"
		} else if a.malwareCtx[malwareKey{user, sample.Flow.Dst}] {
			note = " [discounted: user behaves like a bot toward this destination]"
		}
		fmt.Fprintf(&b, "  sid %d (%s, %s): %d alert(s), %d user(s) implicated%s\n",
			sid, msg, classtype, bySID[sid], a.UsersTriggering(sid), note)
	}
	return b.String()
}
