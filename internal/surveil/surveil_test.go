package surveil

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/ids"
	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

var (
	homeNet = netip.MustParsePrefix("10.1.0.0/24")
	user1   = netip.MustParseAddr("10.1.0.10")
	user2   = netip.MustParseAddr("10.1.0.11")
	outside = netip.MustParseAddr("203.0.113.80")
)

func tcpTap(t testing.TB, now int64, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, flags uint8, payload string) *netsim.TapPacket {
	t.Helper()
	raw, err := packet.BuildTCP(src, dst, 64, &packet.TCP{SrcPort: sp, DstPort: dp, Flags: flags, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := packet.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return &netsim.TapPacket{Time: now, Raw: raw, Pkt: pkt}
}

func udpTap(t testing.TB, now int64, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload string) *netsim.TapPacket {
	t.Helper()
	raw, err := packet.BuildUDP(src, dst, 64, &packet.UDP{SrcPort: sp, DstPort: dp, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := packet.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return &netsim.TapPacket{Time: now, Raw: raw, Pkt: pkt}
}

// --- classifier ---

func TestClassifyPorts(t *testing.T) {
	c := NewClassifier()
	cases := []struct {
		tp   *netsim.TapPacket
		want TrafficClass
	}{
		{tcpTap(t, 0, user1, 4000, outside, 80, packet.TCPAck, "GET /"), ClassWeb},
		{tcpTap(t, 0, user1, 4000, outside, 443, packet.TCPAck, ""), ClassWeb},
		{udpTap(t, 0, user1, 5000, outside, 53, "q"), ClassDNS},
		{tcpTap(t, 0, user1, 4000, outside, 25, packet.TCPAck, "EHLO x"), ClassMail},
		{tcpTap(t, 0, user1, 4000, outside, 6881, packet.TCPAck, ""), ClassP2P},
		{udpTap(t, 0, user1, 51413, outside, 51413, "dht"), ClassP2P},
		{tcpTap(t, 0, user1, 4000, outside, 9999, packet.TCPAck, ""), ClassOther},
	}
	for i, tc := range cases {
		if got := c.Classify(tc.tp.Time, tc.tp.Pkt); got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestClassifyScanFanout(t *testing.T) {
	c := NewClassifier()
	var last TrafficClass
	for port := 1; port <= 20; port++ {
		tp := tcpTap(t, int64(port)*1e6, user1, 40000, outside, uint16(port), packet.TCPSyn, "")
		last = c.Classify(tp.Time, tp.Pkt)
	}
	if last != ClassScan {
		t.Fatalf("20-port SYN fanout classified as %v", last)
	}
	// A single SYN from a different host stays non-scan.
	tp := tcpTap(t, 1e6, user2, 40000, outside, 80, packet.TCPSyn, "")
	if got := c.Classify(tp.Time, tp.Pkt); got == ClassScan {
		t.Fatalf("single SYN classified as scan")
	}
}

func TestClassifyScanWindowExpires(t *testing.T) {
	c := NewClassifier()
	for port := 1; port <= 20; port++ {
		tp := tcpTap(t, int64(port), user1, 40000, outside, uint16(port), packet.TCPSyn, "")
		c.Classify(tp.Time, tp.Pkt)
	}
	// Far in the future, one SYN is not a scan anymore.
	tp := tcpTap(t, int64(time.Minute), user1, 40000, outside, 80, packet.TCPSyn, "")
	if got := c.Classify(tp.Time, tp.Pkt); got == ClassScan {
		t.Fatal("scan state leaked across window")
	}
}

func TestClassifyDDoSRate(t *testing.T) {
	c := NewClassifier()
	var last TrafficClass
	for i := 0; i < 25; i++ {
		tp := tcpTap(t, int64(i)*1e6, user1, uint16(30000+i), outside, 80, packet.TCPSyn, "")
		last = c.Classify(tp.Time, tp.Pkt)
	}
	if last != ClassDDoS && last != ClassScan {
		t.Fatalf("flood classified as %v", last)
	}
}

func TestClassifySpamContent(t *testing.T) {
	c := NewClassifier()
	spam := tcpTap(t, 0, user1, 4000, outside, 25, packet.TCPAck,
		"Subject: WINNER! you are a lottery winner, CLICK HERE now")
	if got := c.Classify(0, spam.Pkt); got != ClassSpam {
		t.Fatalf("spam classified as %v", got)
	}
	ham := tcpTap(t, 0, user1, 4000, outside, 25, packet.TCPAck,
		"Subject: meeting notes\r\nSee you tomorrow")
	if got := c.Classify(0, ham.Pkt); got != ClassMail {
		t.Fatalf("ham classified as %v", got)
	}
}

// --- MVR ---

func newSystem(t testing.TB, ruleText string) *System {
	t.Helper()
	var rules []*ids.Rule
	if ruleText != "" {
		var err error
		rules, err = ids.ParseRules(ruleText, map[string]netip.Prefix{"HOME_NET": homeNet})
		if err != nil {
			t.Fatal(err)
		}
	}
	return New(DefaultMVRConfig(homeNet), rules)
}

func TestMVRDiscardsScanTraffic(t *testing.T) {
	s := newSystem(t, "")
	for port := 1; port <= 40; port++ {
		tp := tcpTap(t, int64(port)*1e6, user1, 40000, outside, uint16(port), packet.TCPSyn, "")
		s.Observe(tp, nil)
	}
	if s.PacketsDiscarded == 0 {
		t.Fatal("scan traffic never discarded")
	}
	if s.DiscardedByClass[ClassScan] == 0 {
		t.Fatalf("discards: %v", s.DiscardedByClass)
	}
}

func TestMVRStorageBudget(t *testing.T) {
	s := newSystem(t, "")
	payload := strings.Repeat("x", 1000)
	for i := 0; i < 200; i++ {
		tp := tcpTap(t, int64(i)*1e6, user1, uint16(4000), outside, 80, packet.TCPAck, payload)
		s.Observe(tp, nil)
	}
	frac := s.RetentionFraction()
	if frac > 0.081 { // budget plus at most one in-flight packet

		t.Fatalf("retention fraction %.4f exceeds budget", frac)
	}
	if s.BytesRetained == 0 {
		t.Fatal("nothing retained at all")
	}
	if s.BudgetRejected == 0 {
		t.Fatal("budget never rejected anything")
	}
}

func TestMVRMetadataAlwaysStored(t *testing.T) {
	s := newSystem(t, "")
	for i := 0; i < 50; i++ {
		tp := tcpTap(t, int64(i), user1, 4000, outside, 80, packet.TCPAck, strings.Repeat("y", 1400))
		s.Observe(tp, nil)
	}
	if len(s.Metadata) != 1 {
		t.Fatalf("flow records = %d", len(s.Metadata))
	}
	for _, rec := range s.Metadata {
		if rec.Packets != 50 {
			t.Fatalf("record packets = %d", rec.Packets)
		}
	}
	if !s.SawTrafficFrom(user1) {
		t.Fatal("metadata lookup failed")
	}
	if s.SawTrafficFrom(user2) {
		t.Fatal("phantom metadata")
	}
}

func TestMVRRetentionExpiry(t *testing.T) {
	s := newSystem(t, "")
	tp := tcpTap(t, 0, user1, 4000, outside, 80, packet.TCPAck, "retain me")
	s.Observe(tp, nil)
	if len(s.Content) == 0 {
		t.Fatal("content not stored")
	}
	// After 4 days content expires, metadata (30d) survives.
	cd, md := s.Expire(int64(96 * time.Hour))
	if cd == 0 || len(s.Content) != 0 {
		t.Fatalf("content not expired: dropped=%d left=%d", cd, len(s.Content))
	}
	if md != 0 || len(s.Metadata) != 1 {
		t.Fatalf("metadata wrongly expired: dropped=%d", md)
	}
	// After 31 days metadata goes too.
	_, md = s.Expire(int64(31 * 24 * time.Hour))
	if md != 1 || len(s.Metadata) != 0 {
		t.Fatalf("metadata not expired: dropped=%d left=%d", md, len(s.Metadata))
	}
}

func TestMVRAlertsFeedAnalyst(t *testing.T) {
	s := newSystem(t, `alert tcp $HOME_NET any -> any 80 (msg:"overt probe"; content:"banned.test"; sid:5001; classtype:censorship-measurement;)`)
	s.Analyst().Population = 1000
	tp := tcpTap(t, 0, user1, 4000, outside, 80, packet.TCPAck, "GET / HTTP/1.1\r\nHost: banned.test\r\n\r\n")
	s.Observe(tp, nil)
	if s.Analyst().AlertCount() != 1 {
		t.Fatalf("alerts = %d", s.Analyst().AlertCount())
	}
	if !s.Analyst().IsFlagged(user1) {
		t.Fatal("overt prober not flagged")
	}
}

func TestMVRDiscardedTrafficNeverAlerts(t *testing.T) {
	// Even with a matching signature, discarded-class traffic is invisible
	// to the analyst — the core of the paper's evasion argument.
	s := newSystem(t, `alert tcp $HOME_NET any -> any any (msg:"syn to anything"; flags:S; sid:5002; classtype:censorship-measurement;)`)
	for port := 1; port <= 100; port++ {
		tp := tcpTap(t, int64(port)*1e6, user1, 40000, outside, uint16(port), packet.TCPSyn, "")
		s.Observe(tp, nil)
	}
	// The first ScanFanout-1 SYNs pass through (not yet classified as a
	// scan) and may alert; after classification kicks in, everything is
	// discarded. The analyst sees far fewer alerts than packets.
	if s.Analyst().AlertCount() >= 50 {
		t.Fatalf("analyst saw %d alerts; discard not effective", s.Analyst().AlertCount())
	}
}

// --- analyst ---

func makeAlert(t *testing.T, sid int, classtype string, src netip.Addr) ids.Alert {
	t.Helper()
	line := fmt.Sprintf(`alert tcp any any -> any any (msg:"m%d"; sid:%d; classtype:%s;)`, sid, sid, classtype)
	r, err := ids.ParseRule(line, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ids.Alert{Rule: r, Flow: packet.Flow{Proto: packet.ProtoTCP, Src: src, Dst: outside}}
}

func TestAnalystFlagsRareMeasurementAlert(t *testing.T) {
	a := NewAnalyst(homeNet)
	a.Population = 1000
	a.Ingest(makeAlert(t, 6001, "censorship-measurement", user1))
	if !a.IsFlagged(user1) {
		t.Fatalf("score = %v", a.Score(user1))
	}
}

func TestAnalystPrevalenceNullifiesCommonAlerts(t *testing.T) {
	// If >1% of the population triggers the same SID, it cannot be used for
	// targeting (Syria: 1.57% touched censored content).
	a := NewAnalyst(homeNet)
	a.Population = 100
	for i := 0; i < 5; i++ {
		u := netip.AddrFrom4([4]byte{10, 1, 0, byte(10 + i)})
		a.Ingest(makeAlert(t, 6002, "censorship-measurement", u))
	}
	if a.IsFlagged(user1) {
		t.Fatal("user flagged on an alert 5% of the population triggers")
	}
	if got := a.UsersTriggering(6002); got != 5 {
		t.Fatalf("users triggering = %d", got)
	}
}

func TestAnalystMalwareAlertsBarelyCount(t *testing.T) {
	a := NewAnalyst(homeNet)
	a.Population = 1000
	for i := 0; i < 10; i++ {
		a.Ingest(makeAlert(t, 6003, "malware", user1))
	}
	if a.IsFlagged(user1) {
		t.Fatalf("malware alerts flagged user: score=%v", a.Score(user1))
	}
}

func TestAnalystDiminishingRepeats(t *testing.T) {
	a := NewAnalyst(homeNet)
	a.Population = 1000
	a.Ingest(makeAlert(t, 6004, "censorship-measurement", user1))
	one := a.Score(user1)
	a.Ingest(makeAlert(t, 6004, "censorship-measurement", user1))
	two := a.Score(user1)
	if two <= one || two > 2*one {
		t.Fatalf("repeat scoring: %v then %v", one, two)
	}
}

func TestAnalystAttributionOutsideHomeNet(t *testing.T) {
	a := NewAnalyst(homeNet)
	a.Population = 10
	// Alert on a reply packet: src outside, dst inside — attribute to dst.
	r, _ := ids.ParseRule(`alert tcp any any -> any any (msg:"reply"; sid:6005; classtype:censorship-measurement;)`, nil)
	a.Ingest(ids.Alert{Rule: r, Flow: packet.Flow{Proto: packet.ProtoTCP, Src: outside, Dst: user2}})
	if a.Dossier(user2) == nil {
		t.Fatal("reply not attributed to in-population user")
	}
	// Fully external flow: ignored.
	a.Ingest(ids.Alert{Rule: r, Flow: packet.Flow{Proto: packet.ProtoTCP, Src: outside, Dst: outside}})
	if len(a.dossiers) != 1 {
		t.Fatalf("dossiers = %d", len(a.dossiers))
	}
}

func TestAnalystFlaggedSorted(t *testing.T) {
	a := NewAnalyst(homeNet)
	a.Population = 1000
	a.Ingest(makeAlert(t, 6006, "censorship-measurement", user1))
	a.Ingest(makeAlert(t, 6007, "censorship-measurement", user2))
	a.Ingest(makeAlert(t, 6008, "censorship-measurement", user2))
	flagged := a.Flagged()
	if len(flagged) != 2 || flagged[0] != user2 {
		t.Fatalf("flagged = %v", flagged)
	}
}

func TestClassString(t *testing.T) {
	if ClassScan.String() != "scan" || ClassSpam.String() != "spam" {
		t.Fatal("class names")
	}
}
