package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/campaign"
)

// invariantPlan is the matrix every interrupt scenario replays: one
// censoring scenario, its three applicable techniques, two trials — small
// enough to interrupt dozens of times, rich enough that the aggregate has
// real per-cell content to diverge on.
func invariantPlan(t *testing.T) *campaign.Plan {
	t.Helper()
	p, err := campaign.NewPlan(campaign.PlanConfig{
		Scenarios: []string{"dns-poison"}, Trials: 2, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func keyLess(a, b campaign.DoneKey) bool {
	if a.Scenario != b.Scenario {
		return a.Scenario < b.Scenario
	}
	if a.Impairment != b.Impairment {
		return a.Impairment < b.Impairment
	}
	if a.Behavior != b.Behavior {
		return a.Behavior < b.Behavior
	}
	if a.Technique != b.Technique {
		return a.Technique < b.Technique
	}
	return a.Trial < b.Trial
}

// canonicalize reduces a record set to its scheduling-independent form:
// error-free records only (error records are resume fodder, not results),
// no duplicate coordinates allowed, sorted by coordinate, rendered as JSONL
// plus the aggregate tables built from exactly that order.
func canonicalize(t *testing.T, recs []campaign.RunRecord) (jsonl, agg string) {
	t.Helper()
	var ok []campaign.RunRecord
	seen := map[campaign.DoneKey]int{}
	for _, r := range recs {
		if r.Error != "" {
			continue
		}
		seen[r.Key()]++
		ok = append(ok, r)
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate run coordinate %+v: %d error-free records", k, n)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return keyLess(ok[i].Key(), ok[j].Key()) })
	lines := make([]string, len(ok))
	for i, r := range ok {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(raw)
	}
	return strings.Join(lines, "\n"), campaign.Aggregate(ok).Render()
}

// resumeAndCheck finishes an interrupted campaign the way cmd/campaign
// -resume does — tolerant read, torn-tail truncation, Remaining plan,
// append — then asserts the three invariants: nothing lost, nothing
// duplicated, and the final records and aggregate byte-identical to the
// uninterrupted baseline.
func resumeAndCheck(t *testing.T, plan *campaign.Plan, workers int, buf *bytes.Buffer,
	wantJSONL, wantAgg string) {
	t.Helper()
	recs, truncateAt, err := campaign.ReadJSONLResume(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("tolerant resume read: %v", err)
	}
	if truncateAt >= 0 {
		buf.Truncate(int(truncateAt))
	}
	rest := plan.Remaining(campaign.DoneSet(recs))
	if len(rest.Specs) > 0 {
		sink := campaign.NewJSONLSink(buf)
		if _, err := campaign.Run(rest, campaign.Options{Workers: workers, OnRecord: sink.Write}); err != nil {
			t.Fatalf("resume run: %v", err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatalf("resume sink: %v", err)
		}
	}
	final, err := campaign.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("final file unreadable: %v", err)
	}
	gotJSONL, gotAgg := canonicalize(t, final)
	if done := campaign.DoneSet(final); len(done) != len(plan.Specs) {
		t.Fatalf("lost runs: %d of %d coordinates completed", len(done), len(plan.Specs))
	}
	if gotJSONL != wantJSONL {
		t.Fatalf("resumed records diverge from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
			gotJSONL, wantJSONL)
	}
	if gotAgg != wantAgg {
		t.Fatalf("resumed aggregate diverges from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
			gotAgg, wantAgg)
	}
}

// TestInterruptResumeInvariant interrupts a campaign at ≥20 seeded points —
// context cancel mid-stream, sink write errors and torn short writes at
// seeded byte offsets, executor panics and hangs on seeded schedules — then
// resumes each wreck and requires the final output to be byte-identical to
// an uninterrupted run, at workers 1 and 8. Run it under -race: the drain,
// claim-gate, and callback-guard paths are all concurrent.
func TestInterruptResumeInvariant(t *testing.T) {
	plan := invariantPlan(t)
	nspecs := len(plan.Specs)

	// The baseline is computed once at workers=1; every (mode, workers,
	// seed) cell must reproduce it, which also re-proves worker-count
	// determinism along the way.
	var base bytes.Buffer
	baseSink := campaign.NewJSONLSink(&base)
	baseRecs, err := campaign.Run(plan, campaign.Options{Workers: 1, OnRecord: baseSink.Write})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Flush(); err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantAgg := canonicalize(t, baseRecs)
	fileSize := int64(base.Len())

	points := 0
	for _, workers := range []int{1, 8} {
		workers := workers

		// Mode 1: context cancel after a seeded number of records, full
		// drain (negative grace), resume the undispatched tail.
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			cut := 1 + rng.Intn(nspecs)
			points++
			t.Run(fmt.Sprintf("cancel/workers=%d/cut=%d", workers, cut), func(t *testing.T) {
				var buf bytes.Buffer
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				sink := campaign.NewJSONLSink(&buf)
				hook := CancelAfter(cut, cancel)
				_, err := campaign.RunContext(ctx, plan, campaign.Options{
					Workers: workers,
					Grace:   -1,
					OnRecord: func(rec campaign.RunRecord) {
						hook(rec)
						sink.Write(rec)
					},
				})
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatal(err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
			})
		}

		// Mode 2: the sink's stream dies at a seeded byte offset — hard
		// error and torn short write. The campaign itself completes; the
		// file loses its tail; resume must regenerate exactly the lost runs.
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(2000 + seed))
			failAfter := rng.Int63n(fileSize)
			short := seed%2 == 1
			points++
			t.Run(fmt.Sprintf("sinkfail/workers=%d/at=%d/short=%v", workers, failAfter, short),
				func(t *testing.T) {
					var buf bytes.Buffer
					fw := &FlakyWriter{W: &buf, FailAfter: failAfter, Short: short}
					sink := campaign.NewJSONLSink(fw)
					sink.SyncEvery(1) // every record hits the flaky stream immediately
					if _, err := campaign.Run(plan, campaign.Options{
						Workers: workers, OnRecord: sink.Write,
					}); err != nil {
						t.Fatal(err)
					}
					if err := sink.Flush(); err == nil && fw.Failed() {
						t.Fatal("sink swallowed the injected failure")
					}
					resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
				})
		}

		// Mode 3: the executor panics on a seeded schedule; panicked runs
		// become error records that resume must re-execute.
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(3000 + seed))
			every := 1 + rng.Intn(4)
			points++
			t.Run(fmt.Sprintf("panic/workers=%d/every=%d", workers, every), func(t *testing.T) {
				var buf bytes.Buffer
				sink := campaign.NewJSONLSink(&buf)
				if _, err := campaign.Run(plan, campaign.Options{
					Workers: workers, OnRecord: sink.Write,
					Execute: PanicEvery(every, nil),
				}); err != nil {
					t.Fatal(err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
			})
		}

		// Mode 4: the executor wedges past the pool timeout on a seeded
		// schedule; abandoned runs become timeout error records (publishing
		// nothing, by the claim gate) that resume re-executes.
		for seed := int64(0); seed < 2; seed++ {
			rng := rand.New(rand.NewSource(4000 + seed))
			every := 2 + rng.Intn(3)
			points++
			t.Run(fmt.Sprintf("hang/workers=%d/every=%d", workers, every), func(t *testing.T) {
				var buf bytes.Buffer
				sink := campaign.NewJSONLSink(&buf)
				if _, err := campaign.Run(plan, campaign.Options{
					Workers: workers, OnRecord: sink.Write,
					Timeout: 30 * time.Millisecond,
					Execute: HangEvery(every, 200*time.Millisecond, nil),
				}); err != nil {
					t.Fatal(err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
			})
		}
	}
	if points < 20 {
		t.Fatalf("only %d seeded interrupt points exercised, want >= 20", points)
	}
}

// TestInterruptResumeInvariantAdversarialCensor repeats the interrupt/resume
// invariant with the censor itself misbehaving: the plan sweeps every
// adversarial censor-behavior preset, campaigns are interrupted at seeded
// points, and the resumed output must still be byte-identical to an
// uninterrupted run. This is the episode that proves behavior state
// (intermittent flow decisions, throttle token buckets, injector budgets)
// lives entirely inside each run's lab — a resumed run re-derives it from
// the seed, never from process state the interrupt destroyed.
func TestInterruptResumeInvariantAdversarialCensor(t *testing.T) {
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Scenarios: []string{"keyword-rst"}, Behaviors: []string{"all"},
		Trials: 1, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	nspecs := len(plan.Specs)
	if nspecs < 12 {
		t.Fatalf("behavior sweep too small: %d specs", nspecs)
	}

	var base bytes.Buffer
	baseSink := campaign.NewJSONLSink(&base)
	baseRecs, err := campaign.Run(plan, campaign.Options{Workers: 1, OnRecord: baseSink.Write})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Flush(); err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantAgg := canonicalize(t, baseRecs)

	for _, workers := range []int{1, 8} {
		workers := workers
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(7000 + seed))
			cut := 1 + rng.Intn(nspecs)
			t.Run(fmt.Sprintf("cancel/workers=%d/cut=%d", workers, cut), func(t *testing.T) {
				var buf bytes.Buffer
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				sink := campaign.NewJSONLSink(&buf)
				hook := CancelAfter(cut, cancel)
				_, err := campaign.RunContext(ctx, plan, campaign.Options{
					Workers: workers,
					Grace:   -1,
					OnRecord: func(rec campaign.RunRecord) {
						hook(rec)
						sink.Write(rec)
					},
				})
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatal(err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
			})
		}
	}
}

// TestCancelBeforeDispatchRunsNothing pins the degenerate interrupt point:
// a context canceled before RunContext is even called dispatches nothing,
// and the resume plan is the entire campaign.
func TestCancelBeforeDispatchRunsNothing(t *testing.T) {
	plan := invariantPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs, err := campaign.RunContext(ctx, plan, campaign.Options{
		Workers: 4,
		Execute: stubExec,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(recs) != 0 {
		t.Fatalf("pre-canceled campaign ran %d specs, want 0", len(recs))
	}
	rest := plan.Remaining(campaign.DoneSet(recs))
	if len(rest.Specs) != len(plan.Specs) {
		t.Fatalf("resume plan %d specs, want the full %d", len(rest.Specs), len(plan.Specs))
	}
}
