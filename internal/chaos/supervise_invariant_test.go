package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"safemeasure/internal/campaign"
)

// supervisedPlan is a larger matrix than invariantPlan — four trials per
// cell — so a failure budget has room to trip mid-campaign with runs still
// undispatched.
func supervisedPlan(t *testing.T) *campaign.Plan {
	t.Helper()
	p, err := campaign.NewPlan(campaign.PlanConfig{
		Scenarios: []string{"dns-poison"}, Trials: 4, Seed: 5678,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSupervisedBudgetAbortResumeInvariant is the supervision acceptance
// check: with per-cell breakers AND a failure budget armed, seeded panic and
// hang faults at workers 1 and 8 must (a) never deadlock the pool, (b) abort
// the campaign with ErrBudgetExceeded, and (c) leave a partial file that
// -resume completes — once the fault clears — to the byte-identical sorted
// record set and aggregate of an unfaulted, unsupervised run. Run under
// -race: abort, drain, breaker bookkeeping, and the claim gate all race.
func TestSupervisedBudgetAbortResumeInvariant(t *testing.T) {
	plan := supervisedPlan(t)

	var base bytes.Buffer
	baseSink := campaign.NewJSONLSink(&base)
	baseRecs, err := campaign.Run(plan, campaign.Options{Workers: 1, OnRecord: baseSink.Write})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseSink.Flush(); err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantAgg := canonicalize(t, baseRecs)

	modes := []struct {
		name    string
		timeout time.Duration
		exec    func() campaign.Executor
	}{
		// Every 2nd executor call detonates or wedges, so the executed-run
		// error fraction hovers at 0.5 — far past the 0.25 budget.
		{"panic", 0, func() campaign.Executor { return PanicEvery(2, nil) }},
		{"hang", 30 * time.Millisecond,
			func() campaign.Executor { return HangEvery(2, 300*time.Millisecond, nil) }},
	}
	for _, workers := range []int{1, 8} {
		for _, mode := range modes {
			workers, mode := workers, mode
			t.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(t *testing.T) {
				var buf bytes.Buffer
				sink := campaign.NewJSONLSink(&buf)
				recs, err := campaign.Run(plan, campaign.Options{
					Workers:  workers,
					Timeout:  mode.timeout,
					Grace:    -1, // drain fully: every dispatched run must settle
					Breakers: campaign.NewBreakerSet(campaign.BreakerConfig{Consecutive: 2, Cooldown: 2}),
					Budget:   &campaign.FailureBudget{Fraction: 0.25, MinRuns: 4},
					OnRecord: sink.Write,
					Execute:  mode.exec(),
				})
				if !errors.Is(err, campaign.ErrBudgetExceeded) {
					t.Fatalf("err = %v, want ErrBudgetExceeded", err)
				}
				if err := sink.Flush(); err != nil {
					t.Fatal(err)
				}
				// Every partial record keeps its coordinates, and skips are
				// exactly the breaker's explicit shed markers.
				executed := 0
				for _, rec := range recs {
					if rec.Technique == "" || rec.Scenario == "" {
						t.Fatalf("partial record lost coordinates: %+v", rec)
					}
					if !campaign.IsBreakerSkip(rec) {
						executed++
					}
				}
				if workers == 1 {
					// Sequential dispatch: the budget trips at the 4th
					// executed run (2 faults in 4); at most one more spec can
					// win the dispatch race before the abort lands.
					if executed > 6 {
						t.Fatalf("abort dispatched %d executed runs, want <= 6", executed)
					}
				}
				// The fault clears (resume uses the default executor); the
				// wreck must converge to the unfaulted baseline.
				resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
			})
		}
	}
}

// TestHedgedFaultyCampaignResumeInvariant folds hedging into the chaos
// harness: hedge attempts change which executor call a seeded panic lands on,
// but the claim gate and seed-determinism mean every error-free record is
// still byte-identical to the unfaulted baseline, and resume completes the
// rest.
func TestHedgedFaultyCampaignResumeInvariant(t *testing.T) {
	plan := supervisedPlan(t)
	baseRecs, err := campaign.Run(plan, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantJSONL, wantAgg := canonicalize(t, baseRecs)

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var buf bytes.Buffer
			sink := campaign.NewJSONLSink(&buf)
			if _, err := campaign.Run(plan, campaign.Options{
				Workers:  workers,
				Hedge:    campaign.HedgeConfig{Delay: time.Millisecond},
				OnRecord: sink.Write,
				Execute:  PanicEvery(3, nil),
			}); err != nil {
				t.Fatal(err)
			}
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			resumeAndCheck(t, plan, workers, &buf, wantJSONL, wantAgg)
		})
	}
}
