package chaos

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/campaign"
)

func TestFlakyWriterErrorMode(t *testing.T) {
	var buf bytes.Buffer
	fw := &FlakyWriter{W: &buf, FailAfter: 10}
	if n, err := fw.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("in-budget write: n=%d err=%v", n, err)
	}
	if n, err := fw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v, want 0, ErrInjected", n, err)
	}
	// The failure is permanent, even for writes that would fit.
	if _, err := fw.Write(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: err=%v, want ErrInjected", err)
	}
	if buf.String() != "0123456789" || fw.Written() != 10 || !fw.Failed() {
		t.Fatalf("buf=%q written=%d failed=%v", buf.String(), fw.Written(), fw.Failed())
	}
}

func TestFlakyWriterShortMode(t *testing.T) {
	var buf bytes.Buffer
	fw := &FlakyWriter{W: &buf, FailAfter: 4, Short: true}
	n, err := fw.Write([]byte("abcdefgh"))
	if n != 4 || err != io.ErrShortWrite {
		t.Fatalf("short write: n=%d err=%v, want 4, io.ErrShortWrite", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("buf=%q, want the torn prefix \"abcd\"", buf.String())
	}
	if _, err := fw.Write([]byte("z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write: err=%v, want ErrInjected", err)
	}
}

func TestFlakyWriterCustomError(t *testing.T) {
	sentinel := errors.New("enospc")
	fw := &FlakyWriter{W: io.Discard, FailAfter: 0, Err: sentinel}
	if _, err := fw.Write([]byte("x")); !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want sentinel", err)
	}
}

func TestFaultyWriterTogglesAndRecovers(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultyWriter{W: &buf}
	if n, err := fw.Write([]byte("ok1")); n != 3 || err != nil {
		t.Fatalf("healthy write: n=%d err=%v", n, err)
	}
	fw.SetFailing(true)
	if n, err := fw.Write([]byte("lost")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("failing write: n=%d err=%v, want 0, ErrInjected", n, err)
	}
	if _, err := fw.Write([]byte("lost2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second failing write: err=%v, want ErrInjected", err)
	}
	fw.SetFailing(false)
	if n, err := fw.Write([]byte("ok2")); n != 3 || err != nil {
		t.Fatalf("recovered write: n=%d err=%v", n, err)
	}
	if buf.String() != "ok1ok2" {
		t.Fatalf("buf=%q, want the failed writes fully absent", buf.String())
	}
	if fw.Faults() != 2 || fw.Written() != 6 {
		t.Fatalf("faults=%d written=%d, want 2 and 6", fw.Faults(), fw.Written())
	}
}

func TestFaultyWriterShortTearsPartialPrefix(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultyWriter{W: &buf, Short: true}
	fw.SetFailing(true)
	n, err := fw.Write([]byte("abcdefgh"))
	if err != io.ErrShortWrite {
		t.Fatalf("short-mode write: err=%v, want io.ErrShortWrite", err)
	}
	if n < 1 || n >= 8 || buf.Len() != n {
		t.Fatalf("short-mode write: n=%d buf=%d bytes, want a proper partial prefix", n, buf.Len())
	}
	fw.SetFailing(false)
	if _, err := fw.Write([]byte("tail")); err != nil {
		t.Fatalf("recovered write after tear: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "tail") {
		t.Fatalf("buf=%q, want recovered suffix after the torn prefix", buf.String())
	}
}

// stubExec returns a deterministic record without touching a lab.
func stubExec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	rec := campaign.RunRecord{Scenario: spec.Scenario, Trial: spec.Trial}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	claim()
	return rec
}

func TestPanicEverySchedule(t *testing.T) {
	exec := PanicEvery(3, stubExec)
	spec := campaign.RunSpec{Technique: "spam", Scenario: "dns-poison", Trial: 0}
	mustPanic := func(call int, want bool) {
		t.Helper()
		defer func() {
			p := recover()
			if (p != nil) != want {
				t.Fatalf("call %d: panic=%v, want panic=%v", call, p, want)
			}
			if want && !strings.Contains(p.(string), "chaos: injected panic") {
				t.Fatalf("call %d: panic message %q", call, p)
			}
		}()
		exec(spec, 0, func() bool { return true })
	}
	for call := 1; call <= 7; call++ {
		mustPanic(call, call%3 == 0)
	}
}

func TestHangEverySleepsOnSchedule(t *testing.T) {
	const hang = 30 * time.Millisecond
	exec := HangEvery(2, hang, stubExec)
	spec := campaign.RunSpec{Technique: "spam", Scenario: "dns-poison"}
	start := time.Now()
	exec(spec, 0, func() bool { return true }) // call 1: no hang
	if el := time.Since(start); el >= hang {
		t.Fatalf("call 1 hung for %v", el)
	}
	start = time.Now()
	exec(spec, 0, func() bool { return true }) // call 2: hangs
	if el := time.Since(start); el < hang {
		t.Fatalf("call 2 returned after %v, want >= %v", el, hang)
	}
}

func TestCancelAfterFiresOnce(t *testing.T) {
	fired := 0
	hook := CancelAfter(3, func() { fired++ })
	for i := 0; i < 10; i++ {
		hook(campaign.RunRecord{})
	}
	if fired != 1 {
		t.Fatalf("cancel fired %d times, want exactly 1 (at the 3rd record)", fired)
	}
	// n < 1 fires on the first record.
	fired = 0
	first := CancelAfter(0, func() { fired++ })
	first(campaign.RunRecord{})
	first(campaign.RunRecord{})
	if fired != 1 {
		t.Fatalf("n=0 cancel fired %d times, want 1", fired)
	}
}
