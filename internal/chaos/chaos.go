// Package chaos provides seeded, deterministic fault injectors for proving
// the campaign subsystem's crash-safety guarantees by deliberate abuse:
//
//   - FlakyWriter fails (or short-writes) a sink's underlying stream after
//     an exact byte budget — the torn-line shape of a process killed
//     mid-write or a filesystem gone read-only.
//   - PanicEvery and HangEvery wrap a campaign Executor to blow up or wedge
//     on a schedule, exercising the pool's panic recovery and its
//     timeout/abandon claim gate.
//   - CancelAfter drives the cancel-at-seeded-point scenario: it cancels a
//     campaign context once the nth record has streamed, so a test can pick
//     interrupt points from a seeded RNG and replay them exactly.
//
// The injectors themselves are deterministic (byte budgets and call counts,
// never wall-clock sampling); which spec lands on a given call still
// depends on scheduling, which is the point — the invariant tests in this
// package assert that interrupt + resume converges to byte-identical
// aggregates no matter which victim the scheduler picked.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"safemeasure/internal/campaign"
)

// ErrInjected is the write failure FlakyWriter injects when Err is nil.
var ErrInjected = errors.New("chaos: injected write failure")

// FlakyWriter passes writes through to W until FailAfter bytes have been
// written, then fails the write that crosses the boundary: a short write of
// exactly the remaining budget when Short is set (bufio surfaces it as
// io.ErrShortWrite — the torn trailing line a crash leaves), otherwise Err
// (ErrInjected when nil) with nothing written. The failure is permanent,
// like a disk gone read-only. Safe for concurrent use.
type FlakyWriter struct {
	W         io.Writer
	FailAfter int64
	Err       error
	Short     bool

	mu      sync.Mutex
	written int64
	failed  bool
}

// Write implements io.Writer with the byte-budget fault.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return 0, f.injectedErr()
	}
	budget := f.FailAfter - f.written
	if int64(len(p)) <= budget {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	f.failed = true
	if f.Short && budget > 0 {
		n, err := f.W.Write(p[:budget])
		f.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return 0, f.injectedErr()
}

// Written reports how many bytes reached the underlying writer.
func (f *FlakyWriter) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Failed reports whether the fault has fired.
func (f *FlakyWriter) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

func (f *FlakyWriter) injectedErr() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// FaultyWriter is FlakyWriter's recoverable cousin: writes pass through to
// W until SetFailing(true), then every write fails — a short write of a
// seeded prefix length when Short is set (the torn-frame wreckage a crash
// leaves mid-record), otherwise Err (ErrInjected when nil) with nothing
// written — until SetFailing(false) heals it. Where FlakyWriter models a
// disk gone permanently read-only, FaultyWriter models the transient faults
// a degrade-and-recover storage layer must survive: full disks that empty,
// network filesystems that flap. Safe for concurrent use.
type FaultyWriter struct {
	W     io.Writer
	Err   error
	Short bool

	mu      sync.Mutex
	failing bool
	faults  int64
	written int64
}

// Write implements io.Writer with the togglable fault.
func (f *FaultyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.failing {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	f.faults++
	if f.Short && len(p) > 1 {
		// Deterministic partial prefix: the fault count picks how much of
		// the record lands, so repeated faults tear at different offsets.
		n, err := f.W.Write(p[:1+int(f.faults)%(len(p)-1)])
		f.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return 0, f.injectedErr()
}

// SetFailing flips the fault on or off; writes recover as soon as it is off.
func (f *FaultyWriter) SetFailing(failing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failing = failing
}

// Faults reports how many writes the fault has rejected (or torn).
func (f *FaultyWriter) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Written reports how many bytes reached the underlying writer.
func (f *FaultyWriter) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FaultyWriter) injectedErr() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// passthrough is the executor used when a wrapper is given a nil inner: a
// plain uninstrumented campaign run, claimed just before publication.
func passthrough(spec campaign.RunSpec, horizon time.Duration, claim func() bool) campaign.RunRecord {
	rec := campaign.Execute(spec, horizon)
	claim()
	return rec
}

// PanicEvery wraps an executor (nil means a plain campaign.Execute) so that
// every nth call, counted across the whole campaign, panics instead of
// running. n < 1 never fires. The pool must convert each detonation into an
// error record and keep the campaign — and a later resume — intact.
func PanicEvery(n int, inner campaign.Executor) campaign.Executor {
	if inner == nil {
		inner = passthrough
	}
	var calls atomic.Int64
	return func(spec campaign.RunSpec, horizon time.Duration, claim func() bool) campaign.RunRecord {
		if c := calls.Add(1); n >= 1 && c%int64(n) == 0 {
			panic(fmt.Sprintf("chaos: injected panic on executor call %d (%s/%s trial %d)",
				c, spec.Technique, spec.Scenario, spec.Trial))
		}
		return inner(spec, horizon, claim)
	}
}

// HangEvery wraps an executor (nil means a plain campaign.Execute) so that
// every nth call sleeps for hang before running — set hang well past the
// pool timeout and the run simulates a wedged simulator the pool must
// abandon (and whose claim must then lose, publishing nothing).
func HangEvery(n int, hang time.Duration, inner campaign.Executor) campaign.Executor {
	if inner == nil {
		inner = passthrough
	}
	var calls atomic.Int64
	return func(spec campaign.RunSpec, horizon time.Duration, claim func() bool) campaign.RunRecord {
		if c := calls.Add(1); n >= 1 && c%int64(n) == 0 {
			time.Sleep(hang)
		}
		return inner(spec, horizon, claim)
	}
}

// CancelAfter returns an OnRecord hook that invokes cancel exactly once,
// when the nth record streams (n < 1 fires on the first). Chain it in front
// of the sink and a campaign interrupts itself at a reproducible point in
// its own record stream — the cancel-at-seeded-point driver.
func CancelAfter(n int, cancel func()) func(campaign.RunRecord) {
	var seen atomic.Int64
	return func(campaign.RunRecord) {
		if c := seen.Add(1); c == int64(n) || (n < 1 && c == 1) {
			cancel()
		}
	}
}
