// Package dnssim provides a DNS client (stub resolver) and an authoritative
// DNS server over the simulated network. The client accepts the first
// response for a query id — which is exactly why the censor's forged,
// closer-injected answers win the race (internal/censor), the behaviour the
// paper's DNS measurements detect.
package dnssim

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/netsim"
)

// ErrTimeout is reported when no response arrives in time.
var ErrTimeout = errors.New("dnssim: query timed out")

// Client is a stub resolver bound to one UDP port on a host.
type Client struct {
	host *netsim.Host
	port uint16

	nextID  uint16
	pending map[uint16]*pendingQuery

	// Timeout bounds each query.
	Timeout time.Duration
}

type pendingQuery struct {
	cb   func(*dnswire.Message, error)
	done bool
}

// NewClient binds a resolver to the host's UDP port.
func NewClient(h *netsim.Host, port uint16) (*Client, error) {
	c := &Client{host: h, port: port, nextID: 1, pending: make(map[uint16]*pendingQuery), Timeout: 500 * time.Millisecond}
	if !h.BindUDP(port, c.onDatagram) {
		return nil, fmt.Errorf("dnssim: UDP port %d in use on %s", port, h.Name)
	}
	return c, nil
}

func (c *Client) onDatagram(_ *netsim.Host, src netip.Addr, srcPort uint16, payload []byte) {
	msg, err := dnswire.ParseMessage(payload)
	if err != nil || !msg.Response {
		return
	}
	pq, ok := c.pending[msg.ID]
	if !ok || pq.done {
		return // late duplicate (e.g. the real answer after a forged one)
	}
	pq.done = true
	delete(c.pending, msg.ID)
	pq.cb(msg, nil)
}

// Query sends a question to server and calls cb with the FIRST response
// (forged answers that arrive earlier shadow the truth) or ErrTimeout.
func (c *Client) Query(server netip.Addr, name string, t dnswire.RRType, cb func(*dnswire.Message, error)) {
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	pq := &pendingQuery{cb: cb}
	c.pending[id] = pq
	q := dnswire.NewQuery(id, name, t)
	wire, err := q.Marshal()
	if err != nil {
		delete(c.pending, id)
		cb(nil, err)
		return
	}
	c.host.SendUDP(c.port, server, 53, wire)
	c.host.Sim().Schedule(c.Timeout, func() {
		if !pq.done {
			pq.done = true
			delete(c.pending, id)
			cb(nil, ErrTimeout)
		}
	})
}

// Zone is a simple authoritative dataset.
type Zone struct {
	A  map[string]netip.Addr // name -> address
	MX map[string][]MXRecord // name -> mail exchangers
}

// MXRecord is one MX entry.
type MXRecord struct {
	Pref uint16
	Host string
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return &Zone{A: make(map[string]netip.Addr), MX: make(map[string][]MXRecord)}
}

// AddA registers an address record.
func (z *Zone) AddA(name string, addr netip.Addr) {
	z.A[dnswire.CanonicalName(name)] = addr
}

// AddMX registers a mail exchanger.
func (z *Zone) AddMX(name string, pref uint16, host string) {
	key := dnswire.CanonicalName(name)
	z.MX[key] = append(z.MX[key], MXRecord{Pref: pref, Host: dnswire.CanonicalName(host)})
}

// Server answers queries from a zone on UDP 53.
type Server struct {
	zone *Zone

	// Queries counts questions served.
	Queries int
}

// NewServer binds an authoritative server to the host.
func NewServer(h *netsim.Host, zone *Zone) (*Server, error) {
	s := &Server{zone: zone}
	if !h.BindUDP(53, s.onDatagram) {
		return nil, fmt.Errorf("dnssim: UDP port 53 in use on %s", h.Name)
	}
	return s, nil
}

func (s *Server) onDatagram(h *netsim.Host, src netip.Addr, srcPort uint16, payload []byte) {
	q, err := dnswire.ParseMessage(payload)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	s.Queries++
	r := q.Reply()
	r.Authoritative = true
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	switch question.Type {
	case dnswire.TypeA:
		if addr, ok := s.zone.A[name]; ok {
			r.Answers = append(r.Answers, dnswire.RR{Name: name, Type: dnswire.TypeA, TTL: 300, A: addr})
		} else {
			r.RCode = dnswire.RCodeNXDomain
		}
	case dnswire.TypeMX:
		if mxs, ok := s.zone.MX[name]; ok {
			for _, mx := range mxs {
				r.Answers = append(r.Answers, dnswire.RR{Name: name, Type: dnswire.TypeMX, TTL: 300, Pref: mx.Pref, Target: mx.Host})
				// Glue: include the exchanger's address when known.
				if addr, ok := s.zone.A[mx.Host]; ok {
					r.Additional = append(r.Additional, dnswire.RR{Name: mx.Host, Type: dnswire.TypeA, TTL: 300, A: addr})
				}
			}
		} else {
			r.RCode = dnswire.RCodeNXDomain
		}
	default:
		r.RCode = dnswire.RCodeNXDomain
	}
	wire, err := r.Marshal()
	if err != nil {
		return
	}
	h.SendUDP(53, src, srcPort, wire)
}
