package dnssim

import (
	"net/netip"

	"safemeasure/internal/packet"
)

func packetBuildUDP(src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) ([]byte, error) {
	return packet.BuildUDP(src, dst, packet.DefaultTTL, &packet.UDP{SrcPort: sp, DstPort: dp, Payload: payload})
}
