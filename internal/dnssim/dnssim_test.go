package dnssim

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/netsim"
)

var (
	cliAddr = netip.MustParseAddr("10.1.0.10")
	dnsAddr = netip.MustParseAddr("203.0.113.53")
	rtrAddr = netip.MustParseAddr("10.1.0.1")
	webAddr = netip.MustParseAddr("203.0.113.80")
	mxAddr  = netip.MustParseAddr("203.0.113.25")
)

func newEnv(t *testing.T) (*netsim.Sim, *netsim.Host, *netsim.Host, *netsim.Router) {
	t.Helper()
	sim := netsim.NewSim(9)
	client := netsim.NewHost(sim, "client", cliAddr)
	server := netsim.NewHost(sim, "dns", dnsAddr)
	router := netsim.NewRouter(sim, "r", rtrAddr, 2)
	netsim.AttachHost(sim, client, router, 0, time.Millisecond)
	netsim.AttachHost(sim, server, router, 1, time.Millisecond)
	router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	router.SetDefaultRoute(1)
	return sim, client, server, router
}

func testZone() *Zone {
	z := NewZone()
	z.AddA("www.example.test", webAddr)
	z.AddA("mx1.example.test", mxAddr)
	z.AddMX("example.test", 10, "mx1.example.test")
	return z
}

func TestALookup(t *testing.T) {
	sim, client, server, _ := newEnv(t)
	if _, err := NewServer(server, testZone()); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(client, 5353)
	if err != nil {
		t.Fatal(err)
	}
	var got netip.Addr
	c.Query(dnsAddr, "WWW.Example.Test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		got = m.Answers[0].A
	})
	sim.Run()
	if got != webAddr {
		t.Fatalf("answer = %v", got)
	}
}

func TestMXLookupWithGlue(t *testing.T) {
	sim, client, server, _ := newEnv(t)
	NewServer(server, testZone())
	c, _ := NewClient(client, 5353)
	var mx string
	var glue netip.Addr
	c.Query(dnsAddr, "example.test", dnswire.TypeMX, func(m *dnswire.Message, err error) {
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		mx = m.Answers[0].Target
		for _, rr := range m.Additional {
			if rr.Type == dnswire.TypeA {
				glue = rr.A
			}
		}
	})
	sim.Run()
	if mx != "mx1.example.test" || glue != mxAddr {
		t.Fatalf("mx=%q glue=%v", mx, glue)
	}
}

func TestNXDomain(t *testing.T) {
	sim, client, server, _ := newEnv(t)
	srv, _ := NewServer(server, testZone())
	c, _ := NewClient(client, 5353)
	var rcode dnswire.RCode
	c.Query(dnsAddr, "nonexistent.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		rcode = m.RCode
	})
	sim.Run()
	if rcode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", rcode)
	}
	if srv.Queries != 1 {
		t.Fatalf("queries served = %d", srv.Queries)
	}
}

func TestQueryTimeout(t *testing.T) {
	sim, client, _, router := newEnv(t)
	// No server bound; also drop everything at the router for determinism.
	router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		return netsim.Drop
	}))
	c, _ := NewClient(client, 5353)
	var gotErr error
	c.Query(dnsAddr, "www.example.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		gotErr = err
	})
	sim.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestFirstResponseWins(t *testing.T) {
	// Two responses for the same id: only the first reaches the callback —
	// the property DNS poisoning exploits.
	sim, client, server, router := newEnv(t)
	NewServer(server, testZone())
	forged := netip.MustParseAddr("198.18.0.99")
	router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, inj netsim.Injector) netsim.Verdict {
		if tp.Pkt == nil || tp.Pkt.UDP == nil || tp.Pkt.UDP.DstPort != 53 {
			return netsim.Pass
		}
		q, err := dnswire.ParseMessage(tp.Pkt.UDP.Payload)
		if err != nil || q.Response {
			return netsim.Pass
		}
		r := q.Reply()
		r.Answers = []dnswire.RR{{Name: q.Questions[0].Name, Type: dnswire.TypeA, TTL: 1, A: forged}}
		wire, _ := r.Marshal()
		raw, _ := buildUDPRaw(tp.Pkt.IP.Dst, 53, tp.Pkt.IP.Src, tp.Pkt.UDP.SrcPort, wire)
		inj.Inject(raw)
		return netsim.Pass
	}))
	c, _ := NewClient(client, 5353)
	calls := 0
	var got netip.Addr
	c.Query(dnsAddr, "www.example.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		calls++
		if err == nil {
			got = m.Answers[0].A
		}
	})
	sim.Run()
	if calls != 1 {
		t.Fatalf("callback fired %d times", calls)
	}
	if got != forged {
		t.Fatalf("got %v, want forged %v", got, forged)
	}
}

func TestConcurrentQueriesIndependent(t *testing.T) {
	sim, client, server, _ := newEnv(t)
	NewServer(server, testZone())
	c, _ := NewClient(client, 5353)
	got := map[string]netip.Addr{}
	c.Query(dnsAddr, "www.example.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err == nil {
			got["www"] = m.Answers[0].A
		}
	})
	c.Query(dnsAddr, "mx1.example.test", dnswire.TypeA, func(m *dnswire.Message, err error) {
		if err == nil {
			got["mx1"] = m.Answers[0].A
		}
	})
	sim.Run()
	if got["www"] != webAddr || got["mx1"] != mxAddr {
		t.Fatalf("got %v", got)
	}
}

func TestClientPortCollision(t *testing.T) {
	_, client, _, _ := newEnv(t)
	if _, err := NewClient(client, 5353); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(client, 5353); err == nil {
		t.Fatal("double bind accepted")
	}
}

// buildUDPRaw is a small helper mirroring packet.BuildUDP for the forging tap.
func buildUDPRaw(src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) ([]byte, error) {
	return packetBuildUDP(src, sp, dst, dp, payload)
}
