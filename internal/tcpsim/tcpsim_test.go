package tcpsim

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.10")
	serverAddr = netip.MustParseAddr("203.0.113.80")
	r1Addr     = netip.MustParseAddr("10.1.0.1")
)

type env struct {
	sim    *netsim.Sim
	client *netsim.Host
	server *netsim.Host
	router *netsim.Router
	cs, ss *Stack
}

func newEnv(t testing.TB, lat time.Duration) *env {
	t.Helper()
	sim := netsim.NewSim(7)
	e := &env{
		sim:    sim,
		client: netsim.NewHost(sim, "client", clientAddr),
		server: netsim.NewHost(sim, "server", serverAddr),
		router: netsim.NewRouter(sim, "r1", r1Addr, 2),
	}
	netsim.AttachHost(sim, e.client, e.router, 0, lat)
	netsim.AttachHost(sim, e.server, e.router, 1, lat)
	e.router.AddRoute(netip.PrefixFrom(clientAddr, 32), 0)
	e.router.SetDefaultRoute(1)
	e.cs = NewStack(e.client)
	e.ss = NewStack(e.server)
	return e
}

func TestHandshakeAndEcho(t *testing.T) {
	e := newEnv(t, time.Millisecond)
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) {
			c.Send(append([]byte("echo:"), data...))
		}
	})
	var got bytes.Buffer
	var connected bool
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) {
		connected = true
		c.Send([]byte("hello"))
	}
	c.OnData = func(c *Conn, data []byte) { got.Write(data) }
	e.sim.Run()
	if !connected {
		t.Fatal("never connected")
	}
	if got.String() != "echo:hello" {
		t.Fatalf("got %q", got.String())
	}
	if c.State() != StateEstablished {
		t.Fatalf("client state = %v", c.State())
	}
}

func TestLargeTransferSegmentsAtMSS(t *testing.T) {
	e := newEnv(t, 0)
	payload := bytes.Repeat([]byte("abcdefgh"), 2000) // 16000 bytes > 10*MSS
	var got bytes.Buffer
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { got.Write(data) }
	})
	// Count wire segments to prove MSS segmentation.
	segs := 0
	e.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && len(pkt.TCP.Payload) > 0 {
			segs++
			if len(pkt.TCP.Payload) > MSS {
				t.Errorf("segment of %d bytes exceeds MSS", len(pkt.TCP.Payload))
			}
		}
	})
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) { c.Send(payload) }
	e.sim.Run()
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("transfer mismatch: %d/%d bytes", got.Len(), len(payload))
	}
	if want := (len(payload) + MSS - 1) / MSS; segs != want {
		t.Fatalf("segments = %d, want %d", segs, want)
	}
}

func TestOrderlyClose(t *testing.T) {
	e := newEnv(t, time.Millisecond)
	var serverClosed, clientClosed bool
	e.ss.Listen(80, func(c *Conn) {
		c.OnClose = func(*Conn) { serverClosed = true }
	})
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) { c.Close() }
	c.OnClose = func(*Conn) { clientClosed = true }
	e.sim.Run()
	if !serverClosed {
		t.Fatal("server OnClose never fired")
	}
	if !clientClosed {
		t.Fatal("client OnClose never fired")
	}
}

func TestInjectedRSTAbortsConnection(t *testing.T) {
	// A censor tap at the router injects a RST toward the client whenever it
	// sees the keyword — the GFC behaviour. The client must observe
	// ErrReset: that observation IS the censorship measurement.
	e := newEnv(t, time.Millisecond)
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, inj netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.TCP != nil && bytes.Contains(tp.Pkt.TCP.Payload, []byte("falun")) {
			t := tp.Pkt.TCP
			rst := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort, Seq: t.Ack, Flags: packet.TCPRst}
			raw, _ := packet.BuildTCP(tp.Pkt.IP.Dst, tp.Pkt.IP.Src, packet.DefaultTTL, rst)
			inj.Inject(raw)
		}
		return netsim.Pass
	}))
	e.ss.Listen(80, func(c *Conn) {})
	var failErr error
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) { c.Send([]byte("GET /falun HTTP/1.1")) }
	c.OnFail = func(c *Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, ErrReset) {
		t.Fatalf("fail err = %v, want ErrReset", failErr)
	}
}

func TestBlackholeTimesOut(t *testing.T) {
	// Drop everything to the server: SYN retransmissions exhaust and the
	// dialer reports ErrTimeout — how IP blackholing shows up to a probe.
	e := newEnv(t, time.Millisecond)
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.IP.Dst == serverAddr {
			return netsim.Drop
		}
		return netsim.Pass
	}))
	var failErr error
	syns := 0
	e.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {})
	c := e.cs.Dial(serverAddr, 80)
	c.OnFail = func(c *Conn, err error) { failErr = err }
	// Count SYN transmissions at the router input (before the drop tap
	// decision applies we still observe).
	e.sim.Run()
	_ = syns
	if !errors.Is(failErr, ErrTimeout) {
		t.Fatalf("fail err = %v, want ErrTimeout", failErr)
	}
	if e.sim.Now() < 3*e.cs.RTO {
		t.Fatalf("gave up too early: %v", e.sim.Now())
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	e := newEnv(t, time.Millisecond)
	// Drop the first data segment only.
	dropped := false
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if !dropped && tp.Pkt != nil && tp.Pkt.TCP != nil && len(tp.Pkt.TCP.Payload) > 0 {
			dropped = true
			return netsim.Drop
		}
		return netsim.Pass
	}))
	var got bytes.Buffer
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { got.Write(data) }
	})
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) { c.Send([]byte("retransmit me")) }
	e.sim.Run()
	if got.String() != "retransmit me" {
		t.Fatalf("got %q", got.String())
	}
	if !dropped {
		t.Fatal("tap never dropped anything")
	}
}

func TestSynToClosedPortFails(t *testing.T) {
	e := newEnv(t, time.Millisecond)
	var failErr error
	c := e.cs.Dial(serverAddr, 81) // nothing listening
	c.OnFail = func(c *Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, ErrReset) {
		t.Fatalf("fail err = %v, want ErrReset (closed port)", failErr)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	// Drive the receive path directly with out-of-order segments.
	e := newEnv(t, 0)
	var got bytes.Buffer
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { got.Write(data) }
	})
	c := e.cs.Dial(serverAddr, 80)
	var sc *Conn
	c.OnConnect = func(cc *Conn) {}
	e.sim.Run() // complete handshake
	// Find the server-side conn.
	for _, conn := range e.ss.conns {
		sc = conn
	}
	if sc == nil || sc.State() != StateEstablished {
		t.Fatalf("no established server conn")
	}
	base := sc.rcvNxt
	sc.ingestData(base+5, []byte("world"))
	if got.Len() != 0 {
		t.Fatal("out-of-order data delivered early")
	}
	sc.ingestData(base, []byte("hello"))
	if got.String() != "helloworld" {
		t.Fatalf("got %q", got.String())
	}
}

func TestDuplicateDataTrimmed(t *testing.T) {
	e := newEnv(t, 0)
	var got bytes.Buffer
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { got.Write(data) }
	})
	c := e.cs.Dial(serverAddr, 80)
	_ = c
	e.sim.Run()
	var sc *Conn
	for _, conn := range e.ss.conns {
		sc = conn
	}
	base := sc.rcvNxt
	sc.ingestData(base, []byte("abcdef"))
	sc.ingestData(base, []byte("abcdef"))   // exact duplicate
	sc.ingestData(base+3, []byte("defghi")) // overlapping
	if got.String() != "abcdefghi" {
		t.Fatalf("got %q", got.String())
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	e := newEnv(t, 0)
	e.ss.Listen(80, func(c *Conn) {})
	seen := map[uint16]bool{}
	for i := 0; i < 50; i++ {
		c := e.cs.Dial(serverAddr, 80)
		if seen[c.LocalPort()] {
			t.Fatalf("port %d reused", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestAbortSendsRST(t *testing.T) {
	e := newEnv(t, time.Millisecond)
	var serverFail error
	e.ss.Listen(80, func(c *Conn) {
		c.OnFail = func(c *Conn, err error) { serverFail = err }
	})
	c := e.cs.Dial(serverAddr, 80)
	c.OnConnect = func(c *Conn) { c.Abort() }
	e.sim.Run()
	if !errors.Is(serverFail, ErrReset) {
		t.Fatalf("server fail = %v, want ErrReset", serverFail)
	}
	if c.State() != StateClosed {
		t.Fatalf("client state = %v", c.State())
	}
}

func TestTTLOverrideOnConn(t *testing.T) {
	e := newEnv(t, 0)
	var ttls []uint8
	e.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil {
			ttls = append(ttls, pkt.IP.TTL)
		}
	})
	e.ss.Listen(80, func(c *Conn) {})
	c := e.cs.Dial(serverAddr, 80)
	c.TTL = 10
	c.OnConnect = func(c *Conn) { c.Send([]byte("x")) }
	e.sim.Run()
	if len(ttls) < 2 {
		t.Fatalf("segments seen: %d", len(ttls))
	}
	// First segment (SYN) used the default TTL; later ones use 10 (-1 hop).
	for _, ttl := range ttls[1:] {
		if ttl != 9 {
			t.Fatalf("ttl = %v, want 9 after one hop", ttl)
		}
	}
}

func TestListenTwiceFails(t *testing.T) {
	e := newEnv(t, 0)
	if err := e.ss.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.ss.Listen(80, func(c *Conn) {}); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	e.ss.CloseListener(80)
	if err := e.ss.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatal("re-listen after close failed")
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "established" || !strings.Contains(State(99).String(), "99") {
		t.Fatal("state names wrong")
	}
}

func BenchmarkConnectSendClose(b *testing.B) {
	e := newEnv(b, 0)
	e.ss.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn, data []byte) { c.Send(data) }
	})
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		c := e.cs.Dial(serverAddr, 80)
		c.OnConnect = func(c *Conn) { c.Send(payload) }
		c.OnData = func(c *Conn, data []byte) {
			if !done {
				done = true
				c.Close()
			}
		}
		e.sim.Run()
	}
}

func TestTransferSurvivesLossySeeds(t *testing.T) {
	// Property-style: for several RNG seeds, a multi-segment transfer over
	// a 20%-loss path must still arrive intact via retransmission.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 400) // 6400 bytes
	for seed := int64(1); seed <= 6; seed++ {
		sim := netsim.NewSim(seed)
		client := netsim.NewHost(sim, "client", clientAddr)
		server := netsim.NewHost(sim, "server", serverAddr)
		router := netsim.NewRouter(sim, "r", r1Addr, 2)
		lc := netsim.AttachHost(sim, client, router, 0, time.Millisecond)
		ls := netsim.AttachHost(sim, server, router, 1, time.Millisecond)
		lc.Loss = 0.2
		ls.Loss = 0.2
		router.AddRoute(netip.PrefixFrom(clientAddr, 32), 0)
		router.SetDefaultRoute(1)
		cs, ss := NewStack(client), NewStack(server)
		cs.MaxRetries, ss.MaxRetries = 30, 30
		var got bytes.Buffer
		ss.Listen(80, func(c *Conn) {
			c.OnData = func(c *Conn, data []byte) { got.Write(data) }
		})
		var failErr error
		c := cs.Dial(serverAddr, 80)
		c.OnConnect = func(c *Conn) { c.Send(payload) }
		c.OnFail = func(c *Conn, err error) { failErr = err }
		sim.Run()
		if failErr != nil {
			t.Fatalf("seed %d: connection failed: %v", seed, failErr)
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("seed %d: transfer corrupted (%d/%d bytes)", seed, got.Len(), len(payload))
		}
	}
}
