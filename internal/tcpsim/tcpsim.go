// Package tcpsim implements TCP endpoints over the simulated network:
// three-way handshake, ordered data delivery with out-of-order buffering,
// FIN/RST teardown, and timer-based retransmission with bounded retries.
//
// The API is event-driven (callbacks rather than blocking reads) because the
// whole lab runs in virtual time on one goroutine. Application protocols
// (HTTP, SMTP) are small state machines on top of Conn.
//
// Censorship becomes observable here: an injected RST aborts the connection
// (OnReset), and a blackholed path exhausts the SYN retransmission budget
// (OnFail), which is exactly the evidence the measurement techniques in
// internal/core collect.
package tcpsim

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

// MSS is the maximum segment payload the stack emits.
const MSS = 1460

// Stack defaults.
const (
	defaultRTO        = 200 * time.Millisecond
	defaultMaxRetries = 3
	timeWaitDelay     = time.Second
)

// State is a TCP connection state.
type State int

// Connection states (subset of RFC 793).
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{"closed", "listen", "syn-sent", "syn-rcvd",
	"established", "fin-wait-1", "fin-wait-2", "close-wait", "last-ack", "time-wait"}

// String returns the lowercase state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Errors surfaced through Conn.OnFail.
var (
	ErrTimeout = errors.New("tcpsim: connection timed out")
	ErrReset   = errors.New("tcpsim: connection reset by peer")
)

// Stack manages all TCP state for one host. Creating a stack installs it as
// the host's TCP dispatcher.
type Stack struct {
	host *netsim.Host
	sim  *netsim.Sim

	listeners map[uint16]func(*Conn)
	conns     map[packet.Flow]*Conn
	ignored   map[uint16]bool
	nextPort  uint16

	// RTO is the retransmission timeout; MaxRetries bounds retransmissions
	// of any one segment before the connection fails.
	RTO        time.Duration
	MaxRetries int
}

// NewStack creates a stack bound to h and installs its dispatcher.
func NewStack(h *netsim.Host) *Stack {
	s := &Stack{
		host:      h,
		sim:       h.Sim(),
		listeners: make(map[uint16]func(*Conn)),
		conns:     make(map[packet.Flow]*Conn),
		ignored:   make(map[uint16]bool),
		nextPort:  32768,
		RTO:       defaultRTO, MaxRetries: defaultMaxRetries,
	}
	h.TCPDispatch = func(_ *netsim.Host, pkt *packet.Packet) { s.dispatch(pkt) }
	return s
}

// Host returns the host the stack is bound to.
func (s *Stack) Host() *netsim.Host { return s.host }

// Listen installs an accept callback for a local port. The callback runs
// when a peer completes the handshake.
func (s *Stack) Listen(port uint16, accept func(*Conn)) error {
	if _, ok := s.listeners[port]; ok {
		return fmt.Errorf("tcpsim: port %d already listening", port)
	}
	s.listeners[port] = accept
	return nil
}

// Close removes a listener; established connections continue.
func (s *Stack) CloseListener(port uint16) { delete(s.listeners, port) }

// ephemeralPort allocates the next client port.
func (s *Stack) ephemeralPort() uint16 {
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		probe := packet.Flow{Proto: packet.ProtoTCP, Src: s.host.Addr, SrcPort: p}
		inUse := false
		for f := range s.conns {
			if f.Src == probe.Src && f.SrcPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

// Dial opens a connection to (dst, port). Callbacks on the returned Conn
// fire as the handshake progresses; set them before the simulator runs.
func (s *Stack) Dial(dst netip.Addr, port uint16) *Conn {
	c := s.newConn(packet.Flow{
		Proto: packet.ProtoTCP,
		Src:   s.host.Addr, SrcPort: s.ephemeralPort(),
		Dst: dst, DstPort: port,
	})
	c.state = StateSynSent
	c.sndNxt = c.iss + 1
	c.sendSegment(c.iss, packet.TCPSyn, nil, true)
	return c
}

func (s *Stack) newConn(flow packet.Flow) *Conn {
	c := &Conn{
		stack: s,
		flow:  flow,
		iss:   uint32(s.sim.Rand().Int63()),
		ooo:   make(map[uint32][]byte),
	}
	c.sndUna = c.iss
	s.conns[flow] = c
	return c
}

// IgnorePort makes the stack stay silent for segments to a local port —
// no RST, no state. Raw-socket responders (the stateful-mimicry server)
// claim ports this way and handle them via sniffers.
func (s *Stack) IgnorePort(port uint16) { s.ignored[port] = true }

// dispatch routes an incoming segment to its connection or listener.
func (s *Stack) dispatch(pkt *packet.Packet) {
	t := pkt.TCP
	if s.ignored[t.DstPort] {
		return
	}
	flow := packet.Flow{
		Proto: packet.ProtoTCP,
		Src:   s.host.Addr, SrcPort: t.DstPort,
		Dst: pkt.IP.Src, DstPort: t.SrcPort,
	}
	if c, ok := s.conns[flow]; ok {
		c.handle(pkt)
		return
	}
	if accept, ok := s.listeners[t.DstPort]; ok && t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck == 0 {
		c := s.newConn(flow)
		c.accept = accept
		c.state = StateSynRcvd
		c.rcvNxt = t.Seq + 1
		c.sndNxt = c.iss + 1
		c.sendSegment(c.iss, packet.TCPSyn|packet.TCPAck, nil, true)
		return
	}
	// No connection, no listener: answer like an OS (RST unless RST).
	if t.Flags&packet.TCPRst == 0 {
		s.sendRST(pkt)
	}
}

// sendRST answers an unexpected segment with a reset.
func (s *Stack) sendRST(pkt *packet.Packet) {
	t := pkt.TCP
	rst := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort}
	if t.Flags&packet.TCPAck != 0 {
		rst.Seq = t.Ack
		rst.Flags = packet.TCPRst
	} else {
		rst.Ack = t.Seq + segLen(t)
		rst.Flags = packet.TCPRst | packet.TCPAck
	}
	raw, err := packet.BuildTCP(s.host.Addr, pkt.IP.Src, packet.DefaultTTL, rst)
	if err == nil {
		s.host.SendIP(raw)
	}
}

// segLen is the sequence-space length of a segment.
func segLen(t *packet.TCP) uint32 {
	n := uint32(len(t.Payload))
	if t.Flags&packet.TCPSyn != 0 {
		n++
	}
	if t.Flags&packet.TCPFin != 0 {
		n++
	}
	return n
}

// seqLT is modular sequence comparison: a < b.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ is modular sequence comparison: a <= b.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// pendingSeg is an unacknowledged segment awaiting ACK or retransmission.
type pendingSeg struct {
	seq     uint32
	flags   uint8
	payload []byte
	tries   int
}

// Conn is one TCP connection. All callbacks are optional.
type Conn struct {
	stack *Stack
	flow  packet.Flow // Src is the local endpoint
	state State

	accept func(*Conn) // listener callback, server side

	iss    uint32
	sndUna uint32
	sndNxt uint32
	rcvNxt uint32

	rtxq       []pendingSeg
	timerArmed bool
	ooo        map[uint32][]byte // out-of-order segments by seq

	// OnConnect fires when the handshake completes (both sides).
	OnConnect func(*Conn)
	// OnData fires for each chunk of in-order application data.
	OnData func(*Conn, []byte)
	// OnClose fires on orderly shutdown (FIN exchanged both ways).
	OnClose func(*Conn)
	// OnFail fires when the connection dies abnormally; err is ErrReset for
	// an incoming RST (e.g. injected by a censor) or ErrTimeout when the
	// retransmission budget is exhausted (e.g. blackholed path).
	OnFail func(*Conn, error)

	// TTL overrides the IP TTL on outgoing segments when nonzero. The
	// stateful-mimicry measurement server uses this to TTL-limit replies.
	TTL uint8

	failed bool
	closed bool
}

// Flow returns the connection 5-tuple from the local perspective.
func (c *Conn) Flow() packet.Flow { return c.flow }

// State returns the current connection state.
func (c *Conn) State() State { return c.state }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.flow.SrcPort }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() netip.Addr { return c.flow.Dst }

// ttl returns the TTL for outgoing segments.
func (c *Conn) ttl() uint8 {
	if c.TTL != 0 {
		return c.TTL
	}
	return packet.DefaultTTL
}

// sendSegment transmits a segment and optionally tracks it for
// retransmission.
func (c *Conn) sendSegment(seq uint32, flags uint8, payload []byte, reliable bool) {
	t := &packet.TCP{
		SrcPort: c.flow.SrcPort, DstPort: c.flow.DstPort,
		Seq: seq, Flags: flags, Window: 65535, Payload: payload,
	}
	if flags&packet.TCPAck != 0 {
		t.Ack = c.rcvNxt
	}
	raw, err := packet.BuildTCP(c.flow.Src, c.flow.Dst, c.ttl(), t)
	if err != nil {
		return
	}
	c.stack.host.SendIP(raw)
	if reliable && segLen(t) > 0 {
		c.rtxq = append(c.rtxq, pendingSeg{seq: seq, flags: flags, payload: payload})
		c.armTimer()
	}
}

func (c *Conn) armTimer() {
	if c.timerArmed || len(c.rtxq) == 0 {
		return
	}
	c.timerArmed = true
	c.stack.sim.Schedule(c.stack.RTO, c.onTimer)
}

func (c *Conn) onTimer() {
	c.timerArmed = false
	if c.failed || c.closed || len(c.rtxq) == 0 {
		return
	}
	seg := &c.rtxq[0]
	seg.tries++
	if seg.tries > c.stack.MaxRetries {
		c.fail(ErrTimeout)
		return
	}
	// Retransmit the earliest unacked segment. ACK flag state may have
	// advanced; re-send with the current rcvNxt when the original had ACK.
	c.sendSegment(seg.seq, seg.flags, seg.payload, false)
	c.timerArmed = true
	c.stack.sim.Schedule(c.stack.RTO, c.onTimer)
}

// Send queues application data, segmenting at MSS.
func (c *Conn) Send(data []byte) {
	if c.failed || c.closed {
		return
	}
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		chunk := append([]byte(nil), data[:n]...)
		c.sendSegment(c.sndNxt, packet.TCPPsh|packet.TCPAck, chunk, true)
		c.sndNxt += uint32(n)
		data = data[n:]
	}
}

// Close starts an orderly shutdown (sends FIN).
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		return
	}
	c.sendSegment(c.sndNxt, packet.TCPFin|packet.TCPAck, nil, true)
	c.sndNxt++
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(c.sndNxt, packet.TCPRst, nil, false)
	c.teardown()
}

func (c *Conn) teardown() {
	c.state = StateClosed
	c.rtxq = nil
	delete(c.stack.conns, c.flow)
}

func (c *Conn) fail(err error) {
	if c.failed {
		return
	}
	c.failed = true
	c.teardown()
	if c.OnFail != nil {
		c.OnFail(c, err)
	}
}

// ackedThrough removes retransmission entries fully acknowledged by ack.
func (c *Conn) ackedThrough(ack uint32) {
	i := 0
	for ; i < len(c.rtxq); i++ {
		seg := c.rtxq[i]
		end := seg.seq + uint32(len(seg.payload))
		if seg.flags&packet.TCPSyn != 0 || seg.flags&packet.TCPFin != 0 {
			end++
		}
		if !seqLEQ(end, ack) {
			break
		}
	}
	c.rtxq = c.rtxq[i:]
}

// handle processes one incoming segment for this connection.
func (c *Conn) handle(pkt *packet.Packet) {
	t := pkt.TCP

	if t.Flags&packet.TCPRst != 0 {
		// Accept RSTs in window (simplified: matching rcvNxt or any during
		// handshake). Censors rely on exactly this behaviour.
		c.fail(ErrReset)
		return
	}

	switch c.state {
	case StateSynSent:
		if t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck != 0 && t.Ack == c.iss+1 {
			c.rcvNxt = t.Seq + 1
			c.sndUna = t.Ack
			c.ackedThrough(t.Ack)
			c.state = StateEstablished
			c.sendSegment(c.sndNxt, packet.TCPAck, nil, false)
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
		}
		return
	case StateSynRcvd:
		if t.Flags&packet.TCPAck != 0 && t.Ack == c.iss+1 {
			c.sndUna = t.Ack
			c.ackedThrough(t.Ack)
			c.state = StateEstablished
			if c.accept != nil {
				c.accept(c)
			}
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
			// Fall through to process any data piggybacked on the ACK.
		} else {
			return
		}
	}

	if t.Flags&packet.TCPAck != 0 {
		if seqLT(c.sndUna, t.Ack) && seqLEQ(t.Ack, c.sndNxt) {
			c.sndUna = t.Ack
			c.ackedThrough(t.Ack)
			switch c.state {
			case StateFinWait1:
				if c.sndUna == c.sndNxt {
					c.state = StateFinWait2
				}
			case StateLastAck:
				if c.sndUna == c.sndNxt {
					c.finishClose()
					return
				}
			}
		}
	}

	if len(t.Payload) > 0 {
		c.ingestData(t.Seq, t.Payload)
	}

	if t.Flags&packet.TCPFin != 0 && t.Seq == c.rcvNxt {
		c.rcvNxt++
		c.sendSegment(c.sndNxt, packet.TCPAck, nil, false)
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
			// Mirror the orderly close: the application layer in this lab
			// always closes promptly, so send our FIN too.
			c.Close()
		case StateFinWait1:
			c.state = StateLastAck // simultaneous close, simplified
		case StateFinWait2:
			c.state = StateTimeWait
			c.stack.sim.Schedule(timeWaitDelay, c.finishClose)
		}
	}
}

func (c *Conn) finishClose() {
	if c.failed || c.closed {
		return
	}
	c.closed = true
	c.teardown()
	if c.OnClose != nil {
		c.OnClose(c)
	}
}

// ingestData delivers in-order bytes and buffers out-of-order segments.
func (c *Conn) ingestData(seq uint32, payload []byte) {
	if seqLT(seq, c.rcvNxt) {
		// Duplicate or partially old; trim the overlap.
		skip := c.rcvNxt - seq
		if uint32(len(payload)) <= skip {
			c.sendSegment(c.sndNxt, packet.TCPAck, nil, false)
			return
		}
		payload = payload[skip:]
		seq = c.rcvNxt
	}
	if seq != c.rcvNxt {
		c.ooo[seq] = append([]byte(nil), payload...)
		c.sendSegment(c.sndNxt, packet.TCPAck, nil, false) // dup-ack
		return
	}
	c.rcvNxt += uint32(len(payload))
	if c.OnData != nil {
		c.OnData(c, payload)
	}
	// Drain any now-contiguous out-of-order data.
	for {
		next, ok := c.ooo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.ooo, c.rcvNxt)
		c.rcvNxt += uint32(len(next))
		if c.OnData != nil {
			c.OnData(c, next)
		}
	}
	c.sendSegment(c.sndNxt, packet.TCPAck, nil, false)
}
