package censorlogs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	cfg := Config{Users: 30, Duration: time.Hour, ReqPerUser: 20, Sites: 50,
		CensoredFrac: 0.1, CensoredReqProb: 0.05, Seed: 9}
	in := Generate(cfg)
	var buf bytes.Buffer
	n, err := WriteTo(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	out, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("entries: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].User != in[i].User || out[i].Site != in[i].Site ||
			out[i].Category != in[i].Category || out[i].Action != in[i].Action {
			t.Fatalf("entry %d: %+v vs %+v", i, out[i], in[i])
		}
		// Timestamps survive to millisecond precision.
		d := out[i].Time - in[i].Time
		if d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("entry %d time drift %v", i, d)
		}
	}
	// Analysis gives identical aggregate results either way.
	a, b := Analyze(in), Analyze(out)
	if a.TotalDenied != b.TotalDenied || a.UsersWithDenial != b.UsersWithDenial {
		t.Fatalf("analysis drift: %+v vs %+v", a, b)
	}
}

func TestReadFromSkipsCommentsAndBlank(t *testing.T) {
	text := "# device export\n\n0.500\t3\tsite01.test\tgeneral\tallow\n"
	out, err := ReadFrom(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].User != 3 || out[0].Action != ActionAllow {
		t.Fatalf("entries: %+v", out)
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := []string{
		"notanumber\t1\ts\tc\tallow\n",
		"1.0\t-2\ts\tc\tallow\n",
		"1.0\t1\ts\tc\tmaybe\n",
		"1.0\t1\ts\tallow\n", // 4 fields
	}
	for _, c := range cases {
		if _, err := ReadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
		if _, err := ReadFrom(strings.NewReader(c)); err != nil && !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error lacks line number: %v", err)
		}
	}
}
