// Package censorlogs generates and analyzes censorship-device logs in the
// style of the leaked Syrian Blue Coat logs analyzed by Chaabane et al.
// (IMC 2014), which the paper uses for one load-bearing number: over two
// days, 1.57 % of the user population accessed at least one censored site —
// far too many people for a surveillance system to chase by simply alarming
// on every censored request (§2.2).
//
// The generator reproduces that workload: a Zipf-popularity site catalog
// with a censored subset, per-user browsing volume, and a calibration
// helper that turns a target "fraction of users with at least one censored
// hit" into a per-request probability.
package censorlogs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Action is the device's decision for one request.
type Action int

// Log actions.
const (
	ActionAllow Action = iota
	ActionDeny
)

// String returns "allow" or "deny".
func (a Action) String() string {
	if a == ActionDeny {
		return "deny"
	}
	return "allow"
}

// Entry is one log line.
type Entry struct {
	Time     time.Duration // offset into the capture
	User     int           // anonymized user id
	Site     string
	Category string // device content category
	Action   Action
}

// Config parameterizes the generator.
type Config struct {
	Users        int
	Duration     time.Duration // the leak covered 2 days
	ReqPerUser   int           // mean requests per user over Duration
	Sites        int           // catalog size
	CensoredFrac float64       // fraction of catalog censored
	// CensoredReqProb is the per-request probability of landing on a
	// censored site. Use CalibrateReqProb to hit a target user fraction.
	CensoredReqProb float64
	Seed            int64
}

// DefaultConfig mirrors the Syrian leak's shape: two days, a campus-scale
// population, calibrated to the paper's 1.57 %.
func DefaultConfig() Config {
	cfg := Config{
		Users:        21000, // the paper's campus population
		Duration:     48 * time.Hour,
		ReqPerUser:   220,
		Sites:        5000,
		CensoredFrac: 0.02,
		Seed:         1,
	}
	cfg.CensoredReqProb = CalibrateReqProb(0.0157, cfg.ReqPerUser)
	return cfg
}

// CalibrateReqProb inverts P(user has >=1 censored hit) = 1-(1-p)^reqs for
// p, so the generated logs reproduce a target user fraction.
func CalibrateReqProb(targetUserFrac float64, reqPerUser int) float64 {
	if targetUserFrac <= 0 || targetUserFrac >= 1 || reqPerUser <= 0 {
		return 0
	}
	return 1 - math.Pow(1-targetUserFrac, 1/float64(reqPerUser))
}

// categories a Blue Coat-style device stamps on denials.
var denyCategories = []string{"social-media", "news-politics", "proxy-avoidance", "video", "instant-messaging"}

// Generate produces the synthetic log, sorted by time.
func Generate(cfg Config) []Entry {
	rng := rand.New(rand.NewSource(cfg.Seed))
	catalog := make([]string, cfg.Sites)
	censoredCount := int(float64(cfg.Sites) * cfg.CensoredFrac)
	for i := range catalog {
		if i < censoredCount {
			catalog[i] = fmt.Sprintf("censored%04d.test", i)
		} else {
			catalog[i] = fmt.Sprintf("site%04d.test", i)
		}
	}
	var out []Entry
	for u := 0; u < cfg.Users; u++ {
		// Poisson-ish spread: +-25% of the mean.
		n := cfg.ReqPerUser
		if n > 3 {
			n = n - n/4 + rng.Intn(n/2+1)
		}
		for r := 0; r < n; r++ {
			e := Entry{
				Time: time.Duration(rng.Int63n(int64(cfg.Duration))),
				User: u,
			}
			if rng.Float64() < cfg.CensoredReqProb {
				e.Site = catalog[rng.Intn(max(censoredCount, 1))]
				e.Category = denyCategories[rng.Intn(len(denyCategories))]
				e.Action = ActionDeny
			} else {
				// Zipf-ish popularity over the uncensored tail.
				idx := censoredCount + zipfIndex(rng, cfg.Sites-censoredCount)
				e.Site = catalog[idx]
				e.Category = "general"
				e.Action = ActionAllow
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// zipfIndex samples an index in [0, n) with approximately 1/(i+1) weights.
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF of the continuous 1/x density on [1, n+1).
	u := rng.Float64()
	x := math.Pow(float64(n+1), u)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Report is the analyzer's output — the §2.2 numbers.
type Report struct {
	TotalRequests   int
	TotalDenied     int
	Users           int
	UsersWithDenial int
	// UserDenialFraction is the paper's 1.57 % statistic.
	UserDenialFraction float64
	DeniedByCategory   map[string]int
	TopDeniedSites     []SiteCount
}

// SiteCount is one (site, denials) pair.
type SiteCount struct {
	Site  string
	Count int
}

// Analyze computes the report over a log.
func Analyze(entries []Entry) Report {
	rep := Report{DeniedByCategory: make(map[string]int)}
	users := make(map[int]bool)
	denied := make(map[int]bool)
	siteDenials := make(map[string]int)
	for _, e := range entries {
		rep.TotalRequests++
		users[e.User] = true
		if e.Action == ActionDeny {
			rep.TotalDenied++
			denied[e.User] = true
			rep.DeniedByCategory[e.Category]++
			siteDenials[e.Site]++
		}
	}
	rep.Users = len(users)
	rep.UsersWithDenial = len(denied)
	if rep.Users > 0 {
		rep.UserDenialFraction = float64(rep.UsersWithDenial) / float64(rep.Users)
	}
	for site, n := range siteDenials {
		rep.TopDeniedSites = append(rep.TopDeniedSites, SiteCount{site, n})
	}
	sort.Slice(rep.TopDeniedSites, func(i, j int) bool {
		if rep.TopDeniedSites[i].Count != rep.TopDeniedSites[j].Count {
			return rep.TopDeniedSites[i].Count > rep.TopDeniedSites[j].Count
		}
		return rep.TopDeniedSites[i].Site < rep.TopDeniedSites[j].Site
	})
	if len(rep.TopDeniedSites) > 10 {
		rep.TopDeniedSites = rep.TopDeniedSites[:10]
	}
	return rep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
