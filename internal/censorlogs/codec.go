package censorlogs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Text codec for the device-log format, modeled on the Blue Coat SG lines
// in the Syrian leak: tab-separated
//
//	<offset-seconds> <user-id> <site> <category> <allow|deny>
//
// The analyzer can therefore run over exported files, not just in-memory
// slices — the workflow Chaabane et al. actually had.

// WriteTo serializes entries, one line each. Returns bytes written.
func WriteTo(w io.Writer, entries []Entry) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range entries {
		c, err := fmt.Fprintf(bw, "%.3f\t%d\t%s\t%s\t%s\n",
			e.Time.Seconds(), e.User, e.Site, e.Category, e.Action)
		if err != nil {
			return n, err
		}
		n += int64(c)
	}
	return n, bw.Flush()
}

// ReadFrom parses a log previously written with WriteTo. Malformed lines
// produce an error naming the line number.
func ReadFrom(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("censorlogs: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("censorlogs: line %d: bad timestamp %q", lineNo, fields[0])
		}
		user, err := strconv.Atoi(fields[1])
		if err != nil || user < 0 {
			return nil, fmt.Errorf("censorlogs: line %d: bad user %q", lineNo, fields[1])
		}
		var action Action
		switch fields[4] {
		case "allow":
			action = ActionAllow
		case "deny":
			action = ActionDeny
		default:
			return nil, fmt.Errorf("censorlogs: line %d: bad action %q", lineNo, fields[4])
		}
		out = append(out, Entry{
			Time:     time.Duration(secs * float64(time.Second)),
			User:     user,
			Site:     fields[2],
			Category: fields[3],
			Action:   action,
		})
	}
	return out, sc.Err()
}
