package censorlogs

import (
	"math"
	"testing"
	"time"
)

func TestCalibrateReqProbInverts(t *testing.T) {
	for _, target := range []float64{0.0157, 0.05, 0.5} {
		for _, reqs := range []int{10, 220, 1000} {
			p := CalibrateReqProb(target, reqs)
			got := 1 - math.Pow(1-p, float64(reqs))
			if math.Abs(got-target) > 1e-9 {
				t.Fatalf("target %v reqs %d: round-trip %v", target, reqs, got)
			}
		}
	}
	if CalibrateReqProb(0, 10) != 0 || CalibrateReqProb(1.5, 10) != 0 || CalibrateReqProb(0.5, 0) != 0 {
		t.Fatal("degenerate inputs not zero")
	}
}

func TestSyriaFractionReproduced(t *testing.T) {
	// The headline §2.2 number: ~1.57% of users touch censored content in
	// two days of logs.
	cfg := DefaultConfig()
	cfg.Users = 21000
	entries := Generate(cfg)
	rep := Analyze(entries)
	if rep.Users != cfg.Users {
		t.Fatalf("users = %d", rep.Users)
	}
	if math.Abs(rep.UserDenialFraction-0.0157) > 0.004 {
		t.Fatalf("user denial fraction = %.4f, want ~0.0157", rep.UserDenialFraction)
	}
	// 1.57%% of 21000 is ~330 users — "far too many to pursue".
	if rep.UsersWithDenial < 200 || rep.UsersWithDenial > 500 {
		t.Fatalf("users with denial = %d", rep.UsersWithDenial)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{
		Users: 100, Duration: time.Hour, ReqPerUser: 50,
		Sites: 200, CensoredFrac: 0.1, CensoredReqProb: 0.01, Seed: 7,
	}
	entries := Generate(cfg)
	if len(entries) < 100*38 || len(entries) > 100*63 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Sorted by time, inside the window.
	for i := 1; i < len(entries); i++ {
		if entries[i].Time < entries[i-1].Time {
			t.Fatal("not sorted")
		}
	}
	for _, e := range entries {
		if e.Time < 0 || e.Time >= cfg.Duration {
			t.Fatalf("time out of range: %v", e.Time)
		}
		if (e.Action == ActionDeny) != (e.Category != "general") {
			t.Fatalf("category/action mismatch: %+v", e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Users: 50, Duration: time.Hour, ReqPerUser: 20, Sites: 100,
		CensoredFrac: 0.1, CensoredReqProb: 0.05, Seed: 3}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lens differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestAnalyzeCategoriesAndTopSites(t *testing.T) {
	entries := []Entry{
		{User: 1, Site: "censored0001.test", Category: "social-media", Action: ActionDeny},
		{User: 1, Site: "censored0001.test", Category: "social-media", Action: ActionDeny},
		{User: 2, Site: "censored0002.test", Category: "news-politics", Action: ActionDeny},
		{User: 3, Site: "site0100.test", Category: "general", Action: ActionAllow},
	}
	rep := Analyze(entries)
	if rep.TotalRequests != 4 || rep.TotalDenied != 3 {
		t.Fatalf("totals: %+v", rep)
	}
	if rep.UsersWithDenial != 2 || rep.Users != 3 {
		t.Fatalf("users: %+v", rep)
	}
	if rep.DeniedByCategory["social-media"] != 2 {
		t.Fatalf("categories: %v", rep.DeniedByCategory)
	}
	if len(rep.TopDeniedSites) != 2 || rep.TopDeniedSites[0].Site != "censored0001.test" {
		t.Fatalf("top sites: %v", rep.TopDeniedSites)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.UserDenialFraction != 0 || rep.TotalRequests != 0 {
		t.Fatalf("empty: %+v", rep)
	}
}

func TestActionString(t *testing.T) {
	if ActionAllow.String() != "allow" || ActionDeny.String() != "deny" {
		t.Fatal("action names")
	}
}

func BenchmarkGenerateTwoDays(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Users = 2100 // 10% scale for the bench loop
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		entries := Generate(cfg)
		rep := Analyze(entries)
		if rep.Users == 0 {
			b.Fatal("no users")
		}
	}
}
