package archival

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeArchive(t *testing.T, path string, f Format, obs []Observation) {
	t.Helper()
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	w := NewWriter(file, f)
	w.WriteObservations(obs)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func countObs(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f, TailStrict, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			return n
		} else if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		n++
	}
}

func TestRepairBothFormats(t *testing.T) {
	obs := []Observation{
		{Run: 1, Type: TypeVerdict, Technique: "spam", Scenario: "open", Seed: 1, Name: "censored"},
		{Run: 1, Type: TypeTruth, Technique: "spam", Scenario: "open", Seed: 1, Flag: true},
		{Run: 2, Type: TypeVerdict, Technique: "spam", Scenario: "open", Trial: 1, Seed: 2, Name: "accessible"},
	}
	for i := range obs {
		obs[i].SetID()
	}
	for _, f := range []Format{FormatJSONL, FormatBinary} {
		path := filepath.Join(t.TempDir(), "archive")
		writeArchive(t, path, f, obs)

		// Clean file: Repair is a no-op.
		if truncated, err := Repair(path); err != nil || truncated {
			t.Fatalf("%v clean: truncated=%v err=%v", f, truncated, err)
		}
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Tear the tail at several depths; Repair must restore a strict-
		// readable file holding the first two records.
		for _, cut := range []int{1, 3, 7} {
			if cut >= len(full) {
				continue
			}
			if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			truncated, err := Repair(path)
			if err != nil {
				t.Fatalf("%v cut %d: %v", f, cut, err)
			}
			if !truncated {
				t.Fatalf("%v cut %d: no truncation reported", f, cut)
			}
			if n := countObs(t, path); n != 2 {
				t.Fatalf("%v cut %d: %d records after repair, want 2", f, cut, n)
			}
		}
	}
}

func TestRepairMissingFileIsClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent")
	if truncated, err := Repair(path); err != nil || truncated {
		t.Fatalf("truncated=%v err=%v", truncated, err)
	}
	off, torn, err := CleanPrefix(path)
	if off != 0 || torn || err != nil {
		t.Fatalf("off=%d torn=%v err=%v", off, torn, err)
	}
}

func TestCleanPrefixRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "archive.jsonl")
	if err := os.WriteFile(path, []byte("{\"run\":\"1\",\"type\":\"verdict\"}\n{bad\n{\"run\":\"2\",\"type\":\"verdict\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CleanPrefix(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestCleanPrefixAppendResumes(t *testing.T) {
	// The repaired offset must be a valid append point: write, tear, repair,
	// append, and the result reads back whole.
	o1 := Observation{Run: 5, Type: TypeVerdict, Technique: "spam", Scenario: "open", Seed: 3}
	o1.SetID()
	o2 := Observation{Run: 6, Type: TypeVerdict, Technique: "spam", Scenario: "open", Trial: 1, Seed: 4}
	o2.SetID()
	for _, f := range []Format{FormatJSONL, FormatBinary} {
		path := filepath.Join(t.TempDir(), "archive")
		writeArchive(t, path, f, []Observation{o1, o2})
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, full[:len(full)-2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Repair(path); err != nil {
			t.Fatal(err)
		}
		file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var w Writer
		if f == FormatBinary {
			w = NewBinaryAppender(file)
		} else {
			w = NewJSONLWriter(file)
		}
		w.WriteObservations([]Observation{o2})
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		file.Close()
		if n := countObs(t, path); n != 2 {
			t.Fatalf("%v: %d records after repair+append, want 2", f, n)
		}
		var buf bytes.Buffer
		bw := NewWriter(&buf, f)
		bw.WriteObservations([]Observation{o1, o2})
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("%v: repaired+appended file differs from a clean write", f)
		}
	}
}
