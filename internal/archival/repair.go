package archival

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// CleanPrefix scans an observation file and returns the byte offset where
// its valid record stream ends — the length of the prefix an appender can
// safely build on. torn reports whether bytes past that offset exist (a
// trailing record a killed writer left half-written). Corruption before the
// final record is an error: that is file damage, not an interrupted append.
// A missing file is a zero-length clean prefix.
func CleanPrefix(path string) (offset int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, false, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, false, err
	}
	br := bufio.NewReaderSize(f, scanBuf)
	head, _ := br.Peek(len(Magic))
	if string(head) == Magic {
		offset, err = cleanBinaryPrefix(br)
	} else {
		endsNL := false
		if size > 0 {
			var last [1]byte
			if _, err := f.ReadAt(last[:], size-1); err != nil {
				return 0, false, err
			}
			endsNL = last[0] == '\n'
		}
		offset, err = cleanJSONLPrefix(br, endsNL)
	}
	if err != nil {
		return 0, false, fmt.Errorf("%s: %w", path, err)
	}
	return offset, offset < size, nil
}

// cleanBinaryPrefix walks frames, advancing the offset past each decodable
// record. A frame the stream ends inside is the torn tail; a frame that
// decodes to garbage is corruption.
func cleanBinaryPrefix(br *bufio.Reader) (int64, error) {
	if _, err := br.Discard(len(Magic)); err != nil {
		return 0, err
	}
	offset := int64(len(Magic))
	var scratch [binary.MaxVarintLen64]byte
	for {
		length, err := binary.ReadUvarint(br)
		switch err {
		case nil:
		case io.EOF:
			return offset, nil
		case io.ErrUnexpectedEOF:
			return offset, nil // torn inside the length prefix
		default:
			return 0, fmt.Errorf("%w: bad record length: %v", ErrBadBinary, err)
		}
		if length > MaxBinaryRecord {
			return 0, fmt.Errorf("%w: record length %d exceeds %d", ErrBadBinary, length, MaxBinaryRecord)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, nil // torn inside the payload
		}
		if _, err := DecodeObservation(payload); err != nil {
			// An undecodable but complete frame only counts as a torn tail
			// if nothing follows it.
			if _, peekErr := br.Peek(1); peekErr == io.EOF {
				return offset, nil
			}
			return 0, err
		}
		offset += int64(binary.PutUvarint(scratch[:], length)) + int64(length)
	}
}

// cleanJSONLPrefix advances past decodable lines; an undecodable final line
// is the torn tail, an undecodable earlier line is corruption. The newline
// is the framing: a final line without one is torn even when its bytes
// happen to be valid JSON (a truncated record can be), so endsNL — whether
// the file's last byte is '\n' — decides whether the last line counts.
func cleanJSONLPrefix(br *bufio.Reader, endsNL bool) (int64, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, scanBuf), scanMax)
	var offset, lastAdvance int64
	line, badLine := 0, 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if badLine != 0 {
			// Only blanks may follow a torn line; data after it means the
			// damage is not a trailing partial write.
			if len(bytes.TrimSpace(b)) != 0 {
				return 0, fmt.Errorf("archival: jsonl line %d: undecodable before end of file", badLine)
			}
			continue
		}
		if len(bytes.TrimSpace(b)) != 0 && !json.Valid(b) {
			badLine = line
			continue // the clean prefix ends before this line
		}
		lastAdvance = int64(len(b)) + 1
		offset += lastAdvance
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if badLine == 0 && !endsNL && lastAdvance > 0 {
		offset -= lastAdvance // unframed final line: torn, not clean
	}
	return offset, nil
}

// Repair truncates a torn trailing record off an observation file in place,
// returning whether anything was cut. The file is left ending exactly at
// its clean record prefix, so appending resumes on a record boundary.
func Repair(path string) (bool, error) {
	offset, torn, err := CleanPrefix(path)
	if err != nil {
		return false, err
	}
	if !torn {
		return false, nil
	}
	if err := os.Truncate(path, offset); err != nil {
		return false, err
	}
	return true, nil
}
