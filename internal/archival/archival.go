// Package archival is the engine's unified flat data format: every
// sub-measurement a campaign produces — a verdict, a retry-attempt count, a
// spoofed cover flow, a packet-path trace event, a risk evaluation, an error
// — is one self-describing Observation row carrying a unique observation ID
// plus its parent run ID and full cell identity (technique, scenario,
// impairment, trial, seed). A campaign file therefore unpacks losslessly
// into tabular observations that any downstream tool can join, filter, and
// aggregate without knowing the record shapes of the layers that wrote them
// (websteps' flat archival format is the model).
//
// Two encodings share the schema:
//
//   - JSONL: one JSON object per line, the interchange form. Human-greppable
//     and append-friendly; a torn trailing line (a writer killed mid-append)
//     is tolerated by the readers.
//   - Binary: a magic header followed by length-prefixed records with a
//     field-presence bitmap and varint integers — several times smaller and
//     faster to decode than JSONL at millions-of-records scale.
//
// The package also hosts the ONE shared JSONL reader/writer implementation
// (Sink, DecodeJSONL) that the campaign sink, the resume reader, and the
// measured service stream all build on, so torn-trailing-line tolerance
// lives in exactly one place.
package archival

import (
	"hash/fnv"
	"strconv"
)

// Observation types. Each run record decomposes into rows of these types;
// every row of a run shares the run's identity columns, so any subset of
// rows still joins back to its run.
const (
	// TypeVerdict is the run's measurement outcome: Name is the verdict,
	// Detail the censorship mechanism, Dst the target, Value the virtual
	// elapsed milliseconds, Flag whether the verdict matched ground truth.
	TypeVerdict = "verdict"
	// TypeTruth carries the scenario's ground truth: Flag is whether the
	// scenario really censors the target.
	TypeTruth = "truth"
	// TypeStealth marks the technique family: Flag is true for stealth
	// (cover-traffic) techniques.
	TypeStealth = "stealth"
	// TypeAttempt is the retry ledger: Count is how many probe attempts the
	// retry policy consumed.
	TypeAttempt = "attempt"
	// TypeProbe counts measurement probes sent: Count.
	TypeProbe = "probe"
	// TypeCover counts spoofed cover packets sent: Count.
	TypeCover = "cover"
	// TypeCoverAddr is one spoofed cover source address: Seq orders them,
	// Name is the address.
	TypeCoverAddr = "cover-addr"
	// TypeEvidence is one evidence string from the measurement: Seq orders
	// them, Detail is the text.
	TypeEvidence = "evidence"
	// TypeRisk is the analyst-side risk evaluation: Value is the suspicion
	// score, Count the analyst alerts, Flag whether the measurer was flagged.
	TypeRisk = "risk"
	// TypeAttribution is the attribution outcome: Value is the attribution
	// entropy (bits), Count the implicated users, Flag whether the MVR
	// retained measurer metadata.
	TypeAttribution = "attribution"
	// TypeError marks a failed run: Detail is the error text.
	TypeError = "error"
	// TypeTrace is one packet-path event from the run's trace ring: Seq
	// orders events, T is virtual nanoseconds, Name the event kind, Src/Dst
	// the endpoints, Detail the event payload.
	TypeTrace = "trace"
	// TypePacket is one captured datagram from a pcap-style capture: Seq
	// orders packets, T is virtual nanoseconds, Src/Dst the addresses when
	// parsable, Count the datagram length in bytes.
	TypePacket = "packet"
)

// Observation is one flat archival row. The identity columns (Run,
// Technique, Scenario, Impairment, Trial, Seed) repeat on every row so each
// row is self-describing; the payload columns (Seq..Flag) are a small union
// that every observation type draws from, zero values omitted on the wire.
//
// ID and Run are content-derived (see ObservationID and RunID), not
// writer-assigned: the same run always flattens to the same rows with the
// same IDs no matter which worker, file, or process wrote them — the
// determinism contract the rest of the repo already keeps for records.
type Observation struct {
	// ID uniquely identifies this observation; it is derived from
	// (Run, Type, Seq), so it is stable across files and write orders.
	ID uint64 `json:"id,string"`
	// Run links the observation to its parent run: the FNV-1a hash of the
	// run's cell identity (campaign.CellKey). Rendered as a string in JSON
	// so 64-bit values survive tools that read numbers as float64.
	Run uint64 `json:"run,string"`
	// Type says what kind of sub-measurement this row is (Type* constants).
	Type string `json:"type"`

	// Cell identity, flattened onto every row.
	Technique  string `json:"technique"`
	Scenario   string `json:"scenario"`
	Impairment string `json:"impairment,omitempty"`
	// Behavior names the adversarial censor-behavior preset the run's
	// censor carried (omitted for the faithful censor, mirroring
	// Impairment's omitted-pristine convention).
	Behavior string `json:"behavior,omitempty"`
	Trial    int    `json:"trial"`
	Seed     int64  `json:"seed"`

	// Payload columns; each type uses a subset.
	Seq    int     `json:"seq,omitempty"`
	T      int64   `json:"t,omitempty"`
	Name   string  `json:"name,omitempty"`
	Src    string  `json:"src,omitempty"`
	Dst    string  `json:"dst,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Count  int64   `json:"count,omitempty"`
	Flag   bool    `json:"flag,omitempty"`
	// Confidence is the corroboration agreement fraction on verdict rows
	// (0 when the run was not corroborated).
	Confidence float64 `json:"confidence,omitempty"`
}

// RunID derives the parent-run identifier from a run's cell identity — the
// same coordinates as campaign.CellKey, hashed with FNV-1a 64 over an
// unambiguous rendering. Equal cells hash equal everywhere; the pristine
// impairment and the faithful censor behavior must be canonicalized to ""
// by the caller (the record form). The behavior field is appended at the
// END of the hash and only when non-empty, so runs against the faithful
// censor keep the run IDs they had before the behavior axis existed.
func RunID(technique, scenario, impairment, behavior string, trial int, seed int64) uint64 {
	h := fnv.New64a()
	writeField := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeField(technique)
	writeField(scenario)
	writeField(impairment)
	writeField(strconv.Itoa(trial))
	writeField(strconv.FormatInt(seed, 10))
	if behavior != "" {
		writeField(behavior)
	}
	return h.Sum64()
}

// ObservationID derives a row's unique ID from its parent run, type, and
// sequence number. Within one run every row has a distinct (type, seq)
// pair, so IDs are unique per run and — run IDs being cell hashes — unique
// per campaign file.
func ObservationID(run uint64, typ string, seq int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(run >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(typ))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(seq)))
	return h.Sum64()
}

// SetID fills the content-derived ID of an observation in place, from its
// Run, Type, and Seq columns.
func (o *Observation) SetID() { o.ID = ObservationID(o.Run, o.Type, o.Seq) }
