package archival

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randObservation builds a pseudorandom observation; sparse zero fields are
// part of the space (the wire format omits them).
func randObservation(rng *rand.Rand) Observation {
	strOrEmpty := func(s string) string {
		if rng.Intn(3) == 0 {
			return ""
		}
		return s
	}
	o := Observation{
		Run:        rng.Uint64(),
		Type:       strOrEmpty(fmt.Sprintf("type-%d", rng.Intn(8))),
		Technique:  strOrEmpty("spoofed-dns"),
		Scenario:   strOrEmpty("keyword-rst"),
		Impairment: strOrEmpty("lossy20"),
		Behavior:   strOrEmpty("intermittent"),
		Trial:      rng.Intn(1000),
		Seed:       rng.Int63() - rng.Int63(),
		Seq:        rng.Intn(100),
		T:          rng.Int63() - rng.Int63(),
		Name:       strOrEmpty("probe-sent"),
		Src:        strOrEmpty("10.0.0.1"),
		Dst:        strOrEmpty("198.51.100.7"),
		Detail:     strOrEmpty(strings.Repeat("x", rng.Intn(40))),
		Value:      float64(rng.Intn(1000)) / 7,
		Count:      int64(rng.Intn(1 << 20)),
		Flag:       rng.Intn(2) == 0,
		Confidence: float64(rng.Intn(5)) / 5,
	}
	o.SetID()
	return o
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		want := randObservation(rng)
		frame := AppendObservation(nil, &want)
		// Strip the length prefix by reading through the stream reader.
		var buf bytes.Buffer
		buf.WriteString(Magic)
		buf.Write(frame)
		r, err := NewReader(&buf, TailStrict, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("obs %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("obs %d: want EOF, got %v", i, err)
		}
	}
}

func TestBinaryRoundTripEdgeValues(t *testing.T) {
	for _, want := range []Observation{
		{},
		{Seed: math.MinInt64, T: math.MaxInt64, Count: math.MinInt64},
		{ID: math.MaxUint64, Run: math.MaxUint64},
		{Value: math.Inf(-1)},
		{Value: math.Copysign(0, -1)}, // negative zero: non-zero bits, zero value
		{Flag: true},
	} {
		frame := AppendObservation(nil, &want)
		length, n := frameLength(frame)
		got, err := DecodeObservation(frame[n : n+length])
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		// -0.0 encodes as absent (== 0), decoding to +0.0: the one
		// documented lossy corner. Everything else is exact.
		if math.Signbit(want.Value) && want.Value == 0 {
			want.Value = 0
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

// frameLength decodes the uvarint length prefix of a frame.
func frameLength(frame []byte) (int, int) {
	var l uint64
	var shift uint
	for i, b := range frame {
		l |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return int(l), i + 1
		}
		shift += 7
	}
	panic("bad frame")
}

func TestJSONLBinaryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	obs := make([]Observation, 100)
	for i := range obs {
		obs[i] = randObservation(rng)
	}
	var jb, bb bytes.Buffer
	jw := NewJSONLWriter(&jb)
	bw := NewBinaryWriter(&bb)
	jw.WriteObservations(obs)
	bw.WriteObservations(obs)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if jw.Count() != len(obs) || bw.Count() != len(obs) {
		t.Fatalf("counts: jsonl %d binary %d, want %d", jw.Count(), bw.Count(), len(obs))
	}
	read := func(buf *bytes.Buffer) []Observation {
		r, err := NewReader(buf, TailStrict, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []Observation
		for {
			o, err := r.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o)
		}
	}
	fromJSON := read(&jb)
	fromBin := read(&bb)
	if !reflect.DeepEqual(fromJSON, obs) {
		t.Fatal("jsonl round trip diverged")
	}
	if !reflect.DeepEqual(fromBin, obs) {
		t.Fatal("binary round trip diverged")
	}
}

func TestReaderSniffsFormats(t *testing.T) {
	o := Observation{Run: 42, Type: TypeVerdict, Technique: "spam", Scenario: "open", Seed: 1}
	o.SetID()

	var jb, bb bytes.Buffer
	writeOneJSONL(t, &jb, o)
	bw := NewBinaryWriter(&bb)
	bw.WriteObservations([]Observation{o})
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		buf  *bytes.Buffer
		want Format
	}{{&jb, FormatJSONL}, {&bb, FormatBinary}} {
		r, err := NewReader(bytes.NewReader(tc.buf.Bytes()), TailStrict, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Format() != tc.want {
			t.Fatalf("sniffed %v, want %v", r.Format(), tc.want)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, o) {
			t.Fatalf("got %+v want %+v", got, o)
		}
	}
}

// writeOneJSONL writes one observation as JSONL and flushes.
func writeOneJSONL(t *testing.T, buf *bytes.Buffer, o Observation) {
	t.Helper()
	w := NewJSONLWriter(buf)
	w.WriteObservations([]Observation{o})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderToleratesTornJSONLTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	o1 := Observation{Run: 1, Type: TypeVerdict, Technique: "spam", Scenario: "open", Seed: 1}
	o1.SetID()
	w.WriteObservations([]Observation{o1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"id":"12","run":"3","type":"verd`) // live append in flight

	r, err := NewReader(bytes.NewReader(buf.Bytes()), TailTolerate, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []Observation
	for {
		o, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, o)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], o1) {
		t.Fatalf("got %+v", got)
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", r.Skipped())
	}

	// The same stream errors under TailStrict.
	rs, err := NewReader(bytes.NewReader(buf.Bytes()), TailStrict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err == nil || err == io.EOF {
		t.Fatal("strict reader accepted a torn tail")
	}
}

func TestReaderRejectsMidStreamCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	o := Observation{Run: 1, Type: TypeVerdict, Scenario: "open", Seed: 1}
	o.SetID()
	w.WriteObservations([]Observation{o})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	stream := good[:len(good)/2] + "\n" + good // torn line followed by data

	r, err := NewReader(strings.NewReader(stream), TailTolerate, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("tolerant reader accepted mid-stream corruption")
		}
		if err != nil {
			break // the expected outcome
		}
	}
}

func TestReaderToleratesTornBinaryTail(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	o1 := Observation{Run: 9, Type: TypeTrace, Technique: "spam", Scenario: "open", Seed: 4, Seq: 3}
	o1.SetID()
	o2 := o1
	o2.Seq = 4
	o2.SetID()
	bw.WriteObservations([]Observation{o1, o2})
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Chop bytes off the tail: every truncation point inside the final
	// record must yield exactly o1 plus one tolerated skip.
	lastLen := len(AppendObservation(nil, &o2))
	for cut := 1; cut < lastLen; cut++ {
		r, err := NewReader(bytes.NewReader(full[:len(full)-cut]), TailTolerate, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, o1) {
			t.Fatalf("cut %d: got %+v", cut, got)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("cut %d: want tolerated EOF, got %v", cut, err)
		}
		if r.Skipped() != 1 {
			t.Fatalf("cut %d: skipped = %d, want 1", cut, r.Skipped())
		}

		// Strict mode refuses the same wreckage.
		rs, err := NewReader(bytes.NewReader(full[:len(full)-cut]), TailStrict, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Next(); err != nil {
			t.Fatalf("cut %d strict first: %v", cut, err)
		}
		if _, err := rs.Next(); err == nil || err == io.EOF {
			t.Fatalf("cut %d: strict reader accepted a torn binary tail", cut)
		}
	}
}

func TestDecodeJSONLResumeSemantics(t *testing.T) {
	type rec struct {
		A int `json:"a"`
	}
	// Clean stream.
	recs, truncAt, err := ReadAllJSONL[rec](strings.NewReader("{\"a\":1}\n{\"a\":2}\n"), TailTolerate, nil)
	if err != nil || truncAt != -1 || len(recs) != 2 {
		t.Fatalf("clean: recs=%v truncAt=%d err=%v", recs, truncAt, err)
	}
	// Torn tail: offset points at the start of the bad line.
	warned := 0
	recs, truncAt, err = ReadAllJSONL[rec](strings.NewReader("{\"a\":1}\n{\"a\":"), TailTolerate,
		func(line int, err error) {
			warned++
			if line != 2 {
				t.Fatalf("warn line = %d, want 2", line)
			}
		})
	if err != nil || len(recs) != 1 || truncAt != 8 || warned != 1 {
		t.Fatalf("torn: recs=%v truncAt=%d warned=%d err=%v", recs, truncAt, warned, err)
	}
	// Mid-stream corruption errors even under TailTolerate.
	if _, _, err = ReadAllJSONL[rec](strings.NewReader("{\"a\":\nok\n"), TailTolerate, nil); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
	// Strict mode rejects the torn tail outright.
	if _, _, err = ReadAllJSONL[rec](strings.NewReader("{\"a\":1}\n{\"a\":"), TailStrict, nil); err == nil {
		t.Fatal("strict accepted a torn tail")
	}
}

func TestRunIDDeterministicAndDistinct(t *testing.T) {
	a := RunID("spam", "open", "", "", 3, 42)
	if a != RunID("spam", "open", "", "", 3, 42) {
		t.Fatal("RunID not deterministic")
	}
	// The separator must keep adjacent fields from gluing together.
	if RunID("spam", "open", "", "", 3, 42) == RunID("spamopen", "", "", "", 3, 42) {
		t.Fatal("RunID field boundary ambiguous")
	}
	if RunID("a", "b", "c", "", 1, 2) == RunID("a", "b", "c", "", 1, 3) {
		t.Fatal("RunID ignores seed")
	}
	// The behavior column contributes only when non-empty, so faithful-censor
	// runs keep the run IDs they had before the behavior axis existed.
	if RunID("a", "b", "c", "intermittent", 1, 2) == RunID("a", "b", "c", "", 1, 2) {
		t.Fatal("RunID ignores behavior")
	}
	if ObservationID(a, TypeVerdict, 0) == ObservationID(a, TypeVerdict, 1) {
		t.Fatal("ObservationID ignores seq")
	}
	if ObservationID(a, TypeVerdict, 0) == ObservationID(a, TypeTruth, 0) {
		t.Fatal("ObservationID ignores type")
	}
}

func TestSinkSyncEveryCounts(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.SetSyncEvery(2)
	o := Observation{Run: 1, Type: TypeVerdict}
	for i := 0; i < 5; i++ {
		w.WriteObservations([]Observation{o})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d, want 5", w.Count())
	}
	if got := bytes.Count(buf.Bytes(), []byte{'\n'}); got != 5 {
		t.Fatalf("lines = %d, want 5", got)
	}
}

func TestDecodeObservationRejectsGarbage(t *testing.T) {
	for _, payload := range [][]byte{
		{},                 // no bitmap
		{0xff, 0xff, 0xff}, // truncated uvarint bitmap
		{0x80, 0x80, 0x08}, // unknown bit 17 set
		{0x04, 0x05, 'a'},  // type string longer than payload
		{0x01, 0x07, 0x99}, // trailing bytes after id
	} {
		if _, err := DecodeObservation(payload); err == nil {
			t.Fatalf("payload %v accepted", payload)
		}
	}
}
