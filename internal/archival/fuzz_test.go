package archival

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzDecodeObservation hammers the binary payload decoder with arbitrary
// bytes: it must never panic, and anything it accepts must re-encode and
// re-decode to the same observation (the decoder and encoder agree on the
// meaning of every accepted payload).
func FuzzDecodeObservation(f *testing.F) {
	seedObs := []Observation{
		{},
		{Run: 1, Type: TypeVerdict, Technique: "spoofed-dns", Scenario: "keyword-rst",
			Trial: 3, Seed: -42, Name: "censored", Value: 1.5, Flag: true},
		{ID: 1<<64 - 1, Run: 1<<64 - 1, Seed: -1 << 62, T: 1 << 62, Count: -7,
			Detail: "x", Src: "10.0.0.1", Dst: "10.0.0.2", Impairment: "lossy20", Seq: 99},
	}
	for i := range seedObs {
		frame := AppendObservation(nil, &seedObs[i])
		length, n := frameLength(frame)
		f.Add(frame[n : n+length])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		o, err := DecodeObservation(payload)
		if err != nil {
			return
		}
		frame := AppendObservation(nil, &o)
		length, n := frameLength(frame)
		o2, err := DecodeObservation(frame[n : n+length])
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		// NaN values compare unequal to themselves; bit-identity is still
		// required, which DeepEqual on the bit-copied struct checks once the
		// floats are canonicalized.
		if o.Value != o.Value && o2.Value != o2.Value {
			o.Value, o2.Value = 0, 0
		}
		if !reflect.DeepEqual(o, o2) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", o2, o)
		}
	})
}

// FuzzReaderBinary feeds arbitrary byte streams to the streaming binary
// reader: no panics, no unbounded allocation (MaxBinaryRecord bounds each
// record), and a tolerant reader must terminate on every input.
func FuzzReaderBinary(f *testing.F) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	o := Observation{Run: 7, Type: TypeTrace, Scenario: "open", Seq: 1}
	o.SetID()
	w.WriteObservations([]Observation{o, o})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tail := range []TailPolicy{TailStrict, TailTolerate} {
			r, err := NewReader(bytes.NewReader(data), tail, nil)
			if err != nil {
				continue
			}
			for i := 0; i < 1<<16; i++ {
				if _, err := r.Next(); err != nil {
					break
				}
			}
		}
	})
}

// FuzzReaderJSONL feeds arbitrary text to the streaming JSONL reader; the
// torn-tail lookahead must terminate and never panic.
func FuzzReaderJSONL(f *testing.F) {
	f.Add([]byte("{\"id\":\"1\",\"run\":\"2\",\"type\":\"verdict\"}\n"))
	f.Add([]byte("{\"id\":\"1\"}\n{\"id\":"))
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), TailTolerate, nil)
		if err != nil {
			return
		}
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && r.Skipped() > 1 {
					t.Fatalf("tolerated more than one torn tail: %d", r.Skipped())
				}
				break
			}
		}
	})
}
