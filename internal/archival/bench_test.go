package archival

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// benchObservations builds a realistic mixed workload: the row shapes a
// flattened campaign file actually contains.
func benchObservations(n int) []Observation {
	rng := rand.New(rand.NewSource(1))
	techniques := []string{"direct", "vpn-relay", "spoofed-dns"}
	obs := make([]Observation, 0, n)
	for len(obs) < n {
		tech := techniques[rng.Intn(len(techniques))]
		run := RunID(tech, "keyword-rst", "lossy20", "", len(obs), int64(rng.Uint64()))
		rows := []Observation{
			{Run: run, Type: TypeVerdict, Name: "censored", Detail: "tcp-rst",
				Dst: "198.51.100.7:80", Value: 12.25, Flag: true},
			{Run: run, Type: TypeTruth, Flag: true},
			{Run: run, Type: TypeAttempt, Count: 2},
			{Run: run, Type: TypeProbe, Count: 5},
			{Run: run, Type: TypeRisk, Value: 3.5, Count: 2, Flag: true},
			{Run: run, Type: TypeTrace, Seq: 0, T: 1000, Name: "probe-sent",
				Src: "10.0.0.1", Dst: "198.51.100.7", Detail: "GET /"},
		}
		for i := range rows {
			rows[i].Technique = tech
			rows[i].Scenario = "keyword-rst"
			rows[i].Impairment = "lossy20"
			rows[i].Trial = len(obs)
			rows[i].Seed = int64(rng.Uint64() >> 1)
			rows[i].SetID()
			obs = append(obs, rows[i])
			if len(obs) == n {
				break
			}
		}
	}
	return obs
}

func encodeAll(b *testing.B, f Format, obs []Observation) *bytes.Buffer {
	b.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	w.WriteObservations(obs)
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return &buf
}

func benchEncode(b *testing.B, f Format) {
	obs := benchObservations(1000)
	encoded := encodeAll(b, f, obs)
	b.SetBytes(int64(encoded.Len()))
	b.ReportMetric(float64(encoded.Len())/float64(len(obs)), "B/obs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard, f)
		w.WriteObservations(obs)
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, f Format) {
	obs := benchObservations(1000)
	encoded := encodeAll(b, f, obs)
	b.SetBytes(int64(encoded.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(encoded.Bytes()), TailStrict, nil)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(obs) {
			b.Fatalf("decoded %d, want %d", n, len(obs))
		}
	}
}

func BenchmarkEncodeJSONL(b *testing.B)  { benchEncode(b, FormatJSONL) }
func BenchmarkEncodeBinary(b *testing.B) { benchEncode(b, FormatBinary) }
func BenchmarkDecodeJSONL(b *testing.B)  { benchDecode(b, FormatJSONL) }
func BenchmarkDecodeBinary(b *testing.B) { benchDecode(b, FormatBinary) }
