package archival

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic opens every binary observation file. The trailing newline makes an
// accidental `cat` of a binary file visibly non-JSONL from the first line.
const Magic = "SMOA1\n"

// MaxBinaryRecord bounds one encoded observation, so a corrupt length
// prefix cannot make a reader allocate unboundedly.
const MaxBinaryRecord = 1 << 20

// ErrBadBinary reports a structurally invalid binary observation.
var ErrBadBinary = errors.New("archival: malformed binary observation")

// Field-presence bits of the binary payload, in encoding order. A zero
// field is absent from the wire; Flag is presence-only (the bit IS the
// value).
const (
	bitID = 1 << iota
	bitRun
	bitType
	bitTechnique
	bitScenario
	bitImpairment
	bitTrial
	bitSeed
	bitSeq
	bitT
	bitName
	bitSrc
	bitDst
	bitDetail
	bitValue
	bitCount
	bitFlag
	bitBehavior
	bitConfidence

	bitsKnown = 1<<19 - 1
)

// AppendObservation appends o's binary frame (uvarint payload length +
// payload) to dst and returns the extended slice. The payload is a uvarint
// field-presence bitmap followed by the present fields in bit order:
// varints for integers (zigzag where signed), length-prefixed bytes for
// strings, 8 little-endian bytes for the float value.
func AppendObservation(dst []byte, o *Observation) []byte {
	var bitmap uint64
	set := func(bit uint64, present bool) {
		if present {
			bitmap |= bit
		}
	}
	set(bitID, o.ID != 0)
	set(bitRun, o.Run != 0)
	set(bitType, o.Type != "")
	set(bitTechnique, o.Technique != "")
	set(bitScenario, o.Scenario != "")
	set(bitImpairment, o.Impairment != "")
	set(bitTrial, o.Trial != 0)
	set(bitSeed, o.Seed != 0)
	set(bitSeq, o.Seq != 0)
	set(bitT, o.T != 0)
	set(bitName, o.Name != "")
	set(bitSrc, o.Src != "")
	set(bitDst, o.Dst != "")
	set(bitDetail, o.Detail != "")
	set(bitValue, o.Value != 0)
	set(bitCount, o.Count != 0)
	set(bitFlag, o.Flag)
	set(bitBehavior, o.Behavior != "")
	set(bitConfidence, o.Confidence != 0)

	payload := make([]byte, 0, 64)
	payload = binary.AppendUvarint(payload, bitmap)
	str := func(s string) {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	if bitmap&bitID != 0 {
		payload = binary.AppendUvarint(payload, o.ID)
	}
	if bitmap&bitRun != 0 {
		payload = binary.AppendUvarint(payload, o.Run)
	}
	if bitmap&bitType != 0 {
		str(o.Type)
	}
	if bitmap&bitTechnique != 0 {
		str(o.Technique)
	}
	if bitmap&bitScenario != 0 {
		str(o.Scenario)
	}
	if bitmap&bitImpairment != 0 {
		str(o.Impairment)
	}
	if bitmap&bitTrial != 0 {
		payload = binary.AppendUvarint(payload, uint64(o.Trial))
	}
	if bitmap&bitSeed != 0 {
		payload = binary.AppendVarint(payload, o.Seed)
	}
	if bitmap&bitSeq != 0 {
		payload = binary.AppendUvarint(payload, uint64(o.Seq))
	}
	if bitmap&bitT != 0 {
		payload = binary.AppendVarint(payload, o.T)
	}
	if bitmap&bitName != 0 {
		str(o.Name)
	}
	if bitmap&bitSrc != 0 {
		str(o.Src)
	}
	if bitmap&bitDst != 0 {
		str(o.Dst)
	}
	if bitmap&bitDetail != 0 {
		str(o.Detail)
	}
	if bitmap&bitValue != 0 {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(o.Value))
	}
	if bitmap&bitCount != 0 {
		payload = binary.AppendVarint(payload, o.Count)
	}
	// bitFlag carries its value in the bitmap itself.
	if bitmap&bitBehavior != 0 {
		str(o.Behavior)
	}
	if bitmap&bitConfidence != 0 {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(o.Confidence))
	}

	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeObservation decodes one binary payload (the bytes after the length
// prefix). The whole payload must be consumed; unknown bitmap bits and
// trailing bytes are errors, so encoder and decoder can never drift
// silently.
func DecodeObservation(payload []byte) (Observation, error) {
	var o Observation
	bitmap, n := binary.Uvarint(payload)
	if n <= 0 {
		return o, fmt.Errorf("%w: bad bitmap", ErrBadBinary)
	}
	if bitmap&^uint64(bitsKnown) != 0 {
		return o, fmt.Errorf("%w: unknown field bits %#x", ErrBadBinary, bitmap)
	}
	rest := payload[n:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated uvarint", ErrBadBinary)
		}
		rest = rest[n:]
		return v, nil
	}
	varint := func() (int64, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadBinary)
		}
		rest = rest[n:]
		return v, nil
	}
	str := func() (string, error) {
		l, err := uvarint()
		if err != nil {
			return "", err
		}
		if l > uint64(len(rest)) {
			return "", fmt.Errorf("%w: string length %d exceeds payload", ErrBadBinary, l)
		}
		s := string(rest[:l])
		rest = rest[l:]
		return s, nil
	}
	var err error
	if bitmap&bitID != 0 {
		if o.ID, err = uvarint(); err != nil {
			return o, err
		}
	}
	if bitmap&bitRun != 0 {
		if o.Run, err = uvarint(); err != nil {
			return o, err
		}
	}
	if bitmap&bitType != 0 {
		if o.Type, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitTechnique != 0 {
		if o.Technique, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitScenario != 0 {
		if o.Scenario, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitImpairment != 0 {
		if o.Impairment, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitTrial != 0 {
		v, err := uvarint()
		if err != nil {
			return o, err
		}
		if v > math.MaxInt {
			return o, fmt.Errorf("%w: trial overflows int", ErrBadBinary)
		}
		o.Trial = int(v)
	}
	if bitmap&bitSeed != 0 {
		if o.Seed, err = varint(); err != nil {
			return o, err
		}
	}
	if bitmap&bitSeq != 0 {
		v, err := uvarint()
		if err != nil {
			return o, err
		}
		if v > math.MaxInt {
			return o, fmt.Errorf("%w: seq overflows int", ErrBadBinary)
		}
		o.Seq = int(v)
	}
	if bitmap&bitT != 0 {
		if o.T, err = varint(); err != nil {
			return o, err
		}
	}
	if bitmap&bitName != 0 {
		if o.Name, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitSrc != 0 {
		if o.Src, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitDst != 0 {
		if o.Dst, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitDetail != 0 {
		if o.Detail, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitValue != 0 {
		if len(rest) < 8 {
			return o, fmt.Errorf("%w: truncated float", ErrBadBinary)
		}
		o.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	if bitmap&bitCount != 0 {
		if o.Count, err = varint(); err != nil {
			return o, err
		}
	}
	o.Flag = bitmap&bitFlag != 0
	if bitmap&bitBehavior != 0 {
		if o.Behavior, err = str(); err != nil {
			return o, err
		}
	}
	if bitmap&bitConfidence != 0 {
		if len(rest) < 8 {
			return o, fmt.Errorf("%w: truncated float", ErrBadBinary)
		}
		o.Confidence = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return o, fmt.Errorf("%w: %d trailing bytes", ErrBadBinary, len(rest))
	}
	return o, nil
}

// readBinary reads the next length-prefixed observation from br. io.EOF
// cleanly at a record boundary; io.ErrUnexpectedEOF when the stream ends
// mid-record (a torn tail).
func readBinary(br *bufio.Reader) (Observation, error) {
	length, err := binary.ReadUvarint(br)
	if err != nil {
		switch err {
		case io.EOF:
			return Observation{}, io.EOF
		case io.ErrUnexpectedEOF:
			return Observation{}, io.ErrUnexpectedEOF
		default: // varint overflow: framing corruption, not a torn tail
			return Observation{}, fmt.Errorf("%w: bad record length: %v", ErrBadBinary, err)
		}
	}
	if length > MaxBinaryRecord {
		return Observation{}, fmt.Errorf("%w: record length %d exceeds %d",
			ErrBadBinary, length, MaxBinaryRecord)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Observation{}, io.ErrUnexpectedEOF
	}
	return DecodeObservation(payload)
}
