package archival

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Format names an observation encoding.
type Format int

const (
	// FormatJSONL is the interchange form: one JSON object per line.
	FormatJSONL Format = iota
	// FormatBinary is the compact length-prefixed form behind Magic.
	FormatBinary
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "jsonl"
}

// FormatForPath picks the encoding a path conventionally carries: ".bin"
// (and ".smoa") mean binary, everything else JSONL.
func FormatForPath(path string) Format {
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".smoa") {
		return FormatBinary
	}
	return FormatJSONL
}

// Writer is the common surface of the two observation writers; both embed
// Sink, so SetSyncEvery/InstrumentSink/Count/Flush come along.
type Writer interface {
	// WriteObservations appends one run's rows atomically (contiguously).
	WriteObservations(obs []Observation)
	Count() int
	Flush() error
	SetSyncEvery(n int)
}

// JSONLWriter streams observations as JSONL through the shared Sink.
type JSONLWriter struct {
	Sink
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{}
	jw.Reset(w)
	return jw
}

// WriteObservations implements Writer. A campaign emits one batch per run,
// so the rows are encoded into pooled scratch and handed to the Sink as a
// single contiguous write, removing the per-row allocations that otherwise
// dominate the archive path under concurrent workers.
func (jw *JSONLWriter) WriteObservations(obs []Observation) {
	b := GetBatchBuf()
	enc := json.NewEncoder(b)
	for i := range obs {
		// Encoder.Encode emits json.Marshal's bytes plus '\n' — the same
		// framing as MarshalLine — without an intermediate allocation.
		if err := enc.Encode(&obs[i]); err != nil {
			jw.Fail(err)
			PutBatchBuf(b)
			return
		}
	}
	jw.WriteBatch(b.Bytes(), len(obs))
	PutBatchBuf(b)
}

// BinaryWriter streams observations in the binary encoding through the
// shared Sink. The magic header is written at construction (it reaches the
// underlying writer on the first flush).
type BinaryWriter struct {
	Sink
}

// NewBinaryWriter wraps w and stages the magic header.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := &BinaryWriter{}
	bw.Reset(w)
	bw.writeMagic()
	return bw
}

// NewBinaryAppender wraps a writer positioned after an existing file's
// magic header (the -resume append path): no new header is written.
func NewBinaryAppender(w io.Writer) *BinaryWriter {
	bw := &BinaryWriter{}
	bw.Reset(w)
	return bw
}

// writeMagic stages the file header without counting it as a record.
func (bw *BinaryWriter) writeMagic() {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	if _, err := bw.w.WriteString(Magic); err != nil && bw.err == nil {
		bw.err = err
	}
}

// rawBufs pools the byte slices the binary batch path appends into.
var rawBufs = sync.Pool{New: func() any { return new([]byte) }}

// WriteObservations implements Writer.
func (bw *BinaryWriter) WriteObservations(obs []Observation) {
	p := rawBufs.Get().(*[]byte)
	buf := (*p)[:0]
	for i := range obs {
		buf = AppendObservation(buf, &obs[i])
	}
	bw.WriteBatch(buf, len(obs))
	*p = buf
	rawBufs.Put(p)
}

// NewWriter builds the writer for an explicit format choice.
func NewWriter(w io.Writer, f Format) Writer {
	if f == FormatBinary {
		return NewBinaryWriter(w)
	}
	return NewJSONLWriter(w)
}

// Reader streams observations from either encoding in bounded memory,
// sniffing the format from the first bytes (the binary magic is not valid
// JSONL, so the sniff is unambiguous). Under TailTolerate a torn trailing
// record — a writer killed mid-append, or a live file still being appended
// to by a running campaign — is skipped and counted rather than treated as
// an error; Skipped reports how many. Corruption before the last record
// still errors under either policy.
type Reader struct {
	format  Format
	tail    TailPolicy
	br      *bufio.Reader // binary path
	sc      *bufio.Scanner
	line    int
	done    bool
	skipped int
	warn    func(line int, err error)
}

// NewReader sniffs r and prepares to stream observations from it. warn,
// when non-nil, is told about tolerated torn tails (line is 0 for binary
// streams, which have no line numbers).
func NewReader(r io.Reader, tail TailPolicy, warn func(line int, err error)) (*Reader, error) {
	br := bufio.NewReaderSize(r, scanBuf)
	head, err := br.Peek(len(Magic))
	rd := &Reader{tail: tail, warn: warn}
	if err == nil && string(head) == Magic {
		rd.format = FormatBinary
		if _, err := br.Discard(len(Magic)); err != nil {
			return nil, err
		}
		rd.br = br
		return rd, nil
	}
	rd.format = FormatJSONL
	rd.sc = bufio.NewScanner(br)
	rd.sc.Buffer(make([]byte, 0, scanBuf), scanMax)
	return rd, nil
}

// Format reports the sniffed encoding.
func (r *Reader) Format() Format { return r.format }

// Skipped reports how many torn trailing records were tolerated so far.
func (r *Reader) Skipped() int { return r.skipped }

// Next returns the next observation, or io.EOF at a clean (or tolerated)
// end of stream. After any non-nil error, including io.EOF, the reader is
// exhausted.
func (r *Reader) Next() (Observation, error) {
	if r.done {
		return Observation{}, io.EOF
	}
	if r.format == FormatBinary {
		return r.nextBinary()
	}
	return r.nextJSONL()
}

// nextBinary pulls one length-prefixed record.
func (r *Reader) nextBinary() (Observation, error) {
	o, err := readBinary(r.br)
	switch {
	case err == nil:
		return o, nil
	case err == io.EOF:
		r.done = true
		return Observation{}, io.EOF
	case err == io.ErrUnexpectedEOF && r.tail == TailTolerate:
		r.skipped++
		if r.warn != nil {
			r.warn(0, fmt.Errorf("archival: torn trailing binary record skipped"))
		}
		r.done = true
		return Observation{}, io.EOF
	case err == io.ErrUnexpectedEOF:
		r.done = true
		return Observation{}, fmt.Errorf("archival: truncated binary record: %w", io.ErrUnexpectedEOF)
	default:
		r.done = true
		return Observation{}, err
	}
}

// nextJSONL pulls one line, skipping blanks. An undecodable line is
// tolerated only when nothing but blanks follows it (the torn-tail shape);
// anything after it means mid-file corruption, an error under any policy.
func (r *Reader) nextJSONL() (Observation, error) {
	for r.sc.Scan() {
		r.line++
		b := r.sc.Bytes()
		if len(bytes.TrimSpace(b)) == 0 {
			continue
		}
		var o Observation
		err := json.Unmarshal(b, &o)
		if err == nil {
			return o, nil
		}
		badLine := r.line
		r.done = true
		if r.tail == TailStrict {
			return Observation{}, fmt.Errorf("archival: jsonl line %d: %w", badLine, err)
		}
		for r.sc.Scan() {
			r.line++
			if len(bytes.TrimSpace(r.sc.Bytes())) != 0 {
				return Observation{}, fmt.Errorf("archival: jsonl line %d: %w", badLine, err)
			}
		}
		if scErr := r.sc.Err(); scErr != nil {
			return Observation{}, scErr
		}
		r.skipped++
		if r.warn != nil {
			r.warn(badLine, err)
		}
		return Observation{}, io.EOF
	}
	r.done = true
	if err := r.sc.Err(); err != nil {
		return Observation{}, err
	}
	return Observation{}, io.EOF
}
