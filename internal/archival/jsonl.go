package archival

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"safemeasure/internal/telemetry"
)

// scanBuf/scanMax size the line scanner every JSONL reader shares: lines up
// to scanMax bytes are accepted, matching what the sinks can write.
const (
	scanBuf = 64 * 1024
	scanMax = 1 << 20
)

// MarshalLine renders v as one JSONL line, newline included — the single
// line-encoding implementation behind the campaign sink, the measured
// service stream, and the archival writers.
func MarshalLine(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// syncer is the optional durability hook of a sink's underlying writer —
// *os.File satisfies it; in-memory buffers simply skip the sync step.
type syncer interface{ Sync() error }

// Sink is the shared record-stream writer: a mutex-guarded bufio writer
// with whole-record writes, an every-N-records flush-and-fsync durability
// policy, and optional flush/sync telemetry. The campaign record and trace
// sinks and the archival observation writers all embed it; they differ only
// in how a record becomes bytes.
//
// Records are written whole under the lock, so a writer killed mid-stream
// leaves a valid prefix plus at most one torn trailing record — the exact
// wreckage the tolerant readers in this package repair.
type Sink struct {
	mu         sync.Mutex
	w          *bufio.Writer
	raw        io.Writer
	count      int
	err        error
	syncEvery  int
	sinceFlush int
	flushes    *telemetry.Counter
	syncs      *telemetry.Counter
}

// Reset points the sink at w; embedders call it from their constructors.
func (s *Sink) Reset(w io.Writer) {
	s.w, s.raw = bufio.NewWriter(w), w
}

// SetSyncEvery bounds how much a hard crash can lose: every n records the
// sink flushes its bufio layer and, when the underlying writer is a file,
// syncs it to stable storage. n <= 0 restores the default (buffer until
// Flush).
func (s *Sink) SetSyncEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncEvery = n
}

// InstrumentSink publishes flush/sync activity to reg under the given
// metric names, labeled {sink=name}.
func (s *Sink) InstrumentSink(reg *telemetry.Registry, flushMetric, syncMetric, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes = reg.Counter(telemetry.Labels(flushMetric, "sink", name))
	s.syncs = reg.Counter(telemetry.Labels(syncMetric, "sink", name))
}

// WriteRecords appends the already-encoded records (framing included)
// atomically: all of them land contiguously under one lock acquisition, and
// each counts toward the SetSyncEvery policy. The first I/O error is
// retained and reported by Flush; later writes after an error are dropped.
func (s *Sink) WriteRecords(raws ...[]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, raw := range raws {
		if s.err != nil {
			return
		}
		if _, err := s.w.Write(raw); err != nil {
			s.err = err
			return
		}
		s.wroteLocked()
	}
}

// WriteBatch appends one pre-encoded batch of n records (framing included)
// with a single write under one lock acquisition. Encoding a whole run's
// rows before taking the lock keeps concurrent workers' serialization work
// parallel; only the copy into the bufio layer is serialized. The batch
// lands contiguously (same torn-tail guarantee as WriteRecords) and each of
// the n records counts toward the SetSyncEvery policy.
func (s *Sink) WriteBatch(raw []byte, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return
	}
	for i := 0; i < n; i++ {
		s.wroteLocked()
	}
}

// Fail retains an error produced outside the lock (batch encoding); the
// first error wins, exactly like a write error.
func (s *Sink) Fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// batchBufs pools the scratch buffers batch writers encode into before
// handing the Sink one contiguous WriteBatch.
var batchBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBatchBuf returns an empty pooled buffer for staging one batch ahead of
// a WriteBatch call; pair it with PutBatchBuf once the batch is written.
func GetBatchBuf() *bytes.Buffer {
	b := batchBufs.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBatchBuf returns a staging buffer to the pool.
func PutBatchBuf(b *bytes.Buffer) { batchBufs.Put(b) }

// EncodeLines marshals each value as one JSONL line and appends the batch
// atomically. The first encoding or I/O error is retained; later writes are
// dropped.
func (s *Sink) EncodeLines(vals ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vals {
		if s.err != nil {
			return
		}
		raw, err := MarshalLine(v)
		if err != nil {
			s.err = err
			return
		}
		if _, err := s.w.Write(raw); err != nil {
			s.err = err
			return
		}
		s.wroteLocked()
	}
}

// wroteLocked accounts one written record and applies the SetSyncEvery
// policy.
func (s *Sink) wroteLocked() {
	s.count++
	s.sinceFlush++
	if s.syncEvery > 0 && s.sinceFlush >= s.syncEvery {
		s.flushLocked(true)
	}
}

// flushLocked drains the bufio layer and, when sync is set, pushes the
// bytes to stable storage if the underlying writer can. The first error is
// retained, poisoning later writes exactly like a write error.
func (s *Sink) flushLocked(sync bool) error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	s.flushes.Inc()
	s.sinceFlush = 0
	if sync {
		if f, ok := s.raw.(syncer); ok {
			if err := f.Sync(); err != nil {
				s.err = err
				return err
			}
			s.syncs.Inc()
		}
	}
	return nil
}

// Count returns how many records were written so far.
func (s *Sink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Flush drains buffers (syncing to stable storage when SetSyncEvery is
// active) and returns the first error the sink hit.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(s.syncEvery > 0)
}

// TailPolicy says what a reader does with a record it cannot decode.
type TailPolicy int

const (
	// TailStrict rejects any undecodable record: the file is expected to be
	// complete and intact.
	TailStrict TailPolicy = iota
	// TailTolerate skips an undecodable FINAL record — the normal wreckage
	// of a writer killed mid-append, or of reading a file a live writer is
	// still appending to — reporting it through the warn callback and the
	// truncate offset. Corruption anywhere before the last record still
	// aborts: that indicates real file damage, not an interrupted append.
	TailTolerate
)

// DecodeJSONL streams records of type T from a JSONL stream, calling fn for
// each. Empty lines are skipped. Under TailTolerate a bad final line is
// skipped (warn, when non-nil, is told which line and why) and truncateAt
// reports the byte offset where the torn tail begins — a caller that
// intends to APPEND to the underlying file must truncate it there first.
// truncateAt is -1 when the stream is clean. Offsets assume LF line
// endings, which is what Sink writes. A non-nil error from fn stops the
// scan and is returned verbatim.
func DecodeJSONL[T any](r io.Reader, tail TailPolicy, warn func(line int, err error), fn func(T) error) (truncateAt int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, scanBuf), scanMax)
	line := 0
	badLine := 0
	var off, badStart int64
	var badErr error
	for sc.Scan() {
		line++
		lineStart := off
		off += int64(len(sc.Bytes())) + 1
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			// The bad line has non-empty data after it, so it was not a
			// trailing partial write.
			return -1, fmt.Errorf("archival: jsonl line %d: %w", badLine, badErr)
		}
		var rec T
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			if tail == TailStrict {
				return -1, fmt.Errorf("archival: jsonl line %d: %w", line, err)
			}
			badLine, badErr, badStart = line, err, lineStart
			continue
		}
		if err := fn(rec); err != nil {
			return -1, err
		}
	}
	if err := sc.Err(); err != nil {
		return -1, err
	}
	if badErr != nil {
		if warn != nil {
			warn(badLine, badErr)
		}
		return badStart, nil
	}
	return -1, nil
}

// ReadAllJSONL collects every record DecodeJSONL yields.
func ReadAllJSONL[T any](r io.Reader, tail TailPolicy, warn func(line int, err error)) ([]T, int64, error) {
	var out []T
	truncateAt, err := DecodeJSONL(r, tail, warn, func(rec T) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, -1, err
	}
	return out, truncateAt, nil
}
