package netsim

import (
	"net/netip"
	"sort"
	"time"

	"safemeasure/internal/packet"
	"safemeasure/internal/telemetry"
)

// Verdict is a tap's decision about a datagram.
type Verdict int

// Tap verdicts. Only inline (censoring) taps may return Drop or Shape; the
// surveillance tap is passive and always passes.
const (
	Pass Verdict = iota
	Drop
	// Shape delays the datagram by TapPacket.Delay virtual nanoseconds
	// before forwarding it (a throttling middlebox). The router takes the
	// maximum Delay across taps; a Shape verdict with Delay == 0 forwards
	// normally. Delayed datagrams do not re-traverse the taps.
	Shape
)

// TapPacket is what a tap observes: the raw wire bytes plus a parse.
type TapPacket struct {
	Time   int64 // virtual nanoseconds (Sim.Now())
	Raw    []byte
	Pkt    *packet.Packet // nil if the datagram failed to parse
	InPort int
	// Delay is written by a tap returning Shape: how long the router holds
	// the datagram before forwarding. Reset by the router per datagram.
	Delay int64
}

// Tap observes datagrams traversing a router. The Injector lets a tap
// originate packets of its own (the censor's forged RSTs and DNS replies).
//
// tp and tp.Pkt are router-owned scratch, valid only for the duration of
// the Observe call: a tap that retains anything past its return must copy
// tp.Raw and re-Parse it. All in-tree taps either consume tp synchronously
// or copy what they keep.
type Tap interface {
	Observe(tp *TapPacket, inject Injector) Verdict
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(tp *TapPacket, inject Injector) Verdict

// Observe implements Tap.
func (f TapFunc) Observe(tp *TapPacket, inject Injector) Verdict { return f(tp, inject) }

// Injector sends a datagram into the network as if originated at the
// router's position (used for RST injection and DNS poisoning).
type Injector interface {
	Inject(raw []byte)
}

// route maps a destination prefix to an output port. For IPv4 prefixes the
// network and mask are precomputed as 32-bit words so lookup is two integer
// ops per route instead of a netip.Prefix.Contains call.
type route struct {
	prefix netip.Prefix
	net4   uint32
	mask4  uint32
	port   int
}

// addr4 packs a 4-byte address into a big-endian uint32.
func addr4(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Router forwards IPv4 datagrams between its ports using longest-prefix
// match, decrements TTL, emits ICMP Time Exceeded when TTL expires, and runs
// its taps in order on every forwarded datagram.
type Router struct {
	Name string
	Addr netip.Addr // source of ICMP errors this router generates
	sim  *Sim

	ports       []*Port
	routes      []route
	defaultPort int // -1 if none
	taps        []Tap

	// Stats.
	Forwarded   int
	TTLExpired  int
	TapDropped  int
	TapShaped   int
	NoRoute     int
	ParseFailed int

	// Telemetry handles, resolved once from sim.Tel at construction;
	// nil (telemetry disabled) costs one comparison per use.
	mForwarded, mTTLExpired, mTapDropped, mTapShaped, mNoRoute *telemetry.Counter

	// dec and tp are per-router scratch reused across forwards, so the
	// hot path decodes and observes without allocating. Taps only see tp
	// during Observe; see the Tap contract.
	dec packet.Decoder
	tp  TapPacket
}

// NewRouter creates a router with the given number of ports.
func NewRouter(sim *Sim, name string, addr netip.Addr, nports int) *Router {
	r := &Router{Name: name, Addr: addr, sim: sim, ports: make([]*Port, nports), defaultPort: -1}
	r.mForwarded = sim.Tel.Counter("netsim_forwarded_total")
	r.mTTLExpired = sim.Tel.Counter("netsim_ttl_expired_total")
	r.mTapDropped = sim.Tel.Counter("netsim_tap_dropped_total")
	r.mTapShaped = sim.Tel.Counter("netsim_tap_shaped_total")
	r.mNoRoute = sim.Tel.Counter("netsim_no_route_total")
	return r
}

// AttachPort binds a link port to port index i.
func (r *Router) AttachPort(i int, p *Port) { r.ports[i] = p }

// AddRoute installs prefix -> port. Longest prefix wins.
func (r *Router) AddRoute(prefix netip.Prefix, port int) {
	rt := route{prefix: prefix, port: port}
	if prefix.Addr().Is4() {
		rt.net4 = addr4(prefix.Masked().Addr())
		if bits := prefix.Bits(); bits > 0 {
			rt.mask4 = ^uint32(0) << (32 - bits)
		}
	} else {
		// Non-IPv4 prefixes never match the fast path (mask 0 with a
		// nonzero network can't be satisfied); Contains handles them.
		rt.net4, rt.mask4 = 1, 0
	}
	r.routes = append(r.routes, rt)
	sort.SliceStable(r.routes, func(i, j int) bool {
		return r.routes[i].prefix.Bits() > r.routes[j].prefix.Bits()
	})
}

// SetDefaultRoute installs the port used when no prefix matches.
func (r *Router) SetDefaultRoute(port int) { r.defaultPort = port }

// AddTap appends a tap; taps run in attachment order.
func (r *Router) AddTap(t Tap) { r.taps = append(r.taps, t) }

// lookup returns the output port for dst, or -1.
func (r *Router) lookup(dst netip.Addr) int {
	if dst.Is4() {
		d := addr4(dst)
		for i := range r.routes {
			if rt := &r.routes[i]; d&rt.mask4 == rt.net4 {
				return rt.port
			}
		}
		return r.defaultPort
	}
	for _, rt := range r.routes {
		if rt.prefix.Contains(dst) {
			return rt.port
		}
	}
	return r.defaultPort
}

// DeliverIP implements Endpoint: a datagram arrived on port in.
func (r *Router) DeliverIP(in int, raw []byte) {
	r.forward(in, raw, true)
}

// Inject implements Injector: originate a datagram at this router. Injected
// packets are routed but do not traverse the router's taps again (the
// middlebox that created them has already seen them), and their TTL is not
// decremented here.
func (r *Router) Inject(raw []byte) {
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(raw); err != nil {
		return
	}
	out := r.lookup(ip.Dst)
	if out < 0 || r.ports[out] == nil {
		r.NoRoute++
		r.mNoRoute.Inc()
		return
	}
	r.ports[out].Send(raw)
}

func (r *Router) forward(in int, raw []byte, runTaps bool) {
	wantTaps := runTaps && len(r.taps) > 0
	// One decode per hop, into router-owned scratch: the transport layer
	// is only parsed when a tap will look at it.
	ip, pkt := r.dec.Decode(raw, wantTaps)
	if ip == nil {
		r.ParseFailed++
		return
	}

	if wantTaps {
		tp := &r.tp
		tp.Time, tp.Raw, tp.Pkt, tp.InPort, tp.Delay = int64(r.sim.Now()), raw, pkt, in, 0
		var delay int64
		for _, t := range r.taps {
			switch t.Observe(tp, r) {
			case Drop:
				r.TapDropped++
				r.mTapDropped.Inc()
				if tr := r.sim.Trace; tr != nil {
					tr.Emit(int64(r.sim.Now()), telemetry.EvTapDrop,
						ip.Src.String(), ip.Dst.String(), r.Name)
				}
				return
			case Shape:
				if tp.Delay > delay {
					delay = tp.Delay
				}
			}
		}
		if delay > 0 {
			// Hold the datagram for the shaping delay, then forward it
			// without re-running the taps (the shaper already charged it).
			// The scratch decode is invalidated by the time the timer
			// fires, so the delayed path re-decodes from raw — which the
			// router owns outright once the caller's Send handed it over.
			r.TapShaped++
			r.mTapShaped.Inc()
			if tr := r.sim.Trace; tr != nil {
				tr.Emit(int64(r.sim.Now()), telemetry.EvTapShape,
					ip.Src.String(), ip.Dst.String(), r.Name)
			}
			r.sim.Schedule(time.Duration(delay), func() {
				r.forward(in, raw, false)
			})
			return
		}
	}

	if ip.TTL <= 1 {
		r.TTLExpired++
		r.mTTLExpired.Inc()
		if tr := r.sim.Trace; tr != nil {
			tr.Emit(int64(r.sim.Now()), telemetry.EvTTLExpiry,
				ip.Src.String(), ip.Dst.String(), r.Name)
		}
		r.sendTimeExceeded(ip, raw)
		return
	}

	out := r.lookup(ip.Dst)
	if out < 0 || r.ports[out] == nil {
		r.NoRoute++
		r.mNoRoute.Inc()
		return
	}

	// Decrement TTL and patch the header checksum in place: every frame in
	// the simulator is a canonical self-built datagram owned by exactly one
	// node at a time (Port.Send's no-reuse contract), so rewriting two
	// header bytes replaces a per-hop re-marshal allocation.
	if !packet.DecrementTTL(raw) {
		r.ParseFailed++
		return
	}
	r.Forwarded++
	r.mForwarded.Inc()
	r.ports[out].Send(raw)
}

// sendTimeExceeded emits ICMP Time Exceeded to the datagram's source,
// embedding the IP header + 8 payload bytes per RFC 792.
func (r *Router) sendTimeExceeded(ip *packet.IPv4, raw []byte) {
	if !r.Addr.IsValid() || isICMPError(ip, raw) {
		return // never ICMP-error about an ICMP error (RFC 1122 §3.2.2)
	}
	quote := raw
	maxQuote := ip.HeaderLen() + 8
	if len(quote) > maxQuote {
		quote = quote[:maxQuote]
	}
	msg := &packet.ICMP{Type: packet.ICMPTimeExceeded, Code: packet.ICMPCodeTTLExpired,
		Payload: append([]byte(nil), quote...)}
	out, err := packet.BuildICMP(r.Addr, ip.Src, packet.DefaultTTL, msg)
	if err != nil {
		return
	}
	r.Inject(out)
}

// isICMPError reports whether the datagram carries an ICMP *error* message
// (Destination Unreachable, Source Quench, Redirect, Time Exceeded,
// Parameter Problem). Per RFC 1122 §3.2.2 only those suppress further ICMP
// errors; informational messages like echo request/reply still elicit Time
// Exceeded, which is what lets traceroute run over ICMP. An unparsable ICMP
// datagram is treated as an error, erring on the side of suppression.
func isICMPError(ip *packet.IPv4, raw []byte) bool {
	if ip.Protocol != packet.ProtoICMP {
		return false
	}
	hdr := ip.HeaderLen()
	if len(raw) <= hdr {
		return true
	}
	switch raw[hdr] { // ICMP type is the first byte of the ICMP header
	case packet.ICMPDestUnreach, 4 /* source quench */, 5, /* redirect */
		packet.ICMPTimeExceeded, 12 /* parameter problem */ :
		return true
	}
	return false
}
