package netsim

import (
	"net/netip"

	"safemeasure/internal/packet"
)

// UDPHandler receives a UDP payload addressed to a bound port.
type UDPHandler func(h *Host, src netip.Addr, srcPort uint16, payload []byte)

// ICMPHandler receives ICMP messages addressed to the host.
type ICMPHandler func(h *Host, src netip.Addr, msg *packet.ICMP)

// Sniffer observes every datagram delivered to the host (before protocol
// dispatch), like a raw socket. The scanner and the spoofed-probe
// measurement techniques use this to see SYN/ACKs without a full TCP stack.
// pkt points into host-owned scratch reused on the next delivery; a sniffer
// that keeps anything must copy values (or raw, which is not reused).
type Sniffer func(raw []byte, pkt *packet.Packet)

// Host is an end system: one uplink port, one primary address, protocol
// handlers, and a raw send path that permits source-address spoofing (the
// realism of which is policed by the AS-edge SAV filter, not here).
type Host struct {
	Name string
	Addr netip.Addr

	sim  *Sim
	port *Port

	// TCPDispatch, if set, receives every TCP segment addressed to the
	// host. internal/tcpsim installs the real state machine here. If nil,
	// the host answers SYNs with RST (closed port), matching OS behavior.
	TCPDispatch func(h *Host, pkt *packet.Packet)

	udpHandlers map[uint16]UDPHandler
	icmpHandler ICMPHandler
	sniffers    []Sniffer
	reasm       *packet.Reassembler
	dec         packet.Decoder // per-delivery scratch; see Sniffer

	// Stats.
	Received  int
	Sent      int
	Discarded int // not addressed to us
}

// NewHost creates a host bound to the simulator.
func NewHost(sim *Sim, name string, addr netip.Addr) *Host {
	return &Host{Name: name, Addr: addr, sim: sim, udpHandlers: make(map[uint16]UDPHandler)}
}

// Sim returns the simulator the host runs in.
func (h *Host) Sim() *Sim { return h.sim }

// AttachPort binds the host's uplink.
func (h *Host) AttachPort(p *Port) { h.port = p }

// BindUDP installs a handler for a UDP port; returns false if already bound.
func (h *Host) BindUDP(port uint16, fn UDPHandler) bool {
	if _, ok := h.udpHandlers[port]; ok {
		return false
	}
	h.udpHandlers[port] = fn
	return true
}

// UnbindUDP removes a UDP binding.
func (h *Host) UnbindUDP(port uint16) { delete(h.udpHandlers, port) }

// HandleICMP installs the ICMP handler.
func (h *Host) HandleICMP(fn ICMPHandler) { h.icmpHandler = fn }

// AddSniffer registers a raw-socket observer.
func (h *Host) AddSniffer(s Sniffer) { h.sniffers = append(h.sniffers, s) }

// SendIP transmits a serialized IPv4 datagram. The source address is
// whatever the caller wrote into the header — hosts can spoof; the AS edge
// may filter.
func (h *Host) SendIP(raw []byte) {
	if h.port == nil {
		return
	}
	h.Sent++
	h.port.Send(raw)
}

// SendUDP builds and sends a UDP datagram from the host's own address.
func (h *Host) SendUDP(srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) error {
	raw, err := packet.BuildUDP(h.Addr, dst, packet.DefaultTTL,
		&packet.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload})
	if err != nil {
		return err
	}
	h.SendIP(raw)
	return nil
}

// DeliverIP implements Endpoint. Hosts reassemble fragmented datagrams
// before protocol dispatch, as real IP stacks do — which is exactly why
// fragmentation evades middleboxes that don't (Handley et al.).
func (h *Host) DeliverIP(_ int, raw []byte) {
	if packet.IsFragment(raw) {
		if h.reasm == nil {
			h.reasm = packet.NewReassembler()
		}
		raw = h.reasm.Add(int64(h.sim.Now()), raw)
		if raw == nil {
			return // incomplete
		}
	}
	_, pkt := h.dec.Decode(raw, true)
	if pkt == nil {
		h.Discarded++
		return
	}
	for _, s := range h.sniffers {
		s(raw, pkt)
	}
	if pkt.IP.Dst != h.Addr {
		h.Discarded++
		return
	}
	h.Received++
	switch {
	case pkt.TCP != nil:
		if h.TCPDispatch != nil {
			h.TCPDispatch(h, pkt)
			return
		}
		h.replyRST(pkt)
	case pkt.UDP != nil:
		if fn, ok := h.udpHandlers[pkt.UDP.DstPort]; ok {
			fn(h, pkt.IP.Src, pkt.UDP.SrcPort, pkt.UDP.Payload)
			return
		}
		h.replyPortUnreachable(pkt, raw)
	case pkt.ICMP != nil:
		h.handleICMP(pkt)
	}
}

// replyRST answers a segment to a closed port the way an OS would: RST for
// anything except an incoming RST. This is precisely the "cover traffic"
// behaviour the paper's stateless SYN probe relies on — a spoofed host that
// receives an unexpected SYN/ACK resets it, indistinguishable from the
// measurer's own deliberate RST.
func (h *Host) replyRST(pkt *packet.Packet) {
	t := pkt.TCP
	if t.Flags&packet.TCPRst != 0 {
		return
	}
	rst := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort, Flags: packet.TCPRst | packet.TCPAck}
	if t.Flags&packet.TCPAck != 0 {
		rst.Seq = t.Ack
		rst.Flags = packet.TCPRst
	} else {
		rst.Ack = t.Seq + 1
	}
	raw, err := packet.BuildTCP(h.Addr, pkt.IP.Src, packet.DefaultTTL, rst)
	if err == nil {
		h.SendIP(raw)
	}
}

func (h *Host) replyPortUnreachable(pkt *packet.Packet, raw []byte) {
	quote := raw
	if max := pkt.IP.HeaderLen() + 8; len(quote) > max {
		quote = quote[:max]
	}
	msg := &packet.ICMP{Type: packet.ICMPDestUnreach, Code: packet.ICMPCodePortUnreach,
		Payload: append([]byte(nil), quote...)}
	out, err := packet.BuildICMP(h.Addr, pkt.IP.Src, packet.DefaultTTL, msg)
	if err == nil {
		h.SendIP(out)
	}
}

func (h *Host) handleICMP(pkt *packet.Packet) {
	msg := pkt.ICMP
	if msg.Type == packet.ICMPEchoRequest {
		reply := &packet.ICMP{Type: packet.ICMPEchoReply, ID: msg.ID, Seq: msg.Seq, Payload: msg.Payload}
		out, err := packet.BuildICMP(h.Addr, pkt.IP.Src, packet.DefaultTTL, reply)
		if err == nil {
			h.SendIP(out)
		}
		return
	}
	if h.icmpHandler != nil {
		h.icmpHandler(h, pkt.IP.Src, msg)
	}
}
