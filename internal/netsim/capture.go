package netsim

import (
	"fmt"
	"strings"

	"safemeasure/internal/packet"
)

// Capture is a passive tap that records every datagram it observes, in
// order — the simulator's pcap. Tests and the surveillance system both
// consume captures.
type Capture struct {
	Name    string
	Packets []*TapPacket
	Bytes   int
}

// NewCapture creates an empty capture.
func NewCapture(name string) *Capture { return &Capture{Name: name} }

// Observe implements Tap; it always passes. The wire bytes are snapshotted
// and re-parsed: routers patch TTL and checksum in place after taps run and
// reuse tp.Pkt's storage on the next forward, so a capture must keep its own
// copy of everything it records.
func (c *Capture) Observe(tp *TapPacket, _ Injector) Verdict {
	cp := *tp
	cp.Raw = append([]byte(nil), tp.Raw...)
	if tp.Pkt != nil {
		cp.Pkt, _ = packet.Parse(cp.Raw)
	}
	c.Packets = append(c.Packets, &cp)
	c.Bytes += len(cp.Raw)
	return Pass
}

// Reset clears recorded packets.
func (c *Capture) Reset() {
	c.Packets = nil
	c.Bytes = 0
}

// Count returns the number of recorded datagrams.
func (c *Capture) Count() int { return len(c.Packets) }

// Filter returns the parsed packets matching pred.
func (c *Capture) Filter(pred func(*packet.Packet) bool) []*packet.Packet {
	var out []*packet.Packet
	for _, tp := range c.Packets {
		if tp.Pkt != nil && pred(tp.Pkt) {
			out = append(out, tp.Pkt)
		}
	}
	return out
}

// String renders a tcpdump-style trace (capped at 50 lines).
func (c *Capture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture %q: %d packets, %d bytes\n", c.Name, len(c.Packets), c.Bytes)
	for i, tp := range c.Packets {
		if i == 50 {
			fmt.Fprintf(&b, "... %d more\n", len(c.Packets)-50)
			break
		}
		if tp.Pkt != nil {
			fmt.Fprintf(&b, "%10.6f  %v\n", float64(tp.Time)/1e9, tp.Pkt)
		} else {
			fmt.Fprintf(&b, "%10.6f  [unparsed %d bytes]\n", float64(tp.Time)/1e9, len(tp.Raw))
		}
	}
	return b.String()
}
