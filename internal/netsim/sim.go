// Package netsim is a deterministic discrete-event network simulator: the
// lab's replacement for the paper's Mininet topology. It provides a virtual
// clock, hosts with raw-packet send/receive, links with latency and loss,
// and routers that forward IPv4 datagrams, decrement TTL, emit ICMP errors,
// and expose inline taps where the censorship and surveillance middleboxes
// attach (the two Snort instances of Figure 1).
//
// Everything runs in virtual time from a single goroutine: tests and
// benchmarks are exactly reproducible for a given seed.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"safemeasure/internal/telemetry"
)

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (x any) {
	old := *h
	n := len(old)
	x = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Sim owns the virtual clock and event queue.
type Sim struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
	rng   *rand.Rand

	// MaxEvents bounds a single Run call as a runaway-loop backstop.
	MaxEvents int

	// Tel, when set, receives hot-path metrics from components built on
	// this simulator (router forwarding, taps). Set it before constructing
	// routers — they resolve their counter handles once, at creation. Nil
	// keeps the zero-telemetry fast path.
	Tel *telemetry.Registry
	// Trace, when set, receives packet-path events stamped with this
	// simulator's virtual clock. Nil disables tracing.
	Trace *telemetry.Tracer
}

// NewSim creates a simulator with a deterministic RNG.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), MaxEvents: 10_000_000}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's RNG (used for link loss and jitter).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. A negative delay is
// clamped to zero.
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue drains and returns how many ran.
// It panics if MaxEvents is exceeded, which indicates a packet loop.
func (s *Sim) Run() int {
	return s.runWhile(func() bool { return true })
}

// RunFor processes events until the queue drains or virtual time advances
// by d, whichever comes first.
func (s *Sim) RunFor(d time.Duration) int {
	deadline := s.now + d
	n := s.runWhile(func() bool { return s.queue[0].at <= deadline })
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

func (s *Sim) runWhile(cond func() bool) int {
	n := 0
	for len(s.queue) > 0 && cond() {
		ev := heap.Pop(&s.queue).(*event)
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fn()
		n++
		if n > s.MaxEvents {
			panic(fmt.Sprintf("netsim: exceeded %d events; packet loop?", s.MaxEvents))
		}
	}
	return n
}

// Pending reports whether any events remain queued.
func (s *Sim) Pending() bool { return len(s.queue) > 0 }
