// Package netsim is a deterministic discrete-event network simulator: the
// lab's replacement for the paper's Mininet topology. It provides a virtual
// clock, hosts with raw-packet send/receive, links with latency and loss,
// and routers that forward IPv4 datagrams, decrement TTL, emit ICMP errors,
// and expose inline taps where the censorship and surveillance middleboxes
// attach (the two Snort instances of Figure 1).
//
// Everything runs in virtual time from a single goroutine: tests and
// benchmarks are exactly reproducible for a given seed.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"safemeasure/internal/telemetry"
)

// event is a scheduled callback or, on the hot path, a link delivery: when
// port is non-nil the event delivers raw to port's node without a per-packet
// closure. Events are recycled through the Sim's freelist, so the steady
// state of a busy simulation allocates no event at all.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	port *Port
	raw  []byte
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). The
// ordering ties virtual time to scheduling order, so equal-time events run
// FIFO and every run is reproducible. It deliberately avoids container/heap:
// the interface-dispatched Less/Swap calls showed up as ~10% of campaign CPU.
type eventHeap []*event

// before reports whether a sorts ahead of b in the event queue.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() *event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && q[r].before(q[kid]) {
			kid = r
		}
		if !q[kid].before(q[i]) {
			break
		}
		q[i], q[kid] = q[kid], q[i]
		i = kid
	}
	*h = q
	return top
}

// Sim owns the virtual clock and event queue.
type Sim struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
	rng   *rand.Rand
	free  []*event // recycled events (single-goroutine, so no locking)

	// MaxEvents bounds a single Run call as a runaway-loop backstop.
	MaxEvents int

	// Tel, when set, receives hot-path metrics from components built on
	// this simulator (router forwarding, taps). Set it before constructing
	// routers — they resolve their counter handles once, at creation. Nil
	// keeps the zero-telemetry fast path.
	Tel *telemetry.Registry
	// Trace, when set, receives packet-path events stamped with this
	// simulator's virtual clock. Nil disables tracing.
	Trace *telemetry.Tracer
}

// NewSim creates a simulator with a deterministic RNG.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), MaxEvents: 10_000_000}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's RNG (used for link loss and jitter).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. A negative delay is
// clamped to zero.
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	ev := s.newEvent(delay)
	ev.fn = fn
	s.queue.push(ev)
}

// scheduleDelivery enqueues a closure-free link delivery (see event).
func (s *Sim) scheduleDelivery(delay time.Duration, port *Port, raw []byte) {
	ev := s.newEvent(delay)
	ev.port, ev.raw = port, raw
	s.queue.push(ev)
}

func (s *Sim) newEvent(delay time.Duration) *event {
	if delay < 0 {
		delay = 0
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	s.seq++
	ev.at = s.now + delay
	ev.seq = s.seq
	return ev
}

// Run processes events until the queue drains and returns how many ran.
// It panics if MaxEvents is exceeded, which indicates a packet loop.
func (s *Sim) Run() int {
	return s.runWhile(func() bool { return true })
}

// RunFor processes events until the queue drains or virtual time advances
// by d, whichever comes first.
func (s *Sim) RunFor(d time.Duration) int {
	deadline := s.now + d
	n := s.runWhile(func() bool { return s.queue[0].at <= deadline })
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

func (s *Sim) runWhile(cond func() bool) int {
	n := 0
	for len(s.queue) > 0 && cond() {
		ev := s.queue.pop()
		if ev.at > s.now {
			s.now = ev.at
		}
		if ev.port != nil {
			ev.port.link.Delivered++
			ev.port.node.DeliverIP(ev.port.idx, ev.raw)
		} else {
			ev.fn()
		}
		// Recycle: the event is unreachable once run (Pop dropped the heap's
		// reference); clear its pointers so recycled slots retain nothing.
		ev.fn, ev.port, ev.raw = nil, nil, nil
		s.free = append(s.free, ev)
		n++
		if n > s.MaxEvents {
			panic(fmt.Sprintf("netsim: exceeded %d events; packet loop?", s.MaxEvents))
		}
	}
	return n
}

// Pending reports whether any events remain queued.
func (s *Sim) Pending() bool { return len(s.queue) > 0 }
