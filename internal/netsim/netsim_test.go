package netsim

import (
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/packet"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.10")
	coverAddr  = netip.MustParseAddr("10.1.0.11")
	serverAddr = netip.MustParseAddr("203.0.113.80")
	r1Addr     = netip.MustParseAddr("10.1.0.1")
	r2Addr     = netip.MustParseAddr("198.51.100.1")
)

// twoRouterTopo builds: client, cover -- R1 -- R2 -- server.
// R1 is the client AS edge; R2 is the border where taps attach.
type topo struct {
	sim           *Sim
	client, cover *Host
	server        *Host
	r1, r2        *Router
}

func newTopo(t testing.TB, lat time.Duration) *topo {
	t.Helper()
	sim := NewSim(1)
	tp := &topo{
		sim:    sim,
		client: NewHost(sim, "client", clientAddr),
		cover:  NewHost(sim, "cover", coverAddr),
		server: NewHost(sim, "server", serverAddr),
		r1:     NewRouter(sim, "r1", r1Addr, 3), // 0: client, 1: cover, 2: uplink
		r2:     NewRouter(sim, "r2", r2Addr, 2), // 0: r1, 1: server
	}
	AttachHost(sim, tp.client, tp.r1, 0, lat)
	AttachHost(sim, tp.cover, tp.r1, 1, lat)
	ConnectRouters(sim, tp.r1, 2, tp.r2, 0, lat)
	AttachHost(sim, tp.server, tp.r2, 1, lat)

	clientNet := netip.MustParsePrefix("10.1.0.0/24")
	tp.r1.AddRoute(netip.PrefixFrom(clientAddr, 32), 0)
	tp.r1.AddRoute(netip.PrefixFrom(coverAddr, 32), 1)
	tp.r1.SetDefaultRoute(2)
	tp.r2.AddRoute(clientNet, 0)
	tp.r2.SetDefaultRoute(1)
	return tp
}

func TestSchedulerOrdering(t *testing.T) {
	sim := NewSim(0)
	var order []int
	sim.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	sim.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	sim.Schedule(1*time.Millisecond, func() { order = append(order, 11) }) // same time: FIFO by seq
	sim.Schedule(0, func() { order = append(order, 0) })
	sim.Run()
	want := []int{0, 1, 11, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if sim.Now() != 2*time.Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	sim := NewSim(0)
	ran := 0
	var tick func()
	tick = func() {
		ran++
		sim.Schedule(time.Millisecond, tick)
	}
	sim.Schedule(0, tick)
	sim.RunFor(10 * time.Millisecond)
	if ran < 10 || ran > 12 {
		t.Fatalf("ran = %d", ran)
	}
	if sim.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestEndToEndUDPDelivery(t *testing.T) {
	tp := newTopo(t, time.Millisecond)
	var got []byte
	var gotSrc netip.Addr
	tp.server.BindUDP(53, func(h *Host, src netip.Addr, srcPort uint16, payload []byte) {
		got = append([]byte(nil), payload...)
		gotSrc = src
	})
	if err := tp.client.SendUDP(4000, serverAddr, 53, []byte("query")); err != nil {
		t.Fatal(err)
	}
	tp.sim.Run()
	if string(got) != "query" || gotSrc != clientAddr {
		t.Fatalf("got %q from %v", got, gotSrc)
	}
	// 3 hops: client->r1, r1->r2, r2->server.
	if tp.sim.Now() != 3*time.Millisecond {
		t.Fatalf("delivery time = %v", tp.sim.Now())
	}
}

func TestTTLDecrementAcrossRouters(t *testing.T) {
	tp := newTopo(t, 0)
	var gotTTL uint8
	tp.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		gotTTL = pkt.IP.TTL
	})
	raw, _ := packet.BuildUDP(clientAddr, serverAddr, 10, &packet.UDP{SrcPort: 1, DstPort: 9, Payload: nil})
	tp.client.SendIP(raw)
	tp.sim.Run()
	if gotTTL != 8 { // two router hops
		t.Fatalf("TTL at server = %d, want 8", gotTTL)
	}
}

func TestTTLExpiryEmitsICMP(t *testing.T) {
	tp := newTopo(t, 0)
	var icmpFrom netip.Addr
	var icmpType uint8
	tp.client.HandleICMP(func(h *Host, src netip.Addr, msg *packet.ICMP) {
		icmpFrom = src
		icmpType = msg.Type
	})
	// TTL=2: decremented to 1 by r1, expires at r2 (the far router).
	raw, _ := packet.BuildUDP(clientAddr, serverAddr, 2, &packet.UDP{SrcPort: 1, DstPort: 9})
	tp.client.SendIP(raw)
	tp.sim.Run()
	if icmpType != packet.ICMPTimeExceeded {
		t.Fatalf("no time-exceeded received (type=%d)", icmpType)
	}
	if icmpFrom != r2Addr {
		t.Fatalf("ICMP from %v, want %v", icmpFrom, r2Addr)
	}
	if tp.server.Received != 0 {
		t.Fatal("packet leaked past TTL expiry")
	}
}

func TestTTLLimitedReplyDiesAfterTapBeforeClient(t *testing.T) {
	// The Figure 3b property: a server reply with TTL=1 crosses the border
	// router (where the surveillance tap sits, which sees it) but dies at
	// r1 before reaching the client.
	tp := newTopo(t, 0)
	cap2 := NewCapture("border")
	tp.r2.AddTap(cap2)
	raw, _ := packet.BuildTCP(serverAddr, coverAddr, 2, &packet.TCP{SrcPort: 80, DstPort: 5555, Flags: packet.TCPSyn | packet.TCPAck})
	tp.server.SendIP(raw)
	tp.sim.Run()
	if cap2.Count() == 0 {
		t.Fatal("surveillance tap did not observe the reply")
	}
	if tp.cover.Received != 0 {
		t.Fatal("TTL-limited reply reached the spoofed client")
	}
	if tp.r1.TTLExpired != 1 {
		t.Fatalf("r1.TTLExpired = %d", tp.r1.TTLExpired)
	}
}

func TestTapDrop(t *testing.T) {
	tp := newTopo(t, 0)
	tp.r2.AddTap(TapFunc(func(pp *TapPacket, _ Injector) Verdict {
		if pp.Pkt != nil && pp.Pkt.UDP != nil && pp.Pkt.UDP.DstPort == 53 {
			return Drop
		}
		return Pass
	}))
	tp.client.SendUDP(4000, serverAddr, 53, []byte("blocked"))
	tp.client.SendUDP(4000, serverAddr, 54, []byte("allowed"))
	var got []uint16
	for _, port := range []uint16{53, 54} {
		port := port
		tp.server.BindUDP(port, func(h *Host, src netip.Addr, sp uint16, payload []byte) {
			got = append(got, port)
		})
	}
	tp.sim.Run()
	if len(got) != 1 || got[0] != 54 {
		t.Fatalf("delivered ports = %v", got)
	}
	if tp.r2.TapDropped != 1 {
		t.Fatalf("TapDropped = %d", tp.r2.TapDropped)
	}
}

func TestTapInjectRST(t *testing.T) {
	// A censor-style tap at r2 injects a RST toward the client when it sees
	// a payload containing a keyword.
	tp := newTopo(t, 0)
	tp.r2.AddTap(TapFunc(func(pp *TapPacket, inj Injector) Verdict {
		if pp.Pkt != nil && pp.Pkt.TCP != nil && len(pp.Pkt.TCP.Payload) > 0 {
			t := pp.Pkt.TCP
			rst := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort, Seq: t.Ack, Ack: t.Seq, Flags: packet.TCPRst}
			raw, _ := packet.BuildTCP(pp.Pkt.IP.Dst, pp.Pkt.IP.Src, packet.DefaultTTL, rst)
			inj.Inject(raw)
		}
		return Pass
	}))
	var sawRST bool
	tp.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPRst != 0 && pkt.IP.Src == serverAddr {
			sawRST = true
		}
	})
	raw, _ := packet.BuildTCP(clientAddr, serverAddr, 64, &packet.TCP{SrcPort: 999, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck, Payload: []byte("falun")})
	tp.client.SendIP(raw)
	tp.sim.Run()
	if !sawRST {
		t.Fatal("injected RST not received by client")
	}
}

func TestHostClosedTCPPortSendsRST(t *testing.T) {
	tp := newTopo(t, 0)
	var rst *packet.TCP
	tp.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPRst != 0 {
			rst = pkt.TCP
		}
	})
	raw, _ := packet.BuildTCP(clientAddr, serverAddr, 64, &packet.TCP{SrcPort: 1234, DstPort: 81, Flags: packet.TCPSyn, Seq: 41})
	tp.client.SendIP(raw)
	tp.sim.Run()
	if rst == nil {
		t.Fatal("no RST from closed port")
	}
	if rst.SrcPort != 81 || rst.DstPort != 1234 || rst.Ack != 42 {
		t.Fatalf("rst = %+v", rst)
	}
}

func TestHostClosedUDPPortSendsICMP(t *testing.T) {
	tp := newTopo(t, 0)
	var unreach bool
	tp.client.HandleICMP(func(h *Host, src netip.Addr, msg *packet.ICMP) {
		if msg.Type == packet.ICMPDestUnreach && msg.Code == packet.ICMPCodePortUnreach {
			unreach = true
		}
	})
	tp.client.SendUDP(4000, serverAddr, 9999, []byte("x"))
	tp.sim.Run()
	if !unreach {
		t.Fatal("no port-unreachable for closed UDP port")
	}
}

func TestPingEcho(t *testing.T) {
	tp := newTopo(t, time.Millisecond)
	var reply bool
	tp.client.HandleICMP(func(h *Host, src netip.Addr, msg *packet.ICMP) {})
	tp.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.ICMP != nil && pkt.ICMP.Type == packet.ICMPEchoReply && pkt.ICMP.ID == 77 {
			reply = true
		}
	})
	msg := &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 77, Seq: 1}
	raw, _ := packet.BuildICMP(clientAddr, serverAddr, 64, msg)
	tp.client.SendIP(raw)
	tp.sim.Run()
	if !reply {
		t.Fatal("no echo reply")
	}
}

func TestLinkLoss(t *testing.T) {
	sim := NewSim(42)
	a := NewHost(sim, "a", clientAddr)
	b := NewHost(sim, "b", serverAddr)
	l := Connect(sim, a, 0, b, 0, 0)
	l.Loss = 0.5
	a.AttachPort(l.PortA())
	b.AttachPort(l.PortB())
	got := 0
	b.BindUDP(7, func(h *Host, src netip.Addr, sp uint16, payload []byte) { got++ })
	const n = 1000
	for i := 0; i < n; i++ {
		a.SendUDP(1, serverAddr, 7, []byte("x"))
	}
	sim.Run()
	if got < 400 || got > 600 {
		t.Fatalf("delivered %d/%d with 50%% loss", got, n)
	}
	if l.Dropped+l.Delivered < n { // ICMP replies also use the link
		t.Fatalf("dropped=%d delivered=%d", l.Dropped, l.Delivered)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		tp := newTopo(t, 3*time.Millisecond)
		cap2 := NewCapture("c")
		tp.r2.AddTap(cap2)
		for i := 0; i < 20; i++ {
			tp.client.SendUDP(uint16(1000+i), serverAddr, 53, []byte{byte(i)})
		}
		tp.sim.Run()
		var times []int64
		for _, p := range cap2.Packets {
			times = append(times, p.Time)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lens %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSpoofedSourceRouting(t *testing.T) {
	// The client spoofs the cover host's address; the server's reply must be
	// routed to the cover host, not the client.
	tp := newTopo(t, 0)
	var coverGotReply, clientGotReply bool
	tp.cover.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPRst != 0 {
			coverGotReply = true
		}
	})
	tp.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.IP.Src == serverAddr {
			clientGotReply = true
		}
	})
	// SYN to a closed port on the server, spoofed from cover.
	raw, _ := packet.BuildTCP(coverAddr, serverAddr, 64, &packet.TCP{SrcPort: 777, DstPort: 81, Flags: packet.TCPSyn})
	tp.client.SendIP(raw)
	tp.sim.Run()
	if !coverGotReply {
		t.Fatal("cover host did not get the reply")
	}
	if clientGotReply {
		t.Fatal("reply leaked to the spoofing client")
	}
}

func TestCaptureFilterAndString(t *testing.T) {
	tp := newTopo(t, 0)
	cap2 := NewCapture("border")
	tp.r2.AddTap(cap2)
	tp.client.SendUDP(1, serverAddr, 53, []byte("q"))
	raw, _ := packet.BuildTCP(clientAddr, serverAddr, 64, &packet.TCP{SrcPort: 2, DstPort: 80, Flags: packet.TCPSyn})
	tp.client.SendIP(raw)
	tp.sim.Run()
	// Expect the client's SYN and the server's closed-port RST.
	syn := cap2.Filter(func(p *packet.Packet) bool { return p.TCP != nil && p.TCP.Flags == packet.TCPSyn })
	rst := cap2.Filter(func(p *packet.Packet) bool { return p.TCP != nil && p.TCP.Flags&packet.TCPRst != 0 })
	if len(syn) != 1 || len(rst) != 1 {
		t.Fatalf("syn=%d rst=%d", len(syn), len(rst))
	}
	if s := cap2.String(); len(s) == 0 {
		t.Fatal("empty capture dump")
	}
	cap2.Reset()
	if cap2.Count() != 0 || cap2.Bytes != 0 {
		t.Fatal("reset did not clear")
	}
}

func BenchmarkForwardingPath(b *testing.B) {
	tp := newTopo(b, 0)
	tp.server.BindUDP(53, func(h *Host, src netip.Addr, sp uint16, payload []byte) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.client.SendUDP(1, serverAddr, 53, []byte("benchmark payload"))
		tp.sim.Run()
	}
}

func TestLinkJitterDeterministic(t *testing.T) {
	run := func() []int64 {
		sim := NewSim(99)
		a := NewHost(sim, "a", clientAddr)
		b := NewHost(sim, "b", serverAddr)
		l := Connect(sim, a, 0, b, 0, time.Millisecond)
		l.Jitter = 2 * time.Millisecond
		a.AttachPort(l.PortA())
		b.AttachPort(l.PortB())
		var times []int64
		b.BindUDP(7, func(h *Host, src netip.Addr, sp uint16, payload []byte) {
			times = append(times, int64(sim.Now()))
		})
		for i := 0; i < 20; i++ {
			a.SendUDP(1, serverAddr, 7, []byte{byte(i)})
		}
		sim.Run()
		return times
	}
	x, y := run(), run()
	if len(x) != 20 || len(y) != 20 {
		t.Fatalf("deliveries: %d/%d", len(x), len(y))
	}
	spread := false
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("jitter broke determinism")
		}
		if x[i] != x[0] {
			spread = true
		}
	}
	if !spread {
		t.Fatal("jitter had no effect")
	}
}

func TestHostUnbindUDPAndSim(t *testing.T) {
	tp := newTopo(t, 0)
	if tp.server.Sim() != tp.sim {
		t.Fatal("Sim accessor")
	}
	got := 0
	tp.server.BindUDP(99, func(*Host, netip.Addr, uint16, []byte) { got++ })
	tp.client.SendUDP(1, serverAddr, 99, []byte("a"))
	tp.sim.Run()
	tp.server.UnbindUDP(99)
	tp.client.SendUDP(1, serverAddr, 99, []byte("b"))
	tp.sim.Run()
	if got != 1 {
		t.Fatalf("handler fired %d times", got)
	}
	// Re-bind after unbind works.
	if !tp.server.BindUDP(99, func(*Host, netip.Addr, uint16, []byte) {}) {
		t.Fatal("re-bind failed")
	}
}

func TestSimPending(t *testing.T) {
	sim := NewSim(0)
	if sim.Pending() {
		t.Fatal("fresh sim pending")
	}
	sim.Schedule(time.Second, func() {})
	if !sim.Pending() {
		t.Fatal("scheduled event not pending")
	}
	sim.Run()
	if sim.Pending() {
		t.Fatal("drained sim pending")
	}
}

func TestRouterInjectEdgeCases(t *testing.T) {
	tp := newTopo(t, 0)
	// Garbage never crashes Inject.
	tp.r2.Inject([]byte{0x45, 0x00})
	// A router with no default route counts NoRoute on unroutable
	// destinations (injected and forwarded alike).
	lone := NewRouter(tp.sim, "lone", r2Addr, 1)
	raw, _ := packet.BuildUDP(serverAddr, netip.MustParseAddr("192.0.2.77"), 64, &packet.UDP{SrcPort: 1, DstPort: 2})
	lone.Inject(raw)
	lone.DeliverIP(0, raw)
	if lone.NoRoute != 2 {
		t.Fatalf("NoRoute = %d", lone.NoRoute)
	}
}

func TestRouterParseFailedCounts(t *testing.T) {
	tp := newTopo(t, 0)
	before := tp.r1.ParseFailed
	tp.r1.DeliverIP(0, []byte{0xff, 0x00})
	if tp.r1.ParseFailed != before+1 {
		t.Fatalf("ParseFailed = %d", tp.r1.ParseFailed)
	}
}

func TestEchoRequestTTLExpiryElicitsTimeExceeded(t *testing.T) {
	// RFC 1122 §3.2.2: only ICMP *errors* suppress further ICMP errors. An
	// echo request whose TTL expires must still elicit Time Exceeded — the
	// primitive ICMP traceroute depends on.
	tp := newTopo(t, 0)
	var gotType uint8
	var gotFrom netip.Addr
	tp.client.HandleICMP(func(h *Host, src netip.Addr, msg *packet.ICMP) {
		if msg.Type == packet.ICMPTimeExceeded {
			gotType = msg.Type
			gotFrom = src
		}
	})
	msg := &packet.ICMP{Type: packet.ICMPEchoRequest, ID: 9, Seq: 1}
	raw, _ := packet.BuildICMP(clientAddr, serverAddr, 2, msg) // dies at r2
	tp.client.SendIP(raw)
	tp.sim.Run()
	if gotType != packet.ICMPTimeExceeded {
		t.Fatal("echo request TTL expiry elicited no Time Exceeded")
	}
	if gotFrom != r2Addr {
		t.Fatalf("Time Exceeded from %v, want %v", gotFrom, r2Addr)
	}
}

func TestICMPErrorTTLExpiryStaysSilent(t *testing.T) {
	// An ICMP error (Time Exceeded) whose own TTL expires must NOT trigger
	// another ICMP error — no error-about-error storms.
	tp := newTopo(t, 0)
	var errors int
	tp.client.HandleICMP(func(h *Host, src netip.Addr, msg *packet.ICMP) {
		if msg.Type == packet.ICMPTimeExceeded || msg.Type == packet.ICMPDestUnreach {
			errors++
		}
	})
	msg := &packet.ICMP{Type: packet.ICMPTimeExceeded, Code: packet.ICMPCodeTTLExpired,
		Payload: []byte("quoted-header")}
	raw, _ := packet.BuildICMP(clientAddr, serverAddr, 2, msg) // dies at r2
	tp.client.SendIP(raw)
	tp.sim.Run()
	if errors != 0 {
		t.Fatalf("ICMP error about an ICMP error (%d received)", errors)
	}
	if tp.r2.TTLExpired != 1 {
		t.Fatalf("r2.TTLExpired = %d, want 1", tp.r2.TTLExpired)
	}
}

// impairedPair builds two hosts joined by one link carrying the impairment.
func impairedPair(seed int64, lat time.Duration, im Impairment) (*Sim, *Host, *Host, *Link) {
	sim := NewSim(seed)
	a := NewHost(sim, "a", clientAddr)
	b := NewHost(sim, "b", serverAddr)
	l := Connect(sim, a, 0, b, 0, lat)
	l.ApplyImpairment(im)
	a.AttachPort(l.PortA())
	b.AttachPort(l.PortB())
	return sim, a, b, l
}

func TestLinkDuplicate(t *testing.T) {
	sim, a, b, l := impairedPair(7, time.Millisecond, Impairment{Duplicate: 0.5})
	got := 0
	b.BindUDP(7, func(*Host, netip.Addr, uint16, []byte) { got++ })
	const n = 500
	for i := 0; i < n; i++ {
		a.SendUDP(1, serverAddr, 7, []byte("x"))
	}
	sim.Run()
	if l.Duplicated == 0 {
		t.Fatal("no duplications at 50% probability")
	}
	if got != n+l.Duplicated {
		t.Fatalf("delivered %d, want %d originals + %d dups", got, n, l.Duplicated)
	}
}

func TestLinkReorder(t *testing.T) {
	sim, a, b, l := impairedPair(11, time.Millisecond, Impairment{Reorder: 0.3})
	var order []byte
	b.BindUDP(7, func(_ *Host, _ netip.Addr, _ uint16, payload []byte) {
		order = append(order, payload[0])
	})
	const n = 50
	for i := 0; i < n; i++ {
		a.SendUDP(1, serverAddr, 7, []byte{byte(i)})
	}
	sim.Run()
	if l.Reordered == 0 {
		t.Fatal("no reordering at 30% probability")
	}
	if len(order) != n {
		t.Fatalf("delivered %d/%d", len(order), n)
	}
	inverted := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("reordered packets still arrived in send order")
	}
}

func TestLinkCorrupt(t *testing.T) {
	// Corrupted datagrams must not be delivered intact: either the IP layer
	// rejects them (host Received stays flat) or the payload differs.
	sim, a, b, l := impairedPair(13, time.Millisecond, Impairment{Corrupt: 1.0})
	intact := 0
	b.BindUDP(7, func(_ *Host, _ netip.Addr, _ uint16, payload []byte) {
		if string(payload) == "precious-payload" {
			intact++
		}
	})
	const n = 50
	for i := 0; i < n; i++ {
		a.SendUDP(1, serverAddr, 7, []byte("precious-payload"))
	}
	sim.Run()
	if l.Corrupted != n {
		t.Fatalf("Corrupted = %d, want %d", l.Corrupted, n)
	}
	if intact == n {
		t.Fatal("every corrupted datagram arrived intact")
	}
}

func TestImpairmentDeterminism(t *testing.T) {
	im := Impairment{Loss: 0.2, Reorder: 0.2, Duplicate: 0.2, Corrupt: 0.1,
		Jitter: 2 * time.Millisecond}
	run := func() []int64 {
		sim, a, b, _ := impairedPair(1234, time.Millisecond, im)
		var times []int64
		b.BindUDP(7, func(*Host, netip.Addr, uint16, []byte) {
			times = append(times, int64(sim.Now()))
		})
		for i := 0; i < 200; i++ {
			a.SendUDP(1, serverAddr, 7, []byte{byte(i)})
		}
		sim.Run()
		return times
	}
	x, y := run(), run()
	if len(x) == 0 || len(x) != len(y) {
		t.Fatalf("deliveries: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("impaired run diverged at delivery %d", i)
		}
	}
}
