package netsim

import "time"

// Endpoint is anything a link can deliver packets to.
type Endpoint interface {
	// DeliverIP hands a serialized IPv4 datagram to the node, arriving on
	// the given port (the node's own port index).
	DeliverIP(port int, raw []byte)
}

// Port is one end of a link, bound to a node and a port index on that node.
type Port struct {
	sim  *Sim
	node Endpoint
	idx  int
	link *Link
}

// Impairment bundles every link-degradation knob so a whole impairment
// profile can be named once (the lab's presets) and applied atomically.
// All probabilities are in [0,1] and every random decision is drawn from
// the simulator's seeded RNG, so impaired runs stay byte-reproducible.
type Impairment struct {
	// Loss drops a datagram entirely.
	Loss float64
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Reorder delays a datagram by an extra ReorderDelay, letting packets
	// sent after it overtake it — head-of-line reordering.
	Reorder float64
	// ReorderDelay is the extra delay applied to reordered packets; zero
	// means 4x the link latency (enough to overtake several successors).
	ReorderDelay time.Duration
	// Duplicate delivers a datagram twice (the copy one latency later).
	Duplicate float64
	// Corrupt flips one byte of the payload, chosen by the seeded RNG. The
	// corrupted copy fails checksum or parse checks downstream, so it acts
	// like loss that still consumes receiver work.
	Corrupt float64
}

// Link is a bidirectional point-to-point link with latency, optional
// per-packet jitter, and a set of impairments (loss, reordering,
// duplication, corruption) drawn from the simulator's seeded RNG.
type Link struct {
	sim     *Sim
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// each delivery, drawn from the simulator's seeded RNG — realistic
	// timing noise without losing reproducibility.
	Jitter time.Duration
	Loss   float64 // probability in [0,1] that a datagram is dropped
	// Reorder, Duplicate, Corrupt are the remaining impairment knobs; see
	// Impairment for semantics. Set them directly or via ApplyImpairment.
	Reorder      float64
	ReorderDelay time.Duration
	Duplicate    float64
	Corrupt      float64
	a, b         *Port

	// Stats.
	Delivered  int
	Dropped    int
	Reordered  int
	Duplicated int
	Corrupted  int
}

// ApplyImpairment installs a whole impairment profile on the link.
func (l *Link) ApplyImpairment(im Impairment) {
	l.Loss = im.Loss
	l.Jitter = im.Jitter
	l.Reorder = im.Reorder
	l.ReorderDelay = im.ReorderDelay
	l.Duplicate = im.Duplicate
	l.Corrupt = im.Corrupt
}

// Connect creates a link between two endpoints. The returned ports are
// passed back in DeliverIP as the receiving node's port index.
func Connect(sim *Sim, a Endpoint, aPort int, b Endpoint, bPort int, latency time.Duration) *Link {
	l := &Link{sim: sim, Latency: latency}
	l.a = &Port{sim: sim, node: a, idx: aPort, link: l}
	l.b = &Port{sim: sim, node: b, idx: bPort, link: l}
	return l
}

// PortA returns the a-side port (attached to the first Connect argument).
func (l *Link) PortA() *Port { return l.a }

// PortB returns the b-side port.
func (l *Link) PortB() *Port { return l.b }

// AttachHost links a host's uplink to a router port. It returns the link so
// callers can adjust latency or loss afterwards.
func AttachHost(sim *Sim, h *Host, r *Router, rPort int, latency time.Duration) *Link {
	l := Connect(sim, h, 0, r, rPort, latency)
	h.AttachPort(l.PortA())
	r.AttachPort(rPort, l.PortB())
	return l
}

// ConnectRouters links two router ports together.
func ConnectRouters(sim *Sim, a *Router, aPort int, b *Router, bPort int, latency time.Duration) *Link {
	l := Connect(sim, a, aPort, b, bPort, latency)
	a.AttachPort(aPort, l.PortA())
	b.AttachPort(bPort, l.PortB())
	return l
}

// Send transmits raw from this port toward the peer, applying the link's
// impairments. Decisions are drawn from the simulator's RNG in a fixed
// order (loss, duplicate, reorder, corrupt, jitter) so a given seed always
// produces the same impairment sequence. The slice is not copied; callers
// must not reuse it.
func (p *Port) Send(raw []byte) {
	l := p.link
	rng := l.sim.Rand()
	if l.Loss > 0 && rng.Float64() < l.Loss {
		l.Dropped++
		return
	}
	peer := l.a
	if p == l.a {
		peer = l.b
	}
	if l.Duplicate > 0 && rng.Float64() < l.Duplicate {
		l.Duplicated++
		// The copy trails the original by one extra latency; it gets its
		// own slice so downstream consumers never alias each other.
		dup := append([]byte(nil), raw...)
		l.deliver(peer, dup, 2*l.Latency)
	}
	delay := l.Latency
	if l.Reorder > 0 && rng.Float64() < l.Reorder {
		l.Reordered++
		extra := l.ReorderDelay
		if extra <= 0 {
			extra = 4 * l.Latency
		}
		delay += extra
	}
	if l.Corrupt > 0 && rng.Float64() < l.Corrupt && len(raw) > 0 {
		l.Corrupted++
		corrupted := append([]byte(nil), raw...)
		corrupted[rng.Intn(len(corrupted))] ^= 0xFF
		raw = corrupted
	}
	if l.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	l.deliver(peer, raw, delay)
}

// deliver schedules one arrival at the peer after delay. Deliveries are the
// simulator's hottest event; they go through the closure-free fast path.
func (l *Link) deliver(peer *Port, raw []byte, delay time.Duration) {
	l.sim.scheduleDelivery(delay, peer, raw)
}
