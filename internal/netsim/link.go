package netsim

import "time"

// Endpoint is anything a link can deliver packets to.
type Endpoint interface {
	// DeliverIP hands a serialized IPv4 datagram to the node, arriving on
	// the given port (the node's own port index).
	DeliverIP(port int, raw []byte)
}

// Port is one end of a link, bound to a node and a port index on that node.
type Port struct {
	sim  *Sim
	node Endpoint
	idx  int
	link *Link
}

// Link is a bidirectional point-to-point link with latency, optional
// per-packet jitter, and a loss probability.
type Link struct {
	sim     *Sim
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// each delivery, drawn from the simulator's seeded RNG — realistic
	// timing noise without losing reproducibility.
	Jitter time.Duration
	Loss   float64 // probability in [0,1] that a datagram is dropped
	a, b   *Port

	// Stats.
	Delivered int
	Dropped   int
}

// Connect creates a link between two endpoints. The returned ports are
// passed back in DeliverIP as the receiving node's port index.
func Connect(sim *Sim, a Endpoint, aPort int, b Endpoint, bPort int, latency time.Duration) *Link {
	l := &Link{sim: sim, Latency: latency}
	l.a = &Port{sim: sim, node: a, idx: aPort, link: l}
	l.b = &Port{sim: sim, node: b, idx: bPort, link: l}
	return l
}

// PortA returns the a-side port (attached to the first Connect argument).
func (l *Link) PortA() *Port { return l.a }

// PortB returns the b-side port.
func (l *Link) PortB() *Port { return l.b }

// AttachHost links a host's uplink to a router port. It returns the link so
// callers can adjust latency or loss afterwards.
func AttachHost(sim *Sim, h *Host, r *Router, rPort int, latency time.Duration) *Link {
	l := Connect(sim, h, 0, r, rPort, latency)
	h.AttachPort(l.PortA())
	r.AttachPort(rPort, l.PortB())
	return l
}

// ConnectRouters links two router ports together.
func ConnectRouters(sim *Sim, a *Router, aPort int, b *Router, bPort int, latency time.Duration) *Link {
	l := Connect(sim, a, aPort, b, bPort, latency)
	a.AttachPort(aPort, l.PortA())
	b.AttachPort(bPort, l.PortB())
	return l
}

// Send transmits raw from this port toward the peer, applying latency and
// loss. The slice is not copied; callers must not reuse it.
func (p *Port) Send(raw []byte) {
	l := p.link
	if l.Loss > 0 && l.sim.Rand().Float64() < l.Loss {
		l.Dropped++
		return
	}
	peer := l.a
	if p == l.a {
		peer = l.b
	}
	delay := l.Latency
	if l.Jitter > 0 {
		delay += time.Duration(l.sim.Rand().Int63n(int64(l.Jitter)))
	}
	l.sim.Schedule(delay, func() {
		l.Delivered++
		peer.node.DeliverIP(peer.idx, raw)
	})
}
