package websim

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/httpwire"
	"safemeasure/internal/netsim"
	"safemeasure/internal/tcpsim"
)

var (
	cliAddr = netip.MustParseAddr("10.1.0.10")
	srvAddr = netip.MustParseAddr("203.0.113.80")
	rtrAddr = netip.MustParseAddr("10.1.0.1")
)

func newEnv(t *testing.T) (*netsim.Sim, *tcpsim.Stack, *Server, *netsim.Router) {
	t.Helper()
	sim := netsim.NewSim(13)
	client := netsim.NewHost(sim, "client", cliAddr)
	server := netsim.NewHost(sim, "server", srvAddr)
	router := netsim.NewRouter(sim, "r", rtrAddr, 2)
	netsim.AttachHost(sim, client, router, 0, time.Millisecond)
	netsim.AttachHost(sim, server, router, 1, time.Millisecond)
	router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	router.SetDefaultRoute(1)
	cs := tcpsim.NewStack(client)
	ss := tcpsim.NewStack(server)
	srv, err := NewServer(ss)
	if err != nil {
		t.Fatal(err)
	}
	return sim, cs, srv, router
}

func TestGet200(t *testing.T) {
	sim, cs, srv, _ := newEnv(t)
	var resp *httpwire.Response
	Get(cs, srvAddr, "news.test", "/world", func(r *httpwire.Response, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		resp = r
	})
	sim.Run()
	if resp == nil || resp.Status != 200 {
		t.Fatalf("resp = %+v", resp)
	}
	if !strings.Contains(string(resp.Body), "news.test/world") {
		t.Fatalf("body = %q", resp.Body)
	}
	if srv.Hits != 1 || srv.HitsByHost["news.test"] != 1 {
		t.Fatalf("hits: %d %v", srv.Hits, srv.HitsByHost)
	}
}

func TestCustomHandler(t *testing.T) {
	sim, cs, srv, _ := newEnv(t)
	srv.Handler = func(req *httpwire.Request) *httpwire.Response {
		if req.Path == "/blocked" {
			return &httpwire.Response{Status: 451, Body: []byte("censored")}
		}
		return &httpwire.Response{Status: 200, Body: []byte("ok")}
	}
	var status int
	Get(cs, srvAddr, "x.test", "/blocked", func(r *httpwire.Response, err error) {
		if err == nil {
			status = r.Status
		}
	})
	sim.Run()
	if status != 451 {
		t.Fatalf("status = %d", status)
	}
}

func TestConnectionFailureSurfaces(t *testing.T) {
	sim, cs, _, router := newEnv(t)
	router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.IP.Dst == srvAddr {
			return netsim.Drop
		}
		return netsim.Pass
	}))
	var gotErr error
	Get(cs, srvAddr, "x.test", "/", func(r *httpwire.Response, err error) { gotErr = err })
	sim.Run()
	if !errors.Is(gotErr, ErrConnection) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestSequentialRequests(t *testing.T) {
	sim, cs, srv, _ := newEnv(t)
	ok := 0
	for i := 0; i < 5; i++ {
		Get(cs, srvAddr, "a.test", "/", func(r *httpwire.Response, err error) {
			if err == nil && r.Status == 200 {
				ok++
			}
		})
	}
	sim.Run()
	if ok != 5 || srv.Hits != 5 {
		t.Fatalf("ok=%d hits=%d", ok, srv.Hits)
	}
}
