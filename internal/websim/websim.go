// Package websim provides an HTTP/1.1 server and client over the simulated
// TCP stack. The overt HTTP baseline, the DDoS-mimicry technique, and the
// population's web browsing all use it.
package websim

import (
	"errors"
	"fmt"
	"net/netip"

	"safemeasure/internal/httpwire"
	"safemeasure/internal/tcpsim"
)

// HTTPPort is the server port.
const HTTPPort = 80

// ErrConnection wraps transport failures (reset or timeout).
var ErrConnection = errors.New("websim: connection failed")

// Server is a minimal virtual-hosting web server.
type Server struct {
	// Hits counts requests served.
	Hits int
	// HitsByHost tallies per Host header.
	HitsByHost map[string]int
	// Handler produces responses; the default returns 200 with a small
	// page naming the host and path.
	Handler func(*httpwire.Request) *httpwire.Response
}

// NewServer starts a web server on the stack's port 80.
func NewServer(stack *tcpsim.Stack) (*Server, error) {
	srv := &Server{HitsByHost: make(map[string]int)}
	err := stack.Listen(HTTPPort, func(c *tcpsim.Conn) {
		var buf []byte
		c.OnData = func(c *tcpsim.Conn, data []byte) {
			buf = append(buf, data...)
			for {
				req, n, err := httpwire.ParseRequest(buf)
				if err != nil {
					return // incomplete or garbage; wait for more
				}
				buf = buf[n:]
				srv.Hits++
				srv.HitsByHost[req.Host()]++
				resp := srv.respond(req)
				c.Send(resp.Marshal())
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("websim: %w", err)
	}
	return srv, nil
}

func (s *Server) respond(req *httpwire.Request) *httpwire.Response {
	if s.Handler != nil {
		return s.Handler(req)
	}
	body := fmt.Sprintf("<html><body>%s%s</body></html>", req.Host(), req.Path)
	return &httpwire.Response{Status: 200, Headers: map[string]string{"Server": "websim"}, Body: []byte(body)}
}

// Get fetches http://host path from the server at addr and calls done with
// the response or an error (censored connections surface as resets or
// timeouts wrapped in ErrConnection). It returns the connection so callers
// can tweak it before the handshake completes.
func Get(stack *tcpsim.Stack, addr netip.Addr, host, path string, done func(*httpwire.Response, error)) *tcpsim.Conn {
	return GetPartial(stack, addr, host, path, func(r *httpwire.Response, _ []byte, err error) {
		done(r, err)
	})
}

// GetPartial is Get, but done also receives whatever response bytes had
// been buffered when the fetch ended. On success that is the full wire
// response; on failure it is the truncated prefix the peer (or a censor
// forging as the peer) managed to deliver — which is what truncated-
// blockpage fingerprinting inspects. The slice is the fetch's own buffer;
// callers may retain it.
func GetPartial(stack *tcpsim.Stack, addr netip.Addr, host, path string, done func(*httpwire.Response, []byte, error)) *tcpsim.Conn {
	conn := stack.Dial(addr, HTTPPort)
	var buf []byte
	finished := false
	finish := func(r *httpwire.Response, err error) {
		if !finished {
			finished = true
			done(r, buf, err)
		}
	}
	conn.OnConnect = func(c *tcpsim.Conn) {
		req := httpwire.NewRequest("GET", host, path)
		req.Headers["User-Agent"] = "popbrowser/1.0"
		c.Send(req.Marshal())
	}
	conn.OnData = func(c *tcpsim.Conn, data []byte) {
		buf = append(buf, data...)
		resp, _, err := httpwire.ParseResponse(buf)
		if err != nil {
			return // incomplete
		}
		finish(resp, nil)
		c.Close()
	}
	conn.OnFail = func(_ *tcpsim.Conn, err error) {
		finish(nil, fmt.Errorf("%w: %w", ErrConnection, err))
	}
	conn.OnClose = func(*tcpsim.Conn) {
		finish(nil, fmt.Errorf("%w: closed before response", ErrConnection))
	}
	return conn
}
