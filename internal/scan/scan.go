// Package scan implements the nmap-style SYN (half-open) scanner behind the
// paper's Method #1 (§3.1): stealthy TCP/IP censorship measurement disguised
// as the scanning traffic botnets emit constantly (10.8 M scans from 1.76 M
// hosts hit one darknet in a single month — Durumeric et al., cited in
// §3.2.2).
//
// The scanner sends bare SYNs from a raw socket, classifies each port from
// the reply (SYN/ACK = open, RST = closed, silence = filtered), and answers
// SYN/ACKs with a RST exactly as nmap's half-open scan does. Censorship is
// inferred by the caller: a port that must be open for the service to exist
// (80 on a web site) reported closed or filtered implies interference.
package scan

import (
	"net/netip"
	"sort"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

// nmapTop100 is the head of nmap's frequency-ordered TCP port table
// (nmap-services). Scans of "the most commonly open 1,000 TCP ports" start
// with these.
var nmapTop100 = []uint16{
	80, 23, 443, 21, 22, 25, 3389, 110, 445, 139,
	143, 53, 135, 3306, 8080, 1723, 111, 995, 993, 5900,
	1025, 587, 8888, 199, 1720, 465, 548, 113, 81, 6001,
	10000, 514, 5060, 179, 1026, 2000, 8443, 8000, 32768, 554,
	26, 1433, 49152, 2001, 515, 8008, 49154, 1027, 5666, 646,
	5000, 5631, 631, 49153, 8081, 2049, 88, 79, 5800, 106,
	2121, 1110, 49155, 6000, 513, 990, 5357, 427, 49156, 543,
	544, 5101, 144, 7, 389, 8009, 3128, 444, 9999, 5009,
	7070, 5190, 3000, 5432, 1900, 3986, 13, 1029, 9, 5051,
	6646, 49157, 1028, 873, 1755, 2717, 4899, 9100, 119, 37,
}

// TopPorts returns the n most common TCP ports in scan order. The first 100
// are nmap's measured table; beyond that the list is extended
// deterministically with the remaining low registered ports, which
// preserves the "top ports" shape without embedding the full nmap corpus.
func TopPorts(n int) []uint16 {
	if n <= len(nmapTop100) {
		return append([]uint16(nil), nmapTop100[:n]...)
	}
	out := append([]uint16(nil), nmapTop100...)
	seen := make(map[uint16]bool, n)
	for _, p := range out {
		seen[p] = true
	}
	for p := uint16(1); len(out) < n && p < 10000; p++ {
		if !seen[p] {
			out = append(out, p)
			seen[p] = true
		}
	}
	return out
}

// PortState classifies one scanned port.
type PortState int

// Port states, nmap terminology.
const (
	StateFiltered PortState = iota // no answer: dropped somewhere
	StateOpen                      // SYN/ACK received
	StateClosed                    // RST received
)

// String returns the nmap-style name.
func (s PortState) String() string {
	return [...]string{"filtered", "open", "closed"}[s]
}

// Result is a completed scan of one target.
type Result struct {
	Target netip.Addr
	Ports  map[uint16]PortState
	// ProbesSent counts SYNs emitted (the technique's traffic footprint).
	ProbesSent int
}

// OpenPorts returns the sorted open ports.
func (r *Result) OpenPorts() []uint16 {
	var out []uint16
	for p, st := range r.Ports {
		if st == StateOpen {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count tallies ports in the given state.
func (r *Result) Count(st PortState) int {
	n := 0
	for _, s := range r.Ports {
		if s == st {
			n++
		}
	}
	return n
}

// Scanner performs SYN scans from a host's raw interface.
type Scanner struct {
	host *netsim.Host
	sim  *netsim.Sim

	// Interval spaces consecutive SYNs; Timeout is how long after the last
	// probe the scanner waits before declaring silence "filtered".
	Interval time.Duration
	Timeout  time.Duration

	// SrcAddr overrides the source address (IP spoofing for §4 cover
	// traffic); zero means the host's own address.
	SrcAddr netip.Addr
	// Shuffle randomizes probe order (nmap's default), drawn from the
	// simulator's seeded RNG so runs stay reproducible.
	Shuffle bool

	basePort uint16
}

// NewScanner creates a scanner bound to a host.
func NewScanner(h *netsim.Host) *Scanner {
	return &Scanner{
		host:     h,
		sim:      h.Sim(),
		Interval: 2 * time.Millisecond,
		Timeout:  250 * time.Millisecond,
		basePort: 52000,
	}
}

// Scan probes target's ports and calls done with the classification. It
// returns immediately; the scan runs in virtual time.
func (s *Scanner) Scan(target netip.Addr, ports []uint16, done func(*Result)) {
	src := s.SrcAddr
	if !src.IsValid() {
		src = s.host.Addr
	}
	if s.Shuffle {
		shuffled := append([]uint16(nil), ports...)
		s.sim.Rand().Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		ports = shuffled
	}
	res := &Result{Target: target, Ports: make(map[uint16]PortState, len(ports))}
	srcPortOf := make(map[uint16]uint16, len(ports)) // our ephemeral -> scanned port
	for i, p := range ports {
		res.Ports[p] = StateFiltered
		srcPortOf[s.basePort+uint16(i)] = p
	}

	// Sniff replies addressed to our probe ports. Replies go to src, which
	// is this host unless we are spoofing; when spoofing, the cover host's
	// OS answers and this scan records nothing (by design — the real
	// measurement runs unspoofed, spoofed copies are cover).
	s.host.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP == nil || pkt.IP.Src != target || pkt.IP.Dst != s.host.Addr {
			return
		}
		scanned, ok := srcPortOf[pkt.TCP.DstPort]
		if !ok || pkt.TCP.SrcPort != scanned {
			return
		}
		switch {
		case pkt.TCP.Flags&packet.TCPSyn != 0 && pkt.TCP.Flags&packet.TCPAck != 0:
			if res.Ports[scanned] == StateFiltered {
				res.Ports[scanned] = StateOpen
			}
			// Half-open: tear down with RST like nmap -sS.
			rst := &packet.TCP{SrcPort: pkt.TCP.DstPort, DstPort: scanned, Seq: pkt.TCP.Ack, Flags: packet.TCPRst}
			if out, err := packet.BuildTCP(s.host.Addr, target, packet.DefaultTTL, rst); err == nil {
				s.host.SendIP(out)
			}
		case pkt.TCP.Flags&packet.TCPRst != 0:
			if res.Ports[scanned] == StateFiltered {
				res.Ports[scanned] = StateClosed
			}
		}
	})

	s.basePort += uint16(len(ports)) // keep later scans' ports distinct

	for i, p := range ports {
		i, p := i, p
		s.sim.Schedule(time.Duration(i)*s.Interval, func() {
			syn := &packet.TCP{
				SrcPort: s.basePort - uint16(len(ports)) + uint16(i), DstPort: p,
				Seq: uint32(0x1000 + i), Flags: packet.TCPSyn, Window: 1024,
			}
			if raw, err := packet.BuildTCP(src, target, packet.DefaultTTL, syn); err == nil {
				res.ProbesSent++
				s.host.SendIP(raw)
			}
		})
	}
	total := time.Duration(len(ports))*s.Interval + s.Timeout
	s.sim.Schedule(total, func() { done(res) })
}

// InferCensorship applies the paper's decision rule: given ports that are
// known-open on the real service (e.g. 80 for a web site), report
// interference when the scan saw them as closed (RST — injected) or
// filtered (dropped).
func InferCensorship(res *Result, mustBeOpen []uint16) (blocked bool, evidence map[uint16]PortState) {
	evidence = make(map[uint16]PortState)
	for _, p := range mustBeOpen {
		st, ok := res.Ports[p]
		if !ok {
			continue
		}
		if st != StateOpen {
			blocked = true
		}
		evidence[p] = st
	}
	return blocked, evidence
}
