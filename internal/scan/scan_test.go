package scan

import (
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/tcpsim"
)

var (
	cliAddr = netip.MustParseAddr("10.1.0.10")
	srvAddr = netip.MustParseAddr("203.0.113.80")
	rtrAddr = netip.MustParseAddr("10.1.0.1")
)

type env struct {
	sim    *netsim.Sim
	client *netsim.Host
	server *netsim.Host
	router *netsim.Router
	ss     *tcpsim.Stack
}

func newEnv(t testing.TB) *env {
	t.Helper()
	sim := netsim.NewSim(5)
	e := &env{
		sim:    sim,
		client: netsim.NewHost(sim, "client", cliAddr),
		server: netsim.NewHost(sim, "server", srvAddr),
		router: netsim.NewRouter(sim, "r", rtrAddr, 2),
	}
	netsim.AttachHost(sim, e.client, e.router, 0, time.Millisecond)
	netsim.AttachHost(sim, e.server, e.router, 1, time.Millisecond)
	e.router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	e.router.SetDefaultRoute(1)
	e.ss = tcpsim.NewStack(e.server)
	return e
}

func TestTopPorts(t *testing.T) {
	top := TopPorts(1000)
	if len(top) != 1000 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != 80 || top[1] != 23 || top[2] != 443 {
		t.Fatalf("head = %v", top[:3])
	}
	seen := map[uint16]bool{}
	for _, p := range top {
		if seen[p] {
			t.Fatalf("duplicate port %d", p)
		}
		seen[p] = true
	}
	if got := TopPorts(10); len(got) != 10 || got[0] != 80 {
		t.Fatalf("TopPorts(10) = %v", got)
	}
}

func TestScanClassifiesOpenClosedFiltered(t *testing.T) {
	e := newEnv(t)
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	e.ss.Listen(22, func(c *tcpsim.Conn) {})
	// Filter (drop) SYNs to port 443 at the router: "filtered".
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.TCP != nil && tp.Pkt.TCP.DstPort == 443 {
			return netsim.Drop
		}
		return netsim.Pass
	}))
	var res *Result
	sc := NewScanner(e.client)
	sc.Scan(srvAddr, []uint16{80, 22, 443, 8080}, func(r *Result) { res = r })
	e.sim.Run()
	if res == nil {
		t.Fatal("scan never completed")
	}
	want := map[uint16]PortState{80: StateOpen, 22: StateOpen, 443: StateFiltered, 8080: StateClosed}
	for p, st := range want {
		if res.Ports[p] != st {
			t.Errorf("port %d = %v, want %v", p, res.Ports[p], st)
		}
	}
	if res.ProbesSent != 4 {
		t.Fatalf("probes = %d", res.ProbesSent)
	}
	if got := res.OpenPorts(); len(got) != 2 || got[0] != 22 || got[1] != 80 {
		t.Fatalf("open = %v", got)
	}
	if res.Count(StateFiltered) != 1 {
		t.Fatalf("filtered count = %d", res.Count(StateFiltered))
	}
}

func TestScanHalfOpenSendsRST(t *testing.T) {
	// nmap -sS behaviour: after SYN/ACK, the scanner must RST, never ACK —
	// the server connection must not complete.
	e := newEnv(t)
	accepted := false
	e.ss.Listen(80, func(c *tcpsim.Conn) { accepted = true })
	var sawRST bool
	e.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPRst != 0 && pkt.IP.Src == cliAddr {
			sawRST = true
		}
	})
	sc := NewScanner(e.client)
	var res *Result
	sc.Scan(srvAddr, []uint16{80}, func(r *Result) { res = r })
	e.sim.Run()
	if res.Ports[80] != StateOpen {
		t.Fatalf("port 80 = %v", res.Ports[80])
	}
	if !sawRST {
		t.Fatal("no RST teardown after SYN/ACK")
	}
	if accepted {
		t.Fatal("half-open scan completed the handshake")
	}
}

func TestTwoScansDistinctPorts(t *testing.T) {
	e := newEnv(t)
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	sc := NewScanner(e.client)
	var r1, r2 *Result
	sc.Scan(srvAddr, []uint16{80, 81}, func(r *Result) { r1 = r })
	e.sim.Run()
	sc.Scan(srvAddr, []uint16{80, 81}, func(r *Result) { r2 = r })
	e.sim.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("scans incomplete")
	}
	if r1.Ports[80] != StateOpen || r2.Ports[80] != StateOpen {
		t.Fatalf("r1=%v r2=%v", r1.Ports, r2.Ports)
	}
	if r1.Ports[81] != StateClosed || r2.Ports[81] != StateClosed {
		t.Fatalf("closed port: r1=%v r2=%v", r1.Ports[81], r2.Ports[81])
	}
}

func TestInferCensorship(t *testing.T) {
	res := &Result{Ports: map[uint16]PortState{80: StateClosed, 443: StateOpen}}
	blocked, ev := InferCensorship(res, []uint16{80})
	if !blocked || ev[80] != StateClosed {
		t.Fatalf("blocked=%v ev=%v", blocked, ev)
	}
	blocked, _ = InferCensorship(res, []uint16{443})
	if blocked {
		t.Fatal("open port inferred as censored")
	}
	// Unknown port contributes nothing.
	blocked, ev = InferCensorship(res, []uint16{9999})
	if blocked || len(ev) != 0 {
		t.Fatalf("unknown port: %v %v", blocked, ev)
	}
}

func TestPortStateString(t *testing.T) {
	if StateOpen.String() != "open" || StateClosed.String() != "closed" || StateFiltered.String() != "filtered" {
		t.Fatal("names")
	}
}

func TestScanShuffleStillAccurate(t *testing.T) {
	e := newEnv(t)
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	var order []uint16
	e.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags == packet.TCPSyn {
			order = append(order, pkt.TCP.DstPort)
		}
	})
	sc := NewScanner(e.client)
	sc.Shuffle = true
	ports := TopPorts(30)
	var res *Result
	sc.Scan(srvAddr, ports, func(r *Result) { res = r })
	e.sim.Run()
	if res == nil || res.Ports[80] != StateOpen {
		t.Fatalf("shuffled scan verdicts: %v", res)
	}
	if len(order) != 30 {
		t.Fatalf("probes = %d", len(order))
	}
	inOrder := true
	for i := range order {
		if order[i] != ports[i] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("shuffle left ports in canonical order")
	}
}
