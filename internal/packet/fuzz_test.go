package packet

import "testing"

// FuzzParse must never panic and, when it accepts input, the parsed packet
// must re-marshal to identical header semantics.
func FuzzParse(f *testing.F) {
	tcp, _ := BuildTCP(addrA, addrB, 64, &TCP{SrcPort: 1, DstPort: 80, Flags: TCPSyn})
	udp, _ := BuildUDP(addrA, addrB, 64, &UDP{SrcPort: 53, DstPort: 53, Payload: []byte("q")})
	icmp, _ := BuildICMP(addrA, addrB, 64, &ICMP{Type: ICMPEchoRequest, ID: 1})
	f.Add(tcp)
	f.Add(udp)
	f.Add(icmp)
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		out, err := p.IP.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-marshaled packet failed to parse: %v", err)
		}
		if p2.IP.Src != p.IP.Src || p2.IP.Dst != p.IP.Dst || p2.IP.Protocol != p.IP.Protocol {
			t.Fatal("header drift across round-trip")
		}
	})
}

// FuzzReassembler: arbitrary fragments must never panic or return a
// datagram that fails to parse at the IP layer.
func FuzzReassembler(f *testing.F) {
	raw, _ := BuildUDP(addrA, addrB, 64, &UDP{SrcPort: 1, DstPort: 2, Payload: make([]byte, 600)})
	frags, _ := Fragment(raw, 256)
	for _, fr := range frags {
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReassembler()
		if out := r.Add(0, data); out != nil {
			var ip IPv4
			if err := ip.DecodeFromBytes(out); err != nil {
				t.Fatalf("reassembler emitted unparsable datagram: %v", err)
			}
		}
	})
}
