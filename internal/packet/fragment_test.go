package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildBig(t testing.TB, n int) []byte {
	t.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	raw, err := BuildUDP(addrA, addrB, 64, &UDP{SrcPort: 7, DstPort: 9, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestFragmentRoundTrip(t *testing.T) {
	raw := buildBig(t, 1000)
	frags, err := Fragment(raw, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 4 { // 1008 UDP bytes / 256
		t.Fatalf("fragments = %d", len(frags))
	}
	for i, f := range frags {
		if !IsFragment(f) {
			t.Fatalf("fragment %d not marked", i)
		}
	}
	r := NewReassembler()
	var out []byte
	for i, f := range frags {
		out = r.Add(int64(i), f)
		if i < len(frags)-1 && out != nil {
			t.Fatalf("complete after %d/%d pieces", i+1, len(frags))
		}
	}
	if out == nil {
		t.Fatal("never completed")
	}
	if !bytes.Equal(out, raw) {
		t.Fatalf("reassembly mismatch: %d vs %d bytes", len(out), len(raw))
	}
	// The reassembled datagram parses cleanly, transport checksum intact.
	if _, err := Parse(out); err != nil {
		t.Fatalf("reassembled parse: %v", err)
	}
}

func TestFragmentOutOfOrder(t *testing.T) {
	raw := buildBig(t, 900)
	frags, _ := Fragment(raw, 128)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	r := NewReassembler()
	var out []byte
	for i, f := range frags {
		if got := r.Add(int64(i), f); got != nil {
			out = got
		}
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("out-of-order reassembly failed")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestFragmentSmallPacketUntouched(t *testing.T) {
	raw := buildBig(t, 50)
	frags, err := Fragment(raw, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], raw) {
		t.Fatal("small datagram was fragmented")
	}
	if IsFragment(raw) {
		t.Fatal("whole datagram marked as fragment")
	}
}

func TestFragmentValidation(t *testing.T) {
	raw := buildBig(t, 500)
	if _, err := Fragment(raw, 100); err == nil { // not multiple of 8
		t.Fatal("mtu 100 accepted")
	}
	if _, err := Fragment(raw, 0); err == nil {
		t.Fatal("mtu 0 accepted")
	}
	frags, _ := Fragment(raw, 128)
	if _, err := Fragment(frags[0], 64); err == nil {
		t.Fatal("fragmenting a fragment accepted")
	}
}

func TestReassemblerDuplicatePieces(t *testing.T) {
	raw := buildBig(t, 600)
	frags, _ := Fragment(raw, 256)
	r := NewReassembler()
	r.Add(0, frags[0])
	r.Add(1, frags[0]) // duplicate
	r.Add(2, frags[1])
	out := r.Add(3, frags[2])
	if !bytes.Equal(out, raw) {
		t.Fatal("duplicate piece broke reassembly")
	}
}

func TestReassemblerInterleavedDatagrams(t *testing.T) {
	a := buildBig(t, 600)
	// Different ID so the keys differ.
	var ip IPv4
	ip.DecodeFromBytes(a)
	ip2 := IPv4{ID: 999, TTL: ip.TTL, Protocol: ip.Protocol, Src: ip.Src, Dst: ip.Dst, Payload: append([]byte(nil), ip.Payload...)}
	b, _ := ip2.Marshal()

	fa, _ := Fragment(a, 256)
	fb, _ := Fragment(b, 256)
	r := NewReassembler()
	var gotA, gotB []byte
	for i := range fa {
		if out := r.Add(int64(i), fa[i]); out != nil {
			gotA = out
		}
		if out := r.Add(int64(i), fb[i]); out != nil {
			gotB = out
		}
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("interleaved reassembly failed")
	}
}

func TestReassemblerSweep(t *testing.T) {
	raw := buildBig(t, 600)
	frags, _ := Fragment(raw, 256)
	r := NewReassembler()
	r.Add(0, frags[0]) // incomplete
	if n := r.Sweep(r.Timeout + 1); n != 1 {
		t.Fatalf("swept %d", n)
	}
	// After eviction the remaining pieces can't complete.
	if out := r.Add(r.Timeout+2, frags[1]); out != nil {
		t.Fatal("completed from evicted state")
	}
}

func TestQuickFragmentReassembleRoundTrip(t *testing.T) {
	f := func(seed int64, sizeSeed uint16, mtuSeed uint8) bool {
		size := 100 + int(sizeSeed)%4000
		mtu := (1 + int(mtuSeed)%64) * 8
		payload := make([]byte, size)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(payload)
		raw, err := BuildUDP(addrA, addrB, 64, &UDP{SrcPort: 1, DstPort: 2, Payload: payload})
		if err != nil {
			return false
		}
		frags, err := Fragment(raw, mtu)
		if err != nil {
			return false
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := NewReassembler()
		var out []byte
		for i, fr := range frags {
			if got := r.Add(int64(i), fr); got != nil {
				out = got
			}
		}
		return bytes.Equal(out, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
