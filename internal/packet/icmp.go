package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used in the lab.
const (
	ICMPEchoReply       uint8 = 0
	ICMPDestUnreach     uint8 = 3
	ICMPEchoRequest     uint8 = 8
	ICMPTimeExceeded    uint8 = 11
	ICMPCodeTTLExpired  uint8 = 0 // code for ICMPTimeExceeded
	ICMPCodePortUnreach uint8 = 3 // code for ICMPDestUnreach
	ICMPCodeHostUnreach uint8 = 1 // code for ICMPDestUnreach
)

const icmpHeaderLen = 8

// ICMP is a decoded ICMP message. For error messages (TimeExceeded,
// DestUnreach) Payload carries the offending datagram's IP header + 8 bytes,
// per RFC 792.
type ICMP struct {
	Type    uint8
	Code    uint8
	ID      uint16 // echo only
	Seq     uint16 // echo only
	Payload []byte
}

// DecodeFromBytes parses an ICMP message and verifies its checksum.
func (ic *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < icmpHeaderLen {
		return ErrTruncated
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.Payload = data[icmpHeaderLen:]
	return nil
}

// Marshal serializes the message, computing the checksum.
func (ic *ICMP) Marshal() ([]byte, error) {
	buf := make([]byte, icmpHeaderLen+len(ic.Payload))
	ic.marshalInto(buf)
	return buf, nil
}

// marshalInto serializes the message into buf, which must be exactly
// icmpHeaderLen+len(Payload) bytes (see TCP.marshalInto).
func (ic *ICMP) marshalInto(buf []byte) {
	buf[0] = ic.Type
	buf[1] = ic.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint16(buf[4:6], ic.ID)
	binary.BigEndian.PutUint16(buf[6:8], ic.Seq)
	copy(buf[icmpHeaderLen:], ic.Payload)
	binary.BigEndian.PutUint16(buf[2:4], Checksum(buf))
}

// String renders a one-line summary for logs and debugging.
func (ic *ICMP) String() string {
	return fmt.Sprintf("ICMP type=%d code=%d id=%d seq=%d", ic.Type, ic.Code, ic.ID, ic.Seq)
}
