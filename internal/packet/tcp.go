package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// FlagString renders TCP flags in the conventional "SA"/"R"/"FA" style.
func FlagString(flags uint8) string {
	var b strings.Builder
	for _, f := range []struct {
		bit  uint8
		name byte
	}{{TCPSyn, 'S'}, {TCPFin, 'F'}, {TCPRst, 'R'}, {TCPPsh, 'P'}, {TCPAck, 'A'}, {TCPUrg, 'U'}} {
		if flags&f.bit != 0 {
			b.WriteByte(f.name)
		}
	}
	if b.Len() == 0 {
		return "."
	}
	return b.String()
}

const tcpHeaderLen = 20

// TCP is a decoded TCP segment.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	Options []byte
	Payload []byte
}

// HeaderLen returns the header length in bytes including options,
// rounded up to a 32-bit boundary.
func (t *TCP) HeaderLen() int {
	opt := (len(t.Options) + 3) &^ 3
	return tcpHeaderLen + opt
}

// DecodeFromBytes parses a TCP segment. If src/dst are valid the transport
// checksum is verified. The payload slice aliases data.
func (t *TCP) DecodeFromBytes(data []byte, src, dst netip.Addr) error {
	if len(data) < tcpHeaderLen {
		return ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < tcpHeaderLen || off > len(data) {
		return ErrBadHeader
	}
	if src.IsValid() && dst.IsValid() {
		if TransportChecksum(src, dst, ProtoTCP, data) != 0 {
			return ErrBadChecksum
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if off > tcpHeaderLen {
		t.Options = data[tcpHeaderLen:off]
	} else {
		t.Options = nil
	}
	t.Payload = data[off:]
	return nil
}

// Marshal serializes the segment, computing the transport checksum from the
// given IPv4 endpoints.
func (t *TCP) Marshal(src, dst netip.Addr) ([]byte, error) {
	buf := make([]byte, t.HeaderLen()+len(t.Payload))
	t.marshalInto(buf, src, dst)
	return buf, nil
}

// marshalInto serializes the segment into buf, which must be exactly
// HeaderLen()+len(Payload) bytes (BuildTCP writes straight into the tail of
// the IP datagram it is assembling, saving the intermediate allocation).
func (t *TCP) marshalInto(buf []byte, src, dst netip.Addr) {
	hl := t.HeaderLen()
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = uint8(hl/4) << 4
	buf[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	buf[16], buf[17] = 0, 0
	binary.BigEndian.PutUint16(buf[18:20], t.Urgent)
	copy(buf[tcpHeaderLen:hl], t.Options)
	copy(buf[hl:], t.Payload)
	binary.BigEndian.PutUint16(buf[16:18], TransportChecksum(src, dst, ProtoTCP, buf))
}

// String renders a one-line summary for logs and debugging.
func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d -> %d [%s] seq=%d ack=%d len=%d",
		t.SrcPort, t.DstPort, FlagString(t.Flags), t.Seq, t.Ack, len(t.Payload))
}
