package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IPProtocol identifies the protocol carried in an IPv4 payload.
type IPProtocol uint8

// Protocol numbers used in the lab.
const (
	ProtoICMP IPProtocol = 1
	ProtoTCP  IPProtocol = 6
	ProtoUDP  IPProtocol = 17
)

// String returns the conventional protocol name.
func (p IPProtocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// IPv4 header flag bits (in the Flags field, upper 3 bits of byte 6).
const (
	IPFlagDontFragment = 0x2
	IPFlagMoreFragment = 0x1
)

// DefaultTTL is the initial TTL hosts stamp on outgoing datagrams.
const DefaultTTL = 64

// ipv4HeaderLen is the length of a header without options.
const ipv4HeaderLen = 20

// Errors returned by the IPv4 codec.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// IPv4 is a decoded IPv4 datagram header plus payload.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
	Payload  []byte
}

// HeaderLen returns the header length in bytes including options,
// rounded up to a 32-bit boundary.
func (ip *IPv4) HeaderLen() int {
	opt := (len(ip.Options) + 3) &^ 3
	return ipv4HeaderLen + opt
}

// DecodeFromBytes parses an IPv4 datagram. The payload slice aliases data.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || ihl > len(data) {
		return ErrBadHeader
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return ErrTruncated
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if ihl > ipv4HeaderLen {
		ip.Options = data[ipv4HeaderLen:ihl]
	} else {
		ip.Options = nil
	}
	ip.Payload = data[ihl:total]
	return nil
}

// DecodeQuotedHeader parses just the IPv4 header from an ICMP error's
// quoted payload (RFC 792 quotes the header plus 8 bytes, so the datagram
// is truncated by design and DecodeFromBytes would reject it). The Payload
// field carries whatever quoted transport bytes are present.
func (ip *IPv4) DecodeQuotedHeader(data []byte) error {
	if len(data) < ipv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || ihl > len(data) {
		return ErrBadHeader
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = nil
	if ihl > ipv4HeaderLen {
		ip.Options = data[ipv4HeaderLen:ihl]
	}
	ip.Payload = data[ihl:]
	return nil
}

// Marshal serializes the datagram, computing total length and header
// checksum. Src and Dst must be valid IPv4 addresses.
func (ip *IPv4) Marshal() ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("packet: IPv4 requires 4-byte addresses (src=%v dst=%v)", ip.Src, ip.Dst)
	}
	hl := ip.HeaderLen()
	total := hl + len(ip.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: datagram too large (%d bytes)", total)
	}
	buf := make([]byte, total)
	ip.writeHeader(buf, total)
	copy(buf[hl:], ip.Payload)
	return buf, nil
}

// writeHeader serializes the IP header into buf[:HeaderLen()], computing
// the header checksum over whatever Options the datagram carries. total is
// the datagram's full length (callers may be assembling the payload after
// the header in the same buffer).
func (ip *IPv4) writeHeader(buf []byte, total int) {
	hl := ip.HeaderLen()
	buf[0] = 4<<4 | uint8(hl/4)
	buf[1] = ip.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint16(buf[4:6], ip.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	buf[8] = ip.TTL
	buf[9] = uint8(ip.Protocol)
	buf[10], buf[11] = 0, 0
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	copy(buf[ipv4HeaderLen:hl], ip.Options)
	binary.BigEndian.PutUint16(buf[10:12], Checksum(buf[:hl]))
}

// DecrementTTL decrements the TTL of a serialized IPv4 datagram in place
// and patches the header checksum — the per-hop rewrite a router does,
// without re-marshaling the datagram. It reports whether raw held a
// well-formed header with nonzero TTL; on false, raw is unmodified. The
// result is byte-identical to decoding, decrementing, and re-marshaling a
// canonical (trailer-free) datagram.
func DecrementTTL(raw []byte) bool {
	if len(raw) < ipv4HeaderLen || raw[0]>>4 != 4 {
		return false
	}
	ihl := int(raw[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || ihl > len(raw) || raw[8] == 0 {
		return false
	}
	raw[8]--
	raw[10], raw[11] = 0, 0
	binary.BigEndian.PutUint16(raw[10:12], Checksum(raw[:ihl]))
	return true
}

// String renders a one-line summary for logs and debugging.
func (ip *IPv4) String() string {
	return fmt.Sprintf("IPv4 %v -> %v %v ttl=%d len=%d", ip.Src, ip.Dst, ip.Protocol, ip.TTL, len(ip.Payload))
}
