package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

const udpHeaderLen = 8

// UDP is a decoded UDP datagram.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// DecodeFromBytes parses a UDP datagram. If src/dst are valid the transport
// checksum is verified (a zero checksum field means "not computed" per RFC
// 768 and is accepted). The payload slice aliases data.
func (u *UDP) DecodeFromBytes(data []byte, src, dst netip.Addr) error {
	if len(data) < udpHeaderLen {
		return ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < udpHeaderLen || length > len(data) {
		return ErrTruncated
	}
	if cs := binary.BigEndian.Uint16(data[6:8]); cs != 0 && src.IsValid() && dst.IsValid() {
		if TransportChecksum(src, dst, ProtoUDP, data[:length]) != 0 {
			return ErrBadChecksum
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Payload = data[udpHeaderLen:length]
	return nil
}

// Marshal serializes the datagram, computing length and checksum.
func (u *UDP) Marshal(src, dst netip.Addr) ([]byte, error) {
	total := udpHeaderLen + len(u.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: UDP datagram too large (%d bytes)", total)
	}
	buf := make([]byte, total)
	u.marshalInto(buf, src, dst)
	return buf, nil
}

// marshalInto serializes the datagram into buf, which must be exactly
// udpHeaderLen+len(Payload) bytes (see TCP.marshalInto).
func (u *UDP) marshalInto(buf []byte, src, dst netip.Addr) {
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(buf)))
	buf[6], buf[7] = 0, 0
	copy(buf[udpHeaderLen:], u.Payload)
	cs := TransportChecksum(src, dst, ProtoUDP, buf)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted all-ones when computed sum is zero
	}
	binary.BigEndian.PutUint16(buf[6:8], cs)
}

// String renders a one-line summary for logs and debugging.
func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d -> %d len=%d", u.SrcPort, u.DstPort, len(u.Payload))
}
