// Package packet implements the wire formats used throughout the simulated
// network: IPv4, TCP, UDP and ICMP, together with Internet checksums and
// flow (5-tuple) keys.
//
// The design follows the gopacket layering model: each layer type can decode
// itself from bytes (DecodeFromBytes) and serialize itself in front of an
// already-serialized payload (SerializeTo / Marshal helpers). The simulated
// links in internal/netsim carry serialized IPv4 datagrams produced and
// consumed by this package, so every packet that crosses the lab topology
// round-trips through these codecs, exactly as traffic on a real wire would.
package packet
