package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("93.184.216.34")
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(data)
	if got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	sum := Checksum(data)
	// Appending the checksum (padded) must verify to zero.
	padded := []byte{0x01, 0x02, 0x03, 0x00, byte(sum >> 8), byte(sum)}
	if Checksum(padded) != 0 {
		t.Fatalf("self-verification failed: %#x", Checksum(padded))
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		TOS: 0x10, ID: 0xbeef, Flags: IPFlagDontFragment, TTL: 61,
		Protocol: ProtoTCP, Src: addrA, Dst: addrB,
		Payload: []byte("hello world"),
	}
	wire, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.TTL != in.TTL ||
		out.Protocol != in.Protocol || out.ID != in.ID || out.Flags != in.Flags || out.TOS != in.TOS {
		t.Fatalf("header mismatch: got %+v want %+v", out, *in)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch: %q != %q", out.Payload, in.Payload)
	}
}

func TestIPv4Options(t *testing.T) {
	in := &IPv4{TTL: 64, Protocol: ProtoUDP, Src: addrA, Dst: addrB,
		Options: []byte{0x94, 0x04, 0x00, 0x00}, Payload: []byte("x")}
	wire, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Options, in.Options) {
		t.Fatalf("options mismatch: %x != %x", out.Options, in.Options)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	in := &IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB, Payload: []byte("p")}
	wire, _ := in.Marshal()
	wire[8] ^= 0xff // flip TTL without fixing checksum
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4Truncated(t *testing.T) {
	in := &IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB, Payload: []byte("payload")}
	wire, _ := in.Marshal()
	var out IPv4
	for _, n := range []int{0, 1, 10, 19} {
		if err := out.DecodeFromBytes(wire[:n]); err == nil {
			t.Fatalf("decode of %d bytes succeeded", n)
		}
	}
}

func TestIPv4BadVersion(t *testing.T) {
	in := &IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB}
	wire, _ := in.Marshal()
	wire[0] = 6<<4 | wire[0]&0x0f
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	in := &TCP{
		SrcPort: 43210, DstPort: 80, Seq: 0x01020304, Ack: 0x0a0b0c0d,
		Flags: TCPSyn | TCPAck, Window: 65000, Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	wire, err := in.Marshal(addrA, addrB)
	if err != nil {
		t.Fatal(err)
	}
	var out TCP
	if err := out.DecodeFromBytes(wire, addrA, addrB); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort || out.Seq != in.Seq ||
		out.Ack != in.Ack || out.Flags != in.Flags || out.Window != in.Window {
		t.Fatalf("header mismatch: got %+v want %+v", out, *in)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTCPChecksumBindsAddresses(t *testing.T) {
	in := &TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn}
	wire, _ := in.Marshal(addrA, addrB)
	var out TCP
	// Decoding with a different source address must fail the pseudo-header
	// checksum: this is what breaks naive IP spoofing without recomputation.
	other := netip.MustParseAddr("10.0.0.99")
	if err := out.DecodeFromBytes(wire, other, addrB); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := &UDP{SrcPort: 5353, DstPort: 53, Payload: []byte{0xde, 0xad}}
	wire, err := in.Marshal(addrA, addrB)
	if err != nil {
		t.Fatal(err)
	}
	var out UDP
	if err := out.DecodeFromBytes(wire, addrA, addrB); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("mismatch: %+v", out)
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	in := &UDP{SrcPort: 9, DstPort: 9, Payload: []byte("z")}
	wire, _ := in.Marshal(addrA, addrB)
	wire[6], wire[7] = 0, 0 // sender did not compute a checksum
	var out UDP
	if err := out.DecodeFromBytes(wire, addrA, addrB); err != nil {
		t.Fatalf("zero checksum rejected: %v", err)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	in := &ICMP{Type: ICMPTimeExceeded, Code: ICMPCodeTTLExpired, Payload: []byte("orig header")}
	wire, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var out ICMP
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Code != in.Code || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("mismatch: %+v", out)
	}
}

func TestParseFullTCPPacket(t *testing.T) {
	wire, err := BuildTCP(addrA, addrB, 64, &TCP{SrcPort: 1234, DstPort: 80, Flags: TCPSyn, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil || p.TCP.DstPort != 80 || p.TCP.Flags != TCPSyn {
		t.Fatalf("parsed: %v", p)
	}
	f := FlowOf(p)
	want := Flow{Proto: ProtoTCP, Src: addrA, SrcPort: 1234, Dst: addrB, DstPort: 80}
	if f != want {
		t.Fatalf("flow = %v, want %v", f, want)
	}
}

func TestFlowReverseCanonical(t *testing.T) {
	f := Flow{Proto: ProtoTCP, Src: addrB, SrcPort: 80, Dst: addrA, DstPort: 1234}
	r := f.Reverse()
	if r.Src != addrA || r.SrcPort != 1234 || r.Dst != addrB || r.DstPort != 80 {
		t.Fatalf("reverse = %v", r)
	}
	if f.Canonical() != r.Canonical() {
		t.Fatalf("canonical mismatch: %v vs %v", f.Canonical(), r.Canonical())
	}
	if f.Canonical() != r { // addrA sorts below addrB
		t.Fatalf("canonical = %v, want %v", f.Canonical(), r)
	}
}

func TestFlagString(t *testing.T) {
	cases := map[uint8]string{
		TCPSyn:                   "S",
		TCPSyn | TCPAck:          "SA",
		TCPRst:                   "R",
		TCPFin | TCPAck:          "FA",
		TCPPsh | TCPAck:          "PA",
		0:                        ".",
		TCPUrg | TCPSyn | TCPAck: "SAU",
	}
	for flags, want := range cases {
		if got := FlagString(flags); got != want {
			t.Errorf("FlagString(%#x) = %q, want %q", flags, got, want)
		}
	}
}

// quickAddr derives a valid IPv4 address from fuzz input.
func quickAddr(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(tos, ttl byte, id uint16, a, b, c, d, e, fb, g, h byte, payload []byte) bool {
		in := &IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: ProtoUDP,
			Src: quickAddr(a, b, c, d), Dst: quickAddr(e, fb, g, h), Payload: payload}
		if len(payload) > 60000 {
			return true
		}
		wire, err := in.Marshal()
		if err != nil {
			return false
		}
		var out IPv4
		if err := out.DecodeFromBytes(wire); err != nil {
			return false
		}
		return out.Src == in.Src && out.Dst == in.Dst && out.TTL == in.TTL &&
			out.ID == in.ID && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags byte, win uint16, payload []byte) bool {
		if len(payload) > 60000 {
			return true
		}
		in := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags & 0x3f, Window: win, Payload: payload}
		wire, err := in.Marshal(addrA, addrB)
		if err != nil {
			return false
		}
		var out TCP
		if err := out.DecodeFromBytes(wire, addrA, addrB); err != nil {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Flags == flags&0x3f && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumIncremental(t *testing.T) {
	// Property: checksum of data with its own checksum appended verifies to 0
	// for even-length data.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		cs := Checksum(data)
		whole := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		return Checksum(whole) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(data) // must not panic on arbitrary input
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIPv4Marshal(b *testing.B) {
	ip := &IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB, Payload: make([]byte, 512)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTCP(b *testing.B) {
	wire, _ := BuildTCP(addrA, addrB, 64, &TCP{SrcPort: 1, DstPort: 80, Flags: TCPAck, Payload: make([]byte, 512)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeQuotedHeader(t *testing.T) {
	raw, _ := BuildUDP(addrA, addrB, 7, &UDP{SrcPort: 1, DstPort: 33434, Payload: make([]byte, 100)})
	// ICMP errors quote the header + 8 bytes.
	quote := raw[:28]
	var ip IPv4
	if err := ip.DecodeFromBytes(quote); err == nil {
		t.Fatal("strict decoder accepted a truncated quote")
	}
	if err := ip.DecodeQuotedHeader(quote); err != nil {
		t.Fatalf("quoted decode: %v", err)
	}
	if ip.Src != addrA || ip.Dst != addrB || ip.TTL != 7 || ip.Protocol != ProtoUDP {
		t.Fatalf("quoted header: %+v", ip)
	}
	if len(ip.Payload) != 8 {
		t.Fatalf("quoted payload = %d bytes", len(ip.Payload))
	}
	if err := ip.DecodeQuotedHeader(quote[:10]); err == nil {
		t.Fatal("short quote accepted")
	}
}
