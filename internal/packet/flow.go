package packet

import (
	"fmt"
	"net/netip"
)

// Flow is a transport 5-tuple. It is comparable and usable as a map key,
// which is how the IDS flow table and the surveillance metadata store index
// traffic.
type Flow struct {
	Proto   IPProtocol
	Src     netip.Addr
	SrcPort uint16
	Dst     netip.Addr
	DstPort uint16
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, SrcPort: f.DstPort, Dst: f.Src, DstPort: f.SrcPort}
}

// Canonical returns a direction-independent key: the flow whose (addr, port)
// pair sorts lower becomes the source. Both directions of a connection map
// to the same canonical flow.
func (f Flow) Canonical() Flow {
	if f.Src.Compare(f.Dst) > 0 || (f.Src == f.Dst && f.SrcPort > f.DstPort) {
		return f.Reverse()
	}
	return f
}

// String renders "tcp 10.0.0.1:1234 > 93.184.216.34:80".
func (f Flow) String() string {
	return fmt.Sprintf("%v %v:%d > %v:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// FlowOf extracts the 5-tuple of a parsed packet. Non-TCP/UDP packets get
// zero ports.
func FlowOf(p *Packet) Flow {
	f := Flow{Proto: p.IP.Protocol, Src: p.IP.Src, Dst: p.IP.Dst}
	switch {
	case p.TCP != nil:
		f.SrcPort, f.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		f.SrcPort, f.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return f
}
