package packet

import (
	"encoding/binary"
	"net/netip"
)

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

// sumBytes adds data to a running 32-bit ones'-complement accumulator.
// It consumes eight bytes per step: ones'-complement addition is
// associative over any word split, so summing big-endian 32-bit words and
// folding carries gives the same value (mod 0xffff) as the byte-pair walk.
func sumBytes(sum uint32, data []byte) uint32 {
	s := uint64(sum)
	for len(data) >= 8 {
		s += uint64(binary.BigEndian.Uint32(data)) + uint64(binary.BigEndian.Uint32(data[4:8]))
		data = data[8:]
	}
	if len(data) >= 4 {
		s += uint64(binary.BigEndian.Uint32(data))
		data = data[4:]
	}
	if len(data) >= 2 {
		s += uint64(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		s += uint64(data[0]) << 8
	}
	for s>>32 != 0 {
		s = s&0xffffffff + s>>32
	}
	return uint32(s)
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header contribution for the
// given IPv4 endpoints, protocol and transport-segment length.
func pseudoHeaderSum(src, dst netip.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	s := src.As4()
	d := dst.As4()
	sum = sumBytes(sum, s[:])
	sum = sumBytes(sum, d[:])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the checksum of a TCP or UDP segment, including
// the IPv4 pseudo-header. segment must have its checksum field zeroed.
func TransportChecksum(src, dst netip.Addr, proto IPProtocol, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	sum = sumBytes(sum, segment)
	return finishChecksum(sum)
}
