package packet

import "net/netip"

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

// sumBytes adds data to a running 32-bit ones'-complement accumulator.
func sumBytes(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header contribution for the
// given IPv4 endpoints, protocol and transport-segment length.
func pseudoHeaderSum(src, dst netip.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	s := src.As4()
	d := dst.As4()
	sum = sumBytes(sum, s[:])
	sum = sumBytes(sum, d[:])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the checksum of a TCP or UDP segment, including
// the IPv4 pseudo-header. segment must have its checksum field zeroed.
func TransportChecksum(src, dst netip.Addr, proto IPProtocol, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	sum = sumBytes(sum, segment)
	return finishChecksum(sum)
}
