package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
)

// Fragmentation support. The IDS-evasion literature the paper builds on
// (Handley et al., Khattak et al.) revolves around what happens when a
// middlebox does or does not reassemble fragments the way end hosts do:
// hosts always reassemble (internal/netsim.Host uses a Reassembler), while
// the censor's reassembly is a configuration choice the ablation
// experiments toggle.

// IsFragment reports whether a serialized datagram is a fragment (MF set
// or a nonzero offset). Malformed input returns false.
func IsFragment(raw []byte) bool {
	if len(raw) < 20 {
		return false
	}
	ff := binary.BigEndian.Uint16(raw[6:8])
	return ff&0x2000 != 0 || ff&0x1fff != 0
}

// Fragment splits a serialized IPv4 datagram into fragments whose payloads
// are at most mtu bytes (mtu excludes the IP header and must be a multiple
// of 8, at least 8). The input must not itself be a fragment.
func Fragment(raw []byte, mtu int) ([][]byte, error) {
	if mtu < 8 || mtu%8 != 0 {
		return nil, fmt.Errorf("packet: fragment payload size %d must be a positive multiple of 8", mtu)
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(raw); err != nil {
		return nil, err
	}
	if ip.Flags&IPFlagMoreFragment != 0 || ip.FragOff != 0 {
		return nil, fmt.Errorf("packet: refusing to fragment a fragment")
	}
	if len(ip.Payload) <= mtu {
		return [][]byte{raw}, nil
	}
	var out [][]byte
	payload := ip.Payload
	for off := 0; off < len(payload); off += mtu {
		end := off + mtu
		last := end >= len(payload)
		if last {
			end = len(payload)
		}
		frag := IPv4{
			TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol,
			Src: ip.Src, Dst: ip.Dst,
			FragOff: uint16(off / 8),
			Payload: payload[off:end],
		}
		if !last {
			frag.Flags = IPFlagMoreFragment
		}
		wire, err := frag.Marshal()
		if err != nil {
			return nil, err
		}
		out = append(out, wire)
	}
	return out, nil
}

// fragKey identifies a datagram being reassembled (RFC 791).
type fragKey struct {
	src, dst netip.Addr
	id       uint16
	proto    IPProtocol
}

type fragPiece struct {
	off  int // bytes
	data []byte
	last bool
}

type fragBuf struct {
	pieces   []fragPiece
	lastSeen int64
}

// Reassembler rebuilds original datagrams from fragments. It is used by
// every simulated host and, optionally, by the censor middlebox.
type Reassembler struct {
	bufs map[fragKey]*fragBuf
	// Timeout evicts incomplete reassemblies (virtual nanoseconds).
	Timeout int64
}

// NewReassembler creates a reassembler with a 30-second timeout.
func NewReassembler() *Reassembler {
	return &Reassembler{bufs: make(map[fragKey]*fragBuf), Timeout: int64(30e9)}
}

// Pending returns the number of incomplete reassemblies.
func (r *Reassembler) Pending() int { return len(r.bufs) }

// Add ingests one datagram. For a non-fragment it is returned unchanged.
// For a fragment, Add returns the fully reassembled datagram once every
// piece has arrived, or nil while pieces are missing. Input that does not
// parse at the IP layer yields nil: the reassembler never emits bytes a
// downstream decoder would choke on.
func (r *Reassembler) Add(now int64, raw []byte) []byte {
	var ip IPv4
	if err := ip.DecodeFromBytes(raw); err != nil {
		return nil
	}
	if ip.Flags&IPFlagMoreFragment == 0 && ip.FragOff == 0 {
		return raw // a whole datagram, passed through
	}
	key := fragKey{ip.Src, ip.Dst, ip.ID, ip.Protocol}
	buf, ok := r.bufs[key]
	if !ok {
		buf = &fragBuf{}
		r.bufs[key] = buf
	}
	buf.lastSeen = now
	piece := fragPiece{
		off:  int(ip.FragOff) * 8,
		data: append([]byte(nil), ip.Payload...),
		last: ip.Flags&IPFlagMoreFragment == 0,
	}
	// Drop exact duplicates.
	for _, p := range buf.pieces {
		if p.off == piece.off && len(p.data) == len(piece.data) {
			return nil
		}
	}
	buf.pieces = append(buf.pieces, piece)

	whole := buf.tryAssemble()
	if whole == nil {
		return nil
	}
	delete(r.bufs, key)
	full := IPv4{
		TOS: ip.TOS, ID: ip.ID, TTL: ip.TTL, Protocol: ip.Protocol,
		Src: ip.Src, Dst: ip.Dst, Payload: whole,
	}
	out, err := full.Marshal()
	if err != nil {
		return nil
	}
	return out
}

// tryAssemble returns the contiguous payload if complete.
func (b *fragBuf) tryAssemble() []byte {
	sort.Slice(b.pieces, func(i, j int) bool { return b.pieces[i].off < b.pieces[j].off })
	total := -1
	for _, p := range b.pieces {
		if p.last {
			total = p.off + len(p.data)
		}
	}
	if total < 0 {
		return nil
	}
	out := make([]byte, total)
	covered := 0
	next := 0
	for _, p := range b.pieces {
		if p.off > next {
			return nil // gap
		}
		end := p.off + len(p.data)
		if end > total {
			return nil // overlong piece
		}
		copy(out[p.off:end], p.data)
		if end > next {
			covered += end - next
			next = end
		}
	}
	if covered != total {
		return nil
	}
	return out
}

// Sweep evicts reassemblies idle past the timeout; returns how many.
func (r *Reassembler) Sweep(now int64) int {
	n := 0
	for k, b := range r.bufs {
		if now-b.lastSeen > r.Timeout {
			delete(r.bufs, k)
			n++
		}
	}
	return n
}
