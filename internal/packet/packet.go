package packet

import (
	"fmt"
	"net/netip"
)

// Packet is a fully parsed IPv4 datagram: the IP layer plus at most one
// transport layer. Exactly one of TCP, UDP, ICMP is non-nil for the
// protocols the lab uses; unknown protocols leave all three nil and the raw
// transport bytes available via IP.Payload.
type Packet struct {
	IP   *IPv4
	TCP  *TCP
	UDP  *UDP
	ICMP *ICMP
}

// Decoder decodes datagrams into storage it owns and reuses, so a hot loop
// (a router decoding every forwarded packet) pays zero allocations per
// datagram. The *Packet returned by Decode is only valid until the next
// Decode call on the same Decoder; callers that retain a packet must use
// the allocating Parse instead (or re-Parse the raw bytes themselves).
type Decoder struct {
	pkt  Packet
	ip   IPv4
	tcp  TCP
	udp  UDP
	icmp ICMP
}

// Decode parses a serialized IPv4 datagram into the decoder's reusable
// storage. It returns the IP header view (nil if the IP layer is malformed)
// and the fully parsed packet (nil unless the transport layer, when asked
// for, also parsed — fragments and corrupted segments route fine but carry
// no transport view). Transport parsing is skipped when transport is false:
// a plain forwarding hop needs only the IP header.
func (d *Decoder) Decode(data []byte, transport bool) (*IPv4, *Packet) {
	if err := d.ip.DecodeFromBytes(data); err != nil {
		return nil, nil
	}
	if !transport {
		return &d.ip, nil
	}
	d.pkt = Packet{IP: &d.ip}
	switch d.ip.Protocol {
	case ProtoTCP:
		if err := d.tcp.DecodeFromBytes(d.ip.Payload, d.ip.Src, d.ip.Dst); err != nil {
			return &d.ip, nil
		}
		d.pkt.TCP = &d.tcp
	case ProtoUDP:
		if err := d.udp.DecodeFromBytes(d.ip.Payload, d.ip.Src, d.ip.Dst); err != nil {
			return &d.ip, nil
		}
		d.pkt.UDP = &d.udp
	case ProtoICMP:
		if err := d.icmp.DecodeFromBytes(d.ip.Payload); err != nil {
			return &d.ip, nil
		}
		d.pkt.ICMP = &d.icmp
	}
	return &d.ip, &d.pkt
}

// Parse decodes a serialized IPv4 datagram and its transport layer.
// Transport checksums are verified. The result is freshly allocated and
// safe to retain.
func Parse(data []byte) (*Packet, error) {
	d := new(Decoder)
	if err := d.ip.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	d.pkt.IP = &d.ip
	switch d.ip.Protocol {
	case ProtoTCP:
		if err := d.tcp.DecodeFromBytes(d.ip.Payload, d.ip.Src, d.ip.Dst); err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		d.pkt.TCP = &d.tcp
	case ProtoUDP:
		if err := d.udp.DecodeFromBytes(d.ip.Payload, d.ip.Src, d.ip.Dst); err != nil {
			return nil, fmt.Errorf("udp: %w", err)
		}
		d.pkt.UDP = &d.udp
	case ProtoICMP:
		if err := d.icmp.DecodeFromBytes(d.ip.Payload); err != nil {
			return nil, fmt.Errorf("icmp: %w", err)
		}
		d.pkt.ICMP = &d.icmp
	}
	return &d.pkt, nil
}

// TransportPayload returns the application payload of the packet, or nil for
// packets without one.
func (p *Packet) TransportPayload() []byte {
	switch {
	case p.TCP != nil:
		return p.TCP.Payload
	case p.UDP != nil:
		return p.UDP.Payload
	case p.ICMP != nil:
		return p.ICMP.Payload
	default:
		return nil
	}
}

// String renders a one-line summary of the whole packet.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%v:%d > %v:%d [%s] seq=%d ack=%d len=%d ttl=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.TCP.Payload), p.IP.TTL)
	case p.UDP != nil:
		return fmt.Sprintf("%v:%d > %v:%d udp len=%d ttl=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.UDP.Payload), p.IP.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("%v > %v %v ttl=%d", p.IP.Src, p.IP.Dst, p.ICMP, p.IP.TTL)
	default:
		return p.IP.String()
	}
}

// checkBuild validates the endpoint addresses and total datagram size
// shared by the Build* fast paths.
func checkBuild(src, dst netip.Addr, total int) error {
	if !src.Is4() || !dst.Is4() {
		return fmt.Errorf("packet: IPv4 requires 4-byte addresses (src=%v dst=%v)", src, dst)
	}
	if total > 0xffff {
		return fmt.Errorf("packet: datagram too large (%d bytes)", total)
	}
	return nil
}

// BuildTCP serializes a TCP segment inside an IPv4 datagram with the given
// TTL and returns the wire bytes. The segment is marshaled directly into
// the datagram buffer: one allocation per packet sent, the simulator's
// hottest build path.
func BuildTCP(src, dst netip.Addr, ttl uint8, seg *TCP) ([]byte, error) {
	total := ipv4HeaderLen + seg.HeaderLen() + len(seg.Payload)
	if err := checkBuild(src, dst, total); err != nil {
		return nil, err
	}
	buf := make([]byte, total)
	seg.marshalInto(buf[ipv4HeaderLen:], src, dst)
	ip := IPv4{TTL: ttl, Protocol: ProtoTCP, Src: src, Dst: dst}
	ip.writeHeader(buf, total)
	return buf, nil
}

// BuildUDP serializes a UDP datagram inside an IPv4 datagram with the given
// TTL and returns the wire bytes.
func BuildUDP(src, dst netip.Addr, ttl uint8, dgram *UDP) ([]byte, error) {
	total := ipv4HeaderLen + udpHeaderLen + len(dgram.Payload)
	if err := checkBuild(src, dst, total); err != nil {
		return nil, err
	}
	buf := make([]byte, total)
	dgram.marshalInto(buf[ipv4HeaderLen:], src, dst)
	ip := IPv4{TTL: ttl, Protocol: ProtoUDP, Src: src, Dst: dst}
	ip.writeHeader(buf, total)
	return buf, nil
}

// BuildICMP serializes an ICMP message inside an IPv4 datagram with the
// given TTL and returns the wire bytes.
func BuildICMP(src, dst netip.Addr, ttl uint8, msg *ICMP) ([]byte, error) {
	total := ipv4HeaderLen + icmpHeaderLen + len(msg.Payload)
	if err := checkBuild(src, dst, total); err != nil {
		return nil, err
	}
	buf := make([]byte, total)
	msg.marshalInto(buf[ipv4HeaderLen:])
	ip := IPv4{TTL: ttl, Protocol: ProtoICMP, Src: src, Dst: dst}
	ip.writeHeader(buf, total)
	return buf, nil
}
