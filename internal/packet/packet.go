package packet

import (
	"fmt"
	"net/netip"
)

// Packet is a fully parsed IPv4 datagram: the IP layer plus at most one
// transport layer. Exactly one of TCP, UDP, ICMP is non-nil for the
// protocols the lab uses; unknown protocols leave all three nil and the raw
// transport bytes available via IP.Payload.
type Packet struct {
	IP   *IPv4
	TCP  *TCP
	UDP  *UDP
	ICMP *ICMP
}

// Parse decodes a serialized IPv4 datagram and its transport layer.
// Transport checksums are verified.
func Parse(data []byte) (*Packet, error) {
	ip := new(IPv4)
	if err := ip.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	p := &Packet{IP: ip}
	switch ip.Protocol {
	case ProtoTCP:
		t := new(TCP)
		if err := t.DecodeFromBytes(ip.Payload, ip.Src, ip.Dst); err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		p.TCP = t
	case ProtoUDP:
		u := new(UDP)
		if err := u.DecodeFromBytes(ip.Payload, ip.Src, ip.Dst); err != nil {
			return nil, fmt.Errorf("udp: %w", err)
		}
		p.UDP = u
	case ProtoICMP:
		ic := new(ICMP)
		if err := ic.DecodeFromBytes(ip.Payload); err != nil {
			return nil, fmt.Errorf("icmp: %w", err)
		}
		p.ICMP = ic
	}
	return p, nil
}

// TransportPayload returns the application payload of the packet, or nil for
// packets without one.
func (p *Packet) TransportPayload() []byte {
	switch {
	case p.TCP != nil:
		return p.TCP.Payload
	case p.UDP != nil:
		return p.UDP.Payload
	case p.ICMP != nil:
		return p.ICMP.Payload
	default:
		return nil
	}
}

// String renders a one-line summary of the whole packet.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%v:%d > %v:%d [%s] seq=%d ack=%d len=%d ttl=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.TCP.Payload), p.IP.TTL)
	case p.UDP != nil:
		return fmt.Sprintf("%v:%d > %v:%d udp len=%d ttl=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.UDP.Payload), p.IP.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("%v > %v %v ttl=%d", p.IP.Src, p.IP.Dst, p.ICMP, p.IP.TTL)
	default:
		return p.IP.String()
	}
}

// BuildTCP serializes a TCP segment inside an IPv4 datagram with the given
// TTL and returns the wire bytes.
func BuildTCP(src, dst netip.Addr, ttl uint8, seg *TCP) ([]byte, error) {
	payload, err := seg.Marshal(src, dst)
	if err != nil {
		return nil, err
	}
	ip := &IPv4{TTL: ttl, Protocol: ProtoTCP, Src: src, Dst: dst, Payload: payload}
	return ip.Marshal()
}

// BuildUDP serializes a UDP datagram inside an IPv4 datagram with the given
// TTL and returns the wire bytes.
func BuildUDP(src, dst netip.Addr, ttl uint8, dgram *UDP) ([]byte, error) {
	payload, err := dgram.Marshal(src, dst)
	if err != nil {
		return nil, err
	}
	ip := &IPv4{TTL: ttl, Protocol: ProtoUDP, Src: src, Dst: dst, Payload: payload}
	return ip.Marshal()
}

// BuildICMP serializes an ICMP message inside an IPv4 datagram with the
// given TTL and returns the wire bytes.
func BuildICMP(src, dst netip.Addr, ttl uint8, msg *ICMP) ([]byte, error) {
	payload, err := msg.Marshal()
	if err != nil {
		return nil, err
	}
	ip := &IPv4{TTL: ttl, Protocol: ProtoICMP, Src: src, Dst: dst, Payload: payload}
	return ip.Marshal()
}
