package measured

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"safemeasure/internal/telemetry"
)

// fetchBody performs one GET /measure and returns the full NDJSON body.
func fetchBody(t *testing.T, srv *httptest.Server, query string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/measure?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /measure?%s = %d: %s", query, resp.StatusCode, body)
	}
	return body
}

// TestCachedResponseByteIdentical is the PR's determinism contract: a cache
// hit returns bytes identical to a fresh run, across worker counts, with
// real (simulated-lab) execution — run under -race by scripts/verify.sh.
func TestCachedResponseByteIdentical(t *testing.T) {
	const query = "technique=overt-dns&scenario=dns-poison&trials=3&seed=7&client=det"
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			svc := New(Config{Workers: workers, Metrics: reg})
			defer svc.Shutdown(context.Background())
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()

			cold := fetchBody(t, srv, query)
			if reg.Counter("measured_cache_hits_total").Value() != 0 {
				t.Fatal("cold request counted cache hits")
			}
			if got := reg.Counter("measured_cache_misses_total").Value(); got != 3 {
				t.Fatalf("cold misses = %d, want 3", got)
			}
			warm := fetchBody(t, srv, query)
			if !bytes.Equal(cold, warm) {
				t.Fatalf("cached response differs from fresh run:\ncold: %s\nwarm: %s", cold, warm)
			}
			if got := reg.Counter("measured_cache_hits_total").Value(); got != 3 {
				t.Fatalf("warm hits = %d, want 3", got)
			}
			// 3 record lines + 1 aggregate frame, aggregate last.
			lines := strings.Split(strings.TrimRight(string(cold), "\n"), "\n")
			if len(lines) != 4 {
				t.Fatalf("NDJSON lines = %d, want 4:\n%s", len(lines), cold)
			}
			if !strings.Contains(lines[3], `"aggregate"`) {
				t.Fatalf("last line is not the aggregate frame: %s", lines[3])
			}
			bodies = append(bodies, cold)
		})
	}
	// Worker count must not leak into bytes either: the same request served
	// by a 1-worker and an 8-worker service is identical.
	if len(bodies) == 2 && !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("response depends on worker count:\nw1: %s\nw8: %s", bodies[0], bodies[1])
	}
}

// TestCrossClientCacheSharing: the cache is service-wide — client B's
// identical request is served from client A's completed runs, byte for byte.
func TestCrossClientCacheSharing(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Workers: 2, Metrics: reg})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	a := fetchBody(t, srv, "technique=spam&scenario=dns-poison&trials=2&seed=3&client=alice")
	b := fetchBody(t, srv, "technique=spam&scenario=dns-poison&trials=2&seed=3&client=bob")
	if !bytes.Equal(a, b) {
		t.Fatal("cross-client cached response not byte-identical")
	}
	if got := reg.Counter("measured_cache_hits_total").Value(); got != 2 {
		t.Fatalf("cache hits = %d, want 2", got)
	}
	// A different seed is a different identity: no hit, different bytes.
	c := fetchBody(t, srv, "technique=spam&scenario=dns-poison&trials=2&seed=4&client=bob")
	if bytes.Equal(a, c) {
		t.Fatal("different seed produced identical bytes")
	}
	if got := reg.Counter("measured_cache_hits_total").Value(); got != 2 {
		t.Fatalf("cache hits after different seed = %d, want still 2", got)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	s1 := trialSpec(1)
	s2 := trialSpec(2)
	s3 := trialSpec(3)
	c.put(s1.CellKey(), []byte("1\n"), drainRecord(s1, ErrDraining))
	c.put(s2.CellKey(), []byte("2\n"), drainRecord(s2, ErrDraining))
	if _, ok := c.get(s1.CellKey()); !ok {
		t.Fatal("s1 evicted too early")
	}
	// s2 is now LRU; inserting s3 evicts it.
	c.put(s3.CellKey(), []byte("3\n"), drainRecord(s3, ErrDraining))
	if _, ok := c.get(s2.CellKey()); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(s1.CellKey()); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestResultCacheNonPositiveBoundClamped is the regression test for the
// self-defeating cache: newResultCache(0) (or any negative bound) used to
// build a cache whose eviction loop expelled every entry the moment put
// inserted it, so get never hit. The bound now clamps to 1.
func TestResultCacheNonPositiveBoundClamped(t *testing.T) {
	for _, max := range []int{0, -1, -100} {
		c := newResultCache(max)
		s1 := trialSpec(1)
		c.put(s1.CellKey(), []byte("1\n"), drainRecord(s1, ErrDraining))
		if _, ok := c.get(s1.CellKey()); !ok {
			t.Fatalf("newResultCache(%d): entry evicted on insert", max)
		}
		if c.len() != 1 {
			t.Fatalf("newResultCache(%d): len = %d, want 1", max, c.len())
		}
		// The clamped bound still evicts: a second insert displaces the first.
		s2 := trialSpec(2)
		c.put(s2.CellKey(), []byte("2\n"), drainRecord(s2, ErrDraining))
		if _, ok := c.get(s1.CellKey()); ok {
			t.Fatalf("newResultCache(%d): bound not enforced after clamp", max)
		}
	}
}

// TestCacheDisabledByNegativeConfig: CacheMax < 0 is the explicit opt-out —
// the service runs every request fresh and never counts a hit, while
// in-flight dedupe still collapses concurrent identical requests.
func TestCacheDisabledByNegativeConfig(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Workers: 2, CacheMax: -1, Metrics: reg})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const query = "technique=spam&scenario=dns-poison&trials=2&seed=3&client=nocache"
	a := fetchBody(t, srv, query)
	b := fetchBody(t, srv, query)
	if !bytes.Equal(a, b) {
		t.Fatal("repeated run not byte-identical with cache disabled")
	}
	if got := reg.Counter("measured_cache_hits_total").Value(); got != 0 {
		t.Fatalf("cache hits with caching disabled = %d, want 0", got)
	}
	if got := reg.Counter("measured_cache_misses_total").Value(); got != 4 {
		t.Fatalf("cache misses = %d, want 4 (both requests ran fresh)", got)
	}
}
