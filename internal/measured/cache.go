package measured

import (
	"container/list"
	"context"

	"safemeasure/internal/campaign"
)

// flight is one run the service owns end to end: created at admission for a
// cache miss, queued on its client, dispatched to the pool, completed
// exactly once. Concurrent identical requests join the same flight instead
// of spawning duplicate runs; done closes after line/rec are set.
type flight struct {
	spec  campaign.RunSpec
	owner string // the client whose admission created the flight
	done  chan struct{}
	line  []byte // the NDJSON line, set before done closes
	rec   campaign.RunRecord
}

// pending is a request's handle on one upcoming response line: either a
// cache hit resolved at admission, or a flight to wait on.
type pending struct {
	line []byte
	rec  campaign.RunRecord
	fl   *flight
}

// wait blocks until the line is available or ctx is canceled. A canceled
// ctx abandons only the wait — the underlying run continues and its result
// is cached for the next asker.
func (p *pending) wait(ctx context.Context) ([]byte, campaign.RunRecord, error) {
	if p.fl == nil {
		return p.line, p.rec, nil
	}
	select {
	case <-p.fl.done:
		return p.fl.line, p.fl.rec, nil
	case <-ctx.Done():
		return nil, campaign.RunRecord{}, ctx.Err()
	}
}

// cacheEntry is one cached run result: the exact NDJSON line a fresh run
// would stream, plus the decoded record for aggregate frames.
type cacheEntry struct {
	key  campaign.CellKey
	line []byte
	rec  campaign.RunRecord
}

// resultCache is a bounded LRU over run results keyed by the deterministic
// campaign.CellKey. It is NOT internally locked: every method runs under
// the owning Service's mutex, which also covers the dedupe (in-flight) map
// so a lookup-miss → flight-create sequence is atomic.
type resultCache struct {
	max     int
	entries map[campaign.CellKey]*list.Element
	lru     *list.List // front = most recently used
}

// newResultCache builds a cache bounded to max entries. The bound is
// clamped to at least 1: a zero or negative max would make put evict every
// entry immediately after inserting it — a cache that silently never hits.
// Callers that want no caching at all should not construct one (the Service
// leaves its cache nil when CacheMax is negative).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		entries: make(map[campaign.CellKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the entry for key and refreshes its recency.
func (c *resultCache) get(key campaign.CellKey) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) the result for key, evicting the least
// recently used entries past the bound.
func (c *resultCache) put(key campaign.CellKey, line []byte, rec campaign.RunRecord) {
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.line, e.rec = line, rec
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, line: line, rec: rec})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.lru.Len() }
