package measured

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/telemetry"
)

// trialSpec builds a distinct run spec per trial (same cell family, different
// deterministic identity).
func trialSpec(trial int) campaign.RunSpec {
	return campaign.RunSpec{Technique: "overt-dns", Scenario: "dns-poison",
		Trial: trial, Seed: int64(100 + trial)}
}

// stubExec is a fast executor returning a success record for every spec.
func stubExec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	rec := campaign.RunRecord{Scenario: spec.Scenario, Trial: spec.Trial, Correct: true}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	rec.Verdict = "censored"
	claim()
	return rec
}

// failExec fails every run.
func failExec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	rec := campaign.RunRecord{Scenario: spec.Scenario, Trial: spec.Trial,
		Error: "stub: vantage dead"}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	claim()
	return rec
}

func httpGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestHandlerValidation(t *testing.T) {
	svc := New(Config{Workers: 1, Execute: stubExec})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/measure?scenario=dns-poison", http.StatusBadRequest}, // no technique
		{"/measure?technique=overt-dns", http.StatusBadRequest}, // no scenario
		{"/measure?technique=bogus&scenario=open", http.StatusBadRequest},
		{"/measure?technique=overt-dns&scenario=dns-poison&trials=-2", http.StatusBadRequest},
		{"/measure?technique=overt-dns&scenario=dns-poison&trials=zz", http.StatusBadRequest},
		// Inapplicable per the E11 matrix: spoofed-syn cannot see dns-poison.
		{"/measure?technique=spoofed-syn&scenario=dns-poison", http.StatusBadRequest},
		{"/measure?technique=overt-dns&scenario=dns-poison&trials=1", http.StatusOK},
	} {
		code, body := httpGet(t, srv, tc.path)
		if code != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, code, strings.TrimSpace(body), tc.want)
		}
	}

	// POST with unknown fields is rejected.
	resp, err := srv.Client().Post(srv.URL+"/measure", "application/json",
		strings.NewReader(`{"technique":"overt-dns","scenario":"dns-poison","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST with unknown field = %d, want 400", resp.StatusCode)
	}
}

func TestRequestExpansionBounded(t *testing.T) {
	svc := New(Config{Workers: 1, MaxRunsPerRequest: 4, Execute: stubExec})
	defer svc.Shutdown(context.Background())
	if _, err := svc.Plan(Request{Technique: "overt-dns", Scenario: "dns-poison", Trials: 5}); err == nil {
		t.Fatal("oversized expansion passed Plan")
	}
	if _, err := svc.Plan(Request{Technique: "overt-dns", Scenario: "dns-poison", Trials: 4}); err != nil {
		t.Fatalf("in-bounds expansion rejected: %v", err)
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	reg := telemetry.NewRegistry()
	block := make(chan struct{})
	exec := func(spec campaign.RunSpec, h time.Duration, claim func() bool) campaign.RunRecord {
		<-block
		return stubExec(spec, h, claim)
	}
	svc := New(Config{Workers: 1, QueueMax: 2, Metrics: reg, Execute: exec})
	defer func() {
		close(block)
		svc.Shutdown(context.Background())
	}()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// One request expanding past QueueMax is rejected whole — all-or-nothing
	// admission, no partial queue occupancy.
	resp, err := srv.Client().Get(srv.URL + "/measure?technique=overt-dns&scenario=dns-poison&trials=3&client=big")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "queue_full") {
		t.Fatalf("oversized request = %d %s, want 503 queue_full", resp.StatusCode, body)
	}
	if got := reg.Counter(telemetry.Labels("measured_rejected_total", "reason", "queue_full")).Value(); got != 1 {
		t.Fatalf("measured_rejected_total{reason=queue_full} = %d, want 1", got)
	}
	svc.mu.Lock()
	queued, inflight := svc.queued, len(svc.inflight)
	svc.mu.Unlock()
	if queued != 0 || inflight != 0 {
		t.Fatalf("rejected request left state behind: queued=%d inflight=%d", queued, inflight)
	}
}

func TestRateLimitPerClient(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Workers: 1, RatePerSec: 0.0001, Burst: 1, Metrics: reg, Execute: stubExec})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if code, _ := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&client=greedy"); code != http.StatusOK {
		t.Fatalf("first request = %d, want 200", code)
	}
	code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&seed=2&client=greedy")
	if code != http.StatusTooManyRequests || !strings.Contains(body, "rate_limited") {
		t.Fatalf("second request = %d %s, want 429 rate_limited", code, body)
	}
	// Other clients have their own bucket.
	if code, _ := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&seed=2&client=patient"); code != http.StatusOK {
		t.Fatalf("other client = %d, want 200", code)
	}
	if got := reg.Counter(telemetry.Labels("measured_rejected_total", "reason", "rate_limited")).Value(); got != 1 {
		t.Fatalf("measured_rejected_total{reason=rate_limited} = %d, want 1", got)
	}
}

func TestDrainingRejectsAndReadyz(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Workers: 1, Metrics: reg, Execute: stubExec})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	tsrv := httptest.NewServer(telemetry.Handler(reg, nil, svc.Ready))
	defer tsrv.Close()

	if err := svc.Ready(); err != nil {
		t.Fatalf("fresh service not ready: %v", err)
	}
	resp, _ := tsrv.Client().Get(tsrv.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", resp.StatusCode)
	}

	svc.BeginDrain()
	if !errors.Is(svc.Ready(), ErrDraining) {
		t.Fatalf("Ready() while draining = %v, want ErrDraining", svc.Ready())
	}
	code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("request while draining = %d %s, want 503 draining", code, body)
	}
	resp, _ = tsrv.Client().Get(tsrv.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown = %v", err)
	}
}

func TestFailureBudgetDegradesService(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{
		Workers: 1,
		Metrics: reg,
		Budget:  &campaign.FailureBudget{Fraction: 0.5, MinRuns: 2},
		Execute: failExec,
	})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Two failing runs trip the 50% budget at MinRuns=2.
	httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&trials=2&client=a")
	deadline := time.Now().Add(2 * time.Second)
	for svc.Ready() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(svc.Ready(), ErrDegraded) {
		t.Fatalf("Ready() after budget trip = %v, want ErrDegraded", svc.Ready())
	}
	code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&seed=9&client=b")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("request while degraded = %d %s, want 503 degraded", code, body)
	}
	if got := reg.Counter("measured_budget_trips_total").Value(); got != 1 {
		t.Fatalf("measured_budget_trips_total = %d, want 1", got)
	}
	if got := reg.Gauge("measured_degraded").Value(); got != 1 {
		t.Fatalf("measured_degraded = %d, want 1", got)
	}
}

func TestErrorRecordsNeverCached(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Workers: 1, Metrics: reg, Execute: failExec})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	a := fetchBody(t, srv, "technique=overt-dns&scenario=dns-poison&client=x")
	b := fetchBody(t, srv, "technique=overt-dns&scenario=dns-poison&client=x")
	if !strings.Contains(string(a), "vantage dead") || !bytes.Equal(a, b) {
		t.Fatalf("error responses should re-run and match:\na: %s\nb: %s", a, b)
	}
	if got := reg.Counter("measured_cache_hits_total").Value(); got != 0 {
		t.Fatalf("error record was served from cache (%d hits)", got)
	}
	if got := reg.Counter("measured_cache_misses_total").Value(); got != 2 {
		t.Fatalf("misses = %d, want 2 (second request re-ran)", got)
	}
	if got := reg.Gauge("measured_cache_size").Value(); got != 0 {
		t.Fatalf("cache size = %d, want 0 (errors never cached)", got)
	}
}

// TestDedupJoinsInFlight: identical runs already executing are joined, never
// duplicated — the joiner gets the same bytes without a second run.
func TestDedupJoinsInFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	var runs int
	var mu sync.Mutex
	exec := func(spec campaign.RunSpec, h time.Duration, claim func() bool) campaign.RunRecord {
		mu.Lock()
		runs++
		mu.Unlock()
		entered <- struct{}{}
		<-block
		return stubExec(spec, h, claim)
	}
	svc := New(Config{Workers: 2, Metrics: reg, Execute: exec})
	defer svc.Shutdown(context.Background())

	spec := trialSpec(1)
	pa, err := svc.Admit("alice", []campaign.RunSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Release("alice")
	<-entered // alice's run is now in flight
	pb, err := svc.Admit("bob", []campaign.RunSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Release("bob")
	if got := reg.Counter("measured_dedup_joins_total").Value(); got != 1 {
		t.Fatalf("dedup joins = %d, want 1", got)
	}
	close(block)
	la, _, err := pa[0].wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lb, _, err := pb[0].wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(la, lb) {
		t.Fatalf("joined flight returned different bytes: %s vs %s", la, lb)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("joined cell executed %d times, want 1", runs)
	}
}

// TestRoundRobinFairness: with one worker and two clients, a deep queue from
// one client cannot starve the other — execution alternates.
func TestRoundRobinFairness(t *testing.T) {
	entered := make(chan string)
	step := make(chan struct{})
	exec := func(spec campaign.RunSpec, h time.Duration, claim func() bool) campaign.RunRecord {
		entered <- spec.Technique // overt-dns = alice, spam = bob
		<-step
		return stubExec(spec, h, claim)
	}
	svc := New(Config{Workers: 1, Execute: exec})

	aliceSpecs := make([]campaign.RunSpec, 4)
	bobSpecs := make([]campaign.RunSpec, 4)
	for i := range aliceSpecs {
		aliceSpecs[i] = campaign.RunSpec{Technique: "overt-dns", Scenario: "dns-poison",
			Trial: i, Seed: int64(10 + i)}
		bobSpecs[i] = campaign.RunSpec{Technique: "spam", Scenario: "dns-poison",
			Trial: i, Seed: int64(20 + i)}
	}
	// Hold the scheduler's only dispatch slot so both admissions land before
	// anything executes, making the pick order deterministic.
	svc.sem <- struct{}{}
	pa, err := svc.Admit("alice", aliceSpecs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Release("alice")
	pb, err := svc.Admit("bob", bobSpecs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Release("bob")
	<-svc.sem // release the slot; dispatching starts now

	order := []string{<-entered}
	for len(order) < 8 {
		step <- struct{}{} // finish the current run
		order = append(order, <-entered)
	}
	step <- struct{}{}
	for _, p := range append(pa, pb...) {
		if _, _, err := p.wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Depending on whether the scheduler pre-claimed alice's second run
	// before bob's admission, the order is [a b a b a b a b] or
	// [a a b a b a b b]; either way the round-robin invariants hold: bob's
	// first run starts within the first three picks and no client ever gets
	// more than two consecutive picks — a deep queue cannot starve anyone.
	firstBob := -1
	streak, maxStreak := 0, 0
	for i, tech := range order {
		if tech == "spam" && firstBob < 0 {
			firstBob = i
		}
		if i > 0 && order[i-1] == tech {
			streak++
		} else {
			streak = 1
		}
		if streak > maxStreak {
			maxStreak = streak
		}
	}
	if firstBob < 0 || firstBob > 2 || maxStreak > 2 {
		t.Fatalf("execution order %v not round-robin (bob first at %d, max streak %d)",
			order, firstBob, maxStreak)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown = %v", err)
	}
}

// TestShutdownDrainsQueuedWork: queued flights complete (and are returned to
// waiters) during a clean shutdown.
func TestShutdownDrainsQueuedWork(t *testing.T) {
	svc := New(Config{Workers: 2, Execute: stubExec})
	specs := []campaign.RunSpec{trialSpec(1), trialSpec(2), trialSpec(3)}
	ps, err := svc.Admit("c", specs)
	if err != nil {
		t.Fatal(err)
	}
	svc.Release("c")
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown with queued work = %v", err)
	}
	for i, p := range ps {
		line, rec, err := p.wait(context.Background())
		if err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		if rec.Error != "" || len(line) == 0 {
			t.Fatalf("queued run %d failed through drain: %+v", i, rec)
		}
	}
	// Admission after shutdown is rejected.
	if _, err := svc.Admit("c", specs[:1]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Admit after Shutdown = %v, want ErrDraining", err)
	}
}

// TestExpiredShutdownFailsExplicitly: a drain that cannot finish fails the
// stragglers with explicit error records — waiters never block forever.
func TestExpiredShutdownFailsExplicitly(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	exec := func(spec campaign.RunSpec, h time.Duration, claim func() bool) campaign.RunRecord {
		entered <- struct{}{}
		<-block
		return stubExec(spec, h, claim)
	}
	svc := New(Config{Workers: 1, Grace: 10 * time.Millisecond, Timeout: -1, Execute: exec})
	ps, err := svc.Admit("c", []campaign.RunSpec{trialSpec(1), trialSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	svc.Release("c")
	<-entered // first run wedged on the worker; second still queued
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with wedged runs returned nil, want error")
	}
	for i, p := range ps {
		wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, rec, err := p.wait(wctx)
		wcancel()
		if err != nil {
			t.Fatalf("pending %d blocked after failed drain: %v", i, err)
		}
		if rec.Error == "" {
			t.Fatalf("pending %d got a success record through an abandoned drain", i)
		}
	}
	close(block)
}
