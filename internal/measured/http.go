package measured

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/telemetry"
)

// Handler returns the service's HTTP surface:
//
//	POST /measure — JSON Request body
//	GET  /measure — the same fields as query parameters
//
// Both stream the response as application/x-ndjson: one campaign.RunRecord
// JSON line per run in trial order (byte-identical to the lines cmd/campaign
// writes for the same seed), terminated by a single aggregate frame
// {"aggregate": <campaign summary>}. Rejections are JSON error objects:
// 400 invalid request, 429 rate-limited, 503 queue full / draining /
// degraded / storage — each counted in measured_rejected_total{reason=...}.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/measure", s.handleMeasure)
	return mux
}

// handleMeasure runs one request through admission → dedupe → schedule →
// stream.
func (s *Service) handleMeasure(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(w, r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err)
		return
	}
	client := req.Client
	if client == "" {
		client = r.Header.Get("X-Measured-Client")
	}
	if client == "" {
		if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	plan, err := s.Plan(req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err)
		return
	}
	pendings, err := s.Admit(client, plan.Specs)
	if err != nil {
		status, reason := http.StatusServiceUnavailable, "unavailable"
		switch {
		case errors.Is(err, ErrRateLimited):
			status, reason = http.StatusTooManyRequests, "rate_limited"
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrQueueFull):
			reason = "queue_full"
		case errors.Is(err, ErrDraining):
			reason = "draining"
		case errors.Is(err, ErrDegraded):
			reason = "degraded"
		case errors.Is(err, ErrStorage):
			reason = "storage"
			w.Header().Set("Retry-After", "1")
		}
		s.reject(w, status, reason, err)
		return
	}
	defer s.Release(client)
	s.requests.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Measured-Runs", strconv.Itoa(len(pendings)))
	s.streamResponse(w, r, pendings)
}

// streamFrame is one ready response line in flight from the collector to
// the client write loop.
type streamFrame struct {
	line []byte
	rec  campaign.RunRecord
}

// streamResponse pumps the request's results to the client through a
// bounded buffer with per-write deadlines. A collector goroutine waits out
// the pendings in order (run completion pace) while this goroutine writes
// at the client's read pace; the bounded channel between them is the only
// coupling. A client that stops reading blocks a Write until the deadline
// expires, and is then dropped (measured_slow_client_drops_total) — the
// pool never notices: runs publish to the cache through their flights
// whether or not anyone is still reading.
func (s *Service) streamResponse(w http.ResponseWriter, r *http.Request, pendings []*pending) {
	rc := http.NewResponseController(w)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	frames := make(chan streamFrame, s.streamBuf)
	go func() {
		defer close(frames)
		for _, p := range pendings {
			line, rec, err := p.wait(ctx)
			if err != nil {
				// Stream abandoned; the runs continue and land in the
				// cache for the next asker.
				return
			}
			select {
			case frames <- streamFrame{line, rec}:
			case <-ctx.Done():
				return
			}
		}
	}()
	recs := make([]campaign.RunRecord, 0, len(pendings))
	for fr := range frames {
		if !s.writeFrame(rc, w, fr.line) {
			return
		}
		recs = append(recs, fr.rec)
	}
	if len(recs) != len(pendings) {
		return // collector bailed (client gone); no aggregate over a partial set
	}
	frame := struct {
		Aggregate *campaign.Summary `json:"aggregate"`
	}{campaign.Aggregate(recs)}
	b, err := json.Marshal(frame)
	if err != nil {
		return
	}
	s.writeFrame(rc, w, append(b, '\n'))
}

// writeFrame writes one NDJSON line under the per-write deadline and
// flushes it. A deadline overrun means a stalled reader: count the drop and
// abandon the stream (the expired deadline poisons the connection anyway).
func (s *Service) writeFrame(rc *http.ResponseController, w http.ResponseWriter, line []byte) bool {
	if s.writeTimeout > 0 {
		// Best-effort: ResponseController errors here mean the underlying
		// writer cannot set deadlines (custom test recorders); the write
		// itself still proceeds.
		_ = rc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	}
	_, err := w.Write(line)
	if err == nil {
		err = rc.Flush()
		if errors.Is(err, http.ErrNotSupported) {
			err = nil
		}
	}
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.slowDrops.Inc()
		}
		return false
	}
	return true
}

// parseRequest decodes a Request from a POST body or GET query parameters.
func parseRequest(w http.ResponseWriter, r *http.Request) (Request, error) {
	var req Request
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return Request{}, fmt.Errorf("measured: bad request body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req = Request{
			Technique:  q.Get("technique"),
			Scenario:   q.Get("scenario"),
			Impairment: q.Get("impairment"),
			Behavior:   q.Get("behavior"),
			Client:     q.Get("client"),
		}
		if v := q.Get("trials"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return Request{}, fmt.Errorf("measured: bad trials %q", v)
			}
			req.Trials = n
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Request{}, fmt.Errorf("measured: bad seed %q", v)
			}
			req.Seed = n
		}
	default:
		return Request{}, fmt.Errorf("measured: method %s not allowed", r.Method)
	}
	return req, nil
}

// reject writes a JSON error response and counts it.
func (s *Service) reject(w http.ResponseWriter, status int, reason string, err error) {
	s.reg.Counter(telemetry.Labels("measured_rejected_total", "reason", reason)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":  err.Error(),
		"reason": reason,
	})
}
