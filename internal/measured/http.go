package measured

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"safemeasure/internal/campaign"
	"safemeasure/internal/telemetry"
)

// Handler returns the service's HTTP surface:
//
//	POST /measure — JSON Request body
//	GET  /measure — the same fields as query parameters
//
// Both stream the response as application/x-ndjson: one campaign.RunRecord
// JSON line per run in trial order (byte-identical to the lines cmd/campaign
// writes for the same seed), terminated by a single aggregate frame
// {"aggregate": <campaign summary>}. Rejections are JSON error objects:
// 400 invalid request, 429 rate-limited, 503 queue full / draining /
// degraded — each counted in measured_rejected_total{reason=...}.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/measure", s.handleMeasure)
	return mux
}

// handleMeasure runs one request through admission → dedupe → schedule →
// stream.
func (s *Service) handleMeasure(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(w, r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err)
		return
	}
	client := req.Client
	if client == "" {
		client = r.Header.Get("X-Measured-Client")
	}
	if client == "" {
		if host, _, splitErr := net.SplitHostPort(r.RemoteAddr); splitErr == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	plan, err := s.Plan(req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err)
		return
	}
	pendings, err := s.Admit(client, plan.Specs)
	if err != nil {
		status, reason := http.StatusServiceUnavailable, "unavailable"
		switch {
		case errors.Is(err, ErrRateLimited):
			status, reason = http.StatusTooManyRequests, "rate_limited"
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrQueueFull):
			reason = "queue_full"
		case errors.Is(err, ErrDraining):
			reason = "draining"
		case errors.Is(err, ErrDegraded):
			reason = "degraded"
		}
		s.reject(w, status, reason, err)
		return
	}
	defer s.Release(client)
	s.requests.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Measured-Runs", strconv.Itoa(len(pendings)))
	flusher, _ := w.(http.Flusher)
	recs := make([]campaign.RunRecord, 0, len(pendings))
	for _, p := range pendings {
		line, rec, err := p.wait(r.Context())
		if err != nil {
			// Client gone mid-stream; the runs continue and land in the
			// cache for the next asker.
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		recs = append(recs, rec)
	}
	frame := struct {
		Aggregate *campaign.Summary `json:"aggregate"`
	}{campaign.Aggregate(recs)}
	b, err := json.Marshal(frame)
	if err != nil {
		return
	}
	_, _ = w.Write(append(b, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}

// parseRequest decodes a Request from a POST body or GET query parameters.
func parseRequest(w http.ResponseWriter, r *http.Request) (Request, error) {
	var req Request
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return Request{}, fmt.Errorf("measured: bad request body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req = Request{
			Technique:  q.Get("technique"),
			Scenario:   q.Get("scenario"),
			Impairment: q.Get("impairment"),
			Client:     q.Get("client"),
		}
		if v := q.Get("trials"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return Request{}, fmt.Errorf("measured: bad trials %q", v)
			}
			req.Trials = n
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Request{}, fmt.Errorf("measured: bad seed %q", v)
			}
			req.Seed = n
		}
	default:
		return Request{}, fmt.Errorf("measured: method %s not allowed", r.Method)
	}
	return req, nil
}

// reject writes a JSON error response and counts it.
func (s *Service) reject(w http.ResponseWriter, status int, reason string, err error) {
	s.reg.Counter(telemetry.Labels("measured_rejected_total", "reason", reason)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":  err.Error(),
		"reason": reason,
	})
}
