// Package measured turns the batch campaign engine into a long-running
// measurement service: many probe clients submit (technique × scenario ×
// impairment × trials) requests over HTTP, and one persistent campaign
// worker pool — shared across all of them — executes the runs. This is the
// paper's mediation argument as infrastructure: instead of every consumer
// paying full campaign startup and measuring alone, the service admits,
// dedupes, schedules, and streams.
//
// The pipeline each request traverses:
//
//		admission → dedupe → schedule → stream
//
//	  - Admission: requests are validated against the E11 applicability
//	    matrix (via campaign.NewPlan), rate-limited per client by a token
//	    bucket, and bounded by a service-wide admission queue — a full queue
//	    or an over-budget service rejects rather than degrades.
//	  - Dedupe: every run has the deterministic result identity
//	    campaign.CellKey (technique, scenario, impairment, trial, seed).
//	    Completed runs land in a bounded LRU result cache; a cache hit
//	    returns bytes identical to a fresh run, which the repo's
//	    seed-determinism makes checkable. Identical runs already in flight
//	    are joined, never duplicated.
//	  - Schedule: admitted runs queue per client and a round-robin scheduler
//	    dispatches them onto the persistent campaign.Pool, so a heavy client
//	    cannot starve light ones; per-cell circuit breakers and the service
//	    failure budget are shared service-wide, not per request.
//	  - Stream: records flow back as NDJSON in trial order as runs complete,
//	    terminated by one aggregate frame.
package measured

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/telemetry"
)

// Defaults for the zero values of Config.
const (
	DefaultQueueMax          = 1024
	DefaultRatePerSec        = 64
	DefaultBurst             = 128
	DefaultCacheMax          = 65536
	DefaultMaxRunsPerRequest = 512
	DefaultWriteTimeout      = 30 * time.Second
	DefaultStreamBuf         = 64
)

// maxClients bounds the client-state table; past it, idle clients (no open
// requests, empty queue) are pruned oldest-first.
const maxClients = 4096

// Sentinel admission errors, mapped to HTTP statuses by the handler.
var (
	ErrDraining    = errors.New("measured: service draining")
	ErrDegraded    = errors.New("measured: service degraded: failure budget exceeded")
	ErrRateLimited = errors.New("measured: client rate limit exceeded")
	ErrQueueFull   = errors.New("measured: admission queue full")
	ErrStorage     = errors.New("measured: storage degraded")
)

// Config parameterizes New.
type Config struct {
	// Workers sizes the persistent campaign pool; 0 means GOMAXPROCS.
	Workers int
	// Timeout is the wall-clock budget per run (campaign semantics).
	Timeout time.Duration
	// Grace bounds how long in-flight runs keep executing once a shutdown
	// deadline has expired; 0 means campaign.DefaultGrace.
	Grace time.Duration
	// Horizon is the population cover-traffic horizon per run.
	Horizon time.Duration
	// Retry is the per-probe retry policy threaded into every run.
	Retry core.RetryPolicy
	// QueueMax bounds admitted-but-unscheduled runs across all clients;
	// 0 means DefaultQueueMax.
	QueueMax int
	// RatePerSec refills each client's token bucket (one token per
	// request); 0 means DefaultRatePerSec, negative disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity; 0 means DefaultBurst.
	Burst int
	// CacheMax bounds the result cache (records); 0 means DefaultCacheMax
	// and a negative value disables result caching entirely (every request
	// is a fresh run; in-flight dedupe still applies).
	CacheMax int
	// MaxRunsPerRequest bounds how many runs one request may expand into;
	// 0 means DefaultMaxRunsPerRequest.
	MaxRunsPerRequest int
	// Breaker, when non-zero, installs service-wide per-cell circuit
	// breakers on the pool (shared across every client's requests).
	Breaker campaign.BreakerConfig
	// Budget, when set, is the service-wide failure budget: once more than
	// Budget.Fraction of completed runs (breaker skips excluded) have
	// errored, the service degrades — /readyz goes 503 and new requests
	// are rejected — until an operator restarts it. Per service, not per
	// request: one sick backend should stop admitting everyone's traffic.
	Budget *campaign.FailureBudget
	// Store, when set, makes the service crash-durable: every admitted run
	// is journaled (write-ahead) before it may execute, every completed run
	// is archived and then marked done, and sink failures degrade admission
	// (ErrStorage) instead of losing work. Open it with OpenStore before
	// New; call WarmStart and Replay after New, before serving; Close it
	// after Shutdown (the service does not own it).
	Store *Store
	// WriteTimeout bounds each response write to a client; a stalled NDJSON
	// reader whose socket stops accepting bytes is disconnected once a
	// write blocks past it (counted in measured_slow_client_drops_total),
	// without ever blocking a pool worker. 0 means DefaultWriteTimeout,
	// negative disables the deadline.
	WriteTimeout time.Duration
	// StreamBuf bounds the per-stream record buffer between run completion
	// and the client write loop. 0 means DefaultStreamBuf.
	StreamBuf int
	// Metrics receives the measured_* service metrics and the pool's
	// campaign_* metrics; nil disables telemetry.
	Metrics *telemetry.Registry
	// OnRecord, when set, receives every run the service actually executed
	// (cache hits and dedupe joins excluded — they re-serve an already
	// delivered result). The service-side archival stream hangs off this
	// hook: safemeasured -archive flattens each record into observations.
	// Called outside the service mutex, after the result is published.
	OnRecord func(campaign.RunRecord)
	// Execute overrides the pool's per-spec executor (tests only).
	Execute campaign.Executor
}

// Service is the long-running measurement service: one persistent pool,
// one result cache, one admission queue. Create with New, mount Handler
// on an HTTP server, and stop with Shutdown.
type Service struct {
	cfg          Config
	queueMax     int
	maxRuns      int
	rate         float64
	burst        float64
	writeTimeout time.Duration
	streamBuf    int
	pool         *campaign.Pool
	store        *Store
	reg          *telemetry.Registry

	mu       sync.Mutex
	cache    *resultCache
	inflight map[campaign.CellKey]*flight // owner flights not yet complete
	clients  map[string]*clientState
	ring     []*clientState // round-robin order
	cursor   int
	queued   int
	draining bool
	degraded bool
	// service failure budget (breaker skips excluded, like RunContext)
	budgetCompleted int
	budgetErrors    int

	wake      chan struct{}
	stop      chan struct{}
	schedDone chan struct{}
	sem       chan struct{} // bounds dispatched-but-unfinished pool.Do calls

	queueDepth    *telemetry.Gauge
	clientsActive *telemetry.Gauge
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	dedupJoins    *telemetry.Counter
	requests      *telemetry.Counter
	cacheSize     *telemetry.Gauge
	degradedG     *telemetry.Gauge
	budgetTrips   *telemetry.Counter
	slowDrops     *telemetry.Counter
	warmedC       *telemetry.Counter
	replayedC     *telemetry.Counter
}

// New builds the service and starts its pool and scheduler.
func New(cfg Config) *Service {
	queueMax := cfg.QueueMax
	if queueMax <= 0 {
		queueMax = DefaultQueueMax
	}
	maxRuns := cfg.MaxRunsPerRequest
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRunsPerRequest
	}
	rate := cfg.RatePerSec
	if rate == 0 {
		rate = DefaultRatePerSec
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	// 0 is "use the default"; negative is an explicit opt-out that leaves
	// the cache nil (admission and completion skip it). Before this split,
	// a non-positive bound reached newResultCache, whose eviction loop then
	// expelled every entry the moment it was inserted.
	cacheMax := cfg.CacheMax
	if cacheMax == 0 {
		cacheMax = DefaultCacheMax
	}
	var cache *resultCache
	if cacheMax > 0 {
		cache = newResultCache(cacheMax)
	}
	writeTimeout := cfg.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = DefaultWriteTimeout
	}
	streamBuf := cfg.StreamBuf
	if streamBuf <= 0 {
		streamBuf = DefaultStreamBuf
	}
	var breakers *campaign.BreakerSet
	if cfg.Breaker != (campaign.BreakerConfig{}) {
		breakers = campaign.NewBreakerSet(cfg.Breaker)
	}
	pool := campaign.NewPool(campaign.PoolConfig{
		Workers:  cfg.Workers,
		Timeout:  cfg.Timeout,
		Grace:    cfg.Grace,
		Horizon:  cfg.Horizon,
		Retry:    cfg.Retry,
		Breakers: breakers,
		Metrics:  cfg.Metrics,
		Execute:  cfg.Execute,
	})
	s := &Service{
		cfg:          cfg,
		queueMax:     queueMax,
		maxRuns:      maxRuns,
		rate:         rate,
		burst:        float64(burst),
		writeTimeout: writeTimeout,
		streamBuf:    streamBuf,
		pool:         pool,
		store:        cfg.Store,
		reg:          cfg.Metrics,
		cache:        cache,
		inflight:     make(map[campaign.CellKey]*flight),
		clients:      make(map[string]*clientState),
		wake:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		schedDone:    make(chan struct{}),
		sem:          make(chan struct{}, pool.Workers()),

		// The ISSUE-named service metrics, resolved eagerly so they are
		// visible on /metrics from the first scrape, not the first event.
		queueDepth:    cfg.Metrics.Gauge("measured_queue_depth"),
		clientsActive: cfg.Metrics.Gauge("measured_clients_active"),
		cacheHits:     cfg.Metrics.Counter("measured_cache_hits_total"),
		cacheMisses:   cfg.Metrics.Counter("measured_cache_misses_total"),
		dedupJoins:    cfg.Metrics.Counter("measured_dedup_joins_total"),
		requests:      cfg.Metrics.Counter("measured_requests_total"),
		cacheSize:     cfg.Metrics.Gauge("measured_cache_size"),
		degradedG:     cfg.Metrics.Gauge("measured_degraded"),
		budgetTrips:   cfg.Metrics.Counter("measured_budget_trips_total"),
		slowDrops:     cfg.Metrics.Counter("measured_slow_client_drops_total"),
		warmedC:       cfg.Metrics.Counter("measured_cache_warmed_total"),
		replayedC:     cfg.Metrics.Counter("measured_replayed_total"),
	}
	go s.schedule()
	return s
}

// Request is one measurement request: a cell selection plus trial count and
// master seed. Technique/scenario/impairment accept the same names (and the
// "all" wildcard, and commas are NOT split — one value each) as cmd/campaign;
// seeds derive exactly as there, so a service response for (t, s, i, trials,
// seed) carries the same records a batch campaign with those flags writes.
type Request struct {
	Technique  string `json:"technique"`
	Scenario   string `json:"scenario"`
	Impairment string `json:"impairment,omitempty"`
	// Behavior names the adversarial censor-behavior preset ("" means the
	// faithful censor), same names as cmd/campaign's -censor-behavior.
	Behavior string `json:"behavior,omitempty"`
	Trials   int    `json:"trials,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Client identifies the requester for rate limiting and fairness;
	// empty falls back to the X-Measured-Client header, then the remote
	// address.
	Client string `json:"client,omitempty"`
}

// Plan validates the request against the E11 applicability matrix and
// expands it into runs with deterministic seeds. Validation errors are
// user errors (HTTP 400): unknown names, inapplicable (technique,
// scenario) pairs, out-of-range trials, oversized expansions.
func (s *Service) Plan(req Request) (*campaign.Plan, error) {
	if req.Technique == "" {
		return nil, fmt.Errorf("measured: request needs a technique")
	}
	if req.Scenario == "" {
		return nil, fmt.Errorf("measured: request needs a scenario")
	}
	trials := req.Trials
	if trials == 0 {
		trials = 1
	}
	if trials < 0 {
		return nil, fmt.Errorf("measured: trials must be >= 1 (got %d)", trials)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	impairment := req.Impairment
	if impairment == "" {
		impairment = lab.ImpairmentNone
	}
	behavior := req.Behavior
	if behavior == "" {
		behavior = lab.BehaviorNone
	}
	plan, err := campaign.NewPlan(campaign.PlanConfig{
		Techniques:  []string{req.Technique},
		Scenarios:   []string{req.Scenario},
		Impairments: []string{impairment},
		Behaviors:   []string{behavior},
		Trials:      trials,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	if len(plan.Specs) > s.maxRuns {
		return nil, fmt.Errorf("measured: request expands to %d runs (max %d)",
			len(plan.Specs), s.maxRuns)
	}
	return plan, nil
}

// Ready implements the /readyz contract: nil while the pool is started and
// the admission queue is accepting; an error once draining, degraded by the
// failure budget, or degraded by a failing storage sink.
func (s *Service) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.degraded {
		return ErrDegraded
	}
	if s.store != nil {
		if err := s.store.Err(); err != nil {
			return err
		}
	}
	return nil
}

// WarmStart rebuilds the result cache from the store's archive, so a cell
// the previous process answered is a cache hit again — byte-identical, the
// cached line being re-marshaled from the exactly-round-tripping flat rows.
// It also reconciles the journal: a pending admit whose error-free result
// already sits in the archive (the crash hit between the archive write and
// the done marker) gets its missing done marker instead of a replay. Call
// after New and before Replay or serving traffic. Returns how many records
// were loaded.
func (s *Service) WarmStart() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	warmed := 0
	_, err := s.store.LoadArchive(func(rec campaign.RunRecord) {
		if rec.Error != "" {
			return // never cache failures; their admits stay pending
		}
		key := rec.CellKey()
		line, mErr := archival.MarshalLine(rec)
		if mErr != nil {
			return
		}
		s.mu.Lock()
		if s.cache != nil {
			s.cache.put(key, line, rec)
			s.cacheSize.Set(int64(s.cache.len()))
		}
		s.mu.Unlock()
		warmed++
		s.store.Reconcile(key)
	})
	s.warmedC.Add(int64(warmed))
	return warmed, err
}

// Replay re-admits the journal's pending runs — the requests a crash left
// admitted but unfinished — under their original clients, bypassing rate
// limits, the queue bound, and re-journaling (their admit frames survived
// the crash; that is the point). Cells whose results warm start already
// recovered are closed out without executing; everything else schedules
// and completes through the normal pipeline, so replayed runs archive,
// cache, and dedupe exactly like fresh ones. Returns how many runs were
// re-queued.
func (s *Service) Replay() int {
	if s.store == nil {
		return 0
	}
	entries := s.store.Pending()
	now := time.Now()
	n := 0
	s.mu.Lock()
	for _, e := range entries {
		key := e.Spec.CellKey()
		if s.cache != nil {
			if _, ok := s.cache.get(key); ok {
				s.store.Reconcile(key)
				continue
			}
		}
		if _, ok := s.inflight[key]; ok {
			continue // duplicate admit frames collapse onto one flight
		}
		fl := &flight{spec: e.Spec, owner: e.Client, done: make(chan struct{})}
		s.inflight[key] = fl
		c := s.clientLocked(e.Client, now)
		c.queue = append(c.queue, fl)
		s.queued++
		n++
	}
	if n > 0 {
		s.queueDepth.Set(int64(s.queued))
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
	s.replayedC.Add(int64(n))
	return n
}

// BeginDrain flips the service to draining: /readyz goes 503 and new
// requests are rejected, while admitted work keeps executing. Shutdown
// calls it; calling it earlier lets a load balancer bleed traffic first.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Shutdown drains and stops the service: admission closes, queued and
// in-flight runs complete while ctx lasts, then the scheduler and pool stop.
// When ctx expires first, the remaining runs are abandoned with explicit
// error records (campaign claim-gate semantics) and a non-nil error is
// returned — nil means a clean drain with no abandoned in-flight runs.
func (s *Service) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	// Wait for every outstanding flight (queued or dispatched) to complete.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	var drainErr error
wait:
	for {
		s.mu.Lock()
		outstanding := len(s.inflight)
		s.mu.Unlock()
		if outstanding == 0 {
			break
		}
		select {
		case <-ctx.Done():
			drainErr = ctx.Err()
			break wait
		case <-tick.C:
		}
	}
	close(s.stop)
	<-s.schedDone
	if drainErr != nil {
		// Fail whatever never left the client queues explicitly, so joined
		// waiters see a record instead of blocking forever.
		for fl := s.nextFlight(); fl != nil; fl = s.nextFlight() {
			s.complete(fl, drainRecord(fl.spec, ErrDraining))
		}
	}
	if err := s.pool.Shutdown(ctx); err != nil {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("measured: drain incomplete: %w", drainErr)
	}
	return nil
}

// drainRecord fills an explicit error record for a run the shutdown path
// could not execute.
func drainRecord(spec campaign.RunSpec, err error) campaign.RunRecord {
	imp := spec.Impairment
	if imp == lab.ImpairmentNone {
		imp = ""
	}
	bhv := spec.Behavior
	if bhv == lab.BehaviorNone {
		bhv = ""
	}
	rec := campaign.RunRecord{Scenario: spec.Scenario, Impairment: imp,
		Behavior: bhv, Trial: spec.Trial, Error: err.Error()}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	return rec
}
