package measured

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/telemetry"
)

// The write-ahead journal reuses the archival binary container wholesale:
// entries are length-prefixed Observation frames behind the standard magic
// header, with two service-private observation types. That buys the journal
// the archival package's torn-tail repair (CleanPrefix/Repair), its bounded-
// memory Reader, and its fuzz-tested codec for free — the replay path shares
// the exact truncation logic the archive uses instead of duplicating it.
const (
	// obsTypeAdmit records one admitted run: the full cell identity columns
	// plus Detail = the admitting client. Written (and fsynced, by default)
	// before the run may execute — the "write-ahead" in the journal.
	obsTypeAdmit = "wal-admit"
	// obsTypeDone marks a cell's result durably archived: written only
	// after the archive append for the record returned. A cell with an
	// admit but no done is replayed on restart.
	obsTypeDone = "wal-done"
)

// journalObs builds one journal frame. The identity columns always carry the
// canonical (CellKey) form — pristine impairment as "" — so the Run column
// equals the archive rows' run ID for the same cell.
func journalObs(typ, client string, spec campaign.RunSpec) archival.Observation {
	key := spec.CellKey()
	o := archival.Observation{
		Run: archival.RunID(key.Technique, key.Scenario, key.Impairment,
			key.Behavior, key.Trial, key.Seed),
		Type:       typ,
		Technique:  key.Technique,
		Scenario:   key.Scenario,
		Impairment: key.Impairment,
		Behavior:   key.Behavior,
		Trial:      key.Trial,
		Seed:       key.Seed,
		Detail:     client,
	}
	o.SetID()
	return o
}

// JournalEntry is one admitted-but-unfinished run recovered from the
// journal: the spec to re-execute and the client whose admission created it
// (fairness attribution on replay).
type JournalEntry struct {
	Client string
	Spec   campaign.RunSpec
	seq    int64 // journal order, for deterministic replay
}

// appendFile is the Store's crash-safe append primitive. Unlike
// archival.Sink it neither buffers nor latches its first error: every append
// is one direct write() on the file — so bytes a completed append reported
// survive kill -9, and same-process write ordering is a durable ordering —
// and a failed write marks the file dirty so the next append first truncates
// the possibly-torn tail back to the last known-good offset and retries.
// That truncate-then-retry is what lets a degraded sink heal in place.
type appendFile struct {
	path  string
	f     *os.File
	w     io.Writer // f, or a fault-injection wrapper around it (tests)
	off   int64     // clean length: every byte below came from a completed append
	dirty bool      // a failed write may have left partial bytes past off
	sync  bool      // fsync after every successful append
}

// openAppendFile opens (creating if needed) path for appending. The caller
// must have repaired the file first; the current size is taken as the clean
// offset.
func openAppendFile(path string, wrap func(io.Writer) io.Writer, sync bool) (*appendFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var w io.Writer = f
	if wrap != nil {
		w = wrap(f)
	}
	return &appendFile{path: path, f: f, w: w, off: st.Size(), sync: sync}, nil
}

// append writes b as one unit. committed reports whether the bytes are in
// the file (they are, even when err is a post-write fsync failure — the
// same-process invariants hold, only power-loss durability is degraded).
// A non-committed failure leaves the file dirty; the next append truncates
// back to the clean offset before writing, so a torn tail from a short
// write never survives into the stream.
func (a *appendFile) append(b []byte) (committed bool, err error) {
	if a.dirty {
		if err := a.f.Truncate(a.off); err != nil {
			return false, fmt.Errorf("%s: truncating torn tail: %w", a.path, err)
		}
		a.dirty = false
	}
	n, err := a.w.Write(b)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		// Even a zero-byte report is untrusted: the wrapper may sit above
		// a writer that touched the file.
		a.dirty = true
		return false, fmt.Errorf("%s: %w", a.path, err)
	}
	a.off += int64(n)
	if a.sync {
		if err := a.f.Sync(); err != nil {
			return true, fmt.Errorf("%s: fsync: %w", a.path, err)
		}
	}
	return true, nil
}

// close fsyncs and closes the file.
func (a *appendFile) close() error {
	syncErr := a.f.Sync()
	if err := a.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// StoreConfig parameterizes OpenStore.
type StoreConfig struct {
	// Journal is the write-ahead journal path; "" disables journaling
	// (no replay, no done markers, no admit-time durability).
	Journal string
	// Archive is the observation archive path (.bin/.smoa for binary);
	// "" disables archiving (and with it cache warm start).
	Archive string
	// FsyncAdmits fsyncs the journal after every append, so admitted
	// requests survive power loss, not just process death. Completion
	// ordering does not depend on it: archive-before-done is a same-process
	// write ordering, durable under kill -9 regardless.
	FsyncAdmits bool
	// WrapJournal/WrapArchive wrap the sink writers — the chaos
	// fault-injection seam (tests only).
	WrapJournal func(io.Writer) io.Writer
	WrapArchive func(io.Writer) io.Writer
	// MaxStash bounds how many failed completion writes the store retains
	// in memory awaiting sink recovery; older entries are dropped first
	// (the journal replays them after a restart). 0 means 256.
	MaxStash int
	// Metrics receives the measured_storage_* series; nil disables.
	Metrics *telemetry.Registry
}

// journalStash is one done marker awaiting journal recovery.
type journalStash struct {
	marker []byte
	key    campaign.CellKey
}

// archiveStash is one completed record's archive batch awaiting archive
// recovery; done says a journal done marker must follow once it lands.
type archiveStash struct {
	batch []byte
	key   campaign.CellKey
	done  bool
}

// Store is the service's crash-durable state: the write-ahead request
// journal plus the observation archive, with per-sink fault tracking. Both
// sinks degrade instead of latching: a failed write trips the sink's fault
// flag (surfaced through Err, so /readyz goes 503 and admission rejects
// with reason "storage"), completed results queue in a bounded in-memory
// stash, and the next write-path call — an admission or a completion —
// probes the sink by doing; success drains the stash and heals the flag.
//
// Crash contract (kill -9 at any instant):
//
//   - an admit frame is journaled (and by default fsynced) before its run
//     may execute, so no run is ever lost without a trace;
//   - a record's archive batch is one write(), issued strictly before its
//     done marker's write(), so a done marker proves the full batch;
//   - restart repairs both files' torn tails, rewrites the journal to just
//     its pending admits (compaction, via tmp+rename so a crash inside
//     recovery loses nothing), truncates an unacknowledged tail group off
//     the archive, and exposes the pending admits for replay.
type Store struct {
	mu            sync.Mutex
	journal       *appendFile
	archive       *appendFile
	archivePath   string
	archiveFormat archival.Format

	pending map[campaign.CellKey]JournalEntry
	seq     int64

	jFailed, aFailed bool
	jErr, aErr       error
	jStash           []journalStash
	aStash           []archiveStash
	maxStash         int

	faultsJ  *telemetry.Counter
	faultsA  *telemetry.Counter
	retries  *telemetry.Counter
	degraded *telemetry.Gauge
}

// OpenStore opens (repairing and compacting as needed) the journal and
// archive and computes the pending set — the admitted runs a crash left
// unfinished, which the service replays via Pending.
func OpenStore(cfg StoreConfig) (*Store, error) {
	maxStash := cfg.MaxStash
	if maxStash <= 0 {
		maxStash = 256
	}
	st := &Store{
		pending:  make(map[campaign.CellKey]JournalEntry),
		maxStash: maxStash,
		faultsJ:  cfg.Metrics.Counter(telemetry.Labels("measured_storage_faults_total", "sink", "journal")),
		faultsA:  cfg.Metrics.Counter(telemetry.Labels("measured_storage_faults_total", "sink", "archive")),
		retries:  cfg.Metrics.Counter("measured_storage_retries_total"),
		degraded: cfg.Metrics.Gauge("measured_storage_degraded"),
	}
	if cfg.Journal != "" {
		if _, err := archival.Repair(cfg.Journal); err != nil {
			return nil, fmt.Errorf("measured: journal: %w", err)
		}
		if err := st.loadJournal(cfg.Journal); err != nil {
			return nil, fmt.Errorf("measured: journal: %w", err)
		}
		if err := st.compactJournal(cfg.Journal); err != nil {
			return nil, fmt.Errorf("measured: journal: %w", err)
		}
		jf, err := openAppendFile(cfg.Journal, cfg.WrapJournal, cfg.FsyncAdmits)
		if err != nil {
			return nil, fmt.Errorf("measured: journal: %w", err)
		}
		st.journal = jf
	}
	if cfg.Archive != "" {
		if _, err := archival.Repair(cfg.Archive); err != nil {
			st.closeFiles()
			return nil, fmt.Errorf("measured: archive: %w", err)
		}
		st.archivePath = cfg.Archive
		st.archiveFormat = archival.FormatForPath(cfg.Archive)
		if st.journal != nil {
			if err := st.truncateUndoneTail(); err != nil {
				st.closeFiles()
				return nil, fmt.Errorf("measured: archive: %w", err)
			}
		}
		af, err := openAppendFile(cfg.Archive, cfg.WrapArchive, false)
		if err != nil {
			st.closeFiles()
			return nil, fmt.Errorf("measured: archive: %w", err)
		}
		st.archive = af
		if st.archiveFormat == archival.FormatBinary && af.off == 0 {
			if _, err := af.append([]byte(archival.Magic)); err != nil {
				st.closeFiles()
				return nil, fmt.Errorf("measured: archive: %w", err)
			}
		}
	}
	return st, nil
}

// loadJournal streams the repaired journal and folds admits and done
// markers into the pending set.
func (st *Store) loadJournal(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := archival.NewReader(f, archival.TailTolerate, nil)
	if err != nil {
		return err
	}
	for {
		o, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		key := campaign.ObservationSpec(o).CellKey()
		switch o.Type {
		case obsTypeAdmit:
			if _, ok := st.pending[key]; !ok {
				st.seq++
				st.pending[key] = JournalEntry{Client: o.Detail,
					Spec: campaign.ObservationSpec(o), seq: st.seq}
			}
		case obsTypeDone:
			delete(st.pending, key)
		default:
			return fmt.Errorf("%s: unknown journal frame type %q", path, o.Type)
		}
	}
}

// compactJournal rewrites the journal as just its pending admits, via a tmp
// file and an atomic rename — a crash anywhere inside recovery leaves either
// the old journal or the compacted one, never less than the pending set.
func (st *Store) compactJournal(path string) error {
	buf := []byte(archival.Magic)
	for _, e := range st.pendingOrdered() {
		o := journalObs(obsTypeAdmit, e.Client, e.Spec)
		buf = archival.AppendObservation(buf, &o)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// pendingOrdered snapshots the pending set in journal order.
func (st *Store) pendingOrdered() []JournalEntry {
	out := make([]JournalEntry, 0, len(st.pending))
	for _, e := range st.pending {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// truncateUndoneTail cuts the archive's final run group when its cell is
// still pending in the journal. A record's rows go down in one write(), so
// only the file's last group can be a partial batch — and a partial batch is
// indistinguishable from a complete one by content (a row prefix unflattens
// to a plausible record). The journal disambiguates: the done marker is
// written only after the full batch's write() returned, so a pending tail
// group may be torn and is dropped whole. Its admit stays pending, so the
// run re-executes and re-archives — a duplicate-free archive either way.
func (st *Store) truncateUndoneTail() error {
	f, err := os.Open(st.archivePath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := archival.NewReader(f, archival.TailTolerate, nil)
	if err != nil {
		return err
	}
	var tail []archival.Observation
	for {
		o, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(tail) > 0 && o.Run != tail[0].Run {
			tail = tail[:0]
		}
		tail = append(tail, o)
	}
	if len(tail) == 0 {
		return nil
	}
	key := campaign.ObservationSpec(tail[0]).CellKey()
	if _, isPending := st.pending[key]; !isPending {
		return nil
	}
	size := int64(0)
	if info, err := f.Stat(); err == nil {
		size = info.Size()
	} else {
		return err
	}
	// Re-encode the group to learn its byte length; both encoders are
	// deterministic, so the re-encoding matches what was written.
	var groupLen int64
	if st.archiveFormat == archival.FormatBinary {
		var scratch []byte
		for i := range tail {
			scratch = archival.AppendObservation(scratch[:0], &tail[i])
			groupLen += int64(len(scratch))
		}
	} else {
		for i := range tail {
			b, err := json.Marshal(&tail[i])
			if err != nil {
				return err
			}
			groupLen += int64(len(b)) + 1
		}
	}
	return os.Truncate(st.archivePath, size-groupLen)
}

// Pending returns the journal's admitted-but-unfinished runs in journal
// order — the replay set.
func (st *Store) Pending() []JournalEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pendingOrdered()
}

// Err reports the storage degradation state: nil while both sinks are
// healthy, an ErrStorage-wrapped error naming the failing sink(s) otherwise.
// Read-only — probing happens on the write paths, so a rejected client's
// retry is what heals a recovered disk.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.errLocked()
}

func (st *Store) errLocked() error {
	switch {
	case st.jFailed && st.aFailed:
		return fmt.Errorf("%w: journal: %v; archive: %v", ErrStorage, st.jErr, st.aErr)
	case st.jFailed:
		return fmt.Errorf("%w: journal: %v", ErrStorage, st.jErr)
	case st.aFailed:
		return fmt.Errorf("%w: archive: %v", ErrStorage, st.aErr)
	}
	return nil
}

// faultLocked transitions one sink to failed.
func (st *Store) faultLocked(journal bool, err error) {
	if journal {
		if !st.jFailed {
			st.faultsJ.Inc()
		}
		st.jFailed, st.jErr = true, err
	} else {
		if !st.aFailed {
			st.faultsA.Inc()
		}
		st.aFailed, st.aErr = true, err
	}
	st.degraded.Set(1)
}

// healLocked transitions one sink back to healthy.
func (st *Store) healLocked(journal bool) {
	if journal {
		st.jFailed, st.jErr = false, nil
	} else {
		st.aFailed, st.aErr = false, nil
	}
	if !st.jFailed && !st.aFailed {
		st.degraded.Set(0)
	}
}

// flushStashLocked retries the writes earlier faults stashed — the
// probe-by-doing that heals a recovered sink. Each drained stash entry
// completes exactly what the original write would have: an archive batch
// lands and then its done marker, a done marker lands and clears its
// pending admit.
func (st *Store) flushStashLocked() {
	if st.jFailed && st.journal != nil {
		for len(st.jStash) > 0 {
			e := st.jStash[0]
			committed, err := st.journal.append(e.marker)
			if committed {
				st.jStash = st.jStash[1:]
				delete(st.pending, e.key)
				st.retries.Inc()
			}
			if err != nil {
				st.jErr = err
				return
			}
		}
		st.healLocked(true)
	}
	if st.aFailed && st.archive != nil {
		for len(st.aStash) > 0 {
			e := st.aStash[0]
			committed, err := st.archive.append(e.batch)
			if committed {
				st.aStash = st.aStash[1:]
				st.retries.Inc()
				if e.done {
					st.doneLocked(e.key)
				}
			}
			if err != nil {
				st.aErr = err
				return
			}
		}
		st.healLocked(false)
	}
}

// JournalAdmit appends one admit frame per spec — a single write, fsynced
// under FsyncAdmits — before the service may schedule any of them. A
// degraded sink rejects here (after one stash-flush probe) WITHOUT writing,
// never journal-then-reject: an orphan admit would replay as a run nobody
// asked for. The caller treats any error as ErrStorage and rolls the
// admission back.
func (st *Store) JournalAdmit(client string, specs []campaign.RunSpec) error {
	if st == nil || len(specs) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.flushStashLocked()
	if err := st.errLocked(); err != nil && (st.aFailed || st.journal == nil) {
		// The journal append below is its own probe; a failing archive (or
		// a journal-less store with a failing archive) has nothing left to
		// probe this admission with.
		return err
	}
	if st.journal == nil {
		return nil
	}
	var buf []byte
	for _, spec := range specs {
		o := journalObs(obsTypeAdmit, client, spec)
		buf = archival.AppendObservation(buf, &o)
	}
	committed, err := st.journal.append(buf)
	if !committed {
		st.faultLocked(true, err)
		return st.errLocked()
	}
	for _, spec := range specs {
		st.seq++
		st.pending[spec.CellKey()] = JournalEntry{Client: client, Spec: spec, seq: st.seq}
	}
	if err != nil {
		// Committed but not durably synced: the admission stands, the
		// degradation is surfaced so the next request probes again.
		st.faultLocked(true, err)
		return nil
	}
	st.healLocked(true)
	return nil
}

// doneLocked appends the done marker for key, stashing it when the journal
// is failing. The pending admit clears only once the marker is in the file.
func (st *Store) doneLocked(key campaign.CellKey) {
	if st.journal == nil {
		delete(st.pending, key)
		return
	}
	o := journalObs(obsTypeDone, "", campaign.RunSpec{Technique: key.Technique,
		Scenario: key.Scenario, Impairment: key.Impairment, Behavior: key.Behavior,
		Trial: key.Trial, Seed: key.Seed})
	marker := archival.AppendObservation(nil, &o)
	if st.jFailed {
		st.stashJournalLocked(journalStash{marker: marker, key: key})
		return
	}
	committed, err := st.journal.append(marker)
	if committed {
		delete(st.pending, key)
	}
	if err != nil {
		st.faultLocked(true, err)
		if !committed {
			st.stashJournalLocked(journalStash{marker: marker, key: key})
		}
		return
	}
	st.healLocked(true)
}

// stashJournalLocked bounds the done-marker stash; dropped markers are
// reconciled from the archive on the next restart instead.
func (st *Store) stashJournalLocked(e journalStash) {
	if len(st.jStash) >= st.maxStash {
		st.jStash = st.jStash[1:]
	}
	st.jStash = append(st.jStash, e)
}

// Complete persists one finished run: its flattened observation batch to
// the archive (one write, so the batch is the crash-atomic unit), then —
// for error-free records — its done marker to the journal. Error records
// get no done marker: like the batch engine's resume semantics, a failed
// run keeps its pending admit and gets a fresh chance after a restart.
// Sink failures stash the work and degrade the store; they never panic and
// never block beyond the local file write.
func (st *Store) Complete(rec campaign.RunRecord) error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := rec.CellKey()
	wantDone := rec.Error == ""
	st.flushStashLocked()
	if st.archive != nil {
		batch := st.encodeBatch(rec)
		if st.aFailed {
			st.stashArchiveLocked(archiveStash{batch: batch, key: key, done: wantDone})
			return st.errLocked()
		}
		committed, err := st.archive.append(batch)
		if !committed {
			st.faultLocked(false, err)
			st.stashArchiveLocked(archiveStash{batch: batch, key: key, done: wantDone})
			return st.errLocked()
		}
		if err != nil {
			st.faultLocked(false, err)
		} else {
			st.healLocked(false)
		}
	}
	if wantDone {
		st.doneLocked(key)
	}
	return st.errLocked()
}

// stashArchiveLocked bounds the archive retry stash; dropped batches are
// re-executed and re-archived after the next restart (their admits are
// still pending).
func (st *Store) stashArchiveLocked(e archiveStash) {
	if len(st.aStash) >= st.maxStash {
		st.aStash = st.aStash[1:]
	}
	st.aStash = append(st.aStash, e)
}

// Reconcile marks a pending cell done because its result already sits in
// the archive — the crash hit after the archive write but before the done
// marker. Warm start calls it for every error-free record it loads.
func (st *Store) Reconcile(key campaign.CellKey) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.pending[key]; !ok {
		return
	}
	st.flushStashLocked()
	st.doneLocked(key)
}

// encodeBatch renders one record's observation rows in the archive format.
func (st *Store) encodeBatch(rec campaign.RunRecord) []byte {
	obs := campaign.FlattenRecord(rec)
	if st.archiveFormat == archival.FormatBinary {
		var buf []byte
		for i := range obs {
			buf = archival.AppendObservation(buf, &obs[i])
		}
		return buf
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	for i := range obs {
		// Unreachable error: Observation always marshals.
		_ = enc.Encode(&obs[i])
	}
	return b.Bytes()
}

// LoadArchive streams the archive's run records into fn in file order,
// grouping rows by contiguous run ID (archives are run-contiguous: each
// record's rows go down as one batch). Groups holding only trace or packet
// rows are skipped — they reconstruct through their own paths. Call before
// serving traffic: it reads the same file the store appends to.
func (st *Store) LoadArchive(fn func(campaign.RunRecord)) (int, error) {
	if st == nil || st.archivePath == "" {
		return 0, nil
	}
	f, err := os.Open(st.archivePath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rd, err := archival.NewReader(f, archival.TailTolerate, nil)
	if err != nil {
		return 0, err
	}
	loaded := 0
	var group []archival.Observation
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		record := false
		for i := range group {
			if group[i].Type != archival.TypeTrace && group[i].Type != archival.TypePacket {
				record = true
				break
			}
		}
		if record {
			rec, err := campaign.UnflattenRecord(group)
			if err != nil {
				return err
			}
			fn(rec)
			loaded++
		}
		group = group[:0]
		return nil
	}
	for {
		o, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return loaded, err
		}
		if len(group) > 0 && o.Run != group[0].Run {
			if err := flush(); err != nil {
				return loaded, err
			}
		}
		group = append(group, o)
	}
	return loaded, flush()
}

// Close flushes any stashed writes, fsyncs, and closes both sinks. A
// non-nil error means durable state may be behind in-memory state (the
// journal replays the difference on the next start).
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.flushStashLocked()
	err := st.errLocked()
	if cerr := st.closeFiles(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// closeFiles closes whichever sinks are open.
func (st *Store) closeFiles() error {
	var first error
	if st.journal != nil {
		if err := st.journal.close(); err != nil {
			first = err
		}
		st.journal = nil
	}
	if st.archive != nil {
		if err := st.archive.close(); err != nil && first == nil {
			first = err
		}
		st.archive = nil
	}
	return first
}
