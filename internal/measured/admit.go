package measured

import (
	"context"
	"fmt"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
)

// tokenBucket is the classic per-client limiter: one token per request,
// refilled at rate tokens/second up to burst. Methods run under the
// service mutex.
type tokenBucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// take spends one token if available.
func (b *tokenBucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true // limiting disabled
	}
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientState is everything the service tracks per client: its admission
// queue (the fairness unit), its token bucket, and how many of its
// requests are currently streaming.
type clientState struct {
	id     string
	queue  []*flight
	bucket tokenBucket
	active int
}

// clientLocked returns (creating if needed) the client's state; the caller
// holds s.mu.
func (s *Service) clientLocked(id string, now time.Time) *clientState {
	c, ok := s.clients[id]
	if !ok {
		if len(s.clients) >= maxClients {
			s.pruneLocked()
		}
		c = &clientState{id: id,
			bucket: tokenBucket{tokens: s.burst, last: now, rate: s.rate, burst: s.burst}}
		s.clients[id] = c
		s.ring = append(s.ring, c)
	}
	return c
}

// pruneLocked drops idle clients (no open requests, empty queue) and
// rebuilds the round-robin ring; the caller holds s.mu.
func (s *Service) pruneLocked() {
	kept := s.ring[:0]
	for _, c := range s.ring {
		if c.active > 0 || len(c.queue) > 0 {
			kept = append(kept, c)
		} else {
			delete(s.clients, c.id)
		}
	}
	s.ring = kept
	if s.cursor >= len(s.ring) {
		s.cursor = 0
	}
}

// Admit runs the admission → dedupe pipeline for one request: rate-limit
// the client, resolve every spec against the cache and the in-flight map,
// and queue the remainder for scheduling. It returns one pending per spec
// (in spec order) or a sentinel error (ErrDraining, ErrDegraded,
// ErrRateLimited, ErrQueueFull) without admitting anything — admission is
// all-or-nothing so a rejected request never holds queue slots. Callers
// must pair a successful Admit with Release when the response finishes.
func (s *Service) Admit(client string, specs []campaign.RunSpec) ([]*pending, error) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if s.degraded {
		return nil, ErrDegraded
	}
	c := s.clientLocked(client, now)
	if !c.bucket.take(now) {
		return nil, ErrRateLimited
	}
	pendings := make([]*pending, 0, len(specs))
	var owned []*flight
	for _, spec := range specs {
		key := spec.CellKey()
		if s.cache != nil {
			if e, ok := s.cache.get(key); ok {
				s.cacheHits.Inc()
				pendings = append(pendings, &pending{line: e.line, rec: e.rec})
				continue
			}
		}
		if fl, ok := s.inflight[key]; ok {
			// Same cell already admitted (by anyone): join it. The joiner
			// neither queues nor runs anything.
			s.dedupJoins.Inc()
			pendings = append(pendings, &pending{fl: fl})
			continue
		}
		fl := &flight{spec: spec, owner: client, done: make(chan struct{})}
		s.inflight[key] = fl
		owned = append(owned, fl)
		pendings = append(pendings, &pending{fl: fl})
	}
	if s.queued+len(owned) > s.queueMax {
		for _, fl := range owned {
			delete(s.inflight, fl.spec.CellKey())
		}
		return nil, ErrQueueFull
	}
	if len(owned) > 0 && s.store != nil {
		// Write-ahead: the admit frames must be in the journal before any
		// of these runs may schedule. A failing sink rejects the whole
		// request (rollback, ErrStorage) — requests resolved purely from
		// the cache and in-flight joins still serve while degraded. This
		// is also the probe that heals a recovered sink.
		specs := make([]campaign.RunSpec, len(owned))
		for i, fl := range owned {
			specs[i] = fl.spec
		}
		if err := s.store.JournalAdmit(c.id, specs); err != nil {
			for _, fl := range owned {
				delete(s.inflight, fl.spec.CellKey())
			}
			return nil, err
		}
	}
	s.cacheMisses.Add(int64(len(owned)))
	c.queue = append(c.queue, owned...)
	s.queued += len(owned)
	s.queueDepth.Set(int64(s.queued))
	if c.active == 0 {
		s.clientsActive.Add(1)
	}
	c.active++
	if len(owned) > 0 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return pendings, nil
}

// Release ends one of the client's admitted requests (deferred by the
// handler after a successful Admit).
func (s *Service) Release(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[client]
	if !ok {
		return
	}
	c.active--
	if c.active == 0 {
		s.clientsActive.Add(-1)
	}
}

// nextFlight dequeues the next run round-robin across clients — each pick
// advances the cursor past the chosen client, so a client with a deep
// queue gets one run per revolution, interleaved with everyone else's.
func (s *Service) nextFlight() *flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	for i := 0; i < n; i++ {
		c := s.ring[(s.cursor+i)%n]
		if len(c.queue) == 0 {
			continue
		}
		fl := c.queue[0]
		c.queue = c.queue[1:]
		s.cursor = (s.cursor + i + 1) % n
		s.queued--
		s.queueDepth.Set(int64(s.queued))
		return fl
	}
	return nil
}

// schedule is the service's scheduler goroutine: woken by admissions, it
// drains the fair queue onto the pool, keeping at most pool-workers runs
// dispatched at once (the sem) so round-robin picks happen as slots free
// up rather than all at admission time.
func (s *Service) schedule() {
	defer close(s.schedDone)
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
		for {
			fl := s.nextFlight()
			if fl == nil {
				break
			}
			select {
			case s.sem <- struct{}{}:
			case <-s.stop:
				// Drain-path cleanup failed us a slot; put the flight back
				// for Shutdown's explicit-fail sweep.
				s.mu.Lock()
				s.requeueLocked(fl)
				s.mu.Unlock()
				return
			}
			go s.execFlight(fl)
		}
	}
}

// requeueLocked returns a dequeued flight to the front of its owner's
// queue (shutdown path only); the caller holds s.mu.
func (s *Service) requeueLocked(fl *flight) {
	c, ok := s.clients[fl.owner]
	if !ok {
		c = s.clientLocked(fl.owner, time.Now())
	}
	c.queue = append([]*flight{fl}, c.queue...)
	s.queued++
	s.queueDepth.Set(int64(s.queued))
}

// execFlight runs one flight on the pool and completes it. The pool call
// uses the background context deliberately: once scheduled, a run finishes
// and is cached even if every client that asked for it has disconnected.
func (s *Service) execFlight(fl *flight) {
	defer func() { <-s.sem }()
	rec, err := s.pool.Do(context.Background(), fl.spec)
	if err != nil {
		rec = drainRecord(fl.spec, err)
	}
	s.complete(fl, rec)
}

// complete publishes a flight's result: marshal the NDJSON line (the shared
// archival line encoding, so service streams and campaign sinks stay
// byte-compatible), cache it (error records are never cached — a transient
// failure must not poison the cell), fold it into the service failure
// budget, archive it, and release waiters.
func (s *Service) complete(fl *flight, rec campaign.RunRecord) {
	line, err := archival.MarshalLine(rec)
	if err != nil {
		// Unreachable for RunRecord, but never strand waiters on a
		// marshal bug.
		line = []byte(fmt.Sprintf(`{"error":%q}`+"\n", err.Error()))
	}
	s.mu.Lock()
	delete(s.inflight, fl.spec.CellKey())
	if rec.Error == "" && s.cache != nil {
		s.cache.put(fl.spec.CellKey(), line, rec)
		s.cacheSize.Set(int64(s.cache.len()))
	}
	if !campaign.IsBreakerSkip(rec) {
		s.budgetCompleted++
		if rec.Error != "" {
			s.budgetErrors++
		}
		if b := s.cfg.Budget; b != nil && !s.degraded {
			minRuns := b.MinRuns
			if minRuns <= 0 {
				minRuns = campaign.DefaultBudgetMinRuns
			}
			if s.budgetCompleted >= minRuns &&
				float64(s.budgetErrors)/float64(s.budgetCompleted) > b.Fraction {
				s.degraded = true
				s.degradedG.Set(1)
				s.budgetTrips.Inc()
			}
		}
	}
	s.mu.Unlock()
	fl.line = line
	fl.rec = rec
	close(fl.done)
	if s.store != nil {
		// Archive row(s) first, done marker second — the write ordering the
		// crash contract rests on. Failures degrade the store (surfaced via
		// Ready and the next admission), never this completion: waiters
		// were already released above.
		_ = s.store.Complete(rec)
	}
	if s.cfg.OnRecord != nil {
		s.cfg.OnRecord(rec)
	}
}
