package measured

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
)

// The recovery matrix emulates kill -9 by snapshotting the store's files at
// the k-th completion while holding the store mutex — a consistent cut at a
// write boundary, exactly the state a SIGKILL between two write() calls
// leaves behind. Mid-write() tears (the other half of the crash space) are
// layered on by chopping bytes off the snapshot's journal tail; the archive
// can only tear inside a batch whose done marker was never written, which
// the chopped journal and the store-level torn-tail tests cover.

const recoveryCells = 16

func recoverySpecs() []campaign.RunSpec {
	specs := make([]campaign.RunSpec, recoveryCells)
	for i := range specs {
		specs[i] = durSpec(i)
	}
	return specs
}

// execTracker records which cells an executor actually ran (and how often).
type execTracker struct {
	mu   sync.Mutex
	keys map[campaign.CellKey]int
}

func newExecTracker() *execTracker {
	return &execTracker{keys: make(map[campaign.CellKey]int)}
}

func (tr *execTracker) exec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	claim()
	tr.mu.Lock()
	tr.keys[spec.CellKey()]++
	tr.mu.Unlock()
	return richRec(spec)
}

// driveAll admits every spec as one request and waits out every result,
// returning the streamed NDJSON lines sorted (completion order varies with
// workers; content must not).
func driveAll(t *testing.T, svc *Service, client string, specs []campaign.RunSpec) []string {
	t.Helper()
	pendings, err := svc.Admit(client, specs)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer svc.Release(client)
	lines := make([]string, 0, len(pendings))
	for _, p := range pendings {
		line, _, err := p.wait(context.Background())
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		lines = append(lines, string(line))
	}
	sort.Strings(lines)
	return lines
}

// archivedLines decodes the archive (either format) into canonical record
// lines, sorted — the byte-level content identity the recovery contract
// promises, independent of completion order.
func archivedLines(t *testing.T, path string) []string {
	t.Helper()
	recs := archivedRecords(t, path)
	lines := make([]string, 0, len(recs))
	for _, rec := range recs {
		line, err := archival.MarshalLine(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		lines = append(lines, string(line))
	}
	sort.Strings(lines)
	return lines
}

func archivedRecords(t *testing.T, path string) []campaign.RunRecord {
	t.Helper()
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := archival.NewReader(f, archival.TailTolerate, nil)
	if err != nil {
		t.Fatalf("archive reader: %v", err)
	}
	var recs []campaign.RunRecord
	var group []archival.Observation
	flush := func() {
		if len(group) == 0 {
			return
		}
		rec, err := campaign.UnflattenRecord(group)
		if err != nil {
			t.Fatalf("unflatten: %v", err)
		}
		recs = append(recs, rec)
		group = group[:0]
	}
	for {
		o, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("archive read: %v", err)
		}
		if len(group) > 0 && o.Run != group[0].Run {
			flush()
		}
		group = append(group, o)
	}
	flush()
	return recs
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// chopTail shears n bytes off the file — a torn final frame, as a write()
// cut mid-flight leaves.
func chopTail(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size()-n <= int64(len(archival.Magic)) {
		return // never chop into the header; Repair's own tests cover that
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// runBaseline executes every spec in one uninterrupted session and returns
// the canonical archive lines and the streamed lines — the ground truth every
// crashed-and-recovered session must reproduce byte for byte.
func runBaseline(t *testing.T, workers int, specs []campaign.RunSpec, archiveName string) (archive, streamed []string) {
	t.Helper()
	dir := t.TempDir()
	ap := filepath.Join(dir, archiveName)
	st := mustOpenStore(t, StoreConfig{Journal: filepath.Join(dir, "wal"), Archive: ap})
	svc := New(Config{Workers: workers, Execute: richExec, Store: st})
	streamed = driveAll(t, svc, "origin", specs)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("baseline shutdown: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	return archivedLines(t, ap), streamed
}

// crashRecoverOnce runs one crashed session snapshotted at completion k,
// recovers from the wreckage, re-drives the full request, and checks the
// two invariants: the recovered archive is byte-identical to the baseline,
// and no cell whose result survived the crash executed a second time.
func crashRecoverOnce(t *testing.T, workers, k int, specs []campaign.RunSpec,
	archiveName string, chop int64, baseArchive, baseStreamed []string) {
	t.Helper()

	// Session 1: execute until the k-th completion, snapshot, carry on.
	dir := t.TempDir()
	jp, ap := filepath.Join(dir, "wal"), filepath.Join(dir, archiveName)
	crash := t.TempDir()
	cj, ca := filepath.Join(crash, "wal"), filepath.Join(crash, archiveName)
	st := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	var completions int64
	snapped := make(chan struct{})
	svc := New(Config{Workers: workers, Execute: richExec, Store: st,
		OnRecord: func(campaign.RunRecord) {
			if atomic.AddInt64(&completions, 1) == int64(k) {
				// Holding the store mutex quiesces both sinks: the snapshot is
				// a consistent cut, as an instantaneous SIGKILL would leave.
				st.mu.Lock()
				copyFile(t, jp, cj)
				copyFile(t, ap, ca)
				st.mu.Unlock()
				close(snapped)
			}
		}})
	driveAll(t, svc, "origin", specs)
	<-snapped
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("session 1 shutdown: %v", err)
	}
	st.Close()
	if chop > 0 {
		chopTail(t, cj, chop)
	}

	// Session 2: open the wreckage, warm-start, replay, and re-drive the
	// same request (the measload re-run after a restart).
	st2 := mustOpenStore(t, StoreConfig{Journal: cj, Archive: ca})
	durable := make(map[campaign.CellKey]bool)
	for _, rec := range archivedRecords(t, ca) {
		if rec.Error == "" {
			durable[rec.CellKey()] = true
		}
	}
	tr := newExecTracker()
	svc2 := New(Config{Workers: workers, Execute: tr.exec, Store: st2})
	warmed, err := svc2.WarmStart()
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if warmed != len(durable) {
		t.Errorf("WarmStart warmed %d records, want %d (the durable prefix)", warmed, len(durable))
	}
	svc2.Replay()
	streamed2 := driveAll(t, svc2, "redrive", specs)
	if err := svc2.Shutdown(context.Background()); err != nil {
		t.Fatalf("session 2 shutdown: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("session 2 close: %v", err)
	}

	// Invariant 1: byte-identical recovered output.
	got := archivedLines(t, ca)
	if len(got) != len(baseArchive) {
		t.Fatalf("recovered archive holds %d records, baseline %d", len(got), len(baseArchive))
	}
	for i := range got {
		if got[i] != baseArchive[i] {
			t.Fatalf("recovered archive line %d diverges from baseline:\n got %s\nwant %s",
				i, got[i], baseArchive[i])
		}
	}
	for i := range streamed2 {
		if streamed2[i] != baseStreamed[i] {
			t.Fatalf("recovered stream line %d diverges from baseline:\n got %s\nwant %s",
				i, streamed2[i], baseStreamed[i])
		}
	}

	// Invariant 2: zero duplicate run execution — nothing whose result
	// already sat durable in the wreckage ran again, and nothing ran twice.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for key, n := range tr.keys {
		if durable[key] {
			t.Errorf("cell %+v re-executed after its result was already durable", key)
		}
		if n > 1 {
			t.Errorf("cell %+v executed %d times in the recovery session", key, n)
		}
	}
	// And the executions plus the durable prefix must cover the request.
	if len(tr.keys)+len(durable) < len(specs) {
		t.Errorf("recovery executed %d cells with %d durable — request needs %d",
			len(tr.keys), len(durable), len(specs))
	}
}

// TestKillRecoveryMatrix is the ISSUE's crash harness: ≥8 seeded crash
// points across worker counts {1, 8}, each asserting byte-identical recovery
// with zero duplicate execution. Odd points additionally tear the journal
// tail mid-frame.
func TestKillRecoveryMatrix(t *testing.T) {
	specs := recoverySpecs()
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseArchive, baseStreamed := runBaseline(t, workers, specs, "archive.jsonl")
			if len(baseArchive) != recoveryCells {
				t.Fatalf("baseline archived %d records, want %d", len(baseArchive), recoveryCells)
			}
			rng := rand.New(rand.NewSource(42 + int64(workers)))
			points := map[int]bool{}
			for len(points) < 5 {
				points[1+rng.Intn(recoveryCells-1)] = true
			}
			ks := make([]int, 0, len(points))
			for k := range points {
				ks = append(ks, k)
			}
			sort.Ints(ks)
			for _, k := range ks {
				k := k
				t.Run(fmt.Sprintf("crash=%d", k), func(t *testing.T) {
					var chop int64
					if k%2 == 1 {
						chop = 1 + int64(k*7%24)
					}
					crashRecoverOnce(t, workers, k, specs, "archive.jsonl", chop,
						baseArchive, baseStreamed)
				})
			}
		})
	}
}

// TestKillRecoveryBinaryArchive runs the same harness over the binary
// container format — the tail-group truncation there re-encodes frames
// rather than counting lines, so it earns its own pass.
func TestKillRecoveryBinaryArchive(t *testing.T) {
	specs := recoverySpecs()
	baseArchive, baseStreamed := runBaseline(t, 8, specs, "archive.bin")
	for _, k := range []int{3, 9, 14} {
		k := k
		t.Run(fmt.Sprintf("crash=%d", k), func(t *testing.T) {
			var chop int64
			if k%2 == 1 {
				chop = 1 + int64(k*5%16)
			}
			crashRecoverOnce(t, 8, k, specs, "archive.bin", chop, baseArchive, baseStreamed)
		})
	}
}

// TestWarmStartServesByteIdenticalCacheHits is the warm-start contract in
// isolation: a clean restart re-serves every previously answered cell from
// the rebuilt cache — byte-identical lines, zero executions.
func TestWarmStartServesByteIdenticalCacheHits(t *testing.T) {
	specs := recoverySpecs()[:6]
	dir := t.TempDir()
	jp, ap := filepath.Join(dir, "wal"), filepath.Join(dir, "arch.jsonl")

	st := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	svc := New(Config{Workers: 2, Execute: richExec, Store: st})
	lines1 := driveAll(t, svc, "a", specs)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	if got := len(st2.Pending()); got != 0 {
		t.Fatalf("clean shutdown left %d pending admits", got)
	}
	tr := newExecTracker()
	svc2 := New(Config{Workers: 2, Execute: tr.exec, Store: st2})
	warmed, err := svc2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(specs) {
		t.Fatalf("warmed %d records, want %d", warmed, len(specs))
	}
	if n := svc2.Replay(); n != 0 {
		t.Fatalf("Replay() = %d after a clean shutdown, want 0", n)
	}
	lines2 := driveAll(t, svc2, "b", specs)
	if err := svc2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	for i := range lines1 {
		if lines2[i] != lines1[i] {
			t.Fatalf("warm-start line %d diverges:\n got %s\nwant %s", i, lines2[i], lines1[i])
		}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.keys) != 0 {
		t.Fatalf("warm restart executed %d cells, want 0 (all cache hits)", len(tr.keys))
	}
}
