package measured

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/campaign"
	"safemeasure/internal/telemetry"
)

// tinyBufListener shrinks every accepted connection's kernel send buffer so
// a reader that stops draining exerts backpressure after a few KB instead of
// a few hundred.
type tinyBufListener struct {
	net.Listener
}

func (l tinyBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(4096)
		}
	}
	return c, err
}

// paddedExec returns records with ~2KB of evidence so the response stream
// overruns the shrunken socket buffers quickly.
func paddedExec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	claim()
	rec := richRec(spec)
	pad := strings.Repeat("x", 1024)
	rec.Evidence = []string{pad, pad}
	return rec
}

// TestSlowClientDroppedWithoutBlockingPool stalls one NDJSON reader
// mid-stream and asserts the service's slow-client contract: the stalled
// stream is disconnected once a write blocks past the deadline (counted in
// measured_slow_client_drops_total), while a concurrent well-behaved client
// and the worker pool itself never notice.
func TestSlowClientDroppedWithoutBlockingPool(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{
		Workers:           2,
		QueueMax:          8192,
		MaxRunsPerRequest: 4096,
		CacheMax:          8192,
		WriteTimeout:      250 * time.Millisecond,
		StreamBuf:         8,
		Metrics:           reg,
		Execute:           paddedExec,
	})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewUnstartedServer(svc.Handler())
	srv.Listener = tinyBufListener{srv.Listener}
	srv.Start()
	defer srv.Close()

	// The sloth: asks for ~6MB of records over a connection with a few KB of
	// combined socket buffer, reads one chunk, then stops reading entirely.
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
	fmt.Fprintf(conn, "GET /measure?technique=overt-dns&scenario=dns-poison&trials=3000&seed=11&client=sloth HTTP/1.1\r\nHost: measured\r\n\r\n")
	buf := make([]byte, 2048)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("sloth's first read: %v", err)
	}
	// From here on the sloth never reads again.

	// A well-behaved client on the same service must stream to completion
	// while the sloth's stream is wedged — round-robin scheduling interleaves
	// its runs with the sloth's queued thousands.
	healthy := make(chan error, 1)
	go func() {
		code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&trials=2&seed=77&client=healthy")
		if code != http.StatusOK {
			healthy <- fmt.Errorf("healthy request = %d (%s)", code, strings.TrimSpace(body))
			return
		}
		healthy <- nil
	}()
	select {
	case err := <-healthy:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("healthy client starved behind a stalled reader")
	}

	// The sloth is dropped once a write blocks past the deadline.
	drops := reg.Counter("measured_slow_client_drops_total")
	deadline := time.Now().Add(15 * time.Second)
	for drops.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never dropped (measured_slow_client_drops_total still 0)")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the pool is still alive after the drop: a fresh cell executes.
	code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&trials=1&seed=88&client=after")
	if code != http.StatusOK {
		t.Fatalf("request after slow-client drop = %d (%s)", code, strings.TrimSpace(body))
	}
}
