package measured

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/archival"
	"safemeasure/internal/campaign"
	"safemeasure/internal/chaos"
	"safemeasure/internal/telemetry"
)

// durSpec builds the i-th spec of the durability tests' two-cell-family
// matrix; distinct i gives a distinct CellKey.
func durSpec(i int) campaign.RunSpec {
	fams := [...]struct{ t, s string }{
		{"overt-dns", "dns-poison"},
		{"overt-http", "keyword-rst"},
	}
	f := fams[i%len(fams)]
	return campaign.RunSpec{Technique: f.t, Scenario: f.s,
		Trial: i / len(fams), Seed: int64(1000 + i)}
}

// richRec fills a deterministic record for spec exercising every flatten
// column. All values derive from integer math (dyadic fractions for the
// floats), so the flatten → archive → unflatten round trip is bit-exact.
func richRec(spec campaign.RunSpec) campaign.RunRecord {
	rec := campaign.RunRecord{
		Scenario:    spec.Scenario,
		Trial:       spec.Trial,
		GroundTruth: spec.Seed%2 == 0,
		Correct:     spec.Seed%3 != 0,
	}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	rec.Target = "198.51.100.7:53"
	rec.Stealth = spec.Trial%2 == 1
	rec.Verdict = "censored"
	if spec.Seed%2 != 0 {
		rec.Verdict = "uncensored"
	}
	rec.Mechanism = "dns-injection"
	rec.Probes = 1 + spec.Trial%4
	rec.Cover = spec.Trial % 3
	rec.Attempts = 1 + spec.Trial%2
	if rec.Cover > 0 {
		rec.CoverAddresses = []string{fmt.Sprintf("10.0.0.%d", spec.Seed%200)}
	}
	rec.Evidence = []string{
		fmt.Sprintf("evidence-%d-a", spec.Seed),
		fmt.Sprintf("evidence-%d-b", spec.Seed),
	}
	rec.ElapsedMS = float64(spec.Seed%977) / 4
	rec.Retained = spec.Seed%5 == 0
	rec.Alerts = int(spec.Seed % 3)
	rec.Score = float64(spec.Seed%100) / 8
	rec.Entropy = float64(spec.Seed%50) / 16
	rec.Implicated = int(spec.Seed % 7)
	rec.Flagged = rec.Score > 10
	return rec
}

// richExec is an instant executor returning richRec for every spec.
func richExec(spec campaign.RunSpec, _ time.Duration, claim func() bool) campaign.RunRecord {
	claim()
	return richRec(spec)
}

func mustOpenStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	st, err := OpenStore(cfg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return st
}

// journalFrames reads the raw journal frames back through the shared
// archival reader.
func journalFrames(t *testing.T, path string) []archival.Observation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	rd, err := archival.NewReader(f, archival.TailTolerate, nil)
	if err != nil {
		t.Fatalf("journal reader: %v", err)
	}
	var out []archival.Observation
	for {
		o, err := rd.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("journal read: %v", err)
		}
		out = append(out, o)
	}
}

func TestStoreReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "wal")
	specs := []campaign.RunSpec{durSpec(0), durSpec(1), durSpec(2), durSpec(3)}

	st := mustOpenStore(t, StoreConfig{Journal: jp, FsyncAdmits: true})
	if err := st.JournalAdmit("alice", specs[:3]); err != nil {
		t.Fatalf("JournalAdmit: %v", err)
	}
	if err := st.JournalAdmit("bob", specs[3:]); err != nil {
		t.Fatalf("JournalAdmit: %v", err)
	}
	if err := st.Complete(richRec(specs[1])); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The raw journal still holds the full history: 4 admits + 1 done.
	if got := len(journalFrames(t, jp)); got != 5 {
		t.Fatalf("journal frames before reopen = %d, want 5", got)
	}

	st2 := mustOpenStore(t, StoreConfig{Journal: jp})
	defer st2.Close()
	got := st2.Pending()
	want := []struct {
		client string
		spec   campaign.RunSpec
	}{{"alice", specs[0]}, {"alice", specs[2]}, {"bob", specs[3]}}
	if len(got) != len(want) {
		t.Fatalf("Pending() = %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Client != want[i].client || e.Spec.CellKey() != want[i].spec.CellKey() {
			t.Errorf("Pending()[%d] = %s %+v, want %s %+v",
				i, e.Client, e.Spec, want[i].client, want[i].spec)
		}
	}
	// Recovery compacted the journal down to just the pending admits.
	frames := journalFrames(t, jp)
	if len(frames) != 3 {
		t.Fatalf("compacted journal frames = %d, want 3", len(frames))
	}
	for _, o := range frames {
		if o.Type != obsTypeAdmit {
			t.Errorf("compacted journal holds a %q frame, want only admits", o.Type)
		}
	}
}

func TestStoreJournalTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "wal")
	specs := []campaign.RunSpec{durSpec(0), durSpec(1), durSpec(2)}

	st := mustOpenStore(t, StoreConfig{Journal: jp})
	if err := st.JournalAdmit("c", specs); err != nil {
		t.Fatalf("JournalAdmit: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A kill -9 mid-append leaves a torn final frame; emulate by chopping
	// bytes off the tail. The journal shares the archive's repair, so the
	// torn frame is dropped and every complete frame before it survives.
	info, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpenStore(t, StoreConfig{Journal: jp})
	p := st2.Pending()
	if len(p) != 2 {
		t.Fatalf("Pending() after torn tail = %d entries, want 2", len(p))
	}
	for i, e := range p {
		if e.Spec.CellKey() != specs[i].CellKey() {
			t.Errorf("Pending()[%d] = %+v, want %+v", i, e.Spec, specs[i])
		}
	}
	st2.Close()

	// Trailing garbage (a crashed writer's scribble) is repaired the same way.
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st3 := mustOpenStore(t, StoreConfig{Journal: jp})
	defer st3.Close()
	if got := len(st3.Pending()); got != 2 {
		t.Fatalf("Pending() after trailing garbage = %d entries, want 2", got)
	}
}

func TestStoreErrorRecordStaysPending(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "wal")
	ap := filepath.Join(dir, "arch.jsonl")
	spec := durSpec(0)

	st := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	if err := st.JournalAdmit("c", []campaign.RunSpec{spec}); err != nil {
		t.Fatal(err)
	}
	rec := richRec(spec)
	rec.Error = "stub: vantage dead"
	if err := st.Complete(rec); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	st.Close()

	// An errored run gets no done marker: its admit survives the restart for
	// a fresh chance, and its error group — now the unacknowledged archive
	// tail — is truncated away rather than replayed as a result.
	st2 := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	defer st2.Close()
	p := st2.Pending()
	if len(p) != 1 || p[0].Spec.CellKey() != spec.CellKey() {
		t.Fatalf("Pending() = %+v, want the errored run's admit", p)
	}
	n, err := st2.LoadArchive(func(campaign.RunRecord) {})
	if err != nil {
		t.Fatalf("LoadArchive: %v", err)
	}
	if n != 0 {
		t.Fatalf("archive holds %d records after restart, want 0 (error tail truncated)", n)
	}
}

func TestStoreUndoneTailTruncatedAndReplayed(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "wal")
	ap := filepath.Join(dir, "arch.jsonl")
	specs := []campaign.RunSpec{durSpec(0), durSpec(1)}

	fw := &chaos.FaultyWriter{}
	st := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap,
		WrapJournal: func(w io.Writer) io.Writer { fw.W = w; return fw }})
	if err := st.JournalAdmit("c", specs); err != nil {
		t.Fatal(err)
	}
	if err := st.Complete(richRec(specs[0])); err != nil {
		t.Fatalf("Complete healthy: %v", err)
	}
	// The journal dies between specs[1]'s archive write and its done marker —
	// exactly the window the done-marker ordering exists for. Keep it dead
	// through Close so the stash never drains (the crash).
	fw.SetFailing(true)
	if err := st.Complete(richRec(specs[1])); err == nil {
		t.Fatal("Complete with dead journal reported success")
	}
	if st.Err() == nil {
		t.Fatal("Err() nil while journal is failing")
	}
	if err := st.Close(); err == nil {
		t.Fatal("Close with dead journal and stashed marker reported success")
	}

	// Restart: specs[1] has an admit but no done, so its (possibly partial)
	// tail group is dropped whole and the run replays.
	st2 := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	p := st2.Pending()
	if len(p) != 1 || p[0].Spec.CellKey() != specs[1].CellKey() {
		t.Fatalf("Pending() = %+v, want specs[1] only", p)
	}
	var keys []campaign.CellKey
	if _, err := st2.LoadArchive(func(rec campaign.RunRecord) {
		keys = append(keys, rec.CellKey())
	}); err != nil {
		t.Fatalf("LoadArchive: %v", err)
	}
	if len(keys) != 1 || keys[0] != specs[0].CellKey() {
		t.Fatalf("archive after truncation holds %v, want only specs[0]", keys)
	}
	// Re-executing the pending run archives it exactly once.
	if err := st2.Complete(richRec(specs[1])); err != nil {
		t.Fatalf("replayed Complete: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st3 := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap})
	defer st3.Close()
	if got := len(st3.Pending()); got != 0 {
		t.Fatalf("Pending() after replayed completion = %d, want 0", got)
	}
	counts := map[campaign.CellKey]int{}
	if _, err := st3.LoadArchive(func(rec campaign.RunRecord) {
		counts[rec.CellKey()]++
	}); err != nil {
		t.Fatal(err)
	}
	for key, n := range counts {
		if n != 1 {
			t.Errorf("cell %+v archived %d times, want 1", key, n)
		}
	}
	if len(counts) != 2 {
		t.Errorf("archive holds %d cells, want 2", len(counts))
	}
}

func TestStoreArchiveFaultDegradesThenHeals(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	jp := filepath.Join(dir, "wal")
	ap := filepath.Join(dir, "arch.jsonl")
	specs := []campaign.RunSpec{durSpec(0), durSpec(1), durSpec(2)}

	fw := &chaos.FaultyWriter{}
	st := mustOpenStore(t, StoreConfig{Journal: jp, Archive: ap, Metrics: reg,
		WrapArchive: func(w io.Writer) io.Writer { fw.W = w; return fw }})
	defer st.Close()
	if err := st.JournalAdmit("c", specs); err != nil {
		t.Fatal(err)
	}
	if err := st.Complete(richRec(specs[0])); err != nil {
		t.Fatalf("healthy Complete: %v", err)
	}

	fw.SetFailing(true)
	if err := st.Complete(richRec(specs[1])); err == nil {
		t.Fatal("Complete with dead archive reported success")
	}
	if st.Err() == nil {
		t.Fatal("Err() nil while archive is failing")
	}
	// Degraded admission rejects without writing — never journal-then-reject.
	if err := st.JournalAdmit("c", []campaign.RunSpec{durSpec(3)}); err == nil {
		t.Fatal("JournalAdmit while degraded reported success")
	}
	if got := reg.Counter(telemetry.Labels("measured_storage_faults_total", "sink", "archive")).Value(); got != 1 {
		t.Errorf("archive fault counter = %d, want 1", got)
	}
	if got := reg.Gauge("measured_storage_degraded").Value(); got != 1 {
		t.Errorf("degraded gauge = %d, want 1", got)
	}

	// Recovery: the next admission probes the sink, drains the stashed batch
	// (and its done marker), and heals.
	fw.SetFailing(false)
	if err := st.JournalAdmit("c", []campaign.RunSpec{durSpec(3)}); err != nil {
		t.Fatalf("JournalAdmit after recovery: %v", err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err() after recovery = %v, want nil", err)
	}
	if got := reg.Gauge("measured_storage_degraded").Value(); got != 0 {
		t.Errorf("degraded gauge after recovery = %d, want 0", got)
	}
	if got := reg.Counter("measured_storage_retries_total").Value(); got == 0 {
		t.Error("retry counter = 0, want the stashed batch's flush counted")
	}
	if err := st.Complete(richRec(specs[2])); err != nil {
		t.Fatalf("Complete after recovery: %v", err)
	}

	// The stashed completion was not lost: specs[1] is archived and done.
	got := map[campaign.CellKey]int{}
	if _, err := st.LoadArchive(func(rec campaign.RunRecord) {
		got[rec.CellKey()]++
	}); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if got[spec.CellKey()] != 1 {
			t.Errorf("cell %+v archived %d times, want 1", spec.CellKey(), got[spec.CellKey()])
		}
	}
	p := st.Pending()
	if len(p) != 1 || p[0].Spec.CellKey() != durSpec(3).CellKey() {
		t.Fatalf("Pending() = %+v, want only the un-completed durSpec(3)", p)
	}
}

func TestServiceStorageDegradeRecoverOverHTTP(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	fw := &chaos.FaultyWriter{}
	st := mustOpenStore(t, StoreConfig{Journal: filepath.Join(dir, "wal"),
		Archive: filepath.Join(dir, "arch.jsonl"), Metrics: reg,
		WrapJournal: func(w io.Writer) io.Writer { fw.W = w; return fw }})
	svc := New(Config{Workers: 1, Metrics: reg, Execute: stubExec, Store: st})
	defer func() {
		svc.Shutdown(context.Background())
		st.Close()
	}()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const cellA = "/measure?technique=overt-dns&scenario=dns-poison&trials=1&seed=5&client=a"
	if code, body := httpGet(t, srv, cellA); code != http.StatusOK {
		t.Fatalf("healthy request = %d (%s)", code, strings.TrimSpace(body))
	}

	fw.SetFailing(true)
	code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&trials=1&seed=6&client=a")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during storage fault = %d (%s), want 503", code, strings.TrimSpace(body))
	}
	if !strings.Contains(body, `"reason":"storage"`) {
		t.Errorf("storage rejection body = %s, want reason storage", strings.TrimSpace(body))
	}
	if err := svc.Ready(); err == nil {
		t.Fatal("Ready() nil while storage is degraded — /readyz would stay 200")
	}
	if got := reg.Counter(telemetry.Labels("measured_rejected_total", "reason", "storage")).Value(); got != 1 {
		t.Errorf("rejected{reason=storage} = %d, want 1", got)
	}
	// Cached cells still serve while degraded: nothing new needs journaling.
	if code, _ := httpGet(t, srv, cellA); code != http.StatusOK {
		t.Errorf("cached request during storage fault = %d, want 200", code)
	}

	fw.SetFailing(false)
	if code, body := httpGet(t, srv, "/measure?technique=overt-dns&scenario=dns-poison&trials=1&seed=6&client=a"); code != http.StatusOK {
		t.Fatalf("request after storage recovery = %d (%s), want 200", code, strings.TrimSpace(body))
	}
	if err := svc.Ready(); err != nil {
		t.Fatalf("Ready() after recovery = %v, want nil", err)
	}
}

func TestAppendFileTruncatesTornTailBeforeRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "af")
	fw := &chaos.FaultyWriter{Short: true}
	af, err := openAppendFile(path, func(w io.Writer) io.Writer { fw.W = w; return fw }, false)
	if err != nil {
		t.Fatal(err)
	}
	defer af.close()

	if committed, err := af.append([]byte("alpha-")); !committed || err != nil {
		t.Fatalf("append #1 = (%v, %v)", committed, err)
	}
	fw.SetFailing(true)
	if committed, _ := af.append([]byte("TORNTORN")); committed {
		t.Fatal("short write reported committed")
	}
	// The torn bytes are on disk now; the next successful append must not
	// leave them in the stream.
	fw.SetFailing(false)
	if committed, err := af.append([]byte("omega")); !committed || err != nil {
		t.Fatalf("append #3 = (%v, %v)", committed, err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "alpha-omega"; string(got) != want {
		t.Fatalf("file = %q, want %q", got, want)
	}
	if !bytes.Equal(got[:6], []byte("alpha-")) {
		t.Fatalf("clean prefix damaged: %q", got)
	}
}
