package ids

import (
	"bytes"
	"fmt"
	"net/netip"

	"safemeasure/internal/packet"
	"safemeasure/internal/telemetry"
)

// Alert is one rule firing. It carries only values (no reference to the
// triggering packet): alerts are retained long-term in analyst dossiers,
// while the packets that trigger them live in router-owned scratch that is
// reused on the next forward.
type Alert struct {
	Time int64 // virtual nanoseconds
	Rule *Rule
	Flow packet.Flow
}

// String renders a Snort-style alert line.
func (a Alert) String() string {
	return fmt.Sprintf("[%d] %s {%v}", a.Rule.SID, a.Rule.Msg, a.Flow)
}

// patternRef ties an automaton pattern back to (rule, content index).
type patternRef struct {
	rule    *Rule
	content int
	ruleID  int32 // index into CompiledRules.rules
}

// stream buffer direction indices.
const (
	dirC2S = 0 // client (SYN sender) → server
	dirS2C = 1
)

// flowState tracks one TCP connection for flow options, stream reassembly
// windows, and per-flow alert dedupe.
type flowState struct {
	client      netip.Addr // initiator (SYN sender)
	clientPort  uint16
	synSeen     bool
	established bool
	buf         [2][]byte    // per-direction stream windows
	acState     [2]int32     // resumable matcher state (simple-ruleset path)
	scanned     [2]int       // buf offset already consumed by the automaton
	pending     [2][]int32   // matched rules awaiting flow-option eligibility
	fired       map[int]bool // SIDs already alerted on this flow
	lastSeen    int64
}

// dirOf returns which stream buffer this packet's payload belongs to.
func (fs *flowState) dirOf(pkt *packet.Packet) int {
	if pkt.IP.Src == fs.client && pkt.TCP.SrcPort == fs.clientPort {
		return dirC2S
	}
	return dirS2C
}

type thresholdKey struct {
	sid int
	src netip.Addr
}

type thresholdState struct {
	windowStart int64
	count       int
	firedInWin  bool
}

// CompiledRules is the immutable, compile-once half of an IDS: the parsed
// ruleset partition and the Aho-Corasick automaton over its content
// patterns. It holds no per-stream state, so one CompiledRules may back any
// number of Engines concurrently (the artifact cache shares one per
// scenario across all campaign workers).
type CompiledRules struct {
	rules       []*Rule
	passRules   []*Rule
	plainRules  []*Rule // no content options: evaluated on header alone
	matcher     *Matcher
	refs        []patternRef // indexed by pattern id
	contentRule map[*Rule]bool

	// allSimple marks rulesets where every content rule has exactly one
	// positive content and no offset/depth/within/negate constraints. Such
	// rules fire iff their pattern occurs anywhere in the stream, which an
	// incremental scan of only the new bytes decides exactly — the engine
	// then skips the O(window) rescan per packet that general rules need.
	allSimple bool
}

// Compile partitions rules and builds the shared content automaton.
func Compile(rules []*Rule) *CompiledRules {
	c := &CompiledRules{
		rules:       rules,
		contentRule: make(map[*Rule]bool),
		allSimple:   true,
	}
	var patterns [][]byte
	var nocase []bool
	for ri, r := range rules {
		if r.Action == ActionPass {
			c.passRules = append(c.passRules, r)
			continue
		}
		positive, negated := 0, false
		for i, opt := range r.Contents {
			if opt.Negate {
				negated = true
				continue
			}
			positive++
			if opt.Offset != 0 || opt.Depth != 0 || opt.Within != 0 {
				c.allSimple = false
			}
			patterns = append(patterns, opt.Pattern)
			nocase = append(nocase, opt.Nocase)
			c.refs = append(c.refs, patternRef{rule: r, content: i, ruleID: int32(ri)})
		}
		if positive == 0 {
			c.plainRules = append(c.plainRules, r)
		} else {
			c.contentRule[r] = true
			if positive > 1 || negated {
				c.allSimple = false
			}
		}
	}
	c.matcher = NewMatcher(patterns, nocase)
	return c
}

// Rules returns the compiled ruleset.
func (c *CompiledRules) Rules() []*Rule { return c.rules }

// NewEngine builds a fresh per-run engine over this compiled ruleset. The
// engine owns all mutable state (flows, thresholds, stats); the receiver is
// only read.
func (c *CompiledRules) NewEngine() *Engine {
	return &Engine{
		c:            c,
		flows:        make(map[packet.Flow]*flowState),
		thresholds:   make(map[thresholdKey]*thresholdState),
		HitsBySID:    make(map[int]int),
		StreamWindow: 4096,
		FlowTimeout:  int64(120e9),
		mark:         make([]bool, len(c.rules)),
	}
}

// Engine evaluates a ruleset against a packet stream.
type Engine struct {
	c *CompiledRules

	flows      map[packet.Flow]*flowState
	thresholds map[thresholdKey]*thresholdState

	// StreamWindow bounds the per-direction reassembly buffer; contents
	// spanning more than this many bytes are not matched, mirroring a real
	// IDS's bounded reassembly (paper §2.1: censors store only enough to
	// reassemble flows).
	StreamWindow int

	// FlowTimeout evicts idle flows (virtual nanoseconds).
	FlowTimeout int64

	// Stats.
	Packets   int
	Bytes     int
	Fired     int
	HitsBySID map[int]int

	// MPackets and MAlerts, when set, additionally count evaluated packets
	// and fired alerts into the owning system's telemetry registry (each
	// middlebox names its own metrics). Nil-safe — leave unset to disable.
	MPackets, MAlerts *telemetry.Counter

	// Scan scratch, reused across packets to keep the hot path
	// allocation-free.
	scratch []Match
	mark    []bool // per-rule dedupe for single-packet scans
	marked  []int32

	// Last-flow memo: consecutive packets usually belong to the same flow,
	// and the memo skips hashing the (large) Flow key on those. Sweep
	// invalidates it.
	lastKey  packet.Flow
	lastFlow *flowState

	// alertBuf backs the slice Feed returns (valid until the next Feed).
	alertBuf []Alert
}

// SetMetrics installs the telemetry counters the engine increments on its
// match/alert hot path. Either may be nil.
func (e *Engine) SetMetrics(packets, alerts *telemetry.Counter) {
	e.MPackets, e.MAlerts = packets, alerts
}

// NewEngine compiles rules into an engine.
func NewEngine(rules []*Rule) *Engine {
	return Compile(rules).NewEngine()
}

// Compiled returns the immutable compiled half of the engine, shareable
// with further engines.
func (e *Engine) Compiled() *CompiledRules { return e.c }

// Rules returns the compiled ruleset.
func (e *Engine) Rules() []*Rule { return e.c.rules }

// Feed evaluates one packet and returns any alerts (and drop-rule hits,
// which carry Action=ActionDrop on their Rule). The returned slice is
// engine-owned scratch, valid until the next Feed call; callers keep Alert
// values (they are plain values), not the slice.
func (e *Engine) Feed(now int64, pkt *packet.Packet) []Alert {
	if pkt == nil {
		return nil
	}
	e.Packets++
	e.Bytes += len(pkt.IP.Payload)
	e.MPackets.Inc()

	fs := e.trackFlow(now, pkt)

	for _, r := range e.c.passRules {
		if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) {
			return nil
		}
	}

	alerts := e.alertBuf[:0]
	emit := func(r *Rule) {
		if fs != nil && pkt.TCP != nil {
			if fs.fired[r.SID] {
				return
			}
			fs.fired[r.SID] = true
		}
		if r.Threshold != nil && !e.thresholdOK(now, r, pkt) {
			return
		}
		e.Fired++
		e.HitsBySID[r.SID]++
		e.MAlerts.Inc()
		alerts = append(alerts, Alert{Time: now, Rule: r, Flow: packet.FlowOf(pkt)})
	}

	for _, r := range e.c.plainRules {
		if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) && e.negContentsOK(r, pkt, fs) {
			emit(r)
		}
	}

	if e.c.matcher.NumPatterns() > 0 {
		if e.c.allSimple {
			e.scanSimple(pkt, fs, emit)
		} else {
			e.scanContents(pkt, fs, func(r *Rule) {
				if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) {
					emit(r)
				}
			})
		}
	}
	e.alertBuf = alerts
	return alerts
}

// trackFlow updates TCP flow state and stream buffers.
func (e *Engine) trackFlow(now int64, pkt *packet.Packet) *flowState {
	if pkt.TCP == nil {
		return nil
	}
	key := packet.FlowOf(pkt).Canonical()
	fs := e.lastFlow
	if fs == nil || e.lastKey != key {
		var ok bool
		fs, ok = e.flows[key]
		if !ok {
			fs = &flowState{fired: make(map[int]bool)}
			e.flows[key] = fs
		}
		e.lastKey, e.lastFlow = key, fs
	}
	fs.lastSeen = now
	t := pkt.TCP
	switch {
	case t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck == 0:
		fs.synSeen = true
		fs.client = pkt.IP.Src
		fs.clientPort = t.SrcPort
	case fs.synSeen && !fs.established && t.Flags&packet.TCPAck != 0 && t.Flags&packet.TCPSyn == 0:
		fs.established = true
	}
	if len(t.Payload) > 0 {
		d := fs.dirOf(pkt)
		buf := append(fs.buf[d], t.Payload...)
		if over := len(buf) - e.StreamWindow; over > 0 {
			// Slide the window by copying down in place: re-slicing from the
			// front would orphan the buffer's head and force a fresh
			// allocation every ~StreamWindow bytes of stream.
			n := copy(buf, buf[over:])
			buf = buf[:n]
			if fs.scanned[d] <= over {
				// The window slid past bytes the incremental scan never
				// consumed; restart the automaton on the surviving window,
				// exactly what a fresh full-window scan would see.
				fs.scanned[d], fs.acState[d] = 0, 0
			} else {
				fs.scanned[d] -= over
			}
		}
		fs.buf[d] = buf
	}
	return fs
}

// flowOptOK checks flow: options against tracked state.
func (e *Engine) flowOptOK(r *Rule, pkt *packet.Packet, fs *flowState) bool {
	f := r.Flow
	if !f.Established && !f.ToServer && !f.ToClient {
		return true
	}
	if pkt.TCP == nil || fs == nil {
		return false
	}
	if f.Established && !fs.established {
		return false
	}
	fromClient := pkt.IP.Src == fs.client && pkt.TCP.SrcPort == fs.clientPort
	if f.ToServer && !fromClient {
		return false
	}
	if f.ToClient && fromClient {
		return false
	}
	return true
}

// scanSimple is the incremental fast path for allSimple rulesets: the
// automaton state is carried per flow direction, so each stream byte is
// examined exactly once over the life of the connection instead of once per
// packet that follows it. A simple rule fires iff its pattern occurs in the
// stream, so match completion is the only nomination event; rules whose
// flow options are not yet satisfiable (e.g. established before the
// handshake completes) stay pending and are retried on later data packets,
// mirroring the full-window rescan's behavior.
func (e *Engine) scanSimple(pkt *packet.Packet, fs *flowState, emit func(*Rule)) {
	c := e.c
	if pkt.TCP != nil && fs != nil {
		if len(pkt.TCP.Payload) == 0 {
			return
		}
		d := fs.dirOf(pkt)
		buf := fs.buf[d]
		st, ms := c.matcher.ScanRange(fs.acState[d], buf, fs.scanned[d], e.scratch[:0])
		fs.acState[d], fs.scanned[d], e.scratch = st, len(buf), ms
		for _, m := range ms {
			id := c.refs[m.Pattern].ruleID
			if !containsID(fs.pending[d], id) {
				fs.pending[d] = append(fs.pending[d], id)
			}
		}
		if len(fs.pending[d]) == 0 {
			return
		}
		live := fs.pending[d][:0]
		for _, id := range fs.pending[d] {
			r := c.rules[id]
			if fs.fired[r.SID] {
				continue
			}
			if !r.matchesHeader(pkt) {
				// Header predicates are constant for a flow direction, so
				// this rule can never fire here — drop it.
				continue
			}
			if !e.flowOptOK(r, pkt, fs) {
				live = append(live, id)
				continue
			}
			emit(r)
		}
		fs.pending[d] = live
		return
	}
	haystack := pkt.TransportPayload()
	if len(haystack) == 0 {
		return
	}
	_, ms := c.matcher.ScanRange(0, haystack, 0, e.scratch[:0])
	e.scratch = ms
	for _, m := range ms {
		id := c.refs[m.Pattern].ruleID
		if e.mark[id] {
			continue
		}
		e.mark[id] = true
		e.marked = append(e.marked, id)
	}
	for _, id := range e.marked {
		e.mark[id] = false
		r := c.rules[id]
		if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) {
			emit(r)
		}
	}
	e.marked = e.marked[:0]
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// scanContents runs the automaton over the right haystack (the TCP stream
// window for TCP packets, the raw payload otherwise) and calls fire for
// each rule whose positive contents are all present and negative contents
// all absent. This is the general path for rulesets with positional or
// chained constraints; it rescans the full window per packet because a
// sliding window shifts every match's offset.
func (e *Engine) scanContents(pkt *packet.Packet, fs *flowState, fire func(*Rule)) {
	var haystack []byte
	switch {
	case pkt.TCP != nil && fs != nil:
		if len(pkt.TCP.Payload) == 0 {
			return
		}
		haystack = fs.buf[fs.dirOf(pkt)]
	default:
		haystack = pkt.TransportPayload()
	}
	if len(haystack) == 0 {
		return
	}
	matches := e.c.matcher.Scan(haystack)
	if len(matches) == 0 {
		return
	}
	// Record every valid match END position per (rule, content) so the
	// within-chain check can reason about ordering and proximity.
	seen := make(map[*Rule]map[int][]int)
	for _, m := range matches {
		ref := e.c.refs[m.Pattern]
		if !ref.rule.Contents[ref.content].positionOK(m.End) {
			continue // offset/depth constraint failed at this position
		}
		set := seen[ref.rule]
		if set == nil {
			set = make(map[int][]int)
			seen[ref.rule] = set
		}
		set[ref.content] = append(set[ref.content], m.End)
	}
	for r, ends := range seen {
		ok := chainOK(r, ends)
		if ok {
			for _, c := range r.Contents {
				if c.Negate && containsPattern(haystack, c) {
					ok = false
					break
				}
			}
		}
		if ok {
			fire(r)
		}
	}
}

// chainOK verifies that every positive content matched, and that contents
// carrying a `within` constraint can be satisfied by some combination of
// match positions: each constrained content must end after, and within N
// bytes of, the previous positive content's match end. Implemented as a
// small feasible-set DP over candidate end positions.
func chainOK(r *Rule, ends map[int][]int) bool {
	prev := []int(nil) // feasible previous-end positions; nil = no anchor yet
	for i, c := range r.Contents {
		if c.Negate {
			continue
		}
		es := ends[i]
		if len(es) == 0 {
			return false
		}
		if c.Within == 0 || prev == nil {
			// Unconstrained (or first positive content): every match
			// position is feasible.
			prev = es
			continue
		}
		var next []int
		for _, e := range es {
			for _, p := range prev {
				if e > p && e-p <= c.Within {
					next = append(next, e)
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		prev = next
	}
	return true
}

// negContentsOK verifies a plain rule's negated contents (plain rules have
// no positive contents, so the automaton never nominates them).
func (e *Engine) negContentsOK(r *Rule, pkt *packet.Packet, fs *flowState) bool {
	if len(r.Contents) == 0 {
		return true
	}
	var haystack []byte
	if pkt.TCP != nil && fs != nil {
		haystack = fs.buf[fs.dirOf(pkt)]
	} else {
		haystack = pkt.TransportPayload()
	}
	for _, c := range r.Contents {
		if c.Negate && containsPattern(haystack, c) {
			return false
		}
	}
	return true
}

func containsPattern(haystack []byte, c ContentOpt) bool {
	if c.Nocase {
		return bytes.Contains(toLower(haystack), toLower(c.Pattern))
	}
	return bytes.Contains(haystack, c.Pattern)
}

// thresholdOK applies the rule's threshold; returns true when this event
// should produce an alert.
func (e *Engine) thresholdOK(now int64, r *Rule, pkt *packet.Packet) bool {
	th := r.Threshold
	key := thresholdKey{sid: r.SID, src: pkt.IP.Src}
	st, ok := e.thresholds[key]
	window := int64(th.Seconds) * 1e9
	if !ok || now-st.windowStart >= window {
		st = &thresholdState{windowStart: now}
		e.thresholds[key] = st
	}
	st.count++
	if st.count >= th.Count && !st.firedInWin {
		st.firedInWin = true
		return true
	}
	return false
}

// Sweep evicts idle flows; call occasionally with the current virtual time.
func (e *Engine) Sweep(now int64) int {
	evicted := 0
	for k, fs := range e.flows {
		if now-fs.lastSeen > e.FlowTimeout {
			delete(e.flows, k)
			evicted++
		}
	}
	e.lastFlow = nil // the memoized flow may have been evicted
	return evicted
}

// FlowCount returns the number of tracked flows (the engine's working-set
// size — the storage requirement the paper contrasts with surveillance).
func (e *Engine) FlowCount() int { return len(e.flows) }
