package ids

import (
	"bytes"
	"fmt"
	"net/netip"

	"safemeasure/internal/packet"
	"safemeasure/internal/telemetry"
)

// Alert is one rule firing.
type Alert struct {
	Time int64 // virtual nanoseconds
	Rule *Rule
	Flow packet.Flow
	Pkt  *packet.Packet
}

// String renders a Snort-style alert line.
func (a Alert) String() string {
	return fmt.Sprintf("[%d] %s {%v}", a.Rule.SID, a.Rule.Msg, a.Flow)
}

// patternRef ties an automaton pattern back to (rule, content index).
type patternRef struct {
	rule    *Rule
	content int
}

// flowState tracks one TCP connection for flow options, stream reassembly
// windows, and per-flow alert dedupe.
type flowState struct {
	client      netip.Addr // initiator (SYN sender)
	clientPort  uint16
	synSeen     bool
	established bool
	bufC2S      []byte
	bufS2C      []byte
	fired       map[int]bool // SIDs already alerted on this flow
	lastSeen    int64
}

type thresholdKey struct {
	sid int
	src netip.Addr
}

type thresholdState struct {
	windowStart int64
	count       int
	firedInWin  bool
}

// Engine evaluates a ruleset against a packet stream.
type Engine struct {
	rules       []*Rule
	passRules   []*Rule
	plainRules  []*Rule // no content options: evaluated on header alone
	matcher     *Matcher
	refs        []patternRef // indexed by pattern id
	contentRule map[*Rule]bool

	flows      map[packet.Flow]*flowState
	thresholds map[thresholdKey]*thresholdState

	// StreamWindow bounds the per-direction reassembly buffer; contents
	// spanning more than this many bytes are not matched, mirroring a real
	// IDS's bounded reassembly (paper §2.1: censors store only enough to
	// reassemble flows).
	StreamWindow int

	// FlowTimeout evicts idle flows (virtual nanoseconds).
	FlowTimeout int64

	// Stats.
	Packets   int
	Bytes     int
	Fired     int
	HitsBySID map[int]int

	// MPackets and MAlerts, when set, additionally count evaluated packets
	// and fired alerts into the owning system's telemetry registry (each
	// middlebox names its own metrics). Nil-safe — leave unset to disable.
	MPackets, MAlerts *telemetry.Counter
}

// SetMetrics installs the telemetry counters the engine increments on its
// match/alert hot path. Either may be nil.
func (e *Engine) SetMetrics(packets, alerts *telemetry.Counter) {
	e.MPackets, e.MAlerts = packets, alerts
}

// NewEngine compiles rules into an engine.
func NewEngine(rules []*Rule) *Engine {
	e := &Engine{
		rules:        rules,
		flows:        make(map[packet.Flow]*flowState),
		thresholds:   make(map[thresholdKey]*thresholdState),
		contentRule:  make(map[*Rule]bool),
		HitsBySID:    make(map[int]int),
		StreamWindow: 4096,
		FlowTimeout:  int64(120e9),
	}
	var patterns [][]byte
	var nocase []bool
	for _, r := range rules {
		if r.Action == ActionPass {
			e.passRules = append(e.passRules, r)
			continue
		}
		positive := 0
		for i, c := range r.Contents {
			if c.Negate {
				continue
			}
			positive++
			patterns = append(patterns, c.Pattern)
			nocase = append(nocase, c.Nocase)
			e.refs = append(e.refs, patternRef{rule: r, content: i})
		}
		if positive == 0 {
			e.plainRules = append(e.plainRules, r)
		} else {
			e.contentRule[r] = true
		}
	}
	e.matcher = NewMatcher(patterns, nocase)
	return e
}

// Rules returns the compiled ruleset.
func (e *Engine) Rules() []*Rule { return e.rules }

// Feed evaluates one packet and returns any alerts (and drop-rule hits,
// which carry Action=ActionDrop on their Rule).
func (e *Engine) Feed(now int64, pkt *packet.Packet) []Alert {
	if pkt == nil {
		return nil
	}
	e.Packets++
	e.Bytes += len(pkt.IP.Payload)
	e.MPackets.Inc()

	fs := e.trackFlow(now, pkt)

	for _, r := range e.passRules {
		if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) {
			return nil
		}
	}

	var alerts []Alert
	emit := func(r *Rule) {
		if fs != nil && pkt.TCP != nil {
			if fs.fired[r.SID] {
				return
			}
			fs.fired[r.SID] = true
		}
		if r.Threshold != nil && !e.thresholdOK(now, r, pkt) {
			return
		}
		e.Fired++
		e.HitsBySID[r.SID]++
		e.MAlerts.Inc()
		alerts = append(alerts, Alert{Time: now, Rule: r, Flow: packet.FlowOf(pkt), Pkt: pkt})
	}

	for _, r := range e.plainRules {
		if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) && e.negContentsOK(r, pkt, fs) {
			emit(r)
		}
	}

	if e.matcher.NumPatterns() > 0 {
		e.scanContents(pkt, fs, func(r *Rule) {
			if r.matchesHeader(pkt) && e.flowOptOK(r, pkt, fs) {
				emit(r)
			}
		})
	}
	return alerts
}

// trackFlow updates TCP flow state and stream buffers.
func (e *Engine) trackFlow(now int64, pkt *packet.Packet) *flowState {
	if pkt.TCP == nil {
		return nil
	}
	key := packet.FlowOf(pkt).Canonical()
	fs, ok := e.flows[key]
	if !ok {
		fs = &flowState{fired: make(map[int]bool)}
		e.flows[key] = fs
	}
	fs.lastSeen = now
	t := pkt.TCP
	switch {
	case t.Flags&packet.TCPSyn != 0 && t.Flags&packet.TCPAck == 0:
		fs.synSeen = true
		fs.client = pkt.IP.Src
		fs.clientPort = t.SrcPort
	case fs.synSeen && !fs.established && t.Flags&packet.TCPAck != 0 && t.Flags&packet.TCPSyn == 0:
		fs.established = true
	}
	if len(t.Payload) > 0 {
		buf := &fs.bufS2C
		if pkt.IP.Src == fs.client && t.SrcPort == fs.clientPort {
			buf = &fs.bufC2S
		}
		*buf = append(*buf, t.Payload...)
		if len(*buf) > e.StreamWindow {
			*buf = (*buf)[len(*buf)-e.StreamWindow:]
		}
	}
	return fs
}

// flowOptOK checks flow: options against tracked state.
func (e *Engine) flowOptOK(r *Rule, pkt *packet.Packet, fs *flowState) bool {
	f := r.Flow
	if !f.Established && !f.ToServer && !f.ToClient {
		return true
	}
	if pkt.TCP == nil || fs == nil {
		return false
	}
	if f.Established && !fs.established {
		return false
	}
	fromClient := pkt.IP.Src == fs.client && pkt.TCP.SrcPort == fs.clientPort
	if f.ToServer && !fromClient {
		return false
	}
	if f.ToClient && fromClient {
		return false
	}
	return true
}

// scanContents runs the automaton over the right haystack (the TCP stream
// window for TCP packets, the raw payload otherwise) and calls fire for
// each rule whose positive contents are all present and negative contents
// all absent.
func (e *Engine) scanContents(pkt *packet.Packet, fs *flowState, fire func(*Rule)) {
	var haystack []byte
	switch {
	case pkt.TCP != nil && fs != nil:
		if len(pkt.TCP.Payload) == 0 {
			return
		}
		if pkt.IP.Src == fs.client && pkt.TCP.SrcPort == fs.clientPort {
			haystack = fs.bufC2S
		} else {
			haystack = fs.bufS2C
		}
	default:
		haystack = pkt.TransportPayload()
	}
	if len(haystack) == 0 {
		return
	}
	matches := e.matcher.Scan(haystack)
	if len(matches) == 0 {
		return
	}
	// Record every valid match END position per (rule, content) so the
	// within-chain check can reason about ordering and proximity.
	seen := make(map[*Rule]map[int][]int)
	for _, m := range matches {
		ref := e.refs[m.Pattern]
		if !ref.rule.Contents[ref.content].positionOK(m.End) {
			continue // offset/depth constraint failed at this position
		}
		set := seen[ref.rule]
		if set == nil {
			set = make(map[int][]int)
			seen[ref.rule] = set
		}
		set[ref.content] = append(set[ref.content], m.End)
	}
	for r, ends := range seen {
		ok := chainOK(r, ends)
		if ok {
			for _, c := range r.Contents {
				if c.Negate && containsPattern(haystack, c) {
					ok = false
					break
				}
			}
		}
		if ok {
			fire(r)
		}
	}
}

// chainOK verifies that every positive content matched, and that contents
// carrying a `within` constraint can be satisfied by some combination of
// match positions: each constrained content must end after, and within N
// bytes of, the previous positive content's match end. Implemented as a
// small feasible-set DP over candidate end positions.
func chainOK(r *Rule, ends map[int][]int) bool {
	prev := []int(nil) // feasible previous-end positions; nil = no anchor yet
	for i, c := range r.Contents {
		if c.Negate {
			continue
		}
		es := ends[i]
		if len(es) == 0 {
			return false
		}
		if c.Within == 0 || prev == nil {
			// Unconstrained (or first positive content): every match
			// position is feasible.
			prev = es
			continue
		}
		var next []int
		for _, e := range es {
			for _, p := range prev {
				if e > p && e-p <= c.Within {
					next = append(next, e)
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		prev = next
	}
	return true
}

// negContentsOK verifies a plain rule's negated contents (plain rules have
// no positive contents, so the automaton never nominates them).
func (e *Engine) negContentsOK(r *Rule, pkt *packet.Packet, fs *flowState) bool {
	if len(r.Contents) == 0 {
		return true
	}
	var haystack []byte
	if pkt.TCP != nil && fs != nil {
		if pkt.IP.Src == fs.client && pkt.TCP.SrcPort == fs.clientPort {
			haystack = fs.bufC2S
		} else {
			haystack = fs.bufS2C
		}
	} else {
		haystack = pkt.TransportPayload()
	}
	for _, c := range r.Contents {
		if c.Negate && containsPattern(haystack, c) {
			return false
		}
	}
	return true
}

func containsPattern(haystack []byte, c ContentOpt) bool {
	if c.Nocase {
		return bytes.Contains(toLower(haystack), toLower(c.Pattern))
	}
	return bytes.Contains(haystack, c.Pattern)
}

// thresholdOK applies the rule's threshold; returns true when this event
// should produce an alert.
func (e *Engine) thresholdOK(now int64, r *Rule, pkt *packet.Packet) bool {
	th := r.Threshold
	key := thresholdKey{sid: r.SID, src: pkt.IP.Src}
	st, ok := e.thresholds[key]
	window := int64(th.Seconds) * 1e9
	if !ok || now-st.windowStart >= window {
		st = &thresholdState{windowStart: now}
		e.thresholds[key] = st
	}
	st.count++
	if st.count >= th.Count && !st.firedInWin {
		st.firedInWin = true
		return true
	}
	return false
}

// Sweep evicts idle flows; call occasionally with the current virtual time.
func (e *Engine) Sweep(now int64) int {
	evicted := 0
	for k, fs := range e.flows {
		if now-fs.lastSeen > e.FlowTimeout {
			delete(e.flows, k)
			evicted++
		}
	}
	return evicted
}

// FlowCount returns the number of tracked flows (the engine's working-set
// size — the storage requirement the paper contrasts with surveillance).
func (e *Engine) FlowCount() int { return len(e.flows) }
