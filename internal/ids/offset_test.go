package ids

import (
	"strings"
	"testing"

	"safemeasure/internal/packet"
)

func TestParseOffsetDepth(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any 80 (msg:"m"; content:"GET"; offset:0; depth:3; sid:300;)`)
	if r.Contents[0].Offset != 0 || r.Contents[0].Depth != 3 {
		t.Fatalf("content: %+v", r.Contents[0])
	}
	bad := []string{
		`alert tcp any any -> any 80 (offset:4; sid:1;)`,               // before content
		`alert tcp any any -> any 80 (content:"x"; offset:-1; sid:1;)`, // negative
		`alert tcp any any -> any 80 (content:"x"; depth:0; sid:1;)`,   // zero depth
		`alert tcp any any -> any 80 (content:"x"; depth:xyz; sid:1;)`, // garbage
	}
	for _, line := range bad {
		if _, err := ParseRule(line, nil); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestContentPositionOK(t *testing.T) {
	c := ContentOpt{Pattern: []byte("GET"), Offset: 0, Depth: 3}
	if !c.positionOK(3) { // match at [0,3)
		t.Fatal("anchored match rejected")
	}
	if c.positionOK(4) { // match at [1,4): beyond depth
		t.Fatal("deep match accepted")
	}
	c2 := ContentOpt{Pattern: []byte("ab"), Offset: 5}
	if c2.positionOK(6) { // starts at 4 < offset 5
		t.Fatal("early match accepted")
	}
	if !c2.positionOK(7) { // starts at 5
		t.Fatal("valid offset match rejected")
	}
}

func TestEngineDepthAnchorsMethodLine(t *testing.T) {
	// "GET" anchored at the start of the stream: matches a request line but
	// not a GET appearing later in a payload.
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"http get"; content:"GET"; offset:0; depth:3; sid:301;)`, nil)

	e := NewEngine(rules)
	pkt := tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "GET / HTTP/1.1\r\n\r\n")
	if n := len(e.Feed(0, pkt)); n != 1 {
		t.Fatalf("anchored GET: %d alerts", n)
	}

	e2 := NewEngine(rules)
	pkt2 := tcpPacket(t, cli, 2, srv, 80, packet.TCPAck, 0, "POST /x HTTP/1.1\r\nX: GET\r\n\r\n")
	if n := len(e2.Feed(0, pkt2)); n != 0 {
		t.Fatalf("mid-payload GET matched anchored rule: %d alerts", n)
	}
}

func TestEngineOffsetSkipsPrefix(t *testing.T) {
	rules, _ := ParseRules(`alert udp any any -> any 53 (msg:"qtype"; content:"xyz"; offset:4; sid:302;)`, nil)
	e := NewEngine(rules)
	// Match entirely inside the first 4 bytes: rejected.
	if n := len(e.Feed(0, udpPacket(t, cli, 1, srv, 53, "xyzA----"))); n != 0 {
		t.Fatalf("early match accepted: %d", n)
	}
	// Match after the offset: accepted.
	if n := len(e.Feed(1, udpPacket(t, cli, 1, srv, 53, "AAAAxyz"))); n != 1 {
		t.Fatalf("valid match rejected: %d", n)
	}
}

func TestHitsBySID(t *testing.T) {
	rules, _ := ParseRules(`alert udp any any -> any 9 (msg:"m"; content:"q"; sid:303;)`, nil)
	e := NewEngine(rules)
	for i := 0; i < 3; i++ {
		e.Feed(int64(i), udpPacket(t, cli, 1, srv, 9, "q"))
	}
	if e.HitsBySID[303] != 3 {
		t.Fatalf("hits = %d", e.HitsBySID[303])
	}
}

func TestParseWithin(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any 80 (msg:"pair"; content:"User"; content:"Agent"; within:8; sid:310;)`)
	if r.Contents[1].Within != 8 {
		t.Fatalf("within: %+v", r.Contents[1])
	}
	bad := []string{
		`alert tcp any any -> any 80 (content:"x"; within:4; sid:1;)`,               // needs a pair
		`alert tcp any any -> any 80 (content:"a"; content:"b"; within:0; sid:1;)`,  // zero
		`alert tcp any any -> any 80 (content:"a"; content:!"b"; within:4; sid:1;)`, // negated
	}
	for _, line := range bad {
		if _, err := ParseRule(line, nil); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestEngineWithinProximity(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"pair"; content:"alpha"; content:"beta"; within:10; sid:311;)`, nil)
	// Adjacent: "alpha..beta" within 10 bytes -> fires.
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "xx alpha beta yy"))); n != 1 {
		t.Fatalf("adjacent pair: %d alerts", n)
	}
	// Far apart: "beta" ends > 10 bytes after "alpha" ends -> no fire.
	e2 := NewEngine(rules)
	far := "alpha " + strings.Repeat("-", 40) + " beta"
	if n := len(e2.Feed(0, tcpPacket(t, cli, 2, srv, 80, packet.TCPAck, 0, far))); n != 0 {
		t.Fatalf("distant pair fired: %d alerts", n)
	}
	// Wrong order: "beta ... alpha" -> no fire (within implies ordering).
	e3 := NewEngine(rules)
	if n := len(e3.Feed(0, tcpPacket(t, cli, 3, srv, 80, packet.TCPAck, 0, "beta alpha"))); n != 0 {
		t.Fatalf("reversed pair fired: %d alerts", n)
	}
	// Multiple candidate positions: a far "beta" plus a close one -> fires.
	e4 := NewEngine(rules)
	multi := "beta " + "alpha beta"
	if n := len(e4.Feed(0, tcpPacket(t, cli, 4, srv, 80, packet.TCPAck, 0, multi))); n != 1 {
		t.Fatalf("multi-candidate: %d alerts", n)
	}
}

func TestEngineWithinThreeLink(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"chain"; content:"a1"; content:"b2"; within:6; content:"c3"; within:6; sid:312;)`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "a1 b2 c3"))); n != 1 {
		t.Fatalf("tight chain: %d", n)
	}
	e2 := NewEngine(rules)
	if n := len(e2.Feed(0, tcpPacket(t, cli, 2, srv, 80, packet.TCPAck, 0, "a1 b2 -------- c3"))); n != 0 {
		t.Fatalf("broken chain fired: %d", n)
	}
}
