package ids

// Aho-Corasick multi-pattern matcher. All rule content patterns are compiled
// into one automaton so each payload byte is examined once regardless of
// ruleset size — the same architecture Snort's fast pattern matcher uses.
//
// Patterns are indexed lowercased; case-sensitive patterns are verified
// against the original bytes at each candidate match position.
//
// The automaton is flattened into a dense state×256 transition table with
// fail links resolved at build time, so scanning is one slice load per input
// byte — no hashing, no pointer chasing. Uppercase input columns alias their
// lowercase counterparts, which removes the per-byte lowering from the scan
// loop. Build cost is paid once per compiled ruleset; Matcher is immutable
// and safe for concurrent use, including resumable scans via ScanRange.

// Matcher is an immutable compiled automaton.
type Matcher struct {
	trans    []int32  // state*256 + byte -> next state (fail links resolved)
	outStart []int32  // CSR row index into outList; len = states+1
	outList  []int32  // pattern ids, fail-closure included
	patterns [][]byte // lowercased
	exact    [][]byte // original bytes for case-sensitive patterns, nil for nocase
}

// Match reports a pattern occurrence: pattern id and the end offset
// (exclusive) in the haystack.
type Match struct {
	Pattern int
	End     int
}

// NewMatcher compiles patterns. nocase[i] selects case-insensitive matching
// for patterns[i].
func NewMatcher(patterns [][]byte, nocase []bool) *Matcher {
	m := &Matcher{}

	// Trie construction over the lowercased patterns. next uses -1 for
	// "no edge" so the BFS below can distinguish real children from the
	// root self-loop when it resolves fail transitions in place.
	next := make([][]int32, 1)
	next[0] = newRow()
	fail := []int32{0}
	out := [][]int32{nil}

	for i, p := range patterns {
		lower := toLower(p)
		m.patterns = append(m.patterns, lower)
		if nocase != nil && nocase[i] {
			m.exact = append(m.exact, nil)
		} else {
			m.exact = append(m.exact, append([]byte(nil), p...))
		}
		s := int32(0)
		for _, b := range lower {
			if next[s][b] < 0 {
				next = append(next, newRow())
				fail = append(fail, 0)
				out = append(out, nil)
				next[s][b] = int32(len(next) - 1)
			}
			s = next[s][b]
		}
		out[s] = append(out[s], int32(i))
	}

	// Convert the goto function into a full DFA (BFS order guarantees a
	// state's fail target is finalized before the state itself), folding
	// each state's uppercase columns onto lowercase as it is finalized.
	queue := make([]int32, 0, len(next))
	for b := 0; b < 256; b++ {
		if c := next[0][b]; c < 0 {
			next[0][b] = 0
		} else {
			fail[c] = 0
			queue = append(queue, c)
		}
	}
	for b := 'A'; b <= 'Z'; b++ {
		next[0][b] = next[0][b+32]
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		row, failRow := next[s], next[fail[s]]
		for b := 0; b < 256; b++ {
			if c := row[b]; c < 0 {
				row[b] = failRow[b]
			} else {
				fail[c] = failRow[b]
				out[c] = append(out[c], out[fail[c]]...)
				queue = append(queue, c)
			}
		}
		for b := 'A'; b <= 'Z'; b++ {
			row[b] = row[b+32]
		}
	}

	// Flatten to the dense table plus a CSR output index.
	states := len(next)
	m.trans = make([]int32, states*256)
	m.outStart = make([]int32, states+1)
	for s := 0; s < states; s++ {
		copy(m.trans[s*256:(s+1)*256], next[s])
		m.outStart[s+1] = m.outStart[s] + int32(len(out[s]))
	}
	m.outList = make([]int32, 0, m.outStart[states])
	for s := 0; s < states; s++ {
		m.outList = append(m.outList, out[s]...)
	}
	return m
}

func newRow() []int32 {
	row := make([]int32, 256)
	for i := range row {
		row[i] = -1
	}
	return row
}

// Scan finds all pattern occurrences in data.
func (m *Matcher) Scan(data []byte) []Match {
	_, out := m.ScanRange(0, data, 0, nil)
	return out
}

// ScanRange resumes the automaton at state (0 is the start state), scans
// data[from:], and appends matches to out. End offsets are absolute within
// data, so a resumable caller that keeps earlier stream bytes in the same
// buffer gets correct case-sensitive verification for matches spanning the
// resume point. Returns the final automaton state for the next call.
func (m *Matcher) ScanRange(state int32, data []byte, from int, out []Match) (int32, []Match) {
	trans, outStart := m.trans, m.outStart
	s := state
	for i := from; i < len(data); i++ {
		s = trans[int(s)<<8|int(data[i])]
		if outStart[s] == outStart[s+1] {
			continue
		}
		end := i + 1
		for _, pid := range m.outList[outStart[s]:outStart[s+1]] {
			if ex := m.exact[pid]; ex != nil {
				start := end - len(ex)
				if start < 0 || !bytesEqual(data[start:end], ex) {
					continue
				}
			}
			out = append(out, Match{Pattern: int(pid), End: end})
		}
	}
	return s, out
}

// NumPatterns returns how many patterns the automaton holds.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// PatternLen returns the length of pattern id.
func (m *Matcher) PatternLen(id int) int { return len(m.patterns[id]) }

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

func toLower(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = lowerByte(b)
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
