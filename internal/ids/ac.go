package ids

// Aho-Corasick multi-pattern matcher. All rule content patterns are compiled
// into one automaton so each payload byte is examined once regardless of
// ruleset size — the same architecture Snort's fast pattern matcher uses.
//
// Patterns are indexed lowercased; case-sensitive patterns are verified
// against the original bytes at each candidate match position.

type acNode struct {
	next map[byte]*acNode
	fail *acNode
	out  []int // pattern ids terminating here
}

// Matcher is an immutable compiled automaton.
type Matcher struct {
	root     *acNode
	patterns [][]byte // lowercased
	exact    [][]byte // original bytes for case-sensitive patterns, nil for nocase
}

// Match reports a pattern occurrence: pattern id and the end offset
// (exclusive) in the haystack.
type Match struct {
	Pattern int
	End     int
}

// NewMatcher compiles patterns. nocase[i] selects case-insensitive matching
// for patterns[i].
func NewMatcher(patterns [][]byte, nocase []bool) *Matcher {
	m := &Matcher{root: &acNode{next: make(map[byte]*acNode)}}
	for i, p := range patterns {
		lower := toLower(p)
		m.patterns = append(m.patterns, lower)
		if nocase != nil && nocase[i] {
			m.exact = append(m.exact, nil)
		} else {
			m.exact = append(m.exact, append([]byte(nil), p...))
		}
		node := m.root
		for _, b := range lower {
			nxt, ok := node.next[b]
			if !ok {
				nxt = &acNode{next: make(map[byte]*acNode)}
				node.next[b] = nxt
			}
			node = nxt
		}
		node.out = append(node.out, i)
	}
	m.buildFailLinks()
	return m
}

func (m *Matcher) buildFailLinks() {
	queue := make([]*acNode, 0, 64)
	for _, child := range m.root.next {
		child.fail = m.root
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for b, child := range node.next {
			f := node.fail
			for f != nil {
				if nxt, ok := f.next[b]; ok {
					child.fail = nxt
					break
				}
				f = f.fail
			}
			if child.fail == nil {
				child.fail = m.root
			}
			child.out = append(child.out, child.fail.out...)
			queue = append(queue, child)
		}
	}
}

// Scan finds all pattern occurrences in data.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	node := m.root
	for i := 0; i < len(data); i++ {
		b := lowerByte(data[i])
		for node != m.root && node.next[b] == nil {
			node = node.fail
		}
		if nxt, ok := node.next[b]; ok {
			node = nxt
		}
		for _, pid := range node.out {
			end := i + 1
			if ex := m.exact[pid]; ex != nil {
				start := end - len(ex)
				if start < 0 || !bytesEqual(data[start:end], ex) {
					continue
				}
			}
			out = append(out, Match{Pattern: pid, End: end})
		}
	}
	return out
}

// NumPatterns returns how many patterns the automaton holds.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// PatternLen returns the length of pattern id.
func (m *Matcher) PatternLen(id int) int { return len(m.patterns[id]) }

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

func toLower(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = lowerByte(b)
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
