// Package ids implements a Snort-like signature IDS engine: a rule language
// parser, an Aho-Corasick fast-pattern stage, a flow table with TCP stream
// awareness, per-rule thresholds, and alert generation.
//
// Both middleboxes in the lab are configurations of this one engine — the
// censor (internal/censor) attaches response actions to its alerts, the
// surveillance MVR (internal/surveil) attaches retention and analyst
// scoring — mirroring the paper's observation that the GFC and the NSA
// systems are functionally off-path signature IDSes like Snort (§3.2.1).
package ids

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"safemeasure/internal/packet"
)

// Action is what a rule does when it fires.
type Action int

// Rule actions.
const (
	ActionAlert Action = iota
	ActionDrop         // inline only; the censor uses this for blackholing
	ActionPass         // whitelist: stop processing this packet
)

// String returns the rule-language keyword.
func (a Action) String() string {
	switch a {
	case ActionAlert:
		return "alert"
	case ActionDrop:
		return "drop"
	case ActionPass:
		return "pass"
	}
	return "action?"
}

// Proto selects the transport a rule applies to.
type Proto int

// Rule protocols.
const (
	ProtoIP Proto = iota
	ProtoTCP
	ProtoUDP
	ProtoICMP
)

// String returns the rule-language keyword.
func (p Proto) String() string {
	return [...]string{"ip", "tcp", "udp", "icmp"}[p]
}

// AddrSpec matches packet addresses: any, a CIDR prefix, or a negated CIDR.
type AddrSpec struct {
	Any    bool
	Prefix netip.Prefix
	Negate bool
}

// Matches reports whether addr satisfies the spec.
func (a AddrSpec) Matches(addr netip.Addr) bool {
	if a.Any {
		return true
	}
	in := a.Prefix.Contains(addr)
	if a.Negate {
		return !in
	}
	return in
}

// PortSpec matches ports: any, a single port, a range, or a negation.
type PortSpec struct {
	Any    bool
	Lo, Hi uint16
	Negate bool
}

// Matches reports whether port satisfies the spec.
func (p PortSpec) Matches(port uint16) bool {
	if p.Any {
		return true
	}
	in := port >= p.Lo && port <= p.Hi
	if p.Negate {
		return !in
	}
	return in
}

// ContentOpt is one content match with its modifiers.
type ContentOpt struct {
	Pattern []byte
	Nocase  bool
	Negate  bool // content:!"..."
	// Offset skips this many haystack bytes before the pattern may begin
	// (Snort `offset`). Depth, when nonzero, bounds how far into the
	// haystack the pattern may END, measured from Offset (Snort `depth`).
	Offset int
	Depth  int
	// Within, when nonzero, requires this content to END within Within
	// bytes after the END of the previous content's match (a simplified
	// Snort `within`/`distance`): the two patterns must appear close
	// together and in order.
	Within int
}

// positionOK checks a match ending at end (exclusive) against the
// offset/depth constraints.
func (c ContentOpt) positionOK(end int) bool {
	start := end - len(c.Pattern)
	if start < c.Offset {
		return false
	}
	if c.Depth > 0 && end > c.Offset+c.Depth {
		return false
	}
	return true
}

// FlowOpt constrains rule evaluation to flow state.
type FlowOpt struct {
	Established bool // only match on established TCP connections
	ToServer    bool // only client->server direction
	ToClient    bool
}

// ThresholdOpt rate-limits rule alerts: fire once per window after Count
// events from the same source.
type ThresholdOpt struct {
	Count   int
	Seconds int
}

// SizeCmp compares payload size.
type SizeCmp int

// dsize comparators.
const (
	SizeAny SizeCmp = iota
	SizeGT
	SizeLT
	SizeEQ
)

// Rule is one parsed signature.
type Rule struct {
	Action  Action
	Proto   Proto
	Src     AddrSpec
	SrcPort PortSpec
	Bidir   bool // "<>" direction
	Dst     AddrSpec
	DstPort PortSpec

	Msg       string
	SID       int
	Rev       int
	Classtype string
	Contents  []ContentOpt
	Flags     string // required TCP flags, e.g. "S" (exactly-set semantics: all listed must be set)
	FlagsMask bool   // "S,12" style ignored; true when flags option present
	Dsize     SizeCmp
	DsizeVal  int
	Flow      FlowOpt
	Threshold *ThresholdOpt

	// StreamMatch applies content matching to the reassembled TCP stream
	// (set by the engine for TCP rules with contents; keyword "stream").
	raw string
}

// String returns the original rule text.
func (r *Rule) String() string { return r.raw }

// ParseRules parses a ruleset: one rule per line, '#' comments and blank
// lines ignored. vars maps $NAME to CIDR prefixes (e.g. HOME_NET).
func ParseRules(text string, vars map[string]netip.Prefix) ([]*Rule, error) {
	var rules []*Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line, vars)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ParseRule parses a single rule line.
func ParseRule(line string, vars map[string]netip.Prefix) (*Rule, error) {
	r := &Rule{raw: line, Rev: 1}
	head, opts, ok := strings.Cut(line, "(")
	if !ok {
		return nil, fmt.Errorf("ids: missing options block in %q", line)
	}
	opts = strings.TrimSpace(opts)
	if !strings.HasSuffix(opts, ")") {
		return nil, fmt.Errorf("ids: unterminated options block")
	}
	opts = opts[:len(opts)-1]

	fields := strings.Fields(head)
	if len(fields) != 7 {
		return nil, fmt.Errorf("ids: header needs 7 fields, got %d", len(fields))
	}
	switch fields[0] {
	case "alert":
		r.Action = ActionAlert
	case "drop":
		r.Action = ActionDrop
	case "pass":
		r.Action = ActionPass
	default:
		return nil, fmt.Errorf("ids: unknown action %q", fields[0])
	}
	switch fields[1] {
	case "ip":
		r.Proto = ProtoIP
	case "tcp":
		r.Proto = ProtoTCP
	case "udp":
		r.Proto = ProtoUDP
	case "icmp":
		r.Proto = ProtoICMP
	default:
		return nil, fmt.Errorf("ids: unknown proto %q", fields[1])
	}
	var err error
	if r.Src, err = parseAddr(fields[2], vars); err != nil {
		return nil, err
	}
	if r.SrcPort, err = parsePort(fields[3]); err != nil {
		return nil, err
	}
	switch fields[4] {
	case "->":
	case "<>":
		r.Bidir = true
	default:
		return nil, fmt.Errorf("ids: bad direction %q", fields[4])
	}
	if r.Dst, err = parseAddr(fields[5], vars); err != nil {
		return nil, err
	}
	if r.DstPort, err = parsePort(fields[6]); err != nil {
		return nil, err
	}
	if err := r.parseOptions(opts); err != nil {
		return nil, err
	}
	if r.SID == 0 {
		return nil, fmt.Errorf("ids: rule missing sid")
	}
	return r, nil
}

func parseAddr(s string, vars map[string]netip.Prefix) (AddrSpec, error) {
	var a AddrSpec
	if strings.HasPrefix(s, "!") {
		a.Negate = true
		s = s[1:]
	}
	if s == "any" {
		if a.Negate {
			return a, fmt.Errorf("ids: !any is unsatisfiable")
		}
		a.Any = true
		return a, nil
	}
	if strings.HasPrefix(s, "$") {
		p, ok := vars[s[1:]]
		if !ok {
			return a, fmt.Errorf("ids: undefined variable %s", s)
		}
		a.Prefix = p
		return a, nil
	}
	if strings.Contains(s, "/") {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return a, fmt.Errorf("ids: bad prefix %q: %v", s, err)
		}
		a.Prefix = p
		return a, nil
	}
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return a, fmt.Errorf("ids: bad address %q: %v", s, err)
	}
	a.Prefix = netip.PrefixFrom(ip, ip.BitLen())
	return a, nil
}

func parsePort(s string) (PortSpec, error) {
	var p PortSpec
	if strings.HasPrefix(s, "!") {
		p.Negate = true
		s = s[1:]
	}
	if s == "any" {
		if p.Negate {
			return p, fmt.Errorf("ids: !any port is unsatisfiable")
		}
		p.Any = true
		return p, nil
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		l, err := parsePortNum(lo, 0)
		if err != nil {
			return p, err
		}
		h, err := parsePortNum(hi, 65535)
		if err != nil {
			return p, err
		}
		p.Lo, p.Hi = l, h
		return p, nil
	}
	n, err := parsePortNum(s, 0)
	if err != nil {
		return p, err
	}
	p.Lo, p.Hi = n, n
	return p, nil
}

func parsePortNum(s string, def uint16) (uint16, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 65535 {
		return 0, fmt.Errorf("ids: bad port %q", s)
	}
	return uint16(n), nil
}

// parseOptions handles the semicolon-separated key:value options.
func (r *Rule) parseOptions(opts string) error {
	for _, opt := range splitOptions(opts) {
		key, val, _ := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "msg":
			r.Msg = unquote(val)
		case "sid":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("ids: bad sid %q", val)
			}
			r.SID = n
		case "rev":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("ids: bad rev %q", val)
			}
			r.Rev = n
		case "classtype":
			r.Classtype = val
		case "content":
			c := ContentOpt{}
			if strings.HasPrefix(val, "!") {
				c.Negate = true
				val = val[1:]
			}
			pat, err := decodeContent(unquote(val))
			if err != nil {
				return err
			}
			if len(pat) == 0 {
				return fmt.Errorf("ids: empty content")
			}
			c.Pattern = pat
			r.Contents = append(r.Contents, c)
		case "nocase":
			if len(r.Contents) == 0 {
				return fmt.Errorf("ids: nocase before content")
			}
			r.Contents[len(r.Contents)-1].Nocase = true
		case "offset":
			if len(r.Contents) == 0 {
				return fmt.Errorf("ids: offset before content")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("ids: bad offset %q", val)
			}
			r.Contents[len(r.Contents)-1].Offset = n
		case "depth":
			if len(r.Contents) == 0 {
				return fmt.Errorf("ids: depth before content")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("ids: bad depth %q", val)
			}
			r.Contents[len(r.Contents)-1].Depth = n
		case "within":
			if len(r.Contents) < 2 {
				return fmt.Errorf("ids: within needs a preceding content pair")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("ids: bad within %q", val)
			}
			if r.Contents[len(r.Contents)-1].Negate {
				return fmt.Errorf("ids: within on negated content")
			}
			r.Contents[len(r.Contents)-1].Within = n
		case "flags":
			r.Flags = val
			r.FlagsMask = true
		case "dsize":
			switch {
			case strings.HasPrefix(val, ">"):
				r.Dsize = SizeGT
				val = val[1:]
			case strings.HasPrefix(val, "<"):
				r.Dsize = SizeLT
				val = val[1:]
			default:
				r.Dsize = SizeEQ
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("ids: bad dsize %q", val)
			}
			r.DsizeVal = n
		case "flow":
			for _, part := range strings.Split(val, ",") {
				switch strings.TrimSpace(part) {
				case "established":
					r.Flow.Established = true
				case "to_server":
					r.Flow.ToServer = true
				case "to_client":
					r.Flow.ToClient = true
				case "stateless":
				default:
					return fmt.Errorf("ids: unknown flow option %q", part)
				}
			}
		case "threshold":
			th := &ThresholdOpt{Count: 1, Seconds: 60}
			for _, part := range strings.Split(val, ",") {
				k, v, _ := strings.Cut(strings.TrimSpace(part), " ")
				v = strings.TrimSpace(v)
				switch k {
				case "type", "track": // accepted, single implemented semantics
				case "count":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("ids: bad threshold count %q", v)
					}
					th.Count = n
				case "seconds":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("ids: bad threshold seconds %q", v)
					}
					th.Seconds = n
				default:
					return fmt.Errorf("ids: unknown threshold option %q", k)
				}
			}
			r.Threshold = th
		case "":
			// trailing semicolon
		default:
			return fmt.Errorf("ids: unknown option %q", key)
		}
	}
	return nil
}

// splitOptions splits on ';' while respecting quoted strings.
func splitOptions(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			if t := strings.TrimSpace(cur.String()); t != "" {
				out = append(out, t)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	return strings.ReplaceAll(s, `\"`, `"`)
}

// decodeContent handles Snort's |xx xx| hex escapes inside content strings.
func decodeContent(s string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(s); {
		if s[i] != '|' {
			out = append(out, s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i+1:], '|')
		if end < 0 {
			return nil, fmt.Errorf("ids: unterminated hex block in content")
		}
		hexPart := s[i+1 : i+1+end]
		for _, tok := range strings.Fields(hexPart) {
			b, err := strconv.ParseUint(tok, 16, 8)
			if err != nil {
				return nil, fmt.Errorf("ids: bad hex byte %q", tok)
			}
			out = append(out, byte(b))
		}
		i += end + 2
	}
	return out, nil
}

// matchesHeader checks everything except contents/threshold: proto,
// addresses, ports, flags, dsize.
func (r *Rule) matchesHeader(pkt *packet.Packet) bool {
	switch r.Proto {
	case ProtoTCP:
		if pkt.TCP == nil {
			return false
		}
	case ProtoUDP:
		if pkt.UDP == nil {
			return false
		}
	case ProtoICMP:
		if pkt.ICMP == nil {
			return false
		}
	}
	flow := packet.FlowOf(pkt)
	forward := r.Src.Matches(flow.Src) && r.SrcPort.Matches(flow.SrcPort) &&
		r.Dst.Matches(flow.Dst) && r.DstPort.Matches(flow.DstPort)
	if !forward && r.Bidir {
		forward = r.Src.Matches(flow.Dst) && r.SrcPort.Matches(flow.DstPort) &&
			r.Dst.Matches(flow.Src) && r.DstPort.Matches(flow.SrcPort)
	}
	if !forward {
		return false
	}
	if r.FlagsMask {
		if pkt.TCP == nil {
			return false
		}
		want, ok := flagBits(r.Flags)
		if !ok {
			return false
		}
		if pkt.TCP.Flags != want {
			return false
		}
	}
	if r.Dsize != SizeAny {
		n := len(pkt.TransportPayload())
		switch r.Dsize {
		case SizeGT:
			if n <= r.DsizeVal {
				return false
			}
		case SizeLT:
			if n >= r.DsizeVal {
				return false
			}
		case SizeEQ:
			if n != r.DsizeVal {
				return false
			}
		}
	}
	return true
}

// flagBits converts "SA" to flag bits; returns ok=false on unknown letters.
func flagBits(s string) (uint8, bool) {
	var bits uint8
	for _, c := range s {
		switch c {
		case 'S':
			bits |= packet.TCPSyn
		case 'A':
			bits |= packet.TCPAck
		case 'F':
			bits |= packet.TCPFin
		case 'R':
			bits |= packet.TCPRst
		case 'P':
			bits |= packet.TCPPsh
		case 'U':
			bits |= packet.TCPUrg
		default:
			return 0, false
		}
	}
	return bits, true
}
