package ids

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"safemeasure/internal/packet"
)

var (
	home = netip.MustParsePrefix("10.1.0.0/24")
	cli  = netip.MustParseAddr("10.1.0.10")
	srv  = netip.MustParseAddr("203.0.113.80")
)

var testVars = map[string]netip.Prefix{"HOME_NET": home}

func mustRule(t *testing.T, line string) *Rule {
	t.Helper()
	r, err := ParseRule(line, testVars)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return r
}

func tcpPacket(t testing.TB, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, flags uint8, seq uint32, payload string) *packet.Packet {
	t.Helper()
	raw, err := packet.BuildTCP(src, dst, 64, &packet.TCP{SrcPort: sp, DstPort: dp, Flags: flags, Seq: seq, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := packet.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func udpPacket(t testing.TB, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload string) *packet.Packet {
	t.Helper()
	raw, err := packet.BuildUDP(src, dst, 64, &packet.UDP{SrcPort: sp, DstPort: dp, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := packet.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// --- parser ---

func TestParseBasicRule(t *testing.T) {
	r := mustRule(t, `alert tcp $HOME_NET any -> any 80 (msg:"GFW keyword"; content:"falun"; nocase; sid:1001; rev:2; classtype:policy-violation;)`)
	if r.Action != ActionAlert || r.Proto != ProtoTCP {
		t.Fatalf("header: %+v", r)
	}
	if r.Src.Prefix != home || !r.Dst.Any || !r.SrcPort.Any || r.DstPort.Lo != 80 {
		t.Fatalf("addrs: %+v", r)
	}
	if r.Msg != "GFW keyword" || r.SID != 1001 || r.Rev != 2 || r.Classtype != "policy-violation" {
		t.Fatalf("options: %+v", r)
	}
	if len(r.Contents) != 1 || string(r.Contents[0].Pattern) != "falun" || !r.Contents[0].Nocase {
		t.Fatalf("contents: %+v", r.Contents)
	}
}

func TestParsePortRangeAndNegation(t *testing.T) {
	r := mustRule(t, `alert tcp any 1024:65535 -> any !80 (msg:"x"; sid:1;)`)
	if !r.SrcPort.Matches(2000) || r.SrcPort.Matches(80) {
		t.Fatal("src range")
	}
	if r.DstPort.Matches(80) || !r.DstPort.Matches(81) {
		t.Fatal("dst negation")
	}
	r = mustRule(t, `alert tcp any :1023 -> any any (msg:"y"; sid:2;)`)
	if !r.SrcPort.Matches(0) || !r.SrcPort.Matches(1023) || r.SrcPort.Matches(1024) {
		t.Fatal("open-low range")
	}
}

func TestParseAddrForms(t *testing.T) {
	r := mustRule(t, `alert ip 192.0.2.1 any -> !198.51.100.0/24 any (msg:"a"; sid:3;)`)
	if !r.Src.Matches(netip.MustParseAddr("192.0.2.1")) || r.Src.Matches(netip.MustParseAddr("192.0.2.2")) {
		t.Fatal("single addr")
	}
	if r.Dst.Matches(netip.MustParseAddr("198.51.100.7")) || !r.Dst.Matches(netip.MustParseAddr("203.0.113.1")) {
		t.Fatal("negated prefix")
	}
}

func TestParseHexContent(t *testing.T) {
	r := mustRule(t, `alert udp any any -> any 53 (msg:"dns"; content:"|01 00 00 01|"; sid:4;)`)
	if !bytes.Equal(r.Contents[0].Pattern, []byte{1, 0, 0, 1}) {
		t.Fatalf("pattern: %x", r.Contents[0].Pattern)
	}
	r = mustRule(t, `alert tcp any any -> any any (msg:"mixed"; content:"GET|20|/"; sid:5;)`)
	if string(r.Contents[0].Pattern) != "GET /" {
		t.Fatalf("mixed pattern: %q", r.Contents[0].Pattern)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`alert tcp any any -> any 80`, // no options
		`alert tcp any any -> any 80 (msg:"no sid";)`,               // missing sid
		`nuke tcp any any -> any 80 (sid:1;)`,                       // bad action
		`alert xyz any any -> any 80 (sid:1;)`,                      // bad proto
		`alert tcp any any >> any 80 (sid:1;)`,                      // bad direction
		`alert tcp any any -> any 99999 (sid:1;)`,                   // bad port
		`alert tcp $NOPE any -> any 80 (sid:1;)`,                    // undefined var
		`alert tcp any any -> any 80 (content:"x"; frob:1; sid:1;)`, // unknown option
		`alert tcp any any -> any 80 (content:"|zz|"; sid:1;)`,      // bad hex
		`alert tcp any any -> any 80 (nocase; sid:1;)`,              // nocase before content
		`alert tcp !any any -> any 80 (sid:1;)`,                     // !any
	}
	for _, line := range bad {
		if _, err := ParseRule(line, testVars); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseRulesMultiline(t *testing.T) {
	text := `
# GFC-style ruleset
alert tcp any any -> any 80 (msg:"kw"; content:"banned"; sid:10;)

alert udp any any -> any 53 (msg:"dns"; sid:11;)
`
	rules, err := ParseRules(text, testVars)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].SID != 10 || rules[1].SID != 11 {
		t.Fatalf("rules: %v", rules)
	}
}

func TestParseRulesReportsLine(t *testing.T) {
	_, err := ParseRules("alert tcp any any -> any 80 (msg:\"ok\"; sid:1;)\ngarbage", testVars)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

// --- Aho-Corasick ---

func TestMatcherFindsOverlapping(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("he"), []byte("she"), []byte("hers")}, nil)
	got := m.Scan([]byte("ushers"))
	// "she" ends at 4, "he" ends at 4, "hers" ends at 6.
	found := map[int]bool{}
	for _, mm := range got {
		found[mm.Pattern] = true
	}
	if !found[0] || !found[1] || !found[2] {
		t.Fatalf("matches: %v", got)
	}
}

func TestMatcherCaseSensitivity(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("Tor"), []byte("vpn")}, []bool{false, true})
	if got := m.Scan([]byte("tor relay")); len(got) != 0 {
		t.Fatalf("case-sensitive matched lowercase: %v", got)
	}
	if got := m.Scan([]byte("Tor relay")); len(got) != 1 || got[0].Pattern != 0 {
		t.Fatalf("missed exact: %v", got)
	}
	if got := m.Scan([]byte("VPN service")); len(got) != 1 || got[0].Pattern != 1 {
		t.Fatalf("nocase miss: %v", got)
	}
}

func TestQuickMatcherAgreesWithContains(t *testing.T) {
	f := func(hay []byte, needleSeed uint8) bool {
		needles := [][]byte{[]byte("abc"), []byte("XY"), {0, 1}, []byte("q")}
		needle := needles[int(needleSeed)%len(needles)]
		m := NewMatcher([][]byte{needle}, []bool{false})
		found := len(m.Scan(hay)) > 0
		return found == bytes.Contains(hay, needle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// --- engine ---

func TestEngineKeywordAlert(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"kw"; content:"falun"; nocase; sid:100;)`, nil)
	e := NewEngine(rules)
	pkt := tcpPacket(t, cli, 4000, srv, 80, packet.TCPPsh|packet.TCPAck, 100, "GET /FaLun HTTP/1.1")
	alerts := e.Feed(0, pkt)
	if len(alerts) != 1 || alerts[0].Rule.SID != 100 {
		t.Fatalf("alerts: %v", alerts)
	}
}

func TestEngineStreamReassemblyAcrossSegments(t *testing.T) {
	// The keyword is split across two TCP segments; a per-packet matcher
	// misses it, the stream window catches it (GFC does reassembly).
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"kw"; content:"falungong"; sid:101;)`, nil)
	e := NewEngine(rules)
	a := e.Feed(0, tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 100, "xxfalun"))
	if len(a) != 0 {
		t.Fatalf("early alert: %v", a)
	}
	a = e.Feed(1, tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 107, "gongyy"))
	if len(a) != 1 || a[0].Rule.SID != 101 {
		t.Fatalf("split keyword missed: %v", a)
	}
}

func TestEnginePerFlowDedupe(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"kw"; content:"bad"; sid:102;)`, nil)
	e := NewEngine(rules)
	p1 := tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 100, "bad")
	p2 := tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 103, "bad again")
	if n := len(e.Feed(0, p1)); n != 1 {
		t.Fatalf("first: %d", n)
	}
	if n := len(e.Feed(1, p2)); n != 0 {
		t.Fatalf("same flow re-alerted: %d", n)
	}
	// A different flow alerts independently.
	p3 := tcpPacket(t, cli, 4001, srv, 80, packet.TCPAck, 100, "bad")
	if n := len(e.Feed(2, p3)); n != 1 {
		t.Fatalf("new flow: %d", n)
	}
}

func TestEngineUDPNoDedupe(t *testing.T) {
	rules, _ := ParseRules(`alert udp any any -> any 53 (msg:"q"; content:"evil"; sid:103;)`, nil)
	e := NewEngine(rules)
	p := udpPacket(t, cli, 5000, srv, 53, "evil query")
	if len(e.Feed(0, p)) != 1 || len(e.Feed(1, p)) != 1 {
		t.Fatal("udp packets should alert per-packet")
	}
}

func TestEngineFlagsRule(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any any (msg:"syn scan"; flags:S; sid:104;)`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPSyn, 0, ""))); n != 1 {
		t.Fatalf("SYN: %d", n)
	}
	if n := len(e.Feed(1, tcpPacket(t, cli, 2, srv, 80, packet.TCPSyn|packet.TCPAck, 0, ""))); n != 0 {
		t.Fatalf("SYN/ACK matched flags:S: %d", n)
	}
}

func TestEngineDsize(t *testing.T) {
	rules, _ := ParseRules(`alert udp any any -> any any (msg:"big"; dsize:>100; sid:105;)`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, udpPacket(t, cli, 1, srv, 9, strings.Repeat("x", 101)))); n != 1 {
		t.Fatalf("big: %d", n)
	}
	if n := len(e.Feed(1, udpPacket(t, cli, 1, srv, 9, "small"))); n != 0 {
		t.Fatalf("small: %d", n)
	}
}

func TestEngineNegatedContent(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"http no host"; content:"GET "; content:!"Host:"; sid:106;)`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "GET / HTTP/1.1\r\n\r\n"))); n != 1 {
		t.Fatalf("no-host: %d", n)
	}
	e2 := NewEngine(rules)
	if n := len(e2.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"))); n != 0 {
		t.Fatalf("with-host fired: %d", n)
	}
}

func TestEngineFlowEstablished(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"estab"; content:"data"; flow:established,to_server; sid:107;)`, nil)
	e := NewEngine(rules)
	// Data before handshake: no alert.
	if n := len(e.Feed(0, tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 1, "data"))); n != 0 {
		t.Fatalf("pre-handshake: %d", n)
	}
	e = NewEngine(rules)
	e.Feed(0, tcpPacket(t, cli, 4000, srv, 80, packet.TCPSyn, 0, ""))
	e.Feed(1, tcpPacket(t, srv, 80, cli, 4000, packet.TCPSyn|packet.TCPAck, 0, ""))
	e.Feed(2, tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 1, ""))
	if n := len(e.Feed(3, tcpPacket(t, cli, 4000, srv, 80, packet.TCPPsh|packet.TCPAck, 1, "data"))); n != 1 {
		t.Fatalf("established to_server: %d", n)
	}
	// Server->client direction must not match to_server.
	rules2, _ := ParseRules(`alert tcp any any -> any any (msg:"s2c"; content:"resp"; flow:established,to_server; sid:108;)`, nil)
	e2 := NewEngine(rules2)
	e2.Feed(0, tcpPacket(t, cli, 4000, srv, 80, packet.TCPSyn, 0, ""))
	e2.Feed(1, tcpPacket(t, srv, 80, cli, 4000, packet.TCPSyn|packet.TCPAck, 0, ""))
	e2.Feed(2, tcpPacket(t, cli, 4000, srv, 80, packet.TCPAck, 1, ""))
	if n := len(e2.Feed(3, tcpPacket(t, srv, 80, cli, 4000, packet.TCPPsh|packet.TCPAck, 1, "resp"))); n != 0 {
		t.Fatalf("to_server matched server->client: %d", n)
	}
}

func TestEngineThreshold(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any any (msg:"scan"; flags:S; threshold:type both, track by_src, count 5, seconds 60; sid:109;)`, nil)
	e := NewEngine(rules)
	total := 0
	for i := 0; i < 10; i++ {
		pkt := tcpPacket(t, cli, uint16(1000+i), srv, uint16(i), packet.TCPSyn, 0, "")
		total += len(e.Feed(int64(i)*1e9, pkt))
	}
	if total != 1 {
		t.Fatalf("threshold alerts = %d, want 1 (fires once at 5th within window)", total)
	}
	// New window: fires again after 5 more.
	for i := 0; i < 5; i++ {
		pkt := tcpPacket(t, cli, uint16(2000+i), srv, uint16(i), packet.TCPSyn, 0, "")
		total += len(e.Feed(int64(100+i)*1e9, pkt))
	}
	if total != 2 {
		t.Fatalf("second window alerts = %d, want 2 cumulative", total)
	}
}

func TestEnginePassRule(t *testing.T) {
	rules, _ := ParseRules(`
pass tcp any any -> any 22 (msg:"ssh ok"; sid:110;)
alert tcp any any -> any any (msg:"kw"; content:"bad"; sid:111;)
`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, cli, 1, srv, 22, packet.TCPAck, 0, "bad stuff"))); n != 0 {
		t.Fatalf("pass rule ignored: %d", n)
	}
	if n := len(e.Feed(1, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "bad stuff"))); n != 1 {
		t.Fatalf("non-passed: %d", n)
	}
}

func TestEngineBidirRule(t *testing.T) {
	rules, _ := ParseRules(`alert tcp 10.1.0.0/24 any <> any 80 (msg:"both"; content:"x"; sid:112;)`, nil)
	e := NewEngine(rules)
	if n := len(e.Feed(0, tcpPacket(t, srv, 80, cli, 4000, packet.TCPAck, 0, "x"))); n != 1 {
		t.Fatalf("reverse direction: %d", n)
	}
}

func TestEngineStreamWindowBound(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"kw"; content:"needle"; sid:113;)`, nil)
	e := NewEngine(rules)
	e.StreamWindow = 16
	// "nee" then lots of filler then "dle": window evicts the prefix.
	e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "nee"))
	e.Feed(1, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 3, strings.Repeat("z", 32)))
	if n := len(e.Feed(2, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 35, "dle"))); n != 0 {
		t.Fatalf("matched across evicted window: %d", n)
	}
}

func TestEngineSweep(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any any (msg:"m"; content:"q"; sid:114;)`, nil)
	e := NewEngine(rules)
	e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPSyn, 0, ""))
	e.Feed(0, tcpPacket(t, cli, 2, srv, 80, packet.TCPSyn, 0, ""))
	if e.FlowCount() != 2 {
		t.Fatalf("flows = %d", e.FlowCount())
	}
	if n := e.Sweep(e.FlowTimeout + 1); n != 2 {
		t.Fatalf("evicted = %d", n)
	}
	if e.FlowCount() != 0 {
		t.Fatalf("flows after sweep = %d", e.FlowCount())
	}
}

func TestAlertString(t *testing.T) {
	rules, _ := ParseRules(`alert tcp any any -> any 80 (msg:"kw"; content:"bad"; sid:115;)`, nil)
	e := NewEngine(rules)
	a := e.Feed(0, tcpPacket(t, cli, 1, srv, 80, packet.TCPAck, 0, "bad"))
	if len(a) != 1 || !strings.Contains(a[0].String(), "kw") || !strings.Contains(a[0].String(), "115") {
		t.Fatalf("alert string: %v", a)
	}
}

func BenchmarkEngineFeedClean(b *testing.B) {
	rules, _ := ParseRules(`
alert tcp any any -> any 80 (msg:"kw1"; content:"falun"; nocase; sid:1;)
alert tcp any any -> any 80 (msg:"kw2"; content:"tiananmen"; nocase; sid:2;)
alert tcp any any -> any 80 (msg:"kw3"; content:"banned-site.test"; sid:3;)
alert tcp any any -> any any (msg:"scan"; flags:S; threshold:type both, track by_src, count 100, seconds 60; sid:4;)
`, nil)
	e := NewEngine(rules)
	pkt := tcpPacket(b, cli, 4000, srv, 80, packet.TCPAck, 0, "GET /innocuous/path HTTP/1.1\r\nHost: news.test\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(int64(i), pkt)
	}
}

func tcpPacketB(b *testing.B, payload string) *packet.Packet {
	raw, _ := packet.BuildTCP(cli, srv, 64, &packet.TCP{SrcPort: 4000, DstPort: 80, Flags: packet.TCPAck, Payload: []byte(payload)})
	pkt, _ := packet.Parse(raw)
	return pkt
}
