package mailsim

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/smtpwire"
	"safemeasure/internal/tcpsim"
)

var (
	cliAddr = netip.MustParseAddr("10.1.0.10")
	mtaAddr = netip.MustParseAddr("203.0.113.25")
	rtrAddr = netip.MustParseAddr("10.1.0.1")
)

type env struct {
	sim    *netsim.Sim
	cs, ms *tcpsim.Stack
	router *netsim.Router
	srv    *Server
}

func newEnv(t *testing.T) *env {
	t.Helper()
	sim := netsim.NewSim(11)
	client := netsim.NewHost(sim, "client", cliAddr)
	mta := netsim.NewHost(sim, "mta", mtaAddr)
	router := netsim.NewRouter(sim, "r", rtrAddr, 2)
	netsim.AttachHost(sim, client, router, 0, time.Millisecond)
	netsim.AttachHost(sim, mta, router, 1, time.Millisecond)
	router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	router.SetDefaultRoute(1)
	e := &env{sim: sim, cs: tcpsim.NewStack(client), ms: tcpsim.NewStack(mta), router: router}
	var err error
	e.srv, err = NewServer(e.ms)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testMsg() *smtpwire.Message {
	return &smtpwire.Message{
		From:    "promo@deals.biz",
		To:      "user@example.test",
		Subject: "WINNER! claim your lottery prize",
		Body:    "Click here: http://deals.biz/claim — 100% free, act now!",
	}
}

func TestFullDelivery(t *testing.T) {
	e := newEnv(t)
	var deliverErr error
	called := false
	SendMail(e.cs, mtaAddr, "client.test", testMsg(), func(err error) {
		called = true
		deliverErr = err
	})
	e.sim.Run()
	if !called {
		t.Fatal("done never called")
	}
	if deliverErr != nil {
		t.Fatalf("delivery err: %v", deliverErr)
	}
	if len(e.srv.Received) != 1 {
		t.Fatalf("received = %d", len(e.srv.Received))
	}
	env := e.srv.Received[0]
	if env.HELO != "client.test" || env.From != "promo@deals.biz" || env.To != "user@example.test" {
		t.Fatalf("envelope: %+v", env)
	}
	if !strings.Contains(env.Msg.Body, "100% free") || env.Msg.Subject != "WINNER! claim your lottery prize" {
		t.Fatalf("message: %+v", env.Msg)
	}
}

func TestOnMessageCallback(t *testing.T) {
	e := newEnv(t)
	var got Envelope
	e.srv.OnMessage = func(env Envelope) { got = env }
	SendMail(e.cs, mtaAddr, "h.test", testMsg(), func(error) {})
	e.sim.Run()
	if got.From != "promo@deals.biz" {
		t.Fatalf("callback envelope: %+v", got)
	}
}

func TestRcptRejection(t *testing.T) {
	e := newEnv(t)
	e.srv.RejectRcpt = func(addr string) bool { return strings.HasPrefix(addr, "noone@") }
	msg := testMsg()
	msg.To = "noone@example.test"
	var deliverErr error
	SendMail(e.cs, mtaAddr, "h.test", msg, func(err error) { deliverErr = err })
	e.sim.Run()
	if !errors.Is(deliverErr, ErrRejected) {
		t.Fatalf("err = %v, want rejection", deliverErr)
	}
	if len(e.srv.Received) != 0 {
		t.Fatal("rejected message stored")
	}
}

func TestConnectionRefusedPort(t *testing.T) {
	// Dial a host with no MTA: the OS RST maps to ErrAborted.
	sim := netsim.NewSim(1)
	client := netsim.NewHost(sim, "client", cliAddr)
	bare := netsim.NewHost(sim, "bare", mtaAddr)
	router := netsim.NewRouter(sim, "r", rtrAddr, 2)
	netsim.AttachHost(sim, client, router, 0, 0)
	netsim.AttachHost(sim, bare, router, 1, 0)
	router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	router.SetDefaultRoute(1)
	cs := tcpsim.NewStack(client)
	var deliverErr error
	SendMail(cs, mtaAddr, "h.test", testMsg(), func(err error) { deliverErr = err })
	sim.Run()
	if !errors.Is(deliverErr, ErrAborted) {
		t.Fatalf("err = %v, want aborted", deliverErr)
	}
}

func TestBlackholedMTAFails(t *testing.T) {
	e := newEnv(t)
	e.router.AddTap(netsim.TapFunc(func(tp *netsim.TapPacket, _ netsim.Injector) netsim.Verdict {
		if tp.Pkt != nil && tp.Pkt.IP.Dst == mtaAddr {
			return netsim.Drop
		}
		return netsim.Pass
	}))
	var deliverErr error
	SendMail(e.cs, mtaAddr, "h.test", testMsg(), func(err error) { deliverErr = err })
	e.sim.Run()
	if !errors.Is(deliverErr, ErrAborted) {
		t.Fatalf("err = %v, want aborted (blackhole)", deliverErr)
	}
}

func TestTwoSequentialDeliveries(t *testing.T) {
	e := newEnv(t)
	okCount := 0
	SendMail(e.cs, mtaAddr, "h.test", testMsg(), func(err error) {
		if err == nil {
			okCount++
		}
	})
	e.sim.Run()
	msg2 := testMsg()
	msg2.Subject = "second"
	SendMail(e.cs, mtaAddr, "h.test", msg2, func(err error) {
		if err == nil {
			okCount++
		}
	})
	e.sim.Run()
	if okCount != 2 || len(e.srv.Received) != 2 {
		t.Fatalf("ok=%d received=%d", okCount, len(e.srv.Received))
	}
	if e.srv.Received[1].Msg.Subject != "second" {
		t.Fatalf("second subject: %q", e.srv.Received[1].Msg.Subject)
	}
}

func TestDotStuffedBodySurvivesDelivery(t *testing.T) {
	e := newEnv(t)
	msg := testMsg()
	msg.Body = "line one\n.hidden dot line\nlast"
	SendMail(e.cs, mtaAddr, "h.test", msg, func(error) {})
	e.sim.Run()
	if len(e.srv.Received) != 1 {
		t.Fatal("not delivered")
	}
	if e.srv.Received[0].Msg.Body != msg.Body {
		t.Fatalf("body: %q", e.srv.Received[0].Msg.Body)
	}
}
