// Package mailsim implements SMTP delivery over the simulated TCP stack:
// an MTA server that accepts mail on port 25 and a client state machine
// that performs the full HELO/MAIL/RCPT/DATA/QUIT exchange.
//
// The paper's Method #2 (§3.1) rides on this: the measurement is an MX
// lookup, an A lookup, a TCP connection to port 25, and a spam message —
// indistinguishable from the zone-enumerating spam botnets that constantly
// deliver to every .com domain (including, inevitably, censored ones).
package mailsim

import (
	"errors"
	"fmt"
	"net/netip"

	"safemeasure/internal/smtpwire"
	"safemeasure/internal/tcpsim"
)

// SMTPPort is the standard MTA port.
const SMTPPort = 25

// Errors surfaced by the client.
var (
	ErrRejected = errors.New("mailsim: server rejected transaction")
	ErrAborted  = errors.New("mailsim: connection failed")
)

// Envelope is one accepted message with its SMTP envelope.
type Envelope struct {
	HELO string
	From string
	To   string
	Msg  *smtpwire.Message
}

// Server is a minimal MTA.
type Server struct {
	// Received collects accepted envelopes in arrival order.
	Received []Envelope
	// OnMessage, if set, fires for each accepted envelope.
	OnMessage func(Envelope)
	// RejectRcpt, if set, causes RCPT for matching addresses to 550.
	RejectRcpt func(addr string) bool
}

// session is per-connection server state.
type session struct {
	srv  *Server
	conn *tcpsim.Conn
	buf  []byte

	helo   string
	from   string
	rcpt   string
	inData bool
}

// NewServer starts an MTA on the stack's port 25.
func NewServer(stack *tcpsim.Stack) (*Server, error) {
	srv := &Server{}
	err := stack.Listen(SMTPPort, func(c *tcpsim.Conn) {
		s := &session{srv: srv, conn: c}
		c.OnData = s.onData
		s.reply(220, "mail.test ESMTP ready")
	})
	if err != nil {
		return nil, fmt.Errorf("mailsim: %w", err)
	}
	return srv, nil
}

func (s *session) reply(code int, text string) {
	s.conn.Send(smtpwire.Reply{Code: code, Text: text}.Marshal())
}

func (s *session) onData(_ *tcpsim.Conn, data []byte) {
	s.buf = append(s.buf, data...)
	for {
		if s.inData {
			msg, n, err := smtpwire.ParseMessage(s.buf)
			if err != nil {
				return // incomplete
			}
			s.buf = s.buf[n:]
			s.inData = false
			env := Envelope{HELO: s.helo, From: s.from, To: s.rcpt, Msg: msg}
			s.srv.Received = append(s.srv.Received, env)
			if s.srv.OnMessage != nil {
				s.srv.OnMessage(env)
			}
			s.reply(250, "OK: queued")
			continue
		}
		cmd, n, err := smtpwire.ParseCommand(s.buf)
		if err != nil {
			return // incomplete line
		}
		s.buf = s.buf[n:]
		s.handle(cmd)
	}
}

func (s *session) handle(cmd smtpwire.Command) {
	switch cmd.Verb {
	case "HELO", "EHLO":
		s.helo = cmd.Arg
		s.reply(250, "mail.test greets "+cmd.Arg)
	case "MAIL":
		addr, err := smtpwire.ExtractAddress(cmd.Arg)
		if err != nil {
			s.reply(501, "bad MAIL FROM")
			return
		}
		s.from = addr
		s.reply(250, "OK")
	case "RCPT":
		addr, err := smtpwire.ExtractAddress(cmd.Arg)
		if err != nil {
			s.reply(501, "bad RCPT TO")
			return
		}
		if s.srv.RejectRcpt != nil && s.srv.RejectRcpt(addr) {
			s.reply(550, "mailbox unavailable")
			return
		}
		s.rcpt = addr
		s.reply(250, "OK")
	case "DATA":
		if s.from == "" || s.rcpt == "" {
			s.reply(503, "need MAIL and RCPT first")
			return
		}
		s.inData = true
		s.reply(354, "end data with <CRLF>.<CRLF>")
	case "QUIT":
		s.reply(221, "bye")
		s.conn.Close()
	case "RSET":
		s.from, s.rcpt, s.inData = "", "", false
		s.reply(250, "OK")
	case "NOOP":
		s.reply(250, "OK")
	default:
		s.reply(502, "command not implemented")
	}
}

// clientPhase tracks the delivery state machine.
type clientPhase int

const (
	phaseGreeting clientPhase = iota
	phaseHelo
	phaseMail
	phaseRcpt
	phaseData
	phaseBody
	phaseQuit
	phaseDone
)

// SendMail delivers msg to the MTA at server:25 using the stack and calls
// done(nil) after the server accepts the message and QUIT completes, or
// done(err) on rejection, reset, or timeout. Returns the connection so
// callers can adjust it (e.g. TTL) before the handshake proceeds.
func SendMail(stack *tcpsim.Stack, server netip.Addr, helo string, msg *smtpwire.Message, done func(error)) *tcpsim.Conn {
	conn := stack.Dial(server, SMTPPort)
	var buf []byte
	phase := phaseGreeting
	finished := false
	finish := func(err error) {
		if !finished {
			finished = true
			done(err)
		}
	}

	conn.OnFail = func(_ *tcpsim.Conn, err error) {
		finish(fmt.Errorf("%w: %w", ErrAborted, err))
	}
	conn.OnClose = func(*tcpsim.Conn) {
		if phase != phaseDone {
			finish(fmt.Errorf("%w: closed mid-transaction", ErrAborted))
			return
		}
		finish(nil)
	}
	conn.OnData = func(c *tcpsim.Conn, data []byte) {
		buf = append(buf, data...)
		for {
			reply, n, err := smtpwire.ParseReply(buf)
			if err != nil {
				return // incomplete
			}
			buf = buf[n:]
			if reply.Code >= 400 {
				finish(fmt.Errorf("%w: %d %s", ErrRejected, reply.Code, reply.Text))
				c.Close()
				return
			}
			switch phase {
			case phaseGreeting: // 220
				c.Send(smtpwire.Command{Verb: "HELO", Arg: helo}.Marshal())
				phase = phaseHelo
			case phaseHelo: // 250
				c.Send(smtpwire.Command{Verb: "MAIL", Arg: "FROM:<" + msg.From + ">"}.Marshal())
				phase = phaseMail
			case phaseMail: // 250
				c.Send(smtpwire.Command{Verb: "RCPT", Arg: "TO:<" + msg.To + ">"}.Marshal())
				phase = phaseRcpt
			case phaseRcpt: // 250
				c.Send(smtpwire.Command{Verb: "DATA"}.Marshal())
				phase = phaseData
			case phaseData: // 354
				c.Send(msg.Marshal())
				phase = phaseBody
			case phaseBody: // 250 queued
				c.Send(smtpwire.Command{Verb: "QUIT"}.Marshal())
				phase = phaseQuit
			case phaseQuit: // 221
				phase = phaseDone
			}
		}
	}
	return conn
}
