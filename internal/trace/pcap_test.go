package trace

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

func sampleCapture(t *testing.T) *netsim.Capture {
	t.Helper()
	sim := netsim.NewSim(1)
	a := netsim.NewHost(sim, "a", netip.MustParseAddr("10.0.0.1"))
	b := netsim.NewHost(sim, "b", netip.MustParseAddr("10.0.0.2"))
	r := netsim.NewRouter(sim, "r", netip.MustParseAddr("10.0.0.254"), 2)
	netsim.AttachHost(sim, a, r, 0, time.Millisecond)
	netsim.AttachHost(sim, b, r, 1, time.Millisecond)
	r.AddRoute(netip.PrefixFrom(a.Addr, 32), 0)
	r.SetDefaultRoute(1)
	cap := netsim.NewCapture("test")
	r.AddTap(cap)
	b.BindUDP(9, func(*netsim.Host, netip.Addr, uint16, []byte) {})
	for i := 0; i < 5; i++ {
		a.SendUDP(uint16(1000+i), b.Addr, 9, []byte("payload"))
	}
	sim.Run()
	return cap
}

func TestPcapRoundTrip(t *testing.T) {
	cap := sampleCapture(t)
	var buf bytes.Buffer
	n, err := WritePcap(&buf, cap)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d, wrote %d", n, buf.Len())
	}
	recs, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cap.Count() {
		t.Fatalf("records = %d, want %d", len(recs), cap.Count())
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Raw, cap.Packets[i].Raw) {
			t.Fatalf("record %d bytes differ", i)
		}
		// Timestamps survive to microsecond precision.
		d := rec.Time - cap.Packets[i].Time
		if d < -1000 || d > 1000 {
			t.Fatalf("record %d time drift %dns", i, d)
		}
		// Every record is a parsable IPv4 datagram (LINKTYPE_RAW).
		if _, err := packet.Parse(rec.Raw); err != nil {
			t.Fatalf("record %d unparsable: %v", i, err)
		}
	}
}

func TestPcapHeaderFields(t *testing.T) {
	cap := sampleCapture(t)
	var buf bytes.Buffer
	if _, err := WritePcap(&buf, cap); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:24]
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Fatalf("magic bytes: % x", hdr[:4])
	}
	if hdr[20] != 101 { // LINKTYPE_RAW little-endian
		t.Fatalf("linktype byte: %d", hdr[20])
	}
}

func TestReadPcapErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file accepted")
	}
	bad := make([]byte, 24) // zero magic
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, truncated record.
	cap := sampleCapture(t)
	var buf bytes.Buffer
	WritePcap(&buf, cap)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadPcap(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WritePcap(&buf, netsim.NewCapture("empty")); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("records = %d", len(recs))
	}
}
