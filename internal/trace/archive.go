package trace

import (
	"safemeasure/internal/archival"
	"safemeasure/internal/netsim"
)

// Observations flattens a netsim capture into flat archival packet rows —
// the pcap layer's entry into the unified observation format. Each captured
// datagram becomes one TypePacket row: Seq preserves capture order, T the
// virtual timestamp, Src/Dst the IPv4 addresses when the datagram parsed,
// Name the transport protocol, and Count the raw datagram length. The cell
// identity stamps every row so packet-level evidence joins records and
// traces from the same run.
func Observations(c *netsim.Capture, technique, scenario, impairment, behavior string, trial int, seed int64) []archival.Observation {
	if c == nil {
		return nil
	}
	run := archival.RunID(technique, scenario, impairment, behavior, trial, seed)
	obs := make([]archival.Observation, 0, len(c.Packets))
	for i, tp := range c.Packets {
		o := archival.Observation{
			Run:        run,
			Type:       archival.TypePacket,
			Technique:  technique,
			Scenario:   scenario,
			Impairment: impairment,
			Behavior:   behavior,
			Trial:      trial,
			Seed:       seed,
			Seq:        i,
			T:          tp.Time,
			Count:      int64(len(tp.Raw)),
		}
		if tp.Pkt != nil && tp.Pkt.IP != nil {
			o.Src = tp.Pkt.IP.Src.String()
			o.Dst = tp.Pkt.IP.Dst.String()
			o.Name = tp.Pkt.IP.Protocol.String()
		}
		o.SetID()
		obs = append(obs, o)
	}
	return obs
}

// WriteObservations flattens a capture and appends it to an archival writer
// as one contiguous batch.
func WriteObservations(w archival.Writer, c *netsim.Capture, technique, scenario, impairment, behavior string, trial int, seed int64) int {
	obs := Observations(c, technique, scenario, impairment, behavior, trial, seed)
	w.WriteObservations(obs)
	return len(obs)
}
