// Package trace writes netsim captures as standard pcap files (the classic
// libpcap format, readable by tcpdump/Wireshark) using LINKTYPE_RAW (101):
// each record is a bare IPv4 datagram, exactly what the simulated links
// carry. Virtual timestamps map to seconds/microseconds since epoch 0.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"safemeasure/internal/netsim"
)

const (
	pcapMagic     = 0xa1b2c3d4
	linktypeRaw   = 101
	maxSnapLen    = 65535
	recordHdrSize = 16
)

// ErrBadPcap reports a malformed file to the reader.
var ErrBadPcap = errors.New("trace: malformed pcap")

// WritePcap serializes a capture. Returns bytes written.
func WritePcap(w io.Writer, c *netsim.Capture) (int64, error) {
	var n int64
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	c2, err := w.Write(hdr)
	n += int64(c2)
	if err != nil {
		return n, err
	}
	rec := make([]byte, recordHdrSize)
	for _, tp := range c.Packets {
		sec := uint32(tp.Time / 1e9)
		usec := uint32(tp.Time % 1e9 / 1e3)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], usec)
		capLen := len(tp.Raw)
		if capLen > maxSnapLen {
			capLen = maxSnapLen
		}
		binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(tp.Raw)))
		c2, err = w.Write(rec)
		n += int64(c2)
		if err != nil {
			return n, err
		}
		c2, err = w.Write(tp.Raw[:capLen])
		n += int64(c2)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Record is one packet read back from a pcap file.
type Record struct {
	Time int64 // virtual nanoseconds
	Raw  []byte
}

// ReadPcap parses a file written by WritePcap (little-endian, raw-IP).
func ReadPcap(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadPcap, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPcap)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linktypeRaw {
		return nil, fmt.Errorf("%w: unexpected linktype %d", ErrBadPcap, lt)
	}
	var out []Record
	rec := make([]byte, recordHdrSize)
	for {
		_, err := io.ReadFull(r, rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		capLen := binary.LittleEndian.Uint32(rec[8:12])
		if capLen > maxSnapLen {
			return nil, fmt.Errorf("%w: caplen %d", ErrBadPcap, capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadPcap, err)
		}
		out = append(out, Record{
			Time: int64(sec)*1e9 + int64(usec)*1e3,
			Raw:  data,
		})
	}
}
