package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/censor"
	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/stats"
)

// E1Row is one validation case of the reference systems.
type E1Row struct {
	Mechanism string // ground-truth censorship mechanism
	Probe     string
	Target    string
	Verdict   core.Verdict
	// DetectedMechanism is what the probe inferred.
	DetectedMechanism string
	// CensorActed: the censor's event log shows it fired.
	CensorActed bool
	// Correct: the probe's verdict matches ground truth.
	Correct bool
}

// E1Result validates Figure 1's reference environment: every censorship
// mechanism is (a) actually enforced by the censor and (b) detected by the
// corresponding overt probe, and innocuous traffic is untouched.
type E1Result struct {
	Rows []E1Row
	// InnocuousOK: a control fetch and lookup pass cleanly with no censor
	// events.
	InnocuousOK bool
	// AllCorrect summarizes the validation.
	AllCorrect bool
}

// E1ReferenceSystems runs the §3.2.1 validation.
func E1ReferenceSystems(seed int64) (*E1Result, error) {
	out := &E1Result{}

	type tc struct {
		mechanism string
		censorCfg func() censor.Config
		probe     core.Technique
		target    core.Target
		want      core.Verdict
	}
	cases := []tc{
		{
			mechanism: "keyword-rst (GFC)",
			censorCfg: lab.DefaultCensorConfig,
			probe:     &core.OvertHTTP{},
			target:    core.Target{Domain: "site01.test", Path: "/falun"},
			want:      core.VerdictCensored,
		},
		{
			mechanism: "dns-poison",
			censorCfg: lab.DefaultCensorConfig,
			probe:     &core.OvertDNS{},
			target:    core.Target{Domain: "twitter.com"},
			want:      core.VerdictCensored,
		},
		{
			mechanism: "host-block",
			censorCfg: lab.DefaultCensorConfig,
			probe:     &core.OvertHTTP{},
			target:    core.Target{Domain: "banned.test"},
			want:      core.VerdictCensored,
		},
		{
			mechanism: "ip-blackhole",
			censorCfg: func() censor.Config {
				c := lab.DefaultCensorConfig()
				c.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
				return c
			},
			probe:  &core.OvertTCP{},
			target: core.Target{Addr: lab.SensitiveAddr, Port: 80},
			want:   core.VerdictCensored,
		},
		{
			mechanism: "port-block",
			censorCfg: func() censor.Config {
				c := lab.DefaultCensorConfig()
				c.BlockedPorts = []uint16{443}
				return c
			},
			probe:  &core.OvertTCP{},
			target: core.Target{Addr: lab.WebAddr, Port: 443},
			want:   core.VerdictCensored,
		},
	}

	out.AllCorrect = true
	for i, c := range cases {
		res, _, l, err := runProbe(lab.Config{Censor: c.censorCfg(), Seed: seed + int64(i)}, c.probe, c.target, 0)
		if err != nil {
			return nil, err
		}
		row := E1Row{
			Mechanism:         c.mechanism,
			Probe:             c.probe.Name(),
			Target:            c.target.String(),
			Verdict:           res.Verdict,
			DetectedMechanism: res.Mechanism,
			CensorActed:       len(l.Censor.Events) > 0 || l.Censor.Dropped > 0,
			Correct:           res.Verdict == c.want,
		}
		out.AllCorrect = out.AllCorrect && row.Correct && row.CensorActed
		out.Rows = append(out.Rows, row)
	}

	// Control: innocuous traffic must pass and leave no censor events.
	res, _, l, err := runProbe(lab.Config{Seed: seed + 100}, &core.OvertHTTP{}, core.Target{Domain: "site02.test"}, 2*time.Second)
	if err != nil {
		return nil, err
	}
	out.InnocuousOK = res.Verdict == core.VerdictAccessible && censorEventsTouching(l, lab.ClientAddr) == 0
	out.AllCorrect = out.AllCorrect && out.InnocuousOK
	return out, nil
}

// censorEventsTouching counts censor events involving addr (population
// traffic may legitimately trigger the censor during the control run).
func censorEventsTouching(l *lab.Lab, addr netip.Addr) int {
	n := 0
	for _, ev := range l.Censor.Events {
		if ev.Flow.Src == addr || ev.Flow.Dst == addr {
			n++
		}
	}
	return n
}

// Render prints the validation table.
func (r *E1Result) Render() string {
	var b strings.Builder
	b.WriteString("E1 — reference censor/surveillance validation (Fig 1, §3.2.1)\n\n")
	t := stats.NewTable("mechanism", "probe", "target", "verdict", "detected-as", "censor-acted", "correct")
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, row.Probe, row.Target, row.Verdict.String(), row.DetectedMechanism,
			boolMark(row.CensorActed), boolMark(row.Correct))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ninnocuous control untouched: %s\nall correct: %s\n",
		boolMark(r.InnocuousOK), boolMark(r.AllCorrect))
	return b.String()
}
