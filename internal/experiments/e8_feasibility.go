package experiments

import (
	"fmt"
	"strings"

	"safemeasure/internal/spoof"
	"safemeasure/internal/stats"
)

// E8Result reproduces the §4.2 feasibility numbers from Beverly et al.:
// what fraction of clients can spoof, and how large their cover sets are.
type E8Result struct {
	Samples int
	// Measured fractions.
	FracSpoof24 float64 // paper: 0.77
	FracSpoof16 float64 // paper: 0.11
	// Cover set sizes per policy.
	CoverStrict  int
	CoverSlash24 int
	CoverSlash16 int
}

// E8SpoofFeasibility draws n clients (0 means 100k) from the Beverly model.
func E8SpoofFeasibility(seed int64, n int) (*E8Result, error) {
	if n <= 0 {
		n = 100000
	}
	m, err := spoof.NewModel(spoof.Beverly(), seed)
	if err != nil {
		return nil, err
	}
	counts := map[spoof.Policy]int{}
	for i := 0; i < n; i++ {
		counts[m.DrawPolicy()]++
	}
	return &E8Result{
		Samples:      n,
		FracSpoof24:  float64(counts[spoof.PolicySlash24]+counts[spoof.PolicySlash16]) / float64(n),
		FracSpoof16:  float64(counts[spoof.PolicySlash16]) / float64(n),
		CoverStrict:  spoof.CoverSetSize(spoof.PolicyStrict),
		CoverSlash24: spoof.CoverSetSize(spoof.PolicySlash24),
		CoverSlash16: spoof.CoverSetSize(spoof.PolicySlash16),
	}, nil
}

// Render prints the feasibility table.
func (r *E8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8 — spoofing feasibility, %d simulated clients (§4.2, Beverly et al.)\n\n", r.Samples)
	t := stats.NewTable("scope", "fraction able to spoof", "paper", "cover-set size")
	t.AddRow("within own /24", fmt.Sprintf("%.3f", r.FracSpoof24), "0.77", r.CoverSlash24)
	t.AddRow("within own /16", fmt.Sprintf("%.3f", r.FracSpoof16), "0.11", r.CoverSlash16)
	t.AddRow("none (strict SAV)", fmt.Sprintf("%.3f", 1-r.FracSpoof24), "0.23", r.CoverStrict)
	b.WriteString(t.String())
	b.WriteString("\none DNS measurement from every IP in a /16 is ~65k queries (the §6 load estimate)\n")
	return b.String()
}
