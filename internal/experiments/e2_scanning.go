package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/stats"
	"safemeasure/internal/surveil"
)

// E2Result evaluates Method #1 (scanning) for accuracy and evasion
// (§3.2.2), against the overt TCP baseline under the same censorship.
type E2Result struct {
	// Scan side.
	ScanVerdict   core.Verdict
	ScanCorrect   bool
	ScanProbes    int
	ScanRisk      core.RiskReport
	ScanDiscarded int // scan-class packets the MVR threw away

	// Baseline side.
	OvertVerdict core.Verdict
	OvertCorrect bool
	OvertRisk    core.RiskReport

	// Durumeric context: fraction of the client's packets that reached
	// stage 2 (the alert engine) at all.
	ScanSurvivingFraction float64
	// BackgroundScans is the ambient Internet-scanner noise the probe
	// blends into during the run.
	BackgroundScans int
}

// E2Scanning runs the scanning evaluation: the sensitive server is
// blackholed (ground truth: censored); the scan must detect it while its
// traffic is discarded by the MVR, and the overt baseline must detect it
// while getting the user noticed.
func E2Scanning(seed int64, ports int) (*E2Result, error) {
	if ports <= 0 {
		ports = 1000
	}
	censored := lab.DefaultCensorConfig()
	censored.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}

	out := &E2Result{}

	res, risk, l, err := runProbe(lab.Config{Censor: censored, Seed: seed, BackgroundScanRate: 40},
		&core.SYNScan{Ports: ports}, core.Target{Domain: "banned.test"}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	out.ScanVerdict = res.Verdict
	out.ScanCorrect = res.Verdict == core.VerdictCensored
	out.ScanProbes = res.ProbesSent
	out.ScanRisk = risk
	out.ScanDiscarded = l.Surveil.DiscardedByClass[surveil.ClassScan]
	if l.Surveil.PacketsSeen > 0 {
		out.ScanSurvivingFraction = 1 - l.Surveil.DiscardFraction()
	}
	out.BackgroundScans = l.Pop.ScanProbes

	overtRes, overtRisk, _, err := runProbe(lab.Config{Censor: censored, Seed: seed + 1},
		&core.OvertTCP{}, core.Target{Addr: lab.SensitiveAddr, Port: 80}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	out.OvertVerdict = overtRes.Verdict
	out.OvertCorrect = overtRes.Verdict == core.VerdictCensored
	out.OvertRisk = overtRisk
	return out, nil
}

// Render prints the accuracy/evasion table.
func (r *E2Result) Render() string {
	var b strings.Builder
	b.WriteString("E2 — scanning measurements: accuracy and evasion (§3.2.2)\n\n")
	t := stats.NewTable("technique", "verdict", "correct", "probes", "analyst-score", "flagged")
	t.AddRow("syn-scan (Method #1)", r.ScanVerdict.String(), boolMark(r.ScanCorrect),
		r.ScanProbes, r.ScanRisk.Score, boolMark(r.ScanRisk.Flagged))
	t.AddRow("overt-tcp (baseline)", r.OvertVerdict.String(), boolMark(r.OvertCorrect),
		1, r.OvertRisk.Score, boolMark(r.OvertRisk.Flagged))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nMVR discarded %d scan-class packets; %.1f%% of all border traffic survived to stage 2\n",
		r.ScanDiscarded, 100*r.ScanSurvivingFraction)
	fmt.Fprintf(&b, "ambient background scanner probes during the run: %d\n", r.BackgroundScans)
	b.WriteString("(Durumeric et al.: 10.8M scans / 1.76M hosts hit a 5.5M-IP darknet in one month —\n scanning is background noise an MVR cannot afford to keep)\n")
	return b.String()
}
