package experiments

import (
	"fmt"
	"strings"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/spoof"
	"safemeasure/internal/stats"
)

// E6Row is one point of the cover-size sweep.
type E6Row struct {
	Covers          int
	Verdict         core.Verdict
	Correct         bool
	ImplicatedUsers int
	// AttributionEntropy is the Shannon entropy (bits) of the analyst's
	// per-user alert distribution: 0 bits pins the measurer exactly;
	// log2(K+1) bits means K covers are indistinguishable from the real
	// probe.
	AttributionEntropy float64
	ClientFlagged      bool
	SAVDropped         int
}

// E6Result sweeps the stateless-mimicry cover count (Figure 3a): more
// spoofed cover queries implicate more "users", and past the analyst's
// actionable-set limit nobody can be flagged — including the real measurer.
type E6Result struct {
	Policy spoof.Policy
	Rows   []E6Row
	// CrossoverCovers is the smallest cover count that kept the client
	// unflagged (-1 if none did).
	CrossoverCovers int
}

// E6StatelessSpoof runs the sweep under the given SAV policy.
func E6StatelessSpoof(seed int64, policy spoof.Policy) (*E6Result, error) {
	out := &E6Result{Policy: policy, CrossoverCovers: -1}
	for i, covers := range []int{0, 2, 4, 8, 16} {
		tech := &core.SpoofedDNS{Covers: covers}
		if covers == 0 {
			tech.Covers = -1 // bare probe, no cover
		}
		res, risk, l, err := runProbe(lab.Config{SpoofPolicy: policy, Seed: seed + int64(i)},
			tech, core.Target{Domain: "twitter.com"}, 0)
		if err != nil {
			return nil, err
		}
		var counts []int
		for _, n := range l.Surveil.Analyst().AlertCountsByUser() {
			counts = append(counts, n)
		}
		row := E6Row{
			Covers:             covers,
			Verdict:            res.Verdict,
			Correct:            res.Verdict == core.VerdictCensored && res.Mechanism == core.MechPoison,
			ImplicatedUsers:    risk.ImplicatedUsers,
			AttributionEntropy: stats.Entropy(counts),
			ClientFlagged:      risk.Flagged,
			SAVDropped:         l.SAV.Dropped,
		}
		if !row.ClientFlagged && out.CrossoverCovers == -1 && row.Correct {
			out.CrossoverCovers = covers
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the sweep.
func (r *E6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 — stateless spoofed-cover DNS measurement (Fig 3a), SAV policy %v\n\n", r.Policy)
	t := stats.NewTable("covers", "verdict", "correct", "implicated-users", "attribution-bits", "client-flagged", "sav-dropped")
	for _, row := range r.Rows {
		t.AddRow(row.Covers, row.Verdict.String(), boolMark(row.Correct),
			row.ImplicatedUsers, fmt.Sprintf("%.2f", row.AttributionEntropy),
			boolMark(row.ClientFlagged), row.SAVDropped)
	}
	b.WriteString(t.String())
	if r.CrossoverCovers >= 0 {
		fmt.Fprintf(&b, "\nsmallest cover set that kept the measurer unflagged: %d\n", r.CrossoverCovers)
	} else {
		b.WriteString("\nno cover size kept the measurer unflagged under this policy\n")
	}
	return b.String()
}
