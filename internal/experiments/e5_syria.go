package experiments

import (
	"fmt"
	"sort"
	"strings"

	"safemeasure/internal/censorlogs"
	"safemeasure/internal/stats"
)

// E5Result is the Syrian-log analysis of §2.2: the fraction of users who
// touch censored content at all is far too large for alarm-on-every-
// censored-query surveillance to be actionable.
type E5Result struct {
	Report censorlogs.Report
	// TargetFraction is the published statistic (1.57 %).
	TargetFraction float64
	// WithinTolerance: the synthetic logs land near the published number.
	WithinTolerance bool
	// AnalystBudget: a plausible daily investigation capacity, used to
	// show the gap.
	AnalystBudget int
}

// E5SyriaLogs generates two days of device logs at the given population
// scale (0 means the paper's 21,000-user campus) and analyzes them.
func E5SyriaLogs(seed int64, users int) (*E5Result, error) {
	cfg := censorlogs.DefaultConfig()
	cfg.Seed = seed
	if users > 0 {
		cfg.Users = users
	}
	entries := censorlogs.Generate(cfg)
	rep := censorlogs.Analyze(entries)
	out := &E5Result{
		Report:         rep,
		TargetFraction: 0.0157,
		AnalystBudget:  10,
	}
	diff := rep.UserDenialFraction - out.TargetFraction
	if diff < 0 {
		diff = -diff
	}
	out.WithinTolerance = diff <= 0.005
	return out, nil
}

// Render prints the log-analysis summary.
func (r *E5Result) Render() string {
	var b strings.Builder
	b.WriteString("E5 — Syrian censorship-log analysis (§2.2)\n\n")
	t := stats.NewTable("metric", "value")
	t.AddRow("users", r.Report.Users)
	t.AddRow("requests (2 days)", r.Report.TotalRequests)
	t.AddRow("denied requests", r.Report.TotalDenied)
	t.AddRow("users with >=1 denial", r.Report.UsersWithDenial)
	t.AddRow("user denial fraction", fmt.Sprintf("%.4f (paper: %.4f)", r.Report.UserDenialFraction, r.TargetFraction))
	t.AddRow("within tolerance", boolMark(r.WithinTolerance))
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\nalarm-on-every-censored-query would implicate %d users;\n", r.Report.UsersWithDenial)
	fmt.Fprintf(&b, "an analyst pursuing ~%d/day would need %d days — not actionable\n",
		r.AnalystBudget, (r.Report.UsersWithDenial+r.AnalystBudget-1)/max(r.AnalystBudget, 1))

	var cats []string
	for c := range r.Report.DeniedByCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	b.WriteString("\ndenials by category:\n")
	for _, c := range cats {
		fmt.Fprintf(&b, "  %-18s %d\n", c, r.Report.DeniedByCategory[c])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
