package experiments

import (
	"fmt"
	"strings"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/stats"
	"safemeasure/internal/surveil"
)

// E4Result evaluates Method #3 (DDoS mimicry): per-request sampling of the
// censorship mechanism plus MVR evasion.
type E4Result struct {
	Requests int

	CensoredVerdict core.Verdict
	CensoredOK      bool
	CensoredRisk    core.RiskReport
	// Evidence line carrying the per-sample breakdown (ok/reset/timeout).
	CensoredSamples string

	OpenVerdict core.Verdict
	OpenOK      bool
	OpenRisk    core.RiskReport

	// DDoSDiscarded: flood-class packets the MVR dropped.
	DDoSDiscarded int
}

// E4DDoS runs the flood-mimicry measurement against a keyword-censored
// path and an open control path.
func E4DDoS(seed int64, requests int) (*E4Result, error) {
	if requests <= 0 {
		requests = 40
	}
	out := &E4Result{Requests: requests}

	res, risk, l, err := runProbe(lab.Config{Seed: seed},
		&core.DDoS{Requests: requests}, core.Target{Domain: "site01.test", Path: "/falun"}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	out.CensoredVerdict = res.Verdict
	out.CensoredOK = res.Verdict == core.VerdictCensored && res.Mechanism == core.MechRST
	out.CensoredRisk = risk
	if len(res.Evidence) > 0 {
		out.CensoredSamples = res.Evidence[0]
	}
	out.DDoSDiscarded = l.Surveil.DiscardedByClass[surveil.ClassDDoS]

	res2, risk2, _, err := runProbe(lab.Config{Seed: seed + 1},
		&core.DDoS{Requests: requests}, core.Target{Domain: "site01.test"}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	out.OpenVerdict = res2.Verdict
	out.OpenOK = res2.Verdict == core.VerdictAccessible
	out.OpenRisk = risk2
	return out, nil
}

// Render prints the sampling table.
func (r *E4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 — DDoS-mimicry measurements, %d requests (§3.1 Method #3)\n\n", r.Requests)
	t := stats.NewTable("target", "verdict", "correct", "analyst-score", "flagged")
	t.AddRow("keyword path (/falun)", r.CensoredVerdict.String(), boolMark(r.CensoredOK),
		r.CensoredRisk.Score, boolMark(r.CensoredRisk.Flagged))
	t.AddRow("open path (/)", r.OpenVerdict.String(), boolMark(r.OpenOK),
		r.OpenRisk.Score, boolMark(r.OpenRisk.Flagged))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nper-request %s\n", r.CensoredSamples)
	fmt.Fprintf(&b, "MVR discarded %d flood-class packets\n", r.DDoSDiscarded)
	return b.String()
}
