package experiments

import (
	"strings"
	"testing"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/spoof"
)

func TestE1AllMechanismsValidated(t *testing.T) {
	r, err := E1ReferenceSystems(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllCorrect {
		t.Fatalf("reference validation failed:\n%s", r.Render())
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.Render(), "keyword-rst") {
		t.Fatal("render missing mechanisms")
	}
}

func TestE2ScanAccurateAndEvading(t *testing.T) {
	r, err := E2Scanning(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ScanCorrect {
		t.Fatalf("scan missed censorship:\n%s", r.Render())
	}
	if r.ScanRisk.Flagged {
		t.Fatalf("scan flagged the measurer:\n%s", r.Render())
	}
	if !r.OvertCorrect || !r.OvertRisk.Flagged {
		t.Fatalf("baseline shape wrong:\n%s", r.Render())
	}
	if r.ScanDiscarded == 0 {
		t.Fatal("MVR discarded no scan traffic")
	}
	if r.ScanRisk.Score >= r.OvertRisk.Score {
		t.Fatalf("scan score %.2f >= overt %.2f", r.ScanRisk.Score, r.OvertRisk.Score)
	}
}

func TestE3Figure2Shape(t *testing.T) {
	r, err := E3SpamCDF(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's shape: the overwhelming majority of measurements score in
	// the spam region.
	if r.FractionSpam < 0.95 {
		t.Fatalf("only %.2f of measurements classified as spam:\n%s", r.FractionSpam, r.Render())
	}
	if r.CDF.N() != 100 {
		t.Fatalf("n = %d", r.CDF.N())
	}
	// Ham contrast: ordinary mail stays below the threshold.
	if r.HamCDF.At(r.Threshold-1) < 0.99 {
		t.Fatalf("ham leaked into spam region:\n%s", r.Render())
	}
	if !r.TwitterPoisoned || !r.YoutubePoisoned {
		t.Fatalf("GFC validation failed:\n%s", r.Render())
	}
	if !r.Delivered {
		t.Fatal("spam delivery to uncensored domain failed")
	}
}

func TestE4DDoSSamples(t *testing.T) {
	r, err := E4DDoS(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CensoredOK || !r.OpenOK {
		t.Fatalf("verdicts wrong:\n%s", r.Render())
	}
	if r.CensoredRisk.Flagged || r.OpenRisk.Flagged {
		t.Fatalf("flood measurer flagged:\n%s", r.Render())
	}
	if r.DDoSDiscarded == 0 {
		t.Fatal("MVR discarded no flood traffic")
	}
}

func TestE5SyriaFraction(t *testing.T) {
	r, err := E5SyriaLogs(5, 21000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.WithinTolerance {
		t.Fatalf("fraction %.4f not near 0.0157", r.Report.UserDenialFraction)
	}
	if r.Report.UsersWithDenial <= r.AnalystBudget {
		t.Fatalf("implicated users %d not >> analyst budget", r.Report.UsersWithDenial)
	}
}

func TestE6CoverSweepShape(t *testing.T) {
	r, err := E6StatelessSpoof(6, spoof.PolicySlash24)
	if err != nil {
		t.Fatal(err)
	}
	// Every cover size still detects the poisoning.
	for _, row := range r.Rows {
		if !row.Correct {
			t.Fatalf("covers=%d verdict wrong:\n%s", row.Covers, r.Render())
		}
	}
	// With no cover the client is flagged; with enough cover it is not.
	if !r.Rows[0].ClientFlagged {
		t.Fatalf("bare probe unflagged:\n%s", r.Render())
	}
	last := r.Rows[len(r.Rows)-1]
	if last.ClientFlagged {
		t.Fatalf("16 covers still flagged:\n%s", r.Render())
	}
	if r.CrossoverCovers <= 0 {
		t.Fatalf("no crossover found:\n%s", r.Render())
	}
	// Implicated users grow with cover size.
	if last.ImplicatedUsers <= r.Rows[0].ImplicatedUsers {
		t.Fatalf("attribution confusion absent:\n%s", r.Render())
	}
}

func TestE6StrictPolicyNeverEvades(t *testing.T) {
	r, err := E6StatelessSpoof(7, spoof.PolicyStrict)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !row.ClientFlagged {
			t.Fatalf("strict SAV but unflagged at covers=%d:\n%s", row.Covers, r.Render())
		}
	}
}

func TestE7StatefulShape(t *testing.T) {
	r, err := E7StatefulSpoof(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// TTL-limited rows (manual and AutoTTL-calibrated): correct verdicts,
	// replies seen at the tap, nothing reaches the cover hosts, measurer
	// unflagged.
	for _, row := range []E7Row{r.Rows[0], r.Rows[1], r.Rows[3]} {
		if !row.Correct {
			t.Fatalf("%s verdict wrong:\n%s", row.Case, r.Render())
		}
		if !row.TapSawReplies {
			t.Fatalf("%s: tap saw no replies:\n%s", row.Case, r.Render())
		}
		if row.CoverReceived != 0 {
			t.Fatalf("%s: %d packets leaked to covers:\n%s", row.Case, row.CoverReceived, r.Render())
		}
		if row.ClientFlagged {
			t.Fatalf("%s: measurer flagged:\n%s", row.Case, r.Render())
		}
	}
	// The ablation must fail: full-TTL replies reach covers and corrupt
	// the verdict.
	abl := r.Rows[2]
	if abl.Correct {
		t.Fatalf("ablation unexpectedly correct:\n%s", r.Render())
	}
	if abl.CoverReceived == 0 {
		t.Fatalf("ablation: no packets reached covers:\n%s", r.Render())
	}
}

func TestE8BeverlyFractions(t *testing.T) {
	r, err := E8SpoofFeasibility(9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.FracSpoof24 < 0.75 || r.FracSpoof24 > 0.79 {
		t.Fatalf("/24 fraction %.3f", r.FracSpoof24)
	}
	if r.FracSpoof16 < 0.10 || r.FracSpoof16 > 0.12 {
		t.Fatalf("/16 fraction %.3f", r.FracSpoof16)
	}
	if r.CoverSlash16 != 65536 {
		t.Fatalf("/16 cover set %d", r.CoverSlash16)
	}
}

func TestE9MVRModel(t *testing.T) {
	r, err := E9MVR(10, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.RetentionFrac > 0.076 {
		t.Fatalf("retention %.4f over budget", r.RetentionFrac)
	}
	if r.DiscardFraction <= 0 {
		t.Fatalf("nothing discarded:\n%s", r.Render())
	}
	if r.ContentAfter3d != 0 {
		t.Fatalf("content survived past retention: %d", r.ContentAfter3d)
	}
	if r.MetadataAfter30d != 0 {
		t.Fatalf("metadata survived past retention: %d", r.MetadataAfter30d)
	}
	if r.ContentNow == 0 || r.MetadataNow == 0 {
		t.Fatalf("stores empty during run:\n%s", r.Render())
	}
}

func TestE10EthicsLoad(t *testing.T) {
	r, err := E10EthicsLoad(11)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueriesPerSlash16 != 65536 {
		t.Fatalf("queries per /16 = %d", r.QueriesPerSlash16)
	}
	if r.MeasurementAlerts < r.BaselineAlerts {
		t.Fatalf("alerts decreased with measurement: %d < %d", r.MeasurementAlerts, r.BaselineAlerts)
	}
	// Far below the open-resolver footprint.
	if r.QueriesPerSlash16*100 > r.OpenResolverBaseline {
		t.Fatal("load comparison broken")
	}
}

func TestE11MatrixShape(t *testing.T) {
	r, err := E11TechniqueMatrix(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's claim, quantified: stealth accuracy comparable to overt,
	// stealth flag rate strictly lower.
	if r.OvertAccuracy != 1.0 {
		t.Fatalf("overt accuracy %.2f:\n%s", r.OvertAccuracy, r.Render())
	}
	if r.StealthAccuracy < 1.0 {
		t.Fatalf("stealth accuracy %.2f:\n%s", r.StealthAccuracy, r.Render())
	}
	if r.OvertFlagRate < 0.99 {
		t.Fatalf("overt flag rate %.2f (baselines should be caught):\n%s", r.OvertFlagRate, r.Render())
	}
	if r.StealthFlagRate > 0.0 {
		t.Fatalf("stealth flag rate %.2f:\n%s", r.StealthFlagRate, r.Render())
	}
}

func TestRendersNonEmpty(t *testing.T) {
	// Smoke-test every Render path at small scale.
	e1, _ := E1ReferenceSystems(20)
	e2, _ := E2Scanning(20, 50)
	e3, _ := E3SpamCDF(21, 20)
	e4, _ := E4DDoS(21, 20)
	e5, _ := E5SyriaLogs(22, 2000)
	e6, _ := E6StatelessSpoof(22, spoof.PolicySlash24)
	e7, _ := E7StatefulSpoof(23)
	e8, _ := E8SpoofFeasibility(23, 5000)
	e9, _ := E9MVR(24, 5*time.Second)
	e10, _ := E10EthicsLoad(24)
	e11, _ := E11TechniqueMatrix(25)
	e12, _ := E12Ablations(25)
	for name, s := range map[string]string{
		"e1": e1.Render(), "e2": e2.Render(), "e3": e3.Render(), "e4": e4.Render(),
		"e5": e5.Render(), "e6": e6.Render(), "e7": e7.Render(), "e8": e8.Render(),
		"e9": e9.Render(), "e10": e10.Render(), "e11": e11.Render(), "e12": e12.Render(),
	} {
		if len(s) < 100 {
			t.Errorf("%s render too short:\n%s", name, s)
		}
	}
	_ = core.VerdictAccessible
}

func TestE12Ablations(t *testing.T) {
	r, err := E12Ablations(13)
	if err != nil {
		t.Fatal(err)
	}
	// A: with discard on, none of the mimicry techniques is flagged.
	for _, row := range r.DiscardOn {
		if !row.Correct {
			t.Fatalf("%s verdict wrong with discard on:\n%s", row.Technique, r.Render())
		}
		if row.Flagged {
			t.Fatalf("%s flagged with discard on:\n%s", row.Technique, r.Render())
		}
	}
	// With discard off, scanning and flooding lose their cover (higher
	// scores; at least one flagged), while spam stays spam-class.
	flaggedOff := 0
	for i, row := range r.DiscardOff {
		if row.Score < r.DiscardOn[i].Score {
			t.Fatalf("%s score dropped with discard off:\n%s", row.Technique, r.Render())
		}
		if row.Flagged {
			flaggedOff++
		}
	}
	if flaggedOff == 0 {
		t.Fatalf("no technique flagged with discard off:\n%s", r.Render())
	}
	// B and C shapes.
	if !r.FragCaughtWithReassembly || !r.FragMissedWithoutReassembly {
		t.Fatalf("fragmentation ablation:\n%s", r.Render())
	}
	if !r.NoResidualClean || !r.ResidualContaminates {
		t.Fatalf("residual ablation:\n%s", r.Render())
	}
}
