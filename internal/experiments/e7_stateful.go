package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
	"safemeasure/internal/spoof"
	"safemeasure/internal/stats"
)

// E7Row is one stateful-mimicry run.
type E7Row struct {
	Case          string
	ReplyTTL      uint8
	Verdict       core.Verdict
	Correct       bool
	TapSawReplies bool // surveillance observed server replies (cover works)
	// CoverReceived counts measurement-server packets that reached the
	// spoofed population hosts. Censor-injected RSTs do reach covers
	// (as on real networks) and are deliberately excluded: the Fig 3b
	// property is about the server's TTL-limited replies.
	CoverReceived int
	ClientFlagged bool
}

// E7Result evaluates the Figure 3b technique, including the RST-replay
// ablation: with full-TTL replies, the spoofed clients' kernels reset the
// server's connections and the measurement collapses.
type E7Result struct {
	Rows []E7Row
}

// E7StatefulSpoof runs censored/uncensored targets with TTL-limited
// replies, then the ablation without TTL limiting.
func E7StatefulSpoof(seed int64) (*E7Result, error) {
	out := &E7Result{}

	type tc struct {
		name    string
		ttl     uint8
		autoTTL bool
		path    string
		want    core.Verdict
		correct func(r *core.Result) bool
	}
	cases := []tc{
		{"keyword-censored, TTL-limited", 2, false, "/falun", core.VerdictCensored,
			func(r *core.Result) bool { return r.Verdict == core.VerdictCensored && r.Mechanism == core.MechRST }},
		{"uncensored, TTL-limited", 2, false, "/news", core.VerdictAccessible,
			func(r *core.Result) bool { return r.Verdict == core.VerdictAccessible }},
		{"uncensored, NO TTL limit (ablation)", 64, false, "/news", core.VerdictAccessible,
			func(r *core.Result) bool { return r.Verdict == core.VerdictAccessible }},
		{"uncensored, server-side traceroute (AutoTTL)", 0, true, "/news", core.VerdictAccessible,
			func(r *core.Result) bool { return r.Verdict == core.VerdictAccessible }},
	}

	for i, c := range cases {
		l, err := lab.New(lab.Config{PopulationSize: 12, SpoofPolicy: spoof.PolicySlash24, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		// Spoof live population hosts in the client's /24 so the replay
		// hazard is real, and count server-sourced packets reaching them.
		var covers []netip.Addr
		received := 0
		for _, u := range l.Population {
			if u.Host.Addr.As4()[2] == 0 {
				covers = append(covers, u.Host.Addr)
				u.Host.AddSniffer(func(raw []byte, pkt *packet.Packet) {
					// Censor-injected RSTs are spoofed as the server (as
					// on real networks); only non-RST packets are genuine
					// TTL-limited server replies.
					if pkt.IP.Src == lab.MeasureAddr && (pkt.TCP == nil || pkt.TCP.Flags&packet.TCPRst == 0) {
						received++
					}
				})
			}
		}
		tech := &core.Stateful{Sources: covers, ReplyTTL: c.ttl, AutoTTL: c.autoTTL}
		var res *core.Result
		tech.Run(l, core.Target{Domain: "site01.test", Path: c.path}, func(r *core.Result) { res = r })
		l.Run()
		if res == nil {
			return nil, fmt.Errorf("E7 case %q never completed", c.name)
		}
		risk := core.EvaluateRisk(l, lab.ClientAddr)
		out.Rows = append(out.Rows, E7Row{
			Case:          c.name,
			ReplyTTL:      c.ttl,
			Verdict:       res.Verdict,
			Correct:       c.correct(res),
			TapSawReplies: l.Surveil.SawTrafficFrom(lab.MeasureAddr),
			CoverReceived: received,
			ClientFlagged: risk.Flagged,
		})
	}
	return out, nil
}

// Render prints the stateful-mimicry table.
func (r *E7Result) Render() string {
	var b strings.Builder
	b.WriteString("E7 — stateful mimicry with TTL-limited replies (Fig 3b)\n\n")
	t := stats.NewTable("case", "reply-ttl", "verdict", "correct", "tap-saw-replies", "cover-host-pkts", "client-flagged")
	for _, row := range r.Rows {
		t.AddRow(row.Case, int(row.ReplyTTL), row.Verdict.String(), boolMark(row.Correct),
			boolMark(row.TapSawReplies), row.CoverReceived, boolMark(row.ClientFlagged))
	}
	b.WriteString(t.String())
	b.WriteString("\nTTL-limited rows must show tap-saw-replies=yes with cover-host-pkts=0;\n")
	b.WriteString("the ablation shows the RST-replay pitfall: full-TTL replies reach the\n")
	b.WriteString("spoofed hosts, whose kernels reset the flows and corrupt the verdict.\n")
	return b.String()
}
