package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/stats"
	"safemeasure/internal/surveil"
)

// E9Result exercises the §2.1 surveillance storage model: volume reduction
// by class, the 7.5 % content budget, and the 3-day/30-day retention
// windows.
type E9Result struct {
	PacketsSeen     int
	BytesSeen       int
	DiscardFraction float64
	DiscardByClass  map[surveil.TrafficClass]int
	RetainedBytes   int
	RetentionFrac   float64 // must be <= ~0.075

	// Retention windows: records surviving at +0, +4 days, +31 days.
	ContentNow, ContentAfter3d    int
	MetadataNow, MetadataAfter30d int
}

// E9MVR drives mixed population traffic (including P2P, which TEMPORA
// discards wholesale) through the border tap and reads the MVR state.
func E9MVR(seed int64, horizon time.Duration) (*E9Result, error) {
	if horizon <= 0 {
		horizon = 30 * time.Second
	}
	l, err := lab.New(lab.Config{PopulationSize: 24, Seed: seed})
	if err != nil {
		return nil, err
	}
	l.StartPopulation(horizon)
	l.Run()

	s := l.Surveil
	out := &E9Result{
		PacketsSeen:     s.PacketsSeen,
		BytesSeen:       s.BytesSeen,
		DiscardFraction: s.DiscardFraction(),
		DiscardByClass:  s.DiscardedByClass,
		RetainedBytes:   s.BytesRetained,
		RetentionFrac:   s.RetentionFraction(),
		ContentNow:      len(s.Content),
		MetadataNow:     len(s.Metadata),
	}
	// Advance virtual time past the retention windows.
	s.Expire(int64(l.Sim.Now()) + int64(96*time.Hour))
	out.ContentAfter3d = len(s.Content)
	s.Expire(int64(l.Sim.Now()) + int64(31*24*time.Hour))
	out.MetadataAfter30d = len(s.Metadata)
	return out, nil
}

// Render prints the storage-model table.
func (r *E9Result) Render() string {
	var b strings.Builder
	b.WriteString("E9 — MVR storage model (§2.1: 7.5% budget, P2P discard, 3d/30d retention)\n\n")
	t := stats.NewTable("metric", "value")
	t.AddRow("packets seen at border", r.PacketsSeen)
	t.AddRow("bytes seen", r.BytesSeen)
	t.AddRow("discard fraction (stage 1a)", fmt.Sprintf("%.3f", r.DiscardFraction))
	t.AddRow("content retained (bytes)", r.RetainedBytes)
	t.AddRow("retention fraction", fmt.Sprintf("%.4f (budget 0.0750)", r.RetentionFrac))
	t.AddRow("content records now / +4d", fmt.Sprintf("%d / %d", r.ContentNow, r.ContentAfter3d))
	t.AddRow("metadata records now / +31d", fmt.Sprintf("%d / %d", r.MetadataNow, r.MetadataAfter30d))
	b.WriteString(t.String())

	var classes []surveil.TrafficClass
	for c := range r.DiscardByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	b.WriteString("\npackets discarded wholesale, by class:\n")
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-8v %d\n", c, r.DiscardByClass[c])
	}
	return b.String()
}
