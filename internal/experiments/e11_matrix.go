package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/censor"
	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/spoof"
	"safemeasure/internal/stats"
)

// E11Row is one (mechanism, technique) cell of the headline matrix.
type E11Row struct {
	Mechanism string
	Technique string
	Stealth   bool
	Verdict   core.Verdict
	Correct   bool
	Score     float64
	Flagged   bool
}

// E11Result is the paper's headline comparison: every technique against
// every censorship mechanism it can measure, scoring both accuracy
// (censorship detected) and risk (measurer flagged). The expected shape:
// stealth techniques match the overt baselines on accuracy while the
// baselines get the user flagged.
type E11Result struct {
	Rows []E11Row
	// Aggregates.
	OvertAccuracy   float64
	StealthAccuracy float64
	OvertFlagRate   float64
	StealthFlagRate float64
}

// mechanismCase binds a censorship mechanism to its lab config, ground
// truth target, and the techniques able to measure it.
type mechanismCase struct {
	name       string
	censorCfg  func() censor.Config
	target     core.Target
	techniques []core.Technique
}

// E11TechniqueMatrix runs the full sweep.
func E11TechniqueMatrix(seed int64) (*E11Result, error) {
	cases := []mechanismCase{
		{
			name:      "keyword-rst",
			censorCfg: lab.DefaultCensorConfig,
			target:    core.Target{Domain: "site01.test", Path: "/falun"},
			techniques: []core.Technique{
				&core.OvertHTTP{}, &core.DDoS{Requests: 30}, &core.Stateful{Covers: 4},
			},
		},
		{
			name:      "dns-poison",
			censorCfg: lab.DefaultCensorConfig,
			target:    core.Target{Domain: "twitter.com"},
			techniques: []core.Technique{
				&core.OvertDNS{}, &core.Spam{}, &core.SpoofedDNS{Covers: 8},
			},
		},
		{
			name: "ip-blackhole",
			censorCfg: func() censor.Config {
				c := lab.DefaultCensorConfig()
				c.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
				return c
			},
			target: core.Target{Domain: "banned.test"},
			techniques: []core.Technique{
				&core.OvertTCP{}, &core.SYNScan{Ports: 100}, &core.SpoofedSYN{Covers: 8},
			},
		},
		{
			name: "port-block",
			censorCfg: func() censor.Config {
				c := lab.DefaultCensorConfig()
				c.BlockedPorts = []uint16{443}
				return c
			},
			target: core.Target{Addr: lab.WebAddr, Port: 443},
			techniques: []core.Technique{
				&core.OvertTCP{}, &core.SYNScan{Ports: 100}, &core.SpoofedSYN{Covers: 8},
			},
		},
	}

	out := &E11Result{}
	var overtTotal, overtCorrect, overtFlagged int
	var stealthTotal, stealthCorrect, stealthFlagged int

	i := int64(0)
	for _, mc := range cases {
		for _, tech := range mc.techniques {
			i++
			res, risk, _, err := runProbe(lab.Config{
				Censor: mc.censorCfg(), SpoofPolicy: spoof.PolicySlash24, Seed: seed + i,
			}, tech, mc.target, 2*time.Second)
			if err != nil {
				return nil, fmt.Errorf("E11 %s/%s: %w", mc.name, tech.Name(), err)
			}
			row := E11Row{
				Mechanism: mc.name,
				Technique: tech.Name(),
				Stealth:   core.Stealth(tech),
				Verdict:   res.Verdict,
				Correct:   res.Verdict == core.VerdictCensored,
				Score:     risk.Score,
				Flagged:   risk.Flagged,
			}
			out.Rows = append(out.Rows, row)
			if row.Stealth {
				stealthTotal++
				if row.Correct {
					stealthCorrect++
				}
				if row.Flagged {
					stealthFlagged++
				}
			} else {
				overtTotal++
				if row.Correct {
					overtCorrect++
				}
				if row.Flagged {
					overtFlagged++
				}
			}
		}
	}
	out.OvertAccuracy = frac(overtCorrect, overtTotal)
	out.StealthAccuracy = frac(stealthCorrect, stealthTotal)
	out.OvertFlagRate = frac(overtFlagged, overtTotal)
	out.StealthFlagRate = frac(stealthFlagged, stealthTotal)
	return out, nil
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Render prints the matrix and aggregates.
func (r *E11Result) Render() string {
	var b strings.Builder
	b.WriteString("E11 — technique x mechanism matrix (headline comparison)\n\n")
	t := stats.NewTable("mechanism", "technique", "kind", "verdict", "correct", "analyst-score", "flagged")
	for _, row := range r.Rows {
		kind := "overt"
		if row.Stealth {
			kind = "stealth"
		}
		t.AddRow(row.Mechanism, row.Technique, kind, row.Verdict.String(),
			boolMark(row.Correct), row.Score, boolMark(row.Flagged))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\naccuracy: overt %.2f vs stealth %.2f (must be comparable)\n", r.OvertAccuracy, r.StealthAccuracy)
	fmt.Fprintf(&b, "flag rate: overt %.2f vs stealth %.2f (stealth must be lower)\n", r.OvertFlagRate, r.StealthFlagRate)
	return b.String()
}
