package experiments

import (
	"fmt"
	"strings"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/smtpwire"
	"safemeasure/internal/spamscore"
	"safemeasure/internal/stats"
)

// E3Result reproduces Figure 2 (the CDF of Proofpoint spam scores for n=100
// spam-cloaked measurements) and the §3.2.3 GFC DNS validation.
type E3Result struct {
	N int
	// Scores of the measurement messages.
	CDF *stats.CDF
	// FractionSpam is the mass at or above the filter's spam threshold —
	// Figure 2 shows essentially all measurements classified as spam.
	FractionSpam float64
	Threshold    float64
	// HamCDF is a contrast series of ordinary correspondence.
	HamCDF *stats.CDF

	// GFC validation (§3.2.3): MX lookups for twitter.com and youtube.com
	// return forged A answers.
	TwitterPoisoned bool
	YoutubePoisoned bool
	// Delivered: spam-cloaked measurements to uncensored domains complete.
	Delivered bool
}

// E3SpamCDF scores n spam-cloaked measurement messages (the paper used
// n=100) and validates the DNS leg against the reference GFC.
func E3SpamCDF(seed int64, n int) (*E3Result, error) {
	if n <= 0 {
		n = 100
	}
	scorer := spamscore.New()
	out := &E3Result{N: n, Threshold: scorer.SpamThreshold}

	var scores []float64
	spamAtOrAbove := 0
	for i := 0; i < n; i++ {
		msg := core.SpamTemplate(fmt.Sprintf("site%02d.test", i%30), i)
		s := scorer.Score(msg).Score
		scores = append(scores, s)
		if s >= scorer.SpamThreshold {
			spamAtOrAbove++
		}
	}
	out.CDF = stats.NewCDF(scores)
	out.FractionSpam = float64(spamAtOrAbove) / float64(n)

	hams := []*smtpwire.Message{
		{From: "alice@campus.test", To: "bob@campus.test", Subject: "Meeting notes", Body: "Minutes attached, thanks. Regards, Alice"},
		{From: "ci@builds.test", To: "dev@campus.test", Subject: "build passed", Body: "all tests green, see yesterday's minutes"},
		{From: "prof@campus.test", To: "class@campus.test", Subject: "office hours", Body: "moved to Thursday, thanks"},
	}
	var hamScores []float64
	for _, m := range hams {
		hamScores = append(hamScores, scorer.Score(m).Score)
	}
	out.HamCDF = stats.NewCDF(hamScores)

	// GFC DNS validation: the spam technique's MX stage observes the
	// forged A answers for both validated domains.
	for i, dom := range []string{"twitter.com", "youtube.com"} {
		res, _, _, err := runProbe(lab.Config{Seed: seed + int64(i)}, &core.Spam{Seq: i}, core.Target{Domain: dom}, 0)
		if err != nil {
			return nil, err
		}
		poisoned := res.Verdict == core.VerdictCensored && res.Mechanism == core.MechPoison
		if dom == "twitter.com" {
			out.TwitterPoisoned = poisoned
		} else {
			out.YoutubePoisoned = poisoned
		}
	}
	res, _, l, err := runProbe(lab.Config{Seed: seed + 10}, &core.Spam{Seq: 99}, core.Target{Domain: "site09.test"}, 0)
	if err != nil {
		return nil, err
	}
	out.Delivered = res.Verdict == core.VerdictAccessible && len(l.Mail.Received) == 1
	return out, nil
}

// Render prints the Figure 2 series and the validation lines.
func (r *E3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3 — spam-score CDF, n=%d (Figure 2, §3.2.3)\n\n", r.N)
	b.WriteString("score   F(x) measurements   F(x) ordinary mail\n")
	for _, x := range []float64{0, 20, 40, 50, 60, 70, 80, 90, 95, 100} {
		fmt.Fprintf(&b, "%5.0f   %18.3f   %18.3f\n", x, r.CDF.At(x), r.HamCDF.At(x))
	}
	fmt.Fprintf(&b, "\nfraction of measurements scored as spam (>= %.0f): %.2f\n", r.Threshold, r.FractionSpam)
	fmt.Fprintf(&b, "min/median/max measurement score: %.1f / %.1f / %.1f\n",
		r.CDF.Min(), r.CDF.Quantile(0.5), r.CDF.Max())
	fmt.Fprintf(&b, "\nGFC validation: twitter.com MX poisoned: %s; youtube.com MX poisoned: %s\n",
		boolMark(r.TwitterPoisoned), boolMark(r.YoutubePoisoned))
	fmt.Fprintf(&b, "spam delivery to uncensored domain completed: %s\n", boolMark(r.Delivered))
	return b.String()
}
