package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
	"safemeasure/internal/stats"
	"safemeasure/internal/websim"
)

// E12Result collects the ablations DESIGN.md calls out: each removes one
// design assumption and shows the corresponding claim degrade.
type E12Result struct {
	// A. MVR wholesale discard disabled: malware-mimicry traffic reaches
	// the analyst and the §3 techniques lose their cover.
	DiscardOn  []E12TechRow
	DiscardOff []E12TechRow

	// B. Censor fragment reassembly: a fragmented keyword request is
	// caught by the default (reassembling) censor and missed without it.
	FragCaughtWithReassembly    bool
	FragMissedWithoutReassembly bool

	// C. Residual blocking: a keyword-triggering probe poisons later,
	// innocuous measurements of the same (client, server) pair.
	ResidualContaminates bool
	NoResidualClean      bool
}

// E12TechRow is one technique's outcome under an MVR variant.
type E12TechRow struct {
	Technique string
	Verdict   core.Verdict
	Correct   bool
	Score     float64
	Flagged   bool
}

// E12Ablations runs all three ablations.
func E12Ablations(seed int64) (*E12Result, error) {
	out := &E12Result{}

	// --- A: MVR discard on/off ---
	blackholed := func() lab.Config {
		c := lab.DefaultCensorConfig()
		c.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
		return lab.Config{Censor: c, Seed: seed}
	}
	techTargets := []struct {
		tech func() core.Technique
		tgt  core.Target
		cfg  func() lab.Config
	}{
		{func() core.Technique { return &core.SYNScan{Ports: 100} }, core.Target{Domain: "banned.test"}, blackholed},
		{func() core.Technique { return &core.DDoS{Requests: 30} }, core.Target{Domain: "site01.test", Path: "/falun"},
			func() lab.Config { return lab.Config{Seed: seed} }},
		{func() core.Technique { return &core.Spam{} }, core.Target{Domain: "twitter.com"},
			func() lab.Config { return lab.Config{Seed: seed} }},
	}
	for variant := 0; variant < 2; variant++ {
		for _, tc := range techTargets {
			cfg := tc.cfg()
			cfg.DisableMVRDiscard = variant == 1
			res, risk, _, err := runProbe(cfg, tc.tech(), tc.tgt, 2*time.Second)
			if err != nil {
				return nil, err
			}
			row := E12TechRow{
				Technique: res.Technique,
				Verdict:   res.Verdict,
				Correct:   res.Verdict == core.VerdictCensored,
				Score:     risk.Score,
				Flagged:   risk.Flagged,
			}
			if variant == 0 {
				out.DiscardOn = append(out.DiscardOn, row)
			} else {
				out.DiscardOff = append(out.DiscardOff, row)
			}
		}
	}

	// --- B: fragmentation vs censor reassembly ---
	fragProbe := func(disableReassembly bool) (int, error) {
		censorCfg := lab.DefaultCensorConfig()
		censorCfg.DisableReassembly = disableReassembly
		l, err := lab.New(lab.Config{PopulationSize: 8, Censor: censorCfg, Seed: seed})
		if err != nil {
			return 0, err
		}
		raw, err := packet.BuildTCP(lab.ClientAddr, lab.WebAddr, 64, &packet.TCP{
			SrcPort: 47000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck,
			Payload: []byte("GET /falun HTTP/1.1\r\nHost: site01.test\r\n\r\n"),
		})
		if err != nil {
			return 0, err
		}
		frags, err := packet.Fragment(raw, 16)
		if err != nil {
			return 0, err
		}
		for _, f := range frags {
			l.Client.SendIP(f)
		}
		l.Run()
		return l.Censor.RSTsInjected, nil
	}
	rsts, err := fragProbe(false)
	if err != nil {
		return nil, err
	}
	out.FragCaughtWithReassembly = rsts > 0
	rsts, err = fragProbe(true)
	if err != nil {
		return nil, err
	}
	out.FragMissedWithoutReassembly = rsts == 0

	// --- C: residual blocking contaminates later measurements ---
	residualProbe := func(residual time.Duration) (cleanOK bool, err error) {
		censorCfg := lab.DefaultCensorConfig()
		censorCfg.ResidualBlock = residual
		l, err := lab.New(lab.Config{PopulationSize: 8, Censor: censorCfg, Seed: seed})
		if err != nil {
			return false, err
		}
		// First: a keyword-triggering fetch.
		websim.Get(l.ClientStack, lab.WebAddr, "site01.test", "/falun", func(*httpwire.Response, error) {})
		l.Run()
		// Then: an innocuous fetch of the SAME pair.
		var resp *httpwire.Response
		websim.Get(l.ClientStack, lab.WebAddr, "site01.test", "/clean", func(r *httpwire.Response, err error) { resp = r })
		l.Run()
		return resp != nil && resp.Status == 200, nil
	}
	clean, err := residualProbe(0)
	if err != nil {
		return nil, err
	}
	out.NoResidualClean = clean
	clean, err = residualProbe(time.Minute)
	if err != nil {
		return nil, err
	}
	out.ResidualContaminates = !clean
	return out, nil
}

// Render prints the ablation tables.
func (r *E12Result) Render() string {
	var b strings.Builder
	b.WriteString("E12 — ablations: removing each design assumption degrades the claim\n\n")

	b.WriteString("A. surveillance MVR wholesale discard (the §3 cover):\n")
	t := stats.NewTable("technique", "discard", "verdict", "correct", "score", "flagged")
	for i := range r.DiscardOn {
		on, off := r.DiscardOn[i], r.DiscardOff[i]
		t.AddRow(on.Technique, "on (paper)", on.Verdict.String(), boolMark(on.Correct), on.Score, boolMark(on.Flagged))
		t.AddRow(off.Technique, "OFF", off.Verdict.String(), boolMark(off.Correct), off.Score, boolMark(off.Flagged))
	}
	b.WriteString(t.String())
	b.WriteString("(with discard off, scanning and flooding lose their malware cover and the\n measurer's score rises; spam keeps evading because its alerts stay spam-class)\n\n")

	fmt.Fprintf(&b, "B. fragmentation vs censor reassembly:\n")
	fmt.Fprintf(&b, "   reassembling censor caught fragmented keyword: %s\n", boolMark(r.FragCaughtWithReassembly))
	fmt.Fprintf(&b, "   non-reassembling censor missed it:             %s\n\n", boolMark(r.FragMissedWithoutReassembly))

	fmt.Fprintf(&b, "C. residual blocking (GFC penalty window):\n")
	fmt.Fprintf(&b, "   without residual: innocuous follow-up fetch succeeds: %s\n", boolMark(r.NoResidualClean))
	fmt.Fprintf(&b, "   with residual:    innocuous follow-up fetch is reset: %s\n", boolMark(r.ResidualContaminates))
	b.WriteString("   (keyword probes contaminate later measurements of the same address pair —\n    measurement schedulers must space probes beyond the penalty window)\n")
	return b.String()
}
