// Package experiments implements the paper's evaluation artifacts, one
// runner per table/figure (see DESIGN.md §4 for the index):
//
//	E1  — Figure 1 / §3.2.1: reference censor + surveillance validation
//	E2  — §3.2.2: scanning measurements (accuracy + evasion)
//	E3  — Figure 2 / §3.2.3: spam-score CDF and GFC DNS validation
//	E4  — §3.1 Method #3: DDoS-mimicry measurements
//	E5  — §2.2: Syrian log analysis (1.57 % statistic)
//	E6  — Figure 3a: stateless spoofed-cover measurements
//	E7  — Figure 3b: stateful mimicry with TTL-limited replies
//	E8  — §4.2: spoofing feasibility (Beverly fractions)
//	E9  — §2.1: MVR storage/retention model
//	E10 — §6: ethics load accounting
//	E11 — headline technique × mechanism matrix
//
// Every runner is deterministic for a given seed and returns a result
// struct with a Render() string that prints the same rows/series the paper
// reports. cmd/labbench prints them; bench_test.go at the repository root
// regenerates each under `go test -bench`.
package experiments

import (
	"fmt"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
)

// runProbe builds a lab, optionally starts population cover traffic, runs
// one technique, and returns the measurement result plus the measurer's
// risk report.
func runProbe(cfg lab.Config, tech core.Technique, tgt core.Target, popHorizon time.Duration) (*core.Result, core.RiskReport, *lab.Lab, error) {
	if cfg.PopulationSize == 0 {
		cfg.PopulationSize = 20
	}
	l, err := lab.New(cfg)
	if err != nil {
		return nil, core.RiskReport{}, nil, err
	}
	if popHorizon > 0 {
		l.StartPopulation(popHorizon)
	}
	var res *core.Result
	tech.Run(l, tgt, func(r *core.Result) { res = r })
	l.Run()
	if res == nil {
		return nil, core.RiskReport{}, nil, fmt.Errorf("experiments: %s never completed", tech.Name())
	}
	return res, core.EvaluateRisk(l, lab.ClientAddr), l, nil
}

// boolMark renders ✓/✗ for table cells.
func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
