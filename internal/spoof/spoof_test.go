package spoof

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

var client = netip.MustParseAddr("10.1.2.10")

func TestDrawPolicyReproducesBeverly(t *testing.T) {
	m, err := NewModel(Beverly(), 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := map[Policy]int{}
	for i := 0; i < n; i++ {
		counts[m.DrawPolicy()]++
	}
	// 77% can spoof at least /24 (i.e. /24 or /16 policies).
	can24 := float64(counts[PolicySlash24]+counts[PolicySlash16]) / n
	can16 := float64(counts[PolicySlash16]) / n
	if math.Abs(can24-0.77) > 0.01 {
		t.Fatalf("P(spoof /24) = %.3f, want 0.77", can24)
	}
	if math.Abs(can16-0.11) > 0.01 {
		t.Fatalf("P(spoof /16) = %.3f, want 0.11", can16)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(Fractions{Slash24: 0.1, Slash16: 0.5}, 1); err == nil {
		t.Fatal("inconsistent fractions accepted")
	}
	if _, err := NewModel(Fractions{Slash24: 1.5, Slash16: 0.1}, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestCanSpoofScopes(t *testing.T) {
	in24 := netip.MustParseAddr("10.1.2.200")
	in16 := netip.MustParseAddr("10.1.99.7")
	outside := netip.MustParseAddr("10.2.0.1")

	cases := []struct {
		policy  Policy
		spoofed netip.Addr
		want    bool
	}{
		{PolicyStrict, in24, false},
		{PolicyStrict, client, true}, // own address always ok
		{PolicySlash24, in24, true},
		{PolicySlash24, in16, false},
		{PolicySlash16, in24, true},
		{PolicySlash16, in16, true},
		{PolicySlash16, outside, false},
	}
	for i, tc := range cases {
		if got := CanSpoof(tc.policy, client, tc.spoofed); got != tc.want {
			t.Errorf("case %d (%v spoofing %v): got %v", i, tc.policy, tc.spoofed, got)
		}
	}
}

func TestCoverSetSize(t *testing.T) {
	if CoverSetSize(PolicyStrict) != 1 || CoverSetSize(PolicySlash24) != 256 {
		t.Fatal("small scopes")
	}
	// §6: one measurement per IP in a /16 is ~65k queries.
	if CoverSetSize(PolicySlash16) != 65536 {
		t.Fatal("/16 scope")
	}
}

func TestCoverAddrs(t *testing.T) {
	addrs := CoverAddrs(PolicySlash24, client, 10)
	if len(addrs) != 10 {
		t.Fatalf("got %d addrs", len(addrs))
	}
	for _, a := range addrs {
		if a == client {
			t.Fatal("own address in cover set")
		}
		if !CanSpoof(PolicySlash24, client, a) {
			t.Fatalf("cover addr %v not spoofable", a)
		}
	}
	if CoverAddrs(PolicyStrict, client, 10) != nil {
		t.Fatal("strict policy returned covers")
	}
	// Asking for more than the /24 holds caps out below 256.
	all := CoverAddrs(PolicySlash24, client, 1000)
	if len(all) >= 256 || len(all) < 250 {
		t.Fatalf("full /24 cover set = %d", len(all))
	}
}

func TestFilter(t *testing.T) {
	f := NewFilter()
	f.SetPolicy(client, PolicySlash24)
	neighbor := netip.MustParseAddr("10.1.2.77")
	far := netip.MustParseAddr("10.9.9.9")
	if !f.Allow(client, neighbor) {
		t.Fatal("in-/24 spoof dropped")
	}
	if f.Allow(client, far) {
		t.Fatal("cross-net spoof passed")
	}
	if f.Passed != 1 || f.Dropped != 1 {
		t.Fatalf("stats: %d/%d", f.Passed, f.Dropped)
	}
	// Unconfigured client defaults to strict.
	other := netip.MustParseAddr("10.1.2.11")
	if f.Allow(other, neighbor) {
		t.Fatal("default policy not strict")
	}
	if f.Policy(client) != PolicySlash24 {
		t.Fatal("policy lookup")
	}
}

func TestQuickCoverAddrsAlwaysSpoofable(t *testing.T) {
	f := func(a, b, c, d byte, pol uint8) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		policy := Policy(pol % 3)
		for _, cover := range CoverAddrs(policy, addr, 50) {
			if !CanSpoof(policy, addr, cover) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyStrict.String() != "strict" || PolicySlash16.String() != "/16" {
		t.Fatal("policy names")
	}
}
