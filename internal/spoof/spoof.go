// Package spoof models source-address-validation (SAV) deployment and
// cover-address selection for the paper's §4 techniques.
//
// The feasibility numbers come from Beverly et al. (IMC 2009), which the
// paper cites in §4.2: 77 % of clients can spoof addresses within their own
// /24, and 11 % can spoof within their own /16. The model assigns each
// client network a filtering policy drawn to reproduce those population
// fractions, then answers "which cover addresses can this client claim?".
package spoof

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// Policy is the SAV filtering regime a client sits behind.
type Policy int

// Policies, from most to least restrictive.
const (
	// PolicyStrict: all spoofed packets are dropped at the first hop.
	PolicyStrict Policy = iota
	// PolicySlash24: spoofing permitted within the client's /24.
	PolicySlash24
	// PolicySlash16: spoofing permitted within the client's /16.
	PolicySlash16
)

// String returns a short policy name.
func (p Policy) String() string {
	return [...]string{"strict", "/24", "/16"}[p]
}

// BeverlyFractions reproduces the paper's cited measurements: fraction of
// clients that can spoof within each scope. /16 spoofers are a subset of
// /24 spoofers.
type Fractions struct {
	Slash24 float64 // P(can spoof within /24) = 0.77
	Slash16 float64 // P(can spoof within /16) = 0.11
}

// Beverly returns the published fractions.
func Beverly() Fractions { return Fractions{Slash24: 0.77, Slash16: 0.11} }

// Model assigns policies to clients and answers spoofability queries.
type Model struct {
	fr  Fractions
	rng *rand.Rand
}

// NewModel creates a model with the given fractions and seed.
func NewModel(fr Fractions, seed int64) (*Model, error) {
	if fr.Slash16 > fr.Slash24 || fr.Slash24 > 1 || fr.Slash16 < 0 {
		return nil, fmt.Errorf("spoof: inconsistent fractions %+v", fr)
	}
	return &Model{fr: fr, rng: rand.New(rand.NewSource(seed))}, nil
}

// DrawPolicy samples a policy for one client.
func (m *Model) DrawPolicy() Policy {
	u := m.rng.Float64()
	switch {
	case u < m.fr.Slash16:
		return PolicySlash16
	case u < m.fr.Slash24:
		return PolicySlash24
	default:
		return PolicyStrict
	}
}

// CanSpoof reports whether a client at addr under policy may emit a packet
// with source spoofed.
func CanSpoof(policy Policy, addr, spoofed netip.Addr) bool {
	if addr == spoofed {
		return true // own address is always fine
	}
	switch policy {
	case PolicySlash24:
		return samePrefix(addr, spoofed, 24)
	case PolicySlash16:
		return samePrefix(addr, spoofed, 16)
	default:
		return false
	}
}

func samePrefix(a, b netip.Addr, bits int) bool {
	pa, err := a.Prefix(bits)
	if err != nil {
		return false
	}
	return pa.Contains(b)
}

// CoverSetSize returns how many distinct source addresses a client may
// claim under the policy (including its own), assuming a fully populated
// prefix: 1 for strict, 256 for /24, 65536 for /16. The paper's §6 uses the
// /16 figure ("roughly 65k queries").
func CoverSetSize(policy Policy) int {
	switch policy {
	case PolicySlash24:
		return 1 << 8
	case PolicySlash16:
		return 1 << 16
	default:
		return 1
	}
}

// CoverAddrs enumerates up to max spoofable addresses adjacent to addr
// under policy, skipping network/broadcast-style endpoints and addr itself.
func CoverAddrs(policy Policy, addr netip.Addr, max int) []netip.Addr {
	var bits int
	switch policy {
	case PolicySlash24:
		bits = 24
	case PolicySlash16:
		bits = 16
	default:
		return nil
	}
	prefix, err := addr.Prefix(bits)
	if err != nil {
		return nil
	}
	var out []netip.Addr
	for a := prefix.Addr().Next(); prefix.Contains(a) && len(out) < max; a = a.Next() {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// Filter is a netsim-style SAV check for an AS edge: given the true sender
// and the packet's claimed source, does the edge forward it? Lab routers
// consult this in an edge tap.
type Filter struct {
	policies map[netip.Addr]Policy

	// Stats.
	Passed  int
	Dropped int
}

// NewFilter creates an empty SAV filter.
func NewFilter() *Filter { return &Filter{policies: make(map[netip.Addr]Policy)} }

// SetPolicy fixes a client's policy.
func (f *Filter) SetPolicy(client netip.Addr, p Policy) { f.policies[client] = p }

// Policy returns a client's policy (strict when unset).
func (f *Filter) Policy(client netip.Addr) Policy { return f.policies[client] }

// Allow reports whether a packet truly from sender claiming src passes.
func (f *Filter) Allow(sender, claimed netip.Addr) bool {
	ok := CanSpoof(f.policies[sender], sender, claimed)
	if ok {
		f.Passed++
	} else {
		f.Dropped++
	}
	return ok
}
