package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
	if c.Min() != 10 || c.Max() != 50 {
		t.Fatalf("min/max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Mean(); got != 30 {
		t.Fatalf("mean = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Fatal("empty CDF quantile/mean not NaN")
	}
}

func TestCDFPointsMonotonic(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2, 5})
	pts := c.Points()
	if len(pts) != 4 { // distinct values 1,2,3,5
		t.Fatalf("points = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] <= pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("not monotonic: %v", pts)
		}
	}
	if last := pts[len(pts)-1][1]; last != 1 {
		t.Fatalf("final probability = %v", last)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		clean := samples[:0]
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(clean)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(samples []float64, q float64) bool {
		clean := samples[:0]
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		c := NewCDF(clean)
		v := c.Quantile(q)
		sort.Float64s(clean)
		return v >= clean[0] && v <= clean[len(clean)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{-5, 0, 9.99, 10, 55, 99.9, 100, 200} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[5] != 1 || h.Buckets[9] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under/over = %d/%d", h.under, h.over)
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("ASCII render empty")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi <= lo")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != "1/4 (25.00%)" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(3, 0); got != "3/0" {
		t.Fatalf("Ratio div-zero = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("technique", "accuracy", "evaded")
	tb.AddRow("overt-http", 1.0, false)
	tb.AddRow("spam", 0.98, true)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "technique") || !strings.Contains(lines[2], "overt-http") {
		t.Fatalf("render:\n%s", out)
	}
	// All rows align to the same separator width.
	if len(lines[1]) < len("technique") {
		t.Fatalf("separator too short: %q", lines[1])
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{40, 80, 90, 95})
	s := c.Series([]float64{40, 60, 100})
	if !strings.Contains(s, "0.250") || !strings.Contains(s, "1.000") {
		t.Fatalf("series:\n%s", s)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Fatalf("empty entropy = %v", got)
	}
	if got := Entropy([]int{5}); got != 0 {
		t.Fatalf("single-class entropy = %v", got)
	}
	if got := Entropy([]int{1, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("two-way uniform = %v, want 1 bit", got)
	}
	if got := Entropy([]int{1, 1, 1, 1}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("four-way uniform = %v, want 2 bits", got)
	}
	// Skewed distribution carries less entropy than uniform.
	if Entropy([]int{9, 1}) >= Entropy([]int{5, 5}) {
		t.Fatal("skew did not reduce entropy")
	}
	// Zero and negative counts are ignored.
	if got := Entropy([]int{3, 0, -2, 3}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("entropy with zeros = %v", got)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty summary must report NaN moments")
	}
	for _, x := range []float64{3, -1, 4, 1.5} {
		s.Add(x)
	}
	if s.N != 4 || s.Min() != -1 || s.Max() != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean()-1.875) > 1e-12 {
		t.Fatalf("mean = %v, want 1.875", s.Mean())
	}
}

func TestWilsonKnownValues(t *testing.T) {
	// 5/10 at z=1.96 is the textbook example: (0.2366, 0.7634) to 4 places.
	lo, hi := Wilson(5, 10, 1.96)
	if math.Abs(lo-0.2366) > 5e-4 || math.Abs(hi-0.7634) > 5e-4 {
		t.Fatalf("Wilson(5,10,1.96) = (%.4f, %.4f), want (0.2366, 0.7634)", lo, hi)
	}
	// A perfect score still leaves a lower bound well below 1: small n
	// cannot certify perfection, which is the whole point of reporting the
	// interval next to the accuracy column.
	lo, hi = Wilson95(10, 10)
	if hi != 1 {
		t.Fatalf("hi = %v for 10/10, want exactly 1", hi)
	}
	if lo >= 1 || lo < 0.6 || lo > 0.8 {
		t.Fatalf("lo = %v for 10/10, want ~0.72", lo)
	}
	// Zero successes mirror: lo clamps to 0.
	lo, hi = Wilson95(0, 10)
	if lo != 0 || hi <= 0 || hi >= 0.4 {
		t.Fatalf("Wilson95(0,10) = (%v, %v)", lo, hi)
	}
}

func TestWilsonNoData(t *testing.T) {
	for _, n := range []int{0, -1} {
		if lo, hi := Wilson95(0, n); lo != 0 || hi != 1 {
			t.Fatalf("Wilson95(0,%d) = (%v, %v), want the whole [0,1]", n, lo, hi)
		}
	}
}

func TestQuickWilsonBounds(t *testing.T) {
	// For any counts the interval stays inside [0,1], is ordered, and
	// contains the point estimate.
	f := func(successes, n uint8) bool {
		s, nn := int(successes), int(n)
		if s > nn {
			s, nn = nn, s
		}
		lo, hi := Wilson95(s, nn)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		if nn > 0 {
			p := float64(s) / float64(nn)
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWilsonNarrowsWithN(t *testing.T) {
	// At a fixed proportion, more trials must never widen the interval.
	f := func(k uint8) bool {
		n := int(k)%500 + 2
		lo1, hi1 := Wilson95(n/2, n)
		lo2, hi2 := Wilson95(n*5, n*10)
		return (hi2 - lo2) <= (hi1 - lo1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
