// Package stats provides the small statistics toolkit the experiment harness
// uses: empirical CDFs (Figure 2 is a CDF of spam scores), histograms,
// percentile summaries, and fixed-width table rendering for the labbench
// output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points returns (x, P(X<=x)) pairs at each distinct sample value — the
// series a CDF plot would draw.
func (c *CDF) Points() [][2]float64 {
	var pts [][2]float64
	n := float64(len(c.sorted))
	for i, v := range c.sorted {
		if i+1 < len(c.sorted) && c.sorted[i+1] == v {
			continue
		}
		pts = append(pts, [2]float64{v, float64(i+1) / n})
	}
	return pts
}

// Series renders the CDF as rows "x\tF(x)" sampled at the given x values —
// the textual equivalent of the paper's Figure 2 axes.
func (c *CDF) Series(xs []float64) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%8.1f  %6.3f\n", x, c.At(x))
	}
	return b.String()
}

// Histogram counts samples into fixed-width buckets over [lo, hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	width   float64
	under   int
	over    int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		h.Buckets[int((x-h.Lo)/h.width)]++
	}
}

// Total returns the number of recorded samples, including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.under + h.over
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// String renders an ASCII bar chart.
func (h *Histogram) String() string {
	max := 1
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*h.width
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&b, "%8.1f..%-8.1f %6d %s\n", lo, lo+h.width, c, bar)
	}
	return b.String()
}

// Entropy computes the Shannon entropy (bits) of a discrete distribution
// given as counts. Used for attribution entropy: how uncertain the
// surveillance analyst is about WHICH user a set of alerts belongs to.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Summary is a streaming accumulator for count/sum/min/max/mean — the
// aggregation primitive campaign reporting uses, cheaper than keeping every
// sample when only the moments are reported.
type Summary struct {
	N    int
	Sum  float64
	MinV float64
	MaxV float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if s.N == 0 || x < s.MinV {
		s.MinV = x
	}
	if s.N == 0 || x > s.MaxV {
		s.MaxV = x
	}
	s.N++
	s.Sum += x
}

// Mean returns the sample mean (NaN with no samples).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

// Min returns the smallest sample (NaN with no samples).
func (s *Summary) Min() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.MinV
}

// Max returns the largest sample (NaN with no samples).
func (s *Summary) Max() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.MaxV
}

// Z95 is the two-sided 95% normal critical value, the conventional z for
// Wilson confidence intervals.
const Z95 = 1.959963984540054

// Wilson returns the Wilson score interval for a binomial proportion:
// successes out of n trials at critical value z. Unlike the naive normal
// approximation it stays inside [0, 1] and behaves sanely at the extremes
// (0/n and n/n give intervals that still exclude nothing prematurely),
// which is exactly what small per-cell campaign counts need. With n <= 0
// there is no information and the interval is the whole [0, 1].
func Wilson(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 || successes <= 0 {
		lo = 0 // exactly 0 at p=0; the formula only wobbles by rounding
	}
	if hi > 1 || successes >= n {
		hi = 1 // exactly 1 at p=1, same reason
	}
	return lo, hi
}

// Wilson95 is Wilson at the conventional 95% confidence level.
func Wilson95(successes, n int) (lo, hi float64) { return Wilson(successes, n, Z95) }

// Comparison verdicts for PropDelta: whether B's proportion is credibly
// above, below, or indistinguishable from A's at the chosen confidence.
const (
	VerdictBetter       = "better"
	VerdictWorse        = "worse"
	VerdictInconclusive = "inconclusive"
)

// PropDelta compares two binomial proportions (A the baseline, B the
// candidate) through their Wilson intervals.
type PropDelta struct {
	PA, PB   float64 // point estimates
	Delta    float64 // PB - PA
	LoA, HiA float64 // Wilson interval on A
	LoB, HiB float64 // Wilson interval on B
	NA, NB   int
	// Verdict is the regression call: VerdictBetter when B's interval lies
	// entirely above A's, VerdictWorse when entirely below, and
	// VerdictInconclusive when the intervals overlap (or either side has no
	// trials — no information, no call).
	Verdict string
}

// CompareProportions runs the Wilson-CI comparison at critical value z.
// Disjoint intervals are the decision rule: it is conservative (stricter
// than a two-proportion z-test), which is the right default for flagging
// regressions between campaign files — an inconclusive cell means "collect
// more trials", not "ship it".
func CompareProportions(successA, nA, successB, nB int, z float64) PropDelta {
	d := PropDelta{NA: nA, NB: nB}
	if nA > 0 {
		d.PA = float64(successA) / float64(nA)
	}
	if nB > 0 {
		d.PB = float64(successB) / float64(nB)
	}
	d.Delta = d.PB - d.PA
	d.LoA, d.HiA = Wilson(successA, nA, z)
	d.LoB, d.HiB = Wilson(successB, nB, z)
	switch {
	case nA <= 0 || nB <= 0:
		d.Verdict = VerdictInconclusive
	case d.LoB > d.HiA:
		d.Verdict = VerdictBetter
	case d.HiB < d.LoA:
		d.Verdict = VerdictWorse
	default:
		d.Verdict = VerdictInconclusive
	}
	return d
}

// Ratio formats a/b as both a fraction and a percentage, guarding b == 0.
func Ratio(a, b int) string {
	if b == 0 {
		return fmt.Sprintf("%d/0", a)
	}
	return fmt.Sprintf("%d/%d (%.2f%%)", a, b, 100*float64(a)/float64(b))
}

// Table renders rows of fixed columns with aligned, space-padded cells.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
