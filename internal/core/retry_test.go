package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/netsim"
	"safemeasure/internal/telemetry"
)

// lossyConfig returns a lab config carrying a named impairment preset.
func lossyConfig(t *testing.T, preset string, seed int64) lab.Config {
	t.Helper()
	p, ok := lab.ImpairmentByName(preset)
	if !ok {
		t.Fatalf("unknown impairment preset %q", preset)
	}
	return lab.Config{Seed: seed, Impair: p.Impair}
}

// runRetry builds a fresh lab and drives one technique through RunWithRetry.
func runRetry(t *testing.T, cfg lab.Config, tech Technique, tgt Target, p RetryPolicy) *Result {
	t.Helper()
	if cfg.PopulationSize == 0 {
		cfg.PopulationSize = 8
	}
	l, err := lab.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	RunWithRetry(l, tech, tgt, p, func(r *Result) { res = r })
	l.Run()
	if res == nil {
		t.Fatalf("%s never completed under retry", tech.Name())
	}
	return res
}

// TestLossy20SingleShotMisclassifiesButRetryRecovers is the acceptance test
// for the resilience layer: on a 20%-loss uplink there is a seed where a
// single-shot DNS probe of an uncensored domain dies to loss and is scored
// as censorship, while the default retry policy — same seed, same lab —
// refuses to call it blocked.
func TestLossy20SingleShotMisclassifiesButRetryRecovers(t *testing.T) {
	tgt := Target{Domain: "site02.test"} // the "open" scenario's domain
	found := int64(-1)
	for seed := int64(1); seed <= 400; seed++ {
		res := runRetry(t, lossyConfig(t, "lossy20", seed), &OvertDNS{}, tgt, SingleShot())
		if res.Verdict == VerdictCensored && res.Mechanism == MechTimeout {
			found = seed
			break
		}
	}
	if found < 0 {
		t.Fatal("no seed in [1,400] made single-shot DNS on lossy20 misclassify an open target")
	}

	res := runRetry(t, lossyConfig(t, "lossy20", found), &OvertDNS{}, tgt, DefaultRetryPolicy())
	if res.Verdict == VerdictCensored {
		t.Fatalf("retry policy still calls the open target censored (seed %d): %v", found, res.Evidence)
	}
	if res.Verdict != VerdictAccessible && res.Verdict != VerdictInconclusive {
		t.Fatalf("unexpected verdict %v", res.Verdict)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the first attempt timed out)", res.Attempts)
	}
}

// TestRetryDeterministic: two labs with equal seeds produce byte-identical
// retried results, including the attempt log.
func TestRetryDeterministic(t *testing.T) {
	tgt := Target{Domain: "site02.test"}
	a := runRetry(t, lossyConfig(t, "lossy20", 7), &OvertDNS{}, tgt, DefaultRetryPolicy())
	b := runRetry(t, lossyConfig(t, "lossy20", 7), &OvertDNS{}, tgt, DefaultRetryPolicy())
	if a.Verdict != b.Verdict || a.Attempts != b.Attempts ||
		a.ProbesSent != b.ProbesSent || a.CoverSent != b.CoverSent {
		t.Fatalf("nondeterministic retry: %+v vs %+v", a, b)
	}
	if strings.Join(a.Evidence, "\n") != strings.Join(b.Evidence, "\n") {
		t.Fatalf("evidence diverged:\n%v\n%v", a.Evidence, b.Evidence)
	}
}

// TestRetryConsistentSilenceStaysCensored: a genuinely blackholed target is
// silent on every attempt, and the retry layer keeps the censored/timeout
// verdict rather than demoting real blocking to inconclusive.
func TestRetryConsistentSilenceStaysCensored(t *testing.T) {
	sc, ok := lab.ScenarioByName("blackhole")
	if !ok {
		t.Fatal("no blackhole scenario")
	}
	cfg := lab.Config{Censor: sc.NewCensor(), Seed: 9}
	res := runRetry(t, cfg, &OvertTCP{}, Target{Addr: lab.SensitiveAddr, Port: 80}, DefaultRetryPolicy())
	if res.Verdict != VerdictCensored || res.Mechanism != MechTimeout {
		t.Fatalf("res = %v/%q %v", res.Verdict, res.Mechanism, res.Evidence)
	}
	if res.Attempts != DefaultMaxAttempts {
		t.Fatalf("attempts = %d, want the full budget %d", res.Attempts, DefaultMaxAttempts)
	}
	if !strings.Contains(strings.Join(res.Evidence, " "), "consistent blocking") {
		t.Fatalf("missing consistent-blocking evidence: %v", res.Evidence)
	}
}

// TestRetryPositiveEvidenceIsFinal: injected evidence (DNS poison) ends the
// run on the attempt that observes it — no retries burned on a clear signal.
func TestRetryPositiveEvidenceIsFinal(t *testing.T) {
	res := runRetry(t, lab.Config{Seed: 3}, &OvertDNS{}, Target{Domain: "twitter.com"}, DefaultRetryPolicy())
	if res.Verdict != VerdictCensored || res.Mechanism != MechPoison {
		t.Fatalf("res = %v/%q", res.Verdict, res.Mechanism)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (poison is final)", res.Attempts)
	}
}

// TestRetrySingleShotKeepsLegacyVerdict: MaxAttempts=1 must not rewrite the
// timeout verdict, so ablation campaigns can still reproduce the old scoring.
func TestRetrySingleShotKeepsLegacyVerdict(t *testing.T) {
	sc, _ := lab.ScenarioByName("blackhole")
	cfg := lab.Config{Censor: sc.NewCensor(), Seed: 5}
	res := runRetry(t, cfg, &OvertTCP{}, Target{Addr: lab.SensitiveAddr, Port: 80}, SingleShot())
	if res.Verdict != VerdictCensored || res.Mechanism != MechTimeout || res.Attempts != 1 {
		t.Fatalf("res = %v/%q attempts=%d", res.Verdict, res.Mechanism, res.Attempts)
	}
}

// TestRetryTelemetry: the retry counter and attempts histogram register the
// per-attempt accounting.
func TestRetryTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc, _ := lab.ScenarioByName("blackhole")
	cfg := lab.Config{Censor: sc.NewCensor(), Seed: 5, PopulationSize: 8, Telemetry: reg}
	l, err := lab.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	RunWithRetry(l, &OvertTCP{}, Target{Addr: lab.SensitiveAddr, Port: 80}, DefaultRetryPolicy(),
		func(r *Result) { res = r })
	l.Run()
	if res == nil {
		t.Fatal("never completed")
	}
	retries := reg.Counter(telemetry.Labels("core_retries_total", "technique", "overt-tcp"))
	if got := retries.Value(); got != int64(DefaultMaxAttempts-1) {
		t.Fatalf("core_retries_total = %d, want %d", got, DefaultMaxAttempts-1)
	}
	hist := reg.HistogramBuckets(telemetry.Labels("core_attempts", "technique", "overt-tcp"), 1, 2, 6)
	if hist.Count() != 1 || hist.Sum() != float64(DefaultMaxAttempts) {
		t.Fatalf("core_attempts count=%d sum=%v", hist.Count(), hist.Sum())
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		res  *Result
		want bool
	}{
		{nil, false},
		{&Result{Verdict: VerdictInconclusive}, true},
		{&Result{Verdict: VerdictCensored, Mechanism: MechTimeout}, true},
		{&Result{Verdict: VerdictCensored, Mechanism: MechRST}, false},
		{&Result{Verdict: VerdictCensored, Mechanism: MechPoison}, false},
		{&Result{Verdict: VerdictAccessible}, false},
	}
	for i, tc := range cases {
		if got := Retryable(tc.res); got != tc.want {
			t.Errorf("case %d: Retryable = %v, want %v", i, got, tc.want)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 400 * time.Millisecond, JitterFrac: -1}.normalized()
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(1))
	for i, w := range want {
		if got := p.backoff(i+1, rng); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays inside [0, delay*frac).
	pj := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		JitterFrac: 0.5, MaxAttempts: 4}
	for i := 0; i < 50; i++ {
		d := pj.backoff(1, rng)
		if d < 100*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [100ms,150ms)", d)
		}
	}
}

// TestImpairmentPresetsComplete pins the sweep axis the campaign planner
// exposes; a renamed preset would silently invalidate stored records.
func TestImpairmentPresetsComplete(t *testing.T) {
	want := []string{"none", "lossy5", "lossy20", "reorder", "dup", "corrupt"}
	got := lab.ImpairmentNames()
	if len(got) != len(want) {
		t.Fatalf("presets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("presets = %v, want %v", got, want)
		}
	}
	if p, ok := lab.ImpairmentByName(""); !ok || p.Name != lab.ImpairmentNone ||
		p.Impair != (netsim.Impairment{}) {
		t.Fatalf("empty name must resolve to the pristine preset, got %+v ok=%v", p, ok)
	}
	if _, ok := lab.ImpairmentByName("bogus"); ok {
		t.Fatal("bogus preset resolved")
	}
}
