package core

import (
	"fmt"
	"net/netip"
	"sort"

	"safemeasure/internal/lab"
	"safemeasure/internal/stats"
)

// RiskReport summarizes what the surveillance system knows about a user
// after a measurement ran — the paper's success criterion is detecting
// censorship (the Result) WITHOUT an incriminating RiskReport.
type RiskReport struct {
	User netip.Addr

	// TrafficRetained: the MVR kept metadata or content involving the user
	// (stage-1 visibility).
	TrafficRetained bool
	// AnalystAlerts: alerts in the user's dossier (stage-2 visibility).
	AnalystAlerts int
	// Score is the analyst's weighted suspicion for the user.
	Score float64
	// Flagged: the analyst would act on this user — the outcome the
	// paper's techniques exist to prevent.
	Flagged bool
	// ImplicatedUsers: how many distinct users the surveillance system's
	// dossiers implicate — large values mean attribution confusion (§4).
	ImplicatedUsers int
	// AttributionEntropy is the Shannon entropy (bits) of the analyst's
	// alert-count distribution across users: 0 when every alert points at
	// one host, higher when cover traffic spreads the evidence (§4).
	AttributionEntropy float64
}

// String renders a one-line summary.
func (r RiskReport) String() string {
	return fmt.Sprintf("user=%v retained=%v alerts=%d score=%.2f flagged=%v implicated=%d",
		r.User, r.TrafficRetained, r.AnalystAlerts, r.Score, r.Flagged, r.ImplicatedUsers)
}

// EvaluateRisk reads the lab's surveillance state for a user. Call after
// the simulator has drained.
func EvaluateRisk(l *lab.Lab, user netip.Addr) RiskReport {
	s := l.Surveil
	a := s.Analyst()
	rep := RiskReport{
		User:            user,
		TrafficRetained: s.SawTrafficFrom(user),
		Score:           a.Score(user),
		Flagged:         a.IsFlagged(user),
		ImplicatedUsers: a.Users(),
	}
	if d := a.Dossier(user); d != nil {
		rep.AnalystAlerts = len(d.Alerts)
	}
	counts := make([]int, 0, rep.ImplicatedUsers)
	for _, n := range a.AlertCountsByUser() {
		counts = append(counts, n)
	}
	// Map iteration order is random and float addition is not associative;
	// sort so the entropy is bit-identical across runs of the same seed.
	sort.Ints(counts)
	rep.AttributionEntropy = stats.Entropy(counts)
	return rep
}
