package core

import (
	"fmt"
	"math/rand"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/telemetry"
)

// RetryPolicy bounds how a measurement is retried before silence is scored.
// All delays are virtual time and all jitter is drawn from the lab
// simulator's seeded RNG, so retried runs remain byte-reproducible.
//
// The policy exists because a single probe cannot separate packet loss from
// blocking: on an impaired link, "no answer" is the expected outcome of loss
// about as often as of censorship (the confound OONI's websteps analysis
// spends most of its effort untangling). Retrying with backoff turns one
// ambiguous silence into a sequence of independent observations:
//
//   - any attempt that produces positive evidence (an injected RST, a
//     poisoned answer, a block page, or a successful exchange) is final;
//   - silence across every attempt is consistent blocking, and keeps the
//     censored/timeout verdict;
//   - mixed failure modes (some silence, some inconclusive) exhaust the
//     budget without a signal and yield VerdictInconclusive — the tri-state
//     outcome that keeps lossy-link noise out of censorship statistics.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included); 0 means
	// DefaultMaxAttempts, 1 means single-shot (the legacy behaviour, which
	// scores any silence as censorship).
	MaxAttempts int
	// BaseDelay is the wait before the first retry; it doubles per attempt
	// (exponential backoff). 0 means 200ms of virtual time.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 1600ms.
	MaxDelay time.Duration
	// JitterFrac adds a uniform random extra in [0, delay*JitterFrac) to
	// each backoff, decorrelating retries from periodic interference.
	// 0 means 0.25; negative disables jitter.
	JitterFrac float64
	// Corroborate, when >= 2, switches to cross-trial corroboration: the
	// technique runs exactly this many times (backoff-spaced), every
	// attempt's verdict is tallied, and the final verdict needs a
	// k-of-n quorum (k = n - n/4). An agreeing quorum wins with
	// Confidence = votes/n; anything flappier demotes to
	// VerdictInconclusive — the defense against adversarial censors whose
	// enforcement itself flaps (intermittent, lazy, exhausted). 0 and 1
	// keep the plain retry ladder.
	Corroborate int
}

// Retry policy defaults.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 200 * time.Millisecond
	DefaultMaxDelay    = 1600 * time.Millisecond
	DefaultJitterFrac  = 0.25
)

// DefaultRetryPolicy is the bounded exponential backoff used by campaigns:
// up to 4 attempts, 200ms base delay doubling to 1600ms, 25% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: DefaultMaxAttempts,
		BaseDelay:   DefaultBaseDelay,
		MaxDelay:    DefaultMaxDelay,
		JitterFrac:  DefaultJitterFrac,
	}
}

// SingleShot disables retries: one attempt, silence scored as censorship —
// the pre-resilience behaviour, kept for ablations and comparisons.
func SingleShot() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// normalized fills zero fields with defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = DefaultJitterFrac
	}
	return p
}

// backoff returns the virtual-time wait before the retry following the
// given attempt number (1-based): BaseDelay*2^(attempt-1), capped at
// MaxDelay, plus jitter drawn from rng.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		if j := int64(float64(d) * p.JitterFrac); j > 0 {
			d += time.Duration(rng.Int63n(j))
		}
	}
	return d
}

// Retryable reports whether a result is worth retrying: outcomes that could
// equally be produced by packet loss — silence (the timeout/blackhole
// mechanism) and inconclusive evidence. Positive evidence of either
// blocking (RST, poisoned answer, block page) or access is final.
func Retryable(res *Result) bool {
	if res == nil {
		return false
	}
	return res.Verdict == VerdictInconclusive ||
		(res.Verdict == VerdictCensored && res.Mechanism == MechTimeout)
}

// RunWithRetry runs a technique under a retry policy, in the lab's virtual
// time: retryable outcomes re-run the technique after exponential backoff
// with seeded jitter, until positive evidence arrives or the attempt budget
// exhausts. done receives one merged Result whose Attempts, ProbesSent,
// CoverSent, and Evidence cover every attempt.
//
// Exhaustion semantics implement the tri-state verdict: silence on every
// attempt keeps the censored/timeout verdict (consistent blocking); mixed
// retryable outcomes demote to VerdictInconclusive, so a probe that died to
// loss is not scored as censorship. Callers drive l.Run() to completion as
// with Technique.Run.
func RunWithRetry(l *lab.Lab, t Technique, tgt Target, p RetryPolicy, done func(*Result)) {
	p = p.normalized()
	if p.Corroborate >= 2 {
		runCorroborated(l, t, tgt, p, done)
		return
	}
	var retries *telemetry.Counter
	var attemptsHist *telemetry.Histogram
	if reg := l.Cfg.Telemetry; reg != nil {
		retries = reg.Counter(telemetry.Labels("core_retries_total", "technique", t.Name()))
		attemptsHist = reg.HistogramBuckets(
			telemetry.Labels("core_attempts", "technique", t.Name()), 1, 2, 6)
	}

	var (
		attempt         = 1
		probes, cover   int
		timeoutAttempts int
		attemptLog      []string
	)
	var launch func()
	finalize := func(res *Result) {
		res.Attempts = attempt
		res.ProbesSent = probes
		res.CoverSent = cover
		if len(attemptLog) > 0 {
			res.Evidence = append(append([]string(nil), attemptLog...), res.Evidence...)
		}
		if Retryable(res) && p.MaxAttempts > 1 {
			if timeoutAttempts == attempt {
				// Every attempt died silent, through backoff windows spaced
				// widely enough that independent loss is improbable.
				res.Verdict = VerdictCensored
				res.Mechanism = MechTimeout
				res.addEvidence("silent on all %d attempts: consistent blocking, not loss", attempt)
			} else {
				res.Verdict = VerdictInconclusive
				res.Mechanism = MechNone
				res.addEvidence("no positive evidence after %d attempts: cannot separate loss from blocking", attempt)
			}
		}
		attemptsHist.Observe(float64(attempt))
		done(res)
	}
	launch = func() {
		t.Run(l, tgt, func(res *Result) {
			probes += res.ProbesSent
			cover += res.CoverSent
			if res.Verdict == VerdictCensored && res.Mechanism == MechTimeout {
				timeoutAttempts++
			}
			if Retryable(res) && attempt < p.MaxAttempts {
				delay := p.backoff(attempt, l.Sim.Rand())
				attemptLog = append(attemptLog, fmt.Sprintf(
					"attempt %d/%d inconclusive (%v%s); retrying after %v",
					attempt, p.MaxAttempts, res.Verdict, mechSuffix(res.Mechanism), delay))
				retries.Inc()
				attempt++
				l.Sim.Schedule(delay, launch)
				return
			}
			finalize(res)
		})
	}
	launch()
}

// corroborationQuorum is the k of the k-of-n agreement rule: n minus a
// quarter (rounded down), so n=5 needs 4 agreeing attempts. A simple
// majority is deliberately not enough — an intermittent censor flapping at
// p=0.5 produces 3-2 splits about half the time, and a majority rule would
// confidently misclassify those; demoting them to inconclusive is the
// honest verdict.
func corroborationQuorum(n int) int { return n - n/4 }

// runCorroborated implements RetryPolicy.Corroborate: exactly n
// backoff-spaced attempts, a per-verdict tally, and a k-of-n quorum. The
// winning verdict carries Confidence = votes/n and the mechanism most of
// its attempts reported; a hung vote demotes to VerdictInconclusive
// (core_corroboration_demotions_total) with the tally recorded as evidence.
func runCorroborated(l *lab.Lab, t Technique, tgt Target, p RetryPolicy, done func(*Result)) {
	n := p.Corroborate
	var demotions *telemetry.Counter
	if reg := l.Cfg.Telemetry; reg != nil {
		demotions = reg.Counter("core_corroboration_demotions_total")
	}
	var (
		attempt       = 1
		probes, cover int
		verdicts      []Verdict
		mechs         []string
		attemptLog    []string
	)
	finalize := func(res *Result) {
		votes := make(map[Verdict]int)
		for _, v := range verdicts {
			votes[v]++
		}
		// Deterministic winner scan: fixed verdict order, ties broken
		// toward the earlier constant (and a tie can never reach quorum
		// anyway, since k > n/2 for n >= 2).
		winner, best := VerdictInconclusive, 0
		for _, v := range []Verdict{VerdictInconclusive, VerdictAccessible, VerdictCensored} {
			if votes[v] > best {
				winner, best = v, votes[v]
			}
		}
		res.Attempts = n
		res.ProbesSent = probes
		res.CoverSent = cover
		res.Confidence = float64(best) / float64(n)
		res.Evidence = append(append([]string(nil), attemptLog...), res.Evidence...)
		if k := corroborationQuorum(n); best >= k {
			res.Verdict = winner
			res.Mechanism = commonMechanism(verdicts, mechs, winner)
			res.addEvidence("corroborated: %d/%d attempts agree on %v (quorum %d)", best, n, winner, k)
		} else {
			res.Verdict = VerdictInconclusive
			res.Mechanism = MechNone
			demotions.Inc()
			res.addEvidence("corroboration hung: best agreement %d/%d below quorum %d; verdict flaps, demoting to inconclusive", best, n, k)
		}
		done(res)
	}
	var launch func()
	launch = func() {
		t.Run(l, tgt, func(res *Result) {
			probes += res.ProbesSent
			cover += res.CoverSent
			verdicts = append(verdicts, res.Verdict)
			mechs = append(mechs, res.Mechanism)
			attemptLog = append(attemptLog, fmt.Sprintf("attempt %d/%d: %v%s",
				attempt, n, res.Verdict, mechSuffix(res.Mechanism)))
			if attempt < n {
				delay := p.backoff(attempt, l.Sim.Rand())
				attempt++
				l.Sim.Schedule(delay, launch)
				return
			}
			finalize(res)
		})
	}
	launch()
}

// commonMechanism returns the mechanism most of the winning verdict's
// attempts reported, ties broken by first occurrence — deterministic.
func commonMechanism(verdicts []Verdict, mechs []string, winner Verdict) string {
	counts := make(map[string]int)
	var order []string
	for i, v := range verdicts {
		if v != winner {
			continue
		}
		if counts[mechs[i]] == 0 {
			order = append(order, mechs[i])
		}
		counts[mechs[i]]++
	}
	best, bestN := MechNone, 0
	for _, m := range order {
		if counts[m] > bestN {
			best, bestN = m, counts[m]
		}
	}
	return best
}

// mechSuffix renders ", mech" or nothing, for attempt-log lines.
func mechSuffix(mech string) string {
	if mech == "" {
		return ""
	}
	return ", " + mech
}
