package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/lab"
	"safemeasure/internal/mailsim"
	"safemeasure/internal/scan"
	"safemeasure/internal/smtpwire"
	"safemeasure/internal/websim"
)

// SYNScan is Method #1 (§3.1): measure TCP/IP censorship with an nmap-style
// SYN scan of the potentially censored service's most common ports. The
// traffic is indistinguishable from the Internet's constant background of
// botnet scanning, which the MVR classifies and discards. Censorship is
// inferred when a port that must be open for the service to exist is not.
type SYNScan struct {
	// Ports bounds the scan size; 0 means the top 100.
	Ports int
}

// Name implements Technique.
func (*SYNScan) Name() string { return "syn-scan" }

// Run implements Technique.
func (s *SYNScan) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	n := s.Ports
	if n <= 0 {
		n = 100
	}
	res := &Result{Technique: s.Name(), Target: tgt}
	tel := newRunTel(l, s.Name())
	sc := scan.NewScanner(l.Client)
	sc.Scan(tgt.Addr, scan.TopPorts(n), func(r *scan.Result) {
		res.ProbesSent = r.ProbesSent
		tel.probe(r.ProbesSent, lab.ClientAddr, tgt.Addr, "syn-scan")
		blocked, evidence := scan.InferCensorship(r, knownOpenPorts(tgt))
		res.addEvidence("open=%d closed=%d filtered=%d",
			r.Count(scan.StateOpen), r.Count(scan.StateClosed), r.Count(scan.StateFiltered))
		if blocked {
			res.Verdict = VerdictCensored
			for port, st := range evidence {
				if st == scan.StateClosed {
					res.Mechanism = MechRST
					res.addEvidence("known-open port %d answered RST", port)
				} else if st == scan.StateFiltered {
					if res.Mechanism == "" {
						res.Mechanism = MechTimeout
					}
					res.addEvidence("known-open port %d silent", port)
				}
			}
		} else {
			res.Verdict = VerdictAccessible
			for port := range evidence {
				res.addEvidence("known-open port %d open", port)
			}
		}
		done(res)
	})
}

// spamVariants are the rotating campaign templates the spam technique
// draws from — real botnets rotate templates, and the rotation is what
// gives Figure 2's CDF its spread (every variant still lands in the spam
// region, with varying intensity).
var spamVariants = []struct {
	subject string
	body    string
}{
	{
		"CONGRATULATIONS WINNER!!!",
		"Dear friend, you have won the international lottery of $1,000,000!\n" +
			"Act now, limited time! Click here to claim your prize:\n" +
			"http://%s.megadeals.biz/claim http://%s.megadeals.biz/win http://%s.megadeals.biz/now\n" +
			"100% free! Unsubscribe anytime.",
	},
	{
		"Cheap meds — act now!!",
		"viagra and cialis, cheap meds direct to you.\n" +
			"Click here: http://%s.pharma.biz/order — limited time, 100% free shipping!!!",
	},
	{
		"You have won — claim your prize",
		"Dear friend, the lottery committee selected you as winner of $2,500,000.\n" +
			"Wire transfer available. Claim your funds: http://%s.claims.biz/now",
	},
	{
		"EARN MONEY WORKING FROM HOME!!",
		"Work from home and earn money fast! No credit check!\n" +
			"Act now: http://%s.jobs4u.biz/start http://%s.jobs4u.biz/apply",
	},
	{
		"exclusive offer inside",
		"You are a winner! Claim your 100% free gift today.\n" +
			"Click here before it expires: http://%s.offers.biz/gift\nUnsubscribe anytime.",
	},
}

// SpamTemplate builds the measurement's spam payload: deliberately spammy
// content so both the surveillance MVR and real mail filters (Figure 2's
// Proofpoint) classify it as bulk spam with no intelligence value. seq
// rotates the campaign template.
func SpamTemplate(domain string, seq int) *smtpwire.Message {
	v := spamVariants[seq%len(spamVariants)]
	host := fmt.Sprintf("c%d", seq)
	body := strings.ReplaceAll(v.body, "%s", host)
	return &smtpwire.Message{
		From:    fmt.Sprintf("promo%d@megadeals.biz", seq),
		To:      fmt.Sprintf("info@%s", domain),
		Subject: v.subject,
		Headers: map[string]string{"Precedence": "bulk"},
		Body:    body,
	}
}

// Spam is Method #2 (§3.1): measure DNS and IP censorship by behaving like
// a zone-enumerating spam botnet — MX lookup, A lookup of the exchanger,
// SMTP connect, spam message. Each stage failing (or returning a poisoned
// answer) localizes the censorship mechanism.
type Spam struct {
	// Seq differentiates sender identities across measurements.
	Seq int
}

// Name implements Technique.
func (*Spam) Name() string { return "spam" }

// Run implements Technique.
func (s *Spam) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	res := &Result{Technique: s.Name(), Target: tgt}
	tel := newRunTel(l, s.Name())

	// Stage 1: MX lookup. The GFC injects bad A records even for MX
	// queries (§3.2.3), so a poisoned answer shows up right here.
	res.ProbesSent++
	tel.probe(1, lab.ClientAddr, lab.DNSAddr, "mx-lookup")
	l.ClientDNS.Query(lab.DNSAddr, tgt.Domain, dnswire.TypeMX, func(m *dnswire.Message, err error) {
		if err != nil {
			res.Verdict = VerdictCensored
			res.Mechanism = MechTimeout
			res.addEvidence("MX lookup failed: %v", err)
			done(res)
			return
		}
		if len(m.Answers) == 0 {
			res.Verdict = VerdictInconclusive
			res.addEvidence("no MX records, rcode=%v", m.RCode)
			done(res)
			return
		}
		first := m.Answers[0]
		if first.Type == dnswire.TypeA {
			// An A answer to an MX question: the GFC poisoning signature.
			if bogon(first.A) {
				res.Verdict = VerdictCensored
				res.Mechanism = MechPoison
				res.addEvidence("MX query answered with bogon A %v", first.A)
				done(res)
				return
			}
			res.Verdict = VerdictInconclusive
			res.addEvidence("MX query answered with unexpected A %v", first.A)
			done(res)
			return
		}
		exchanger := first.Target
		res.addEvidence("MX %s pref %d", exchanger, first.Pref)

		// Stage 2: A lookup for the exchanger.
		res.ProbesSent++
		tel.probe(1, lab.ClientAddr, lab.DNSAddr, "exchanger-lookup")
		l.ClientDNS.Query(lab.DNSAddr, exchanger, dnswire.TypeA, func(m2 *dnswire.Message, err error) {
			if err != nil || len(m2.Answers) == 0 {
				res.Verdict = VerdictCensored
				res.Mechanism = MechTimeout
				res.addEvidence("exchanger A lookup failed: %v", err)
				done(res)
				return
			}
			mxAddr := m2.Answers[0].A
			if bogon(mxAddr) {
				res.Verdict = VerdictCensored
				res.Mechanism = MechPoison
				res.addEvidence("exchanger resolves to bogon %v", mxAddr)
				done(res)
				return
			}
			res.addEvidence("exchanger at %v", mxAddr)

			// Stage 3: SMTP delivery of the spam message.
			res.ProbesSent++
			tel.probe(1, lab.ClientAddr, mxAddr, "smtp-delivery")
			mailsim.SendMail(l.ClientStack, mxAddr, "client.campus.test", SpamTemplate(tgt.Domain, s.Seq), func(err error) {
				switch {
				case err == nil:
					res.Verdict = VerdictAccessible
					res.addEvidence("spam delivered to %s", tgt.Domain)
				case errors.Is(err, mailsim.ErrAborted):
					res.Verdict = VerdictCensored
					res.Mechanism = MechRST
					res.addEvidence("SMTP connection died: %v", err)
				default:
					res.Verdict = VerdictInconclusive
					res.addEvidence("SMTP error: %v", err)
				}
				done(res)
			})
		})
	})
}

// DDoS is Method #3 (§3.1): mimic a single source of an HTTP flood.
// Repeated requests both blend into attack traffic the MVR discards and
// give per-request samples of how the content is censored.
type DDoS struct {
	// Requests is the flood size; 0 means 40.
	Requests int
	// Spacing between requests; 0 means 150ms (inside the classifier's
	// rate window, as a real flood would be).
	Spacing time.Duration
}

// Name implements Technique.
func (*DDoS) Name() string { return "ddos" }

// Run implements Technique.
func (d *DDoS) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	n := d.Requests
	if n <= 0 {
		n = 40
	}
	spacing := d.Spacing
	if spacing <= 0 {
		spacing = 150 * time.Millisecond
	}
	res := &Result{Technique: d.Name(), Target: tgt}
	tel := newRunTel(l, d.Name())
	var ok, reset, timeout, other int
	remaining := n
	finishOne := func() {
		remaining--
		if remaining > 0 {
			return
		}
		res.addEvidence("samples: ok=%d reset=%d timeout=%d other=%d", ok, reset, timeout, other)
		switch {
		case reset > ok && reset >= timeout:
			res.Verdict = VerdictCensored
			res.Mechanism = MechRST
		case timeout > ok:
			res.Verdict = VerdictCensored
			res.Mechanism = MechTimeout
		case ok > 0:
			res.Verdict = VerdictAccessible
		default:
			res.Verdict = VerdictInconclusive
		}
		done(res)
	}
	for i := 0; i < n; i++ {
		delay := time.Duration(i) * spacing
		l.Sim.Schedule(delay, func() {
			res.ProbesSent++
			tel.probe(1, lab.ClientAddr, tgt.Addr, "http-flood")
			websim.GetPartial(l.ClientStack, tgt.Addr, tgt.Domain, tgt.Path, func(r *httpwire.Response, partial []byte, err error) {
				sample := &Result{}
				classifyHTTP(sample, r, partial, err)
				switch {
				case sample.Verdict == VerdictAccessible:
					ok++
				case sample.Mechanism == MechRST:
					reset++
				case sample.Mechanism == MechTimeout:
					timeout++
				default:
					other++
				}
				finishOne()
			})
		})
	}
}
