package core

import (
	"errors"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/lab"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/websim"
)

// OvertDNS is the baseline DNS measurement: a plain A query from the
// client's own address, the way existing measurement platforms do it. The
// verdict logic (bogon answers mean poisoning) matches client-side DNS
// manipulation detection in the literature.
type OvertDNS struct{}

// Name implements Technique.
func (*OvertDNS) Name() string { return "overt-dns" }

// Run implements Technique.
func (o *OvertDNS) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	res := &Result{Technique: o.Name(), Target: tgt, ProbesSent: 1}
	newRunTel(l, o.Name()).probe(1, lab.ClientAddr, lab.DNSAddr, tgt.Domain)
	l.ClientDNS.Query(lab.DNSAddr, tgt.Domain, dnswire.TypeA, func(m *dnswire.Message, err error) {
		classifyDNS(res, m, err)
		done(res)
	})
}

// classifyDNS turns a resolver outcome into a verdict, shared by the overt
// and spoofed DNS techniques.
func classifyDNS(res *Result, m *dnswire.Message, err error) {
	switch {
	case err != nil:
		res.Verdict = VerdictCensored
		res.Mechanism = MechTimeout
		res.addEvidence("query failed: %v", err)
	case len(m.Answers) == 0:
		res.Verdict = VerdictInconclusive
		res.addEvidence("empty answer, rcode=%v", m.RCode)
	case m.Answers[0].Type == dnswire.TypeA && lab.PoisonPrefix.Contains(m.Answers[0].A):
		res.Verdict = VerdictCensored
		res.Mechanism = MechPoison
		res.addEvidence("answer %v in bogon range %v", m.Answers[0].A, lab.PoisonPrefix)
	default:
		res.Verdict = VerdictAccessible
		res.addEvidence("resolved to %v", m.Answers[0].A)
	}
}

// OvertHTTP is the baseline web measurement: fetch the page from the
// client's own address and see whether the connection survives.
type OvertHTTP struct{}

// Name implements Technique.
func (*OvertHTTP) Name() string { return "overt-http" }

// Transfer-progress probe tuning. A fetch in the pristine lab completes in
// ~12ms of virtual time; one RTO-triggering loss adds ~200ms; a throttled
// pair is delayed by total-bytes/rate, hundreds of ms at preset rates. A
// slow first fetch alone cannot separate those, so the classifier re-fetches
// and takes the *minimum* latency: loss is independent per fetch (the floor
// collapses to ~12ms with high probability) while a shaper charges every
// fetch (the floor stays high).
const (
	// throttleSuspect is the first-fetch latency that triggers the
	// progress probe, and the floor that convicts throttling.
	throttleSuspect = 100 * time.Millisecond
	// throttleProbes is how many extra fetches the progress probe runs.
	throttleProbes = 6
)

// Run implements Technique.
func (o *OvertHTTP) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	res := &Result{Technique: o.Name(), Target: tgt, ProbesSent: 1}
	newRunTel(l, o.Name()).probe(1, lab.ClientAddr, tgt.Addr, tgt.Domain)
	start := l.Sim.Now()
	websim.GetPartial(l.ClientStack, tgt.Addr, tgt.Domain, tgt.Path, func(r *httpwire.Response, partial []byte, err error) {
		classifyHTTP(res, r, partial, err)
		if lat := l.Sim.Now() - start; err == nil && res.Verdict == VerdictAccessible && lat >= throttleSuspect {
			o.probeProgress(l, tgt, res, lat, done)
			return
		}
		done(res)
	})
}

// probeProgress is the transfer-progress probe: the first fetch succeeded
// but suspiciously slowly, so re-fetch several times and take the latency
// floor. A floor at or above the suspicion threshold means every attempt
// was paced — throttling-as-censorship — while a low floor clears the
// target (the slowness was loss or jitter on the path).
func (o *OvertHTTP) probeProgress(l *lab.Lab, tgt Target, res *Result, first time.Duration, done func(*Result)) {
	minLat := first
	fetches := 0
	var next func()
	next = func() {
		if fetches >= throttleProbes {
			if minLat >= throttleSuspect {
				res.Verdict = VerdictCensored
				res.Mechanism = MechThrottle
				res.addEvidence("transfer-progress probe: latency floor %v over %d fetches (threshold %v): paced by a shaper, not a lossy link",
					minLat, throttleProbes+1, throttleSuspect)
			} else {
				res.addEvidence("transfer-progress probe: first fetch %v but floor %v: lossy path, not throttling", first, minLat)
			}
			done(res)
			return
		}
		fetches++
		res.ProbesSent++
		start := l.Sim.Now()
		websim.Get(l.ClientStack, tgt.Addr, tgt.Domain, tgt.Path, func(r *httpwire.Response, err error) {
			if err == nil && r.Status == 200 {
				if lat := l.Sim.Now() - start; lat < minLat {
					minLat = lat
				}
			}
			next()
		})
	}
	next()
}

// classifyHTTP maps a fetch outcome to a verdict, shared with DDoS samples.
// partial carries whatever response bytes arrived before a failure, so a
// blockpage can be fingerprinted even when the censor truncated it mid-body
// and the exchange never parsed as a complete response.
func classifyHTTP(res *Result, r *httpwire.Response, partial []byte, err error) {
	switch {
	case err == nil && r.Status == 200:
		res.Verdict = VerdictAccessible
		res.addEvidence("HTTP 200, %d bytes", len(r.Body))
	case err == nil:
		// A block page is censorship too (e.g. 403/451 from an inline box).
		if r.Status == 403 || r.Status == 451 {
			res.Verdict = VerdictCensored
			res.Mechanism = MechClosed
			res.addEvidence("block page status %d", r.Status)
		} else {
			res.Verdict = VerdictInconclusive
			res.addEvidence("status %d", r.Status)
		}
	case blockpageStatus(partial) != 0:
		// The connection died, but the bytes that did arrive start like a
		// blockpage: a truncated forgery is still positive evidence.
		res.Verdict = VerdictCensored
		res.Mechanism = MechClosed
		res.addEvidence("truncated block page: status %d in %d partial bytes before %v",
			blockpageStatus(partial), len(partial), err)
	case errors.Is(err, tcpsim.ErrReset):
		res.Verdict = VerdictCensored
		res.Mechanism = MechRST
		res.addEvidence("connection reset: %v", err)
	case errors.Is(err, tcpsim.ErrTimeout):
		res.Verdict = VerdictCensored
		res.Mechanism = MechTimeout
		res.addEvidence("connection timed out: %v", err)
	default:
		res.Verdict = VerdictInconclusive
		res.addEvidence("error: %v", err)
	}
}

// blockpageStatus fingerprints a (possibly truncated) response prefix: a
// well-formed HTTP/1.x status line with a blocking status (403, 451) is a
// blockpage no matter how little of the body survived. Returns the status,
// or 0 when the bytes don't look like one.
func blockpageStatus(partial []byte) int {
	s := string(partial)
	for _, prefix := range []string{"HTTP/1.1 ", "HTTP/1.0 "} {
		if strings.HasPrefix(s, prefix) && len(s) >= len(prefix)+3 {
			switch s[len(prefix) : len(prefix)+3] {
			case "403":
				return 403
			case "451":
				return 451
			}
		}
	}
	return 0
}

// OvertTCP is the baseline reachability measurement: a full connect from
// the client's own address.
type OvertTCP struct{}

// Name implements Technique.
func (*OvertTCP) Name() string { return "overt-tcp" }

// Run implements Technique.
func (o *OvertTCP) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	res := &Result{Technique: o.Name(), Target: tgt, ProbesSent: 1}
	newRunTel(l, o.Name()).probe(1, lab.ClientAddr, tgt.Addr, "tcp-connect")
	finished := false
	finish := func() {
		if !finished {
			finished = true
			done(res)
		}
	}
	conn := l.ClientStack.Dial(tgt.Addr, tgt.Port)
	conn.OnConnect = func(c *tcpsim.Conn) {
		res.Verdict = VerdictAccessible
		res.addEvidence("connected to %v:%d", tgt.Addr, tgt.Port)
		c.Abort()
		finish()
	}
	conn.OnFail = func(_ *tcpsim.Conn, err error) {
		res.Verdict = VerdictCensored
		switch {
		case errors.Is(err, tcpsim.ErrReset):
			res.Mechanism = MechRST
		case errors.Is(err, tcpsim.ErrTimeout):
			res.Mechanism = MechTimeout
		}
		res.addEvidence("connect failed: %v", err)
		finish()
	}
}

// knownOpenPorts returns the ports a service of the target's kind must
// have open — the paper's example: port 80 must be open on BBC.com.
func knownOpenPorts(tgt Target) []uint16 {
	if tgt.Port != 0 && tgt.Port != 80 {
		return []uint16{tgt.Port}
	}
	return []uint16{80}
}

// bogon reports whether an address is inside the lab's poison space.
func bogon(a netip.Addr) bool { return lab.PoisonPrefix.Contains(a) }
