package core

import (
	"strings"
	"testing"

	"safemeasure/internal/lab"
)

// behaviorConfig returns a lab config for a named scenario with a named
// adversarial censor-behavior preset installed.
func behaviorConfig(t *testing.T, scenario, behavior string, seed int64) (lab.Config, Target) {
	t.Helper()
	sc, ok := lab.ScenarioByName(scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", scenario)
	}
	bp, ok := lab.BehaviorByName(behavior)
	if !ok {
		t.Fatalf("unknown censor behavior %q", behavior)
	}
	cfg := lab.Config{Seed: seed, Censor: sc.NewCensor(), Behavior: bp.Behavior}
	tgt := Target{Domain: sc.Domain, Path: sc.Path, Port: sc.Port, Addr: sc.Addr}
	return cfg, tgt
}

// TestIntermittentSingleShotFlipsButCorroborationRecovers is the acceptance
// test for the adversarial-censor hardening, the mirror image of the lossy20
// one: against an intermittent censor (EnforceProb 0.5) a single-shot HTTP
// probe of a *censored* target reports accessible whenever the censor decided
// to spare that one flow — a misclassification in the dangerous direction.
// Cross-trial corroboration re-measures from fresh connections (fresh sticky
// decisions) and either reaches a censored quorum or refuses to call it.
func TestIntermittentSingleShotFlipsButCorroborationRecovers(t *testing.T) {
	const seeds = 200
	var flipped []int64
	for seed := int64(1); seed <= seeds; seed++ {
		cfg, tgt := behaviorConfig(t, "keyword-rst", "intermittent", seed)
		res := runRetry(t, cfg, &OvertHTTP{}, tgt, SingleShot())
		switch res.Verdict {
		case VerdictAccessible:
			flipped = append(flipped, seed)
		case VerdictCensored:
			if res.Mechanism != MechRST {
				t.Fatalf("seed %d: enforced flow should RST, got %v/%q", seed, res.Verdict, res.Mechanism)
			}
		default:
			t.Fatalf("seed %d: unexpected verdict %v %v", seed, res.Verdict, res.Evidence)
		}
	}
	// EnforceProb is 0.5, so roughly half the seeds must flip; a quarter is
	// the loose floor that still proves the fault model bites.
	if len(flipped) < seeds/4 {
		t.Fatalf("only %d/%d seeds misclassified the censored target as accessible; intermittent behavior not biting", len(flipped), seeds)
	}

	// Corroboration over the flipped seeds: 5 backoff-spaced runs, each a
	// fresh connection with a fresh sticky decision. Quorum (4/5) either
	// recovers the censored verdict or the vote hangs and the verdict is
	// demoted to inconclusive — both are safe; confidently repeating the
	// single-shot "accessible" is what must become rare. Both outcomes must
	// occur across the flipped seeds. (Recovery needs the 4 post-flip
	// attempts to all draw "enforce" — a 1-in-16 event at p=0.5, which is
	// why the seed scan above is as wide as it is.)
	pol := RetryPolicy{Corroborate: 5}
	recovered, demoted := int64(-1), int64(-1)
	for _, seed := range flipped {
		cfg, tgt := behaviorConfig(t, "keyword-rst", "intermittent", seed)
		res := runRetry(t, cfg, &OvertHTTP{}, tgt, pol)
		if res.Attempts != 5 {
			t.Fatalf("seed %d: corroboration ran %d attempts, want 5", seed, res.Attempts)
		}
		if res.Confidence <= 0 || res.Confidence > 1 {
			t.Fatalf("seed %d: confidence %v outside (0,1]", seed, res.Confidence)
		}
		switch res.Verdict {
		case VerdictCensored:
			if recovered < 0 {
				recovered = seed
			}
			if res.Mechanism != MechRST {
				t.Fatalf("seed %d: corroborated censored verdict with mechanism %q, want %q", seed, res.Mechanism, MechRST)
			}
			if res.Confidence < 0.8 {
				t.Fatalf("seed %d: censored quorum with confidence %v < 0.8", seed, res.Confidence)
			}
		case VerdictInconclusive:
			if demoted < 0 {
				demoted = seed
			}
			if res.Confidence >= 0.8 {
				t.Fatalf("seed %d: demoted despite quorum-level confidence %v", seed, res.Confidence)
			}
			if !strings.Contains(strings.Join(res.Evidence, " "), "corroboration hung") {
				t.Fatalf("seed %d: demotion without hung-vote evidence: %v", seed, res.Evidence)
			}
		}
	}
	if recovered < 0 {
		t.Fatalf("no flipped seed recovered a corroborated censored verdict (flipped: %v)", flipped)
	}
	if demoted < 0 {
		t.Fatalf("no flipped seed demoted a hung vote to inconclusive (flipped: %v)", flipped)
	}
}

// TestThrottleClassifiedAsCensorshipNotLoss: the throttling censor never
// tears the connection down — the page arrives, slowly — yet the
// transfer-progress probe convicts it, because the latency floor over
// repeated fetches stays above the suspicion threshold. The contrast leg
// pins the other half of the claim: a genuinely lossy link is never
// classified as throttling, however slow an individual fetch was.
func TestThrottleClassifiedAsCensorshipNotLoss(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg, tgt := behaviorConfig(t, "keyword-rst", "throttle", seed)
		res := runRetry(t, cfg, &OvertHTTP{}, tgt, SingleShot())
		if res.Verdict != VerdictCensored || res.Mechanism != MechThrottle {
			t.Fatalf("seed %d: throttled fetch = %v/%q, want %v/%q\nevidence: %v",
				seed, res.Verdict, res.Mechanism, VerdictCensored, MechThrottle, res.Evidence)
		}
	}
	tgt := Target{Domain: "site02.test"} // the "open" scenario's domain
	for seed := int64(1); seed <= 20; seed++ {
		res := runRetry(t, lossyConfig(t, "lossy20", seed), &OvertHTTP{}, tgt, DefaultRetryPolicy())
		if res.Mechanism == MechThrottle {
			t.Fatalf("seed %d: lossy20 misclassified as throttling: %v", seed, res.Evidence)
		}
	}
}

// TestPartialBlockpageStillConvicts: the censor truncates its forged 403
// mid-body (Content-Length promises more than is sent, then FIN), so the
// exchange never parses as a complete response — but the bytes that did
// arrive fingerprint as a blockpage, which is positive evidence of blocking.
func TestPartialBlockpageStillConvicts(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg, tgt := behaviorConfig(t, "keyword-rst", "partial-blockpage", seed)
		res := runRetry(t, cfg, &OvertHTTP{}, tgt, SingleShot())
		if res.Verdict != VerdictCensored || res.Mechanism != MechClosed {
			t.Fatalf("seed %d: truncated blockpage = %v/%q, want %v/%q\nevidence: %v",
				seed, res.Verdict, res.Mechanism, VerdictCensored, MechClosed, res.Evidence)
		}
		if !strings.Contains(strings.Join(res.Evidence, " "), "truncated block page") {
			t.Fatalf("seed %d: conviction without truncated-blockpage evidence: %v", seed, res.Evidence)
		}
	}
}

// TestBehaviorRunsDeterministic: every adversarial behavior preset is
// seed-deterministic — two labs with the same seed produce byte-identical
// results, evidence log included, under corroboration (which exercises the
// backoff RNG and fresh-flow decisions hardest).
func TestBehaviorRunsDeterministic(t *testing.T) {
	for _, name := range lab.BehaviorNames() {
		pol := RetryPolicy{Corroborate: 3}
		cfgA, tgtA := behaviorConfig(t, "keyword-rst", name, 11)
		a := runRetry(t, cfgA, &OvertHTTP{}, tgtA, pol)
		cfgB, tgtB := behaviorConfig(t, "keyword-rst", name, 11)
		b := runRetry(t, cfgB, &OvertHTTP{}, tgtB, pol)
		if a.Verdict != b.Verdict || a.Mechanism != b.Mechanism ||
			a.Attempts != b.Attempts || a.Confidence != b.Confidence ||
			a.ProbesSent != b.ProbesSent {
			t.Fatalf("%s: nondeterministic run: %+v vs %+v", name, a, b)
		}
		if strings.Join(a.Evidence, "\n") != strings.Join(b.Evidence, "\n") {
			t.Fatalf("%s: evidence diverged:\n%v\n%v", name, a.Evidence, b.Evidence)
		}
	}
}
