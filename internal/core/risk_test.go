package core

import (
	"encoding/json"
	"net/netip"
	"testing"

	"safemeasure/internal/lab"
	"safemeasure/internal/spoof"
)

func TestEvaluateRiskEmptyLab(t *testing.T) {
	// A lab in which nothing ever ran: the surveillance system knows
	// nothing about anyone.
	l, err := lab.New(lab.Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	l.Run()
	rep := EvaluateRisk(l, lab.ClientAddr)
	if rep.TrafficRetained || rep.AnalystAlerts != 0 || rep.Score != 0 ||
		rep.Flagged || rep.ImplicatedUsers != 0 || rep.AttributionEntropy != 0 {
		t.Fatalf("empty lab produced a non-zero risk report: %v", rep)
	}
}

func TestEvaluateRiskFlaggedClient(t *testing.T) {
	// An overt probe of a censored domain must leave an incriminating
	// report: traffic retained, alerts in the dossier, flagged.
	res, l := runOne(t, lab.Config{Seed: 42}, &OvertHTTP{}, Target{Domain: "banned.test"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("overt probe verdict: %v", res)
	}
	rep := EvaluateRisk(l, lab.ClientAddr)
	if !rep.TrafficRetained {
		t.Errorf("overt probe traffic not retained: %v", rep)
	}
	if rep.AnalystAlerts == 0 || rep.Score <= 0 {
		t.Errorf("overt probe left no analyst evidence: %v", rep)
	}
	if !rep.Flagged {
		t.Errorf("overt probe not flagged: %v", rep)
	}
	if rep.User != lab.ClientAddr {
		t.Errorf("report user = %v, want %v", rep.User, lab.ClientAddr)
	}
}

func TestEvaluateRiskCleanClient(t *testing.T) {
	// Another host's overt probe must not implicate an uninvolved address.
	res, l := runOne(t, lab.Config{Seed: 43}, &OvertHTTP{}, Target{Domain: "banned.test"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("overt probe verdict: %v", res)
	}
	bystander := netip.MustParseAddr("10.1.0.250") // in the AS, never sent a packet
	rep := EvaluateRisk(l, bystander)
	if rep.TrafficRetained || rep.AnalystAlerts != 0 || rep.Score != 0 || rep.Flagged {
		t.Fatalf("clean bystander implicated: %v", rep)
	}
}

func TestEvaluateRiskAttributionEntropy(t *testing.T) {
	// Spoofed cover spreads alerts over many users; the analyst's
	// alert-count distribution gains entropy compared to an overt probe.
	overtRes, lOvert := runOne(t, lab.Config{Seed: 44}, &OvertDNS{}, Target{Domain: "twitter.com"})
	if overtRes.Verdict != VerdictCensored {
		t.Fatalf("overt: %v", overtRes)
	}
	overt := EvaluateRisk(lOvert, lab.ClientAddr)

	spoofRes, lSpoof := runOne(t, lab.Config{Seed: 44, SpoofPolicy: spoof.PolicySlash24},
		&SpoofedDNS{Covers: 8}, Target{Domain: "twitter.com"})
	if spoofRes.Verdict != VerdictCensored {
		t.Fatalf("spoofed: %v", spoofRes)
	}
	spoofed := EvaluateRisk(lSpoof, lab.ClientAddr)
	if spoofed.AttributionEntropy <= overt.AttributionEntropy {
		t.Fatalf("cover did not raise attribution entropy: spoofed %.2f <= overt %.2f",
			spoofed.AttributionEntropy, overt.AttributionEntropy)
	}
	if len(spoofRes.CoverAddrs) == 0 {
		t.Fatal("spoofed-dns recorded no cover addresses")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		tech, ok := ByName(name)
		if !ok || tech.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, tech, ok)
		}
	}
	// Fresh instance each call: configuring one must not leak into the next.
	a, _ := ByName("ddos")
	a.(*DDoS).Requests = 3
	b, _ := ByName("ddos")
	if b.(*DDoS).Requests != 0 {
		t.Fatal("ByName returned a shared instance")
	}
	if _, ok := ByName("no-such-technique"); ok {
		t.Fatal("ByName invented a technique")
	}
}

func TestRecordShape(t *testing.T) {
	res, l := runOne(t, lab.Config{Seed: 45, SpoofPolicy: spoof.PolicySlash24},
		&SpoofedDNS{Covers: 4}, Target{Domain: "twitter.com"})
	rec := NewRecord(res, EvaluateRisk(l, lab.ClientAddr), 45, l.Sim.Now())
	if !rec.Stealth || rec.Seed != 45 || rec.Technique != "spoofed-dns" {
		t.Fatalf("record metadata: %+v", rec)
	}
	if rec.ElapsedMS <= 0 {
		t.Fatalf("elapsed_ms = %v, want > 0 (virtual time advanced)", rec.ElapsedMS)
	}
	if len(rec.CoverAddresses) != len(res.CoverAddrs) {
		t.Fatalf("cover addresses: %v vs %v", rec.CoverAddresses, res.CoverAddrs)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"technique", "target", "seed", "verdict", "elapsed_ms",
		"cover_addresses", "suspicion_score", "attribution_entropy", "flagged"} {
		if _, ok := m[key]; !ok {
			t.Errorf("record JSON missing %q: %s", key, raw)
		}
	}
	// Same seed, fresh lab: the record must be byte-identical (virtual
	// elapsed time included).
	res2, l2 := runOne(t, lab.Config{Seed: 45, SpoofPolicy: spoof.PolicySlash24},
		&SpoofedDNS{Covers: 4}, Target{Domain: "twitter.com"})
	raw2, err := json.Marshal(NewRecord(res2, EvaluateRisk(l2, lab.ClientAddr), 45, l2.Sim.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("records differ across identical runs:\n%s\n%s", raw, raw2)
	}
}
