// Package core implements the paper's primary contribution: censorship
// measurement techniques designed to reduce risk to the measuring user, plus
// overt baselines and a risk evaluator that asks the lab's surveillance
// system whether the measurer was noticed.
//
// Two families of techniques (paper §3 and §4):
//
//	Mimicking population traffic (look like malware the MVR discards):
//	  SYNScan   — Method #1, nmap-style scanning of a censored service
//	  Spam      — Method #2, MX → A → SMTP → spam message
//	  DDoS      — Method #3, one source of an HTTP flood
//
//	Manipulating population traffic (spoofed cover, confuse attribution):
//	  SpoofedDNS — Fig 3a, stateless: spoofed queries from cover addresses
//	  SpoofedSYN — Fig 3a variant: spoofed SYN/RST reachability probes
//	  Stateful   — Fig 3b: spoofed TCP to a controlled server whose
//	               replies are TTL-limited to die before the cover hosts
//
//	Baselines (what OONI/Centinel-style platforms do openly):
//	  OvertDNS, OvertHTTP, OvertTCP
//
// Every technique returns a Result with a censorship Verdict and evidence;
// EvaluateRisk then reports whether the surveillance pipeline retained the
// traffic, how the analyst scored the user, and whether they were flagged.
package core

import (
	"fmt"
	"net/netip"

	"safemeasure/internal/lab"
	"safemeasure/internal/netsim"
	"safemeasure/internal/telemetry"
)

// Verdict is a technique's conclusion about the target.
type Verdict int

// Verdicts.
const (
	VerdictInconclusive Verdict = iota
	VerdictAccessible
	VerdictCensored
)

// String returns the verdict name.
func (v Verdict) String() string {
	return [...]string{"inconclusive", "accessible", "censored"}[v]
}

// Mechanisms reported in Result.Mechanism.
const (
	MechRST      = "rst-injection"
	MechPoison   = "dns-poison"
	MechTimeout  = "timeout-or-blackhole"
	MechClosed   = "connection-refused"
	MechThrottle = "throttle"
	MechNone     = ""
)

// Target names what to measure. Domain is required for DNS/HTTP-level
// techniques; Addr/Port for TCP/IP-level ones (Addr defaults to the lab's
// hosting address for Domain, Port to 80).
type Target struct {
	Domain string
	Addr   netip.Addr
	Port   uint16
	// Path is the URL path fetched by HTTP techniques; a keyword-bearing
	// path (e.g. "/falun") exercises keyword censorship.
	Path string
}

// resolve fills defaults from the lab.
func (t Target) resolve(l *lab.Lab) Target {
	if !t.Addr.IsValid() && t.Domain != "" {
		t.Addr = l.SiteAddr(t.Domain)
	}
	if t.Port == 0 {
		t.Port = 80
	}
	if t.Path == "" {
		t.Path = "/"
	}
	return t
}

// String renders the target compactly.
func (t Target) String() string {
	if t.Domain != "" {
		return fmt.Sprintf("%s%s", t.Domain, t.Path)
	}
	return fmt.Sprintf("%v:%d", t.Addr, t.Port)
}

// Result is one completed measurement.
type Result struct {
	Technique string
	Target    Target
	Verdict   Verdict
	// Mechanism is the interference mechanism the evidence points to.
	Mechanism string
	Evidence  []string
	// ProbesSent counts measurement packets or transactions initiated by
	// the client itself.
	ProbesSent int
	// CoverSent counts spoofed cover packets emitted on top.
	CoverSent int
	// CoverAddrs lists the spoofed cover addresses the technique planned to
	// send from (empty for techniques that use no spoofed cover).
	CoverAddrs []netip.Addr
	// Attempts is how many times the technique ran before the verdict was
	// final (see RunWithRetry); 0 means the technique ran outside a retry
	// policy, which is equivalent to 1.
	Attempts int
	// Confidence is the corroboration agreement fraction (winning votes /
	// attempts) when the run used cross-trial corroboration
	// (RetryPolicy.Corroborate); 0 means the run was not corroborated.
	Confidence float64
}

func (r *Result) addEvidence(format string, args ...any) {
	r.Evidence = append(r.Evidence, fmt.Sprintf(format, args...))
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s %s => %v", r.Technique, r.Target, r.Verdict)
	if r.Mechanism != "" {
		s += " (" + r.Mechanism + ")"
	}
	return s
}

// Technique is a runnable measurement. Run schedules work in the lab's
// virtual time and calls done exactly once; callers drive l.Run() (or
// RunFor) to completion.
type Technique interface {
	Name() string
	Run(l *lab.Lab, tgt Target, done func(*Result))
}

// All returns one instance of every technique, baselines first — the set
// the E11 comparison matrix sweeps.
func All() []Technique {
	return []Technique{
		&OvertDNS{}, &OvertHTTP{}, &OvertTCP{},
		&SYNScan{}, &Spam{}, &DDoS{},
		&SpoofedDNS{}, &SpoofedSYN{}, &Stateful{},
	}
}

// ByName returns a fresh instance of the technique with the given name, so
// callers may configure and run it without sharing state with other runs.
func ByName(name string) (Technique, bool) {
	for _, t := range All() {
		if t.Name() == name {
			return t, true
		}
	}
	return nil, false
}

// Names lists every technique name in All() order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.Name()
	}
	return out
}

// runTel bundles the telemetry handles a technique resolves once per Run:
// per-technique labeled probe/cover counters plus the lab's tracer. The zero
// value (telemetry disabled) is fully inert — every method is nil-safe.
type runTel struct {
	probes, cover *telemetry.Counter
	trace         *telemetry.Tracer
	sim           *netsim.Sim
}

// newRunTel resolves the technique's counter handles. Label strings are only
// built when the lab actually carries a registry.
func newRunTel(l *lab.Lab, technique string) runTel {
	t := runTel{trace: l.Cfg.Trace, sim: l.Sim}
	if reg := l.Cfg.Telemetry; reg != nil {
		t.probes = reg.Counter(telemetry.Labels("core_probes_total", "technique", technique))
		t.cover = reg.Counter(telemetry.Labels("core_cover_total", "technique", technique))
	}
	return t
}

// probe records n measurement probes from src toward dst.
func (t runTel) probe(n int, src, dst netip.Addr, detail string) {
	t.probes.Add(int64(n))
	if tr := t.trace; tr != nil {
		tr.Emit(int64(t.sim.Now()), telemetry.EvProbeSent, src.String(), dst.String(), detail)
	}
}

// coverSent records one spoofed cover packet from src toward dst.
func (t runTel) coverSent(src, dst netip.Addr, detail string) {
	t.cover.Inc()
	if tr := t.trace; tr != nil {
		tr.Emit(int64(t.sim.Now()), telemetry.EvCoverSent, src.String(), dst.String(), detail)
	}
}

// Stealth reports whether a technique is one of the paper's risk-reducing
// designs (as opposed to an overt baseline).
func Stealth(t Technique) bool {
	switch t.(type) {
	case *OvertDNS, *OvertHTTP, *OvertTCP:
		return false
	default:
		return true
	}
}
