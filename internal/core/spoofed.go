package core

import (
	"net/netip"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
	"safemeasure/internal/spoof"
)

// SpoofedDNS is the stateless mimicry of Figure 3a: the client measures DNS
// censorship with its own query while emitting identical queries spoofed
// from cover addresses in its network. From the surveillance system's
// viewpoint, many hosts asked the censored question; attributing the
// measurement to one individual requires evidence it does not have.
type SpoofedDNS struct {
	// Covers is how many spoofed cover queries to send; 0 means 8, a
	// negative value disables cover entirely (bare probe).
	Covers int
}

// Name implements Technique.
func (*SpoofedDNS) Name() string { return "spoofed-dns" }

// Run implements Technique.
func (s *SpoofedDNS) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	n := s.Covers
	if n == 0 {
		n = 8
	} else if n < 0 {
		n = 0
	}
	res := &Result{Technique: s.Name(), Target: tgt}
	tel := newRunTel(l, s.Name())

	covers := spoof.CoverAddrs(l.Cfg.SpoofPolicy, lab.ClientAddr, n)
	res.CoverAddrs = covers
	for i, cover := range covers {
		cover := cover
		// Space cover queries like organic lookups, bracketing the real one.
		l.Sim.Schedule(time.Duration(i)*7*time.Millisecond, func() {
			q := dnswire.NewQuery(uint16(0x4000+i), tgt.Domain, dnswire.TypeA)
			wire, err := q.Marshal()
			if err != nil {
				return
			}
			raw, err := packet.BuildUDP(cover, lab.DNSAddr, packet.DefaultTTL,
				&packet.UDP{SrcPort: 5353, DstPort: 53, Payload: wire})
			if err != nil {
				return
			}
			res.CoverSent++
			tel.coverSent(cover, lab.DNSAddr, "spoofed-query")
			l.Client.SendIP(raw)
		})
	}
	if len(covers) == 0 && n > 0 {
		res.addEvidence("no spoofing capability (%v policy): running without cover", l.Cfg.SpoofPolicy)
	}

	// The real measurement, indistinguishable from the covers.
	mid := time.Duration(len(covers)/2) * 7 * time.Millisecond
	l.Sim.Schedule(mid, func() {
		res.ProbesSent++
		tel.probe(1, lab.ClientAddr, lab.DNSAddr, tgt.Domain)
		l.ClientDNS.Query(lab.DNSAddr, tgt.Domain, dnswire.TypeA, func(m *dnswire.Message, err error) {
			classifyDNS(res, m, err)
			done(res)
		})
	})
}

// SpoofedSYN is the stateless IP-reachability probe of §4.1: send a TCP SYN,
// check for the SYN/ACK, answer with RST — while spoofed copies from cover
// addresses elicit exactly the same packets from the covers' own kernels
// (an unexpected SYN/ACK is RST'd by any OS), making the measurer's RST
// indistinguishable from the crowd's.
type SpoofedSYN struct {
	// Covers is how many spoofed SYNs to send; 0 means 8.
	Covers int
	// Timeout before silence is called a drop; 0 means 300ms.
	Timeout time.Duration
}

// Name implements Technique.
func (*SpoofedSYN) Name() string { return "spoofed-syn" }

// Run implements Technique.
func (s *SpoofedSYN) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	tgt = tgt.resolve(l)
	n := s.Covers
	if n <= 0 {
		n = 8
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 300 * time.Millisecond
	}
	res := &Result{Technique: s.Name(), Target: tgt}
	tel := newRunTel(l, s.Name())
	const probePort = 61000
	l.ClientStack.IgnorePort(probePort) // raw probe: keep the stack silent

	finished := false
	finish := func() {
		if !finished {
			finished = true
			done(res)
		}
	}

	l.Client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if finished || pkt.TCP == nil || pkt.IP.Src != tgt.Addr ||
			pkt.IP.Dst != lab.ClientAddr || pkt.TCP.DstPort != probePort {
			return
		}
		switch {
		case pkt.TCP.Flags&packet.TCPSyn != 0 && pkt.TCP.Flags&packet.TCPAck != 0:
			res.Verdict = VerdictAccessible
			res.addEvidence("SYN/ACK from %v:%d", tgt.Addr, tgt.Port)
			// The RST that doubles as cover traffic (§4.1).
			rst := &packet.TCP{SrcPort: probePort, DstPort: tgt.Port, Seq: pkt.TCP.Ack, Flags: packet.TCPRst}
			if out, err := packet.BuildTCP(lab.ClientAddr, tgt.Addr, packet.DefaultTTL, rst); err == nil {
				l.Client.SendIP(out)
			}
			finish()
		case pkt.TCP.Flags&packet.TCPRst != 0:
			res.Verdict = VerdictCensored
			res.Mechanism = MechRST
			res.addEvidence("RST for SYN to %v:%d", tgt.Addr, tgt.Port)
			finish()
		}
	})

	sendSYN := func(src netip.Addr, srcPort uint16) {
		syn := &packet.TCP{SrcPort: srcPort, DstPort: tgt.Port, Seq: 0x51a0, Flags: packet.TCPSyn, Window: 1024}
		if raw, err := packet.BuildTCP(src, tgt.Addr, packet.DefaultTTL, syn); err == nil {
			l.Client.SendIP(raw)
		}
	}

	covers := spoof.CoverAddrs(l.Cfg.SpoofPolicy, lab.ClientAddr, n)
	res.CoverAddrs = covers
	for i, cover := range covers {
		cover := cover
		l.Sim.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			res.CoverSent++
			tel.coverSent(cover, tgt.Addr, "spoofed-syn")
			sendSYN(cover, probePort)
		})
	}
	mid := time.Duration(len(covers)/2) * 5 * time.Millisecond
	l.Sim.Schedule(mid, func() {
		res.ProbesSent++
		tel.probe(1, lab.ClientAddr, tgt.Addr, "syn-probe")
		sendSYN(lab.ClientAddr, probePort)
	})
	l.Sim.Schedule(mid+timeout, func() {
		if !finished {
			res.Verdict = VerdictCensored
			res.Mechanism = MechTimeout
			res.addEvidence("no answer from %v:%d within %v", tgt.Addr, tgt.Port, timeout)
			finish()
		}
	})
}
