package core

import (
	"time"
)

// Record is the machine-readable form of one completed measurement: the
// Result, the RiskReport, and run metadata, flattened into a stable JSON
// shape. cmd/safemeasure -json emits one Record; the campaign subsystem
// streams one per run to its JSONL sink, so ad-hoc runs and campaign
// post-processing share a record format.
//
// ElapsedMS is *virtual* milliseconds — how much simulated time the run
// consumed — so records are byte-identical across repeated runs of the same
// seed regardless of host speed or scheduling.
type Record struct {
	Technique      string   `json:"technique"`
	Target         string   `json:"target"`
	Seed           int64    `json:"seed"`
	Stealth        bool     `json:"stealth"`
	Verdict        string   `json:"verdict"`
	Mechanism      string   `json:"mechanism,omitempty"`
	Probes         int      `json:"probes"`
	Cover          int      `json:"cover"`
	Attempts       int      `json:"attempts"`
	Confidence     float64  `json:"confidence,omitempty"`
	CoverAddresses []string `json:"cover_addresses,omitempty"`
	Evidence       []string `json:"evidence,omitempty"`
	ElapsedMS      float64  `json:"elapsed_ms"`
	Retained       bool     `json:"traffic_retained"`
	Alerts         int      `json:"analyst_alerts"`
	Score          float64  `json:"suspicion_score"`
	Entropy        float64  `json:"attribution_entropy"`
	Implicated     int      `json:"implicated_users"`
	Flagged        bool     `json:"flagged"`
}

// NewRecord flattens a measurement and its risk report. seed is the lab
// seed the run used; elapsed is the virtual time the simulator consumed.
func NewRecord(res *Result, risk RiskReport, seed int64, elapsed time.Duration) Record {
	rec := Record{
		Technique:  res.Technique,
		Target:     res.Target.String(),
		Seed:       seed,
		Verdict:    res.Verdict.String(),
		Mechanism:  res.Mechanism,
		Probes:     res.ProbesSent,
		Cover:      res.CoverSent,
		Attempts:   max(res.Attempts, 1),
		Confidence: res.Confidence,
		Evidence:   res.Evidence,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Retained:   risk.TrafficRetained,
		Alerts:     risk.AnalystAlerts,
		Score:      risk.Score,
		Entropy:    risk.AttributionEntropy,
		Implicated: risk.ImplicatedUsers,
		Flagged:    risk.Flagged,
	}
	if t, ok := ByName(res.Technique); ok {
		rec.Stealth = Stealth(t)
	}
	for _, a := range res.CoverAddrs {
		rec.CoverAddresses = append(rec.CoverAddresses, a.String())
	}
	return rec
}
