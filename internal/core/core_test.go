package core

import (
	"fmt"
	"net/netip"
	"safemeasure/internal/dnswire"
	"safemeasure/internal/httpwire"
	"safemeasure/internal/tcpsim"
	"strings"
	"testing"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/spoof"
)

// runOne builds a fresh lab, runs one technique against one target, drains
// the simulator, and returns the result.
func runOne(t testing.TB, cfg lab.Config, tech Technique, tgt Target) (*Result, *lab.Lab) {
	t.Helper()
	if cfg.PopulationSize == 0 {
		cfg.PopulationSize = 8
	}
	l, err := lab.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	tech.Run(l, tgt, func(r *Result) { res = r })
	l.Run()
	if res == nil {
		t.Fatalf("%s never completed", tech.Name())
	}
	return res, l
}

func TestOvertDNSCensored(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 1}, &OvertDNS{}, Target{Domain: "twitter.com"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechPoison {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertDNSAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 2}, &OvertDNS{}, Target{Domain: "site03.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertHTTPKeywordCensored(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 3}, &OvertHTTP{}, Target{Domain: "site03.test", Path: "/falun"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechRST {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertHTTPAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 4}, &OvertHTTP{}, Target{Domain: "site03.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertHTTPHostBlocked(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 5}, &OvertHTTP{}, Target{Domain: "banned.test"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechRST {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertTCPBlackholed(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
	res, _ := runOne(t, lab.Config{Censor: cfg, Seed: 6}, &OvertTCP{}, Target{Addr: lab.SensitiveAddr, Port: 80})
	if res.Verdict != VerdictCensored || res.Mechanism != MechTimeout {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestOvertTCPAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 7}, &OvertTCP{}, Target{Addr: lab.WebAddr, Port: 80})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSYNScanDetectsBlackhole(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
	res, _ := runOne(t, lab.Config{Censor: cfg, Seed: 8}, &SYNScan{Ports: 30}, Target{Domain: "banned.test"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechTimeout {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.ProbesSent != 30 {
		t.Fatalf("probes = %d", res.ProbesSent)
	}
}

func TestSYNScanDetectsPortBlock(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.BlockedPorts = []uint16{80}
	res, _ := runOne(t, lab.Config{Censor: cfg, Seed: 9}, &SYNScan{Ports: 10}, Target{Domain: "banned.test"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSYNScanAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 10}, &SYNScan{Ports: 30}, Target{Domain: "site03.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSpamDetectsDNSPoison(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 11}, &Spam{}, Target{Domain: "twitter.com"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechPoison {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSpamDeliversToUncensoredDomain(t *testing.T) {
	res, l := runOne(t, lab.Config{Seed: 12}, &Spam{}, Target{Domain: "site04.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if len(l.Mail.Received) != 1 || l.Mail.Received[0].To != "info@site04.test" {
		t.Fatalf("mail: %+v", l.Mail.Received)
	}
}

func TestSpamDetectsMailBlackhole(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.MailAddr, 32)}
	res, _ := runOne(t, lab.Config{Censor: cfg, Seed: 13}, &Spam{}, Target{Domain: "site04.test"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestDDoSDetectsKeywordRST(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 14}, &DDoS{Requests: 20}, Target{Domain: "site03.test", Path: "/falun"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechRST {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.ProbesSent != 20 {
		t.Fatalf("probes = %d", res.ProbesSent)
	}
}

func TestDDoSAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{Seed: 15}, &DDoS{Requests: 20}, Target{Domain: "site03.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSpoofedDNSCensoredWithCover(t *testing.T) {
	res, l := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 16},
		&SpoofedDNS{Covers: 6}, Target{Domain: "youtube.com"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechPoison {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.CoverSent != 6 {
		t.Fatalf("covers = %d", res.CoverSent)
	}
	if l.SAV.Dropped != 0 {
		t.Fatalf("SAV dropped %d cover packets under /24 policy", l.SAV.Dropped)
	}
}

func TestSpoofedDNSStrictPolicyNoCover(t *testing.T) {
	res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicyStrict, Seed: 17},
		&SpoofedDNS{Covers: 6}, Target{Domain: "youtube.com"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.CoverSent != 0 {
		t.Fatalf("covers sent under strict policy: %d", res.CoverSent)
	}
	if !strings.Contains(strings.Join(res.Evidence, " "), "no spoofing capability") {
		t.Fatalf("evidence: %v", res.Evidence)
	}
}

func TestSpoofedSYNAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 18},
		&SpoofedSYN{Covers: 5}, Target{Addr: lab.WebAddr, Port: 80})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.CoverSent != 5 {
		t.Fatalf("covers = %d", res.CoverSent)
	}
}

func TestSpoofedSYNBlackholed(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
	res, _ := runOne(t, lab.Config{Censor: cfg, SpoofPolicy: spoof.PolicySlash24, Seed: 19},
		&SpoofedSYN{Covers: 5}, Target{Addr: lab.SensitiveAddr, Port: 80})
	if res.Verdict != VerdictCensored || res.Mechanism != MechTimeout {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestSpoofedSYNClosedPortRST(t *testing.T) {
	res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 20},
		&SpoofedSYN{Covers: 3}, Target{Addr: lab.WebAddr, Port: 81})
	if res.Verdict != VerdictCensored || res.Mechanism != MechRST {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestStatefulDetectsKeywordCensorship(t *testing.T) {
	res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 21},
		&Stateful{Covers: 4}, Target{Domain: "site03.test", Path: "/falun"})
	if res.Verdict != VerdictCensored || res.Mechanism != MechRST {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
	if res.CoverSent == 0 {
		t.Fatal("no cover flows")
	}
}

func TestStatefulAccessible(t *testing.T) {
	res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 22},
		&Stateful{Covers: 4}, Target{Domain: "site03.test"})
	if res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v %v", res, res.Evidence)
	}
}

func TestStatefulTTLLimitedRepliesDieBeforeClients(t *testing.T) {
	l, err := lab.New(lab.Config{PopulationSize: 8, SpoofPolicy: spoof.PolicySlash24, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// Spoof live population hosts so the replay hazard is real.
	var covers []netip.Addr
	for _, a := range l.PopulationAddrs() {
		if a.As4()[2] == 0 { // client's /24
			covers = append(covers, a)
		}
	}
	tech := &Stateful{Sources: covers}
	var res *Result
	tech.Run(l, Target{Domain: "site03.test"}, func(r *Result) { res = r })
	before := make(map[netip.Addr]int)
	l.Run()
	_ = before
	if res == nil || res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v", res)
	}
	// No population host received anything from the measurement server:
	// the TTL-limited replies died at the edge.
	for _, u := range l.Population {
		if u.Host.Received > 0 {
			t.Fatalf("population host %v received %d packets", u.Host.Addr, u.Host.Received)
		}
	}
}

func TestStatefulRSTReplayAblation(t *testing.T) {
	// The pitfall the paper's TTL limiting avoids: with full-TTL replies,
	// the spoofed clients' real kernels see the SYN/ACKs and fire RSTs,
	// which tear down the server-side flows and corrupt the measurement.
	l, err := lab.New(lab.Config{PopulationSize: 8, SpoofPolicy: spoof.PolicySlash24, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	var covers []netip.Addr
	for _, a := range l.PopulationAddrs() {
		if a.As4()[2] == 0 {
			covers = append(covers, a)
		}
	}
	if len(covers) == 0 {
		t.Fatal("no in-/24 population")
	}
	tech := &Stateful{Sources: covers, ReplyTTL: 64}
	var res *Result
	tech.Run(l, Target{Domain: "site03.test"}, func(r *Result) { res = r })
	l.Run()
	// The uncensored target is now misreported because cover kernels RST.
	if res.Verdict != VerdictCensored {
		t.Fatalf("expected corrupted verdict without TTL limiting, got %v %v", res.Verdict, res.Evidence)
	}
}

func TestRiskOvertVsStealth(t *testing.T) {
	// The headline comparison: an overt probe gets the user flagged, the
	// malware-mimicry probes do not.
	overt, lOvert := runOne(t, lab.Config{Seed: 25}, &OvertHTTP{}, Target{Domain: "banned.test"})
	if overt.Verdict != VerdictCensored {
		t.Fatalf("overt: %v", overt)
	}
	overtRisk := EvaluateRisk(lOvert, lab.ClientAddr)
	if !overtRisk.Flagged {
		t.Fatalf("overt probe not flagged: %v", overtRisk)
	}

	cfgBlackhole := lab.DefaultCensorConfig()
	cfgBlackhole.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.SensitiveAddr, 32)}
	scanRes, lScan := runOne(t, lab.Config{Censor: cfgBlackhole, Seed: 26}, &SYNScan{Ports: 100}, Target{Domain: "banned.test"})
	if scanRes.Verdict != VerdictCensored {
		t.Fatalf("scan: %v", scanRes)
	}
	scanRisk := EvaluateRisk(lScan, lab.ClientAddr)
	if scanRisk.Flagged {
		t.Fatalf("scanning probe flagged: %v", scanRisk)
	}
	if scanRisk.Score >= overtRisk.Score {
		t.Fatalf("scan score %.2f >= overt score %.2f", scanRisk.Score, overtRisk.Score)
	}
}

func TestRiskSpamNotFlagged(t *testing.T) {
	res, l := runOne(t, lab.Config{Seed: 27}, &Spam{}, Target{Domain: "twitter.com"})
	if res.Verdict != VerdictCensored {
		t.Fatalf("spam: %v", res)
	}
	risk := EvaluateRisk(l, lab.ClientAddr)
	if risk.Flagged {
		t.Fatalf("spam probe flagged: %v", risk)
	}
}

func TestAllTechniquesComplete(t *testing.T) {
	for _, tech := range All() {
		res, _ := runOne(t, lab.Config{SpoofPolicy: spoof.PolicySlash24, Seed: 28}, tech, Target{Domain: "site05.test"})
		if res.Verdict == VerdictInconclusive {
			t.Errorf("%s inconclusive on accessible target: %v", tech.Name(), res.Evidence)
		}
	}
}

func TestStealthClassifier(t *testing.T) {
	stealth := 0
	for _, tech := range All() {
		if Stealth(tech) {
			stealth++
		}
	}
	if stealth != 6 {
		t.Fatalf("stealth techniques = %d, want 6", stealth)
	}
}

func TestVerdictAndResultStrings(t *testing.T) {
	if VerdictCensored.String() != "censored" || VerdictAccessible.String() != "accessible" {
		t.Fatal("verdict names")
	}
	r := &Result{Technique: "t", Target: Target{Domain: "d.test", Path: "/"}, Verdict: VerdictCensored, Mechanism: MechRST}
	if !strings.Contains(r.String(), "rst-injection") || !strings.Contains(r.String(), "d.test") {
		t.Fatalf("result string: %s", r)
	}
}

func TestCalibrateReplyTTL(t *testing.T) {
	l, err := lab.New(lab.Config{PopulationSize: 4, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	var gotTTL uint8
	var gotHops int
	CalibrateReplyTTL(l, lab.ClientAddr, func(ttl uint8, hops int) {
		gotTTL, gotHops = ttl, hops
	})
	l.Run()
	// Lab geometry: measure server -> border -> edge -> client = 3 hops;
	// reply TTL 2 expires at the edge, one hop short of the client.
	if gotHops != 3 || gotTTL != 2 {
		t.Fatalf("hops=%d ttl=%d, want 3/2", gotHops, gotTTL)
	}
}

func TestCalibrateReplyTTLBlackholedPath(t *testing.T) {
	cfg := lab.DefaultCensorConfig()
	cfg.Blackholed = []netip.Prefix{netip.PrefixFrom(lab.ClientAddr, 32)}
	l, err := lab.New(lab.Config{PopulationSize: 4, Censor: cfg, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	called := false
	CalibrateReplyTTL(l, lab.ClientAddr, func(ttl uint8, hops int) {
		called = true
		if ttl != 0 || hops != 0 {
			t.Errorf("blackholed path calibrated to ttl=%d hops=%d", ttl, hops)
		}
	})
	l.Run()
	if !called {
		t.Fatal("calibration never finished")
	}
}

func TestStatefulAutoTTL(t *testing.T) {
	l, err := lab.New(lab.Config{PopulationSize: 8, SpoofPolicy: spoof.PolicySlash24, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	tech := &Stateful{Covers: 3, AutoTTL: true}
	var res *Result
	tech.Run(l, Target{Domain: "site03.test"}, func(r *Result) { res = r })
	l.Run()
	if res == nil || res.Verdict != VerdictAccessible {
		t.Fatalf("res = %v", res)
	}
	// The calibrated TTL must still keep server replies away from covers.
	for _, u := range l.Population {
		if u.Host.Received > 0 {
			t.Fatalf("cover %v received %d packets under AutoTTL", u.Host.Addr, u.Host.Received)
		}
	}
}

func TestTechniquesRobustUnderJitter(t *testing.T) {
	// Timing noise must not change verdicts: run every technique against an
	// accessible target and a representative censored target with 2ms of
	// per-packet jitter on every link.
	for _, tech := range All() {
		cfg := lab.Config{SpoofPolicy: spoof.PolicySlash24, LinkJitter: 2 * time.Millisecond, Seed: 40}
		res, _ := runOne(t, cfg, tech, Target{Domain: "site05.test"})
		if res.Verdict != VerdictAccessible {
			t.Errorf("%s under jitter: accessible target => %v (%v)", tech.Name(), res.Verdict, res.Evidence)
		}
	}
	// Censored keyword path for the HTTP-level techniques.
	for _, tech := range []Technique{&OvertHTTP{}, &DDoS{Requests: 15}, &Stateful{Covers: 3}} {
		cfg := lab.Config{SpoofPolicy: spoof.PolicySlash24, LinkJitter: 2 * time.Millisecond, Seed: 41}
		res, _ := runOne(t, cfg, tech, Target{Domain: "site05.test", Path: "/falun"})
		if res.Verdict != VerdictCensored {
			t.Errorf("%s under jitter: censored target => %v (%v)", tech.Name(), res.Verdict, res.Evidence)
		}
	}
}

func TestClassifyHTTPBranches(t *testing.T) {
	cases := []struct {
		resp      *httpwire.Response
		err       error
		verdict   Verdict
		mechanism string
	}{
		{&httpwire.Response{Status: 200}, nil, VerdictAccessible, MechNone},
		{&httpwire.Response{Status: 451}, nil, VerdictCensored, MechClosed},
		{&httpwire.Response{Status: 403}, nil, VerdictCensored, MechClosed},
		{&httpwire.Response{Status: 302}, nil, VerdictInconclusive, MechNone},
		{nil, fmt.Errorf("wrap: %w", tcpsim.ErrReset), VerdictCensored, MechRST},
		{nil, fmt.Errorf("wrap: %w", tcpsim.ErrTimeout), VerdictCensored, MechTimeout},
		{nil, fmt.Errorf("other failure"), VerdictInconclusive, MechNone},
	}
	for i, tc := range cases {
		res := &Result{}
		classifyHTTP(res, tc.resp, nil, tc.err)
		if res.Verdict != tc.verdict || res.Mechanism != tc.mechanism {
			t.Errorf("case %d: got %v/%q want %v/%q", i, res.Verdict, res.Mechanism, tc.verdict, tc.mechanism)
		}
	}
}

func TestClassifyDNSBranches(t *testing.T) {
	res := &Result{}
	classifyDNS(res, &dnswire.Message{RCode: dnswire.RCodeNXDomain}, nil)
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("nxdomain: %v", res.Verdict)
	}
	res2 := &Result{}
	classifyDNS(res2, nil, fmt.Errorf("boom"))
	if res2.Verdict != VerdictCensored || res2.Mechanism != MechTimeout {
		t.Fatalf("error: %v/%q", res2.Verdict, res2.Mechanism)
	}
}

func TestRiskReportString(t *testing.T) {
	rep := RiskReport{User: lab.ClientAddr, Score: 1.5, Flagged: true, ImplicatedUsers: 2, AnalystAlerts: 3}
	s := rep.String()
	for _, want := range []string{"10.1.0.10", "score=1.50", "flagged=true", "implicated=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("risk string missing %q: %s", want, s)
		}
	}
}
