package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
	"safemeasure/internal/spoof"
)

// mimicISN derives the measurement server's initial sequence number from
// the flow 4-tuple. Client and server are run by the same measurer, so this
// shared function lets the client ACK blindly: the server's replies are
// TTL-limited and never reach the (spoofed) client.
func mimicISN(src netip.Addr, srcPort uint16, dst netip.Addr, dstPort uint16) uint32 {
	h := fnv.New32a()
	a := src.As4()
	b := dst.As4()
	h.Write(a[:])
	h.Write(b[:])
	h.Write([]byte{byte(srcPort >> 8), byte(srcPort), byte(dstPort >> 8), byte(dstPort)})
	return h.Sum32()
}

// MimicFlow is the measurement server's record of one spoofed connection —
// the server side is where stateful-mimicry verdicts are read, since no
// reply ever reaches the client.
type MimicFlow struct {
	Src     netip.Addr
	SrcPort uint16
	SynSeen bool
	RstSeen bool
	Payload []byte
}

// MimicServer is the raw-socket responder behind the Figure 3b technique:
// it answers spoofed SYNs with TTL-limited SYN/ACKs (which cross the
// surveillance tap and then die in the network, before reaching the spoofed
// client), accepts blind ACKs and data, and records everything for the
// measurer to read out-of-band.
type MimicServer struct {
	Port     uint16
	ReplyTTL uint8
	Flows    map[packet.Flow]*MimicFlow
}

// InstallMimicServer attaches a mimic responder to the lab's measurement
// host on the given port. ReplyTTL is calibrated to the lab topology: 2
// hops lets replies cross the border (and its taps) and expire at the AS
// edge, one hop short of any client.
func InstallMimicServer(l *lab.Lab, port uint16, replyTTL uint8) *MimicServer {
	ms := &MimicServer{Port: port, ReplyTTL: replyTTL, Flows: make(map[packet.Flow]*MimicFlow)}
	l.MeasureStack.IgnorePort(port)
	host := l.MeasureHost
	host.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP == nil || pkt.IP.Dst != host.Addr || pkt.TCP.DstPort != port {
			return
		}
		key := packet.FlowOf(pkt)
		fl, ok := ms.Flows[key]
		if !ok {
			fl = &MimicFlow{Src: pkt.IP.Src, SrcPort: pkt.TCP.SrcPort}
			ms.Flows[key] = fl
		}
		t := pkt.TCP
		switch {
		case t.Flags&packet.TCPRst != 0:
			fl.RstSeen = true
		case t.Flags&packet.TCPSyn != 0:
			fl.SynSeen = true
			isn := mimicISN(pkt.IP.Src, t.SrcPort, pkt.IP.Dst, t.DstPort)
			synack := &packet.TCP{
				SrcPort: port, DstPort: t.SrcPort,
				Seq: isn, Ack: t.Seq + 1,
				Flags: packet.TCPSyn | packet.TCPAck, Window: 65535,
			}
			if out, err := packet.BuildTCP(host.Addr, pkt.IP.Src, replyTTL, synack); err == nil {
				host.SendIP(out)
			}
		case len(t.Payload) > 0:
			fl.Payload = append(fl.Payload, t.Payload...)
			ack := &packet.TCP{
				SrcPort: port, DstPort: t.SrcPort,
				Seq:   mimicISN(pkt.IP.Src, t.SrcPort, pkt.IP.Dst, t.DstPort) + 1,
				Ack:   t.Seq + uint32(len(t.Payload)),
				Flags: packet.TCPAck, Window: 65535,
			}
			if out, err := packet.BuildTCP(host.Addr, pkt.IP.Src, replyTTL, ack); err == nil {
				host.SendIP(out)
			}
		}
	})
	return ms
}

// Stateful is the Figure 3b technique: spoofed TCP flows to a
// measurer-controlled server (hosted in cloud address space that resembles
// real targets), with every server reply TTL-limited so it dies after the
// surveillance tap but before the spoofed client — avoiding the RST-replay
// problem that would otherwise make the censor's reassembler give up.
//
// The client fires blindly (it never sees replies): SYN, then ACK computed
// from the shared ISN function, then the keyword-bearing request. The
// verdict is read from the server's flow log.
type Stateful struct {
	// Covers is how many spoofed flows to run alongside the client's own;
	// 0 means 5.
	Covers int
	// ReplyTTL for server responses; 0 means 2 (lab geometry).
	ReplyTTL uint8
	// Timeout before reading the server log; 0 means 500ms.
	Timeout time.Duration
	// Sources overrides the spoofed cover addresses (e.g. live population
	// hosts); nil derives covers from the SAV policy.
	Sources []netip.Addr
	// AutoTTL calibrates ReplyTTL by tracerouting from the measurement
	// server to the client network first (paper §4.1: "scanning the
	// network from the server could yield the number of hops"). It
	// overrides ReplyTTL.
	AutoTTL bool

	nextPort uint16
}

// Name implements Technique.
func (*Stateful) Name() string { return "stateful-spoof" }

// Run implements Technique.
func (s *Stateful) Run(l *lab.Lab, tgt Target, done func(*Result)) {
	if s.AutoTTL {
		CalibrateReplyTTL(l, lab.ClientAddr, func(replyTTL uint8, hops int) {
			if replyTTL == 0 {
				replyTTL = 2 // calibration failed; fall back to lab geometry
			}
			s.run(l, tgt, replyTTL, done)
		})
		return
	}
	ttl := s.ReplyTTL
	if ttl == 0 {
		ttl = 2
	}
	s.run(l, tgt, ttl, done)
}

func (s *Stateful) run(l *lab.Lab, tgt Target, ttl uint8, done func(*Result)) {
	tgt = tgt.resolve(l)
	n := s.Covers
	if n <= 0 {
		n = 5
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if s.nextPort == 0 {
		s.nextPort = 8080
	}
	port := s.nextPort
	s.nextPort++

	server := InstallMimicServer(l, port, ttl)
	res := &Result{Technique: s.Name(), Target: tgt}
	tel := newRunTel(l, s.Name())

	// The measurement payload: a request naming the censored resource, so
	// keyword- and Host-based censorship triggers on the client->server
	// direction (the only direction that completes).
	request := []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\n\r\n", tgt.Path, tgt.Domain))

	sources := []netip.Addr{lab.ClientAddr}
	if s.Sources != nil {
		sources = append(sources, s.Sources...)
	} else {
		sources = append(sources, spoof.CoverAddrs(l.Cfg.SpoofPolicy, lab.ClientAddr, n)...)
	}
	res.CoverAddrs = sources[1:]

	for i, src := range sources {
		src := src
		srcPort := uint16(58000 + i)
		base := time.Duration(i) * 11 * time.Millisecond
		isn := uint32(0x6000 + i)
		serverISN := mimicISN(src, srcPort, lab.MeasureAddr, port)
		send := func(delay time.Duration, t *packet.TCP) {
			l.Sim.Schedule(base+delay, func() {
				if raw, err := packet.BuildTCP(src, lab.MeasureAddr, packet.DefaultTTL, t); err == nil {
					if src == lab.ClientAddr {
						res.ProbesSent++
						tel.probe(1, src, lab.MeasureAddr, "stateful-segment")
					} else {
						res.CoverSent++
						tel.coverSent(src, lab.MeasureAddr, "stateful-segment")
					}
					l.Client.SendIP(raw)
				}
			})
		}
		send(0, &packet.TCP{SrcPort: srcPort, DstPort: port, Seq: isn, Flags: packet.TCPSyn, Window: 65535})
		send(30*time.Millisecond, &packet.TCP{SrcPort: srcPort, DstPort: port, Seq: isn + 1, Ack: serverISN + 1, Flags: packet.TCPAck, Window: 65535})
		send(60*time.Millisecond, &packet.TCP{SrcPort: srcPort, DstPort: port, Seq: isn + 1, Ack: serverISN + 1, Flags: packet.TCPPsh | packet.TCPAck, Window: 65535, Payload: request})
	}

	deadline := time.Duration(len(sources))*11*time.Millisecond + 60*time.Millisecond + timeout
	l.Sim.Schedule(deadline, func() {
		var complete, reset, missing int
		for _, fl := range server.Flows {
			switch {
			case fl.RstSeen:
				reset++
			case fl.SynSeen && bytes.Contains(fl.Payload, []byte("Host: "+tgt.Domain)):
				complete++
			default:
				missing++
			}
		}
		unseen := len(sources) - len(server.Flows)
		res.addEvidence("flows: complete=%d reset=%d partial=%d never-arrived=%d", complete, reset, missing, unseen)
		switch {
		case reset > 0:
			res.Verdict = VerdictCensored
			res.Mechanism = MechRST
			res.addEvidence("censor reset %d/%d spoofed flows after the request", reset, len(sources))
		case len(server.Flows) == 0:
			res.Verdict = VerdictCensored
			res.Mechanism = MechTimeout
			res.addEvidence("no flow reached the measurement server")
		case complete > 0:
			res.Verdict = VerdictAccessible
			res.addEvidence("%d/%d requests delivered intact", complete, len(sources))
		default:
			res.Verdict = VerdictInconclusive
		}
		done(res)
	})
}
