package core

import (
	"net/netip"
	"time"

	"safemeasure/internal/lab"
	"safemeasure/internal/packet"
)

// CalibrateReplyTTL implements the paper's §4.1 suggestion: "scanning the
// network from the server could yield the number of hops between the
// network boundary and each host, thus making it possible to set reply
// TTLs so they are dropped after they pass through the surveillance system
// but before they reach the client."
//
// It runs a traceroute from the measurement server toward target with
// increasing TTLs: ICMP Time Exceeded names each router on the path, and
// ICMP Port Unreachable (from a probe to a high closed UDP port) marks
// arrival at the host. done receives the hop count to the target and the
// recommended reply TTL — one hop short, so replies expire at the last
// router before the host.
//
// If the path never answers (e.g. the probe is blackholed), done is called
// with (0, 0) after the timeout.
func CalibrateReplyTTL(l *lab.Lab, target netip.Addr, done func(replyTTL uint8, hops int)) {
	const (
		maxHops   = 12
		probePort = 33434 // classic traceroute base port
		srcPort   = 33433
		step      = 30 * time.Millisecond
	)
	server := l.MeasureHost

	finished := false
	finish := func(ttl uint8, hops int) {
		if !finished {
			finished = true
			done(ttl, hops)
		}
	}

	server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if finished || pkt.ICMP == nil || pkt.IP.Dst != server.Addr {
			return
		}
		msg := pkt.ICMP
		if msg.Type != packet.ICMPDestUnreach || msg.Code != packet.ICMPCodePortUnreach {
			return // Time Exceeded hops are progress, not arrival
		}
		// The quoted datagram tells us which probe arrived: its TTL at the
		// host has been decremented hops times from the original.
		var quoted packet.IPv4
		if err := quoted.DecodeQuotedHeader(msg.Payload); err != nil {
			return
		}
		if quoted.Dst != target {
			return
		}
		if pkt.IP.Src != target {
			return
		}
		// Recover the original TTL from the probe id (we stamp it there).
		hops := int(quoted.ID)
		if hops <= 1 {
			finish(0, hops)
			return
		}
		finish(uint8(hops-1), hops)
	})

	for ttl := 1; ttl <= maxHops; ttl++ {
		ttl := ttl
		l.Sim.Schedule(time.Duration(ttl-1)*step, func() {
			if finished {
				return
			}
			// Stamp the attempted TTL into the IP ID so the quoted header
			// in the ICMP error identifies which probe arrived, even
			// though its TTL field was consumed by the path.
			u := &packet.UDP{SrcPort: srcPort, DstPort: probePort, Payload: []byte("ttlcal")}
			payload, err := u.Marshal(server.Addr, target)
			if err != nil {
				return
			}
			ip := &packet.IPv4{ID: uint16(ttl), TTL: uint8(ttl), Protocol: packet.ProtoUDP,
				Src: server.Addr, Dst: target, Payload: payload}
			raw, err := ip.Marshal()
			if err != nil {
				return
			}
			server.SendIP(raw)
		})
	}
	l.Sim.Schedule(time.Duration(maxHops)*step+500*time.Millisecond, func() {
		finish(0, 0)
	})
}
