package smtpwire

import (
	"strings"
	"testing"
)

// FuzzParseCommand exercises the command decoder with arbitrary bytes: it
// must never panic, and an accepted command must re-marshal to a line the
// parser accepts again with the same verb.
func FuzzParseCommand(f *testing.F) {
	f.Add([]byte("HELO relay.test\r\n"))
	f.Add([]byte("MAIL FROM:<a@b.test>\r\n"))
	f.Add([]byte("DATA\r\n"))
	f.Add([]byte(" \r\n"))
	f.Add([]byte("QUIT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, consumed, err := ParseCommand(data)
		if err != nil {
			return
		}
		if consumed < 2 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		again, _, err := ParseCommand(cmd.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled command failed: %v", err)
		}
		if again.Verb != cmd.Verb {
			t.Fatalf("verb changed across round trip: %q vs %q", cmd.Verb, again.Verb)
		}
		// The argument may pick up whitespace normalization, but an extractable
		// address must not be invented or lost by re-marshaling.
		if _, err := ExtractAddress(cmd.Arg); err == nil {
			if _, err := ExtractAddress(again.Arg); err != nil {
				t.Fatalf("address lost across round trip: %q vs %q", cmd.Arg, again.Arg)
			}
		}
	})
}

// FuzzParseReply covers single and multiline reply groups: no panics, codes
// stay in the wire's 100..599 range, consumed stays within the input.
func FuzzParseReply(f *testing.F) {
	f.Add([]byte("250 OK\r\n"))
	f.Add([]byte("250-first\r\n250-second\r\n250 last\r\n"))
	f.Add([]byte("550 5.7.1 rejected by policy\r\n"))
	f.Add([]byte("99 too small\r\n"))
	f.Add([]byte("250-dangling continuation\r\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		reply, consumed, err := ParseReply(data)
		if err != nil {
			return
		}
		if reply.Code < 100 || reply.Code > 599 {
			t.Fatalf("accepted out-of-range code %d", reply.Code)
		}
		if consumed < 2 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// A single-line reply's marshaled form must parse back to itself.
		if !strings.Contains(reply.Text, "\n") {
			again, _, err := ParseReply(Reply{Code: reply.Code, Text: reply.Text}.Marshal())
			if err != nil || again.Code != reply.Code {
				t.Fatalf("round trip failed: %+v -> %+v (%v)", reply, again, err)
			}
		}
	})
}

// FuzzParseMessage drives the DATA-content decoder: no panics, consumed
// bounded, and dot-stuffed re-marshaling of an accepted message must parse
// back with the same body.
func FuzzParseMessage(f *testing.F) {
	spam := &Message{From: "a@b.test", To: "c@d.test", Subject: "hi",
		Body: "line one\n.starts with dot\nlast"}
	f.Add([]byte(spam.Marshal()))
	f.Add([]byte(".\r\n"))
	f.Add([]byte("From: x\r\n\r\nbody\r\n.\r\n"))
	f.Add([]byte("no marker at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, consumed, err := ParseMessage(data)
		if err != nil {
			return
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		again, _, err := ParseMessage(m.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled message failed: %v", err)
		}
		if again.Body != m.Body {
			t.Fatalf("body changed across round trip: %q vs %q", m.Body, again.Body)
		}
	})
}
