package smtpwire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		{Verb: "HELO", Arg: "client.test"},
		{Verb: "MAIL", Arg: "FROM:<a@b.test>"},
		{Verb: "RCPT", Arg: "TO:<x@y.test>"},
		{Verb: "DATA"},
		{Verb: "QUIT"},
	}
	for _, in := range cases {
		out, n, err := ParseCommand(in.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if out != in || n != len(in.Marshal()) {
			t.Fatalf("round-trip: %v -> %v", in, out)
		}
	}
}

func TestCommandCaseInsensitive(t *testing.T) {
	out, _, err := ParseCommand([]byte("mail FROM:<a@b.test>\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Verb != "MAIL" {
		t.Fatalf("verb = %q", out.Verb)
	}
}

func TestCommandIncomplete(t *testing.T) {
	if _, _, err := ParseCommand([]byte("MAIL FROM:<a@b>")); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	in := Reply{Code: 250, Text: "OK"}
	out, _, err := ParseReply(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %v", out)
	}
}

func TestReplyMalformed(t *testing.T) {
	for _, c := range []string{"ab\r\n", "99 too low\r\n", "600 too high\r\n", "xyz text\r\n"} {
		if _, _, err := ParseReply([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestExtractAddress(t *testing.T) {
	addr, err := ExtractAddress("FROM:<promo@deals.test>")
	if err != nil || addr != "promo@deals.test" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}
	if _, err := ExtractAddress("FROM:no-brackets@x.test"); err == nil {
		t.Fatal("missing brackets accepted")
	}
	if _, err := ExtractAddress("garbage"); err == nil {
		t.Fatal("no colon accepted")
	}
	// Null reverse path is legal (bounces).
	addr, err = ExtractAddress("FROM:<>")
	if err != nil || addr != "" {
		t.Fatalf("null path: %q %v", addr, err)
	}
}

func TestDomain(t *testing.T) {
	if Domain("user@Example.COM") != "example.com" {
		t.Fatal("domain extraction")
	}
	if Domain("nodomain") != "" {
		t.Fatal("bare name should have empty domain")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	in := &Message{
		From: "promo@win.test", To: "victim@mail.test",
		Subject: "You WON!!!",
		Body:    "Click here\nhttp://win.test/claim\n.leading dot line",
	}
	wire := in.Marshal()
	out, n, err := ParseMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d/%d", n, len(wire))
	}
	if out.From != in.From || out.To != in.To || out.Subject != in.Subject {
		t.Fatalf("headers: %+v", out)
	}
	if out.Body != in.Body {
		t.Fatalf("body %q != %q", out.Body, in.Body)
	}
}

func TestMessageIncomplete(t *testing.T) {
	if _, _, err := ParseMessage([]byte("From: a\r\n\r\npartial body")); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestDotStuffing(t *testing.T) {
	in := &Message{From: "a@x.test", To: "b@y.test", Subject: "s", Body: ".hidden\n..double"}
	wire := string(in.Marshal())
	if !strings.Contains(wire, "\r\n..hidden\r\n") {
		t.Fatalf("dot not stuffed:\n%s", wire)
	}
	out, _, err := ParseMessage(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Body != in.Body {
		t.Fatalf("body %q", out.Body)
	}
}

func TestExtraHeadersPreserved(t *testing.T) {
	in := &Message{From: "a@x.test", To: "b@y.test", Subject: "s",
		Headers: map[string]string{"X-Mailer": "bulk v2"}, Body: "hi"}
	out, _, err := ParseMessage(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Headers["X-Mailer"] != "bulk v2" {
		t.Fatalf("extra headers: %+v", out.Headers)
	}
}

func TestQuickMessageBodyRoundTrip(t *testing.T) {
	f := func(seed []byte) bool {
		// Printable body from fuzz bytes, allowing dots and newlines.
		body := strings.Map(func(r rune) rune {
			switch {
			case r >= ' ' && r < 127:
				return r
			case r%7 == 0:
				return '\n'
			default:
				return '.'
			}
		}, string(seed))
		body = strings.Trim(body, "\n")
		in := &Message{From: "a@x.test", To: "b@y.test", Subject: "q", Body: body}
		out, _, err := ParseMessage(in.Marshal())
		if err != nil {
			return false
		}
		return out.Body == body
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = ParseCommand(data)
		_, _, _ = ParseReply(data)
		_, _, _ = ParseMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultilineReply(t *testing.T) {
	wire := []byte("250-mail.test greets you\r\n250-SIZE 1000000\r\n250 HELP\r\n")
	r, n, err := ParseReply(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d/%d", n, len(wire))
	}
	if r.Code != 250 {
		t.Fatalf("code = %d", r.Code)
	}
	want := "mail.test greets you\nSIZE 1000000\nHELP"
	if r.Text != want {
		t.Fatalf("text = %q", r.Text)
	}
}

func TestMultilineReplyIncomplete(t *testing.T) {
	// Continuation announced but final line missing: whole group incomplete.
	if _, _, err := ParseReply([]byte("250-first\r\n")); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultilineReplyMixedCodes(t *testing.T) {
	if _, _, err := ParseReply([]byte("250-a\r\n550 b\r\n")); err == nil {
		t.Fatal("mixed codes accepted")
	}
}

func TestBareCodeReply(t *testing.T) {
	r, _, err := ParseReply([]byte("354\r\n"))
	if err != nil || r.Code != 354 || r.Text != "" {
		t.Fatalf("bare code: %+v %v", r, err)
	}
}
