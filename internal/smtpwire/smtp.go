// Package smtpwire implements the SMTP command/reply wire format (RFC 5321
// subset) and a simple RFC 5322 message representation. The spam-cloaked
// measurement technique (paper §3.1, Method #2) delivers messages with this
// codec over the simulated TCP stack; the Proofpoint-like scorer in
// internal/spamscore consumes the Message type.
package smtpwire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Errors returned by the codec.
var (
	ErrIncomplete = errors.New("smtpwire: incomplete")
	ErrMalformed  = errors.New("smtpwire: malformed")
)

// Command is one SMTP client command.
type Command struct {
	Verb string // upper-cased: HELO, EHLO, MAIL, RCPT, DATA, QUIT, RSET, NOOP
	Arg  string // raw argument, e.g. "FROM:<a@b.test>"
}

// Marshal renders the command line with CRLF.
func (c Command) Marshal() []byte {
	if c.Arg == "" {
		return []byte(c.Verb + "\r\n")
	}
	return []byte(c.Verb + " " + c.Arg + "\r\n")
}

// ParseCommand decodes one command from a CRLF-terminated line. consumed is
// the number of bytes used; ErrIncomplete means no full line yet.
func ParseCommand(data []byte) (Command, int, error) {
	line, n, err := cutLine(data)
	if err != nil {
		return Command{}, 0, err
	}
	verb, arg, _ := strings.Cut(line, " ")
	if verb == "" {
		return Command{}, 0, ErrMalformed
	}
	return Command{Verb: strings.ToUpper(verb), Arg: strings.TrimSpace(arg)}, n, nil
}

// Reply is an SMTP server reply (single-line form).
type Reply struct {
	Code int
	Text string
}

// Marshal renders "250 OK\r\n".
func (r Reply) Marshal() []byte {
	return []byte(fmt.Sprintf("%03d %s\r\n", r.Code, r.Text))
}

// ParseReply decodes one reply, including RFC 5321 multiline form
// ("250-first\r\n250-second\r\n250 last"): continuation lines are joined
// with newlines into Text, and consumed covers the whole group.
func ParseReply(data []byte) (Reply, int, error) {
	var texts []string
	code := -1
	consumed := 0
	for {
		line, n, err := cutLine(data[consumed:])
		if err != nil {
			return Reply{}, 0, err // incomplete group
		}
		if len(line) < 3 {
			return Reply{}, 0, ErrMalformed
		}
		c, err := strconv.Atoi(line[:3])
		if err != nil || c < 100 || c > 599 {
			return Reply{}, 0, ErrMalformed
		}
		if code == -1 {
			code = c
		} else if c != code {
			return Reply{}, 0, ErrMalformed // mixed codes in one group
		}
		consumed += n
		cont := len(line) > 3 && line[3] == '-'
		if len(line) > 4 {
			texts = append(texts, line[4:])
		} else if len(line) > 3 && !cont {
			texts = append(texts, "")
		}
		if !cont {
			break
		}
	}
	return Reply{Code: code, Text: strings.Join(texts, "\n")}, consumed, nil
}

func cutLine(data []byte) (string, int, error) {
	s := string(data)
	i := strings.Index(s, "\r\n")
	if i < 0 {
		return "", 0, ErrIncomplete
	}
	return s[:i], i + 2, nil
}

// ExtractAddress pulls the path out of "FROM:<user@host>" / "TO:<user@host>".
func ExtractAddress(arg string) (string, error) {
	_, rest, ok := strings.Cut(arg, ":")
	if !ok {
		return "", ErrMalformed
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "<") || !strings.HasSuffix(rest, ">") {
		return "", ErrMalformed
	}
	addr := rest[1 : len(rest)-1]
	if addr != "" && !strings.Contains(addr, "@") {
		return "", ErrMalformed
	}
	return addr, nil
}

// Domain returns the domain part of user@domain, lower-cased.
func Domain(addr string) string {
	_, dom, ok := strings.Cut(addr, "@")
	if !ok {
		return ""
	}
	return strings.ToLower(dom)
}

// Message is a simple RFC 5322 mail message.
type Message struct {
	From    string
	To      string
	Subject string
	Headers map[string]string // extra headers
	Body    string
}

// Marshal renders the message as DATA content, dot-stuffed, terminated with
// the "\r\n.\r\n" end-of-data marker.
func (m *Message) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "From: %s\r\n", m.From)
	fmt.Fprintf(&b, "To: %s\r\n", m.To)
	fmt.Fprintf(&b, "Subject: %s\r\n", m.Subject)
	for k, v := range m.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	for _, line := range strings.Split(m.Body, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if strings.HasPrefix(line, ".") {
			b.WriteString(".") // dot-stuffing
		}
		b.WriteString(line)
		b.WriteString("\r\n")
	}
	b.WriteString(".\r\n")
	return []byte(b.String())
}

// ParseMessage decodes DATA content up to the end-of-data marker. consumed
// includes the marker.
func ParseMessage(data []byte) (*Message, int, error) {
	s := string(data)
	end := strings.Index(s, "\r\n.\r\n")
	if end < 0 {
		if s == ".\r\n" { // empty message
			return &Message{}, 3, nil
		}
		return nil, 0, ErrIncomplete
	}
	content := s[:end]
	consumed := end + 5
	head, body, _ := strings.Cut(content, "\r\n\r\n")
	m := &Message{Headers: map[string]string{}}
	for _, line := range strings.Split(head, "\r\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(k) {
		case "from":
			m.From = v
		case "to":
			m.To = v
		case "subject":
			m.Subject = v
		default:
			m.Headers[k] = v
		}
	}
	var lines []string
	for _, line := range strings.Split(body, "\r\n") {
		// Stray bare CRs (from "\r\r\n" on the wire) are normalized away,
		// mirroring Marshal, so parse/marshal round trips are stable.
		line = strings.TrimRight(line, "\r")
		lines = append(lines, strings.TrimPrefix(line, "."))
	}
	m.Body = strings.Join(lines, "\n")
	return m, consumed, nil
}
