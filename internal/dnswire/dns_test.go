package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustMarshal(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.Example.COM", TypeA)
	wire := mustMarshal(t, q)
	got, err := ParseMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com" || got.Questions[0].Type != TypeA {
		t.Fatalf("question = %+v", got.Questions[0])
	}
}

func TestResponseRoundTripAllTypes(t *testing.T) {
	q := NewQuery(7, "twitter.com", TypeMX)
	r := q.Reply()
	r.Authoritative = true
	r.Answers = []RR{
		{Name: "twitter.com", Type: TypeMX, TTL: 300, Pref: 10, Target: "mx1.twitter.com"},
		{Name: "twitter.com", Type: TypeMX, TTL: 300, Pref: 20, Target: "mx2.twitter.com"},
	}
	r.Authority = []RR{
		{Name: "twitter.com", Type: TypeNS, TTL: 3600, Target: "ns1.twitter.com"},
	}
	r.Additional = []RR{
		{Name: "mx1.twitter.com", Type: TypeA, TTL: 300, A: netip.MustParseAddr("199.16.156.1")},
		{Name: "txt.twitter.com", Type: TypeTXT, TTL: 60, TXT: "v=spf1 -all"},
		{Name: "alias.twitter.com", Type: TypeCNAME, TTL: 60, Target: "twitter.com"},
	}
	wire := mustMarshal(t, r)
	got, err := ParseMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.ID != 7 {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Answers) != 2 || got.Answers[0].Target != "mx1.twitter.com" || got.Answers[0].Pref != 10 {
		t.Fatalf("answers: %+v", got.Answers)
	}
	if got.Authority[0].Target != "ns1.twitter.com" {
		t.Fatalf("authority: %+v", got.Authority)
	}
	if got.Additional[0].A != netip.MustParseAddr("199.16.156.1") {
		t.Fatalf("A rr: %+v", got.Additional[0])
	}
	if got.Additional[1].TXT != "v=spf1 -all" {
		t.Fatalf("TXT rr: %+v", got.Additional[1])
	}
	if got.Additional[2].Target != "twitter.com" {
		t.Fatalf("CNAME rr: %+v", got.Additional[2])
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	r := &Message{ID: 1, Response: true}
	for i := 0; i < 5; i++ {
		r.Answers = append(r.Answers, RR{
			Name: "very.long.subdomain.example.com", Type: TypeA, TTL: 1,
			A: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		})
	}
	wire := mustMarshal(t, r)
	// Name is 31 octets + 2 length bytes; five uncompressed copies would be
	// ~165 bytes of names alone. With compression, copies 2..5 are 2-byte
	// pointers.
	uncompressedEstimate := 12 + 5*(33+10)
	if len(wire) >= uncompressedEstimate {
		t.Fatalf("message not compressed: %d bytes >= %d", len(wire), uncompressedEstimate)
	}
	got, err := ParseMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got.Answers {
		if a.Name != "very.long.subdomain.example.com" {
			t.Fatalf("answer %d name = %q", i, a.Name)
		}
	}
}

func TestCompressionSuffixSharing(t *testing.T) {
	r := &Message{ID: 1, Response: true, Answers: []RR{
		{Name: "a.example.com", Type: TypeA, TTL: 1, A: netip.MustParseAddr("1.1.1.1")},
		{Name: "b.example.com", Type: TypeCNAME, TTL: 1, Target: "example.com"},
	}}
	wire := mustMarshal(t, r)
	got, err := ParseMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "a.example.com" || got.Answers[1].Name != "b.example.com" {
		t.Fatalf("names: %q %q", got.Answers[0].Name, got.Answers[1].Name)
	}
	if got.Answers[1].Target != "example.com" {
		t.Fatalf("target: %q", got.Answers[1].Target)
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Hand-craft a message whose question name is a pointer to itself.
	wire := []byte{
		0x00, 0x01, 0x00, 0x00, // id, flags
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // counts: 1 question
		0xc0, 0x0c, // pointer to offset 12 = itself
		0x00, 0x01, 0x00, 0x01,
	}
	if _, err := ParseMessage(wire); err == nil {
		t.Fatal("self-referential pointer accepted")
	}
}

func TestForwardPointerRejected(t *testing.T) {
	wire := []byte{
		0x00, 0x01, 0x00, 0x00,
		0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xc0, 0x20, // pointer to offset 32, beyond itself
		0x00, 0x01, 0x00, 0x01,
	}
	if _, err := ParseMessage(wire); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestTruncatedInputs(t *testing.T) {
	q := NewQuery(9, "example.com", TypeA)
	wire := mustMarshal(t, q)
	for n := 0; n < len(wire); n++ {
		if _, err := ParseMessage(wire[:n]); err == nil {
			t.Fatalf("parse of %d/%d bytes succeeded", n, len(wire))
		}
	}
}

func TestLabelTooLong(t *testing.T) {
	long := strings.Repeat("a", 64) + ".com"
	q := NewQuery(1, long, TypeA)
	if _, err := q.Marshal(); err == nil {
		t.Fatal("64-octet label accepted")
	}
}

func TestNameTooLong(t *testing.T) {
	name := strings.Repeat("abcdefgh.", 32) + "com" // > 253 octets
	q := NewQuery(1, name, TypeA)
	if _, err := q.Marshal(); err == nil {
		t.Fatal("over-long name accepted")
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []RCode{RCodeSuccess, RCodeFormErr, RCodeServFail, RCodeNXDomain, RCodeRefused} {
		m := &Message{ID: 3, Response: true, RCode: rc}
		got, err := ParseMessage(mustMarshal(t, m))
		if err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Fatalf("rcode = %v, want %v", got.RCode, rc)
		}
	}
}

func TestLongTXTSplitsChunks(t *testing.T) {
	txt := strings.Repeat("x", 600)
	m := &Message{ID: 1, Response: true, Answers: []RR{{Name: "t.example.com", Type: TypeTXT, TTL: 1, TXT: txt}}}
	got, err := ParseMessage(mustMarshal(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].TXT != txt {
		t.Fatalf("TXT round-trip lost data: %d bytes", len(got.Answers[0].TXT))
	}
}

func TestCanonicalName(t *testing.T) {
	if CanonicalName("WwW.Example.COM.") != "www.example.com" {
		t.Fatal("canonicalization wrong")
	}
}

func TestUnknownTypePreservesData(t *testing.T) {
	m := &Message{ID: 1, Response: true, Answers: []RR{{Name: "x.example.com", Type: RRType(99), Class: ClassIN, TTL: 5, Data: []byte{1, 2, 3}}}}
	got, err := ParseMessage(mustMarshal(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Answers[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("raw data: %x", got.Answers[0].Data)
	}
}

// Property: query round-trip for arbitrary well-formed names.
func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(id uint16, raw []byte) bool {
		// Build a plausible name from fuzz bytes: hex labels.
		labels := make([]string, 0, 4)
		for i := 0; i < len(raw) && i < 8; i += 2 {
			labels = append(labels, "l"+string(rune('a'+int(raw[i])%26)))
		}
		labels = append(labels, "example", "com")
		name := strings.Join(labels, ".")
		q := NewQuery(id, name, TypeA)
		wire, err := q.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseMessage(wire)
		if err != nil {
			return false
		}
		return got.ID == id && got.Questions[0].Name == CanonicalName(name)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary bytes.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalResponse(b *testing.B) {
	q := NewQuery(1, "www.example.com", TypeA)
	r := q.Reply()
	r.Answers = []RR{{Name: "www.example.com", Type: TypeA, TTL: 300, A: netip.MustParseAddr("93.184.216.34")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseResponse(b *testing.B) {
	q := NewQuery(1, "www.example.com", TypeA)
	r := q.Reply()
	r.Answers = []RR{{Name: "www.example.com", Type: TypeA, TTL: 300, A: netip.MustParseAddr("93.184.216.34")}}
	wire, _ := r.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringers(t *testing.T) {
	if TypeA.String() != "A" || TypeMX.String() != "MX" || RRType(99).String() != "TYPE99" {
		t.Fatal("RRType names")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(9).String() != "RCODE9" {
		t.Fatal("RCode names")
	}
	q := NewQuery(5, "twitter.com", TypeMX)
	r := q.Reply()
	r.Answers = []RR{
		{Name: "twitter.com", Type: TypeMX, Pref: 10, Target: "mx1.twitter.com"},
		{Name: "twitter.com", Type: TypeA, A: netip.MustParseAddr("1.2.3.4")},
		{Name: "twitter.com", Type: TypeNS, Target: "ns1.twitter.com"},
	}
	s := r.String()
	for _, want := range []string{"response", "id=5", "?twitter.com/MX", "MX 10 mx1.twitter.com", "=1.2.3.4", "twitter.com/NS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
	if !strings.Contains(q.String(), "query") {
		t.Fatalf("query String(): %s", q.String())
	}
}
