package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzParseMessage exercises the decoder with arbitrary bytes; it must
// never panic, and anything it accepts must re-marshal without error.
func FuzzParseMessage(f *testing.F) {
	q := NewQuery(7, "www.example.com", TypeA)
	wire, _ := q.Marshal()
	f.Add(wire)
	r := q.Reply()
	r.Answers = []RR{{Name: "www.example.com", Type: TypeA, TTL: 60, A: netip.MustParseAddr("93.184.216.34")}}
	wire2, _ := r.Marshal()
	f.Add(wire2)
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x0c})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMessage(data)
		if err != nil {
			return
		}
		// Re-marshal must not panic. (It can fail for names the decoder
		// accepted but the encoder's stricter limits reject; that's fine.)
		_, _ = m.Marshal()
	})
}

// FuzzNameRoundTrip checks encode->decode identity for generated names.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("a.b.c.d.e.test")
	f.Fuzz(func(t *testing.T, name string) {
		q := NewQuery(1, name, TypeA)
		wire, err := q.Marshal()
		if err != nil {
			return // encoder rejected (too long, empty label, ...)
		}
		m, err := ParseMessage(wire)
		if err != nil {
			t.Fatalf("decode of freshly encoded %q failed: %v", name, err)
		}
		if m.Questions[0].Name != CanonicalName(name) {
			t.Fatalf("name %q round-tripped to %q", name, m.Questions[0].Name)
		}
	})
}
