// Package dnswire implements the DNS wire format (RFC 1035 subset): header,
// questions, and resource records for the types the lab uses (A, NS, CNAME,
// SOA, MX, TXT), including domain-name compression on encode and decode.
//
// The codec is used by the simulated resolver and authoritative servers, by
// the censor's DNS-poisoning tap (which must parse queries and forge
// responses on the wire), and by the spoofed-DNS measurement technique.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RRType is a DNS resource-record type code.
type RRType uint16

// Record types supported by the codec.
const (
	TypeA     RRType = 1
	TypeNS    RRType = 2
	TypeCNAME RRType = 5
	TypeSOA   RRType = 6
	TypeMX    RRType = 15
	TypeTXT   RRType = 16
)

// String returns the conventional mnemonic.
func (t RRType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// ClassIN is the Internet class; the only class the lab uses.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Errors returned by the codec.
var (
	ErrTruncated    = errors.New("dnswire: truncated message")
	ErrBadName      = errors.New("dnswire: malformed name")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
)

// Question is a single query.
type Question struct {
	Name  string
	Type  RRType
	Class uint16
}

// RR is a resource record. Exactly one of the Rdata fields is meaningful
// depending on Type; unknown types carry raw Data.
type RR struct {
	Name  string
	Type  RRType
	Class uint16
	TTL   uint32

	A      netip.Addr // TypeA
	Target string     // TypeNS, TypeCNAME; also MX exchange host
	Pref   uint16     // TypeMX preference
	TXT    string     // TypeTXT
	Data   []byte     // unknown types, raw rdata
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t RRType) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton mirroring the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// CanonicalName lower-cases a domain name and strips one trailing dot.
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	return strings.TrimSuffix(name, ".")
}

// ---- encoding ----

type encoder struct {
	buf []byte
	// Offsets of names already written, for compression pointers. A short
	// linear list instead of a map: a message rarely holds more than a
	// handful of distinct suffixes, and the map allocation dominated the
	// cost of marshaling on the simulator's hot path.
	names   []nameOffset
	nameArr [8]nameOffset
}

type nameOffset struct {
	name string
	off  int
}

// lookupName returns the offset name was first written at, or -1.
func (e *encoder) lookupName(name string) int {
	for i := range e.names {
		if e.names[i].name == name {
			return e.names[i].off
		}
	}
	return -1
}

func (e *encoder) uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

func (e *encoder) uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// name writes a possibly-compressed domain name.
func (e *encoder) name(name string) error {
	name = CanonicalName(name)
	if len(name) > 253 {
		return ErrNameTooLong
	}
	for name != "" {
		if off := e.lookupName(name); off >= 0 {
			e.uint16(0xc000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x3fff {
			e.names = append(e.names, nameOffset{name, len(e.buf)})
		}
		label, rest, cut := strings.Cut(name, ".")
		if label == "" || (cut && rest == "") {
			// Empty labels, including a trailing dot that survived
			// canonicalization ("a.."), must error rather than silently
			// encode as a shorter name.
			return ErrBadName
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
		name = rest
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) question(q Question) error {
	if err := e.name(q.Name); err != nil {
		return err
	}
	e.uint16(uint16(q.Type))
	e.uint16(q.Class)
	return nil
}

func (e *encoder) rr(r RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.uint16(uint16(r.Type))
	class := r.Class
	if class == 0 {
		class = ClassIN
	}
	e.uint16(class)
	e.uint32(r.TTL)
	// rdlength placeholder
	lenOff := len(e.buf)
	e.uint16(0)
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		if !r.A.Is4() {
			return fmt.Errorf("dnswire: A record for %q needs an IPv4 address", r.Name)
		}
		a := r.A.As4()
		e.buf = append(e.buf, a[:]...)
	case TypeNS, TypeCNAME:
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeMX:
		e.uint16(r.Pref)
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeTXT:
		txt := r.TXT
		for len(txt) > 255 {
			e.buf = append(e.buf, 255)
			e.buf = append(e.buf, txt[:255]...)
			txt = txt[255:]
		}
		e.buf = append(e.buf, byte(len(txt)))
		e.buf = append(e.buf, txt...)
	default:
		e.buf = append(e.buf, r.Data...)
	}
	binary.BigEndian.PutUint16(e.buf[lenOff:], uint16(len(e.buf)-start))
	return nil
}

// Marshal serializes the message to wire format.
func (m *Message) Marshal() ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 512)}
	e.names = e.nameArr[:0]
	e.uint16(m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode) & 0xf
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := e.question(q); err != nil {
			return nil, err
		}
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

// ---- decoding ----

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(d.data[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

// name reads a possibly-compressed name starting at d.off.
func (d *decoder) name() (string, error) {
	s, next, err := readName(d.data, d.off, 0)
	if err != nil {
		return "", err
	}
	d.off = next
	return s, nil
}

// readName decodes a name at off; depth guards against pointer loops.
// Returns the name and the offset just past the name's in-line bytes.
func readName(data []byte, off, depth int) (string, int, error) {
	if depth > 16 {
		return "", 0, ErrBadPointer
	}
	var b strings.Builder
	for {
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		c := data[off]
		switch {
		case c == 0:
			return b.String(), off + 1, nil
		case c&0xc0 == 0xc0:
			if off+2 > len(data) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[off:]) & 0x3fff)
			if ptr >= off {
				return "", 0, ErrBadPointer // pointers must point backwards
			}
			rest, _, err := readName(data, ptr, depth+1)
			if err != nil {
				return "", 0, err
			}
			if b.Len() > 0 && rest != "" {
				b.WriteByte('.')
			}
			b.WriteString(rest)
			return b.String(), off + 2, nil
		case c&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			n := int(c)
			if off+1+n > len(data) {
				return "", 0, ErrTruncated
			}
			if b.Len() > 0 {
				b.WriteByte('.')
			}
			b.Write(data[off+1 : off+1+n])
			off += 1 + n
			if b.Len() > 255 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

func (d *decoder) question() (Question, error) {
	var q Question
	name, err := d.name()
	if err != nil {
		return q, err
	}
	q.Name = name
	t, err := d.uint16()
	if err != nil {
		return q, err
	}
	q.Type = RRType(t)
	q.Class, err = d.uint16()
	return q, err
}

func (d *decoder) rr() (RR, error) {
	var r RR
	name, err := d.name()
	if err != nil {
		return r, err
	}
	r.Name = name
	t, err := d.uint16()
	if err != nil {
		return r, err
	}
	r.Type = RRType(t)
	if r.Class, err = d.uint16(); err != nil {
		return r, err
	}
	if r.TTL, err = d.uint32(); err != nil {
		return r, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return r, err
	}
	if d.off+int(rdlen) > len(d.data) {
		return r, ErrTruncated
	}
	rdEnd := d.off + int(rdlen)
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, ErrBadName
		}
		r.A = netip.AddrFrom4([4]byte(d.data[d.off:rdEnd]))
	case TypeNS, TypeCNAME:
		if r.Target, err = d.name(); err != nil {
			return r, err
		}
	case TypeMX:
		if r.Pref, err = d.uint16(); err != nil {
			return r, err
		}
		if r.Target, err = d.name(); err != nil {
			return r, err
		}
	case TypeTXT:
		var b strings.Builder
		for p := d.off; p < rdEnd; {
			n := int(d.data[p])
			if p+1+n > rdEnd {
				return r, ErrTruncated
			}
			b.Write(d.data[p+1 : p+1+n])
			p += 1 + n
		}
		r.TXT = b.String()
	default:
		r.Data = append([]byte(nil), d.data[d.off:rdEnd]...)
	}
	d.off = rdEnd
	return r, nil
}

// ParseMessage decodes a wire-format DNS message.
func ParseMessage(data []byte) (*Message, error) {
	d := &decoder{data: data}
	m := new(Message)
	var err error
	if m.ID, err = d.uint16(); err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xf)
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	for s, sec := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		for i := 0; i < int(counts[s+1]); i++ {
			r, err := d.rr()
			if err != nil {
				return nil, err
			}
			*sec = append(*sec, r)
		}
	}
	return m, nil
}

// String renders a dig-style summary.
func (m *Message) String() string {
	var b strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&b, "dns %s id=%d rcode=%v", kind, m.ID, m.RCode)
	for _, q := range m.Questions {
		fmt.Fprintf(&b, " ?%s/%v", q.Name, q.Type)
	}
	for _, a := range m.Answers {
		switch a.Type {
		case TypeA:
			fmt.Fprintf(&b, " %s=%v", a.Name, a.A)
		case TypeMX:
			fmt.Fprintf(&b, " %s MX %d %s", a.Name, a.Pref, a.Target)
		default:
			fmt.Fprintf(&b, " %s/%v", a.Name, a.Type)
		}
	}
	return b.String()
}
