package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("same name resolved to a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryAndMetricsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	var tr *Tracer
	tr.Emit(1, EvProbeSent, "a", "b", "c")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Enabled() {
		t.Fatal("nil metrics retained state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
}

// TestDisabledPathAllocates nothing: the NopSink/nil-handle fast path must
// stay allocation-free or the hot-path instrumentation would tax every
// packet forwarded with telemetry off. This is the benchmark guard's
// deterministic twin (the benchmarks in the repo root measure time).
func TestDisabledPathAllocates(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("h")
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1)
		if tr != nil {
			tr.Emit(0, EvProbeSent, "", "", "")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %.1f per op, want 0", allocs)
	}
	nop := NopSink{}
	allocs = testing.AllocsPerRun(1000, func() {
		nop.Emit(Event{T: 1, Kind: EvProbeSent})
	})
	if allocs != 0 {
		t.Fatalf("NopSink.Emit allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", 1, 2, 10) // bounds 1,2,4,...,512
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5049.9 || got > 5050.1 {
		t.Fatalf("sum = %v, want 5050", got)
	}
	// p50 of 1..100 is 50, which lands in the (32,64] bucket.
	if got := h.Quantile(0.5); got != 64 {
		t.Fatalf("p50 = %v, want 64", got)
	}
	if got := h.Quantile(0.99); got != 128 {
		t.Fatalf("p99 = %v, want 128", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	// Overflow values clamp to the last bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 512 {
		t.Fatalf("p100 = %v, want 512 (overflow clamps)", got)
	}
}

func TestHistogramSumOrderIndependent(t *testing.T) {
	// The sum accumulates in integer micro-units, so any interleaving of
	// the same observations yields identical totals — the property the
	// campaign's byte-identical /metrics claim rests on.
	mk := func(order []float64) float64 {
		r := NewRegistry()
		h := r.Histogram("x")
		for _, v := range order {
			h.Observe(v)
		}
		return h.Sum()
	}
	a := mk([]float64{0.1, 0.2, 0.3, 1e6, 1e-6, 7.25})
	b := mk([]float64{1e-6, 7.25, 0.3, 0.1, 1e6, 0.2})
	if a != b {
		t.Fatalf("sum depends on observation order: %v vs %v", a, b)
	}
}

func TestLabelsCanonical(t *testing.T) {
	a := Labels("runs_total", "family", "overt", "scenario", "open")
	b := Labels("runs_total", "scenario", "open", "family", "overt")
	if a != b {
		t.Fatalf("label order changed identity: %q vs %q", a, b)
	}
	want := `runs_total{family="overt",scenario="open"}`
	if a != want {
		t.Fatalf("labels = %q, want %q", a, want)
	}
	if got := Labels("odd", "only-key"); got != "odd" {
		t.Fatalf("odd kv should return bare name, got %q", got)
	}
}

func TestSnapshotTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter(Labels("a_total", "k", "v")).Inc()
	r.Gauge("depth").Set(3)
	h := r.HistogramBuckets("lat_seconds", 1, 2, 3) // bounds 1,2,4
	h.Observe(1.5)
	h.Observe(100) // overflow

	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total{k=\"v\"} 1\n",
		"# TYPE b_total counter\nb_total 2\n",
		"# TYPE depth gauge\ndepth 3\n",
		`lat_seconds_bucket{le="2"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 101.5",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Counters render sorted: a_total before b_total.
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Fatal("counters not sorted by name")
	}
	// Two snapshots of the same state render byte-identically.
	var b2 strings.Builder
	if err := r.Snapshot().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("snapshot rendering is nondeterministic")
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets(Labels("lat_seconds", "family", "overt"), 1, 2, 2)
	h.Observe(1)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{family="overt",le="1"} 1`,
		`lat_seconds_sum{family="overt"} 1`,
		`lat_seconds_count{family="overt"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestConcurrentMetricsUnderRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestRingKeepsNewestAndCountsDropped(t *testing.T) {
	ring := NewRing(3)
	for i := 0; i < 5; i++ {
		ring.Emit(Event{T: int64(i), Kind: EvProbeSent})
	}
	evs := ring.Events()
	if len(evs) != 3 || ring.Len() != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.T != int64(i+2) {
			t.Fatalf("event %d has T=%d, want %d (oldest evicted first)", i, ev.T, i+2)
		}
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}
}

func TestTracerEmitsThroughRing(t *testing.T) {
	ring := NewRing(16)
	tr := NewTracer(ring)
	if !tr.Enabled() {
		t.Fatal("tracer with sink should be enabled")
	}
	tr.Emit(42, EvCensorAlert, "10.1.0.10", "203.0.113.81", "keyword falun")
	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	want := Event{T: 42, Kind: EvCensorAlert, Src: "10.1.0.10", Dst: "203.0.113.81", Detail: "keyword falun"}
	if evs[0] != want {
		t.Fatalf("event = %+v, want %+v", evs[0], want)
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should be a disabled (nil) tracer")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(9)
	h := Handler(r, func() any { return map[string]int{"done": 4, "planned": 10} }, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "hits_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", buf[:n])
	}

	resp, err = srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(buf[:])
	resp.Body.Close()
	body := string(buf[:n])
	if !strings.Contains(body, `"done": 4`) || !strings.Contains(body, `"planned": 10`) {
		t.Fatalf("/progress body = %s", body)
	}

	// No progress func: 404.
	srv2 := httptest.NewServer(Handler(r, nil, nil))
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/progress without func = %d, want 404", resp.StatusCode)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate bucket shapes should return nil")
	}
}

// TestHTTPHandlerServesPprof: the profiling endpoints ride the metrics
// listener, so a live campaign can be profiled without a second port. The
// index and a fast non-blocking profile must both answer 200.
func TestHTTPHandlerServesPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/mutex?debug=1",
		"/debug/pprof/block?debug=1",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
