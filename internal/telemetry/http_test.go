package telemetry

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestServeAndShutdownReleasesPort(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campaign_cancel_total").Inc()
	var notReady atomic.Bool
	srv, addr, err := Serve("127.0.0.1:0", reg, func() any {
		return map[string]int{"done": 3}
	}, func() error {
		if notReady.Load() {
			return fmt.Errorf("pool draining")
		}
		return nil
	}, func(err error) { t.Errorf("serve error: %v", err) })
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "campaign_cancel_total 1") {
		t.Fatalf("/metrics = %q", body)
	}
	if _, body := get("/progress"); !strings.Contains(body, `"done": 3`) {
		t.Fatalf("/progress = %q", body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	notReady.Store(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "pool draining") {
		t.Fatalf("/readyz while not ready = %d %q", code, body)
	}
	// Liveness is independent of readiness: a draining process is still up.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while not ready = %d", code)
	}

	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must be rebindable immediately — the deterministic-release
	// guarantee the campaign CLI relies on between an interrupted run and
	// its -resume invocation.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	ln.Close()
}
