package telemetry

import (
	"io"
	"runtime"
)

// goroutineDumpMax caps the dump buffer: a campaign wedged with thousands of
// goroutines still produces a useful (if truncated) dump instead of an
// unbounded allocation inside an already-sick process.
const goroutineDumpMax = 64 << 20

// GoroutineDump writes the stack trace of every live goroutine to w — the
// diagnostic payload of the campaign stall watchdog. The buffer grows until
// the full dump fits (or the 64 MiB cap is hit, truncating), and the whole
// dump is written with a single Write so concurrent writers to the same
// stream interleave at dump granularity, not line granularity.
func GoroutineDump(w io.Writer) (int, error) {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) || len(buf) >= goroutineDumpMax {
			return w.Write(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}
