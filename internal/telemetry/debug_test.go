package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestGoroutineDump(t *testing.T) {
	var buf bytes.Buffer
	n, err := GoroutineDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	out := buf.String()
	// The dump must cover all goroutines: at minimum this test's own frame
	// and the scheduler's header lines.
	if !strings.HasPrefix(out, "goroutine ") {
		t.Fatalf("dump does not start with a goroutine header:\n%.200s", out)
	}
	if !strings.Contains(out, "TestGoroutineDump") {
		t.Fatalf("dump missing the calling goroutine:\n%.500s", out)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errShort }

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestGoroutineDumpPropagatesWriteError(t *testing.T) {
	if _, err := GoroutineDump(failWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}
