// Package telemetry is the repo's zero-dependency observability layer: an
// atomic metrics registry (counters, gauges, exponential-bucket histograms)
// plus a structured packet-path event tracer, both designed around the
// simulator's virtual clock so that everything they record is
// byte-deterministic for a given seed regardless of worker count or host
// speed.
//
// Two design rules keep the disabled path essentially free:
//
//   - Every metric method is safe on a nil receiver, and a nil *Registry
//     hands out nil metrics. Components resolve their handles once at
//     construction and increment unconditionally; with telemetry off the
//     increment is a single nil check.
//   - Trace emission goes through a *Tracer that callers nil-check before
//     building event strings, and the NopSink discards events without
//     allocating, so instrumented hot paths pay nothing when tracing is off.
//
// Determinism: counters and gauges are integers; histograms accumulate
// their sum in integer micro-units rather than floats, so totals are
// independent of the order concurrent workers observed samples in. The only
// intentionally nondeterministic values are wall-clock measurements fed in
// by callers (e.g. the campaign pool's wall-latency histogram).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe: a nil counter (from a nil registry) silently does nothing.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depths, live totals).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// sumScale converts observed values to the integer micro-units the
// histogram sum accumulates in, keeping totals order-independent (integer
// addition commutes; float addition does not).
const sumScale = 1e6

// Histogram counts observations into fixed exponential buckets:
// bucket i covers (lo*factor^(i-1), lo*factor^i], with an implicit
// overflow bucket above the last bound. Everything is atomic and safe
// under -race.
type Histogram struct {
	name   string
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // in micro-units (value * sumScale, rounded)
}

// ExpBuckets returns n exponential upper bounds lo, lo*factor, ...,
// lo*factor^(n-1).
func ExpBuckets(lo, factor float64, n int) []float64 {
	if n <= 0 || lo <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	b := lo
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v*sumScale + 0.5))
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / sumScale
}

// Mean returns Sum/Count, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// sample (nearest rank). With no samples, or on a nil histogram, it
// returns 0; ranks landing in the overflow bucket report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow: clamp to last bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCounts returns the per-bucket counts (last entry is overflow).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Registry holds named metrics. Lookups take a mutex (resolve handles once,
// at construction time); the metrics themselves are lock-free atomics. A nil
// registry is valid and hands out nil metrics, giving callers a single code
// path whether telemetry is enabled or not.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// DefaultBuckets is the registry's default histogram shape: 32 exponential
// buckets from 1µs to ~4295s (unit-agnostic; pick names that say the unit).
func DefaultBuckets() []float64 { return ExpBuckets(1e-6, 2, 32) }

// Histogram returns the named histogram with the default exponential
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, 1e-6, 2, 32)
}

// HistogramBuckets returns the named histogram with n exponential buckets
// starting at lo with the given factor. The shape is fixed at first
// creation; later calls return the existing histogram unchanged.
func (r *Registry) HistogramBuckets(name string, lo, factor float64, n int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bounds := ExpBuckets(lo, factor, n)
		h = &Histogram{name: name, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of src into r by addition: counter values add,
// gauge values add as deltas, histograms add per-bucket counts and their
// integer micro-unit sums. Because every combination is integer addition,
// merging per-run staging registries into a shared one yields the same
// totals as writing to the shared registry directly, in any order — which
// is what lets the campaign pool stage an isolated run's metrics and commit
// them only if the run was not abandoned at its wall-clock timeout.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()

	for name, c := range counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, h := range hists {
		r.histogramWithBounds(name, h.bounds).merge(h)
	}
}

// histogramWithBounds returns the named histogram, creating it with the
// given bucket bounds when absent (the shape of an existing histogram is
// never changed).
func (r *Registry) histogramWithBounds(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// merge adds src's buckets, count, and raw integer sum into h. Buckets are
// matched by index; a shape mismatch (possible only if two callers created
// the same name with different bounds) folds the excess into overflow.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	last := len(h.counts) - 1
	for i := range src.counts {
		j := i
		if j > last {
			j = last
		}
		if n := src.counts[i].Load(); n != 0 {
			h.counts[j].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// Labels renders a metric name with labels in canonical (key-sorted) form:
// Labels("x_total", "family", "overt") == `x_total{family="overt"}`.
// The registry treats the full string as the metric identity, so equal
// label sets always resolve to the same metric.
func Labels(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}
