package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /progress — JSON from the progress func (404 when progress is nil)
//
// The handler snapshots on every request, so it can be scraped while a
// campaign is mid-flight; atomics make the reads race-free.
func Handler(reg *Registry, progress func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		if progress == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progress())
	})
	return mux
}
