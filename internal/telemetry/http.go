package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /progress — JSON from the progress func (404 when progress is nil)
//	GET /healthz  — 200 while the process is serving at all (liveness)
//	GET /readyz   — 200 when ready() returns nil, 503 with the error text
//	                otherwise; a nil ready func is always ready
//	GET /debug/pprof/ — the standard net/http/pprof profile index (cpu via
//	                /debug/pprof/profile, plus heap, goroutine, mutex,
//	                block, allocs); mutex and block profiles are empty
//	                until EnableContentionProfiling is called
//
// The handler snapshots on every request, so it can be scraped while a
// campaign is mid-flight; atomics make the reads race-free. Liveness and
// readiness are split the usual way: /healthz answers "is the process up",
// /readyz answers "should a load balancer send it work" — a draining
// safemeasured or a campaign that has not started its pool yet is alive but
// not ready.
func Handler(reg *Registry, progress func() any, ready func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		if progress == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progress())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	// net/http/pprof self-registers only on http.DefaultServeMux; mirror its
	// routes here so profiles ride the same listener as /metrics and a live
	// campaign or daemon can be profiled without a second port.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// EnableContentionProfiling turns on the runtime sampling that feeds the
// /debug/pprof/mutex and /debug/pprof/block endpoints: 1-in-fraction mutex
// contention events and every blocking event of at least blockRateNs
// nanoseconds are recorded. Both profilers cost a little on every contended
// lock, so this is opt-in (a CLI flag) rather than ambient.
func EnableContentionProfiling(fraction, blockRateNs int) {
	runtime.SetMutexProfileFraction(fraction)
	runtime.SetBlockProfileRate(blockRateNs)
}

// Serve binds addr, serves Handler(reg, progress, ready) in a background
// goroutine, and returns the server plus the bound address (useful with
// ":0"). The caller owns the lifecycle: call srv.Shutdown to stop accepting
// scrapes, let in-flight ones finish, and release the port
// deterministically — leaking the listener past the campaign keeps the port
// busy until process exit and can truncate a scrape mid-body. onErr, when
// non-nil, receives any serve-loop error other than http.ErrServerClosed.
func Serve(addr string, reg *Registry, progress func() any, ready func() error, onErr func(error)) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Addr: addr, Handler: Handler(reg, progress, ready)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if onErr != nil {
				onErr(err)
			}
		}
	}()
	return srv, ln.Addr(), nil
}
