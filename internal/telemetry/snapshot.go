package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Buckets holds cumulative
// counts aligned with Bounds; the final entry of Buckets (without a bound)
// is the total including overflow.
type HistogramValue struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a consistent-enough copy of a registry: each metric is read
// atomically, sorted by name, suitable for rendering or diffing.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures every registered metric, sorted by name. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		hv := HistogramValue{Name: h.name, Bounds: h.Bounds(), Count: h.Count(), Sum: h.Sum()}
		var cum int64
		for _, n := range h.BucketCounts() {
			cum += n
			hv.Buckets = append(hv.Buckets, cum)
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// splitLabels splits `name{a="b"}` into (`name`, `a="b"`); names without
// labels return ("name", "").
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels merges an existing label string with one extra pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders the snapshot in Prometheus text exposition format,
// sorted by name within each metric kind (counters, then gauges, then
// histograms), so two snapshots of equal state render byte-identically.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		base, _ := splitLabels(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", base, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		base, _ := splitLabels(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", base, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base, labels := splitLabels(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
			return err
		}
		for i, bound := range h.Bounds {
			le := joinLabels(labels, `le="`+fmtFloat(bound)+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, le, h.Buckets[i]); err != nil {
				return err
			}
		}
		inf := joinLabels(labels, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, inf, h.Count); err != nil {
			return err
		}
		sumName, countName := base+"_sum", base+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n", sumName, fmtFloat(h.Sum), countName, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// CountersText renders only the counter lines (no TYPE comments) — the
// deterministic core of a campaign's final metrics, used by tests that
// compare runs across worker counts.
func (s Snapshot) CountersText() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	return b.String()
}
