package telemetry

import "sync"

// Event kinds recorded on the packet path. Every event's T field is
// virtual nanoseconds from the owning simulator's clock, so traces of the
// same seed are byte-identical no matter how many workers ran the campaign.
const (
	EvProbeSent   = "probe-sent"    // a technique sent a measurement probe
	EvCoverSent   = "cover-sent"    // a technique sent a spoofed cover packet
	EvCensorAlert = "censor-alert"  // the censor's engine matched restricted content
	EvRSTInject   = "rst-injection" // the censor forged a TCP RST pair
	EvDNSForge    = "dns-forge"     // the censor forged a DNS answer
	EvMVRLog      = "mvr-log"       // the surveillance MVR retained content
	EvMVRDiscard  = "mvr-discard"   // the MVR discarded a packet wholesale
	EvTTLExpiry   = "ttl-expiry"    // a router dropped a datagram at TTL 0
	EvTapDrop     = "tap-drop"      // an inline tap (censor/SAV) dropped a datagram
	EvTapShape    = "tap-shape"     // an inline tap delayed (throttled) a datagram
)

// Event is one packet-path occurrence.
type Event struct {
	T      int64  `json:"t"` // virtual nanoseconds
	Kind   string `json:"kind"`
	Src    string `json:"src,omitempty"`
	Dst    string `json:"dst,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Sink consumes trace events.
type Sink interface {
	Emit(Event)
}

// NopSink discards events without allocating — the disabled-tracing fast
// path that the telemetry benchmarks compare against.
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(Event) {}

// Ring is a bounded event buffer: once full it overwrites the oldest
// events, keeping the most recent cap entries and counting what it shed.
// Emission is mutex-guarded so concurrent sources stay race-free; within
// one simulator everything arrives from a single goroutine in virtual-time
// order, so the retained window is deterministic.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	dropped int
}

// NewRing creates a ring holding up to capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns how many events are retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Tracer is the handle instrumented code emits through. A nil tracer is
// disabled; hot paths nil-check it before building event strings so the
// off path costs one comparison:
//
//	if tr := sim.Trace; tr != nil {
//		tr.Emit(now, telemetry.EvTTLExpiry, src.String(), dst.String(), name)
//	}
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink. A nil sink yields a disabled (nil) tracer.
func NewTracer(s Sink) *Tracer {
	if s == nil {
		return nil
	}
	return &Tracer{sink: s}
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(now int64, kind, src, dst, detail string) {
	if t == nil {
		return
	}
	t.sink.Emit(Event{T: now, Kind: kind, Src: src, Dst: dst, Detail: detail})
}

// Enabled reports whether emissions reach a sink.
func (t *Tracer) Enabled() bool { return t != nil }
