package telemetry

import "testing"

// The micro-benchmarks below quantify the per-operation cost of enabled
// telemetry against the disabled (nil-handle / NopSink) fast path. The
// repo-root BenchmarkTelemetryOverhead measures the same comparison
// end-to-end through a whole campaign run.

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkTracerNop(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Emit(int64(i), EvProbeSent, "", "", "")
		}
	}
}

func BenchmarkTracerNopSink(b *testing.B) {
	tr := NewTracer(NopSink{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(int64(i), EvProbeSent, "src", "dst", "detail")
	}
}

func BenchmarkTracerRing(b *testing.B) {
	tr := NewTracer(NewRing(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(int64(i), EvProbeSent, "src", "dst", "detail")
	}
}
