package campaign

import (
	"encoding/json"
	"io"

	"safemeasure/internal/archival"
	"safemeasure/internal/telemetry"
)

// RunTrace is one run's packet-path event stream plus the plan coordinates
// (and lab seed) that identify it. Events are in emission order and carry
// virtual-time timestamps, so a run's trace depends only on its seed —
// never on worker count or scheduling.
type RunTrace struct {
	Scenario   string
	Impairment string // "" means the pristine link
	Behavior   string // "" means the faithful censor
	Technique  string
	Trial      int
	Seed       int64
	Events     []telemetry.Event
}

// TraceLine is the JSONL shape of one trace event: the run coordinates, the
// event's sequence number within the run, and the event itself. Because
// (scenario, impairment, technique, trial, seq) uniquely orders every line
// and each run's events are deterministic, sorting a trace file's lines
// yields a byte-identical stream for any worker count. Seed makes the line
// joinable against records and archival observations by cell identity.
type TraceLine struct {
	Scenario   string `json:"scenario"`
	Impairment string `json:"impairment,omitempty"`
	Behavior   string `json:"behavior,omitempty"`
	Technique  string `json:"technique"`
	Trial      int    `json:"trial"`
	Seed       int64  `json:"seed,omitempty"`
	Seq        int    `json:"seq"`
	T          int64  `json:"t"`
	Kind       string `json:"kind"`
	Src        string `json:"src,omitempty"`
	Dst        string `json:"dst,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// TraceSink streams run traces to a writer as JSONL, one line per event.
// Write is safe to call from multiple workers; a run's events are written
// contiguously under the shared archival.Sink lock.
type TraceSink struct {
	archival.Sink
}

// NewTraceSink wraps a writer.
func NewTraceSink(w io.Writer) *TraceSink {
	s := &TraceSink{}
	s.Reset(w)
	return s
}

// SyncEvery makes the sink flush (and, on files, sync) once at least n
// event lines accumulated since the last flush, bounding what a hard crash
// can lose. n <= 0 restores the default (buffer until Flush).
func (s *TraceSink) SyncEvery(n int) { s.SetSyncEvery(n) }

// Instrument publishes the sink's flush/sync activity to reg as
// campaign_sink_flush_total{sink=name} and campaign_sink_sync_total{sink=name}.
func (s *TraceSink) Instrument(reg *telemetry.Registry, name string) {
	s.InstrumentSink(reg, "campaign_sink_flush_total", "campaign_sink_sync_total", name)
}

// Write emits one run's events. The lines are encoded into pooled scratch
// outside the sink lock and land as one contiguous write, so concurrent
// workers serialize only on the final copy, not on marshaling. The first
// encoding or I/O error is retained and reported by Flush; later writes
// after an error are dropped.
func (s *TraceSink) Write(rt RunTrace) {
	if len(rt.Events) == 0 {
		return
	}
	b := archival.GetBatchBuf()
	enc := json.NewEncoder(b)
	line := TraceLine{
		Scenario: rt.Scenario, Impairment: rt.Impairment, Behavior: rt.Behavior,
		Technique: rt.Technique, Trial: rt.Trial, Seed: rt.Seed,
	}
	for i, ev := range rt.Events {
		line.Seq, line.T, line.Kind = i, ev.T, ev.Kind
		line.Src, line.Dst, line.Detail = ev.Src, ev.Dst, ev.Detail
		if err := enc.Encode(&line); err != nil {
			s.Fail(err)
			archival.PutBatchBuf(b)
			return
		}
	}
	s.WriteBatch(b.Bytes(), len(rt.Events))
	archival.PutBatchBuf(b)
}
