package campaign

import (
	"strings"
	"testing"
)

func TestNewPlanFullMatrix(t *testing.T) {
	p, err := NewPlan(PlanConfig{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Applicability: 3 techniques per censoring scenario (x4) plus all 9 on
	// the open control = 21 cells, times 2 trials.
	if len(p.Specs) != 42 {
		t.Fatalf("specs = %d, want 42", len(p.Specs))
	}
	if len(p.Cells()) != 21 {
		t.Fatalf("cells = %d, want 21", len(p.Cells()))
	}
	for i, spec := range p.Specs {
		if spec.Index != i {
			t.Fatalf("spec %d has index %d", i, spec.Index)
		}
		if !Applicable(spec.Technique, spec.Scenario) {
			t.Fatalf("planned inapplicable pair %s/%s", spec.Technique, spec.Scenario)
		}
	}
}

func TestNewPlanSelection(t *testing.T) {
	p, err := NewPlan(PlanConfig{
		Techniques: []string{"overt-dns", "spam", "spoofed-dns"},
		Scenarios:  []string{"dns-poison"},
		Trials:     3,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Specs) != 9 {
		t.Fatalf("specs = %d, want 9", len(p.Specs))
	}

	if _, err := NewPlan(PlanConfig{Techniques: []string{"no-such"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown technique") {
		t.Fatalf("unknown technique err = %v", err)
	}
	if _, err := NewPlan(PlanConfig{Scenarios: []string{"no-such"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario err = %v", err)
	}
	// A selection where nothing applies must refuse, not silently plan zero
	// runs: an HTTP-keyword probe cannot see DNS poisoning.
	if _, err := NewPlan(PlanConfig{
		Techniques: []string{"overt-http"},
		Scenarios:  []string{"dns-poison"},
	}); err == nil {
		t.Fatal("inapplicable matrix accepted")
	}
}

func TestSeedDerivation(t *testing.T) {
	a := deriveSeed(1, "spam", "dns-poison", "none", "none", 0)
	if a != deriveSeed(1, "spam", "dns-poison", "none", "none", 0) {
		t.Fatal("seed derivation not deterministic")
	}
	if a < 0 {
		t.Fatalf("derived seed %d is negative", a)
	}
	// The pristine impairment is hashed as nothing at all, keeping seeds
	// compatible with records planned before the impairment axis existed.
	if a != deriveSeed(1, "spam", "dns-poison", "", "", 0) {
		t.Fatal(`"none" and "" impairments/behaviors must derive the same seed`)
	}
	distinct := map[int64]bool{a: true}
	for _, other := range []int64{
		deriveSeed(1, "spam", "dns-poison", "none", "none", 1),
		deriveSeed(1, "spam", "open", "none", "none", 0),
		deriveSeed(1, "overt-dns", "dns-poison", "none", "none", 0),
		deriveSeed(2, "spam", "dns-poison", "none", "none", 0),
		deriveSeed(1, "spam", "dns-poison", "lossy20", "none", 0),
		deriveSeed(1, "spam", "dns-poison", "lossy5", "none", 0),
		deriveSeed(1, "spam", "dns-poison", "none", "intermittent", 0),
		deriveSeed(1, "spam", "dns-poison", "none", "throttle", 0),
	} {
		if distinct[other] {
			t.Fatalf("seed collision across coordinates: %d", other)
		}
		distinct[other] = true
	}

	// Seeds are coordinate-derived, not position-derived: a narrowed plan
	// assigns the same seed to the same (technique, scenario, trial).
	full, err := NewPlan(PlanConfig{Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewPlan(PlanConfig{Scenarios: []string{"blackhole"}, Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[[3]any]int64{}
	for _, s := range full.Specs {
		seeds[[3]any{s.Technique, s.Scenario, s.Trial}] = s.Seed
	}
	for _, s := range narrow.Specs {
		if want := seeds[[3]any{s.Technique, s.Scenario, s.Trial}]; want != s.Seed {
			t.Fatalf("%s/%s trial %d: seed %d in narrow plan vs %d in full plan",
				s.Technique, s.Scenario, s.Trial, s.Seed, want)
		}
	}
}

func TestPlanImpairmentAxis(t *testing.T) {
	base, err := NewPlan(PlanConfig{Scenarios: []string{"dns-poison"}, Trials: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range base.Specs {
		if s.Impairment != "none" {
			t.Fatalf("default plan carries impairment %q", s.Impairment)
		}
	}
	swept, err := NewPlan(PlanConfig{
		Scenarios: []string{"dns-poison"}, Impairments: []string{"all"}, Trials: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(base.Specs) * 6; len(swept.Specs) != want {
		t.Fatalf("swept specs = %d, want %d (6 presets)", len(swept.Specs), want)
	}
	// Unimpaired specs keep the seeds of an impairment-unaware plan.
	seeds := map[string]int64{}
	for _, s := range base.Specs {
		seeds[s.Technique] = s.Seed
	}
	for _, s := range swept.Specs {
		if s.Impairment == "none" && seeds[s.Technique] != s.Seed {
			t.Fatalf("%s: unimpaired seed changed from %d to %d",
				s.Technique, seeds[s.Technique], s.Seed)
		}
		if s.Impairment != "none" && seeds[s.Technique] == s.Seed {
			t.Fatalf("%s/%s: impaired seed equals the unimpaired one", s.Technique, s.Impairment)
		}
	}
	if _, err := NewPlan(PlanConfig{Impairments: []string{"no-such"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown impairment") {
		t.Fatalf("unknown impairment err = %v", err)
	}
}

func TestPlanFilter(t *testing.T) {
	p, err := NewPlan(PlanConfig{Scenarios: []string{"dns-poison"}, Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	kept := p.Filter(func(s RunSpec) bool { return s.Trial == 1 })
	if len(kept.Specs) != len(p.Specs)/2 {
		t.Fatalf("filtered specs = %d, want %d", len(kept.Specs), len(p.Specs)/2)
	}
	for i, s := range kept.Specs {
		if s.Index != i {
			t.Fatalf("filter left stale index %d at position %d", s.Index, i)
		}
		if s.Trial != 1 {
			t.Fatalf("filter kept trial %d", s.Trial)
		}
	}
}
