package campaign

import (
	"testing"

	"safemeasure/internal/telemetry"
)

// spec returns a RunSpec in the single cell the breaker tests exercise.
func breakerSpec() RunSpec {
	return RunSpec{Technique: "spam", Scenario: "dns-poison", Impairment: "none"}
}

func TestBreakerConsecutiveLifecycle(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Consecutive: 3, Cooldown: 2})
	reg := telemetry.NewRegistry()
	bs.instrument(reg)
	spec := breakerSpec()

	// Closed: failures below the threshold keep the breaker closed, and a
	// success resets the streak.
	for i := 0; i < 2; i++ {
		if allow, _ := bs.Allow(spec); !allow {
			t.Fatalf("closed breaker refused run %d", i)
		}
		bs.Record(spec, true, false)
	}
	bs.Record(spec, false, false) // streak broken
	for i := 0; i < 3; i++ {
		if allow, _ := bs.Allow(spec); !allow {
			t.Fatal("breaker opened before the consecutive threshold")
		}
		bs.Record(spec, true, false)
	}
	if got := bs.State(spec.Scenario, spec.Impairment, spec.Technique); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if got := reg.Counter("campaign_breaker_open_total").Value(); got != 1 {
		t.Fatalf("open_total = %d, want 1", got)
	}

	// Open: exactly Cooldown runs are skipped.
	for i := 0; i < 2; i++ {
		if allow, _ := bs.Allow(spec); allow {
			t.Fatalf("open breaker allowed run %d of the cooldown", i)
		}
	}
	if got := reg.Counter("campaign_breaker_skipped_total").Value(); got != 2 {
		t.Fatalf("skipped_total = %d, want 2", got)
	}

	// Half-open: one probe allowed, contemporaries skipped.
	allow, probe := bs.Allow(spec)
	if !allow || !probe {
		t.Fatalf("half-open Allow = (%v, %v), want probe", allow, probe)
	}
	if allow, _ := bs.Allow(spec); allow {
		t.Fatal("second run allowed while the probe is in flight")
	}

	// Probe failure re-opens with a fresh cooldown.
	bs.Record(spec, true, true)
	if got := bs.State(spec.Scenario, spec.Impairment, spec.Technique); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	for i := 0; i < 2; i++ {
		bs.Allow(spec)
	}
	allow, probe = bs.Allow(spec)
	if !allow || !probe {
		t.Fatal("no probe after the second cooldown")
	}

	// Probe success closes and clears the failure history: the next failure
	// starts a fresh streak.
	bs.Record(spec, false, true)
	if got := bs.State(spec.Scenario, spec.Impairment, spec.Technique); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	bs.Record(spec, true, false)
	bs.Record(spec, true, false)
	if allow, _ := bs.Allow(spec); !allow {
		t.Fatal("old streak survived the probe reset")
	}

	// The per-cell state gauge tracked the transitions.
	g := reg.Gauge(telemetry.Labels("campaign_breaker_state",
		"scenario", "dns-poison", "impairment", "", "technique", "spam"))
	if g.Value() != int64(BreakerClosed) {
		t.Fatalf("state gauge = %d, want closed(0)", g.Value())
	}
}

func TestBreakerRateTrigger(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Rate: 0.5, Window: 4, Cooldown: 1})
	spec := breakerSpec()
	// Alternate success/failure: the rate sits at exactly 0.5 once the
	// window fills, which meets the >= threshold.
	outcomes := []bool{true, false, true, false}
	for _, failed := range outcomes {
		if allow, _ := bs.Allow(spec); !allow {
			t.Fatal("breaker tripped before the window filled")
		}
		bs.Record(spec, failed, false)
	}
	if got := bs.State(spec.Scenario, spec.Impairment, spec.Technique); got != BreakerOpen {
		t.Fatalf("state after 50%% error rate over a full window = %v, want open", got)
	}
}

func TestBreakerRateNeedsFullWindow(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Rate: 0.5, Window: 8})
	spec := breakerSpec()
	// Three straight failures are a 100% rate, but over a quarter-full
	// window — too little evidence to trip.
	for i := 0; i < 3; i++ {
		bs.Record(spec, true, false)
	}
	if got := bs.State(spec.Scenario, spec.Impairment, spec.Technique); got != BreakerClosed {
		t.Fatalf("state = %v, want closed until the window fills", got)
	}
}

func TestBreakerCellsAreIndependent(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Consecutive: 1})
	sick := breakerSpec()
	healthy := RunSpec{Technique: "overt-dns", Scenario: "dns-poison", Impairment: "none"}
	bs.Record(sick, true, false)
	if allow, _ := bs.Allow(sick); allow {
		t.Fatal("sick cell not tripped")
	}
	if allow, _ := bs.Allow(healthy); !allow {
		t.Fatal("healthy cell caught the sick cell's breaker")
	}
}

func TestBreakerNilSetAllowsEverything(t *testing.T) {
	var bs *BreakerSet
	if allow, probe := bs.Allow(breakerSpec()); !allow || probe {
		t.Fatal("nil set must allow without probing")
	}
	bs.Record(breakerSpec(), true, false) // must not panic
	bs.instrument(nil)
	if got := bs.State("dns-poison", "", "spam"); got != BreakerClosed {
		t.Fatalf("nil set state = %v, want closed", got)
	}
}

func TestIsBreakerSkip(t *testing.T) {
	skip := errorRecord(breakerSpec(), errBreakerOpen)
	if !IsBreakerSkip(skip) {
		t.Fatal("skip record not recognized")
	}
	if IsBreakerSkip(RunRecord{Error: "lab: boom"}) || IsBreakerSkip(RunRecord{}) {
		t.Fatal("non-skip records misclassified")
	}
}
