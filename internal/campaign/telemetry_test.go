package campaign

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

func recordFor(tech string) core.Record { return core.Record{Technique: tech} }

// runInstrumented executes the plan with full telemetry at the given worker
// count and returns the scheduling-independent canonical forms: the final
// counter exposition and the sorted trace lines.
func runInstrumented(t *testing.T, seed int64, workers int) (counters, trace string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	ts := NewTraceSink(&buf)
	recs, err := Run(smallPlan(t, seed), Options{
		Workers: workers,
		Metrics: reg,
		OnTrace: ts.Write,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("%s/%s trial %d failed: %s", rec.Technique, rec.Scenario, rec.Trial, rec.Error)
		}
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sort.Strings(lines)
	return reg.Snapshot().CountersText(), strings.Join(lines, "\n")
}

func TestTelemetryDeterministicAcrossWorkerCounts(t *testing.T) {
	// The tentpole acceptance check: same campaign seed at -workers 1 and
	// -workers 8 yields byte-identical final counters and (sorted)
	// identical trace event streams. Counters commute because they are
	// integer atomic adds; traces match because each run owns its ring and
	// stamps events with virtual time.
	c1, t1 := runInstrumented(t, 42, 1)
	c8, t8 := runInstrumented(t, 42, 8)
	if c1 != c8 {
		t.Errorf("final counters differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", c1, c8)
	}
	if t1 != t8 {
		t.Errorf("sorted trace streams differ across worker counts")
	}
	if t1 == "" {
		t.Fatal("no trace events emitted")
	}
	// Spot-check that the stream actually exercised the instrumented paths.
	for _, kind := range []string{telemetry.EvProbeSent, telemetry.EvCensorAlert, telemetry.EvMVRDiscard} {
		if !strings.Contains(t1, `"kind":"`+kind+`"`) {
			t.Errorf("trace stream has no %q events", kind)
		}
	}
	for _, name := range []string{
		"netsim_forwarded_total", "surveil_packets_seen_total",
		"censor_ids_packets_total", `campaign_runs_total{family="mimicry"}`,
	} {
		if !strings.Contains(c1, name) {
			t.Errorf("counter exposition missing %s:\n%s", name, c1)
		}
	}
}

func TestPoolMetricsAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := smallPlan(t, 3)
	recs, err := Run(p, Options{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var runs, correct int64
	for _, fam := range []string{"overt", "mimicry", "spoofed"} {
		runs += reg.Counter(telemetry.Labels("campaign_runs_total", "family", fam)).Value()
		correct += reg.Counter(telemetry.Labels("campaign_correct_total", "family", fam)).Value()
	}
	if runs != int64(len(p.Specs)) {
		t.Errorf("campaign_runs_total = %d, want %d", runs, len(p.Specs))
	}
	var wantCorrect int64
	for _, rec := range recs {
		if rec.Error == "" && rec.Correct {
			wantCorrect++
		}
	}
	if correct != wantCorrect {
		t.Errorf("campaign_correct_total = %d, want %d", correct, wantCorrect)
	}
	if got := reg.Gauge("campaign_queue_depth").Value(); got != 0 {
		t.Errorf("campaign_queue_depth after completion = %d, want 0", got)
	}
	if got := reg.Gauge("campaign_runs_inflight").Value(); got != 0 {
		t.Errorf("campaign_runs_inflight after completion = %d, want 0", got)
	}
	h := reg.Histogram("campaign_run_virtual_ms")
	if h.Count() != int64(len(p.Specs)) {
		t.Errorf("campaign_run_virtual_ms count = %d, want %d", h.Count(), len(p.Specs))
	}
}

func TestProgressTracksCells(t *testing.T) {
	p := smallPlan(t, 5) // dns-poison x 3 techniques x 2 trials
	prog := NewProgress(p)
	s := prog.Snapshot()
	if s.Planned != len(p.Specs) || s.Done != 0 {
		t.Fatalf("initial snapshot: planned=%d done=%d, want %d/0", s.Planned, s.Done, len(p.Specs))
	}
	if len(s.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(s.Cells))
	}
	prog.Record(RunRecord{Scenario: "dns-poison", Trial: 0, Correct: true,
		Record: recordFor("spam")})
	prog.Record(RunRecord{Scenario: "dns-poison", Trial: 1, Error: "boom",
		Record: recordFor("spam")})
	s = prog.Snapshot()
	if s.Done != 2 || s.Errors != 1 {
		t.Fatalf("snapshot after 2 records: done=%d errors=%d", s.Done, s.Errors)
	}
	for _, c := range s.Cells {
		if c.Technique != "spam" {
			if c.Done != 0 {
				t.Errorf("cell %s/%s done=%d, want 0", c.Scenario, c.Technique, c.Done)
			}
			continue
		}
		if c.Planned != 2 || c.Done != 2 || c.Correct != 1 || c.Errors != 1 {
			t.Errorf("spam cell = %+v", c)
		}
	}
}

func TestTraceSinkWritesSortableLines(t *testing.T) {
	var buf bytes.Buffer
	ts := NewTraceSink(&buf)
	ts.Write(RunTrace{Scenario: "open", Technique: "overt-dns", Trial: 1, Events: []telemetry.Event{
		{T: 100, Kind: telemetry.EvProbeSent, Src: "10.1.0.10", Dst: "203.0.113.53"},
		{T: 250, Kind: telemetry.EvTTLExpiry, Detail: "edge"},
	}})
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if ts.Count() != 2 {
		t.Fatalf("count = %d, want 2", ts.Count())
	}
	out := buf.String()
	if !strings.Contains(out, `"seq":0`) || !strings.Contains(out, `"seq":1`) {
		t.Fatalf("lines lack sequence numbers:\n%s", out)
	}
	if !strings.Contains(out, `"scenario":"open"`) || !strings.Contains(out, `"technique":"overt-dns"`) {
		t.Fatalf("lines lack run coordinates:\n%s", out)
	}
}
