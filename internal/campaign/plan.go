package campaign

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
)

// RunSpec is one planned run: a technique against a scenario under a link
// impairment, one trial.
type RunSpec struct {
	// Index is the spec's position in the plan — stable across worker
	// counts, so results can be reassembled in plan order.
	Index     int
	Technique string
	Scenario  string
	// Impairment names the lab link-impairment preset the run's uplink
	// carries ("" is equivalent to "none").
	Impairment string
	// Behavior names the adversarial censor-behavior preset the run's
	// censor misbehaves with ("" is equivalent to "none": the faithful
	// censor).
	Behavior string
	Trial    int
	// Seed is the lab seed, derived from the campaign seed and the spec
	// coordinates (never from Index or scheduling order).
	Seed int64
}

// Plan is a fully enumerated campaign matrix.
type Plan struct {
	Seed  int64
	Specs []RunSpec
}

// PlanConfig parameterizes NewPlan.
type PlanConfig struct {
	// Techniques to sweep, by core name; empty or ["all"] means every
	// technique.
	Techniques []string
	// Scenarios to sweep, by lab scenario name; empty or ["all"] means
	// every preset.
	Scenarios []string
	// Impairments to sweep, by lab impairment preset name. Empty means
	// just "none" (an impairment-unaware campaign); ["all"] sweeps every
	// preset, growing the matrix by a full impairment dimension.
	Impairments []string
	// Behaviors to sweep, by lab censor-behavior preset name. Empty means
	// just "none" (the faithful censor); ["all"] sweeps every preset —
	// the E11 matrix's fourth dimension.
	Behaviors []string
	// Trials per (technique, scenario, impairment) cell; 0 means 1.
	Trials int
	// Seed is the campaign master seed every run seed derives from.
	Seed int64
}

// measures maps each scenario to the technique names able to measure its
// mechanism — the applicability columns of the paper's E11 matrix. The
// uncensored control accepts every technique (all must report accessible).
var measures = map[string][]string{
	"keyword-rst": {"overt-http", "ddos", "stateful-spoof"},
	"dns-poison":  {"overt-dns", "spam", "spoofed-dns"},
	"blackhole":   {"overt-tcp", "syn-scan", "spoofed-syn"},
	"port-block":  {"overt-tcp", "syn-scan", "spoofed-syn"},
	"open":        nil, // nil means every technique applies
}

// Applicable reports whether a technique can measure a scenario's
// censorship mechanism (an HTTP-keyword probe cannot see DNS poisoning, and
// running it there would only pollute accuracy statistics).
func Applicable(technique, scenario string) bool {
	names, ok := measures[scenario]
	if !ok {
		return false
	}
	if names == nil {
		return true
	}
	for _, n := range names {
		if n == technique {
			return true
		}
	}
	return false
}

// expand resolves a CSV-style selection against a known universe.
func expand(sel []string, universe []string, kind string) ([]string, error) {
	if len(sel) == 0 || (len(sel) == 1 && sel[0] == "all") {
		return universe, nil
	}
	known := map[string]bool{}
	for _, u := range universe {
		known[u] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, s := range sel {
		s = strings.TrimSpace(s)
		if s == "" || seen[s] {
			continue
		}
		if !known[s] {
			return nil, fmt.Errorf("campaign: unknown %s %q (known: %s)",
				kind, s, strings.Join(universe, ", "))
		}
		seen[s] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty %s selection", kind)
	}
	return out, nil
}

// NewPlan enumerates the campaign matrix: every applicable (technique,
// scenario) pair times Trials, with deterministic per-run seeds.
func NewPlan(cfg PlanConfig) (*Plan, error) {
	techniques, err := expand(cfg.Techniques, core.Names(), "technique")
	if err != nil {
		return nil, err
	}
	scenarios, err := expand(cfg.Scenarios, lab.ScenarioNames(), "scenario")
	if err != nil {
		return nil, err
	}
	impairments := cfg.Impairments
	if len(impairments) == 0 {
		// Unlike techniques/scenarios, the default is the single pristine
		// link, not the whole axis: an impairment-unaware campaign should
		// not sextuple in size.
		impairments = []string{lab.ImpairmentNone}
	}
	impairments, err = expand(impairments, lab.ImpairmentNames(), "impairment")
	if err != nil {
		return nil, err
	}
	behaviors := cfg.Behaviors
	if len(behaviors) == 0 {
		// Same default shape as impairments: a behavior-unaware campaign
		// runs against the faithful censor only.
		behaviors = []string{lab.BehaviorNone}
	}
	behaviors, err = expand(behaviors, lab.BehaviorNames(), "censor behavior")
	if err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	p := &Plan{Seed: cfg.Seed}
	for _, sc := range scenarios {
		for _, imp := range impairments {
			for _, bhv := range behaviors {
				for _, tech := range techniques {
					if !Applicable(tech, sc) {
						continue
					}
					for trial := 0; trial < trials; trial++ {
						p.Specs = append(p.Specs, RunSpec{
							Index:      len(p.Specs),
							Technique:  tech,
							Scenario:   sc,
							Impairment: imp,
							Behavior:   bhv,
							Trial:      trial,
							Seed:       deriveSeed(cfg.Seed, tech, sc, imp, bhv, trial),
						})
					}
				}
			}
		}
	}
	if len(p.Specs) == 0 {
		return nil, fmt.Errorf("campaign: no technique in %v can measure any scenario in %v",
			techniques, scenarios)
	}
	return p, nil
}

// Filter returns a copy of the plan keeping only specs the predicate
// accepts, re-indexed contiguously (used for resuming a partial campaign).
func (p *Plan) Filter(keep func(RunSpec) bool) *Plan {
	out := &Plan{Seed: p.Seed}
	for _, spec := range p.Specs {
		if keep(spec) {
			spec.Index = len(out.Specs)
			out.Specs = append(out.Specs, spec)
		}
	}
	return out
}

// Cells returns the distinct (scenario, technique) pairs of the plan, in
// sorted order.
func (p *Plan) Cells() [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	for _, s := range p.Specs {
		k := [2]string{s.Scenario, s.Technique}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// deriveSeed hashes the campaign seed and the run coordinates into a lab
// seed. The derivation depends only on (seed, technique, scenario,
// impairment, behavior, trial), never on plan position or scheduling, so a
// re-planned or resumed campaign reproduces the same per-run results. The
// pristine impairment and the faithful censor behavior contribute nothing
// to the hash, keeping default runs seed-compatible with records from
// before either axis existed.
func deriveSeed(seed int64, technique, scenario, impairment, behavior string, trial int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(technique))
	h.Write([]byte{0})
	h.Write([]byte(scenario))
	h.Write([]byte{0})
	if impairment != "" && impairment != lab.ImpairmentNone {
		h.Write([]byte(impairment))
		h.Write([]byte{0})
	}
	if behavior != "" && behavior != lab.BehaviorNone {
		h.Write([]byte(behavior))
		h.Write([]byte{0})
	}
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(trial) >> (8 * i))
	}
	h.Write(buf[:])
	// Keep seeds positive: lab/population RNG seeding offsets them and a
	// negative campaign-derived seed reads confusingly in records.
	return int64(h.Sum64() &^ (1 << 63))
}
